// Package client implements the replication-aware client stub: it submits
// invocation requests to every member of a replicated object group,
// retransmits on silence, deduplicates replies per replica, and returns
// once the configured reply policy is satisfied.
//
// The default policy is Majority: FTflex-style infrastructures do not trust
// a single reply under fail-over, and — as DESIGN.md explains — waiting for
// a majority is what makes ADETS-LSA's follower lag visible at the client,
// as in the paper's measurements.
package client

import (
	"errors"
	"fmt"
	"time"

	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/obs"
	"github.com/replobj/replobj/internal/obs/tracing"
	"github.com/replobj/replobj/internal/replica"
	"github.com/replobj/replobj/internal/transport"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// ReplyPolicy decides how many replica replies complete an invocation.
type ReplyPolicy int

// Reply policies.
const (
	// Majority waits for ⌊n/2⌋+1 replies (default).
	Majority ReplyPolicy = iota
	// First returns on the first reply.
	First
	// All waits for every replica.
	All
)

func (p ReplyPolicy) need(n int) int {
	switch p {
	case First:
		return 1
	case All:
		return n
	default:
		return n/2 + 1
	}
}

func (p ReplyPolicy) String() string {
	switch p {
	case First:
		return "first"
	case All:
		return "all"
	default:
		return "majority"
	}
}

// ErrTimeout is returned when the reply policy is not satisfied in time.
var ErrTimeout = errors.New("client: invocation timed out")

// Config parameterizes a client.
type Config struct {
	RT        vtime.Runtime
	Name      string
	Directory *replica.Directory
	Network   transport.Network
	Policy    ReplyPolicy
	// Timeout bounds one invocation end to end (default 30s).
	Timeout time.Duration
	// Retransmit is the retransmission interval (default 2s).
	Retransmit time.Duration
	// Spans, when non-nil, enables end-to-end request tracing: every
	// invocation allocates a deterministic trace context that rides the
	// wire, and the client records the root "rtt" span plus one "reply"
	// span per replica answer.
	Spans *tracing.Collector
	// Metrics, when non-nil, receives the client-side shard routing series
	// (routed/redirect/cross counters, directory epoch gauge) from Routers
	// created off this client.
	Metrics *obs.Registry
}

// Client is a replication-aware stub. Safe for use by one goroutine at a
// time per Client; create one per simulated client.
type Client struct {
	rt      vtime.Runtime
	self    wire.NodeID
	dir     *replica.Directory
	ep      transport.Endpoint
	policy  ReplyPolicy
	timeout time.Duration
	retry   time.Duration
	spans   *tracing.Collector
	metrics *obs.Registry

	// guarded by the runtime lock
	calls   map[wire.InvocationID]*call
	reqSeq  uint64
	stopped bool
}

type call struct {
	parker  *vtime.Parker
	replies map[wire.NodeID]replica.Reply
	need    int
	done    bool
	ctx     tracing.Context // zero when tracing is off
	t0      time.Duration   // submit time (tracing only)
}

// New builds a client stub.
func New(cfg Config) *Client {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Retransmit <= 0 {
		cfg.Retransmit = 2 * time.Second
	}
	c := &Client{
		rt:      cfg.RT,
		self:    wire.ClientID(cfg.Name),
		dir:     cfg.Directory,
		policy:  cfg.Policy,
		timeout: cfg.Timeout,
		retry:   cfg.Retransmit,
		spans:   cfg.Spans,
		metrics: cfg.Metrics,
		calls:   make(map[wire.InvocationID]*call),
	}
	c.ep = cfg.Network.Endpoint(c.self)
	cfg.RT.Go("client-recv/"+string(c.self), c.recvLoop)
	return c
}

// Close detaches the client.
func (c *Client) Close() {
	c.rt.Lock()
	c.stopped = true
	for _, cl := range c.calls {
		c.rt.Unpark(cl.parker)
	}
	c.rt.Unlock()
	c.ep.Close()
}

func (c *Client) recvLoop() {
	for {
		msg, ok := c.ep.Recv()
		if !ok {
			return
		}
		reply, ok := msg.Payload.(replica.Reply)
		if !ok {
			continue
		}
		now := c.rt.Now() // before taking the lock: Now() locks internally
		c.rt.Lock()
		cl := c.calls[reply.ID]
		if cl != nil && !cl.done {
			if _, dup := cl.replies[reply.From]; !dup && cl.ctx.Valid() && c.spans != nil {
				// One span per replica answer, from submit to arrival; its
				// parent is the replica's exec span when the reply carried
				// one, else the root.
				parent := cl.ctx.Span
				if reply.Trace.Valid() {
					parent = reply.Trace.Span
				}
				c.spans.Record(tracing.Span{
					Trace:  cl.ctx.TraceID,
					ID:     tracing.NewSpanID(cl.ctx.TraceID, "reply", string(reply.From), cl.t0),
					Parent: parent,
					Name:   "reply",
					Node:   string(c.self),
					Detail: string(reply.From),
					Start:  cl.t0,
					Dur:    now - cl.t0,
				})
			}
			cl.replies[reply.From] = reply
			if len(cl.replies) >= cl.need {
				cl.done = true
				c.rt.Unpark(cl.parker)
			}
		}
		c.rt.Unlock()
	}
}

// Invoke calls a method on a replicated object group and blocks until the
// reply policy is satisfied or the timeout expires. It must run on a
// tracked goroutine.
func (c *Client) Invoke(group wire.GroupID, method string, args []byte) ([]byte, error) {
	best, err := c.invokeReply(group, method, args, nil)
	if err != nil {
		return nil, err
	}
	if best.Err != "" {
		return nil, errors.New(best.Err)
	}
	return best.Result, nil
}

// invokeReply runs an invocation and returns the deterministically chosen
// reply — the lowest-ranked responder; all correct replicas answer
// identically. Unlike Invoke it surfaces the whole Reply, which the shard
// Router needs: a wrong-shard redirect is an application-level Err plus
// the replica's current ShardEpoch. mod, when non-nil, edits the request
// before submission (the Router stamps shard routing fields with it).
func (c *Client) invokeReply(group wire.GroupID, method string, args []byte, mod func(*replica.Request)) (replica.Reply, error) {
	cl, members, err := c.invoke(group, method, args, -1, mod)
	if err != nil {
		return replica.Reply{}, err
	}
	c.rt.Lock()
	var best *replica.Reply
	for _, m := range members {
		if rep, ok := cl.replies[m]; ok {
			best = &rep
			break
		}
	}
	c.rt.Unlock()
	if best == nil {
		return replica.Reply{}, errors.New("client: no reply recorded")
	}
	return *best, nil
}

// InvokeAll waits for every replica's reply (policy All for this call) and
// returns them per node — used by consistency checks and tooling.
func (c *Client) InvokeAll(group wire.GroupID, method string, args []byte) (map[wire.NodeID]replica.Reply, error) {
	cl, _, err := c.invoke(group, method, args, len(c.dir.Members(group)), nil)
	if err != nil {
		return nil, err
	}
	c.rt.Lock()
	out := make(map[wire.NodeID]replica.Reply, len(cl.replies))
	for n, rep := range cl.replies {
		out[n] = rep
	}
	c.rt.Unlock()
	return out, nil
}

// invoke runs the request/retransmit/collect loop until `need` replies
// arrived (need < 0 applies the configured policy). mod, when non-nil,
// edits the request before submission.
func (c *Client) invoke(group wire.GroupID, method string, args []byte, need int, mod func(*replica.Request)) (*call, []wire.NodeID, error) {
	members := c.dir.Members(group)
	if len(members) == 0 {
		return nil, nil, fmt.Errorf("client: unknown group %q", group)
	}
	if need < 0 {
		need = c.policy.need(len(members))
	}
	c.rt.Lock()
	if c.stopped {
		c.rt.Unlock()
		return nil, nil, errors.New("client: closed")
	}
	c.reqSeq++
	logical := wire.LogicalID(fmt.Sprintf("%s#%d", c.self, c.reqSeq))
	id := wire.InvocationID{Logical: logical, Seq: 0}
	cl := &call{
		parker:  vtime.NewParker("client-call/" + string(logical)),
		replies: make(map[wire.NodeID]replica.Reply),
		need:    need,
	}
	if c.spans != nil {
		// The trace id is a pure function of the logical thread id —
		// deterministic from (member, submit seq), identical on every
		// process that sees the request. The root span's id is the trace id.
		tid := tracing.TraceID(string(logical))
		cl.ctx = tracing.Context{TraceID: tid, Span: tid}
		cl.t0 = c.rt.NowLocked()
	}
	c.calls[id] = cl
	c.rt.Unlock()

	req := replica.Request{
		ID:      id,
		Group:   group,
		Method:  method,
		Args:    args,
		Kind:    replica.KindClient,
		ReplyTo: c.self,
		Trace:   cl.ctx,
	}
	if mod != nil {
		mod(&req)
	}
	shardLabel := ""
	if req.ShardEpoch != 0 {
		shardLabel = string(group)
	}
	sub := gcs.Submit{Group: group, ID: id.String(), Origin: c.self, Payload: req}
	send := func() {
		for _, m := range members {
			c.ep.Send(m, sub)
		}
	}
	send()

	deadline := c.rt.Now() + c.timeout
	defer func() {
		c.rt.Lock()
		delete(c.calls, id)
		c.rt.Unlock()
	}()
	for {
		now := c.rt.Now() // before taking the lock: Now() locks internally
		c.rt.Lock()
		if cl.done {
			c.rt.Unlock()
			break
		}
		remaining := deadline - now
		if remaining <= 0 {
			c.rt.Unlock()
			return nil, nil, fmt.Errorf("%w: %s.%s after %v (got %d/%d replies)",
				ErrTimeout, group, method, c.timeout, len(cl.replies), cl.need)
		}
		wait := c.retry
		if wait > remaining {
			wait = remaining
		}
		timedOut := c.rt.ParkTimeout(cl.parker, wait)
		stopped := c.stopped
		c.rt.Unlock()
		if stopped {
			return nil, nil, errors.New("client: closed")
		}
		if timedOut {
			send() // retransmit; replicas deduplicate
		}
	}
	if c.spans != nil && cl.ctx.Valid() {
		end := c.rt.Now()
		c.spans.Record(tracing.Span{
			Trace:  cl.ctx.TraceID,
			ID:     cl.ctx.TraceID, // root span: id == trace id
			Name:   "rtt",
			Node:   string(c.self),
			Shard:  shardLabel,
			Detail: string(group) + "." + method,
			Start:  cl.t0,
			Dur:    end - cl.t0,
		})
	}
	return cl, members, nil
}

// NodeID returns the client's transport identity.
func (c *Client) NodeID() wire.NodeID { return c.self }
