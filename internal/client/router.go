package client

import (
	"errors"
	"fmt"
	"time"

	"github.com/replobj/replobj/internal/obs"
	"github.com/replobj/replobj/internal/replica"
	"github.com/replobj/replobj/internal/shard"
	"github.com/replobj/replobj/internal/wire"
)

// Router is the shard-aware invocation stub of one sharded object: it
// fetches the routing table from the object's replicated shard directory,
// derives the consistent-hash ring locally (assignment is a pure function
// of the table, so every router and replica computes the same homes), and
// sends each invocation to its key's home shard group.
//
// Staleness is handled by the redirect protocol: a shard replica that
// validates a request against a different table answers with a
// deterministic wrong-shard reply carrying its current epoch; the router
// refreshes its table from the directory and retries under bounded
// exponential backoff, up to MaxRedirects times. Like Client, a Router is
// meant for one goroutine at a time.
type Router struct {
	c      *Client
	object string
	dir    wire.GroupID

	maxRedirects int
	backoff      time.Duration
	maxBackoff   time.Duration

	table shard.Table
	ring  *shard.Ring

	routed    *obs.Counter
	redirects *obs.Counter
	cross     *obs.Counter
	epochG    *obs.Gauge
}

// Router defaults.
const (
	DefaultMaxRedirects    = 4
	DefaultRedirectBackoff = 2 * time.Millisecond
	maxRedirectBackoff     = 100 * time.Millisecond
)

// Router returns a routing stub for a sharded object. The first Invoke
// (or an explicit Refresh) fetches the routing table from the object's
// shard directory group.
func (c *Client) Router(object string) *Router {
	r := &Router{
		c:            c,
		object:       object,
		dir:          shard.DirGroup(object),
		maxRedirects: DefaultMaxRedirects,
		backoff:      DefaultRedirectBackoff,
		maxBackoff:   maxRedirectBackoff,
	}
	if c.metrics != nil {
		label := `{client="` + string(c.self) + `",object="` + object + `"}`
		r.routed = c.metrics.Counter("replobj_shard_client_routed_total" + label)
		r.redirects = c.metrics.Counter("replobj_shard_client_redirects_total" + label)
		r.cross = c.metrics.Counter("replobj_shard_client_cross_total" + label)
		r.epochG = c.metrics.Gauge("replobj_shard_client_directory_epoch" + label)
	}
	return r
}

// WithMaxRedirects bounds the redirect-retry loop (returns the router for
// chaining; n < 0 means "no retries", a single attempt).
func (r *Router) WithMaxRedirects(n int) *Router {
	r.maxRedirects = n
	return r
}

// WithRedirectBackoff sets the initial redirect backoff (doubled per
// retry, capped at 100ms).
func (r *Router) WithRedirectBackoff(d time.Duration) *Router {
	if d > 0 {
		r.backoff = d
	}
	return r
}

// Epoch returns the epoch of the cached routing table (0 before the
// first refresh).
func (r *Router) Epoch() uint64 { return r.table.Epoch }

// Table returns the cached routing table.
func (r *Router) Table() shard.Table { return r.table }

// Home returns the shard group the router would currently send a key to,
// refreshing the table first if none is cached yet.
func (r *Router) Home(key string) (wire.GroupID, error) {
	if r.ring == nil {
		if err := r.Refresh(); err != nil {
			return "", err
		}
	}
	return r.ring.HomeGroup(key), nil
}

// Refresh fetches the routing table from the shard directory and rebuilds
// the ring. Must run on a tracked goroutine (it invokes the directory
// group like any replicated object).
func (r *Router) Refresh() error {
	rep, err := r.c.invokeReply(r.dir, "get", nil, nil)
	if err != nil {
		return fmt.Errorf("client: shard directory %s: %w", r.dir, err)
	}
	if rep.Err != "" {
		return fmt.Errorf("client: shard directory %s: %s", r.dir, rep.Err)
	}
	t, err := shard.DecodeTable(rep.Result)
	if err != nil {
		return fmt.Errorf("client: shard directory %s: %w", r.dir, err)
	}
	r.table = t
	r.ring = shard.NewRing(t)
	r.epochG.Set(int64(t.Epoch))
	return nil
}

// InvokeOption parameterizes one routed invocation.
type InvokeOption func(*invokeOpts)

type invokeOpts struct {
	key       string
	crossKeys []string
}

// WithShardKey declares the key class the invocation is routed by — its
// home shard orders and executes the request. Required on every routed
// Invoke.
func WithShardKey(key string) InvokeOption {
	return func(o *invokeOpts) { o.key = key }
}

// WithCrossKey declares an additional key class the invocation touches.
// The request still executes on the primary key's home shard; the handler
// reaches cross keys homed elsewhere through Invocation.InvokeShard (the
// blocking two-group ordered path) and co-homed ones directly. May be
// repeated.
func WithCrossKey(key string) InvokeOption {
	return func(o *invokeOpts) { o.crossKeys = append(o.crossKeys, key) }
}

// Invoke routes a method invocation to its key's home shard group,
// following wrong-shard redirects with bounded backoff.
func (r *Router) Invoke(method string, args []byte, opts ...InvokeOption) ([]byte, error) {
	var o invokeOpts
	for _, opt := range opts {
		opt(&o)
	}
	if o.key == "" {
		return nil, errors.New("client: routed invoke requires WithShardKey")
	}
	backoff := r.backoff
	var wantEpoch uint64
	for attempt := 0; ; attempt++ {
		if r.ring == nil {
			if err := r.Refresh(); err != nil {
				return nil, err
			}
		}
		home := r.ring.HomeGroup(o.key)
		epoch := r.table.Epoch
		rep, err := r.c.invokeReply(home, method, args, func(q *replica.Request) {
			q.ShardEpoch = epoch
			q.ShardKey = o.key
			q.CrossKeys = o.crossKeys
		})
		if err != nil {
			return nil, err
		}
		if rep.ShardEpoch != 0 && rep.Err != "" && shard.IsRedirect(rep.Err) {
			r.redirects.Inc()
			if attempt >= r.maxRedirects {
				return nil, fmt.Errorf("client: gave up after %d wrong-shard redirects (last from %s: %s)",
					attempt+1, home, rep.Err)
			}
			if rep.ShardEpoch > wantEpoch {
				wantEpoch = rep.ShardEpoch
			}
			// Bounded backoff before refreshing: during a table update the
			// directory may answer the new epoch before the shard groups have
			// installed it (or vice versa); a short pause lets the EpochMethod
			// deliveries land instead of hammering the directory. Exactly one
			// sleep-and-double per redirect attempt — the poll rounds below
			// reuse the current backoff without compounding it again, so the
			// schedule stays the advertised 2× per retry.
			r.c.rt.Sleep(backoff)
			if backoff *= 2; backoff > r.maxBackoff {
				backoff = r.maxBackoff
			}
			if err := r.Refresh(); err != nil {
				return nil, err
			}
			// The redirecting replica validated against rep.ShardEpoch; a
			// directory answer older than that is itself stale and would only
			// bounce us straight back. Poll the directory a few more rounds
			// under the same backoff before spending another shard attempt.
			for round := 0; r.table.Epoch < wantEpoch && round < r.maxRedirects; round++ {
				r.c.rt.Sleep(backoff)
				if err := r.Refresh(); err != nil {
					return nil, err
				}
			}
			continue
		}
		r.routed.Inc()
		if len(o.crossKeys) > 0 {
			r.cross.Inc()
		}
		if rep.Err != "" {
			return nil, errors.New(rep.Err)
		}
		return rep.Result, nil
	}
}
