package client

import (
	"strings"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/replica"
	"github.com/replobj/replobj/internal/shard"
	"github.com/replobj/replobj/internal/transport"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// fakeShardWorld simulates a sharded object at the protocol level — a
// directory replica serving encoded tables and one fake replica per shard
// group that validates the stamped epoch exactly as a real replica does —
// enough to unit-test the Router's refresh/redirect/backoff loop in
// isolation.
type fakeShardWorld struct {
	rt  vtime.Runtime
	net *transport.Inproc
	eps []transport.Endpoint

	// guarded by the runtime lock
	table     shard.Table             // what the directory serves
	installed map[wire.GroupID]uint64 // per shard group epoch
	attempts  map[wire.GroupID]int    // routed-request deliveries per group
	// dualHome marks a group as a migration source inside the dual-home
	// window: a request stamped with its (pre-fence) installed epoch is
	// answered with a forwarded result instead of executing locally —
	// mirroring the replica's ordered relay of moved keys to their new
	// home. The value labels the relay target in the reply payload.
	dualHome map[wire.GroupID]wire.GroupID
}

func newFakeShardWorld(t *testing.T, rt vtime.Runtime, net *transport.Inproc, shards int) *fakeShardWorld {
	t.Helper()
	w := &fakeShardWorld{
		rt:        rt,
		net:       net,
		table:     shard.NewTable("o", shards, 0),
		installed: make(map[wire.GroupID]uint64),
		attempts:  make(map[wire.GroupID]int),
		dualHome:  make(map[wire.GroupID]wire.GroupID),
	}
	for _, gid := range w.table.Shards {
		w.installed[gid] = w.table.Epoch
	}

	dirID := wire.ReplicaID(shard.DirGroup("o"), 0)
	dirEP := net.Endpoint(dirID)
	w.eps = append(w.eps, dirEP)
	rt.Go("fake/"+string(dirID), func() {
		for {
			msg, ok := dirEP.Recv()
			if !ok {
				return
			}
			req, ok := submitRequest(msg.Payload)
			if !ok {
				continue
			}
			rt.Lock()
			enc := w.table.Encode()
			rt.Unlock()
			dirEP.Send(req.ReplyTo, replica.Reply{ID: req.ID, From: dirID, Result: enc})
		}
	})

	for _, gid := range w.table.Shards {
		gid := gid
		id := wire.ReplicaID(gid, 0)
		ep := net.Endpoint(id)
		w.eps = append(w.eps, ep)
		rt.Go("fake/"+string(id), func() {
			for {
				msg, ok := ep.Recv()
				if !ok {
					return
				}
				req, ok := submitRequest(msg.Payload)
				if !ok {
					continue
				}
				rt.Lock()
				w.attempts[gid]++
				epoch := w.installed[gid]
				fwd, dual := w.dualHome[gid]
				rt.Unlock()
				rep := replica.Reply{ID: req.ID, From: id}
				switch {
				case req.ShardEpoch == epoch && dual:
					rep.Result = []byte("fwd@" + string(fwd))
				case req.ShardEpoch == epoch:
					rep.Result = []byte("ok@" + string(gid))
				default:
					rep.Err = shard.RedirectError(epoch, req.ShardKey, gid)
					rep.ShardEpoch = epoch
				}
				ep.Send(req.ReplyTo, rep)
			}
		})
	}
	return w
}

func submitRequest(payload any) (replica.Request, bool) {
	sub, ok := payload.(gcs.Submit)
	if !ok {
		return replica.Request{}, false
	}
	req, ok := sub.Payload.(replica.Request)
	return req, ok
}

func (w *fakeShardWorld) close() {
	for _, ep := range w.eps {
		ep.Close()
	}
}

func (w *fakeShardWorld) directory() *replica.Directory {
	d := replica.NewDirectory()
	d.Add(shard.DirGroup("o"), []wire.NodeID{wire.ReplicaID(shard.DirGroup("o"), 0)})
	for _, gid := range w.table.Shards {
		d.Add(gid, []wire.NodeID{wire.ReplicaID(gid, 0)})
	}
	return d
}

// advanceEpoch installs the next-epoch table in the directory and,
// optionally, in the shard groups.
func (w *fakeShardWorld) advanceEpoch(vnodes int, installInShards bool) {
	w.rt.Lock()
	w.table = w.table.Next(vnodes)
	if installInShards {
		for _, gid := range w.table.Shards {
			w.installed[gid] = w.table.Epoch
		}
	}
	w.rt.Unlock()
}

func newRouterClient(w *fakeShardWorld) *Client {
	return New(Config{
		RT: w.rt, Name: "c1", Directory: w.directory(), Network: w.net,
		Policy: First, Timeout: 5 * time.Second,
	})
}

func TestRouterRoutesToHome(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	w := newFakeShardWorld(t, rt, net, 2)
	c := newRouterClient(w)
	vtime.Run(rt, "main", func() {
		defer w.close()
		defer c.Close()
		r := c.Router("o")
		out, err := r.Invoke("m", nil, WithShardKey("k1"))
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		home, _ := r.Home("k1")
		if string(out) != "ok@"+string(home) {
			t.Errorf("Invoke answered by %q, ring says home is %q", out, home)
		}
		if r.Epoch() != 1 {
			t.Errorf("Epoch = %d, want 1", r.Epoch())
		}
		rt.Lock()
		other := 0
		for gid, n := range w.attempts {
			if gid != home {
				other += n
			}
		}
		rt.Unlock()
		if other != 0 {
			t.Errorf("%d requests hit non-home shards", other)
		}
	})
}

func TestRouterRequiresShardKey(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	w := newFakeShardWorld(t, rt, net, 2)
	c := newRouterClient(w)
	vtime.Run(rt, "main", func() {
		defer w.close()
		defer c.Close()
		if _, err := c.Router("o").Invoke("m", nil); err == nil {
			t.Error("Invoke without WithShardKey succeeded")
		}
	})
}

// TestRouterStaleEpochRedirect: the world moves to epoch 2 after the
// router cached epoch 1. The routed invoke must be redirected exactly
// once, back off in virtual time, refresh, and succeed on the retry.
func TestRouterStaleEpochRedirect(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	w := newFakeShardWorld(t, rt, net, 2)
	c := newRouterClient(w)
	vtime.Run(rt, "main", func() {
		defer w.close()
		defer c.Close()
		r := c.Router("o").WithRedirectBackoff(10 * time.Millisecond)
		if err := r.Refresh(); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		w.advanceEpoch(128, true)

		t0 := rt.Now()
		if _, err := r.Invoke("m", nil, WithShardKey("k1")); err != nil {
			t.Fatalf("Invoke after epoch bump: %v", err)
		}
		if r.Epoch() != 2 {
			t.Errorf("Epoch after redirect = %d, want 2", r.Epoch())
		}
		if waited := rt.Now() - t0; waited < 10*time.Millisecond {
			t.Errorf("redirect retried after %v, before the 10ms backoff", waited)
		}
		rt.Lock()
		total := 0
		for _, n := range w.attempts {
			total += n
		}
		rt.Unlock()
		// One redirected attempt plus one successful retry (homes may move
		// across the epoch bump, but each attempt is a single delivery under
		// policy First with one replica per group).
		if total != 2 {
			t.Errorf("shard deliveries = %d, want 2 (one redirect, one retry)", total)
		}
	})
}

// TestRouterGivesUpAfterMaxRedirects: the directory keeps serving epoch 1
// while the shards installed epoch 2 — refresh never converges, so the
// router must stop after its redirect budget with a descriptive error.
func TestRouterGivesUpAfterMaxRedirects(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	w := newFakeShardWorld(t, rt, net, 2)
	c := newRouterClient(w)
	vtime.Run(rt, "main", func() {
		defer w.close()
		defer c.Close()
		r := c.Router("o").WithMaxRedirects(2).WithRedirectBackoff(time.Millisecond)
		if err := r.Refresh(); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		// Shards move on; the directory stays stale (installInShards only).
		rt.Lock()
		for _, gid := range w.table.Shards {
			w.installed[gid] = 2
		}
		rt.Unlock()

		_, err := r.Invoke("m", nil, WithShardKey("k1"))
		if err == nil {
			t.Fatal("Invoke succeeded against permanently mismatched epochs")
		}
		if !strings.Contains(err.Error(), "wrong-shard redirects") {
			t.Errorf("error %q does not mention redirects", err)
		}
		rt.Lock()
		total := 0
		for _, n := range w.attempts {
			total += n
		}
		rt.Unlock()
		if total != 3 {
			t.Errorf("shard deliveries = %d, want 3 (initial + 2 redirect retries)", total)
		}
	})
}

// TestRouterDualHomeForwardLands: the dual-home window of a live reshard —
// the directory already serves the next epoch and the key's state has left
// with the cut, but the source group's fence has not flipped yet. A stale
// router (old epoch cached) must land its request in ONE delivery: the
// source relays it over the ordered cross-shard path and answers with the
// forwarded result — no redirect round, no forced refresh.
func TestRouterDualHomeForwardLands(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	w := newFakeShardWorld(t, rt, net, 2)
	c := newRouterClient(w)
	vtime.Run(rt, "main", func() {
		defer w.close()
		defer c.Close()
		r := c.Router("o")
		if err := r.Refresh(); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		home, err := r.Home("k1")
		if err != nil {
			t.Fatalf("Home: %v", err)
		}

		// Open the window: directory flips to epoch 2, the old home keeps
		// its pre-fence epoch but forwards (the key's state moved with the
		// cut to "o@9").
		rt.Lock()
		w.dualHome[home] = wire.GroupID("o@9")
		rt.Unlock()
		w.advanceEpoch(128, false)

		out, err := r.Invoke("m", nil, WithShardKey("k1"))
		if err != nil {
			t.Fatalf("Invoke in dual-home window: %v", err)
		}
		if string(out) != "fwd@o@9" {
			t.Errorf("result %q, want the forwarded reply fwd@o@9", out)
		}
		if r.Epoch() != 1 {
			t.Errorf("Epoch = %d, want 1 (the stale router must not be forced to refresh)", r.Epoch())
		}
		rt.Lock()
		total := 0
		for _, n := range w.attempts {
			total += n
		}
		rt.Unlock()
		if total != 1 {
			t.Errorf("shard deliveries = %d, want 1 (forward lands without a redirect round)", total)
		}
	})
}

// TestRouterDualHomeFenceConverges: after the fence closes the window, the
// same stale router is redirected exactly once, refreshes to the new
// table, and its next attempt lands on the new home under the new epoch.
func TestRouterDualHomeFenceConverges(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	w := newFakeShardWorld(t, rt, net, 2)
	c := newRouterClient(w)
	vtime.Run(rt, "main", func() {
		defer w.close()
		defer c.Close()
		r := c.Router("o").WithRedirectBackoff(time.Millisecond)
		if err := r.Refresh(); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		home, err := r.Home("k1")
		if err != nil {
			t.Fatalf("Home: %v", err)
		}
		rt.Lock()
		w.dualHome[home] = wire.GroupID("o@9")
		rt.Unlock()
		w.advanceEpoch(128, false)
		if _, err := r.Invoke("m", nil, WithShardKey("k1")); err != nil {
			t.Fatalf("Invoke in dual-home window: %v", err)
		}

		// Fence: every group installs epoch 2 and forwarding stops.
		rt.Lock()
		delete(w.dualHome, home)
		for _, gid := range w.table.Shards {
			w.installed[gid] = w.table.Epoch
		}
		attemptsBefore := 0
		for _, n := range w.attempts {
			attemptsBefore += n
		}
		rt.Unlock()

		out, err := r.Invoke("m", nil, WithShardKey("k1"))
		if err != nil {
			t.Fatalf("Invoke after fence: %v", err)
		}
		if !strings.HasPrefix(string(out), "ok@") {
			t.Errorf("result %q, want a direct ok@... reply under the new epoch", out)
		}
		if r.Epoch() != 2 {
			t.Errorf("Epoch after fence = %d, want 2 (redirect must refresh the table)", r.Epoch())
		}
		rt.Lock()
		total := 0
		for _, n := range w.attempts {
			total += n
		}
		rt.Unlock()
		if got := total - attemptsBefore; got != 2 {
			t.Errorf("post-fence deliveries = %d, want 2 (one redirect, one landed retry)", got)
		}
	})
}

// TestRouterDualHomeRedirectStormBounded: a refreshed router reaches the
// new home while that group has not fenced yet and keeps answering with
// its old epoch (e.g. its handoff stalled). The redirect storm must stop
// at the WithMaxRedirects budget with a descriptive error instead of
// spinning forever between the fresh directory and the lagging group.
func TestRouterDualHomeRedirectStormBounded(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	w := newFakeShardWorld(t, rt, net, 2)
	c := newRouterClient(w)
	vtime.Run(rt, "main", func() {
		defer w.close()
		defer c.Close()
		r := c.Router("o").WithMaxRedirects(3).WithRedirectBackoff(time.Millisecond)
		// Directory serves epoch 2; every group still has epoch 1 installed
		// and no forwarding (the window is open but this key's chunk has not
		// landed — the lagging group can only bounce).
		w.advanceEpoch(128, false)
		if err := r.Refresh(); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		if r.Epoch() != 2 {
			t.Fatalf("Epoch after refresh = %d, want 2", r.Epoch())
		}

		_, err := r.Invoke("m", nil, WithShardKey("k1"))
		if err == nil {
			t.Fatal("Invoke succeeded against a group that never fences")
		}
		if !strings.Contains(err.Error(), "wrong-shard redirects") {
			t.Errorf("error %q does not mention the redirect budget", err)
		}
		rt.Lock()
		total := 0
		for _, n := range w.attempts {
			total += n
		}
		rt.Unlock()
		if total != 4 {
			t.Errorf("shard deliveries = %d, want 4 (initial + 3 budgeted retries)", total)
		}
	})
}

// TestRouterBackoffSingleDoublePerAttempt pins the redirect backoff
// schedule: exactly one sleep-and-double per redirect attempt, with the
// directory poll rounds reusing the current backoff instead of compounding
// it. A regression for the double-doubling bug where both the attempt path
// and every poll round multiplied the backoff, growing it 4×+ per attempt:
// with b0=4ms and 2 budgeted retries the buggy schedule slept
// 4+8+16+32+64+100 = 224ms where the intended one sleeps
// 4+8+8+8+16+16 = 60ms.
func TestRouterBackoffSingleDoublePerAttempt(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	w := newFakeShardWorld(t, rt, net, 2)
	c := newRouterClient(w)
	vtime.Run(rt, "main", func() {
		defer w.close()
		defer c.Close()
		r := c.Router("o").WithMaxRedirects(2).WithRedirectBackoff(4 * time.Millisecond)
		if err := r.Refresh(); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		// Shards install epoch 2; the directory stays at 1 — every attempt
		// redirects and every poll round sees a too-old table, so the full
		// backoff schedule runs before the router gives up.
		rt.Lock()
		for _, gid := range w.table.Shards {
			w.installed[gid] = 2
		}
		rt.Unlock()
		t0 := rt.Now()
		if _, err := r.Invoke("m", nil, WithShardKey("k1")); err == nil {
			t.Fatal("Invoke succeeded against permanently mismatched epochs")
		}
		waited := rt.Now() - t0
		// Intended schedule: attempt sleeps 4, 8 with poll rounds at the
		// already-doubled value (8+8, 16+16) — 60ms of backoff plus a few
		// round-trip latencies.
		if waited < 60*time.Millisecond {
			t.Errorf("total wait %v, want >= 60ms (4+8+8+8+16+16)", waited)
		}
		// The double-doubling schedule slept 224ms before giving up; anything
		// in that region means the backoff compounds more than 2× per attempt.
		if waited >= 120*time.Millisecond {
			t.Errorf("total wait %v, want < 120ms — backoff compounds more than once per attempt", waited)
		}
	})
}

// TestRouterBackoffIsBoundedAndDoubles pins the backoff schedule: 2ms, 4ms,
// 8ms... capped at 100ms, all in virtual time.
func TestRouterBackoffDoubles(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	w := newFakeShardWorld(t, rt, net, 2)
	c := newRouterClient(w)
	vtime.Run(rt, "main", func() {
		defer w.close()
		defer c.Close()
		r := c.Router("o").WithMaxRedirects(3).WithRedirectBackoff(4 * time.Millisecond)
		if err := r.Refresh(); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		rt.Lock()
		for _, gid := range w.table.Shards {
			w.installed[gid] = 2
		}
		rt.Unlock()
		t0 := rt.Now()
		if _, err := r.Invoke("m", nil, WithShardKey("k1")); err == nil {
			t.Fatal("Invoke succeeded against permanently mismatched epochs")
		}
		// 3 retries → backoffs 4 + 8 + 16 = 28ms of virtual sleep at least.
		if waited := rt.Now() - t0; waited < 28*time.Millisecond {
			t.Errorf("total backoff %v, want >= 28ms (4+8+16)", waited)
		}
	})
}
