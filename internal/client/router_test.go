package client

import (
	"strings"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/replica"
	"github.com/replobj/replobj/internal/shard"
	"github.com/replobj/replobj/internal/transport"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// fakeShardWorld simulates a sharded object at the protocol level — a
// directory replica serving encoded tables and one fake replica per shard
// group that validates the stamped epoch exactly as a real replica does —
// enough to unit-test the Router's refresh/redirect/backoff loop in
// isolation.
type fakeShardWorld struct {
	rt  vtime.Runtime
	net *transport.Inproc
	eps []transport.Endpoint

	// guarded by the runtime lock
	table     shard.Table             // what the directory serves
	installed map[wire.GroupID]uint64 // per shard group epoch
	attempts  map[wire.GroupID]int    // routed-request deliveries per group
}

func newFakeShardWorld(t *testing.T, rt vtime.Runtime, net *transport.Inproc, shards int) *fakeShardWorld {
	t.Helper()
	w := &fakeShardWorld{
		rt:        rt,
		net:       net,
		table:     shard.NewTable("o", shards, 0),
		installed: make(map[wire.GroupID]uint64),
		attempts:  make(map[wire.GroupID]int),
	}
	for _, gid := range w.table.Shards {
		w.installed[gid] = w.table.Epoch
	}

	dirID := wire.ReplicaID(shard.DirGroup("o"), 0)
	dirEP := net.Endpoint(dirID)
	w.eps = append(w.eps, dirEP)
	rt.Go("fake/"+string(dirID), func() {
		for {
			msg, ok := dirEP.Recv()
			if !ok {
				return
			}
			req, ok := submitRequest(msg.Payload)
			if !ok {
				continue
			}
			rt.Lock()
			enc := w.table.Encode()
			rt.Unlock()
			dirEP.Send(req.ReplyTo, replica.Reply{ID: req.ID, From: dirID, Result: enc})
		}
	})

	for _, gid := range w.table.Shards {
		gid := gid
		id := wire.ReplicaID(gid, 0)
		ep := net.Endpoint(id)
		w.eps = append(w.eps, ep)
		rt.Go("fake/"+string(id), func() {
			for {
				msg, ok := ep.Recv()
				if !ok {
					return
				}
				req, ok := submitRequest(msg.Payload)
				if !ok {
					continue
				}
				rt.Lock()
				w.attempts[gid]++
				epoch := w.installed[gid]
				rt.Unlock()
				rep := replica.Reply{ID: req.ID, From: id}
				if req.ShardEpoch != epoch {
					rep.Err = shard.RedirectError(epoch, req.ShardKey, gid)
					rep.ShardEpoch = epoch
				} else {
					rep.Result = []byte("ok@" + string(gid))
				}
				ep.Send(req.ReplyTo, rep)
			}
		})
	}
	return w
}

func submitRequest(payload any) (replica.Request, bool) {
	sub, ok := payload.(gcs.Submit)
	if !ok {
		return replica.Request{}, false
	}
	req, ok := sub.Payload.(replica.Request)
	return req, ok
}

func (w *fakeShardWorld) close() {
	for _, ep := range w.eps {
		ep.Close()
	}
}

func (w *fakeShardWorld) directory() *replica.Directory {
	d := replica.NewDirectory()
	d.Add(shard.DirGroup("o"), []wire.NodeID{wire.ReplicaID(shard.DirGroup("o"), 0)})
	for _, gid := range w.table.Shards {
		d.Add(gid, []wire.NodeID{wire.ReplicaID(gid, 0)})
	}
	return d
}

// advanceEpoch installs the next-epoch table in the directory and,
// optionally, in the shard groups.
func (w *fakeShardWorld) advanceEpoch(vnodes int, installInShards bool) {
	w.rt.Lock()
	w.table = w.table.Next(vnodes)
	if installInShards {
		for _, gid := range w.table.Shards {
			w.installed[gid] = w.table.Epoch
		}
	}
	w.rt.Unlock()
}

func newRouterClient(w *fakeShardWorld) *Client {
	return New(Config{
		RT: w.rt, Name: "c1", Directory: w.directory(), Network: w.net,
		Policy: First, Timeout: 5 * time.Second,
	})
}

func TestRouterRoutesToHome(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	w := newFakeShardWorld(t, rt, net, 2)
	c := newRouterClient(w)
	vtime.Run(rt, "main", func() {
		defer w.close()
		defer c.Close()
		r := c.Router("o")
		out, err := r.Invoke("m", nil, WithShardKey("k1"))
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		home, _ := r.Home("k1")
		if string(out) != "ok@"+string(home) {
			t.Errorf("Invoke answered by %q, ring says home is %q", out, home)
		}
		if r.Epoch() != 1 {
			t.Errorf("Epoch = %d, want 1", r.Epoch())
		}
		rt.Lock()
		other := 0
		for gid, n := range w.attempts {
			if gid != home {
				other += n
			}
		}
		rt.Unlock()
		if other != 0 {
			t.Errorf("%d requests hit non-home shards", other)
		}
	})
}

func TestRouterRequiresShardKey(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	w := newFakeShardWorld(t, rt, net, 2)
	c := newRouterClient(w)
	vtime.Run(rt, "main", func() {
		defer w.close()
		defer c.Close()
		if _, err := c.Router("o").Invoke("m", nil); err == nil {
			t.Error("Invoke without WithShardKey succeeded")
		}
	})
}

// TestRouterStaleEpochRedirect: the world moves to epoch 2 after the
// router cached epoch 1. The routed invoke must be redirected exactly
// once, back off in virtual time, refresh, and succeed on the retry.
func TestRouterStaleEpochRedirect(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	w := newFakeShardWorld(t, rt, net, 2)
	c := newRouterClient(w)
	vtime.Run(rt, "main", func() {
		defer w.close()
		defer c.Close()
		r := c.Router("o").WithRedirectBackoff(10 * time.Millisecond)
		if err := r.Refresh(); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		w.advanceEpoch(128, true)

		t0 := rt.Now()
		if _, err := r.Invoke("m", nil, WithShardKey("k1")); err != nil {
			t.Fatalf("Invoke after epoch bump: %v", err)
		}
		if r.Epoch() != 2 {
			t.Errorf("Epoch after redirect = %d, want 2", r.Epoch())
		}
		if waited := rt.Now() - t0; waited < 10*time.Millisecond {
			t.Errorf("redirect retried after %v, before the 10ms backoff", waited)
		}
		rt.Lock()
		total := 0
		for _, n := range w.attempts {
			total += n
		}
		rt.Unlock()
		// One redirected attempt plus one successful retry (homes may move
		// across the epoch bump, but each attempt is a single delivery under
		// policy First with one replica per group).
		if total != 2 {
			t.Errorf("shard deliveries = %d, want 2 (one redirect, one retry)", total)
		}
	})
}

// TestRouterGivesUpAfterMaxRedirects: the directory keeps serving epoch 1
// while the shards installed epoch 2 — refresh never converges, so the
// router must stop after its redirect budget with a descriptive error.
func TestRouterGivesUpAfterMaxRedirects(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	w := newFakeShardWorld(t, rt, net, 2)
	c := newRouterClient(w)
	vtime.Run(rt, "main", func() {
		defer w.close()
		defer c.Close()
		r := c.Router("o").WithMaxRedirects(2).WithRedirectBackoff(time.Millisecond)
		if err := r.Refresh(); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		// Shards move on; the directory stays stale (installInShards only).
		rt.Lock()
		for _, gid := range w.table.Shards {
			w.installed[gid] = 2
		}
		rt.Unlock()

		_, err := r.Invoke("m", nil, WithShardKey("k1"))
		if err == nil {
			t.Fatal("Invoke succeeded against permanently mismatched epochs")
		}
		if !strings.Contains(err.Error(), "wrong-shard redirects") {
			t.Errorf("error %q does not mention redirects", err)
		}
		rt.Lock()
		total := 0
		for _, n := range w.attempts {
			total += n
		}
		rt.Unlock()
		if total != 3 {
			t.Errorf("shard deliveries = %d, want 3 (initial + 2 redirect retries)", total)
		}
	})
}

// TestRouterBackoffIsBoundedAndDoubles pins the backoff schedule: 2ms, 4ms,
// 8ms... capped at 100ms, all in virtual time.
func TestRouterBackoffDoubles(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	w := newFakeShardWorld(t, rt, net, 2)
	c := newRouterClient(w)
	vtime.Run(rt, "main", func() {
		defer w.close()
		defer c.Close()
		r := c.Router("o").WithMaxRedirects(3).WithRedirectBackoff(4 * time.Millisecond)
		if err := r.Refresh(); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		rt.Lock()
		for _, gid := range w.table.Shards {
			w.installed[gid] = 2
		}
		rt.Unlock()
		t0 := rt.Now()
		if _, err := r.Invoke("m", nil, WithShardKey("k1")); err == nil {
			t.Fatal("Invoke succeeded against permanently mismatched epochs")
		}
		// 3 retries → backoffs 4 + 8 + 16 = 28ms of virtual sleep at least.
		if waited := rt.Now() - t0; waited < 28*time.Millisecond {
			t.Errorf("total backoff %v, want >= 28ms (4+8+16)", waited)
		}
	})
}
