package client

import (
	"errors"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/replica"
	"github.com/replobj/replobj/internal/transport"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

func TestReplyPolicyNeed(t *testing.T) {
	cases := []struct {
		p    ReplyPolicy
		n    int
		want int
	}{
		{First, 3, 1},
		{Majority, 3, 2},
		{Majority, 4, 3},
		{Majority, 1, 1},
		{All, 3, 3},
	}
	for _, c := range cases {
		if got := c.p.need(c.n); got != c.want {
			t.Errorf("%v.need(%d) = %d, want %d", c.p, c.n, got, c.want)
		}
	}
	for _, c := range []struct {
		p    ReplyPolicy
		want string
	}{{First, "first"}, {Majority, "majority"}, {All, "all"}} {
		if got := c.p.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// fakeGroup simulates replicas that answer Submits directly (no scheduler):
// enough to unit-test the client's collection, retransmission and timeout
// logic in isolation.
type fakeGroup struct {
	rt    vtime.Runtime
	net   *transport.Inproc
	ids   []wire.NodeID
	eps   []transport.Endpoint
	mute  map[wire.NodeID]bool // muted replicas never reply
	delay map[wire.NodeID]time.Duration
	seen  map[string]int // per-id delivery count (across replicas)
}

func newFakeGroup(rt vtime.Runtime, net *transport.Inproc, n int) *fakeGroup {
	fg := &fakeGroup{
		rt:    rt,
		net:   net,
		mute:  make(map[wire.NodeID]bool),
		delay: make(map[wire.NodeID]time.Duration),
		seen:  make(map[string]int),
	}
	for i := 0; i < n; i++ {
		id := wire.ReplicaID("g", i)
		fg.ids = append(fg.ids, id)
		ep := net.Endpoint(id)
		fg.eps = append(fg.eps, ep)
		rt.Go("fake/"+string(id), func() {
			for {
				msg, ok := ep.Recv()
				if !ok {
					return
				}
				sub, ok := msg.Payload.(gcs.Submit)
				if !ok {
					continue
				}
				req, ok := sub.Payload.(replica.Request)
				if !ok {
					continue
				}
				rt.Lock()
				fg.seen[sub.ID]++
				muted := fg.mute[id]
				d := fg.delay[id]
				rt.Unlock()
				if muted {
					continue
				}
				if d > 0 {
					rt.Sleep(d)
				}
				ep.Send(req.ReplyTo, replica.Reply{ID: req.ID, From: id, Result: []byte("ok")})
			}
		})
	}
	return fg
}

// close releases the fake replicas' endpoints so their receive loops exit
// before the virtual kernel reaches quiescence. Call inside vtime.Run.
func (fg *fakeGroup) close() {
	for _, ep := range fg.eps {
		ep.Close()
	}
}

func (fg *fakeGroup) directory() *replica.Directory {
	d := replica.NewDirectory()
	d.Add("g", fg.ids)
	return d
}

func TestClientMajorityReturnsAfterTwoOfThree(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	fg := newFakeGroup(rt, net, 3)
	rt.Lock()
	fg.delay[fg.ids[2]] = time.Hour // third replica effectively silent
	rt.Unlock()
	c := New(Config{RT: rt, Name: "c1", Directory: fg.directory(), Network: net, Policy: Majority, Timeout: 5 * time.Second})
	vtime.Run(rt, "main", func() {
		defer fg.close()
		defer c.Close()
		out, err := c.Invoke("g", "m", nil)
		if err != nil || string(out) != "ok" {
			t.Errorf("Invoke = (%q, %v)", out, err)
		}
		if now := rt.Now(); now > time.Second {
			t.Errorf("majority reply took %v; must not wait for the slow replica", now)
		}
	})
}

func TestClientAllWaitsForEveryReplica(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	fg := newFakeGroup(rt, net, 3)
	rt.Lock()
	fg.delay[fg.ids[2]] = 50 * time.Millisecond
	rt.Unlock()
	c := New(Config{RT: rt, Name: "c1", Directory: fg.directory(), Network: net, Policy: All, Timeout: 5 * time.Second})
	vtime.Run(rt, "main", func() {
		defer fg.close()
		defer c.Close()
		if _, err := c.Invoke("g", "m", nil); err != nil {
			t.Fatal(err)
		}
		if now := rt.Now(); now < 50*time.Millisecond {
			t.Errorf("All policy returned at %v, before the slowest replica", now)
		}
	})
}

func TestClientTimesOutWhenQuorumUnreachable(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	fg := newFakeGroup(rt, net, 3)
	rt.Lock()
	fg.mute[fg.ids[1]] = true
	fg.mute[fg.ids[2]] = true
	rt.Unlock()
	c := New(Config{RT: rt, Name: "c1", Directory: fg.directory(), Network: net, Policy: Majority,
		Timeout: 300 * time.Millisecond, Retransmit: 50 * time.Millisecond})
	vtime.Run(rt, "main", func() {
		defer fg.close()
		defer c.Close()
		_, err := c.Invoke("g", "m", nil)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	})
}

func TestClientRetransmitsUntilDelivered(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	fg := newFakeGroup(rt, net, 3)
	// Drop everything from the client for a while; retransmissions after
	// the window must get through.
	cid := wire.ClientID("c1")
	net.SetDropRule(func(from, to wire.NodeID) bool { return from == cid })
	c := New(Config{RT: rt, Name: "c1", Directory: fg.directory(), Network: net, Policy: Majority,
		Timeout: 5 * time.Second, Retransmit: 20 * time.Millisecond})
	vtime.Run(rt, "main", func() {
		defer fg.close()
		defer c.Close()
		rt.Go("heal", func() {
			rt.Sleep(100 * time.Millisecond)
			net.SetDropRule(nil)
		})
		if _, err := c.Invoke("g", "m", nil); err != nil {
			t.Fatal(err)
		}
		if now := rt.Now(); now < 100*time.Millisecond {
			t.Errorf("delivered at %v despite the drop window", now)
		}
	})
}

func TestClientUnknownGroup(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	c := New(Config{RT: rt, Name: "c1", Directory: replica.NewDirectory(), Network: net})
	vtime.Run(rt, "main", func() {
		defer c.Close()
		if _, err := c.Invoke("ghost", "m", nil); err == nil {
			t.Error("Invoke on unknown group succeeded")
		}
	})
}

func TestClientCloseUnblocksInvoke(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	fg := newFakeGroup(rt, net, 3)
	rt.Lock()
	for _, id := range fg.ids {
		fg.mute[id] = true
	}
	rt.Unlock()
	c := New(Config{RT: rt, Name: "c1", Directory: fg.directory(), Network: net, Timeout: time.Hour})
	vtime.Run(rt, "main", func() {
		defer fg.close()
		done := vtime.NewMailbox[error](rt, "done")
		rt.Go("invoker", func() {
			_, err := c.Invoke("g", "m", nil)
			done.Put(err)
		})
		rt.Sleep(10 * time.Millisecond)
		c.Close()
		err, _ := done.Get()
		if err == nil {
			t.Error("Invoke survived Close")
		}
	})
}

func TestClientErrorReplyPropagates(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := transport.NewInproc(rt)
	// Replicas that reply with an application error.
	ids := []wire.NodeID{wire.ReplicaID("g", 0)}
	ep := net.Endpoint(ids[0])
	rt.Go("errnode", func() {
		for {
			msg, ok := ep.Recv()
			if !ok {
				return
			}
			if sub, ok := msg.Payload.(gcs.Submit); ok {
				req := sub.Payload.(replica.Request)
				ep.Send(req.ReplyTo, replica.Reply{ID: req.ID, From: ids[0], Err: "boom"})
			}
		}
	})
	d := replica.NewDirectory()
	d.Add("g", ids)
	c := New(Config{RT: rt, Name: "c1", Directory: d, Network: net, Policy: First, Timeout: time.Second})
	vtime.Run(rt, "main", func() {
		defer ep.Close()
		defer c.Close()
		_, err := c.Invoke("g", "m", nil)
		if err == nil || err.Error() != "boom" {
			t.Errorf("err = %v, want boom", err)
		}
	})
}
