package passive

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"
	"time"

	replobj "github.com/replobj/replobj"
	"github.com/replobj/replobj/internal/vtime"
)

// journalState is the test object: an append-only log guarded by a mutex,
// with produce/consume coordination to exercise condition variables during
// replay.
type journalState struct {
	Entries []byte
	Items   []byte
}

func (s *journalState) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (s *journalState) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(s)
}

func registerHandlers(g *replobj.Group) {
	g.Register("append", func(inv *replobj.Invocation) ([]byte, error) {
		st := inv.State().(*journalState)
		if err := inv.Lock("log"); err != nil {
			return nil, err
		}
		defer func() { _ = inv.Unlock("log") }()
		inv.Compute(time.Millisecond)
		st.Entries = append(st.Entries, inv.Args()[0])
		return nil, nil
	})
	g.Register("produce", func(inv *replobj.Invocation) ([]byte, error) {
		st := inv.State().(*journalState)
		if err := inv.Lock("buf"); err != nil {
			return nil, err
		}
		defer func() { _ = inv.Unlock("buf") }()
		st.Items = append(st.Items, inv.Args()[0])
		return nil, inv.Notify("buf", "")
	})
	g.Register("consume", func(inv *replobj.Invocation) ([]byte, error) {
		st := inv.State().(*journalState)
		if err := inv.Lock("buf"); err != nil {
			return nil, err
		}
		defer func() { _ = inv.Unlock("buf") }()
		for len(st.Items) == 0 {
			if _, err := inv.Wait("buf", "", 0); err != nil {
				return nil, err
			}
		}
		v := st.Items[0]
		st.Items = st.Items[1:]
		if err := inv.Lock("log"); err != nil {
			return nil, err
		}
		defer func() { _ = inv.Unlock("log") }()
		st.Entries = append(st.Entries, v|0x80)
		return []byte{v}, nil
	})
}

// runPrimary executes a workload on a journaling single-replica primary and
// returns the journal and the primary's final state.
func runPrimary(t *testing.T, kind replobj.SchedulerKind, workload func(rt vtime.Runtime, c *replobj.Cluster)) (*Journal, journalState) {
	t.Helper()
	rt := vtime.Virtual()
	defer rt.Stop()
	j := NewJournal()
	c := replobj.NewCluster(rt)
	var state *journalState
	g, err := c.NewGroup("primary", 1,
		replobj.WithScheduler(kind),
		replobj.WithJournal(j.Record),
		replobj.WithState(func() any {
			state = &journalState{}
			return state
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	registerHandlers(g)
	g.Start()
	var final journalState
	vtime.Run(rt, "primary-main", func() {
		defer c.Close()
		workload(rt, c)
		final = *state // no requests in flight: workload has drained
	})
	return j, final
}

func replayAndCompare(t *testing.T, kind replobj.SchedulerKind, j *Journal, want journalState) {
	t.Helper()
	rt := vtime.Virtual()
	defer rt.Stop()
	var got journalState
	err := Replay(ReplayConfig{
		RT:        rt,
		Scheduler: kind,
		State:     func() any { return &journalState{} },
		Register:  registerHandlers,
	}, j, func(state any) {
		got = *state.(*journalState)
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !reflect.DeepEqual(got.Entries, want.Entries) {
		t.Errorf("replayed entries %v != primary %v", got.Entries, want.Entries)
	}
	if !reflect.DeepEqual(got.Items, want.Items) {
		t.Errorf("replayed items %v != primary %v", got.Items, want.Items)
	}
}

// TestReplayReachesPrimaryState: concurrent clients on the primary; the
// backup re-executes the journal and must match byte for byte — for every
// replay-safe strategy.
func TestReplayReachesPrimaryState(t *testing.T) {
	for _, kind := range []replobj.SchedulerKind{replobj.SEQ, replobj.SL, replobj.SAT, replobj.ADSAT, replobj.MAT} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			j, final := runPrimary(t, kind, func(rt vtime.Runtime, c *replobj.Cluster) {
				done := vtime.NewMailbox[error](rt, "done")
				for ci := 0; ci < 3; ci++ {
					ci := ci
					rt.Go("client", func() {
						cl := c.NewClient(fmt.Sprintf("c%d", ci))
						var err error
						for i := 0; i < 4 && err == nil; i++ {
							_, err = cl.Invoke("primary", "append", []byte{byte(ci*16 + i)})
						}
						done.Put(err)
					})
				}
				for i := 0; i < 3; i++ {
					if err, _ := done.Get(); err != nil {
						t.Error(err)
					}
				}
			})
			if j.Len() != 12 {
				t.Fatalf("journal has %d entries, want 12", j.Len())
			}
			replayAndCompare(t, kind, j, final)
		})
	}
}

// TestReplayWithConditionVariables: the journal interleaves consumes that
// wait with produces that notify; replay must not deadlock and must reach
// the same state (exercises the pipelined re-submission).
func TestReplayWithConditionVariables(t *testing.T) {
	for _, kind := range []replobj.SchedulerKind{replobj.ADSAT, replobj.MAT} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			j, final := runPrimary(t, kind, func(rt vtime.Runtime, c *replobj.Cluster) {
				done := vtime.NewMailbox[error](rt, "done")
				rt.Go("consumer", func() {
					cl := c.NewClient("cons")
					var err error
					for i := 0; i < 4 && err == nil; i++ {
						_, err = cl.Invoke("primary", "consume", nil)
					}
					done.Put(err)
				})
				rt.Go("producer", func() {
					cl := c.NewClient("prod")
					var err error
					for i := 1; i <= 4 && err == nil; i++ {
						rt.Sleep(3 * time.Millisecond)
						_, err = cl.Invoke("primary", "produce", []byte{byte(i)})
					}
					done.Put(err)
				})
				for i := 0; i < 2; i++ {
					if err, _ := done.Get(); err != nil {
						t.Error(err)
					}
				}
			})
			replayAndCompare(t, kind, j, final)
		})
	}
}

// TestCheckpointTruncatesJournal: a checkpoint plus journal suffix replays
// to the full state.
func TestCheckpointTruncatesJournal(t *testing.T) {
	kind := replobj.ADSAT
	rt := vtime.Virtual()
	defer rt.Stop()
	j := NewJournal()
	c := replobj.NewCluster(rt)
	var state *journalState
	g, err := c.NewGroup("primary", 1,
		replobj.WithScheduler(kind),
		replobj.WithJournal(j.Record),
		replobj.WithState(func() any {
			state = &journalState{}
			return state
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	registerHandlers(g)
	// A checkpoint method executed *through the group* is ordered with the
	// requests, so the snapshot is consistent with the journal cut.
	g.Register("checkpoint", func(inv *replobj.Invocation) ([]byte, error) {
		st := inv.State().(*journalState)
		if err := inv.Lock("log"); err != nil {
			return nil, err
		}
		defer func() { _ = inv.Unlock("log") }()
		return st.Snapshot()
	})
	g.Start()

	var final journalState
	vtime.Run(rt, "main", func() {
		defer c.Close()
		cl := c.NewClient("c1")
		for i := 0; i < 5; i++ {
			if _, err := cl.Invoke("primary", "append", []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := cl.Invoke("primary", "checkpoint", nil)
		if err != nil {
			t.Fatal(err)
		}
		j.Checkpoint(snap)
		for i := 5; i < 8; i++ {
			if _, err := cl.Invoke("primary", "append", []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		final = *state
	})
	if j.Len() >= 4 {
		t.Fatalf("journal holds %d entries after checkpoint, want < 4", j.Len())
	}
	replayAndCompare(t, kind, j, final)
}

// TestReplayRejectsUnsafeSchedulers: LSA and PDS require their scheduler
// decisions in the journal; Replay must refuse rather than diverge.
func TestReplayRejectsUnsafeSchedulers(t *testing.T) {
	for _, kind := range []replobj.SchedulerKind{replobj.LSA, replobj.PDS, replobj.PDS2} {
		rt := vtime.Virtual()
		err := Replay(ReplayConfig{
			RT:        rt,
			Scheduler: kind,
			State:     func() any { return &journalState{} },
			Register:  registerHandlers,
		}, NewJournal(), nil)
		rt.Stop()
		if err != ErrNotReplaySafe {
			t.Errorf("%s: err = %v, want ErrNotReplaySafe", kind, err)
		}
	}
}
