// Package passive implements passive (primary-backup) replication on top of
// the deterministic scheduling infrastructure — the paper's second
// motivation for determinism (Section 1): "a secondary replica has to have
// the same deterministic behaviour if it wants to obtain a state identical
// to that of a failed primary by re-executing requests from such a log."
//
// The primary executes client requests and journals them at their totally
// ordered dispatch points; the state is checkpointed periodically, and the
// journal holds only the suffix since the last checkpoint. A backup
// restores the checkpoint and re-executes the journal under the *same*
// deterministic scheduler, reaching the identical state.
//
// Replay determinism holds for the strategies whose every scheduling
// decision is anchored to the delivered request stream: SEQ, SL, SAT,
// ADETS-SAT and ADETS-MAT. ADETS-LSA's leader grants (its mutex tables)
// and ADETS-PDS's round compositions depend on execution timing; to replay
// those, the journal would also have to capture the scheduler's own
// decisions — exactly the determinism requirement the paper derives for
// passive replication.
package passive

import (
	"errors"
	"fmt"
	"sync"
	"time"

	replobj "github.com/replobj/replobj"
	"github.com/replobj/replobj/internal/replica"
	"github.com/replobj/replobj/internal/vtime"
)

// Snapshotter is implemented by object states that support checkpointing.
type Snapshotter interface {
	// Snapshot serializes the state; it is called while the caller holds
	// whatever locks make the state quiescent.
	Snapshot() ([]byte, error)
	// Restore replaces the state from a snapshot.
	Restore(data []byte) error
}

// Journal records the requests a primary executed, plus at most one
// checkpoint that truncates it. Safe for concurrent use.
type Journal struct {
	mu         sync.Mutex
	entries    []replica.Request
	checkpoint []byte
	haveCkpt   bool
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// Record appends a request (installed as the group's WithJournal hook).
func (j *Journal) Record(req replica.Request) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries = append(j.entries, req)
}

// Len returns the number of journaled requests since the last checkpoint.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Checkpoint installs a state snapshot and truncates the journal. The
// snapshot must capture the state *after* the already-journaled requests;
// call it from a quiescent point (e.g. a dedicated "checkpoint" method
// executed through the group itself, so it is ordered with the requests).
func (j *Journal) Checkpoint(snapshot []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.checkpoint = append([]byte(nil), snapshot...)
	j.haveCkpt = true
	j.entries = nil
}

// Contents returns the checkpoint (nil if none) and a copy of the entries.
func (j *Journal) Contents() (checkpoint []byte, entries []replica.Request, haveCkpt bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]byte(nil), j.checkpoint...), append([]replica.Request(nil), j.entries...), j.haveCkpt
}

// ReplayConfig describes how to reconstruct the backup.
type ReplayConfig struct {
	// RT is the runtime the backup runs on.
	RT vtime.Runtime
	// Scheduler is the strategy the primary used; must be replay-safe
	// (see the package comment).
	Scheduler replobj.SchedulerKind
	// State builds the empty object state (it must implement Snapshotter
	// if the journal carries a checkpoint).
	State func() any
	// Register installs the object's handlers on the backup group.
	Register func(g *replobj.Group)
	// Timeout bounds each replayed invocation (default 30s).
	Timeout time.Duration
}

// ErrNotReplaySafe is returned for scheduler strategies whose decisions are
// not fully anchored to the request stream.
var ErrNotReplaySafe = errors.New("passive: scheduler strategy is not replay-safe (its scheduling decisions are not functions of the request log alone)")

func replaySafe(kind replobj.SchedulerKind) bool {
	switch kind {
	case replobj.SEQ, replobj.SL, replobj.SAT, replobj.ADSAT, replobj.MAT:
		return true
	}
	return false
}

// Replay reconstructs a backup from a journal: it restores the checkpoint
// (if any), re-executes every journaled request in order under the same
// deterministic scheduler, and returns the reconstructed state.
//
// The returned state object is live only until the function returns; copy
// out what you need inside inspect (called before teardown, with no
// requests in flight).
func Replay(cfg ReplayConfig, j *Journal, inspect func(state any)) error {
	if !replaySafe(cfg.Scheduler) {
		return ErrNotReplaySafe
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	checkpoint, entries, haveCkpt := j.Contents()

	cluster := replobj.NewCluster(cfg.RT)
	var state any
	g, err := cluster.NewGroup("passive-backup", 1,
		replobj.WithScheduler(cfg.Scheduler),
		replobj.WithState(func() any {
			state = cfg.State()
			return state
		}),
	)
	if err != nil {
		return err
	}
	cfg.Register(g)
	g.Start()

	if haveCkpt {
		snap, ok := state.(Snapshotter)
		if !ok {
			return fmt.Errorf("passive: journal has a checkpoint but the state does not implement Snapshotter")
		}
		if err := snap.Restore(checkpoint); err != nil {
			return fmt.Errorf("passive: restore checkpoint: %w", err)
		}
	}

	var replayErr error
	vtime.Run(cfg.RT, "passive-replay", func() {
		defer cluster.Close()
		// Submissions must reach the backup in journal order, but the
		// *executions* must be free to interleave under the scheduler —
		// strictly sequential replay would deadlock any workload in which
		// one request waits on a condition variable for a later one.
		// Launch one client per entry, staggered by 1µs of virtual time so
		// the arrival (and thus delivery) order equals the journal order.
		results := vtime.NewMailbox[error](cfg.RT, "passive-replay-results")
		for i, req := range entries {
			i, req := i, req
			cl := cluster.NewClient(fmt.Sprintf("passive-replayer-%d", i),
				replobj.WithInvocationTimeout(cfg.Timeout))
			cfg.RT.Go(fmt.Sprintf("replay-%d", i), func() {
				_, err := cl.Invoke("passive-backup", req.Method, req.Args)
				if err != nil {
					err = fmt.Errorf("passive: replay entry %d (%s): %w", i, req.Method, err)
				}
				results.Put(err)
			})
			cfg.RT.Sleep(time.Microsecond)
		}
		for range entries {
			if err, _ := results.Get(); err != nil && replayErr == nil {
				replayErr = err
			}
		}
		if replayErr == nil && inspect != nil {
			inspect(state)
		}
	})
	return replayErr
}
