// Package spec implements the bookkeeping for speculative execution on
// optimistic delivery: replicas begin executing a request against a forked
// copy of the object state as soon as the Submit arrives, before the
// sequencer assigns it a position. When the total order later confirms the
// request, the precomputed reply is released immediately if the speculation
// is still valid — i.e. no conflicting request was dispatched between the
// fork's base position and the confirmed position — and discarded (the
// ordered execution re-runs it from scratch) otherwise.
//
// The Manager holds per-replica speculation state: the cached fork image
// (a snapshot of the primary state), per-conflict-class dispatch floors
// used to validate a speculation at confirm time, the in-flight speculation
// records, and the sequencer's spontaneous-order hints. It performs no
// locking of its own — every method must be called under the replica's
// runtime lock (vtime.Runtime), matching how the rest of the replica's
// bookkeeping is guarded.
//
// Correctness does not depend on speculation: a speculative run only ever
// touches the fork, never the primary state, so an abort is a plain
// discard. The validation here is deliberately conservative (a stale fork
// is never declared a hit), which keeps committed trace digests and
// replica state bit-identical to a non-speculative run.
package spec

// Record tracks one in-flight speculative execution.
type Record struct {
	// Base is the stream position the fork image was taken at: every
	// dispatch at or below Base is reflected in the forked state.
	Base uint64
	// Classes are the request's declared conflict classes (empty = global).
	Classes []string
	// Done marks the speculative handler as finished with Reply valid.
	Done bool
	// Aborted marks the speculation as poisoned (handler used a facility
	// that cannot run speculatively, e.g. locks or nested invocations).
	Aborted bool
	// Confirmed marks the total order as having validated this speculation
	// while the handler was still running: its validity verdict is frozen
	// (later dispatches are ordered after this request and cannot conflict
	// retroactively) and Finish releases the reply the moment it lands.
	Confirmed bool
	// Released marks the reply as already sent to the client — at confirm
	// time (Hit) or at Finish after a Pending confirm; the ordered
	// execution then suppresses its own duplicate send.
	Released bool
	// Reply is the precomputed reply (opaque to this package).
	Reply any
}

// Outcome classifies a confirmation.
type Outcome int

// Confirmation outcomes.
const (
	// Miss: no speculation record exists for the request (it was never
	// started, or the map was reset by a snapshot install).
	Miss Outcome = iota
	// Hit: the speculation finished and its fork base is at or above every
	// conflicting dispatch — the precomputed reply equals what the ordered
	// execution will compute.
	Hit
	// Stale: a conflicting request was dispatched after the fork base; the
	// precomputed reply may be wrong and must be discarded.
	Stale
	// Aborted: the speculative handler bailed out (unsupported facility).
	Aborted
	// Pending: the speculation is valid but the handler is still running —
	// the reply is released by Finish when it lands (deferred hit), unless
	// the ordered execution completes first (see Resolve).
	Pending
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Stale:
		return "stale"
	case Aborted:
		return "abort"
	case Pending:
		return "pending"
	default:
		return "miss"
	}
}

// maxRecords caps in-flight speculations; beyond it Begin declines, which
// only costs latency, never correctness.
const maxRecords = 1 << 12

// maxHints caps remembered sequencer hints.
const maxHints = 1 << 12

// Manager is a replica's speculation state. All methods must run under the
// replica's runtime lock; Manager does no locking of its own.
type Manager struct {
	// classFloor[c] is the highest stream position at which a request
	// declaring class c was dispatched to local execution.
	classFloor map[string]uint64
	// globalFloor is the highest position of a classless (global) dispatch,
	// which conflicts with every class.
	globalFloor uint64
	// maxFloor is the highest position of any dispatch; a classless
	// speculation conflicts with everything and validates against it.
	maxFloor uint64
	// lastSeq is the highest dispatched position — the base a fresh fork
	// image must cover to be current.
	lastSeq uint64

	// Cached fork image: a serialized snapshot of the primary state taken
	// at imageSeq with no executions in flight.
	image    []byte
	imageGob bool
	imageSeq uint64
	hasImage bool

	records  map[string]*Record
	recOrder []string // insertion order, for cap eviction of dead records
	hints    map[string]uint64
	hintsFD  []string // FIFO eviction order for hints
}

// NewManager returns an empty speculation manager.
func NewManager() *Manager {
	return &Manager{
		classFloor: make(map[string]uint64),
		records:    make(map[string]*Record),
		hints:      make(map[string]uint64),
	}
}

// TrackDispatch records that a fresh request with the given conflict
// classes was dispatched to local execution at stream position seq. Every
// later speculation whose classes intersect must fork from an image at or
// above seq to be valid.
func (m *Manager) TrackDispatch(seq uint64, classes []string) {
	if seq > m.maxFloor {
		m.maxFloor = seq
	}
	if seq > m.lastSeq {
		m.lastSeq = seq
	}
	if len(classes) == 0 {
		if seq > m.globalFloor {
			m.globalFloor = seq
		}
		return
	}
	for _, c := range classes {
		if seq > m.classFloor[c] {
			m.classFloor[c] = seq
		}
	}
}

// NeedImage reports whether the cached fork image is missing or stale
// (taken before the latest dispatch).
func (m *Manager) NeedImage() bool {
	return !m.hasImage || m.imageSeq < m.lastSeq
}

// LastSeq returns the highest dispatched stream position — the base a
// fork image snapshotted now covers.
func (m *Manager) LastSeq() uint64 { return m.lastSeq }

// SetImage installs a fresh fork image snapshotted at stream position seq.
func (m *Manager) SetImage(data []byte, usedGob bool, seq uint64) {
	m.image = data
	m.imageGob = usedGob
	m.imageSeq = seq
	m.hasImage = true
}

// Image returns the cached fork image (data, gob-encoded?, base position).
// ok is false when no image is cached.
func (m *Manager) Image() (data []byte, usedGob bool, seq uint64, ok bool) {
	return m.image, m.imageGob, m.imageSeq, m.hasImage
}

// Begin opens a speculation record for id, forked from base. It declines
// (returns false) when a record already exists, or when too many are in
// flight and none can be evicted (only unconfirmed records — speculations
// whose request was never ordered, e.g. a submit lost before the
// sequencer — are evictable).
func (m *Manager) Begin(id string, base uint64, classes []string) bool {
	if _, dup := m.records[id]; dup {
		return false
	}
	if len(m.records) >= maxRecords && !m.evictOneLocked() {
		return false
	}
	m.records[id] = &Record{Base: base, Classes: classes}
	m.recOrder = append(m.recOrder, id)
	return true
}

// evictOneLocked drops the oldest record that the total order has not yet
// touched, pruning recOrder entries already removed via Confirm/Resolve.
func (m *Manager) evictOneLocked() bool {
	for len(m.recOrder) > 0 {
		id := m.recOrder[0]
		m.recOrder = m.recOrder[1:]
		rec := m.records[id]
		if rec == nil {
			continue // already confirmed/resolved
		}
		if !rec.Confirmed && !rec.Released {
			delete(m.records, id)
			return true
		}
		// Confirmed records are about to be consumed; put it back and give up
		// rather than scanning past it (the window self-clears quickly).
		m.recOrder = append([]string{id}, m.recOrder...)
		return false
	}
	return false
}

// Finish stores the speculative reply for id. ok is false when the record
// is gone (already resolved) or aborted. release is true when the total
// order already confirmed this speculation as valid (a Pending confirm):
// the caller must send the reply now — the deferred-hit path.
func (m *Manager) Finish(id string, reply any) (release, ok bool) {
	rec := m.records[id]
	if rec == nil || rec.Aborted {
		return false, false
	}
	rec.Done = true
	rec.Reply = reply
	if rec.Confirmed && !rec.Released {
		rec.Released = true
		return true, true
	}
	return false, true
}

// Abort poisons the speculation record for id (if any).
func (m *Manager) Abort(id string) {
	if rec := m.records[id]; rec != nil {
		rec.Aborted = true
	}
}

// floorFor returns the highest dispatched position conflicting with the
// given class set.
func (m *Manager) floorFor(classes []string) uint64 {
	if len(classes) == 0 {
		// Global request: conflicts with every prior dispatch.
		return m.maxFloor
	}
	floor := m.globalFloor
	for _, c := range classes {
		if f := m.classFloor[c]; f > floor {
			floor = f
		}
	}
	return floor
}

// Confirm resolves the speculation for id at its confirmed stream
// position. It must be called before TrackDispatch of the confirmed
// request itself. On Hit the returned reply must be sent immediately; on
// Pending the speculation is valid but still running (Finish releases it);
// on Stale/Aborted the speculation is discarded and the ordered execution
// alone produces the reply. Hit/Pending records survive until Resolve.
func (m *Manager) Confirm(id string, classes []string) (reply any, out Outcome) {
	rec := m.records[id]
	if rec == nil {
		return nil, Miss
	}
	switch {
	case rec.Aborted:
		delete(m.records, id)
		return nil, Aborted
	case m.floorFor(classes) > rec.Base:
		delete(m.records, id)
		return nil, Stale
	case !rec.Done:
		// Valid but still running: freeze the verdict. Every later dispatch
		// is ordered after this request and cannot conflict retroactively.
		rec.Confirmed = true
		return nil, Pending
	default:
		rec.Confirmed = true
		rec.Released = true
		return rec.Reply, Hit
	}
}

// Resolve consumes the record at ordered-execution completion. released
// reports that the precomputed reply was (or is being) sent — the caller
// compares it against the authoritative reply and suppresses its own send
// on a match. late reports a confirmed-valid speculation that the ordered
// execution outran: no reply was released early.
func (m *Manager) Resolve(id string) (reply any, released, late bool) {
	rec := m.records[id]
	if rec == nil {
		return nil, false, false
	}
	delete(m.records, id)
	if rec.Released {
		return rec.Reply, true, false
	}
	return nil, false, rec.Confirmed
}

// Hint records the sequencer's predicted stream position for id.
func (m *Manager) Hint(id string, seq uint64) {
	if _, dup := m.hints[id]; !dup {
		if len(m.hintsFD) >= maxHints {
			old := m.hintsFD[0]
			m.hintsFD = m.hintsFD[1:]
			delete(m.hints, old)
		}
		m.hintsFD = append(m.hintsFD, id)
	}
	m.hints[id] = seq
}

// HintMatch consumes the hint for id and reports whether it predicted the
// confirmed position exactly. ok is false when no hint was recorded.
func (m *Manager) HintMatch(id string, seq uint64) (match, ok bool) {
	h, ok := m.hints[id]
	if !ok {
		return false, false
	}
	delete(m.hints, id)
	return h == seq, true
}

// Pending returns the number of open speculation records (tests).
func (m *Manager) Pending() int { return len(m.records) }

// Reset drops every record, hint and the cached image, and raises all
// floors to seq. Called when a snapshot install rewrites the primary state
// wholesale: nothing forked before it can be valid afterwards.
func (m *Manager) Reset(seq uint64) {
	m.classFloor = make(map[string]uint64)
	m.globalFloor = seq
	m.maxFloor = seq
	if seq > m.lastSeq {
		m.lastSeq = seq
	}
	m.image = nil
	m.hasImage = false
	m.imageSeq = 0
	m.records = make(map[string]*Record)
	m.recOrder = nil
	m.hints = make(map[string]uint64)
	m.hintsFD = nil
}
