package spec

import "testing"

func TestHitWhenNoConflictingDispatch(t *testing.T) {
	m := NewManager()
	m.TrackDispatch(5, []string{"a"})
	m.SetImage([]byte("img"), false, 5)
	if m.NeedImage() {
		t.Fatal("image at lastSeq should be current")
	}
	if !m.Begin("x", 5, []string{"b"}) {
		t.Fatal("Begin declined")
	}
	if _, ok := m.Finish("x", "reply-x"); !ok {
		t.Fatal("Finish declined")
	}
	rep, out := m.Confirm("x", []string{"b"})
	if out != Hit {
		t.Fatalf("outcome = %v, want Hit", out)
	}
	if rep != "reply-x" {
		t.Fatalf("reply = %v", rep)
	}
	if got, rel, late := m.Resolve("x"); !rel || late || got != "reply-x" {
		t.Fatalf("Resolve = %v,%v,%v", got, rel, late)
	}
	if m.Pending() != 0 {
		t.Fatalf("records leak: %d", m.Pending())
	}
}

func TestStaleOnConflictingClass(t *testing.T) {
	m := NewManager()
	m.Begin("x", 3, []string{"a"})
	m.Finish("x", "r")
	m.TrackDispatch(4, []string{"a"}) // conflicts, after the fork base
	if _, out := m.Confirm("x", []string{"a"}); out != Stale {
		t.Fatalf("outcome = %v, want Stale", out)
	}
	if _, rel, late := m.Resolve("x"); rel || late {
		t.Fatal("stale record must not be released")
	}
}

func TestDisjointClassStaysValid(t *testing.T) {
	m := NewManager()
	m.Begin("x", 3, []string{"a"})
	m.Finish("x", "r")
	m.TrackDispatch(4, []string{"b"}) // disjoint class
	if _, out := m.Confirm("x", []string{"a"}); out != Hit {
		t.Fatal("disjoint dispatch must not invalidate")
	}
}

func TestGlobalDispatchInvalidatesAll(t *testing.T) {
	m := NewManager()
	m.Begin("x", 3, []string{"a"})
	m.Finish("x", "r")
	m.TrackDispatch(4, nil) // classless/global
	if _, out := m.Confirm("x", []string{"a"}); out != Stale {
		t.Fatal("global dispatch must invalidate every class")
	}
}

func TestClasslessSpeculationChecksMaxFloor(t *testing.T) {
	m := NewManager()
	m.Begin("x", 3, nil)
	m.Finish("x", "r")
	m.TrackDispatch(4, []string{"zz"})
	if _, out := m.Confirm("x", nil); out != Stale {
		t.Fatal("classless speculation conflicts with everything")
	}
	m2 := NewManager()
	m2.TrackDispatch(3, []string{"zz"})
	m2.Begin("y", 3, nil)
	m2.Finish("y", "r")
	if _, out := m2.Confirm("y", nil); out != Hit {
		t.Fatal("classless speculation at current base should hit")
	}
}

func TestAbortAndUnfinished(t *testing.T) {
	m := NewManager()
	m.Begin("x", 0, nil)
	m.Abort("x")
	if _, ok := m.Finish("x", "r"); ok {
		t.Fatal("Finish after Abort must decline")
	}
	if _, out := m.Confirm("x", nil); out != Aborted {
		t.Fatal("want Aborted")
	}
	m.Begin("y", 0, nil)
	if _, out := m.Confirm("y", nil); out != Pending {
		t.Fatal("unfinished valid speculation confirms Pending")
	}
	// Deferred hit: Finish after a Pending confirm asks the caller to
	// release the reply; Resolve then reports it released.
	if release, ok := m.Finish("y", "ry"); !ok || !release {
		t.Fatalf("Finish after Pending = release %v ok %v", release, ok)
	}
	if got, rel, _ := m.Resolve("y"); !rel || got != "ry" {
		t.Fatalf("Resolve after deferred hit = %v,%v", got, rel)
	}
	// Late speculation: ordered execution resolves before Finish lands.
	m.Begin("w", 0, nil)
	if _, out := m.Confirm("w", nil); out != Pending {
		t.Fatal("want Pending")
	}
	if _, rel, late := m.Resolve("w"); rel || !late {
		t.Fatal("unfinished confirmed record resolves late")
	}
	if _, ok := m.Finish("w", "r"); ok {
		t.Fatal("Finish after Resolve must decline")
	}
	if _, out := m.Confirm("zz", nil); out != Miss {
		t.Fatal("unknown id confirms Miss")
	}
}

func TestBeginDeclinesDuplicatesAndOverflow(t *testing.T) {
	m := NewManager()
	if !m.Begin("x", 0, nil) || m.Begin("x", 0, nil) {
		t.Fatal("duplicate Begin must decline")
	}
	for i := 0; m.Pending() < maxRecords; i++ {
		m.Begin(string(rune('A'+i%26))+string(rune('0'+i%10))+itoa(i), 0, nil)
	}
	// At the cap, Begin evicts the oldest unconfirmed record ("x") and
	// proceeds — never-ordered speculations must not wedge the window.
	if !m.Begin("overflow", 0, nil) {
		t.Fatal("Begin at cap should evict a dead record and proceed")
	}
	if m.Pending() != maxRecords {
		t.Fatalf("eviction should keep the cap: %d", m.Pending())
	}
	if _, out := m.Confirm("x", nil); out != Miss {
		t.Fatal("oldest record should have been evicted")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestImageStaleness(t *testing.T) {
	m := NewManager()
	if !m.NeedImage() {
		t.Fatal("fresh manager needs an image")
	}
	m.SetImage([]byte("s"), true, 0)
	if m.NeedImage() {
		t.Fatal("image at base 0 with no dispatches is current")
	}
	m.TrackDispatch(1, nil)
	if !m.NeedImage() {
		t.Fatal("dispatch past imageSeq makes the image stale")
	}
	m.SetImage([]byte("s2"), false, 1)
	data, gob, seq, ok := m.Image()
	if !ok || gob || seq != 1 || string(data) != "s2" {
		t.Fatalf("Image = %q,%v,%d,%v", data, gob, seq, ok)
	}
}

func TestHints(t *testing.T) {
	m := NewManager()
	m.Hint("x", 7)
	if match, ok := m.HintMatch("x", 7); !ok || !match {
		t.Fatal("exact hint should match")
	}
	if _, ok := m.HintMatch("x", 7); ok {
		t.Fatal("hint must be consumed")
	}
	m.Hint("y", 3)
	if match, ok := m.HintMatch("y", 4); !ok || match {
		t.Fatal("wrong position must not match")
	}
	// FIFO eviction under the cap.
	for i := 0; i < maxHints+10; i++ {
		m.Hint("h"+itoa(i), uint64(i))
	}
	if _, ok := m.HintMatch("h0", 0); ok {
		t.Fatal("oldest hint should have been evicted")
	}
	if _, ok := m.HintMatch("h"+itoa(maxHints+9), uint64(maxHints+9)); !ok {
		t.Fatal("newest hint should survive")
	}
}

func TestReset(t *testing.T) {
	m := NewManager()
	m.TrackDispatch(4, []string{"a"})
	m.SetImage([]byte("s"), false, 4)
	m.Begin("x", 4, []string{"a"})
	m.Hint("x", 5)
	m.Reset(10)
	if _, _, _, ok := m.Image(); ok {
		t.Fatal("Reset must drop the image")
	}
	if m.Pending() != 0 {
		t.Fatal("Reset must drop records")
	}
	if _, ok := m.HintMatch("x", 5); ok {
		t.Fatal("Reset must drop hints")
	}
	// All floors raised to the reset position: a fork from below never hits.
	m.Begin("y", 4, []string{"zz"})
	m.Finish("y", "r")
	if _, out := m.Confirm("y", []string{"zz"}); out != Stale {
		t.Fatal("fork below the reset floor must be stale")
	}
	// A fork at the reset position hits again.
	m.Begin("z", 10, []string{"zz"})
	m.Finish("z", "r")
	if _, out := m.Confirm("z", []string{"zz"}); out != Hit {
		t.Fatal("fork at the reset floor should hit")
	}
}
