package pds

import (
	"testing"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// White-box tests of the deterministic PDS-2 second-grant conditions
// (evalSecondGrantsLocked): the conditions must depend only on other
// threads' committed state and mutex ownership — never on request timing.

// newBare builds a scheduler with n hand-constructed pool threads in the
// given states, bypassing the worker goroutines entirely.
func newBare(variant Variant, n int) (*Scheduler, *vtime.VirtualRuntime, []*adets.Thread) {
	rt := vtime.Virtual()
	s := New(Config{Variant: variant, PoolSize: n})
	s.env = adets.Env{RT: rt, Self: "g/0", Peers: []wire.NodeID{"g/0"}}
	s.reg = adets.NewRegistry(rt)
	threads := make([]*adets.Thread, n)
	rt.Lock()
	for i := 0; i < n; i++ {
		t := s.reg.NewThread("w", wire.LogicalID(rune('a'+i)))
		t.Sched = &pdsThread{state: stRunning, inActive: true}
		s.pool = append(s.pool, t)
		threads[i] = t
	}
	rt.Unlock()
	return s, rt, threads
}

func TestSecondGrantRequiresLowerCommitted(t *testing.T) {
	s, rt, th := newBare(PDS2, 2)
	defer rt.Stop()
	rt.Lock()
	defer rt.Unlock()
	// Thread 0: phase-1 granted, still running (uncommitted).
	st(th[0]).got1 = true
	st(th[0]).committed = false
	// Thread 1: phase-1 granted, requests a free second mutex.
	st(th[1]).got1 = true
	st(th[1]).state = stSuspended
	st(th[1]).reqMutex = "m"
	st(th[1]).secondPending = true
	s.evalSecondGrantsLocked()
	if !st(th[1]).secondPending {
		t.Error("second grant given while a lower-ID thread is uncommitted")
	}
	// Thread 0 commits (suspends): now the grant must happen.
	st(th[0]).state = stSuspended
	st(th[0]).committed = true
	s.evalSecondGrantsLocked()
	if st(th[1]).secondPending {
		t.Error("second grant withheld although all lower threads committed")
	}
	if got := s.lockState("m").owner; got != th[1].Logical {
		t.Errorf("owner of m = %q, want %q", got, th[1].Logical)
	}
	if !st(th[1]).phase2 || !st(th[1]).committed {
		t.Error("granted thread must enter phase 2 and count as committed")
	}
}

func TestSecondGrantRequiresFreeMutex(t *testing.T) {
	s, rt, th := newBare(PDS2, 2)
	defer rt.Stop()
	rt.Lock()
	defer rt.Unlock()
	st(th[0]).got1 = true
	st(th[0]).committed = true
	st(th[0]).state = stSuspended
	s.lockState("m").owner = "someone-else"
	st(th[1]).got1 = true
	st(th[1]).state = stSuspended
	st(th[1]).reqMutex = "m"
	st(th[1]).secondPending = true
	s.evalSecondGrantsLocked()
	if !st(th[1]).secondPending {
		t.Error("second grant given for a held mutex")
	}
	// Free it: grant must follow.
	s.lockState("m").owner = ""
	s.evalSecondGrantsLocked()
	if st(th[1]).secondPending {
		t.Error("second grant withheld for a free mutex")
	}
}

func TestSecondGrantRequiresLowerPhase1(t *testing.T) {
	s, rt, th := newBare(PDS2, 2)
	defer rt.Stop()
	rt.Lock()
	defer rt.Unlock()
	// Thread 0 has no phase-1 grant yet (suspended, eligible).
	st(th[0]).state = stSuspended
	st(th[0]).committed = true // committed but not granted: still blocks
	st(th[1]).got1 = true
	st(th[1]).state = stSuspended
	st(th[1]).reqMutex = "m"
	st(th[1]).secondPending = true
	s.evalSecondGrantsLocked()
	if !st(th[1]).secondPending {
		t.Error("second grant given while a lower thread lacks its phase-1 grant")
	}
}

func TestSecondGrantChainsInIDOrder(t *testing.T) {
	s, rt, th := newBare(PDS2, 3)
	defer rt.Stop()
	rt.Lock()
	defer rt.Unlock()
	// Threads 1 and 2 both pend second grants on distinct free mutexes;
	// thread 0 is committed. Granting 1 commits it, which unblocks 2 in the
	// same evaluation pass.
	st(th[0]).got1 = true
	st(th[0]).committed = true
	st(th[0]).state = stSuspended
	for i, m := range []adets.MutexID{"", "m1", "m2"} {
		if i == 0 {
			continue
		}
		st(th[i]).got1 = true
		st(th[i]).state = stSuspended
		st(th[i]).reqMutex = m
		st(th[i]).secondPending = true
	}
	s.evalSecondGrantsLocked()
	if st(th[1]).secondPending || st(th[2]).secondPending {
		t.Errorf("chained grants incomplete: pending1=%v pending2=%v",
			st(th[1]).secondPending, st(th[2]).secondPending)
	}
}

func TestPDS1NeverGrantsSeconds(t *testing.T) {
	s, rt, th := newBare(PDS1, 2)
	defer rt.Stop()
	rt.Lock()
	defer rt.Unlock()
	st(th[0]).got1 = true
	st(th[0]).committed = true
	st(th[0]).state = stSuspended
	st(th[1]).got1 = true
	st(th[1]).state = stSuspended
	st(th[1]).reqMutex = "m"
	st(th[1]).secondPending = true
	s.evalSecondGrantsLocked()
	if !st(th[1]).secondPending {
		t.Error("PDS-1 must not perform within-round second grants")
	}
}

func TestInactiveAndRetiredThreadsDontBlockSeconds(t *testing.T) {
	s, rt, th := newBare(PDS2, 3)
	defer rt.Stop()
	rt.Lock()
	defer rt.Unlock()
	st(th[0]).inActive = false // e.g. waiting on a condvar, out of the set
	st(th[1]).state = stRetired
	st(th[1]).inActive = false
	st(th[2]).got1 = true
	st(th[2]).state = stSuspended
	st(th[2]).reqMutex = "m"
	st(th[2]).secondPending = true
	s.evalSecondGrantsLocked()
	if st(th[2]).secondPending {
		t.Error("inactive/retired lower threads must not block second grants")
	}
}
