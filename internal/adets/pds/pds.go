// Package pds implements ADETS-PDS — Basile's Preemptive Deterministic
// Scheduling algorithm (PDS-1 and PDS-2) extended per Section 4.2 of the
// paper with a practical middleware integration:
//
//   - request-to-thread assignment (the paper's synchronized strategy via a
//     scheduler-managed queue mutex, used in the evaluation, plus the
//     round-robin alternative);
//   - condition variables integrated into the round model (Fig. 2): a
//     waiting thread leaves the active set at the next round boundary, a
//     notified thread rejoins at the next round start by reacquiring the
//     mutex;
//   - automatic thread-pool resizing around a minimum threshold to escape
//     the all-threads-waiting deadlock;
//   - deterministic time-bounded waits via totally-ordered timeout
//     requests executed by normal request-handler threads;
//   - two nested-invocation strategies: A (no scheduler support — the
//     thread blocks the round, favoured for short invocations and used in
//     the paper's evaluation) and B (treat the thread as suspended and
//     resume it at a round boundary).
//
// The algorithm executes in rounds: threads run until each has issued its
// next mutex request; when every active thread is suspended, a new round
// starts and requests are granted in increasing thread-ID order (PDS-2
// additionally grants one extra mutex per thread during phase 1). No
// communication at all is needed for lock determinism — PDS's signature
// property.
package pds

import (
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// QueueMutex is the reserved mutex protecting the incoming request queue
// under the synchronized assignment strategy. It takes part in rounds like
// any object-level mutex — the source of PDS's assignment overhead in the
// paper's Fig. 4(a)/(b).
const QueueMutex adets.MutexID = "pds/__queue"

// Variant selects PDS-1 or PDS-2.
type Variant int

// The two algorithm variants of Basile et al.
const (
	PDS1 Variant = 1
	PDS2 Variant = 2
)

// Assignment selects the request-to-thread assignment strategy.
type Assignment int

// Assignment strategies of Section 4.2.
const (
	// Synchronized: a free thread locks QueueMutex and pops the next
	// request — consistent on all replicas because the lock is granted by
	// PDS itself. Used in the paper's evaluation.
	Synchronized Assignment = iota
	// RoundRobin: request i goes to thread i mod N. Works well only when
	// requests have identical computation times.
	RoundRobin
)

// NestedStrategy selects how nested invocations interact with rounds.
type NestedStrategy int

// Nested invocation strategies of Section 4.2.
const (
	// NestedBlockRound: no scheduler support; the invoking thread counts as
	// running, so no new round can start until the reply arrives. Right for
	// short invocations; used in the paper's evaluation.
	NestedBlockRound NestedStrategy = iota
	// NestedSuspend: the invoking thread is treated as suspended; other
	// threads keep executing rounds and the thread resumes at the round
	// boundary after its reply — adding up to one round of delay.
	NestedSuspend
)

type threadState int

const (
	stRunning threadState = iota
	stSuspended
	stWaiting
	stIdle
	stResuming
	stNestedSusp
	stRetired
)

type pdsThread struct {
	state       threadState
	inActive    bool          // member of the round's active set
	reqMutex    adets.MutexID // pending mutex request while suspended
	eligible    bool          // request may be granted in the current round
	resume      adets.MutexID // mutex to reacquire when resuming ("" = none)
	waiting     bool
	waitSeq     uint64
	timedOut    bool
	nestedA     bool            // strategy A: parked awaiting the ordered nested reply
	replyPermit bool            // EndNested raced ahead of BeginNested: next park is a no-op
	ownQueue    []adets.Request // round-robin assignment

	// PDS-2 per-round bookkeeping.
	got1      bool // received a phase-1 grant this round
	phase2    bool // received the second grant this round
	committed bool // this round's second action is decided (second
	//                    grant received, or suspended/waiting)
	secondPending bool // suspended on a second request that may still be
	//                    granted within the current round
}

type lockState struct {
	owner wire.LogicalID
}

type condKey struct {
	m adets.MutexID
	c adets.CondID
}

// Config parameterizes the scheduler.
type Config struct {
	// Variant selects PDS-1 (default) or PDS-2.
	Variant Variant
	// Assignment selects the request assignment strategy (default
	// Synchronized, as in the paper's evaluation).
	Assignment Assignment
	// Nested selects the nested-invocation strategy (default
	// NestedBlockRound, as in the paper's evaluation).
	Nested NestedStrategy
	// PoolSize is the initial thread-pool size (default 4; the paper's
	// benchmarks set it to the number of clients).
	PoolSize int
	// MinSpare is the minimum number of non-waiting threads maintained by
	// the automatic resize rule (default 1).
	MinSpare int
	// AssignGrace is how long a round that only waits for the queue-mutex
	// holder may be deferred before the holder is "suspended temporarily
	// due to the lack of requests" (default 2ms). Requests that are already
	// in flight land within the grace period and keep the round aligned;
	// condition-variable resumes pay it as extra delay — the round-model
	// cost the paper reports for PDS with condition variables.
	AssignGrace time.Duration
	// ArtificialRequests enables the paper's "artificial requests" option
	// (Section 4.2): a worker that finds the request queue empty completes
	// an artificial no-op request — it releases the queue mutex and goes
	// idle instead of holding the mutex while waiting in real time for the
	// next arrival, and queue-mutex grants are rationed to the workers in
	// fixed rotation, one per queued request (an empty-queue turn is the
	// no-op request completing instantly, keeping the rotation aligned).
	// The request-to-worker binding — and with it the queue-grant trace —
	// becomes a pure function of the totally ordered submit sequence,
	// closing the empty-queue race of the default mode (see
	// nextSynchronized) at the cost of serializing pops on the rotation.
	ArtificialRequests bool
}

func (c *Config) applyDefaults() {
	if c.Variant == 0 {
		c.Variant = PDS1
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.MinSpare <= 0 {
		c.MinSpare = 1
	}
	if c.AssignGrace <= 0 {
		c.AssignGrace = 2 * time.Millisecond
	}
}

// Scheduler implements adets.Scheduler with the PDS round model.
type Scheduler struct {
	env adets.Env
	reg *adets.Registry
	cfg Config

	pool  []*adets.Thread
	queue []adets.Request
	rr    int    // round-robin cursor
	qRot  uint64 // artificial-requests queue-grant rotation cursor
	round uint64
	// awaiting is the worker holding QueueMutex on an empty queue: it
	// counts as running ("the idling thread will not acquire a lock", the
	// paper's PDS liveness caveat) until a round is actually needed, at
	// which point the resize rule "suspends the thread temporarily due to
	// the lack of requests": it goes idle, releasing the queue mutex.
	awaiting  *adets.Thread
	convTimer *vtime.Timer // pending awaiting→idle conversion (grace period)
	locks     map[adets.MutexID]*lockState
	conds     map[condKey]*adets.FIFO
	waiters   map[wire.LogicalID]*adets.Thread
	stopped   bool
	quiesce   func(drained bool)
}

var _ adets.Scheduler = (*Scheduler)(nil)

// New returns an ADETS-PDS scheduler.
func New(cfg Config) *Scheduler {
	cfg.applyDefaults()
	return &Scheduler{
		cfg:     cfg,
		locks:   make(map[adets.MutexID]*lockState),
		conds:   make(map[condKey]*adets.FIFO),
		waiters: make(map[wire.LogicalID]*adets.Thread),
	}
}

// Name implements adets.Scheduler.
func (s *Scheduler) Name() string {
	if s.cfg.Variant == PDS2 {
		return "ADETS-PDS-2"
	}
	return "ADETS-PDS"
}

// Capabilities implements adets.Scheduler.
func (s *Scheduler) Capabilities() adets.Capabilities {
	return adets.Capabilities{
		Coordination:      "Locks",
		DeadlockFree:      "NO",
		Deployment:        "manual",
		Multithreading:    "MA (restr.)",
		ReentrantLocks:    true,
		ConditionVars:     true,
		TimedWait:         true,
		NestedInvocations: true,
	}
}

// Start implements adets.Scheduler: the fixed-size pool spins up and every
// worker immediately requests the queue mutex, forming the first round.
func (s *Scheduler) Start(env adets.Env) {
	s.env = env
	s.reg = adets.NewRegistry(env.RT)
	rt := env.RT
	rt.Lock()
	for i := 0; i < s.cfg.PoolSize; i++ {
		s.addWorkerLocked()
	}
	rt.Unlock()
}

// addWorkerLocked creates and starts one pool thread.
func (s *Scheduler) addWorkerLocked() *adets.Thread {
	t := s.reg.NewThread("pds-worker", "")
	t.Sched = &pdsThread{state: stRunning, inActive: true}
	s.pool = append(s.pool, t)
	s.reg.Spawn(t, func() { s.workerLoop(t) })
	return t
}

// Stop implements adets.Scheduler.
func (s *Scheduler) Stop() {
	rt := s.env.RT
	rt.Lock()
	s.stopped = true
	if s.convTimer != nil {
		rt.StopTimerLocked(s.convTimer)
		s.convTimer = nil
	}
	for _, t := range s.pool {
		t.Unpark(rt)
	}
	rt.Unlock()
}

func st(t *adets.Thread) *pdsThread { return t.Sched.(*pdsThread) }

// Submit implements adets.Scheduler: the request is queued (or assigned
// round-robin); an idle thread is scheduled to resume at the next round
// start — Submit is a totally-ordered event, so this is deterministic.
func (s *Scheduler) Submit(req adets.Request) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return
	}
	s.env.Obs.Submitted()
	if s.cfg.Assignment == RoundRobin {
		n := len(s.pool)
		if n == 0 {
			return
		}
		var t *adets.Thread
		for tries := 0; tries < n; tries++ {
			cand := s.pool[s.rr%n]
			s.rr++
			if st(cand).state != stRetired {
				t = cand
				break
			}
		}
		if t == nil {
			return
		}
		pt := st(t)
		pt.ownQueue = append(pt.ownQueue, req)
		if pt.state == stIdle {
			// Wake immediately at this totally-ordered point and rejoin the
			// active set: while it runs, no round can start, so all workers
			// woken in one burst suspend together and form one round.
			pt.state = stRunning
			pt.inActive = true
			t.Unpark(rt)
		}
	} else {
		s.queue = append(s.queue, req)
		if s.awaiting != nil {
			// The queue-mutex holder is parked on the empty queue: hand the
			// request straight to it.
			w := s.awaiting
			s.awaiting = nil
			w.Unpark(rt)
		} else {
			// Resume the lowest-ID idle worker, if any; it rejoins at the
			// next round start by reacquiring the queue mutex.
			for _, t := range s.pool {
				if st(t).state == stIdle {
					s.wakeIdleLocked(t, QueueMutex)
					break
				}
			}
		}
	}
	s.roundCheckLocked()
}

// wakeIdleLocked schedules an idle thread to rejoin at the next round
// start, reacquiring resume (or just running if resume is empty).
func (s *Scheduler) wakeIdleLocked(t *adets.Thread, resume adets.MutexID) {
	pt := st(t)
	if pt.state != stIdle {
		return
	}
	pt.state = stResuming
	pt.resume = resume
}

// --- worker loop ---

func (s *Scheduler) workerLoop(t *adets.Thread) {
	rt := s.env.RT
	for {
		var req adets.Request
		var ok bool
		if s.cfg.Assignment == RoundRobin {
			req, ok = s.nextOwn(t)
		} else {
			req, ok = s.nextSynchronized(t)
		}
		if !ok {
			return // stopped or retired
		}
		t.Logical = req.Logical
		req.Exec(t)
		rt.Lock()
		t.Logical = ""
		rt.Unlock()
	}
}

// nextSynchronized implements the paper's synchronized assignment: lock the
// queue mutex through PDS itself, pop, unlock. A worker that finds the
// queue empty "suspends temporarily due to the lack of requests" (paper
// Section 4.2): it releases the queue mutex, leaves the active set at the
// next round boundary, and is resumed deterministically by a later Submit.
//
// Known limitation of the default mode, shared with the published
// algorithm: the empty-queue check races with request arrival, so strict
// replica determinism of the request-to-thread assignment holds under the
// paper's own operating assumption — threads kept busy (pool sized to the
// load); the resize rule shrinks surplus threads so the steady state
// satisfies it. Config.ArtificialRequests enables the paper's remedy: the
// empty queue yields an artificial no-op request, the worker releases the
// queue mutex and idles, and queue-mutex grants follow the fixed worker
// rotation (see artTurnLocked) — every wake-up happens at a totally-ordered
// point and the k-th pop always lands on worker k mod N, so the assignment
// race disappears entirely.
func (s *Scheduler) nextSynchronized(t *adets.Thread) (adets.Request, bool) {
	if err := s.Lock(t, QueueMutex); err != nil {
		return adets.Request{}, false
	}
	rt := s.env.RT
	for {
		rt.Lock()
		if s.stopped || st(t).state == stRetired {
			rt.Unlock()
			return adets.Request{}, false
		}
		if len(s.queue) > 0 {
			req := s.queue[0]
			s.queue = s.queue[1:]
			rt.Unlock()
			if err := s.Unlock(t, QueueMutex); err != nil {
				return adets.Request{}, false
			}
			return req, true
		}
		if s.cfg.ArtificialRequests {
			// Artificial request (paper Section 4.2): the empty queue is
			// treated as a no-op request that completes instantly — release
			// the queue mutex and go idle. A later Submit wakes the
			// lowest-ID idle worker at its totally-ordered position; the
			// round machinery re-grants the queue mutex in thread-ID order.
			pt := st(t)
			pt.state = stIdle
			pt.committed = true
			s.env.Obs.Unlock(QueueMutex, string(s.ownerID(t)))
			s.releaseLocked(QueueMutex)
			s.roundCheckLocked()
			s.checkQuiesceLocked()
			t.Park(rt)
			if s.stopped || pt.state == stRetired {
				rt.Unlock()
				return adets.Request{}, false
			}
			// Woken via the round's queue-mutex grant: we hold it again.
			rt.Unlock()
			continue
		}
		// Empty queue: keep the queue mutex and park as running. Rounds
		// stall while we wait — unless one is needed, in which case
		// roundCheckLocked converts us to idle (releasing the mutex) per
		// the paper's temporary-suspension rule. Either wake path leaves
		// us holding the queue mutex again.
		s.awaiting = t
		s.roundCheckLocked()
		s.checkQuiesceLocked()
		t.Park(rt)
		if s.awaiting == t {
			s.awaiting = nil
		}
		if s.stopped || st(t).state == stRetired {
			rt.Unlock()
			return adets.Request{}, false
		}
		rt.Unlock()
	}
}

// nextOwn implements round-robin assignment: pop the worker's own queue.
func (s *Scheduler) nextOwn(t *adets.Thread) (adets.Request, bool) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	pt := st(t)
	for {
		if s.stopped || pt.state == stRetired {
			return adets.Request{}, false
		}
		if len(pt.ownQueue) > 0 {
			req := pt.ownQueue[0]
			pt.ownQueue = pt.ownQueue[1:]
			return req, true
		}
		pt.state = stIdle
		pt.committed = true
		s.roundCheckLocked()
		s.checkQuiesceLocked()
		t.Park(rt)
	}
}

// --- round machinery ---

func (s *Scheduler) lockState(m adets.MutexID) *lockState {
	ls, ok := s.locks[m]
	if !ok {
		ls = &lockState{}
		s.locks[m] = ls
	}
	return ls
}

func (s *Scheduler) cond(m adets.MutexID, c adets.CondID) *adets.FIFO {
	k := condKey{m, c}
	q, ok := s.conds[k]
	if !ok {
		q = &adets.FIFO{}
		s.conds[k] = q
	}
	return q
}

// roundCheckLocked starts a new round when no active thread is running and
// progress is possible. It first revisits PDS-2 pending second grants —
// every suspension event may have unblocked one. A worker parked on the
// empty request queue counts as running; if a round is genuinely needed
// (object-lock requests, resumptions, queued requests, or the grow rule),
// the worker is converted to idle first — the paper's "suspend a thread
// temporarily due to the lack of requests".
func (s *Scheduler) roundCheckLocked() {
	s.roundCheck(false)
}

// roundCheck(force) performs the round condition evaluation; force is set
// by the expired grace timer and allows converting the queue-waiting worker
// to idle so the round can start.
func (s *Scheduler) roundCheck(force bool) {
	if s.stopped {
		return
	}
	s.evalSecondGrantsLocked()
	candidates := 0
	nonWaiting := 0
	needRound := false
	for _, t := range s.pool {
		pt := st(t)
		switch pt.state {
		case stRetired:
			continue
		case stWaiting:
		default:
			nonWaiting++
		}
		if pt.inActive && pt.state == stRunning && t != s.awaiting {
			return // someone is genuinely executing
		}
		if pt.state == stSuspended || pt.state == stResuming {
			candidates++
		}
		if pt.state == stResuming ||
			(pt.state == stSuspended && pt.reqMutex != QueueMutex) ||
			(pt.state == stSuspended && pt.reqMutex == QueueMutex && len(s.queue) > 0) {
			needRound = true
		}
	}
	if nonWaiting < s.cfg.MinSpare {
		needRound = true // grow rule must run (condvar deadlock escape)
	}
	if !needRound || candidates == 0 && nonWaiting >= s.cfg.MinSpare {
		return
	}
	if s.awaiting != nil {
		if !force {
			// A round is needed but the queue-mutex holder still waits for
			// a request. In-flight requests land within the grace period
			// and keep rounds aligned with the assignment chain; only if
			// none arrives is the worker suspended temporarily.
			if s.convTimer == nil {
				s.convTimer = s.env.RT.AfterLocked(s.cfg.AssignGrace, "pds-grace", func() {
					s.env.RT.Lock()
					s.convTimer = nil
					if !s.stopped {
						s.roundCheck(true)
					}
					s.env.RT.Unlock()
				})
			}
			return
		}
		// Temporarily suspend the queue-waiting worker so the round can
		// start: it leaves the active set and releases the queue mutex.
		w := s.awaiting
		s.awaiting = nil
		pt := st(w)
		pt.state = stIdle
		pt.committed = true
		s.env.Obs.Unlock(QueueMutex, string(s.ownerID(w)))
		s.lockState(QueueMutex).owner = ""
		// The freed queue mutex is re-granted by the round (or by
		// releaseLocked below the round) to a suspended requester.
	}
	s.startRoundLocked(nonWaiting)
}

// startRoundLocked performs the membership adjustment and the phase-1
// grants of a new round.
func (s *Scheduler) startRoundLocked(nonWaiting int) {
	s.round++
	s.env.Obs.Round(s.round)
	// Membership: waiting/idle/nested-suspended threads leave the active
	// set; resuming threads rejoin with their pending reacquisition.
	for _, t := range s.pool {
		pt := st(t)
		switch pt.state {
		case stWaiting, stIdle, stNestedSusp:
			pt.inActive = false
		case stResuming:
			pt.inActive = true
			if pt.resume == "" {
				pt.state = stRunning
				t.Unpark(s.env.RT)
			} else {
				pt.state = stSuspended
				pt.reqMutex = pt.resume
				pt.eligible = true
			}
			pt.resume = ""
		case stSuspended:
			pt.inActive = true
			pt.eligible = true // requests made last round become grantable
		}
		pt.got1 = false
		pt.phase2 = false
		pt.committed = false
		pt.secondPending = false
	}
	// Resize rule (Section 4.2): grow when fewer than MinSpare non-waiting
	// threads remain (the all-threads-waiting deadlock); shrink — but never
	// below the configured pool size — when resize-added threads sit idle
	// with no requests in sight.
	for nonWaiting < s.cfg.MinSpare {
		t := s.addWorkerLocked()
		st(t).inActive = true
		nonWaiting++
	}
	if len(s.queue) == 0 {
		live := 0
		for _, t := range s.pool {
			if st(t).state != stRetired {
				live++
			}
		}
		for _, t := range s.pool {
			if live <= s.cfg.PoolSize {
				break
			}
			pt := st(t)
			idleRR := pt.state == stIdle
			idleSync := pt.state == stSuspended && pt.reqMutex == QueueMutex && !pt.secondPending
			if idleRR || idleSync {
				pt.state = stRetired
				pt.inActive = false
				t.Unpark(s.env.RT)
				live--
			}
		}
	}
	// Phase-1 grants in increasing thread-ID order.
	for _, t := range s.pool {
		pt := st(t)
		if pt.inActive && pt.state == stSuspended && pt.eligible {
			s.tryGrantThreadLocked(t)
		}
	}
}

// tryGrantThreadLocked grants t its pending request if the mutex is free.
func (s *Scheduler) tryGrantThreadLocked(t *adets.Thread) {
	pt := st(t)
	ls := s.lockState(pt.reqMutex)
	if ls.owner != "" {
		return
	}
	if pt.reqMutex == QueueMutex && s.cfg.ArtificialRequests && !s.artTurnLocked(t) {
		// Rotation mode: the grant waits for the designated worker (or for
		// a request to pop). Another candidate, or a later round, retries.
		return
	}
	ls.owner = s.ownerID(t)
	if pt.reqMutex == QueueMutex && s.cfg.ArtificialRequests {
		s.qRot++
	}
	s.env.Obs.Grant(pt.reqMutex, string(ls.owner))
	pt.state = stRunning
	pt.eligible = false
	if pt.reqMutex != QueueMutex {
		// The scheduler-internal queue mutex does not consume the thread's
		// per-round phase budget; only object-level locks do.
		pt.got1 = true
		pt.committed = false // its second action is open again
	}
	t.Unpark(s.env.RT)
	s.evalSecondGrantsLocked()
}

// evalSecondGrantsLocked revisits PDS-2 pending second requests in thread-ID
// order. A second request of thread T for mutex m is granted once
//
//	(i)  every active thread with a lower ID has received its phase-1
//	     grant AND committed its second action (second grant received, or
//	     suspended for the rest of the round), and
//	(ii) m is free.
//
// Both conditions flip at deterministic points of other threads' execution
// (grants, unlocks, suspensions), never on raw request-arrival timing —
// this is what makes the immediate second grant replica-deterministic.
// Re-evaluated after every such event.
func (s *Scheduler) evalSecondGrantsLocked() {
	if s.cfg.Variant != PDS2 {
		return
	}
	progress := true
	for progress {
		progress = false
		for _, t := range s.pool {
			pt := st(t)
			if !pt.secondPending {
				continue
			}
			if !s.allLowerCommittedLocked(t) {
				continue
			}
			ls := s.lockState(pt.reqMutex)
			if ls.owner != "" {
				continue
			}
			ls.owner = s.ownerID(t)
			s.env.Obs.Grant(pt.reqMutex, string(ls.owner))
			pt.secondPending = false
			pt.state = stRunning
			pt.phase2 = true
			pt.committed = true
			t.Unpark(s.env.RT)
			progress = true
		}
	}
}

// allLowerCommittedLocked reports whether every active lower-ID thread has
// received its phase-1 grant and committed its second action.
func (s *Scheduler) allLowerCommittedLocked(t *adets.Thread) bool {
	for _, o := range s.pool {
		if o.ID >= t.ID {
			break
		}
		pt := st(o)
		if !pt.inActive || pt.state == stRetired {
			continue
		}
		if !pt.got1 || !pt.committed {
			return false
		}
	}
	return true
}

// ownerID returns the ownership identity for t: its logical thread when
// executing a request, or a worker-unique placeholder between requests
// (queue-mutex acquisitions).
func (s *Scheduler) ownerID(t *adets.Thread) wire.LogicalID {
	if t.Logical != "" {
		return t.Logical
	}
	return wire.LogicalID("pds-worker-" + itoa(t.ID))
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// releaseLocked frees m and grants it to the lowest-ID eligible suspended
// requester of the current round ("as soon as T1 unlocks m, T2 may execute
// concurrently"); pending PDS-2 second requests get the leftovers.
func (s *Scheduler) releaseLocked(m adets.MutexID) {
	ls := s.lockState(m)
	ls.owner = ""
	for _, t := range s.pool {
		pt := st(t)
		if pt.inActive && pt.state == stSuspended && pt.eligible && pt.reqMutex == m {
			s.tryGrantThreadLocked(t)
			if ls.owner != "" {
				return
			}
			// Refused (artificial-requests rotation): keep looking for the
			// designated worker among the remaining candidates.
		}
	}
	s.evalSecondGrantsLocked()
}

// artTurnLocked reports whether the next queue-mutex grant belongs to t
// under the artificial-requests rotation: grants are rationed to the live
// workers in fixed pool order, one per queued request, so the k-th grant —
// and with it the k-th pop — lands on worker k mod N regardless of how
// request arrivals interleave with local execution.
func (s *Scheduler) artTurnLocked(t *adets.Thread) bool {
	if len(s.queue) == 0 {
		return false
	}
	live := uint64(0)
	for _, o := range s.pool {
		if st(o).state != stRetired {
			live++
		}
	}
	if live == 0 {
		return false
	}
	k := s.qRot % live
	for _, o := range s.pool {
		if st(o).state == stRetired {
			continue
		}
		if k == 0 {
			return o == t
		}
		k--
	}
	return false
}

// --- scheduler interface: synchronization hooks ---

// Lock implements adets.Scheduler. The first request after a round start
// suspends the thread (PDS-1); under PDS-2 a second request during phase 1
// may be granted immediately.
func (s *Scheduler) Lock(t *adets.Thread, m adets.MutexID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	pt := st(t)
	if s.cfg.Variant == PDS2 && pt.got1 && !pt.phase2 && m != QueueMutex {
		// Second request within the round (PDS-2): not immediately
		// suspended — it stays grantable until the round ends.
		pt.state = stSuspended
		pt.reqMutex = m
		pt.eligible = false
		pt.secondPending = true
		var t0 time.Duration
		if s.env.Obs != nil {
			s.env.Obs.Blocked()
			t0 = rt.NowLocked()
		}
		s.evalSecondGrantsLocked()
		if pt.secondPending {
			s.roundCheckLocked()
		}
		s.checkQuiesceLocked()
		t.Park(rt)
		if s.stopped || pt.state == stRetired {
			s.env.Obs.Unblocked()
			return adets.ErrStopped
		}
		if s.env.Obs != nil {
			s.env.Obs.GrantedAfterBlock(m, string(t.Logical), rt.NowLocked()-t0)
		}
		return nil
	}
	pt.state = stSuspended
	pt.reqMutex = m
	pt.eligible = false // becomes grantable at the next round start
	pt.committed = true // this round's participation is decided
	var t0 time.Duration
	if s.env.Obs != nil {
		s.env.Obs.Blocked()
		t0 = rt.NowLocked()
	}
	s.roundCheckLocked()
	s.checkQuiesceLocked()
	t.Park(rt)
	if s.stopped || pt.state == stRetired {
		s.env.Obs.Unblocked()
		return adets.ErrStopped
	}
	if s.env.Obs != nil {
		s.env.Obs.GrantedAfterBlock(m, string(t.Logical), rt.NowLocked()-t0)
	}
	return nil // granted by round machinery
}

// Unlock implements adets.Scheduler.
func (s *Scheduler) Unlock(t *adets.Thread, m adets.MutexID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lockState(m)
	if ls.owner != s.ownerID(t) {
		return adets.ErrNotHeld
	}
	s.env.Obs.Unlock(m, string(ls.owner))
	s.releaseLocked(m)
	return nil
}

// Wait implements adets.Scheduler per the paper's Fig. 2: the thread is
// considered suspended for the round check, leaves the active set at the
// next round boundary, and — once notified or timed out — reacquires the
// mutex starting with the following round.
func (s *Scheduler) Wait(t *adets.Thread, m adets.MutexID, c adets.CondID, d time.Duration) (bool, error) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return false, adets.ErrStopped
	}
	ls := s.lockState(m)
	if ls.owner != s.ownerID(t) {
		return false, adets.ErrNotHeld
	}
	pt := st(t)
	pt.waiting = true
	pt.timedOut = false
	pt.waitSeq++
	s.waiters[t.Logical] = t
	s.cond(m, c).Push(t)
	if d > 0 {
		s.armTimeoutLocked(t, m, c, pt.waitSeq, d)
	}
	pt.state = stWaiting
	pt.committed = true
	s.env.Obs.WaitStart(m, c, string(t.Logical))
	s.releaseLocked(m)
	s.roundCheckLocked()
	s.checkQuiesceLocked()
	t.Park(rt)
	pt.waiting = false
	delete(s.waiters, t.Logical)
	if s.stopped || pt.state == stRetired {
		return false, adets.ErrStopped
	}
	return pt.timedOut, nil
}

// armTimeoutLocked schedules the local timer whose expiry broadcasts the
// deterministic timeout request (handled by a normal request-handler
// thread via HandleOrdered/Submit).
func (s *Scheduler) armTimeoutLocked(t *adets.Thread, m adets.MutexID, c adets.CondID, seq uint64, d time.Duration) {
	msg := adets.TimeoutMsg{Target: t.Logical, Mutex: m, Cond: c, WaitSeq: seq}
	s.env.RT.AfterLocked(d, "pds-timeout/"+string(t.Logical), func() {
		s.env.BroadcastOrdered(adets.TimeoutID(msg), msg)
	})
}

// Notify implements adets.Scheduler: the deterministically-first waiter is
// resumed, reacquiring the mutex from the next round on.
func (s *Scheduler) Notify(t *adets.Thread, m adets.MutexID, c adets.CondID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lockState(m)
	if ls.owner != s.ownerID(t) {
		return adets.ErrNotHeld
	}
	if w := s.cond(m, c).Pop(); w != nil {
		s.resumeWaiterLocked(w, m, c, false)
	}
	return nil
}

// NotifyAll implements adets.Scheduler.
func (s *Scheduler) NotifyAll(t *adets.Thread, m adets.MutexID, c adets.CondID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lockState(m)
	if ls.owner != s.ownerID(t) {
		return adets.ErrNotHeld
	}
	for _, w := range s.cond(m, c).Drain() {
		s.resumeWaiterLocked(w, m, c, false)
	}
	return nil
}

func (s *Scheduler) resumeWaiterLocked(w *adets.Thread, m adets.MutexID, c adets.CondID, timedOut bool) {
	pt := st(w)
	pt.timedOut = timedOut
	s.env.Obs.Wake(m, c, string(w.Logical), timedOut)
	pt.state = stResuming
	pt.resume = m
	s.roundCheckLocked()
}

// Yield implements adets.Scheduler (no-op under the round model).
func (s *Scheduler) Yield(*adets.Thread) {}

// BeginNested implements adets.Scheduler with the configured strategy.
func (s *Scheduler) BeginNested(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	pt := st(t)
	if pt.replyPermit {
		// The reply was delivered before we parked: consume the permit
		// without ever looking blocked to a concurrent Quiesce (and, under
		// strategy B, without paying the round-boundary resume).
		pt.replyPermit = false
		t.Park(rt)
		rt.Unlock()
		return
	}
	if s.cfg.Nested == NestedSuspend {
		pt.state = stNestedSusp
		pt.committed = true
		s.roundCheckLocked()
		s.checkQuiesceLocked()
		t.Park(rt)
		if pt.state == stNestedSusp {
			// The reply raced ahead of the park (real-time mode): EndNested
			// left a permit instead of the round-boundary resume. Run on.
			pt.state = stRunning
		}
		rt.Unlock()
		return
	}
	// Strategy A: state stays stRunning — the round cannot start while the
	// reply is outstanding, exactly the behaviour evaluated in the paper.
	pt.nestedA = true
	s.checkQuiesceLocked()
	t.Park(rt)
	pt.nestedA = false
	rt.Unlock()
}

// EndNested implements adets.Scheduler.
func (s *Scheduler) EndNested(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	pt := st(t)
	if s.cfg.Nested == NestedSuspend && pt.state == stNestedSusp {
		// Resume at the next round boundary, no mutex to reacquire.
		pt.state = stResuming
		pt.resume = ""
		s.roundCheckLocked()
		return
	}
	if !pt.nestedA {
		pt.replyPermit = true
	}
	t.Unpark(rt)
}

// ViewChanged implements adets.Scheduler: PDS needs no communication and no
// membership information — its signature advantage (Section 3.2).
func (s *Scheduler) ViewChanged(gcs.View) {}

// Quiesce implements adets.Scheduler. PDS rounds run autonomously — no
// communication is involved — so stability means the round machinery has
// reached a fixpoint: every worker is parked on the empty request queue
// (idle, awaiting, or suspended on the queue mutex with nothing to pop),
// waiting on a condition variable, or blocked in a nested invocation. A
// worker that is executing, resuming, or suspended on an object mutex will
// cause further local progress (another round) and rules stability out.
func (s *Scheduler) Quiesce(report func(drained bool)) {
	rt := s.env.RT
	rt.Lock()
	s.quiesce = report
	s.checkQuiesceLocked()
	rt.Unlock()
}

func (s *Scheduler) checkQuiesceLocked() {
	if s.quiesce == nil {
		return
	}
	live := false // some request is mid-execution (waiting or nested)
	for _, t := range s.pool {
		pt := st(t)
		switch {
		case pt.state == stRetired:
			continue
		case pt.state == stWaiting, pt.state == stNestedSusp:
			live = true
		case pt.state == stRunning && pt.nestedA:
			live = true
		case pt.state == stIdle && len(pt.ownQueue) == 0:
		case t == s.awaiting && len(s.queue) == 0:
		case pt.state == stSuspended && pt.reqMutex == QueueMutex &&
			!pt.secondPending && len(s.queue) == 0:
			// Parked between requests: only a future Submit can trigger a
			// round that re-grants the queue mutex.
		default:
			return // executing, resuming, or another round is still due
		}
	}
	report := s.quiesce
	s.quiesce = nil
	report(!live && len(s.queue) == 0)
}

// HandleOrdered implements adets.Scheduler: the timeout request enters the
// normal request queue and is executed by a pool thread that locks the
// mutex first — the deterministic resolution of the timeout-vs-notify race.
func (s *Scheduler) HandleOrdered(id string, payload any) bool {
	msg, ok := payload.(adets.TimeoutMsg)
	if !ok {
		return false
	}
	s.Submit(adets.Request{
		Logical: wire.LogicalID(id),
		Exec:    func(t *adets.Thread) { s.timeoutExec(t, msg) },
	})
	return true
}

func (s *Scheduler) timeoutExec(t *adets.Thread, msg adets.TimeoutMsg) {
	if err := s.Lock(t, msg.Mutex); err != nil {
		return
	}
	rt := s.env.RT
	rt.Lock()
	w := s.waiters[msg.Target]
	if w != nil {
		pt := st(w)
		if pt.waiting && pt.waitSeq == msg.WaitSeq {
			s.env.Obs.TimeoutFired()
			s.cond(msg.Mutex, msg.Cond).Remove(w)
			s.resumeWaiterLocked(w, msg.Mutex, msg.Cond, true)
		}
	}
	rt.Unlock()
	_ = s.Unlock(t, msg.Mutex)
}

// HandleDirect implements adets.Scheduler.
func (s *Scheduler) HandleDirect(wire.NodeID, any) bool { return false }
