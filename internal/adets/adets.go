// Package adets is the deterministic thread-scheduling framework of the
// middleware — the Go counterpart of FTflex's ADETS (Aspectix DEterministic
// Thread Scheduler) plug-in interface, the paper's primary contribution
// surface.
//
// A Scheduler sits between the group communication module (which feeds it
// totally-ordered requests) and the object adapter (which executes method
// bodies). Every synchronization operation a method performs — lock,
// unlock, condition wait (optionally time-bounded), notify, yield — is
// routed to the scheduler, which decides deterministically, identically on
// every replica, which thread may proceed.
//
// The algorithms of the paper live in the subpackages seq, sl, sat, mat,
// lsa and pds. This package holds what they share: the plug-in interface,
// the thread abstraction with logical-thread identity, deterministic wait
// queues, reentrancy accounting, the deterministic timeout machinery, and
// the capability metadata reproduced in the paper's Table 1.
package adets

import (
	"errors"
	"time"

	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// Common errors surfaced to object code through the invocation context.
var (
	// ErrNotHeld is returned when unlocking (or waiting on) a mutex the
	// logical thread does not hold.
	ErrNotHeld = errors.New("adets: mutex not held by calling thread")
	// ErrUnsupported is returned by schedulers that do not implement an
	// operation (e.g. condition variables under sequential scheduling —
	// the paper's polling fallback exists precisely for this case).
	ErrUnsupported = errors.New("adets: operation not supported by this scheduling strategy")
	// ErrStopped is returned when the scheduler has been stopped.
	ErrStopped = errors.New("adets: scheduler stopped")
	// ErrLockAfterDeclaration is returned when a thread acquires a mutex
	// after declaring it would not (the lock-prediction extension).
	ErrLockAfterDeclaration = errors.New("adets: lock acquired after NoMoreLocks declaration")
)

// LockPredictor is implemented by schedulers that exploit knowledge of a
// thread's future synchronization behaviour — the paper's follow-up
// direction ("code analysis and transformation allows improving concurrency
// on the basis of prediction of future synchronization steps", Section 3.1
// and reference [19]). Object code (or a static-analysis pass) declares
// that the current thread will request no further locks; the scheduler may
// then stop considering the thread for scheduling decisions it can no
// longer influence.
type LockPredictor interface {
	// NoMoreLocks declares that t will not acquire any further mutex for
	// the remainder of its request. A later Lock by t fails with
	// ErrLockAfterDeclaration.
	NoMoreLocks(t *Thread)
}

// MutexID names a mutex. Object code may use arbitrary strings; anonymous
// mutexes created at run time get deterministic generated names (see the
// ADETS-LSA dynamic mutex-ID discussion in the paper, Section 4.1).
type MutexID string

// CondID names a condition variable of a mutex. The empty CondID is the
// mutex's implicit condition variable (native Java model: exactly one per
// monitor); named conditions extend this to full monitors.
type CondID string

// Request is one totally-ordered unit of work handed to a scheduler.
type Request struct {
	// ID is the invocation id (at-most-once identity).
	ID wire.InvocationID
	// Logical is the logical thread this request belongs to.
	Logical wire.LogicalID
	// Callback is true when the logical thread already has a live blocked
	// physical thread on this replica — i.e. a nested invocation chain has
	// called back into its originating object (paper Section 3.1).
	Callback bool
	// Classes are the request's declared conflict classes (Early Scheduling
	// in Parallel SMR): requests with disjoint class sets may execute
	// concurrently under conflict-aware schedulers (ADETS-CC). Classes must
	// be a pure function of the request content so every replica computes
	// the same set. Nil or empty means "global" — the request conflicts
	// with everything. Schedulers without conflict awareness ignore it.
	Classes []string
	// Seq is the total-order position of the delivery that produced this
	// request, 0 when the submission is not directly stream-ordered (e.g. a
	// deferred callback flush). Schedulers that annotate traces with a
	// position must use it rather than a local counter: it is a pure
	// function of the ordered stream and so stays continuous across
	// checkpoint state transfer, where local counters reflect a replica's
	// own (possibly interrupted) submission history.
	Seq uint64
	// Exec runs the method body to completion on the thread the scheduler
	// assigns. It must be called exactly once.
	Exec func(t *Thread)
}

// Env is the set of middleware services a scheduler may use.
type Env struct {
	// RT is the execution substrate. Scheduler state machines are monitors
	// over RT's lock.
	RT vtime.Runtime
	// Self is this replica's node id; Peers are all replicas of the group
	// in rank order (including Self).
	Self  wire.NodeID
	Peers []wire.NodeID
	// SendPeer sends a scheduler-private message directly (FIFO, unordered
	// with respect to the request stream) to another replica. Used by
	// ADETS-LSA's mutex-table distribution.
	SendPeer func(to wire.NodeID, payload any)
	// BroadcastOrdered submits a scheduler message into the group's total
	// order. All replicas (including this one) receive it via
	// Scheduler.HandleOrdered exactly once per unique id. Used for
	// deterministic wait-timeout handling (paper Section 4.2).
	BroadcastOrdered func(id string, payload any)
	// Obs carries the metrics and schedule-trace hooks for this scheduler
	// instance. May be nil (all hooks no-op).
	Obs *SchedObs
}

// Scheduler is the ADETS plug-in interface. All methods except Start/Stop
// may be called concurrently from request-handler threads; implementations
// synchronize on Env.RT's lock.
//
// Lock, Unlock, Wait, Notify, NotifyAll and Yield are called by the
// invocation context of an executing thread. Reentrancy is handled by the
// framework (Reentrancy): schedulers always see single-level lock
// semantics, exactly as the paper prescribes for extending LSA and PDS
// (Section 4).
type Scheduler interface {
	// Name returns the strategy name as used in the paper (e.g. "ADETS-MAT").
	Name() string
	// Capabilities returns the strategy's Table 1 row.
	Capabilities() Capabilities

	// Start is called once before any request is submitted.
	Start(env Env)
	// Stop tears the scheduler down; blocked threads are abandoned.
	Stop()

	// Submit hands over the next totally-ordered request.
	Submit(req Request)

	// Lock blocks t until it holds m. Returns ErrStopped after Stop.
	Lock(t *Thread, m MutexID) error
	// Unlock releases m; the owner must be t's logical thread.
	Unlock(t *Thread, m MutexID) error
	// Wait atomically releases m and suspends t on (m, c); with d > 0 the
	// wait is time-bounded. It returns timedOut=true when the deterministic
	// timeout (not a notification) resumed the thread. The mutex is held
	// again on return.
	Wait(t *Thread, m MutexID, c CondID, d time.Duration) (timedOut bool, err error)
	// Notify wakes the deterministically-first waiter of (m, c), NotifyAll
	// all of them. The caller must hold m.
	Notify(t *Thread, m MutexID, c CondID) error
	NotifyAll(t *Thread, m MutexID, c CondID) error
	// Yield is a voluntary scheduling point (the paper's suggested remedy
	// for ADETS-MAT's serializing patterns, Section 5.3). Schedulers may
	// treat it as a no-op.
	Yield(t *Thread)

	// BeginNested blocks t for the duration of a nested invocation: the
	// invocation context sends the nested request, then calls BeginNested,
	// which suspends the thread (a scheduling point in most strategies)
	// until EndNested is called. EndNested is called by the dispatcher when
	// the reply is delivered — a totally-ordered point, so every replica
	// resumes the thread at the same logical position.
	BeginNested(t *Thread)
	EndNested(t *Thread)

	// ViewChanged reports a membership change, delivered at its exact
	// position in the total order (ADETS-LSA fail-over, Section 4.1).
	ViewChanged(v gcs.View)

	// Quiesce asks the scheduler for a stable point — the checkpoint
	// boundary of deterministic state capture. The caller guarantees that no
	// further ordered deliveries reach the scheduler until report is called
	// (the dispatcher is paused), so the scheduler's remaining activity is a
	// pure function of the ordered prefix. The scheduler must invoke report
	// exactly once (possibly synchronously, from inside Quiesce) with the
	// runtime lock held, as soon as it reaches a state where no thread can
	// make progress without a future delivery:
	//
	//   - drained=true: no live request threads remain — the object state is
	//     a consistent cut of the ordered prefix and may be snapshotted.
	//   - drained=false: live threads remain, but every one of them is
	//     blocked on a future delivery (a nested reply, a condition
	//     notification, an undelivered grant table). The checkpoint is
	//     skipped — deterministically, because the blocked-until-stable
	//     outcome is itself a function of the ordered prefix.
	//
	// At most one Quiesce may be outstanding at a time.
	Quiesce(report func(drained bool))

	// HandleOrdered processes a scheduler message that travelled through
	// the total order (deterministic timeouts). It must return true if
	// consumed.
	HandleOrdered(id string, payload any) bool
	// HandleDirect processes a scheduler-private peer message (LSA mutex
	// tables). It must return true if consumed.
	HandleDirect(from wire.NodeID, payload any) bool
}

// EarlyScheduler is implemented by schedulers that can use a request's
// declared conflict classes before the total order assigns it a position —
// the "early scheduling" of Alchieri et al.: the replica feeds every
// optimistically delivered submit to EarlySubmit at arrival time, so the
// class→lane assignment is already computed (and the lane plan cached)
// when the ordered Submit arrives. Early plans are pure functions of the
// request content, identical to what Submit would compute, so consuming a
// cached plan never changes a scheduling decision — only when it is made.
// Plans for requests that are never ordered are dropped by a bounded cache
// and at quiesce boundaries.
type EarlyScheduler interface {
	// EarlySubmit announces a request's conflict classes ahead of its
	// ordered submission. Safe to call any number of times per id; calls
	// after the ordered Submit are ignored.
	EarlySubmit(id wire.InvocationID, classes []string)
}

// StatefulScheduler is implemented by schedulers whose scheduling decisions
// depend on replicated meta-state beyond the current delivery — e.g. the
// adaptive meta-scheduler's epoch counter, metrics window and active-kind
// history. That state is itself a pure function of the ordered stream, so it
// must ride checkpoints: a replica restored by snapshot state transfer has
// not seen the truncated prefix and could otherwise never re-derive it. The
// replica layer calls MarshalSchedulerState at every drained checkpoint
// boundary and UnmarshalSchedulerState right after installing a snapshot.
type StatefulScheduler interface {
	// MarshalSchedulerState serializes the replicated scheduler state at a
	// quiesced (drained) cut.
	MarshalSchedulerState() ([]byte, error)
	// UnmarshalSchedulerState adopts a donor's state, exactly as if this
	// replica had delivered the whole prefix itself.
	UnmarshalSchedulerState(data []byte) error
}

// Capabilities is one row of the paper's Table 1 plus the feature flags the
// extended algorithms add.
type Capabilities struct {
	// Coordination: "implicit", "Locks", "Java", "Locks/Monitor".
	Coordination string
	// DeadlockFree: which external interactions are deadlock-free:
	// "-", "CB", "NI+CB", "NO".
	DeadlockFree string
	// Deployment: "-", "interception", "transformation", "manual". Our Go
	// implementations all use an explicit API, the "manual" column; the
	// value records what the surveyed original used.
	Deployment string
	// Multithreading: "S", "SL", "SA", "SA+L", "MA", "MA (restr.)".
	Multithreading string

	// Extended feature flags (Section 4).
	ReentrantLocks    bool
	ConditionVars     bool
	TimedWait         bool
	NestedInvocations bool
	Callbacks         bool
}
