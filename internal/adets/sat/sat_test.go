package sat

import (
	"testing"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// White-box tests of the SA activation machinery: single active thread,
// deterministic succession via the ready queue, callback priority.

func newBare() (*Scheduler, *vtime.VirtualRuntime) {
	rt := vtime.Virtual()
	s := New()
	s.Start(adets.Env{
		RT:               rt,
		Self:             "g/0",
		Peers:            []wire.NodeID{"g/0"},
		SendPeer:         func(wire.NodeID, any) {},
		BroadcastOrdered: func(string, any) {},
	})
	return s, rt
}

// submitBlocking submits a request whose body parks on `gate` until
// released, recording its start into order.
func submitBlocking(s *Scheduler, rt *vtime.VirtualRuntime, logical string, callback bool, order *[]string, gate *vtime.Mailbox[struct{}]) {
	s.Submit(adets.Request{
		Logical:  wire.LogicalID(logical),
		Callback: callback,
		Exec: func(t *adets.Thread) {
			rt.Lock()
			*order = append(*order, logical)
			rt.Unlock()
			if gate != nil {
				gate.Get()
			}
		},
	})
}

func TestSingleActiveThreadInvariant(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	var order []string
	vtime.Run(rt, "main", func() {
		running := 0
		max := 0
		done := vtime.NewMailbox[struct{}](rt, "done")
		for i := 0; i < 5; i++ {
			logical := wire.LogicalID(rune('a' + i))
			s.Submit(adets.Request{
				Logical: logical,
				Exec: func(t *adets.Thread) {
					rt.Lock()
					running++
					if running > max {
						max = running
					}
					order = append(order, string(logical))
					rt.Unlock()
					rt.Sleep(10) // overlap window (10ns of virtual time)
					rt.Lock()
					running--
					rt.Unlock()
					done.Put(struct{}{})
				},
			})
		}
		for i := 0; i < 5; i++ {
			done.Get()
		}
		rt.Lock()
		if max != 1 {
			t.Errorf("max concurrently running = %d, want 1 (SA invariant)", max)
		}
		rt.Unlock()
		s.Stop()
	})
	if len(order) != 5 {
		t.Errorf("order = %v", order)
	}
	for i, want := range []string{"a", "b", "c", "d", "e"} {
		if order[i] != want {
			t.Errorf("activation order[%d] = %q, want %q (delivery order)", i, order[i], want)
		}
	}
}

func TestCallbackActivatesBeforeQueuedRequests(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	var order []string
	vtime.Run(rt, "main", func() {
		gate := vtime.NewMailbox[struct{}](rt, "gate")
		done := vtime.NewMailbox[struct{}](rt, "done")
		// The first request blocks "in a nested invocation".
		s.Submit(adets.Request{
			Logical: "origin",
			Exec: func(th *adets.Thread) {
				rt.Lock()
				order = append(order, "origin")
				rt.Unlock()
				s.BeginNested(th) // yields activation until EndNested
				done.Put(struct{}{})
			},
		})
		// Two ordinary requests queue up...
		for _, l := range []string{"q1", "q2"} {
			l := l
			s.Submit(adets.Request{
				Logical: wire.LogicalID(l),
				Exec: func(*adets.Thread) {
					rt.Lock()
					order = append(order, l)
					rt.Unlock()
					gate.Get()
					done.Put(struct{}{})
				},
			})
		}
		rt.Sleep(1000) // let origin park and q1 activate (and block on gate)
		// ...then a callback for the blocked logical thread arrives: it must
		// be activated ahead of q2 as soon as q1 yields.
		s.Submit(adets.Request{
			Logical:  "origin",
			Callback: true,
			Exec: func(*adets.Thread) {
				rt.Lock()
				order = append(order, "callback")
				rt.Unlock()
				done.Put(struct{}{})
			},
		})
		gate.Put(struct{}{}) // release q1
		gate.Put(struct{}{}) // release q2 (once it eventually runs)
		for i := 0; i < 3; i++ {
			done.Get()
		}
		// Resume origin and drain it.
		s.Submit(adets.Request{Logical: "x", Exec: func(th *adets.Thread) {}})
		rt.Lock()
		got := append([]string(nil), order...)
		rt.Unlock()
		want := []string{"origin", "q1", "callback", "q2"}
		for i := range want {
			if i >= len(got) || got[i] != want[i] {
				t.Errorf("order = %v, want prefix %v", got, want)
				break
			}
		}
		s.Stop()
	})
}

func TestBasicSATRejectsCondVars(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	s := New(Basic())
	s.Start(adets.Env{RT: rt, Self: "g/0", Peers: []wire.NodeID{"g/0"},
		SendPeer: func(wire.NodeID, any) {}, BroadcastOrdered: func(string, any) {}})
	if s.Name() != "SAT" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.HandleOrdered("x", adets.TimeoutMsg{}) {
		t.Error("basic SAT must not consume timeout messages")
	}
	caps := s.Capabilities()
	if caps.ConditionVars || caps.TimedWait {
		t.Errorf("basic SAT capabilities = %+v", caps)
	}
	s.Stop()
}

func TestUnlockGrantsFIFO(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	var grants []string
	vtime.Run(rt, "main", func() {
		done := vtime.NewMailbox[struct{}](rt, "done")
		for i := 0; i < 3; i++ {
			logical := wire.LogicalID(rune('a' + i))
			s.Submit(adets.Request{
				Logical: logical,
				Exec: func(th *adets.Thread) {
					if err := s.Lock(th, "m"); err != nil {
						t.Errorf("Lock: %v", err)
					}
					rt.Lock()
					grants = append(grants, string(logical))
					rt.Unlock()
					rt.Sleep(100)
					if err := s.Unlock(th, "m"); err != nil {
						t.Errorf("Unlock: %v", err)
					}
					done.Put(struct{}{})
				},
			})
		}
		for i := 0; i < 3; i++ {
			done.Get()
		}
		s.Stop()
	})
	for i, want := range []string{"a", "b", "c"} {
		if grants[i] != want {
			t.Errorf("grant order = %v, want FIFO by blocking order", grants)
			break
		}
	}
}
