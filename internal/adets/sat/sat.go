// Package sat implements the single-active-thread strategies of the paper:
//
//   - Basic "SAT" (Zhao et al., Section 3.2): multiple physical threads may
//     exist, but only one is active at a time; the active thread runs until
//     it blocks (unavailable lock, nested invocation) or terminates, and
//     the successor is chosen deterministically. Plain locks only.
//
//   - "ADETS-SAT" (Section 3.2): the same core plus the native Java
//     synchronization model — reentrant locks (via the framework's
//     Reentrancy layer), condition variables with deterministic wait/notify
//     queues, time-bounded waits handled through totally-ordered timeout
//     requests, and callback execution under logical-thread identity.
//
// The SA(+L) invariant: at every instant at most one thread executes object
// code; scheduling points are lock blocking, condition waits, nested
// invocations, and thread termination.
package sat

import (
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/wire"
)

type threadState int

const (
	stReady threadState = iota
	stRunning
	stBlockedLock
	stWaiting
	stNested
	stDone
)

type satThread struct {
	state        threadState
	waiting      bool
	waitSeq      uint64
	timedOut     bool
	pendingReply bool // nested reply arrived before the thread parked
}

type lockState struct {
	owner   wire.LogicalID
	waiters adets.FIFO
}

type condKey struct {
	m adets.MutexID
	c adets.CondID
}

// Option configures the scheduler.
type Option func(*Scheduler)

// Basic restricts the scheduler to the original SAT algorithm: plain locks
// only, no condition variables, no deterministic timeouts.
func Basic() Option {
	return func(s *Scheduler) { s.basic = true }
}

// Scheduler implements adets.Scheduler with the SA(+L) model.
type Scheduler struct {
	env   adets.Env
	reg   *adets.Registry
	basic bool

	active  *adets.Thread
	ready   adets.FIFO
	locks   map[adets.MutexID]*lockState
	conds   map[condKey]*adets.FIFO
	waiters map[wire.LogicalID]*adets.Thread // logical → thread blocked in Wait
	threads map[*adets.Thread]bool
	tos     *adets.Timeouts
	quiesce func(drained bool)
	stopped bool
}

var _ adets.Scheduler = (*Scheduler)(nil)

// New returns an ADETS-SAT scheduler (or basic SAT with the Basic option).
func New(opts ...Option) *Scheduler {
	s := &Scheduler{
		locks:   make(map[adets.MutexID]*lockState),
		conds:   make(map[condKey]*adets.FIFO),
		waiters: make(map[wire.LogicalID]*adets.Thread),
		threads: make(map[*adets.Thread]bool),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name implements adets.Scheduler.
func (s *Scheduler) Name() string {
	if s.basic {
		return "SAT"
	}
	return "ADETS-SAT"
}

// Capabilities implements adets.Scheduler.
func (s *Scheduler) Capabilities() adets.Capabilities {
	if s.basic {
		return adets.Capabilities{
			Coordination:      "Locks",
			DeadlockFree:      "NI+CB",
			Deployment:        "interception",
			Multithreading:    "SA",
			NestedInvocations: true,
			Callbacks:         true,
		}
	}
	return adets.Capabilities{
		Coordination:      "Java",
		DeadlockFree:      "NI+CB",
		Deployment:        "transformation",
		Multithreading:    "SA+L",
		ReentrantLocks:    true,
		ConditionVars:     true,
		TimedWait:         true,
		NestedInvocations: true,
		Callbacks:         true,
	}
}

// Start implements adets.Scheduler.
func (s *Scheduler) Start(env adets.Env) {
	s.env = env
	s.reg = adets.NewRegistry(env.RT)
	s.tos = adets.NewTimeouts(env)
}

// Stop implements adets.Scheduler: blocked threads are woken and their
// pending operations fail with ErrStopped.
func (s *Scheduler) Stop() {
	rt := s.env.RT
	rt.Lock()
	s.stopped = true
	s.tos.StopAll()
	for t := range s.threads {
		t.Unpark(rt)
	}
	rt.Unlock()
}

func st(t *adets.Thread) *satThread { return t.Sched.(*satThread) }

// Submit implements adets.Scheduler: a new physical thread is created in
// delivery order; callbacks are prioritized so the logical thread the
// object is blocked on can make progress.
func (s *Scheduler) Submit(req adets.Request) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return
	}
	s.env.Obs.Submitted()
	t := s.reg.NewThread("sat/"+string(req.Logical), req.Logical)
	t.Sched = &satThread{state: stReady}
	s.threads[t] = true
	if req.Callback {
		s.ready.PushFront(t)
	} else {
		s.ready.Push(t)
	}
	s.reg.Spawn(t, func() {
		rt.Lock()
		t.Park(rt) // await first activation
		rt.Unlock()
		if !s.isStopped() {
			req.Exec(t)
		}
		s.threadDone(t)
	})
	s.scheduleLocked()
}

func (s *Scheduler) isStopped() bool {
	s.env.RT.Lock()
	defer s.env.RT.Unlock()
	return s.stopped
}

func (s *Scheduler) threadDone(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	st(t).state = stDone
	delete(s.threads, t)
	s.deactivateLocked(t)
	rt.Unlock()
}

// deactivateLocked releases the activation if t holds it and schedules the
// deterministic successor.
func (s *Scheduler) deactivateLocked(t *adets.Thread) {
	if s.active == t {
		s.active = nil
		s.scheduleLocked()
	}
}

// scheduleLocked activates the next ready thread, if any — the single
// deterministic choice point of the SA model.
func (s *Scheduler) scheduleLocked() {
	if s.stopped || s.active != nil {
		return
	}
	w := s.ready.Pop()
	if w == nil {
		s.checkQuiesceLocked()
		return
	}
	s.active = w
	st(w).state = stRunning
	w.Unpark(s.env.RT)
}

// Quiesce implements adets.Scheduler. The SA model is stable exactly when
// no thread is active and none is ready: every live thread is then blocked
// on a lock, a condition, or a nested reply — all resolvable only by future
// ordered deliveries.
func (s *Scheduler) Quiesce(report func(drained bool)) {
	rt := s.env.RT
	rt.Lock()
	s.quiesce = report
	s.checkQuiesceLocked()
	rt.Unlock()
}

func (s *Scheduler) checkQuiesceLocked() {
	if s.quiesce == nil || s.active != nil || s.ready.Len() > 0 {
		return
	}
	report := s.quiesce
	s.quiesce = nil
	report(len(s.threads) == 0)
}

func (s *Scheduler) lock(m adets.MutexID) *lockState {
	ls, ok := s.locks[m]
	if !ok {
		ls = &lockState{}
		s.locks[m] = ls
	}
	return ls
}

func (s *Scheduler) cond(m adets.MutexID, c adets.CondID) *adets.FIFO {
	k := condKey{m, c}
	q, ok := s.conds[k]
	if !ok {
		q = &adets.FIFO{}
		s.conds[k] = q
	}
	return q
}

// Lock implements adets.Scheduler.
func (s *Scheduler) Lock(t *adets.Thread, m adets.MutexID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner == "" {
		ls.owner = t.Logical // uncontended: no scheduling point
		s.env.Obs.Grant(m, string(t.Logical))
		return nil
	}
	var t0 time.Duration
	if s.env.Obs != nil {
		s.env.Obs.Blocked()
		t0 = rt.NowLocked()
	}
	ls.waiters.Push(t)
	st(t).state = stBlockedLock
	s.deactivateLocked(t)
	t.Park(rt)
	if s.stopped {
		s.env.Obs.Unblocked()
		return adets.ErrStopped
	}
	if s.env.Obs != nil {
		s.env.Obs.GrantedAfterBlock(m, string(t.Logical), rt.NowLocked()-t0)
	}
	// Woken ⇒ granted ownership and activated.
	return nil
}

// Unlock implements adets.Scheduler. The unlocker stays active (releasing a
// lock is not a scheduling point); the granted successor becomes ready.
func (s *Scheduler) Unlock(t *adets.Thread, m adets.MutexID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner != t.Logical {
		return adets.ErrNotHeld
	}
	s.env.Obs.Unlock(m, string(t.Logical))
	s.releaseLocked(m, ls)
	return nil
}

// releaseLocked hands the mutex to the deterministically-first waiter.
func (s *Scheduler) releaseLocked(m adets.MutexID, ls *lockState) {
	w := ls.waiters.Pop()
	if w == nil {
		ls.owner = ""
		return
	}
	ls.owner = w.Logical
	s.env.Obs.Grant(m, string(w.Logical))
	st(w).state = stReady
	s.ready.Push(w)
	s.scheduleLocked()
}

// Wait implements adets.Scheduler (ADETS-SAT only).
func (s *Scheduler) Wait(t *adets.Thread, m adets.MutexID, c adets.CondID, d time.Duration) (bool, error) {
	if s.basic {
		return false, adets.ErrUnsupported
	}
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return false, adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner != t.Logical {
		return false, adets.ErrNotHeld
	}
	cst := st(t)
	cst.waiting = true
	cst.timedOut = false
	if d > 0 {
		cst.waitSeq = s.tos.Arm(t, m, c, d)
	}
	s.waiters[t.Logical] = t
	s.cond(m, c).Push(t)
	cst.state = stWaiting
	s.env.Obs.WaitStart(m, c, string(t.Logical))
	s.releaseLocked(m, ls) // wait releases the monitor
	s.deactivateLocked(t)
	t.Park(rt)
	// Woken ⇒ reacquired the mutex (wake path queued us on it) and
	// activated.
	cst.waiting = false
	delete(s.waiters, t.Logical)
	s.tos.Disarm(t)
	if s.stopped {
		return false, adets.ErrStopped
	}
	return cst.timedOut, nil
}

// Notify implements adets.Scheduler (ADETS-SAT only).
func (s *Scheduler) Notify(t *adets.Thread, m adets.MutexID, c adets.CondID) error {
	if s.basic {
		return adets.ErrUnsupported
	}
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	return s.notifyLocked(t, m, c, false)
}

// NotifyAll implements adets.Scheduler (ADETS-SAT only).
func (s *Scheduler) NotifyAll(t *adets.Thread, m adets.MutexID, c adets.CondID) error {
	if s.basic {
		return adets.ErrUnsupported
	}
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner != t.Logical {
		return adets.ErrNotHeld
	}
	for _, w := range s.cond(m, c).Drain() {
		s.wakeWaiterLocked(w, m, c, false)
	}
	return nil
}

func (s *Scheduler) notifyLocked(t *adets.Thread, m adets.MutexID, c adets.CondID, timedOut bool) error {
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner != t.Logical {
		return adets.ErrNotHeld
	}
	w := s.cond(m, c).Pop()
	if w == nil {
		return nil
	}
	s.wakeWaiterLocked(w, m, c, timedOut)
	return nil
}

// wakeWaiterLocked moves a condition waiter to the mutex entry queue (Java
// semantics: a notified thread must reacquire the monitor before resuming).
func (s *Scheduler) wakeWaiterLocked(w *adets.Thread, m adets.MutexID, c adets.CondID, timedOut bool) {
	wst := st(w)
	wst.timedOut = timedOut
	s.env.Obs.Wake(m, c, string(w.Logical), timedOut)
	ls := s.lock(m)
	if ls.owner == "" {
		ls.owner = w.Logical
		s.env.Obs.Grant(m, string(w.Logical))
		wst.state = stReady
		s.ready.Push(w)
		s.scheduleLocked()
		return
	}
	ls.waiters.Push(w)
	wst.state = stBlockedLock
}

// Yield implements adets.Scheduler (no-op under SA: voluntary preemption of
// the active thread would add scheduling points without concurrency gain).
func (s *Scheduler) Yield(*adets.Thread) {}

// BeginNested implements adets.Scheduler: a scheduling point; the thread
// stays suspended until the totally-ordered reply resumes it.
func (s *Scheduler) BeginNested(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	cst := st(t)
	if cst.pendingReply {
		cst.pendingReply = false
		rt.Unlock()
		return
	}
	cst.state = stNested
	s.deactivateLocked(t)
	t.Park(rt)
	rt.Unlock()
}

// EndNested implements adets.Scheduler.
func (s *Scheduler) EndNested(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	cst := st(t)
	if cst.state != stNested {
		cst.pendingReply = true // reply beat the park (real-time race)
		return
	}
	cst.state = stReady
	s.ready.Push(t)
	s.scheduleLocked()
}

// ViewChanged implements adets.Scheduler (SAT needs no membership info).
func (s *Scheduler) ViewChanged(gcs.View) {}

// HandleOrdered implements adets.Scheduler: deterministic wait timeouts
// arrive here as totally-ordered requests and are executed by a normal
// request-handler thread that first acquires the mutex — keeping the
// timeout-vs-notify race deterministic (paper Section 4.2).
func (s *Scheduler) HandleOrdered(id string, payload any) bool {
	if s.basic {
		return false
	}
	msg, ok := payload.(adets.TimeoutMsg)
	if !ok {
		return false
	}
	s.Submit(adets.Request{
		Logical: wire.LogicalID(id),
		Exec:    func(t *adets.Thread) { s.timeoutExec(t, msg) },
	})
	return true
}

// timeoutExec runs on its own scheduler-managed thread: lock, check the
// wait is still pending with the same sequence number, wake as timed out.
func (s *Scheduler) timeoutExec(t *adets.Thread, msg adets.TimeoutMsg) {
	if err := s.Lock(t, msg.Mutex); err != nil {
		return
	}
	rt := s.env.RT
	rt.Lock()
	w := s.waiters[msg.Target]
	if w != nil {
		wst := st(w)
		if wst.waiting && wst.waitSeq == msg.WaitSeq {
			s.env.Obs.TimeoutFired()
			s.cond(msg.Mutex, msg.Cond).Remove(w)
			s.wakeWaiterLocked(w, msg.Mutex, msg.Cond, true)
		}
	}
	rt.Unlock()
	_ = s.Unlock(t, msg.Mutex)
}

// HandleDirect implements adets.Scheduler.
func (s *Scheduler) HandleDirect(wire.NodeID, any) bool { return false }
