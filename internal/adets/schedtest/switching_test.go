package schedtest

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/adets/adaptive"
	"github.com/replobj/replobj/internal/wire"
)

// TestSwitchConformanceAdaptive runs the full conformance suite plus the
// switch-crossing invariants against ADETS-ADAPT with a plan that forces a
// strategy switch every third stream position — every invariant workload
// crosses at least one switch mid-flight.
func TestSwitchConformanceAdaptive(t *testing.T) {
	RunSwitchConformance(t, func(int) adets.Scheduler { return newSwitchingAdaptive() })
}

// TestAdaptivePolicySwitchesToCC drives the default policy (no plan) with a
// fully classed workload: at the first drained boundary every replica must
// have switched to ADETS-CC, with identical histories.
func TestAdaptivePolicySwitchesToCC(t *testing.T) {
	factory := func(int) adets.Scheduler {
		s, err := adaptive.New(adaptive.Config{Epoch: 4, MinWindow: 1})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s
	}
	c := New(3, factory)
	c.Run(func() {
		const n = 10
		for i := 0; i < n; i++ {
			logical := wire.LogicalID(fmt.Sprintf("cl%d", i))
			class := fmt.Sprintf("part%d", i%4)
			c.SubmitClasses(logical, false, []string{class}, func(ic *Ictx) {
				ic.Compute(time.Millisecond)
				ic.Trace("done %s", logical)
			})
		}
		if _, err := c.Await(n, conformanceTimeout); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		var ref []adaptive.Transition
		for i, s := range c.Scheds {
			as := s.(*adaptive.Scheduler)
			if kind := as.CurrentKind(); kind != adaptive.KindCC {
				t.Errorf("replica %d: active kind %s, want %s", i, kind, adaptive.KindCC)
			}
			if as.Switches() == 0 {
				t.Errorf("replica %d: no switch performed", i)
			}
			if i == 0 {
				ref = as.History()
				continue
			}
			if !reflect.DeepEqual(as.History(), ref) {
				t.Errorf("replica %d history %v differs from replica 0 %v", i, as.History(), ref)
			}
		}
	})
}

// TestAdaptiveReplayStableHistory replays the identical mixed workload twice
// (fresh clusters, fresh virtual time) and requires the switch history to be
// byte-identical: the decision must be a function of the ordered stream
// only, never of wall-clock time or scheduling noise.
func TestAdaptiveReplayStableHistory(t *testing.T) {
	run := func() ([]adaptive.Transition, uint64) {
		c := New(1, func(int) adets.Scheduler {
			s, err := adaptive.New(adaptive.Config{Epoch: 3, MinWindow: 1})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			return s
		})
		var history []adaptive.Transition
		var epoch uint64
		c.Run(func() {
			const n = 18
			for i := 0; i < n; i++ {
				i := i
				logical := wire.LogicalID(fmt.Sprintf("cl%d", i))
				var classes []string
				if i >= 9 {
					// Second half is fully classed: the policy should move
					// from its lock-driven choice to ADETS-CC.
					classes = []string{fmt.Sprintf("p%d", i%3)}
				}
				c.SubmitClasses(logical, false, classes, func(ic *Ictx) {
					if i < 9 {
						_ = ic.Lock(m0)
						ic.Compute(time.Millisecond)
						_ = ic.Unlock(m0)
						return
					}
					ic.Compute(time.Millisecond)
				})
			}
			if _, err := c.Await(n, conformanceTimeout); err != nil {
				t.Errorf("await: %v", err)
				return
			}
			as := c.Scheds[0].(*adaptive.Scheduler)
			history = as.History()
			epoch = as.Epoch()
		})
		return history, epoch
	}
	h1, e1 := run()
	h2, e2 := run()
	if !reflect.DeepEqual(h1, h2) || e1 != e2 {
		t.Errorf("replays diverged:\n  run 1: epoch %d history %v\n  run 2: epoch %d history %v", e1, h1, e2, h2)
	}
	if len(h1) == 0 {
		t.Error("workload produced no switches; the replay assertion is vacuous")
	}
}
