package schedtest

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/adets/lsa"
	"github.com/replobj/replobj/internal/adets/mat"
	"github.com/replobj/replobj/internal/adets/pds"
	"github.com/replobj/replobj/internal/adets/sat"
	"github.com/replobj/replobj/internal/adets/seq"
	"github.com/replobj/replobj/internal/adets/sl"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/wire"
)

// --- SEQ ---

// TestSEQSerializesEverything: n requests of 10ms compute take n*10ms —
// the baseline the whole paper argues against.
func TestSEQSerializesEverything(t *testing.T) {
	c := New(1, func(int) adets.Scheduler { return seq.New() })
	c.Run(func() {
		const n = 5
		for i := 0; i < n; i++ {
			c.Submit(wire.LogicalID(fmt.Sprintf("cl%d", i)), false, func(ic *Ictx) {
				ic.Compute(10 * time.Millisecond)
			})
		}
		if _, err := c.Await(n, timeout); err != nil {
			t.Fatal(err)
		}
		if got := c.RT.Now(); got != n*10*time.Millisecond {
			t.Errorf("SEQ finished at %v, want %v", got, n*10*time.Millisecond)
		}
	})
}

// TestSEQNestedBlocksOtherRequests: while the single thread waits for a
// nested reply, nothing else runs (Section 2's performance argument).
func TestSEQNestedBlocksOtherRequests(t *testing.T) {
	c := New(1, func(int) adets.Scheduler { return seq.New() })
	c.Run(func() {
		c.Submit("nester", false, func(ic *Ictx) {
			ic.Nested(50 * time.Millisecond)
		})
		c.Submit("quick", false, func(ic *Ictx) {
			ic.Compute(time.Millisecond)
		})
		order, err := c.Await(2, timeout)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(order[0], []string{"nester", "quick"}) {
			t.Errorf("order = %v, want nester first (SEQ blocks on nested)", order[0])
		}
	})
}

// TestSEQWaitUnsupported: condition variables are rejected, forcing the
// polling fallback the paper's evaluation uses (Section 5.5).
func TestSEQWaitUnsupported(t *testing.T) {
	c := New(1, func(int) adets.Scheduler { return seq.New() })
	c.Run(func() {
		c.Submit("cl0", false, func(ic *Ictx) {
			_ = ic.Lock("m")
			if _, err := ic.Wait("m", "", 0); err != adets.ErrUnsupported {
				t.Errorf("Wait err = %v, want ErrUnsupported", err)
			}
			if err := ic.Notify("m", ""); err != adets.ErrUnsupported {
				t.Errorf("Notify err = %v, want ErrUnsupported", err)
			}
			_ = ic.Unlock("m")
		})
		if _, err := c.Await(1, timeout); err != nil {
			t.Fatal(err)
		}
	})
}

// --- SL (Eternal) ---

// TestSLCallbackRunsDuringNested: the callback (same logical thread)
// executes on an extra physical thread while the worker is blocked — the
// SL model's whole point.
func TestSLCallbackRunsDuringNested(t *testing.T) {
	c := New(1, func(int) adets.Scheduler { return sl.New() })
	c.Run(func() {
		c.Submit("chain", false, func(ic *Ictx) {
			// Simulate A→B→A: after 5ms the "callback" arrives; the nested
			// reply comes later, after the callback completed.
			c.RT.After(5*time.Millisecond, "cb-inject", func() {
				c.Submit("chain", true, func(cb *Ictx) {
					cb.Trace("callback ran at %v", c.RT.Now())
					cb.Compute(2 * time.Millisecond)
				})
			})
			ic.Nested(20 * time.Millisecond)
			ic.Trace("nested returned at %v", c.RT.Now())
		})
		if _, err := c.Await(2, timeout); err != nil {
			t.Fatal(err)
		}
	})
	tr := c.Traces()[0]
	if len(tr) != 2 || tr[0] != "callback ran at 5ms" {
		t.Errorf("trace = %v, want callback first at 5ms", tr)
	}
}

// TestSLNonCallbackStillSequential: ordinary requests remain strictly
// sequential under SL.
func TestSLNonCallbackStillSequential(t *testing.T) {
	c := New(1, func(int) adets.Scheduler { return sl.New() })
	c.Run(func() {
		for i := 0; i < 4; i++ {
			c.Submit(wire.LogicalID(fmt.Sprintf("cl%d", i)), false, func(ic *Ictx) {
				ic.Compute(10 * time.Millisecond)
			})
		}
		if _, err := c.Await(4, timeout); err != nil {
			t.Fatal(err)
		}
		if got := c.RT.Now(); got != 40*time.Millisecond {
			t.Errorf("finished at %v, want 40ms (sequential)", got)
		}
	})
}

// --- SAT ---

// TestSATUsesNestedIdleTime: a second request executes during the first
// one's nested invocation (Fig. 5(a)'s effect), but plain computations do
// not overlap.
func TestSATUsesNestedIdleTime(t *testing.T) {
	c := New(1, func(int) adets.Scheduler { return sat.New() })
	c.Run(func() {
		c.Submit("nester", false, func(ic *Ictx) {
			ic.Nested(30 * time.Millisecond)
		})
		c.Submit("worker1", false, func(ic *Ictx) {
			ic.Compute(10 * time.Millisecond)
		})
		c.Submit("worker2", false, func(ic *Ictx) {
			ic.Compute(10 * time.Millisecond)
		})
		if _, err := c.Await(3, timeout); err != nil {
			t.Fatal(err)
		}
		// worker1+worker2 run inside nester's 30ms window: total 30ms, not
		// 50ms — but the two computations themselves serialize (single
		// active thread).
		if got := c.RT.Now(); got != 30*time.Millisecond {
			t.Errorf("finished at %v, want 30ms", got)
		}
	})
}

// TestSATComputationsSerialize: SAT gains nothing for pure computation —
// the Fig. 4(a) behaviour that motivates MAT.
func TestSATComputationsSerialize(t *testing.T) {
	c := New(1, func(int) adets.Scheduler { return sat.New() })
	c.Run(func() {
		for i := 0; i < 4; i++ {
			c.Submit(wire.LogicalID(fmt.Sprintf("cl%d", i)), false, func(ic *Ictx) {
				ic.Compute(25 * time.Millisecond)
			})
		}
		if _, err := c.Await(4, timeout); err != nil {
			t.Fatal(err)
		}
		if got := c.RT.Now(); got != 100*time.Millisecond {
			t.Errorf("finished at %v, want 100ms (serialized)", got)
		}
	})
}

// --- MAT ---

// TestMATComputeThenLockParallelizes reproduces Fig. 4(b)'s shape: with
// compute-then-short-lock, n requests take ≈ one compute time.
func TestMATComputeThenLockParallelizes(t *testing.T) {
	c := New(1, func(int) adets.Scheduler { return mat.New() })
	c.Run(func() {
		const n = 8
		for i := 0; i < n; i++ {
			c.Submit(wire.LogicalID(fmt.Sprintf("cl%d", i)), false, func(ic *Ictx) {
				ic.Compute(100 * time.Millisecond)
				_ = ic.Lock("state")
				_ = ic.Unlock("state")
			})
		}
		if _, err := c.Await(n, timeout); err != nil {
			t.Fatal(err)
		}
		if got := c.RT.Now(); got != 100*time.Millisecond {
			t.Errorf("compute-lock-unlock finished at %v, want 100ms (parallel)", got)
		}
	})
}

// TestMATLockComputeUnlockSerializes reproduces Fig. 4(c)/(d): with the
// token held through the computation, MAT degenerates to SAT.
func TestMATLockComputeUnlockSerializes(t *testing.T) {
	for _, pattern := range []string{"lock-compute-unlock", "lock-unlock-compute"} {
		t.Run(pattern, func(t *testing.T) {
			c := New(1, func(int) adets.Scheduler { return mat.New() })
			c.Run(func() {
				const n = 4
				for i := 0; i < n; i++ {
					m := adets.MutexID(fmt.Sprintf("m%d", i)) // distinct mutexes!
					c.Submit(wire.LogicalID(fmt.Sprintf("cl%d", i)), false, func(ic *Ictx) {
						_ = ic.Lock(m)
						if pattern == "lock-compute-unlock" {
							ic.Compute(50 * time.Millisecond)
							_ = ic.Unlock(m)
						} else {
							_ = ic.Unlock(m)
							ic.Compute(50 * time.Millisecond)
						}
					})
				}
				if _, err := c.Await(n, timeout); err != nil {
					t.Fatal(err)
				}
				// Even with distinct mutexes, only the primary can lock and
				// it keeps the token through its computation: serialized.
				if got := c.RT.Now(); got != 200*time.Millisecond {
					t.Errorf("%s finished at %v, want 200ms (serialized)", pattern, got)
				}
			})
		})
	}
}

// TestMATYieldRestoresConcurrency: the paper's Section 5.3 remedy — a
// yield after the unlock lets successors lock while this thread computes.
func TestMATYieldRestoresConcurrency(t *testing.T) {
	c := New(1, func(int) adets.Scheduler { return mat.New() })
	c.Run(func() {
		const n = 4
		for i := 0; i < n; i++ {
			m := adets.MutexID(fmt.Sprintf("m%d", i))
			c.Submit(wire.LogicalID(fmt.Sprintf("cl%d", i)), false, func(ic *Ictx) {
				_ = ic.Lock(m)
				_ = ic.Unlock(m)
				ic.Yield()
				ic.Compute(50 * time.Millisecond)
			})
		}
		if _, err := c.Await(n, timeout); err != nil {
			t.Fatal(err)
		}
		if got := c.RT.Now(); got != 50*time.Millisecond {
			t.Errorf("yielded S-C finished at %v, want 50ms (parallel)", got)
		}
	})
}

// --- LSA ---

// TestLSAFollowerWaitsForTable: a follower cannot grant before the
// leader's mutex table arrives; with the table it grants in the leader's
// order.
func TestLSAFollowerWaitsForTable(t *testing.T) {
	c := New(2, func(int) adets.Scheduler {
		return lsa.New(lsa.WithPeriod(5 * time.Millisecond))
	})
	c.Run(func() {
		done := make([]time.Duration, 2)
		c.Submit("cl0", false, func(ic *Ictx) {
			_ = ic.Lock("m")
			_ = ic.Unlock("m")
			now := c.RT.Now()
			c.RT.Lock()
			done[ic.Replica()] = now
			c.RT.Unlock()
		})
		if _, err := c.Await(1, timeout); err != nil {
			t.Fatal(err)
		}
		if done[0] != 0 {
			t.Errorf("leader finished at %v, want 0 (no table wait)", done[0])
		}
		if done[1] < 5*time.Millisecond {
			t.Errorf("follower finished at %v, want >= one broadcast period", done[1])
		}
	})
}

// TestLSAFailover: the leader "crashes"; after the in-stream view change
// the new leader grants pending requests and the group makes progress.
func TestLSAFailover(t *testing.T) {
	c := New(3, func(int) adets.Scheduler { return lsa.New() })
	c.Run(func() {
		c.Submit("before", false, func(ic *Ictx) {
			_ = ic.Lock("m")
			ic.Trace("m:before")
			_ = ic.Unlock(adets.MutexID("m"))
		})
		if _, err := c.Await(1, timeout); err != nil {
			t.Fatal(err)
		}
		// Promote replica 1; from now on it grants (the schedtest cluster
		// does not really crash replica 0 — LSA only cares who grants).
		c.ViewChange(gcs.View{Epoch: 1, Members: []wire.NodeID{
			wire.ReplicaID("g", 1), wire.ReplicaID("g", 2),
		}})
		c.Submit("after", false, func(ic *Ictx) {
			_ = ic.Lock("m")
			ic.Trace("m:after")
			_ = ic.Unlock(adets.MutexID("m"))
		})
		if _, err := c.Await(1, timeout); err != nil {
			t.Fatal(err)
		}
	})
	for i, tr := range c.Traces() {
		if !reflect.DeepEqual(tr, []string{"m:before", "m:after"}) {
			t.Errorf("replica %d trace = %v", i, tr)
		}
	}
}

// --- PDS ---

// TestPDSGrantsInThreadIDOrder: requests suspended on the same mutex at a
// round start are granted lowest-thread-ID first.
func TestPDSGrantsInThreadIDOrder(t *testing.T) {
	c := New(1, func(int) adets.Scheduler {
		return pds.New(pds.Config{Variant: pds.PDS1, PoolSize: 4})
	})
	c.Run(func() {
		// All four requests compute 10ms, then contend on one mutex. They
		// are assigned to workers 0..3 in submit order; grants must follow
		// worker-ID order.
		for i := 0; i < 4; i++ {
			c.Submit(wire.LogicalID(fmt.Sprintf("cl%d", i)), false, func(ic *Ictx) {
				ic.Compute(10 * time.Millisecond)
				_ = ic.Lock("hot")
				ic.Trace("hot:%s", ic.Thread().Logical)
				ic.Compute(time.Millisecond)
				_ = ic.Unlock("hot")
			})
		}
		if _, err := c.Await(4, timeout); err != nil {
			t.Fatal(err)
		}
	})
	want := []string{"hot:cl0", "hot:cl1", "hot:cl2", "hot:cl3"}
	if got := c.Traces()[0]; !reflect.DeepEqual(got, want) {
		t.Errorf("grant order = %v, want %v", got, want)
	}
}

// TestPDSPoolGrowsOutOfWaitDeadlock: with a pool of 1, the only thread
// waits on a condition variable; the resize rule must add a thread so the
// notifying request can run (Section 4.2).
func TestPDSPoolGrowsOutOfWaitDeadlock(t *testing.T) {
	c := New(1, func(int) adets.Scheduler {
		return pds.New(pds.Config{Variant: pds.PDS1, PoolSize: 1, MinSpare: 1})
	})
	c.Run(func() {
		c.Submit("waiter", false, func(ic *Ictx) {
			_ = ic.Lock("m")
			if _, err := ic.Wait("m", "", 0); err != nil {
				t.Errorf("Wait: %v", err)
			}
			ic.Trace("woken")
			_ = ic.Unlock("m")
		})
		c.Submit("notifier", false, func(ic *Ictx) {
			ic.Compute(5 * time.Millisecond)
			_ = ic.Lock("m")
			_ = ic.Notify("m", "")
			_ = ic.Unlock("m")
		})
		if _, err := c.Await(2, timeout); err != nil {
			t.Fatal(err)
		}
	})
	if got := c.Traces()[0]; !reflect.DeepEqual(got, []string{"woken"}) {
		t.Errorf("trace = %v, want [woken]", got)
	}
}

// TestPDSNestedStrategies compares strategy A (blocks the round) with
// strategy B (other threads keep running): under B a concurrent request
// finishes during the nested invocation, under A it cannot.
func TestPDSNestedStrategies(t *testing.T) {
	run := func(ns pds.NestedStrategy) []string {
		c := New(1, func(int) adets.Scheduler {
			return pds.New(pds.Config{Variant: pds.PDS1, PoolSize: 2, Nested: ns})
		})
		var order []string
		c.Run(func() {
			c.Submit("nester", false, func(ic *Ictx) {
				_ = ic.Lock("a")
				_ = ic.Unlock("a")
				ic.Nested(50 * time.Millisecond)
			})
			c.Submit("other", false, func(ic *Ictx) {
				_ = ic.Lock("b")
				ic.Compute(5 * time.Millisecond)
				_ = ic.Unlock("b")
				// Needs another round to lock again: blocked under A while
				// the nested invocation is outstanding.
				_ = ic.Lock("b2")
				_ = ic.Unlock("b2")
			})
			got, err := c.Await(2, timeout)
			if err != nil {
				t.Fatal(err)
			}
			order = got[0]
		})
		return order
	}
	a := run(pds.NestedBlockRound)
	b := run(pds.NestedSuspend)
	if !reflect.DeepEqual(b, []string{"other", "nester"}) {
		t.Errorf("strategy B order = %v, want other first", b)
	}
	if !reflect.DeepEqual(a, []string{"nester", "other"}) {
		t.Errorf("strategy A order = %v, want nester first (round blocked)", a)
	}
}

// TestMATNoMoreLocksStepsAside: the lock-prediction extension — a declared
// computation-only thread leaves the token order so a later locker proceeds
// immediately; locking after the declaration is an error.
func TestMATNoMoreLocksStepsAside(t *testing.T) {
	c := New(1, func(int) adets.Scheduler { return mat.New() })
	c.Run(func() {
		c.Submit("computer", false, func(ic *Ictx) {
			ic.DeclareNoMoreLocks()
			ic.Compute(100 * time.Millisecond)
			if err := ic.Lock("m"); err != adets.ErrLockAfterDeclaration {
				t.Errorf("Lock after declaration = %v, want ErrLockAfterDeclaration", err)
			}
		})
		c.Submit("locker", false, func(ic *Ictx) {
			_ = ic.Lock("m")
			now := c.RT.Now()
			c.RT.Lock()
			if now >= 100*time.Millisecond {
				t.Errorf("locker acquired at %v; the declared computer should not delay it", now)
			}
			c.RT.Unlock()
			_ = ic.Unlock("m")
		})
		if _, err := c.Await(2, timeout); err != nil {
			t.Fatal(err)
		}
	})
}

// TestMATWithoutPredictionLockerWaits is the control: without the
// declaration, the locker waits for the whole leading computation.
func TestMATWithoutPredictionLockerWaits(t *testing.T) {
	c := New(1, func(int) adets.Scheduler { return mat.New() })
	c.Run(func() {
		c.Submit("computer", false, func(ic *Ictx) {
			ic.Compute(100 * time.Millisecond)
		})
		c.Submit("locker", false, func(ic *Ictx) {
			_ = ic.Lock("m")
			now := c.RT.Now()
			c.RT.Lock()
			if now < 100*time.Millisecond {
				t.Errorf("locker acquired at %v; plain MAT must wait for the token", now)
			}
			c.RT.Unlock()
			_ = ic.Unlock("m")
		})
		if _, err := c.Await(2, timeout); err != nil {
			t.Fatal(err)
		}
	})
}
