package schedtest

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/wire"
)

// TestUnlockWithoutHoldFails: every lock-aware scheduler rejects unlocking
// a mutex the logical thread does not hold.
func TestUnlockWithoutHoldFails(t *testing.T) {
	for name, factory := range factories {
		switch name {
		case "SEQ", "SL":
			continue // implicit coordination: lock ops are no-ops
		}
		t.Run(name, func(t *testing.T) {
			c := New(1, factory)
			c.Run(func() {
				c.Submit("cl0", false, func(ic *Ictx) {
					if err := ic.Unlock("never-locked"); err != adets.ErrNotHeld {
						t.Errorf("Unlock = %v, want ErrNotHeld", err)
					}
				})
				if _, err := c.Await(1, timeout); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

// TestNotifyWithoutHoldFails: Java semantics — notify requires the monitor.
func TestNotifyWithoutHoldFails(t *testing.T) {
	for name, factory := range factories {
		if !caps(name).ConditionVars {
			continue
		}
		t.Run(name, func(t *testing.T) {
			c := New(1, factory)
			c.Run(func() {
				c.Submit("cl0", false, func(ic *Ictx) {
					if err := ic.Notify("m", ""); err != adets.ErrNotHeld {
						t.Errorf("Notify = %v, want ErrNotHeld", err)
					}
					if err := ic.NotifyAll("m", ""); err != adets.ErrNotHeld {
						t.Errorf("NotifyAll = %v, want ErrNotHeld", err)
					}
					if _, err := ic.Wait("m", "", 0); err != adets.ErrNotHeld {
						t.Errorf("Wait = %v, want ErrNotHeld", err)
					}
				})
				if _, err := c.Await(1, timeout); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

// TestNotifyAllWakesAllInOrder: waiters resume in their deterministic wait
// order on every replica.
func TestNotifyAllWakesAllInOrder(t *testing.T) {
	for name, factory := range factories {
		if !caps(name).ConditionVars {
			continue
		}
		t.Run(name, func(t *testing.T) {
			c := New(3, factory)
			c.Run(func() {
				const waiters = 3
				for i := 0; i < waiters; i++ {
					logical := fmt.Sprintf("w%d", i)
					// Stagger so wait order is deterministic.
					pre := time.Duration(i+1) * time.Millisecond
					c.Submit(wire.LogicalID(logical), false, func(ic *Ictx) {
						ic.Compute(pre)
						_ = ic.Lock("m")
						if _, err := ic.Wait("m", "", 0); err != nil {
							t.Errorf("Wait: %v", err)
						}
						ic.Trace("woke:%s", logical)
						_ = ic.Unlock("m")
					})
				}
				c.Submit("broadcaster", false, func(ic *Ictx) {
					ic.Compute(20 * time.Millisecond)
					_ = ic.Lock("m")
					_ = ic.NotifyAll("m", "")
					_ = ic.Unlock("m")
				})
				if _, err := c.Await(waiters+1, timeout); err != nil {
					t.Fatal(err)
				}
			})
			traces := c.Traces()
			want := []string{"woke:w0", "woke:w1", "woke:w2"}
			for i, tr := range traces {
				if !reflect.DeepEqual(tr, want) {
					t.Errorf("replica %d wake order = %v, want %v", i, tr, want)
				}
			}
		})
	}
}
