// Package schedtest provides a multi-replica test harness for ADETS
// schedulers. It emulates the middleware around a scheduler — the totally
// ordered event stream (request submissions, scheduler broadcasts, nested
// invocation replies) and the invocation context — without transport or
// group communication, so scheduler semantics and cross-replica
// determinism can be tested in isolation and in virtual time.
package schedtest

import (
	"fmt"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// Script is a request body: it receives the per-replica invocation context.
type Script func(ic *Ictx)

// Cluster drives N scheduler replicas through one totally ordered event
// stream.
type Cluster struct {
	RT     *vtime.VirtualRuntime
	Scheds []adets.Scheduler
	Reents []*adets.Reentrancy

	n        int
	mailbox  []*vtime.Mailbox[event]
	results  []*vtime.Mailbox[string]
	traces   [][]string
	threads  []map[wire.LogicalID]*adets.Thread
	nested   []map[wire.LogicalID][]*adets.Thread // per-logical stack of nested-blocked threads
	seenIDs  map[string]bool
	reqSeq   uint64
	replyLat time.Duration
}

type event struct {
	kind    string // "submit", "ordered", "reply"
	req     adets.Request
	logical wire.LogicalID
	id      string
	payload any
}

// New builds a cluster of n replicas whose schedulers come from factory.
func New(n int, factory func(i int) adets.Scheduler) *Cluster {
	rt := vtime.Virtual()
	c := &Cluster{
		RT:       rt,
		n:        n,
		seenIDs:  make(map[string]bool),
		replyLat: time.Millisecond,
	}
	peers := make([]wire.NodeID, n)
	for i := 0; i < n; i++ {
		peers[i] = wire.ReplicaID("g", i)
	}
	for i := 0; i < n; i++ {
		s := factory(i)
		c.Scheds = append(c.Scheds, s)
		c.Reents = append(c.Reents, adets.NewReentrancy(rt, s))
		c.mailbox = append(c.mailbox, vtime.NewMailbox[event](rt, fmt.Sprintf("schedtest/%d", i)))
		c.results = append(c.results, vtime.NewMailbox[string](rt, fmt.Sprintf("results/%d", i)))
		c.traces = append(c.traces, nil)
		c.threads = append(c.threads, make(map[wire.LogicalID]*adets.Thread))
		c.nested = append(c.nested, make(map[wire.LogicalID][]*adets.Thread))
		env := adets.Env{
			RT:       rt,
			Self:     peers[i],
			Peers:    peers,
			SendPeer: func(wire.NodeID, any) {},
			BroadcastOrdered: func(id string, payload any) {
				c.publish(event{kind: "ordered", id: id, payload: payload})
			},
		}
		s.Start(env)
	}
	for i := 0; i < n; i++ {
		i := i
		rt.Go(fmt.Sprintf("dispatch/%d", i), func() { c.dispatch(i) })
	}
	return c
}

// publish appends ev to every replica's stream atomically (same order
// everywhere) after id-based deduplication.
func (c *Cluster) publish(ev event) {
	c.RT.Lock()
	if ev.id != "" {
		if c.seenIDs[ev.id] {
			c.RT.Unlock()
			return
		}
		c.seenIDs[ev.id] = true
	}
	for i := 0; i < c.n; i++ {
		c.mailbox[i].PutLocked(ev)
	}
	c.RT.Unlock()
}

func (c *Cluster) dispatch(i int) {
	for {
		ev, ok := c.mailbox[i].Get()
		if !ok {
			return
		}
		switch ev.kind {
		case "submit":
			c.Scheds[i].Submit(ev.req)
		case "ordered":
			if ve, ok := ev.payload.(viewEvent); ok {
				c.Scheds[i].ViewChanged(ve.v)
				continue
			}
			c.Scheds[i].HandleOrdered(ev.id, ev.payload)
		case "reply":
			c.RT.Lock()
			stack := c.nested[i][ev.logical]
			var t *adets.Thread
			if n := len(stack); n > 0 {
				t = stack[n-1]
				c.nested[i][ev.logical] = stack[:n-1]
			}
			c.RT.Unlock()
			if t != nil {
				c.Scheds[i].EndNested(t)
			}
		}
	}
}

// Submit injects a request executing script under the given logical thread
// on every replica. Callback marks it as a callback request. All replicas
// receive the submission at the same stream position (one lock hold).
func (c *Cluster) Submit(logical wire.LogicalID, callback bool, script Script) {
	c.SubmitClasses(logical, callback, nil, script)
}

// SubmitClasses is Submit with declared conflict classes: conflict-aware
// schedulers (ADETS-CC) partition such requests onto worker lanes, every
// other scheduler ignores the declaration. Nil classes mean "global".
func (c *Cluster) SubmitClasses(logical wire.LogicalID, callback bool, classes []string, script Script) {
	c.RT.Lock()
	defer c.RT.Unlock()
	c.reqSeq++
	seq := c.reqSeq
	for i := 0; i < c.n; i++ {
		i := i
		req := adets.Request{
			ID:       wire.InvocationID{Logical: logical, Seq: seq},
			Logical:  logical,
			Callback: callback,
			Classes:  classes,
			Seq:      seq,
			Exec: func(t *adets.Thread) {
				c.RT.Lock()
				c.threads[i][logical] = t
				c.RT.Unlock()
				ic := &Ictx{c: c, replica: i, t: t}
				script(ic)
				c.RT.Lock()
				delete(c.threads[i], logical)
				c.RT.Unlock()
				c.results[i].Put(string(logical))
			},
		}
		c.mailbox[i].PutLocked(event{kind: "submit", req: req})
	}
}

// Await blocks until every replica finished k requests, failing on timeout.
// Returns the completion order per replica.
func (c *Cluster) Await(k int, timeout time.Duration) ([][]string, error) {
	out := make([][]string, c.n)
	for i := 0; i < c.n; i++ {
		for len(out[i]) < k {
			v, ok, timedOut := c.results[i].GetTimeout(timeout)
			if timedOut {
				return out, fmt.Errorf("replica %d: timed out after %d/%d completions", i, len(out[i]), k)
			}
			if !ok {
				return out, fmt.Errorf("replica %d: results closed", i)
			}
			out[i] = append(out[i], v)
		}
	}
	return out, nil
}

// Traces returns each replica's recorded trace.
func (c *Cluster) Traces() [][]string {
	c.RT.Lock()
	defer c.RT.Unlock()
	out := make([][]string, c.n)
	for i := range c.traces {
		out[i] = append([]string(nil), c.traces[i]...)
	}
	return out
}

// Close stops schedulers and dispatchers; call inside Run.
func (c *Cluster) Close() {
	for _, s := range c.Scheds {
		s.Stop()
	}
	for _, mb := range c.mailbox {
		mb.Close()
	}
}

// Run executes fn on a tracked goroutine and tears the cluster down.
func (c *Cluster) Run(fn func()) {
	vtime.Run(c.RT, "schedtest-main", func() {
		fn()
		c.Close()
	})
	c.RT.Stop()
}

// ViewChange announces a new view to every scheduler at the same stream
// position (used by LSA fail-over tests).
func (c *Cluster) ViewChange(v gcs.View) {
	// Deliver through the ordered stream so position is identical.
	c.publish(event{kind: "ordered", id: "viewchange/" + fmt.Sprint(v.Epoch), payload: viewEvent{v: v}})
}

type viewEvent struct{ v gcs.View }

// Ictx is the invocation context handed to scripts: the Go counterpart of
// the transformed synchronization operations of the paper's object code.
type Ictx struct {
	c        *Cluster
	replica  int
	t        *adets.Thread
	nestedCt int
}

// Replica returns the replica index executing this context.
func (ic *Ictx) Replica() int { return ic.replica }

// Thread returns the executing scheduler thread.
func (ic *Ictx) Thread() *adets.Thread { return ic.t }

// Lock acquires a (reentrant) mutex through the scheduler.
func (ic *Ictx) Lock(m adets.MutexID) error {
	return ic.c.Reents[ic.replica].Lock(ic.t, m)
}

// Unlock releases a mutex.
func (ic *Ictx) Unlock(m adets.MutexID) error {
	return ic.c.Reents[ic.replica].Unlock(ic.t, m)
}

// Wait waits on (m, c); d > 0 bounds the wait.
func (ic *Ictx) Wait(m adets.MutexID, cond adets.CondID, d time.Duration) (bool, error) {
	return ic.c.Reents[ic.replica].Wait(ic.t, m, cond, d)
}

// Notify wakes one waiter of (m, c).
func (ic *Ictx) Notify(m adets.MutexID, cond adets.CondID) error {
	return ic.c.Reents[ic.replica].Notify(ic.t, m, cond)
}

// NotifyAll wakes all waiters of (m, c).
func (ic *Ictx) NotifyAll(m adets.MutexID, cond adets.CondID) error {
	return ic.c.Reents[ic.replica].NotifyAll(ic.t, m, cond)
}

// Yield offers a scheduling point.
func (ic *Ictx) Yield() { ic.c.Scheds[ic.replica].Yield(ic.t) }

// Depth returns the calling logical thread's reentrant hold depth on m.
func (ic *Ictx) Depth(m adets.MutexID) int {
	return ic.c.Reents[ic.replica].Depth(ic.t, m)
}

// DeclareNoMoreLocks invokes the lock-prediction hook if the scheduler
// supports it.
func (ic *Ictx) DeclareNoMoreLocks() {
	if lp, ok := ic.c.Scheds[ic.replica].(adets.LockPredictor); ok {
		lp.NoMoreLocks(ic.t)
	}
}

// Compute simulates local computation for d, exactly as the paper does:
// the thread suspends, freeing the (virtual) CPU.
func (ic *Ictx) Compute(d time.Duration) { ic.c.RT.Sleep(d) }

// Nested simulates a nested invocation taking d end to end: the thread
// blocks at the scheduler; the reply arrives as a totally-ordered event.
func (ic *Ictx) Nested(d time.Duration) {
	ic.nestedCt++
	id := fmt.Sprintf("reply/%s/%d", ic.t.Logical, ic.nestedCt)
	logical := ic.t.Logical
	c := ic.c
	c.RT.Lock()
	c.nested[ic.replica][logical] = append(c.nested[ic.replica][logical], ic.t)
	c.RT.Unlock()
	c.RT.After(d, "nested-reply", func() {
		c.publish(event{kind: "reply", id: id, logical: logical})
	})
	c.Scheds[ic.replica].BeginNested(ic.t)
}

// Trace appends a record to the replica's trace (used to compare
// cross-replica execution orders).
func (ic *Ictx) Trace(format string, args ...any) {
	c := ic.c
	c.RT.Lock()
	c.traces[ic.replica] = append(c.traces[ic.replica], fmt.Sprintf(format, args...))
	c.RT.Unlock()
}
