package schedtest

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/adets/adaptive"
	"github.com/replobj/replobj/internal/adets/cc"
	"github.com/replobj/replobj/internal/adets/lsa"
	"github.com/replobj/replobj/internal/adets/mat"
	"github.com/replobj/replobj/internal/adets/pds"
	"github.com/replobj/replobj/internal/adets/sat"
	"github.com/replobj/replobj/internal/adets/seq"
	"github.com/replobj/replobj/internal/adets/sl"
	"github.com/replobj/replobj/internal/wire"
)

// factories lists every scheduler under test. PDS pools are sized to the
// largest request count used by the generic tests.
var factories = map[string]func(i int) adets.Scheduler{
	"SEQ":       func(int) adets.Scheduler { return seq.New() },
	"SL":        func(int) adets.Scheduler { return sl.New() },
	"SAT-basic": func(int) adets.Scheduler { return sat.New(sat.Basic()) },
	"ADETS-SAT": func(int) adets.Scheduler { return sat.New() },
	"ADETS-MAT": func(int) adets.Scheduler { return mat.New() },
	"ADETS-LSA": func(int) adets.Scheduler { return lsa.New() },
	"ADETS-PDS": func(int) adets.Scheduler {
		return pds.New(pds.Config{Variant: pds.PDS1, PoolSize: 12})
	},
	"ADETS-PDS-2": func(int) adets.Scheduler {
		return pds.New(pds.Config{Variant: pds.PDS2, PoolSize: 12})
	},
	"ADETS-PDS-RR": func(int) adets.Scheduler {
		return pds.New(pds.Config{Variant: pds.PDS1, PoolSize: 12, Assignment: pds.RoundRobin})
	},
	"ADETS-CC":    func(int) adets.Scheduler { return cc.New() },
	"ADETS-ADAPT": func(int) adets.Scheduler { return newSwitchingAdaptive() },
}

// newSwitchingAdaptive builds an ADETS-ADAPT instance aggressive enough for
// the generic tests to cross strategy switches mid-workload: a short epoch
// and a plan alternating between the two full-capability kinds at every
// boundary (ADETS-SAT on even epochs, ADETS-MAT on odd ones).
func newSwitchingAdaptive() adets.Scheduler {
	plan := make([]adaptive.PlanStep, 0, 16)
	for e := uint64(1); e <= 16; e++ {
		kind := adaptive.KindSAT
		if e%2 == 1 {
			kind = adaptive.KindMAT
		}
		plan = append(plan, adaptive.PlanStep{Epoch: e, Kind: kind})
	}
	s, err := adaptive.New(adaptive.Config{Epoch: 3, MinWindow: 1, Plan: plan})
	if err != nil {
		panic(err)
	}
	return s
}

func caps(name string) adets.Capabilities {
	return factories[name](0).Capabilities()
}

const timeout = 30 * time.Second

// TestMutualExclusion checks that lock-protected read-modify-write sections
// never interleave, for every scheduler.
func TestMutualExclusion(t *testing.T) {
	for name, factory := range factories {
		t.Run(name, func(t *testing.T) {
			c := New(1, factory)
			counter := 0
			c.Run(func() {
				const n = 8
				for i := 0; i < n; i++ {
					logical := wire.LogicalID(fmt.Sprintf("cl%d", i))
					c.Submit(logical, false, func(ic *Ictx) {
						if err := ic.Lock("m"); err != nil {
							t.Errorf("Lock: %v", err)
							return
						}
						c.RT.Lock()
						v := counter
						c.RT.Unlock()
						ic.Compute(time.Millisecond) // widen the race window
						c.RT.Lock()
						counter = v + 1
						c.RT.Unlock()
						if err := ic.Unlock("m"); err != nil {
							t.Errorf("Unlock: %v", err)
						}
					})
				}
				if _, err := c.Await(n, timeout); err != nil {
					t.Fatal(err)
				}
				if counter != n {
					t.Errorf("counter = %d, want %d (critical sections interleaved)", counter, n)
				}
			})
		})
	}
}

// TestCrossReplicaDeterminism runs a mixed workload on 3 replicas and
// requires every mutex's critical-section entry order to be identical
// everywhere. (The interleaving *across* different mutexes is deliberately
// unconstrained: threads holding different locks run concurrently in the
// MA model — state consistency only needs each lock's grant sequence to
// agree, which is exactly LSA's guarantee.)
func TestCrossReplicaDeterminism(t *testing.T) {
	for name, factory := range factories {
		if name == "ADETS-PDS-RR" {
			// Round-robin assignment is deterministic only for identical
			// computation times (the paper's own precondition, Section
			// 4.2); it gets a dedicated uniform-compute test below.
			continue
		}
		t.Run(name, func(t *testing.T) {
			c := New(3, factory)
			c.Run(func() {
				const n = 10
				mutexes := []adets.MutexID{"m0", "m1", "m2"}
				for i := 0; i < n; i++ {
					logical := wire.LogicalID(fmt.Sprintf("cl%d", i))
					m := mutexes[i%len(mutexes)]
					pre := time.Duration(i%4) * time.Millisecond
					c.Submit(logical, false, func(ic *Ictx) {
						ic.Compute(pre)
						if err := ic.Lock(m); err != nil {
							return
						}
						ic.Trace("%s:%s", m, logical)
						ic.Compute(time.Millisecond)
						_ = ic.Unlock(m)
					})
				}
				if _, err := c.Await(n, timeout); err != nil {
					t.Fatal(err)
				}
			})
			traces := c.Traces()
			ref := perMutexOrders(traces[0])
			for i := 1; i < 3; i++ {
				got := perMutexOrders(traces[i])
				if !reflect.DeepEqual(ref, got) {
					t.Errorf("replica %d per-mutex grant order differs:\n  r0: %v\n  r%d: %v", i, ref, i, got)
				}
			}
			if len(traces[0]) != 10 {
				t.Errorf("trace has %d entries, want 10", len(traces[0]))
			}
		})
	}
}

// perMutexOrders groups "mutex:logical" trace entries into the per-mutex
// grant sequences.
func perMutexOrders(trace []string) map[string][]string {
	out := make(map[string][]string)
	for _, e := range trace {
		for j := 0; j < len(e); j++ {
			if e[j] == ':' {
				out[e[:j]] = append(out[e[:j]], e[j+1:])
				break
			}
		}
	}
	return out
}

// TestReentrantLocks verifies nested acquisition of the same mutex for
// schedulers advertising reentrant locks.
func TestReentrantLocks(t *testing.T) {
	for name, factory := range factories {
		if !caps(name).ReentrantLocks {
			continue
		}
		t.Run(name, func(t *testing.T) {
			c := New(1, factory)
			c.Run(func() {
				ok := false
				c.Submit("cl0", false, func(ic *Ictx) {
					if err := ic.Lock("m"); err != nil {
						t.Errorf("outer Lock: %v", err)
						return
					}
					if err := ic.Lock("m"); err != nil {
						t.Errorf("reentrant Lock: %v", err)
						return
					}
					if err := ic.Unlock("m"); err != nil {
						t.Errorf("inner Unlock: %v", err)
					}
					if err := ic.Unlock("m"); err != nil {
						t.Errorf("outer Unlock: %v", err)
					}
					if err := ic.Unlock("m"); err != adets.ErrNotHeld {
						t.Errorf("over-unlock = %v, want ErrNotHeld", err)
					}
					ok = true
				})
				if _, err := c.Await(1, timeout); err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Error("script did not complete")
				}
			})
		})
	}
}

// TestConditionVariables runs a one-shot producer/consumer handoff for
// schedulers with condition variables.
func TestConditionVariables(t *testing.T) {
	for name, factory := range factories {
		if !caps(name).ConditionVars {
			continue
		}
		t.Run(name, func(t *testing.T) {
			c := New(3, factory)
			var item [3]int
			c.Run(func() {
				c.Submit("consumer", false, func(ic *Ictx) {
					_ = ic.Lock("buf")
					for {
						c.RT.Lock()
						have := item[ic.Replica()] != 0
						c.RT.Unlock()
						if have {
							break
						}
						if _, err := ic.Wait("buf", "", 0); err != nil {
							t.Errorf("Wait: %v", err)
							break
						}
					}
					ic.Trace("consumed %d", item[ic.Replica()])
					_ = ic.Unlock("buf")
				})
				c.Submit("producer", false, func(ic *Ictx) {
					ic.Compute(5 * time.Millisecond)
					_ = ic.Lock("buf")
					c.RT.Lock()
					item[ic.Replica()] = 42
					c.RT.Unlock()
					_ = ic.Notify("buf", "")
					_ = ic.Unlock("buf")
				})
				if _, err := c.Await(2, timeout); err != nil {
					t.Fatal(err)
				}
			})
			traces := c.Traces()
			for i := 0; i < 3; i++ {
				if !reflect.DeepEqual(traces[i], []string{"consumed 42"}) {
					t.Errorf("replica %d trace = %v", i, traces[i])
				}
			}
		})
	}
}

// TestWaitTimeout verifies deterministic time-bounded waits: with no
// producer the wait times out; with a timely notify it does not — and all
// replicas agree.
func TestWaitTimeout(t *testing.T) {
	for name, factory := range factories {
		if !caps(name).TimedWait {
			continue
		}
		t.Run(name, func(t *testing.T) {
			c := New(3, factory)
			c.Run(func() {
				c.Submit("waiter", false, func(ic *Ictx) {
					_ = ic.Lock("m")
					timedOut, err := ic.Wait("m", "", 10*time.Millisecond)
					if err != nil {
						t.Errorf("Wait: %v", err)
					}
					ic.Trace("timedOut=%v", timedOut)
					_ = ic.Unlock("m")
				})
				if _, err := c.Await(1, timeout); err != nil {
					t.Fatal(err)
				}
			})
			for i, tr := range c.Traces() {
				if !reflect.DeepEqual(tr, []string{"timedOut=true"}) {
					t.Errorf("replica %d: %v, want timeout", i, tr)
				}
			}
		})
	}
}

func TestWaitNotifiedBeforeTimeout(t *testing.T) {
	for name, factory := range factories {
		if !caps(name).TimedWait {
			continue
		}
		t.Run(name, func(t *testing.T) {
			c := New(3, factory)
			c.Run(func() {
				c.Submit("waiter", false, func(ic *Ictx) {
					_ = ic.Lock("m")
					timedOut, err := ic.Wait("m", "", 500*time.Millisecond)
					if err != nil {
						t.Errorf("Wait: %v", err)
					}
					ic.Trace("timedOut=%v", timedOut)
					_ = ic.Unlock("m")
				})
				c.Submit("notifier", false, func(ic *Ictx) {
					ic.Compute(5 * time.Millisecond)
					_ = ic.Lock("m")
					_ = ic.Notify("m", "")
					_ = ic.Unlock("m")
				})
				if _, err := c.Await(2, timeout); err != nil {
					t.Fatal(err)
				}
			})
			for i, tr := range c.Traces() {
				if !reflect.DeepEqual(tr, []string{"timedOut=false"}) {
					t.Errorf("replica %d: %v, want notified (no timeout)", i, tr)
				}
			}
		})
	}
}

// TestNestedInvocationsDontBlockOthers checks that while one request is in
// a nested invocation, other requests complete — for schedulers supporting
// nested invocations (for SEQ the opposite is asserted in seq-specific
// tests).
func TestNestedInvocationsDontBlockOthers(t *testing.T) {
	for name, factory := range factories {
		cp := caps(name)
		if !cp.NestedInvocations {
			continue
		}
		if name == "ADETS-PDS" || name == "ADETS-PDS-2" || name == "ADETS-PDS-RR" {
			// Under nested strategy A the round blocks; covered separately.
			continue
		}
		if name == "ADETS-CC" {
			// Without declared classes every request is global and occupies
			// all lanes, nested or not; cross-class progress during a nested
			// invocation is asserted in the cc package tests.
			continue
		}
		t.Run(name, func(t *testing.T) {
			c := New(1, factory)
			c.Run(func() {
				c.Submit("nester", false, func(ic *Ictx) {
					ic.Nested(50 * time.Millisecond)
					ic.Trace("nested done at %v", c.RT.Now())
				})
				c.Submit("quick", false, func(ic *Ictx) {
					ic.Compute(time.Millisecond)
					ic.Trace("quick done at %v", c.RT.Now())
				})
				order, err := c.Await(2, timeout)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(order[0], []string{"quick", "nester"}) {
					t.Errorf("completion order = %v, want quick before nester", order[0])
				}
			})
		})
	}
}

// TestManyRequestsDeterministicAcrossRuns replays an identical workload
// twice and requires identical per-mutex grant orders. Run-to-run (as
// opposed to cross-replica) reproducibility is only a property of the
// strategies whose every grant decision is anchored to the totally ordered
// stream: SEQ, SL and the SAT/MAT family. LSA's leader grants
// first-come-first-served (real arrival order — different runs may
// differ, and followers replay whatever the leader chose), and PDS round
// composition depends on request arrival relative to round boundaries; for
// those, cross-replica agreement (tested above) is the guarantee.
func TestManyRequestsDeterministicAcrossRuns(t *testing.T) {
	for name, factory := range factories {
		switch name {
		case "ADETS-LSA", "ADETS-PDS", "ADETS-PDS-2", "ADETS-PDS-RR":
			continue
		}
		t.Run(name, func(t *testing.T) {
			run := func() map[string][]string {
				c := New(1, factory)
				c.Run(func() {
					for i := 0; i < 12; i++ {
						logical := wire.LogicalID(fmt.Sprintf("cl%d", i))
						m := adets.MutexID(fmt.Sprintf("m%d", i%3))
						c.Submit(logical, false, func(ic *Ictx) {
							ic.Compute(time.Duration(i%3) * time.Millisecond)
							_ = ic.Lock(m)
							ic.Trace("%s:%s", m, logical)
							_ = ic.Unlock(m)
						})
					}
					if _, err := c.Await(12, timeout); err != nil {
						t.Fatal(err)
					}
				})
				return perMutexOrders(c.Traces()[0])
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("two runs diverged:\n  %v\n  %v", a, b)
			}
		})
	}
}

// TestRoundRobinPDSDeterministicUnderUniformLoad checks the round-robin
// assignment under its stated precondition: identical computation times.
func TestRoundRobinPDSDeterministicUnderUniformLoad(t *testing.T) {
	factory := factories["ADETS-PDS-RR"]
	c := New(3, factory)
	c.Run(func() {
		const n = 12
		for i := 0; i < n; i++ {
			logical := wire.LogicalID(fmt.Sprintf("cl%d", i))
			m := adets.MutexID(fmt.Sprintf("m%d", i%3))
			c.Submit(logical, false, func(ic *Ictx) {
				ic.Compute(2 * time.Millisecond)
				if err := ic.Lock(m); err != nil {
					return
				}
				ic.Trace("%s:%s", m, logical)
				ic.Compute(time.Millisecond)
				_ = ic.Unlock(m)
			})
		}
		if _, err := c.Await(n, timeout); err != nil {
			t.Fatal(err)
		}
	})
	traces := c.Traces()
	ref := perMutexOrders(traces[0])
	for i := 1; i < 3; i++ {
		if got := perMutexOrders(traces[i]); !reflect.DeepEqual(ref, got) {
			t.Errorf("replica %d per-mutex order differs:\n  r0: %v\n  r%d: %v", i, ref, i, got)
		}
	}
}
