package schedtest

import (
	"fmt"
	"testing"
	"time"
)

// The timeout-vs-notify race (paper Section 4.1, Fig. 1): a thread waits
// with a time bound while another notifies at *about* the same moment. The
// outcome — woken by the notification or by the timeout — may legitimately
// differ from run to run, but it must be identical on every replica, and
// the condition-variable state must stay consistent (a timed-out waiter
// consumes no notification; the notification then wakes nobody or the next
// waiter).
func TestTimeoutNotifyRaceAgreesAcrossReplicas(t *testing.T) {
	for name, factory := range factories {
		if !caps(name).TimedWait {
			continue
		}
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			// Sweep the notify instant across the timeout instant.
			for _, notifyAt := range []time.Duration{
				6 * time.Millisecond,  // clearly before the 10ms timeout
				10 * time.Millisecond, // exactly at the timeout
				14 * time.Millisecond, // clearly after
			} {
				notifyAt := notifyAt
				c := New(3, factory)
				c.Run(func() {
					c.Submit("waiter", false, func(ic *Ictx) {
						_ = ic.Lock("m")
						timedOut, err := ic.Wait("m", "", 10*time.Millisecond)
						if err != nil {
							t.Errorf("Wait: %v", err)
						}
						ic.Trace("waiter timedOut=%v", timedOut)
						_ = ic.Unlock("m")
					})
					c.Submit("notifier", false, func(ic *Ictx) {
						ic.Compute(notifyAt)
						_ = ic.Lock("m")
						_ = ic.Notify("m", "")
						_ = ic.Unlock("m")
					})
					if _, err := c.Await(2, timeout); err != nil {
						t.Fatal(err)
					}
				})
				traces := c.Traces()
				for i := 1; i < 3; i++ {
					if len(traces[i]) != 1 || len(traces[0]) != 1 || traces[i][0] != traces[0][0] {
						t.Errorf("notify@%v: replicas disagree: r0=%v r%d=%v",
							notifyAt, traces[0], i, traces[i])
					}
				}
				// Only the early-notify case has a forced outcome. With a
				// late notify the *timeout request* must itself be
				// scheduled (it locks the mutex like any request, paper
				// Section 4.2) — and the notifier, computing as the active
				// /token-holding thread, may legitimately delay it past its
				// own notify. Replicas agreeing on whichever way it falls
				// is the property under test.
				if notifyAt == 6*time.Millisecond && traces[0][0] != "waiter timedOut=false" {
					t.Errorf("notify@6ms: %v, want notified", traces[0])
				}
			}
		})
	}
}

// TestTimedOutWaiterDoesNotConsumeNotification: after a timeout, a later
// notify must wake the *other* waiter, identically everywhere.
func TestTimedOutWaiterDoesNotConsumeNotification(t *testing.T) {
	for name, factory := range factories {
		if !caps(name).TimedWait {
			continue
		}
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			c := New(3, factory)
			c.Run(func() {
				c.Submit("bounded", false, func(ic *Ictx) {
					_ = ic.Lock("m")
					timedOut, err := ic.Wait("m", "", 5*time.Millisecond)
					if err != nil {
						t.Errorf("bounded Wait: %v", err)
					}
					ic.Trace("bounded timedOut=%v", timedOut)
					_ = ic.Unlock("m")
				})
				c.Submit("unbounded", false, func(ic *Ictx) {
					ic.Compute(time.Millisecond) // enqueue after "bounded"
					_ = ic.Lock("m")
					timedOut, err := ic.Wait("m", "", 0)
					if err != nil {
						t.Errorf("unbounded Wait: %v", err)
					}
					ic.Trace("unbounded timedOut=%v", timedOut)
					_ = ic.Unlock("m")
				})
				// Submit the notifier only after the bounded wait's timeout
				// request has long been scheduled (an in-handler Compute
				// would hold the activation/token and starve the timeout
				// handler — see TestTimeoutNotifyRaceAgreesAcrossReplicas).
				c.RT.Sleep(30 * time.Millisecond)
				c.Submit("notifier", false, func(ic *Ictx) {
					_ = ic.Lock("m")
					_ = ic.Notify("m", "")
					_ = ic.Unlock("m")
				})
				if _, err := c.Await(3, timeout); err != nil {
					t.Fatal(err)
				}
			})
			for i, tr := range c.Traces() {
				if len(tr) != 2 {
					t.Fatalf("replica %d trace = %v", i, tr)
				}
				has := map[string]bool{}
				for _, e := range tr {
					has[e] = true
				}
				if !has["bounded timedOut=true"] || !has["unbounded timedOut=false"] {
					t.Errorf("replica %d: %v, want bounded to time out and unbounded to be notified", i, tr)
				}
			}
		})
	}
}

// TestRepeatedTimedWaitsSequence: successive bounded waits by one logical
// thread must each resolve independently (WaitSeq bookkeeping).
func TestRepeatedTimedWaitsSequence(t *testing.T) {
	for name, factory := range factories {
		if !caps(name).TimedWait {
			continue
		}
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			c := New(3, factory)
			c.Run(func() {
				c.Submit("repeater", false, func(ic *Ictx) {
					_ = ic.Lock("m")
					for i := 0; i < 3; i++ {
						timedOut, err := ic.Wait("m", "", 5*time.Millisecond)
						if err != nil {
							t.Errorf("wait %d: %v", i, err)
						}
						ic.Trace("wait%d timedOut=%v", i, timedOut)
					}
					_ = ic.Unlock("m")
				})
				if _, err := c.Await(1, timeout); err != nil {
					t.Fatal(err)
				}
			})
			want := []string{"wait0 timedOut=true", "wait1 timedOut=true", "wait2 timedOut=true"}
			for i, tr := range c.Traces() {
				if fmt.Sprint(tr) != fmt.Sprint(want) {
					t.Errorf("replica %d: %v, want %v", i, tr, want)
				}
			}
		})
	}
}
