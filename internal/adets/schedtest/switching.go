package schedtest

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/wire"
)

// Switcher is implemented by meta-schedulers that swap the active strategy
// at epoch boundaries (ADETS-ADAPT). The switch-crossing invariants use it
// to assert that the workload actually crossed at least one switch — an
// invariant that vacuously passes because no switch happened tests nothing.
type Switcher interface {
	Switches() uint64
	Epoch() uint64
}

// SwitchInvariants returns the switch-crossing conformance suite: the core
// determinism properties (grant order, reentrancy, FIFO, timeout expiry)
// restated across an epoch boundary at which the scheduler under test is
// expected to swap strategies. Each invariant submits enough stream
// positions to cross boundaries mid-workload and then requires both the
// usual cross-replica agreement and a non-zero switch count.
//
// The factory must produce schedulers implementing Switcher and configured
// to switch within the first few epochs (a plan alternating two
// full-capability kinds at a small epoch length is the canonical setup).
func SwitchInvariants() []Invariant {
	return []Invariant{
		{
			Name: "grant-order-across-switch",
			Desc: "mutex grant order stays identical on every replica when the request sequence spans a strategy switch",
			Run:  invSwitchGrantOrder,
		},
		{
			Name: "reentrancy-across-switch",
			Desc: "reentrant hold depth accounting survives a strategy switch between requests of the same logical thread",
			Run:  invSwitchReentrancy,
		},
		{
			Name: "fifo-across-switch",
			Desc: "a contended mutex is granted in FIFO order even when the successor strategy dispatches the tail",
			Run:  invSwitchFIFO,
		},
		{
			Name: "timeout-determinism-across-switch",
			Desc: "timed waits armed after a switch expire deterministically (broadcast ids must not collide with the previous generation's)",
			Run:  invSwitchTimeout,
		},
	}
}

// RunSwitchConformance runs the base conformance suite plus the
// switch-crossing invariants against the scheduler built by factory.
func RunSwitchConformance(t *testing.T, factory func(i int) adets.Scheduler) {
	RunConformance(t, factory)
	for _, inv := range SwitchInvariants() {
		inv := inv
		t.Run(inv.Name, func(t *testing.T) { inv.Run(t, factory) })
	}
}

// requireSwitched asserts every replica performed at least one switch and
// that all replicas agree on the switch count and epoch.
func requireSwitched(t *testing.T, c *Cluster) {
	t.Helper()
	var switches, epoch uint64
	for i, s := range c.Scheds {
		sw, ok := s.(Switcher)
		if !ok {
			t.Fatalf("replica %d: scheduler %T does not implement Switcher", i, s)
		}
		if i == 0 {
			switches, epoch = sw.Switches(), sw.Epoch()
			if switches == 0 {
				t.Errorf("replica 0 performed no switches: the invariant never crossed one (epoch %d)", epoch)
			}
			continue
		}
		if sw.Switches() != switches || sw.Epoch() != epoch {
			t.Errorf("replica %d at switches=%d epoch=%d, replica 0 at switches=%d epoch=%d",
				i, sw.Switches(), sw.Epoch(), switches, epoch)
		}
	}
}

// invSwitchGrantOrder: two batches of requests contend on one mutex with an
// epoch boundary (and a planned switch) between the batches; the combined
// critical-section entry order must be identical on every replica.
func invSwitchGrantOrder(t *testing.T, factory func(i int) adets.Scheduler) {
	c := New(3, factory)
	c.Run(func() {
		const n = 12
		for i := 0; i < n; i++ {
			logical := wire.LogicalID(fmt.Sprintf("g%d", i))
			c.Submit(logical, false, func(ic *Ictx) {
				if err := ic.Lock(m0); err != nil {
					t.Errorf("Lock: %v", err)
					return
				}
				ic.Trace("enter %s", logical)
				ic.Compute(time.Millisecond)
				_ = ic.Unlock(m0)
			})
		}
		if _, err := c.Await(n, conformanceTimeout); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		traces := c.Traces()
		for i := 1; i < len(traces); i++ {
			if !reflect.DeepEqual(traces[0], traces[i]) {
				t.Errorf("replica %d grant order %v differs from replica 0 %v", i, traces[i], traces[0])
			}
		}
		if len(traces[0]) != n {
			t.Errorf("replica 0 recorded %d grants, want %d", len(traces[0]), n)
		}
		requireSwitched(t, c)
	})
}

// invSwitchReentrancy: the same logical thread re-enters the same mutex to
// depth 3 before and after a switch; the depth sequence must be identical on
// both sides — the reentrancy layer sits above the scheduler and its
// accounting must be oblivious to the swap.
func invSwitchReentrancy(t *testing.T, factory func(i int) adets.Scheduler) {
	c := New(3, factory)
	c.Run(func() {
		depths := func(ic *Ictx) {
			for i := 0; i < 3; i++ {
				if err := ic.Lock(m0); err != nil {
					t.Errorf("Lock %d: %v", i, err)
					return
				}
				ic.Trace("depth %d", ic.Depth(m0))
			}
			for i := 0; i < 3; i++ {
				if err := ic.Unlock(m0); err != nil {
					t.Errorf("Unlock %d: %v", i, err)
					return
				}
			}
		}
		c.Submit("re", false, depths)
		if _, err := c.Await(1, conformanceTimeout); err != nil {
			t.Errorf("await pre-switch: %v", err)
			return
		}
		// Push the stream across epoch boundaries so the plan switches.
		const filler = 8
		for i := 0; i < filler; i++ {
			c.Submit(wire.LogicalID(fmt.Sprintf("f%d", i)), false, func(ic *Ictx) {
				ic.Compute(time.Millisecond)
			})
		}
		if _, err := c.Await(filler, conformanceTimeout); err != nil {
			t.Errorf("await filler: %v", err)
			return
		}
		c.Submit("re", false, depths)
		if _, err := c.Await(1, conformanceTimeout); err != nil {
			t.Errorf("await post-switch: %v", err)
			return
		}
		want := []string{"depth 1", "depth 2", "depth 3", "depth 1", "depth 2", "depth 3"}
		for i, tr := range c.Traces() {
			if !reflect.DeepEqual(tr, want) {
				t.Errorf("replica %d: depth sequence %v, want %v", i, tr, want)
			}
		}
		requireSwitched(t, c)
	})
}

// invSwitchFIFO: A holds the mutex while B and C queue behind it; the
// boundary submissions that trigger the switch arrive while the queue
// drains, so the successor strategy dispatches the tail of the workload —
// and the grant order must still be exactly submission order everywhere.
func invSwitchFIFO(t *testing.T, factory func(i int) adets.Scheduler) {
	c := New(3, factory)
	c.Run(func() {
		sub := func(name string, pre, hold time.Duration) {
			c.Submit(wire.LogicalID(name), false, func(ic *Ictx) {
				ic.Compute(pre)
				if err := ic.Lock(m0); err != nil {
					t.Errorf("%s: Lock: %v", name, err)
					return
				}
				ic.Trace("enter %s", name)
				ic.Compute(hold)
				_ = ic.Unlock(m0)
			})
		}
		sub("A", 0, 10*time.Millisecond)
		sub("B", 1*time.Millisecond, time.Millisecond)
		sub("C", 2*time.Millisecond, time.Millisecond)
		// The boundary crossers: submitted while A/B/C drain, granted under
		// the successor.
		sub("D", 3*time.Millisecond, time.Millisecond)
		sub("E", 4*time.Millisecond, time.Millisecond)
		sub("F", 5*time.Millisecond, time.Millisecond)
		if _, err := c.Await(6, conformanceTimeout); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		want := []string{"enter A", "enter B", "enter C", "enter D", "enter E", "enter F"}
		for i, tr := range c.Traces() {
			if !reflect.DeepEqual(tr, want) {
				t.Errorf("replica %d: grant order %v, want FIFO %v", i, tr, want)
			}
		}
		requireSwitched(t, c)
	})
}

// invSwitchTimeout: a timed wait armed before any switch expires; the stream
// then crosses switches (including back to the original kind, which restarts
// its private timeout sequence numbers); a second timed wait armed under the
// revisited kind must also expire. If the meta-scheduler fails to namespace
// inner broadcast ids per generation, the second expiry message is dropped
// as a duplicate of the first and the waiter hangs.
func invSwitchTimeout(t *testing.T, factory func(i int) adets.Scheduler) {
	c := New(3, factory)
	c.Run(func() {
		waitOnce := func(name string) {
			c.Submit(wire.LogicalID(name), false, func(ic *Ictx) {
				if err := ic.Lock(m0); err != nil {
					t.Errorf("%s: Lock: %v", name, err)
					return
				}
				timedOut, err := ic.Wait(m0, "", 5*time.Millisecond)
				if err != nil {
					t.Errorf("%s: Wait: %v", name, err)
				}
				ic.Trace("%s timedOut=%v", name, timedOut)
				_ = ic.Unlock(m0)
			})
			if _, err := c.Await(1, conformanceTimeout); err != nil {
				t.Errorf("%s: await: %v", name, err)
			}
		}
		waitOnce("w1")
		// Cross enough boundaries to switch away and back again.
		const filler = 12
		for i := 0; i < filler; i++ {
			c.Submit(wire.LogicalID(fmt.Sprintf("f%d", i)), false, func(ic *Ictx) {
				ic.Compute(time.Millisecond)
			})
		}
		if _, err := c.Await(filler, conformanceTimeout); err != nil {
			t.Errorf("await filler: %v", err)
			return
		}
		waitOnce("w2")
		want := []string{"w1 timedOut=true", "w2 timedOut=true"}
		for i, tr := range c.Traces() {
			if !reflect.DeepEqual(tr, want) {
				t.Errorf("replica %d: %v, want %v", i, tr, want)
			}
		}
		requireSwitched(t, c)
	})
}
