package schedtest

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/wire"
)

// Invariant is one conformance property every ADETS scheduler must
// satisfy. Requires gates capability-dependent invariants (a scheduler
// that does not advertise timed waits is not required to expire them
// deterministically); nil means the invariant is unconditional.
type Invariant struct {
	Name     string
	Desc     string
	Requires func(adets.Capabilities) bool
	Run      func(t *testing.T, factory func(i int) adets.Scheduler)
}

// Conformance returns the table-driven conformance suite. Every scheduler
// kind — present and future — is expected to pass all applicable
// invariants; RunConformance wires the table into `go test` for a given
// factory.
//
// The invariants are the cross-replica determinism contract of the paper
// distilled to five properties: identical grant order across replicas,
// reentrancy depth preserved, FIFO grant within a mutex, deterministic
// timeout expiry, and nested-invocation (plus callback) completion.
func Conformance() []Invariant {
	return []Invariant{
		{
			Name: "grant-order-across-replicas",
			Desc: "every replica grants each mutex's critical sections in the same order",
			Run:  invGrantOrder,
		},
		{
			Name: "reentrancy-depth",
			Desc: "re-entrant acquisition preserves and restores the hold depth",
			Run:  invReentrancyDepth,
		},
		{
			Name: "fifo-grant-within-mutex",
			Desc: "a contended mutex is granted in deterministic FIFO request order",
			Run:  invFIFOGrant,
		},
		{
			Name:     "deterministic-timeout-expiry",
			Desc:     "timed waits expire (or are beaten by a notification) identically on every replica",
			Requires: func(c adets.Capabilities) bool { return c.TimedWait },
			Run:      invTimeoutExpiry,
		},
		{
			Name: "nested-completion",
			Desc: "a request performing a nested invocation resumes and completes",
			Run:  invNestedCompletion,
		},
		{
			Name:     "callback-completion",
			Desc:     "a callback into the object completes while its originator is blocked nested",
			Requires: func(c adets.Capabilities) bool { return c.Callbacks },
			Run:      invCallbackCompletion,
		},
	}
}

// RunConformance runs every applicable invariant of the suite as a subtest
// against the scheduler built by factory.
func RunConformance(t *testing.T, factory func(i int) adets.Scheduler) {
	capabilities := factory(0).Capabilities()
	for _, inv := range Conformance() {
		inv := inv
		t.Run(inv.Name, func(t *testing.T) {
			if inv.Requires != nil && !inv.Requires(capabilities) {
				t.Skipf("not applicable: %s", inv.Desc)
			}
			inv.Run(t, factory)
		})
	}
}

const conformanceTimeout = 30 * time.Second

// invGrantOrder: n requests contend on one mutex; the critical-section
// entry order (whatever it is) must be identical on all replicas.
func invGrantOrder(t *testing.T, factory func(i int) adets.Scheduler) {
	c := New(3, factory)
	c.Run(func() {
		const n = 6
		for i := 0; i < n; i++ {
			logical := wire.LogicalID(fmt.Sprintf("g%d", i))
			c.Submit(logical, false, func(ic *Ictx) {
				if err := ic.Lock("m"); err != nil {
					t.Errorf("Lock: %v", err)
					return
				}
				ic.Trace("enter %s", logical)
				ic.Compute(time.Millisecond)
				_ = ic.Unlock(m0)
			})
		}
		if _, err := c.Await(n, conformanceTimeout); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		traces := c.Traces()
		for i := 1; i < len(traces); i++ {
			if !reflect.DeepEqual(traces[0], traces[i]) {
				t.Errorf("replica %d grant order %v differs from replica 0 %v", i, traces[i], traces[0])
			}
		}
		if len(traces[0]) != n {
			t.Errorf("replica 0 recorded %d grants, want %d", len(traces[0]), n)
		}
	})
}

const m0 = adets.MutexID("m")

// invReentrancyDepth: the framework's reentrancy layer must count nested
// acquisitions per logical thread identically under every scheduler.
func invReentrancyDepth(t *testing.T, factory func(i int) adets.Scheduler) {
	c := New(3, factory)
	c.Run(func() {
		c.Submit("re", false, func(ic *Ictx) {
			for i := 0; i < 3; i++ {
				if err := ic.Lock(m0); err != nil {
					t.Errorf("Lock %d: %v", i, err)
					return
				}
				ic.Trace("depth %d", ic.Depth(m0))
			}
			for i := 0; i < 3; i++ {
				if err := ic.Unlock(m0); err != nil {
					t.Errorf("Unlock %d: %v", i, err)
					return
				}
				ic.Trace("depth %d", ic.Depth(m0))
			}
		})
		if _, err := c.Await(1, conformanceTimeout); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		want := []string{"depth 1", "depth 2", "depth 3", "depth 2", "depth 1", "depth 0"}
		for i, tr := range c.Traces() {
			if !reflect.DeepEqual(tr, want) {
				t.Errorf("replica %d: depth sequence %v, want %v", i, tr, want)
			}
		}
	})
}

// invFIFOGrant: A holds the mutex while B then C (staggered, in that
// real-time order, matching their submission order) block on it; the grant
// order must be exactly A, B, C on every replica.
func invFIFOGrant(t *testing.T, factory func(i int) adets.Scheduler) {
	c := New(3, factory)
	c.Run(func() {
		sub := func(name string, pre, hold time.Duration) {
			c.Submit(wire.LogicalID(name), false, func(ic *Ictx) {
				ic.Compute(pre)
				if err := ic.Lock(m0); err != nil {
					t.Errorf("%s: Lock: %v", name, err)
					return
				}
				ic.Trace("enter %s", name)
				ic.Compute(hold)
				_ = ic.Unlock(m0)
			})
		}
		sub("A", 0, 10*time.Millisecond)
		sub("B", 1*time.Millisecond, time.Millisecond)
		sub("C", 2*time.Millisecond, time.Millisecond)
		if _, err := c.Await(3, conformanceTimeout); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		want := []string{"enter A", "enter B", "enter C"}
		for i, tr := range c.Traces() {
			if !reflect.DeepEqual(tr, want) {
				t.Errorf("replica %d: grant order %v, want FIFO %v", i, tr, want)
			}
		}
	})
}

// invTimeoutExpiry: an un-notified timed wait expires as a timeout; a
// notified one resumes without the timeout flag — identically everywhere.
func invTimeoutExpiry(t *testing.T, factory func(i int) adets.Scheduler) {
	c := New(3, factory)
	c.Run(func() {
		// Phase 1: nobody notifies; the deterministic timeout must fire.
		c.Submit("waiter", false, func(ic *Ictx) {
			if err := ic.Lock(m0); err != nil {
				t.Errorf("Lock: %v", err)
				return
			}
			timedOut, err := ic.Wait(m0, "", 5*time.Millisecond)
			if err != nil {
				t.Errorf("Wait: %v", err)
			}
			ic.Trace("woke timedOut=%v", timedOut)
			_ = ic.Unlock(m0)
		})
		if _, err := c.Await(1, conformanceTimeout); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		// Phase 2: a notification beats a generous timeout.
		c.Submit("waiter2", false, func(ic *Ictx) {
			if err := ic.Lock(m0); err != nil {
				t.Errorf("Lock: %v", err)
				return
			}
			timedOut, err := ic.Wait(m0, "", 500*time.Millisecond)
			if err != nil {
				t.Errorf("Wait: %v", err)
			}
			ic.Trace("woke timedOut=%v", timedOut)
			_ = ic.Unlock(m0)
		})
		c.Submit("notifier", false, func(ic *Ictx) {
			ic.Compute(5 * time.Millisecond)
			if err := ic.Lock(m0); err != nil {
				t.Errorf("Lock: %v", err)
				return
			}
			ic.Trace("notify")
			_ = ic.Notify(m0, "")
			_ = ic.Unlock(m0)
		})
		// Await counts completions beyond the one phase 1 consumed.
		if _, err := c.Await(2, conformanceTimeout); err != nil {
			t.Errorf("phase 2: %v", err)
			return
		}
		want := []string{"woke timedOut=true", "notify", "woke timedOut=false"}
		for i, tr := range c.Traces() {
			if !reflect.DeepEqual(tr, want) {
				t.Errorf("replica %d: %v, want %v", i, tr, want)
			}
		}
	})
}

// invNestedCompletion: every scheduler must resume a thread blocked in a
// nested invocation when the totally-ordered reply arrives, and later
// requests must still complete.
func invNestedCompletion(t *testing.T, factory func(i int) adets.Scheduler) {
	c := New(3, factory)
	c.Run(func() {
		c.Submit("nester", false, func(ic *Ictx) {
			ic.Trace("pre")
			ic.Nested(5 * time.Millisecond)
			ic.Trace("post")
		})
		c.Submit("after", false, func(ic *Ictx) {
			ic.Compute(time.Millisecond)
			ic.Trace("after")
		})
		if _, err := c.Await(2, conformanceTimeout); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		for i, tr := range c.Traces() {
			if len(tr) != 3 || tr[0] != "pre" {
				t.Errorf("replica %d: trace %v, want pre/post/after in some order starting with pre", i, tr)
				continue
			}
			seen := map[string]bool{}
			for _, e := range tr {
				seen[e] = true
			}
			if !seen["post"] || !seen["after"] {
				t.Errorf("replica %d: trace %v missing completions", i, tr)
			}
		}
	})
}

// invCallbackCompletion: while the originator is blocked in a nested
// invocation, a callback of the same logical thread must run to completion
// before the originator resumes — the re-entrant external interaction of
// the paper's Section 3.1.
func invCallbackCompletion(t *testing.T, factory func(i int) adets.Scheduler) {
	c := New(3, factory)
	c.Run(func() {
		logical := wire.LogicalID("chain")
		c.Submit(logical, false, func(ic *Ictx) {
			ic.Trace("pre")
			ic.Nested(20 * time.Millisecond)
			ic.Trace("post")
		})
		c.RT.Sleep(5 * time.Millisecond)
		c.Submit(logical, true, func(ic *Ictx) {
			ic.Trace("cb")
		})
		if _, err := c.Await(2, conformanceTimeout); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		want := []string{"pre", "cb", "post"}
		for i, tr := range c.Traces() {
			if !reflect.DeepEqual(tr, want) {
				t.Errorf("replica %d: trace %v, want %v", i, tr, want)
			}
		}
	})
}
