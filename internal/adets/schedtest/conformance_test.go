package schedtest

import (
	"sort"
	"testing"
)

// TestConformanceAllSchedulers runs the cross-scheduler conformance suite
// (see conformance.go) against every registered scheduler kind. A new
// scheduler only has to be added to the factories map to be covered.
func TestConformanceAllSchedulers(t *testing.T) {
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			RunConformance(t, factories[name])
		})
	}
}
