package adets

import (
	"fmt"
	"time"

	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// Thread is a physical request-handler thread under scheduler control.
//
// Numeric IDs are assigned in creation order. Because schedulers create
// threads only at totally-ordered points (request delivery, round starts),
// the numbering is identical on every replica and may be used for
// deterministic choices (PDS grants mutexes in increasing thread-ID order).
// Threads whose creation is not delivery-ordered (LSA's timeout threads)
// are identified by their deterministic LogicalID instead.
type Thread struct {
	// ID is the replica-deterministic creation index (see type comment).
	ID uint64
	// Logical is the logical thread this physical thread executes for.
	Logical wire.LogicalID
	// Name is a diagnostic label.
	Name string

	parker *vtime.Parker

	// Scheduler-private per-thread state; owned by the algorithm.
	Sched any
}

// Park suspends the thread; the runtime lock must be held.
func (t *Thread) Park(rt vtime.Runtime) { rt.Park(t.parker) }

// ParkTimeout suspends the thread for at most d; reports timeout. The
// runtime lock must be held.
func (t *Thread) ParkTimeout(rt vtime.Runtime, d time.Duration) bool {
	return rt.ParkTimeout(t.parker, d)
}

// Unpark resumes the thread; the runtime lock must be held.
func (t *Thread) Unpark(rt vtime.Runtime) { rt.Unpark(t.parker) }

func (t *Thread) String() string {
	return fmt.Sprintf("thread{%d %s %s}", t.ID, t.Name, t.Logical)
}

// Registry assigns deterministic thread IDs and spawns the backing
// goroutines. One per scheduler instance; all methods require the runtime
// lock unless stated otherwise.
type Registry struct {
	rt   vtime.Runtime
	next uint64
}

// NewRegistry returns a Registry on rt.
func NewRegistry(rt vtime.Runtime) *Registry {
	return &Registry{rt: rt}
}

// NewThread allocates a thread record (no goroutine yet). Runtime lock
// required: the ID must be taken at a deterministic point.
func (r *Registry) NewThread(name string, logical wire.LogicalID) *Thread {
	t := &Thread{
		ID:      r.next,
		Logical: logical,
		Name:    name,
		parker:  vtime.NewParker(name),
	}
	r.next++
	return t
}

// Spawn starts the thread body on a tracked goroutine. Runtime lock
// required (schedulers spawn threads at deterministic points while holding
// it).
func (r *Registry) Spawn(t *Thread, body func()) {
	r.rt.GoLocked(t.Name, body)
}

// FIFO is a deterministic queue of threads — the building block for lock
// wait queues, condition-variable queues, and ready queues. The zero value
// is an empty queue.
type FIFO struct {
	items []*Thread
}

// Push appends t.
func (q *FIFO) Push(t *Thread) { q.items = append(q.items, t) }

// PushFront prepends t (used to prioritize callbacks, which unblock the
// logical thread the object is already waiting for).
func (q *FIFO) PushFront(t *Thread) {
	q.items = append([]*Thread{t}, q.items...)
}

// Pop removes and returns the head, or nil if empty.
func (q *FIFO) Pop() *Thread {
	if len(q.items) == 0 {
		return nil
	}
	t := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return t
}

// Peek returns the head without removing it, or nil.
func (q *FIFO) Peek() *Thread {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// Remove deletes t from the queue, reporting whether it was present.
func (q *FIFO) Remove(t *Thread) bool {
	for i, x := range q.items {
		if x == t {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// Len returns the queue length.
func (q *FIFO) Len() int { return len(q.items) }

// Contains reports whether t is queued.
func (q *FIFO) Contains(t *Thread) bool {
	for _, x := range q.items {
		if x == t {
			return true
		}
	}
	return false
}

// Drain empties the queue, returning the former contents in order.
func (q *FIFO) Drain() []*Thread {
	out := q.items
	q.items = nil
	return out
}

// Snapshot returns a copy of the queue contents in order.
func (q *FIFO) Snapshot() []*Thread {
	return append([]*Thread(nil), q.items...)
}
