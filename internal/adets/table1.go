package adets

import (
	"fmt"
	"strings"
)

// Table1Row is one line of the paper's Table 1 ("Overview of multithreading
// algorithms and their properties").
type Table1Row struct {
	Name           string
	Coordination   string
	DeadlockFree   string
	Deployment     string
	Multithreading string
}

// PaperTable1 is Table 1 exactly as printed in the paper, used as the
// reference the implemented capability metadata is checked against.
// ("Deadl.-Free" and "Interaction" are one column pair in the paper; the
// Interaction column equals the DeadlockFree column for every surveyed
// system except SEQ, whose interaction support is "NO" — we follow the
// combined reading used by the paper's text.)
var PaperTable1 = []Table1Row{
	{Name: "SEQ", Coordination: "implicit", DeadlockFree: "NO", Deployment: "-", Multithreading: "S"},
	{Name: "Eternal", Coordination: "implicit", DeadlockFree: "CB", Deployment: "interception", Multithreading: "SL"},
	{Name: "SAT", Coordination: "Locks", DeadlockFree: "NI+CB", Deployment: "interception", Multithreading: "SA"},
	{Name: "ADETS-SAT", Coordination: "Java", DeadlockFree: "NI+CB", Deployment: "transformation", Multithreading: "SA+L"},
	{Name: "ADETS-MAT", Coordination: "Java", DeadlockFree: "NI+CB", Deployment: "transformation", Multithreading: "MA"},
	{Name: "LSA", Coordination: "Locks/Monitor", DeadlockFree: "NI+CB", Deployment: "manual", Multithreading: "MA"},
	{Name: "PDS", Coordination: "Locks", DeadlockFree: "NO", Deployment: "manual", Multithreading: "MA (restr.)"},
}

// ExtensionRows lists schedulers this reproduction implements beyond the
// paper's survey; they are rendered after the paper's rows. ADETS-CC is the
// conflict-class parallel-dispatch strategy (Early Scheduling in Parallel
// SMR, Alchieri et al.): requests with disjoint declared conflict classes
// execute concurrently on hash-mapped worker lanes, everything else
// synchronizes with deterministic barriers.
var ExtensionRows = []Table1Row{
	{Name: "ADETS-CC", Coordination: "Locks", DeadlockFree: "NI+CB", Deployment: "manual", Multithreading: "MA (classes)"},
}

// Row converts a scheduler's capability metadata into a Table 1 row.
func Row(name string, c Capabilities) Table1Row {
	return Table1Row{
		Name:           name,
		Coordination:   c.Coordination,
		DeadlockFree:   c.DeadlockFree,
		Deployment:     c.Deployment,
		Multithreading: c.Multithreading,
	}
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %-12s %-15s %s\n",
		"", "Coordination", "Deadl.-Free", "Deployment", "Multithreading")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-14s %-12s %-15s %s\n",
			r.Name, r.Coordination, r.DeadlockFree, r.Deployment, r.Multithreading)
	}
	return b.String()
}
