package adets

import (
	"github.com/replobj/replobj/internal/wire"
)

// Binary wire-codec fast path for the deterministic-timeout request
// (tag range 30–39 belongs to the scheduler packages; lsa uses 31).

const tagTimeoutMsg = 30

func init() {
	wire.RegisterBinaryPayload(tagTimeoutMsg, TimeoutMsg{},
		func(b *wire.Buffer, v any) error {
			t := v.(TimeoutMsg)
			b.String(string(t.Target))
			b.String(string(t.Mutex))
			b.String(string(t.Cond))
			b.Uvarint(t.WaitSeq)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			var t TimeoutMsg
			s, err := r.String()
			if err != nil {
				return nil, err
			}
			t.Target = wire.LogicalID(s)
			if s, err = r.String(); err != nil {
				return nil, err
			}
			t.Mutex = MutexID(s)
			if s, err = r.String(); err != nil {
				return nil, err
			}
			t.Cond = CondID(s)
			if t.WaitSeq, err = r.Uvarint(); err != nil {
				return nil, err
			}
			return t, nil
		})
}
