// Package mat implements ADETS-MAT (paper Sections 3.2 and 5): true
// multithreading with a deterministic primary-token discipline.
//
// Every request gets its own physical thread that starts running
// immediately and concurrently with all others (the MA model). Determinism
// comes from a single rule: only the *primary* thread — the head of a
// succession queue ordered by totally-ordered events — may acquire mutex
// locks. The primary keeps its primacy while it computes; it passes it on
// at scheduling points only: blocking on a held lock, waiting on a
// condition variable, issuing a nested invocation, terminating, or an
// explicit Yield (the paper's suggested remedy for the serializing
// state-update-then-compute pattern, Section 5.3).
//
// Consequences measured in the paper and reproduced by the benchmarks:
// compute-then-lock patterns parallelize almost perfectly (Fig. 4b), while
// lock-compute-unlock and lock-unlock-compute serialize exactly like SAT
// (Figs. 4c, 4d), because the primary holds the token through its trailing
// computation.
package mat

import (
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/wire"
)

type threadState int

const (
	stRunning threadState = iota
	stAwaitToken
	stBlockedLock
	stWaiting
	stNested
	stDone
)

type matThread struct {
	state        threadState
	wantToken    bool
	waiting      bool
	waitSeq      uint64
	timedOut     bool
	pendingReply bool
	noMoreLocks  bool
}

type lockState struct {
	owner   wire.LogicalID
	waiters adets.FIFO
}

type condKey struct {
	m adets.MutexID
	c adets.CondID
}

// Option configures the scheduler.
type Option func(*Scheduler)

// WithYield controls whether Yield is honoured (default true). Disabling
// it reproduces the unmodified algorithm for the ablation benchmarks.
func WithYield(enabled bool) Option {
	return func(s *Scheduler) { s.yieldEnabled = enabled }
}

// Scheduler implements adets.Scheduler with the MA primary-token model.
type Scheduler struct {
	env          adets.Env
	reg          *adets.Registry
	yieldEnabled bool

	succession adets.FIFO // head holds the primary token
	locks      map[adets.MutexID]*lockState
	conds      map[condKey]*adets.FIFO
	waiters    map[wire.LogicalID]*adets.Thread
	threads    map[*adets.Thread]bool
	tos        *adets.Timeouts
	stopped    bool
	quiesce    func(drained bool)
}

var (
	_ adets.Scheduler     = (*Scheduler)(nil)
	_ adets.LockPredictor = (*Scheduler)(nil)
)

// New returns an ADETS-MAT scheduler.
func New(opts ...Option) *Scheduler {
	s := &Scheduler{
		yieldEnabled: true,
		locks:        make(map[adets.MutexID]*lockState),
		conds:        make(map[condKey]*adets.FIFO),
		waiters:      make(map[wire.LogicalID]*adets.Thread),
		threads:      make(map[*adets.Thread]bool),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name implements adets.Scheduler.
func (s *Scheduler) Name() string { return "ADETS-MAT" }

// Capabilities implements adets.Scheduler.
func (s *Scheduler) Capabilities() adets.Capabilities {
	return adets.Capabilities{
		Coordination:      "Java",
		DeadlockFree:      "NI+CB",
		Deployment:        "transformation",
		Multithreading:    "MA",
		ReentrantLocks:    true,
		ConditionVars:     true,
		TimedWait:         true,
		NestedInvocations: true,
		Callbacks:         true,
	}
}

// Start implements adets.Scheduler.
func (s *Scheduler) Start(env adets.Env) {
	s.env = env
	s.reg = adets.NewRegistry(env.RT)
	s.tos = adets.NewTimeouts(env)
}

// Stop implements adets.Scheduler.
func (s *Scheduler) Stop() {
	rt := s.env.RT
	rt.Lock()
	s.stopped = true
	s.tos.StopAll()
	for t := range s.threads {
		t.Unpark(rt)
	}
	rt.Unlock()
}

func st(t *adets.Thread) *matThread { return t.Sched.(*matThread) }

// Submit implements adets.Scheduler: the thread starts immediately as a
// secondary; its succession position is fixed by delivery order (callbacks
// jump to the head so the blocked chain can progress).
func (s *Scheduler) Submit(req adets.Request) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return
	}
	s.env.Obs.Submitted()
	t := s.reg.NewThread("mat/"+string(req.Logical), req.Logical)
	t.Sched = &matThread{state: stRunning}
	s.threads[t] = true
	if req.Callback {
		s.succession.PushFront(t)
	} else {
		s.succession.Push(t)
	}
	s.reg.Spawn(t, func() {
		if !s.isStopped() {
			req.Exec(t)
		}
		s.threadDone(t)
	})
}

func (s *Scheduler) isStopped() bool {
	s.env.RT.Lock()
	defer s.env.RT.Unlock()
	return s.stopped
}

func (s *Scheduler) threadDone(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	st(t).state = stDone
	delete(s.threads, t)
	s.leaveSuccessionLocked(t)
	s.checkQuiesceLocked()
	rt.Unlock()
}

// leaveSuccessionLocked removes t from the token order; if it was the
// primary, the token moves to the next thread.
func (s *Scheduler) leaveSuccessionLocked(t *adets.Thread) {
	wasHead := s.succession.Peek() == t
	s.succession.Remove(t)
	if wasHead {
		s.advanceTokenLocked()
	}
}

// advanceTokenLocked wakes the new primary if it is parked waiting for the
// token.
func (s *Scheduler) advanceTokenLocked() {
	h := s.succession.Peek()
	if h == nil {
		return
	}
	hst := st(h)
	if hst.wantToken {
		hst.wantToken = false // cleared by the waker to avoid double unpark
		h.Unpark(s.env.RT)
	}
}

func (s *Scheduler) lock(m adets.MutexID) *lockState {
	ls, ok := s.locks[m]
	if !ok {
		ls = &lockState{}
		s.locks[m] = ls
	}
	return ls
}

func (s *Scheduler) cond(m adets.MutexID, c adets.CondID) *adets.FIFO {
	k := condKey{m, c}
	q, ok := s.conds[k]
	if !ok {
		q = &adets.FIFO{}
		s.conds[k] = q
	}
	return q
}

// NoMoreLocks implements adets.LockPredictor: the thread leaves the token
// order for good — successors acquire locks without waiting for its
// remaining (lock-free) computation. This subsumes Yield: a yielded thread
// re-enters at the tail, a declared one steps aside entirely.
func (s *Scheduler) NoMoreLocks(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return
	}
	mst := st(t)
	mst.noMoreLocks = true
	s.leaveSuccessionLocked(t)
}

// Lock implements adets.Scheduler: only the primary may acquire. An
// uncontended acquisition keeps the token; blocking on a held mutex passes
// it on and the thread resumes as a secondary when granted.
func (s *Scheduler) Lock(t *adets.Thread, m adets.MutexID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	mst := st(t)
	if mst.noMoreLocks {
		return adets.ErrLockAfterDeclaration
	}
	for {
		if s.stopped {
			return adets.ErrStopped
		}
		if s.succession.Peek() == t {
			ls := s.lock(m)
			if ls.owner == "" {
				ls.owner = t.Logical // acquire; remain primary
				s.env.Obs.Grant(m, string(t.Logical))
				return nil
			}
			// Held by a blocked thread: enqueue, pass the token on. The
			// per-lock grant order equals token-acquisition order, so it is
			// deterministic.
			var t0 time.Duration
			if s.env.Obs != nil {
				s.env.Obs.Blocked()
				t0 = rt.NowLocked()
			}
			ls.waiters.Push(t)
			mst.state = stBlockedLock
			s.leaveSuccessionLocked(t)
			s.checkQuiesceLocked()
			t.Park(rt)
			if s.stopped {
				s.env.Obs.Unblocked()
				return adets.ErrStopped
			}
			if s.env.Obs != nil {
				s.env.Obs.GrantedAfterBlock(m, string(t.Logical), rt.NowLocked()-t0)
			}
			return nil // grant path set ownership and re-queued us
		}
		// Not primary: park until the token reaches us.
		mst.state = stAwaitToken
		mst.wantToken = true
		t.Park(rt)
		mst.state = stRunning
	}
}

// Unlock implements adets.Scheduler: not a scheduling point; the granted
// successor resumes immediately as a secondary, re-entering the token order
// at the tail.
func (s *Scheduler) Unlock(t *adets.Thread, m adets.MutexID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner != t.Logical {
		return adets.ErrNotHeld
	}
	s.env.Obs.Unlock(m, string(t.Logical))
	s.releaseLocked(m, ls)
	return nil
}

func (s *Scheduler) releaseLocked(m adets.MutexID, ls *lockState) {
	w := ls.waiters.Pop()
	if w == nil {
		ls.owner = ""
		return
	}
	ls.owner = w.Logical
	s.env.Obs.Grant(m, string(w.Logical))
	st(w).state = stRunning
	s.succession.Push(w)
	w.Unpark(s.env.RT)
}

// Wait implements adets.Scheduler: a scheduling point; the monitor is
// released and the thread leaves the token order until notified (or timed
// out deterministically) and re-granted the mutex.
func (s *Scheduler) Wait(t *adets.Thread, m adets.MutexID, c adets.CondID, d time.Duration) (bool, error) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return false, adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner != t.Logical {
		return false, adets.ErrNotHeld
	}
	mst := st(t)
	mst.waiting = true
	mst.timedOut = false
	if d > 0 {
		mst.waitSeq = s.tos.Arm(t, m, c, d)
	}
	s.waiters[t.Logical] = t
	s.cond(m, c).Push(t)
	mst.state = stWaiting
	s.env.Obs.WaitStart(m, c, string(t.Logical))
	s.releaseLocked(m, ls)
	s.leaveSuccessionLocked(t)
	s.checkQuiesceLocked()
	t.Park(rt)
	mst.waiting = false
	delete(s.waiters, t.Logical)
	s.tos.Disarm(t)
	if s.stopped {
		return false, adets.ErrStopped
	}
	return mst.timedOut, nil
}

// Notify implements adets.Scheduler.
func (s *Scheduler) Notify(t *adets.Thread, m adets.MutexID, c adets.CondID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner != t.Logical {
		return adets.ErrNotHeld
	}
	if w := s.cond(m, c).Pop(); w != nil {
		s.wakeWaiterLocked(w, m, c, false)
	}
	return nil
}

// NotifyAll implements adets.Scheduler.
func (s *Scheduler) NotifyAll(t *adets.Thread, m adets.MutexID, c adets.CondID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner != t.Logical {
		return adets.ErrNotHeld
	}
	for _, w := range s.cond(m, c).Drain() {
		s.wakeWaiterLocked(w, m, c, false)
	}
	return nil
}

// wakeWaiterLocked queues a woken condition waiter on the mutex entry
// queue; the caller holds the mutex, so the waiter resumes at a later
// deterministic unlock.
func (s *Scheduler) wakeWaiterLocked(w *adets.Thread, m adets.MutexID, c adets.CondID, timedOut bool) {
	wst := st(w)
	wst.timedOut = timedOut
	s.env.Obs.Wake(m, c, string(w.Logical), timedOut)
	ls := s.lock(m)
	if ls.owner == "" {
		ls.owner = w.Logical
		s.env.Obs.Grant(m, string(w.Logical))
		wst.state = stRunning
		s.succession.Push(w)
		w.Unpark(s.env.RT)
		return
	}
	ls.waiters.Push(w)
	wst.state = stBlockedLock
}

// Yield implements adets.Scheduler: an explicit scheduling point — the
// primary moves to the tail of the token order so successors can acquire
// locks while this thread keeps computing as a secondary (Section 5.3).
func (s *Scheduler) Yield(t *adets.Thread) {
	if !s.yieldEnabled {
		return
	}
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped || s.succession.Peek() != t {
		return
	}
	s.succession.Remove(t)
	s.succession.Push(t)
	s.advanceTokenLocked()
}

// BeginNested implements adets.Scheduler: a scheduling point.
func (s *Scheduler) BeginNested(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	mst := st(t)
	if mst.pendingReply {
		mst.pendingReply = false
		rt.Unlock()
		return
	}
	mst.state = stNested
	s.leaveSuccessionLocked(t)
	s.checkQuiesceLocked()
	t.Park(rt)
	rt.Unlock()
}

// EndNested implements adets.Scheduler: the reply is a totally-ordered
// event, so re-entering the token order here is deterministic.
func (s *Scheduler) EndNested(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	mst := st(t)
	if mst.state != stNested {
		mst.pendingReply = true
		return
	}
	mst.state = stRunning
	s.succession.Push(t)
	t.Unpark(rt)
}

// ViewChanged implements adets.Scheduler (MAT needs no membership info —
// one of its advantages over LSA, Section 5.6).
func (s *Scheduler) ViewChanged(gcs.View) {}

// Quiesce implements adets.Scheduler. MAT is stable when every live thread
// is blocked on a lock, a condition variable, or a nested reply: stRunning
// threads are still executing, and an stAwaitToken thread always resumes
// once the token reaches it (token movement needs no future delivery), so
// either rules out stability.
func (s *Scheduler) Quiesce(report func(drained bool)) {
	rt := s.env.RT
	rt.Lock()
	s.quiesce = report
	s.checkQuiesceLocked()
	rt.Unlock()
}

func (s *Scheduler) checkQuiesceLocked() {
	if s.quiesce == nil {
		return
	}
	for t := range s.threads {
		switch st(t).state {
		case stBlockedLock, stWaiting, stNested:
		default:
			return
		}
	}
	report := s.quiesce
	s.quiesce = nil
	report(len(s.threads) == 0)
}

// HandleOrdered implements adets.Scheduler: deterministic wait timeouts as
// ordered requests executed by a scheduler-managed thread.
func (s *Scheduler) HandleOrdered(id string, payload any) bool {
	msg, ok := payload.(adets.TimeoutMsg)
	if !ok {
		return false
	}
	s.Submit(adets.Request{
		Logical: wire.LogicalID(id),
		Exec:    func(t *adets.Thread) { s.timeoutExec(t, msg) },
	})
	return true
}

func (s *Scheduler) timeoutExec(t *adets.Thread, msg adets.TimeoutMsg) {
	if err := s.Lock(t, msg.Mutex); err != nil {
		return
	}
	rt := s.env.RT
	rt.Lock()
	w := s.waiters[msg.Target]
	if w != nil {
		wst := st(w)
		if wst.waiting && wst.waitSeq == msg.WaitSeq {
			s.env.Obs.TimeoutFired()
			s.cond(msg.Mutex, msg.Cond).Remove(w)
			s.wakeWaiterLocked(w, msg.Mutex, msg.Cond, true)
		}
	}
	rt.Unlock()
	_ = s.Unlock(t, msg.Mutex)
}

// HandleDirect implements adets.Scheduler.
func (s *Scheduler) HandleDirect(wire.NodeID, any) bool { return false }
