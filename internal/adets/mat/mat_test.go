package mat

import (
	"testing"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// White-box tests of the primary-token mechanics.

func newBare() (*Scheduler, *vtime.VirtualRuntime) {
	rt := vtime.Virtual()
	s := New()
	s.Start(adets.Env{
		RT:               rt,
		Self:             "g/0",
		Peers:            []wire.NodeID{"g/0"},
		SendPeer:         func(wire.NodeID, any) {},
		BroadcastOrdered: func(string, any) {},
	})
	return s, rt
}

func TestSecondariesRunConcurrently(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	vtime.Run(rt, "main", func() {
		done := vtime.NewMailbox[time.Duration](rt, "done")
		for i := 0; i < 4; i++ {
			s.Submit(adets.Request{
				Logical: wire.LogicalID(rune('a' + i)),
				Exec: func(*adets.Thread) {
					rt.Sleep(50 * time.Millisecond) // lock-free computation
					done.Put(rt.Now())
				},
			})
		}
		for i := 0; i < 4; i++ {
			if at, _ := done.Get(); at != 50*time.Millisecond {
				t.Errorf("secondary finished at %v, want 50ms (concurrent)", at)
			}
		}
		s.Stop()
	})
}

func TestTokenPassesInDeliveryOrder(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	var acquired []string
	vtime.Run(rt, "main", func() {
		done := vtime.NewMailbox[struct{}](rt, "done")
		for i := 0; i < 3; i++ {
			logical := wire.LogicalID(rune('a' + i))
			// Distinct mutexes: the serialization below comes from the
			// token alone, never from lock contention.
			m := adets.MutexID(rune('x' + i))
			s.Submit(adets.Request{
				Logical: logical,
				Exec: func(th *adets.Thread) {
					if err := s.Lock(th, m); err != nil {
						t.Errorf("Lock: %v", err)
					}
					rt.Lock()
					acquired = append(acquired, string(logical))
					rt.Unlock()
					rt.Sleep(10 * time.Millisecond) // token held through compute
					_ = s.Unlock(th, m)
					done.Put(struct{}{})
				},
			})
		}
		for i := 0; i < 3; i++ {
			done.Get()
		}
		if rt.Now() != 30*time.Millisecond {
			t.Errorf("finished at %v, want 30ms: token must serialize lock holders' computations", rt.Now())
		}
		s.Stop()
	})
	for i, want := range []string{"a", "b", "c"} {
		if acquired[i] != want {
			t.Errorf("token order = %v, want delivery order", acquired)
			break
		}
	}
}

func TestYieldDisabledOption(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	s := New(WithYield(false))
	s.Start(adets.Env{RT: rt, Self: "g/0", Peers: []wire.NodeID{"g/0"},
		SendPeer: func(wire.NodeID, any) {}, BroadcastOrdered: func(string, any) {}})
	vtime.Run(rt, "main", func() {
		done := vtime.NewMailbox[struct{}](rt, "done")
		// First thread yields (ignored) then computes; the second's lock
		// must still wait for it.
		s.Submit(adets.Request{Logical: "a", Exec: func(th *adets.Thread) {
			_ = s.Lock(th, "m")
			_ = s.Unlock(th, "m")
			s.Yield(th) // disabled: token retained
			rt.Sleep(20 * time.Millisecond)
			done.Put(struct{}{})
		}})
		s.Submit(adets.Request{Logical: "b", Exec: func(th *adets.Thread) {
			if err := s.Lock(th, "n"); err != nil {
				t.Errorf("Lock: %v", err)
			}
			now := rt.Now()
			rt.Lock()
			if now < 20*time.Millisecond {
				t.Errorf("b locked at %v; disabled yield must keep the token on a", now)
			}
			rt.Unlock()
			_ = s.Unlock(th, "n")
			done.Put(struct{}{})
		}})
		done.Get()
		done.Get()
		s.Stop()
	})
}

func TestStopUnblocksTokenWaiters(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	vtime.Run(rt, "main", func() {
		done := vtime.NewMailbox[error](rt, "done")
		gate := vtime.NewMailbox[struct{}](rt, "gate")
		s.Submit(adets.Request{Logical: "holder", Exec: func(th *adets.Thread) {
			_ = s.Lock(th, "m")
			gate.Get() // hold the token + lock until stopped
			done.Put(nil)
		}})
		s.Submit(adets.Request{Logical: "waiter", Exec: func(th *adets.Thread) {
			done.Put(s.Lock(th, "m")) // blocks awaiting token, then stop
		}})
		rt.Sleep(time.Millisecond)
		s.Stop()
		gate.Put(struct{}{})
		stopped := 0
		for i := 0; i < 2; i++ {
			if err, _ := done.Get(); err == adets.ErrStopped {
				stopped++
			}
		}
		if stopped != 1 {
			t.Errorf("%d ErrStopped results, want exactly the blocked waiter", stopped)
		}
	})
}
