package adets

import (
	"fmt"
	"time"

	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// TimeoutMsg is the deterministic wait-timeout request used by ADETS-SAT,
// ADETS-MAT and ADETS-PDS (paper Section 4.2): when a time-bounded wait
// expires locally, the replica broadcasts this message through the group's
// total order; the *delivery* of the message — identically positioned on
// every replica — performs the wakeup. Every replica's local timer produces
// the same message id, so the group orders it exactly once.
type TimeoutMsg struct {
	// Target identifies the waiting logical thread.
	Target wire.LogicalID
	// Mutex and Cond identify the condition variable waited on.
	Mutex MutexID
	Cond  CondID
	// WaitSeq distinguishes successive waits by the same logical thread.
	WaitSeq uint64
}

func init() {
	wire.RegisterPayload(TimeoutMsg{})
}

// TimeoutID returns the globally unique, replica-deterministic broadcast id
// for a timeout message.
func TimeoutID(m TimeoutMsg) string {
	return fmt.Sprintf("adets-timeout/%s/%d", m.Target, m.WaitSeq)
}

// Timeouts arms local timers for time-bounded waits and broadcasts the
// deterministic timeout request on expiry. One per scheduler instance.
// All methods require the runtime lock to be held.
type Timeouts struct {
	env Env
	// waitSeq counts waits *per logical thread*: the n-th wait of a logical
	// thread happens at the same program point on every replica, so the
	// (logical, seq) pair — and with it the broadcast id — is
	// replica-deterministic. A scheduler-global counter would not be.
	waitSeq map[wire.LogicalID]uint64
	pending map[wire.LogicalID]*vtime.Timer
}

// NewTimeouts returns a timeout helper bound to env.
func NewTimeouts(env Env) *Timeouts {
	return &Timeouts{
		env:     env,
		waitSeq: make(map[wire.LogicalID]uint64),
		pending: make(map[wire.LogicalID]*vtime.Timer),
	}
}

// Arm registers a time-bounded wait for t and schedules the local timer.
// It returns the WaitSeq identifying this wait. Runtime lock required.
func (to *Timeouts) Arm(t *Thread, m MutexID, c CondID, d time.Duration) uint64 {
	to.waitSeq[t.Logical]++
	seq := to.waitSeq[t.Logical]
	msg := TimeoutMsg{Target: t.Logical, Mutex: m, Cond: c, WaitSeq: seq}
	logical := t.Logical
	timer := to.env.RT.AfterLocked(d, "adets-timeout/"+string(t.Logical), func() {
		// Runs without the lock, on its own tracked goroutine. The
		// broadcast id is identical on all replicas; the group orders it
		// once and delivers it everywhere at the same stream position.
		to.env.BroadcastOrdered(TimeoutID(msg), msg)
	})
	to.pending[logical] = timer
	return seq
}

// Current returns the WaitSeq of t's most recently armed wait (0 if none).
// Runtime lock required.
func (to *Timeouts) Current(t *Thread) uint64 {
	return to.waitSeq[t.Logical]
}

// Disarm cancels the local timer for t's pending wait (the wait was
// notified before expiring). A late broadcast that already left is
// harmless: the scheduler checks WaitSeq before acting. Runtime lock
// required.
func (to *Timeouts) Disarm(t *Thread) {
	if timer, ok := to.pending[t.Logical]; ok {
		delete(to.pending, t.Logical)
		to.env.RT.StopTimerLocked(timer)
	}
}

// StopAll cancels all pending timers (scheduler shutdown). Runtime lock
// required.
func (to *Timeouts) StopAll() {
	for k, timer := range to.pending {
		to.env.RT.StopTimerLocked(timer)
		delete(to.pending, k)
	}
}
