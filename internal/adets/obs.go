package adets

import (
	"strconv"
	"strings"
	"time"

	"github.com/replobj/replobj/internal/obs"
	"github.com/replobj/replobj/internal/obs/tracing"
)

// SchedObs bundles the metrics and the deterministic schedule trace of one
// scheduler instance. Every method is safe on a nil receiver, so schedulers
// instrument unconditionally and a disabled deployment (nil Env.Obs) pays
// one branch per hook and zero allocations.
//
// Trace streams follow the determinism contract documented in package obs:
// per-mutex events (grant/unlock/wait/wake) go to "mutex/<m>", PDS round
// starts to "rounds", strategy-global decisions (sequential execution
// order, view changes) to "sched". Block events are deliberately metrics-
// only: whether a thread finds a mutex held depends on real-time arrival
// order (e.g. against an ADETS-MAT secondary's unlock), while the resulting
// grant sequence is still deterministic.
type SchedObs struct {
	tr     *obs.Trace
	reg    *obs.Registry
	labels string

	grants   *obs.Counter
	blocks   *obs.Counter
	wakes    *obs.Counter
	timeouts *obs.Counter
	requests *obs.Counter
	rounds   *obs.Counter
	views    *obs.Counter
	epochs   *obs.Counter
	switches *obs.Counter

	waitQueue *obs.Gauge

	grantLat   *obs.Histogram
	reentDepth *obs.Histogram

	// Per-lane instruments (conflict-aware schedulers; see Lanes).
	laneAssigns []*obs.Counter
	laneDepth   []*obs.Gauge
	fences      *obs.Counter

	// Span instrumentation (see WithSpans). The collector resolves logical
	// thread ids to trace contexts, so grant hooks can attach spans without
	// threading a context through the scheduler.
	spans   *tracing.Collector
	spanNow func() time.Duration
	node    string
}

// NewSchedObs builds the observability hooks for one scheduler. reg and tr
// may each be nil; with both nil the result is nil (fully disabled).
// strategy and node become metric labels.
func NewSchedObs(reg *obs.Registry, tr *obs.Trace, strategy, node string) *SchedObs {
	if reg == nil && tr == nil {
		return nil
	}
	l := `{node="` + node + `",strategy="` + strategy + `"}`
	return &SchedObs{
		tr:         tr,
		reg:        reg,
		labels:     l,
		grants:     reg.Counter("replobj_sched_grants_total" + l),
		blocks:     reg.Counter("replobj_sched_blocks_total" + l),
		wakes:      reg.Counter("replobj_sched_wakes_total" + l),
		timeouts:   reg.Counter("replobj_sched_timeout_fires_total" + l),
		requests:   reg.Counter("replobj_sched_requests_total" + l),
		rounds:     reg.Counter("replobj_sched_rounds_total" + l),
		views:      reg.Counter("replobj_sched_view_changes_total" + l),
		epochs:     reg.Counter("replobj_sched_adaptive_epochs_total" + l),
		switches:   reg.Counter("replobj_sched_adaptive_switches_total" + l),
		waitQueue:  reg.Gauge("replobj_sched_wait_queue_depth" + l),
		grantLat:   reg.Histogram("replobj_sched_grant_wait_seconds"+l, obs.LatencyBuckets()),
		reentDepth: reg.Histogram("replobj_sched_reentrancy_depth"+l, obs.DepthBuckets()),
	}
}

// Trace returns the underlying schedule trace (nil when disabled).
func (s *SchedObs) Trace() *obs.Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// Submitted counts a totally-ordered request handed to the scheduler.
func (s *SchedObs) Submitted() {
	if s != nil {
		s.requests.Inc()
	}
}

// Exec records an execution-order decision of a sequential strategy.
func (s *SchedObs) Exec(logical string) {
	if s != nil {
		s.tr.Record("sched", obs.KindExec, logical, "")
	}
}

// Grant records mutex m being granted to a logical thread.
func (s *SchedObs) Grant(m MutexID, logical string) {
	if s != nil {
		s.grants.Inc()
		s.tr.Record("mutex/"+string(m), obs.KindGrant, logical, "")
	}
}

// Blocked counts a thread enqueueing on a held mutex (metrics only — block
// order is not replica-deterministic).
func (s *SchedObs) Blocked() {
	if s != nil {
		s.blocks.Inc()
		s.waitQueue.Inc()
	}
}

// WithSpans attaches a span collector so grant waits become "sched.grant"
// spans (and histogram exemplars) of the owning trace. now must be the
// runtime's NowLocked — all grant hooks run under the runtime lock. col may
// be nil (no-op); a nil receiver is promoted so spans work even when
// metrics and schedule tracing are both disabled.
func (s *SchedObs) WithSpans(col *tracing.Collector, now func() time.Duration, node string) *SchedObs {
	if col == nil {
		return s
	}
	if s == nil {
		s = &SchedObs{}
	}
	s.spans, s.spanNow, s.node = col, now, node
	return s
}

// GrantedAfterBlock records how long the logical thread blocked on mutex m
// waited for its grant.
func (s *SchedObs) GrantedAfterBlock(m MutexID, logical string, wait time.Duration) {
	if s == nil {
		return
	}
	s.waitQueue.Dec()
	s.grantLat.ObserveDuration(wait)
	if s.spans != nil {
		if ctx := s.spans.Lookup(logical); ctx.Valid() {
			start := s.spanNow() - wait
			s.spans.Record(tracing.Span{
				Trace:  ctx.TraceID,
				ID:     tracing.NewSpanID(ctx.TraceID, "sched.grant", s.node, start),
				Parent: ctx.Span,
				Name:   "sched.grant",
				Node:   s.node,
				Detail: string(m),
				Start:  start,
				Dur:    wait,
			})
			s.grantLat.Exemplar(wait.Seconds(), ctx.TraceID)
		}
	}
}

// Unblocked removes a thread from the wait-queue gauge without a grant
// (scheduler stopped while the thread was parked).
func (s *SchedObs) Unblocked() {
	if s != nil {
		s.waitQueue.Dec()
	}
}

// Unlock records mutex m being released by a logical thread.
func (s *SchedObs) Unlock(m MutexID, logical string) {
	if s != nil {
		s.tr.Record("mutex/"+string(m), obs.KindUnlock, logical, "")
	}
}

// WaitStart records the owner releasing m to wait on condition c.
func (s *SchedObs) WaitStart(m MutexID, c CondID, logical string) {
	if s != nil {
		s.tr.Record("mutex/"+string(m), obs.KindWait, logical, string(c))
	}
}

// Wake records a waiter of (m, c) being woken by a notification or a
// deterministic timeout.
func (s *SchedObs) Wake(m MutexID, c CondID, logical string, timedOut bool) {
	if s != nil {
		s.wakes.Inc()
		detail := string(c)
		if timedOut {
			detail += "/timeout"
		}
		s.tr.Record("mutex/"+string(m), obs.KindWake, logical, detail)
	}
}

// TimeoutFired counts a deterministic wait-timeout firing.
func (s *SchedObs) TimeoutFired() {
	if s != nil {
		s.timeouts.Inc()
	}
}

// Round records a scheduling round starting (ADETS-PDS).
func (s *SchedObs) Round(n uint64) {
	if s != nil {
		s.rounds.Inc()
		s.tr.Record("rounds", obs.KindRound, "", strconv.FormatUint(n, 10))
	}
}

// AdaptiveEpoch records an adaptive-scheduler epoch boundary: the window was
// sampled at a quiesced cut and the decision was verdict ("keep", "switch"
// or "skip" when the cut was not drained), moving the active strategy from
// from to to (equal unless switching). The boundary position, the sampled
// window and the decision are all pure functions of the ordered stream, so
// the event is traced ("sched" stream) and digest-compared across replicas.
func (s *SchedObs) AdaptiveEpoch(epoch uint64, from, to, verdict string) {
	if s == nil {
		return
	}
	s.epochs.Inc()
	if verdict == "switch" {
		s.switches.Inc()
	}
	s.tr.Record("sched", obs.KindSwitch, from+">"+to,
		strconv.FormatUint(epoch, 10)+"/"+verdict)
}

// ViewChange records a membership change reaching the scheduler.
func (s *SchedObs) ViewChange(epoch uint64) {
	if s != nil {
		s.views.Inc()
		s.tr.Record("sched", obs.KindView, "", strconv.FormatUint(epoch, 10))
	}
}

// ReentrantDepth samples a re-entry depth > 1 observed by the reentrancy
// layer.
func (s *SchedObs) ReentrantDepth(d int) {
	if s != nil {
		s.reentDepth.Observe(float64(d))
	}
}

// Lanes preallocates per-lane instruments for a conflict-aware scheduler
// (ADETS-CC). Called once from Scheduler.Start with the lane count.
func (s *SchedObs) Lanes(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.laneAssigns = make([]*obs.Counter, n)
	s.laneDepth = make([]*obs.Gauge, n)
	base := strings.TrimSuffix(s.labels, "}")
	for i := 0; i < n; i++ {
		l := base + `,lane="` + strconv.Itoa(i) + `"}`
		s.laneAssigns[i] = s.reg.Counter("replobj_sched_lane_assigns_total" + l)
		s.laneDepth[i] = s.reg.Gauge("replobj_sched_lane_queue_depth" + l)
	}
	s.fences = s.reg.Counter("replobj_sched_lane_fences_total" + s.labels)
}

// LaneAssign records a request being appended to a worker lane. The lane
// assignment happens at the totally-ordered submit point and is a pure
// function of the ordered stream, so it is traced (stream "lane/<i>");
// execution start order across lanes is real-time dependent and is
// deliberately metrics-only (see LaneStart).
func (s *SchedObs) LaneAssign(lane int, logical, pos string) {
	if s == nil {
		return
	}
	s.tr.Record("lane/"+strconv.Itoa(lane), obs.KindExec, logical, pos)
	if lane < len(s.laneAssigns) {
		s.laneAssigns[lane].Inc()
		s.laneDepth[lane].Inc()
	}
}

// LaneStart records a lane-queued request beginning execution
// (metrics only — the start order across lanes is not deterministic).
func (s *SchedObs) LaneStart(lane int) {
	if s != nil && lane < len(s.laneDepth) {
		s.laneDepth[lane].Dec()
	}
}

// FenceInserted counts a deterministic all-lane barrier (view change or
// explicit drain). Fences do not appear in the lane-depth gauges.
func (s *SchedObs) FenceInserted() {
	if s != nil {
		s.fences.Inc()
	}
}
