// Package seq implements strictly sequential request execution — the SEQ
// baseline of the paper (Table 1): one request at a time, implicit
// synchronization, no condition variables, no support for external
// interactions. A nested invocation blocks the only thread; a callback into
// the object therefore deadlocks, which is precisely the motivation the
// paper gives for multithreaded strategies (Section 2).
package seq

import (
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/wire"
)

// Scheduler is the sequential baseline.
type Scheduler struct {
	env      adets.Env
	reg      *adets.Registry
	queue    []adets.Request
	busy     bool
	inNested bool
	stopped  bool
	worker   *adets.Thread
	quiesce  func(drained bool)
}

var _ adets.Scheduler = (*Scheduler)(nil)

// New returns a sequential scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name implements adets.Scheduler.
func (s *Scheduler) Name() string { return "SEQ" }

// Capabilities implements adets.Scheduler.
func (s *Scheduler) Capabilities() adets.Capabilities {
	return adets.Capabilities{
		Coordination:   "implicit",
		DeadlockFree:   "NO",
		Deployment:     "-",
		Multithreading: "S",
	}
}

// Start implements adets.Scheduler.
func (s *Scheduler) Start(env adets.Env) {
	s.env = env
	s.reg = adets.NewRegistry(env.RT)
}

// Stop implements adets.Scheduler.
func (s *Scheduler) Stop() {
	s.env.RT.Lock()
	s.stopped = true
	s.queue = nil
	if s.worker != nil && !s.busy {
		s.worker.Unpark(s.env.RT)
	}
	s.env.RT.Unlock()
}

// Submit implements adets.Scheduler: requests execute one after another in
// delivery order, each to completion.
func (s *Scheduler) Submit(req adets.Request) {
	s.env.RT.Lock()
	defer s.env.RT.Unlock()
	if s.stopped {
		return
	}
	s.env.Obs.Submitted()
	s.queue = append(s.queue, req)
	if s.worker == nil {
		s.worker = s.reg.NewThread("seq-worker", "")
		// Busy from birth: the worker drains the queue before it first
		// parks, so a Submit racing with the spawn must not Unpark it — the
		// stale permit would make a later BeginNested return early.
		s.busy = true
		w := s.worker
		s.reg.Spawn(w, func() { s.loop(w) })
		return
	}
	if !s.busy {
		s.worker.Unpark(s.env.RT)
	}
}

func (s *Scheduler) loop(w *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	for {
		if s.stopped {
			rt.Unlock()
			return
		}
		if len(s.queue) == 0 {
			s.busy = false
			s.checkQuiesceLocked()
			w.Park(rt)
			continue
		}
		req := s.queue[0]
		s.queue = s.queue[1:]
		s.busy = true
		w.Logical = req.Logical
		rt.Unlock()
		s.env.Obs.Exec(string(req.Logical))
		req.Exec(w)
		rt.Lock()
	}
}

// Lock implements adets.Scheduler. With a single thread, mutual exclusion
// is implicit; the operation records nothing.
func (s *Scheduler) Lock(*adets.Thread, adets.MutexID) error { return nil }

// Unlock implements adets.Scheduler.
func (s *Scheduler) Unlock(*adets.Thread, adets.MutexID) error { return nil }

// Wait implements adets.Scheduler: unsupported — the single thread waiting
// on a condition variable could never be notified. Object code falls back
// to polling, as the paper's evaluation does (Section 5.5).
func (s *Scheduler) Wait(*adets.Thread, adets.MutexID, adets.CondID, time.Duration) (bool, error) {
	return false, adets.ErrUnsupported
}

// Notify implements adets.Scheduler (unsupported).
func (s *Scheduler) Notify(*adets.Thread, adets.MutexID, adets.CondID) error {
	return adets.ErrUnsupported
}

// NotifyAll implements adets.Scheduler (unsupported).
func (s *Scheduler) NotifyAll(*adets.Thread, adets.MutexID, adets.CondID) error {
	return adets.ErrUnsupported
}

// Yield implements adets.Scheduler (no-op: there is nothing to yield to).
func (s *Scheduler) Yield(*adets.Thread) {}

// BeginNested implements adets.Scheduler: the single thread blocks until
// the reply is delivered; no other request makes progress meanwhile — the
// deadlock hazard of the S model the paper describes in Section 2.
func (s *Scheduler) BeginNested(t *adets.Thread) {
	s.env.RT.Lock()
	s.inNested = true
	s.checkQuiesceLocked()
	t.Park(s.env.RT)
	s.inNested = false
	s.env.RT.Unlock()
}

// EndNested implements adets.Scheduler.
func (s *Scheduler) EndNested(t *adets.Thread) {
	s.env.RT.Lock()
	t.Unpark(s.env.RT)
	s.env.RT.Unlock()
}

// ViewChanged implements adets.Scheduler (membership is irrelevant to SEQ).
func (s *Scheduler) ViewChanged(gcs.View) {}

// Quiesce implements adets.Scheduler. SEQ is stable when its worker is
// parked: idle on an empty queue (drained) or inside a nested invocation
// awaiting the totally-ordered reply (skip).
func (s *Scheduler) Quiesce(report func(drained bool)) {
	s.env.RT.Lock()
	s.quiesce = report
	s.checkQuiesceLocked()
	s.env.RT.Unlock()
}

func (s *Scheduler) checkQuiesceLocked() {
	if s.quiesce == nil {
		return
	}
	idle := !s.busy && len(s.queue) == 0
	if !idle && !s.inNested {
		return // worker running or about to: wait for its next park
	}
	report := s.quiesce
	s.quiesce = nil
	report(idle)
}

// HandleOrdered implements adets.Scheduler.
func (s *Scheduler) HandleOrdered(string, any) bool { return false }

// HandleDirect implements adets.Scheduler.
func (s *Scheduler) HandleDirect(wire.NodeID, any) bool { return false }
