package seq

import (
	"testing"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// White-box tests of the SEQ baseline: strictly sequential execution in
// delivery order, implicit mutual exclusion (Lock/Unlock are free and
// reentrant), no condition-variable support, and the nested-invocation
// blocking hazard of the S model (paper Section 2).

func newBare() (*Scheduler, *vtime.VirtualRuntime) {
	rt := vtime.Virtual()
	s := New()
	s.Start(adets.Env{
		RT:               rt,
		Self:             "g/0",
		Peers:            []wire.NodeID{"g/0"},
		SendPeer:         func(wire.NodeID, any) {},
		BroadcastOrdered: func(string, any) {},
	})
	return s, rt
}

func TestSequentialGrantOrder(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	var order []string
	vtime.Run(rt, "main", func() {
		running, max := 0, 0
		done := vtime.NewMailbox[struct{}](rt, "done")
		for i := 0; i < 5; i++ {
			logical := wire.LogicalID(rune('a' + i))
			s.Submit(adets.Request{
				Logical: logical,
				Exec: func(th *adets.Thread) {
					// Lock is implicit: it must grant immediately in
					// submission order because only one request runs.
					if err := s.Lock(th, "m"); err != nil {
						t.Errorf("Lock: %v", err)
					}
					rt.Lock()
					running++
					if running > max {
						max = running
					}
					order = append(order, string(logical))
					rt.Unlock()
					rt.Sleep(10) // overlap window (virtual time)
					rt.Lock()
					running--
					rt.Unlock()
					if err := s.Unlock(th, "m"); err != nil {
						t.Errorf("Unlock: %v", err)
					}
					done.Put(struct{}{})
				},
			})
		}
		for i := 0; i < 5; i++ {
			done.Get()
		}
		if max != 1 {
			t.Errorf("max concurrently running = %d, want 1 (sequential model)", max)
		}
		s.Stop()
	})
	want := []string{"a", "b", "c", "d", "e"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %q, want %q (delivery order)", i, order[i], want[i])
		}
	}
}

func TestLockIsImplicitAndReentrant(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	vtime.Run(rt, "main", func() {
		done := vtime.NewMailbox[struct{}](rt, "done")
		s.Submit(adets.Request{
			Logical: "a",
			Exec: func(th *adets.Thread) {
				// Re-acquiring the same mutex must not self-deadlock: SEQ's
				// coordination is implicit, so nested Lock calls are free.
				for i := 0; i < 3; i++ {
					if err := s.Lock(th, "m"); err != nil {
						t.Errorf("Lock #%d: %v", i, err)
					}
				}
				for i := 0; i < 3; i++ {
					if err := s.Unlock(th, "m"); err != nil {
						t.Errorf("Unlock #%d: %v", i, err)
					}
				}
				done.Put(struct{}{})
			},
		})
		done.Get()
		s.Stop()
	})
}

// TestWaitUnsupportedDeterministically: SEQ has no condition variables — a
// timed or untimed Wait must return ErrUnsupported immediately, without
// arming any timer, no matter the timeout value. Object code relies on this
// to fall back to polling (paper Section 5.5).
func TestWaitUnsupportedDeterministically(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	vtime.Run(rt, "main", func() {
		done := vtime.NewMailbox[struct{}](rt, "done")
		s.Submit(adets.Request{
			Logical: "a",
			Exec: func(th *adets.Thread) {
				before := rt.Now()
				for _, d := range []time.Duration{0, time.Millisecond, time.Hour} {
					if fired, err := s.Wait(th, "m", "c", d); err != adets.ErrUnsupported || fired {
						t.Errorf("Wait(%v) = (%v, %v), want (false, ErrUnsupported)", d, fired, err)
					}
				}
				if err := s.Notify(th, "m", "c"); err != adets.ErrUnsupported {
					t.Errorf("Notify = %v, want ErrUnsupported", err)
				}
				if err := s.NotifyAll(th, "m", "c"); err != adets.ErrUnsupported {
					t.Errorf("NotifyAll = %v, want ErrUnsupported", err)
				}
				if rt.Now() != before {
					t.Errorf("unsupported Wait advanced virtual time by %v", rt.Now()-before)
				}
				done.Put(struct{}{})
			},
		})
		done.Get()
		s.Stop()
	})
}

// TestNestedInvocationBlocksQueue: with a single thread, a request blocked
// in a nested invocation stalls every queued request until the reply
// arrives — the S-model hazard that motivates the multithreaded strategies.
func TestNestedInvocationBlocksQueue(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	var order []string
	vtime.Run(rt, "main", func() {
		done := vtime.NewMailbox[struct{}](rt, "done")
		var nested *adets.Thread
		s.Submit(adets.Request{
			Logical: "origin",
			Exec: func(th *adets.Thread) {
				rt.Lock()
				order = append(order, "nested-start")
				nested = th
				rt.Unlock()
				s.BeginNested(th) // blocks the only thread
				rt.Lock()
				order = append(order, "nested-end")
				rt.Unlock()
				done.Put(struct{}{})
			},
		})
		s.Submit(adets.Request{
			Logical: "queued",
			Exec: func(*adets.Thread) {
				rt.Lock()
				order = append(order, "queued")
				rt.Unlock()
				done.Put(struct{}{})
			},
		})
		rt.Sleep(1000)
		rt.Lock()
		got := append([]string(nil), order...)
		rt.Unlock()
		if len(got) != 1 || got[0] != "nested-start" {
			t.Fatalf("while nested: order = %v, want [nested-start] only", got)
		}
		s.EndNested(nested) // the "reply" arrives
		done.Get()
		done.Get()
		s.Stop()
	})
	want := []string{"nested-start", "nested-end", "queued"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %q, want %q", i, order[i], want[i])
		}
	}
}

func TestSubmitAfterStopIsNoop(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	vtime.Run(rt, "main", func() {
		done := vtime.NewMailbox[struct{}](rt, "done")
		s.Submit(adets.Request{Logical: "a", Exec: func(*adets.Thread) { done.Put(struct{}{}) }})
		done.Get()
		s.Stop()
		s.Submit(adets.Request{Logical: "late", Exec: func(*adets.Thread) {
			t.Error("request executed after Stop")
		}})
		rt.Sleep(1000)
	})
}
