package adets

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// TestQuickFIFOMatchesModel drives the FIFO with random operation sequences
// and compares against a plain-slice reference model.
func TestQuickFIFOMatchesModel(t *testing.T) {
	mk := func(id uint64) *Thread { return &Thread{ID: id} }
	f := func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q FIFO
		var model []*Thread
		pool := make([]*Thread, 8)
		for i := range pool {
			pool[i] = mk(uint64(i))
		}
		for _, op := range opsRaw {
			switch op % 5 {
			case 0: // Push
				th := pool[rng.Intn(len(pool))]
				q.Push(th)
				model = append(model, th)
			case 1: // PushFront
				th := pool[rng.Intn(len(pool))]
				q.PushFront(th)
				model = append([]*Thread{th}, model...)
			case 2: // Pop
				got := q.Pop()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := model[0]
					model = model[1:]
					if got != want {
						return false
					}
				}
			case 3: // Remove
				th := pool[rng.Intn(len(pool))]
				got := q.Remove(th)
				found := false
				for i, x := range model {
					if x == th {
						model = append(model[:i], model[i+1:]...)
						found = true
						break
					}
				}
				if got != found {
					return false
				}
			case 4: // Peek + invariants
				got := q.Peek()
				if len(model) == 0 && got != nil {
					return false
				}
				if len(model) > 0 && got != model[0] {
					return false
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		// Final drain must equal the model.
		drained := q.Drain()
		if len(drained) != len(model) {
			return false
		}
		for i := range drained {
			if drained[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFIFOContainsAndSnapshot(t *testing.T) {
	var q FIFO
	a, b := &Thread{ID: 1}, &Thread{ID: 2}
	q.Push(a)
	if !q.Contains(a) || q.Contains(b) {
		t.Error("Contains broken")
	}
	q.Push(b)
	snap := q.Snapshot()
	if len(snap) != 2 || snap[0] != a || snap[1] != b {
		t.Errorf("Snapshot = %v", snap)
	}
	snap[0] = b // mutation must not alias the queue
	if q.Peek() != a {
		t.Error("Snapshot aliases queue storage")
	}
}

func TestRegistryAssignsSequentialIDs(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	r := NewRegistry(rt)
	rt.Lock()
	for i := uint64(0); i < 5; i++ {
		th := r.NewThread("t", "l")
		if th.ID != i {
			t.Errorf("thread %d got ID %d", i, th.ID)
		}
	}
	rt.Unlock()
}

func TestThreadString(t *testing.T) {
	th := &Thread{ID: 3, Name: "w", Logical: "cl1"}
	if s := th.String(); !strings.Contains(s, "3") || !strings.Contains(s, "cl1") {
		t.Errorf("String = %q", s)
	}
}

// --- Reentrancy ---

// TestQuickReentrancyDepth: a random sequence of balanced lock/unlock
// nesting reaches the scheduler exactly on the 0→1 and 1→0 transitions.
func TestQuickReentrancyDepth(t *testing.T) {
	f := func(depthsRaw []uint8) bool {
		rt := vtime.Virtual()
		defer rt.Stop()
		sched := &countingSched{}
		re := NewReentrancy(rt, sched)
		th := &Thread{ID: 0, Logical: wire.LogicalID("l")}
		for _, raw := range depthsRaw {
			depth := int(raw%5) + 1
			for i := 0; i < depth; i++ {
				if err := re.Lock(th, "m"); err != nil {
					return false
				}
				if re.Depth(th, "m") != i+1 {
					return false
				}
			}
			if !re.Held(th, "m") {
				return false
			}
			for i := depth; i > 0; i-- {
				if err := re.Unlock(th, "m"); err != nil {
					return false
				}
			}
			if re.Held(th, "m") {
				return false
			}
			if re.Unlock(th, "m") != ErrNotHeld {
				return false
			}
		}
		// One scheduler-level lock+unlock per nesting group.
		return sched.locks == len(depthsRaw) && sched.unlocks == len(depthsRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// countingSched is a minimal Scheduler stub for reentrancy tests.
type countingSched struct {
	locks   int
	unlocks int
}

func (c *countingSched) Name() string                  { return "stub" }
func (c *countingSched) Capabilities() Capabilities    { return Capabilities{} }
func (c *countingSched) Start(Env)                     {}
func (c *countingSched) Stop()                         {}
func (c *countingSched) Submit(Request)                {}
func (c *countingSched) Lock(*Thread, MutexID) error   { c.locks++; return nil }
func (c *countingSched) Unlock(*Thread, MutexID) error { c.unlocks++; return nil }
func (c *countingSched) Wait(*Thread, MutexID, CondID, time.Duration) (bool, error) {
	return false, nil
}
func (c *countingSched) Notify(*Thread, MutexID, CondID) error    { return nil }
func (c *countingSched) NotifyAll(*Thread, MutexID, CondID) error { return nil }
func (c *countingSched) ViewChanged(gcs.View)                     {}
func (c *countingSched) Quiesce(report func(bool))                { report(true) }
func (c *countingSched) Yield(*Thread)                            {}
func (c *countingSched) BeginNested(*Thread)                      {}
func (c *countingSched) EndNested(*Thread)                        {}
func (c *countingSched) HandleOrdered(string, any) bool           { return false }
func (c *countingSched) HandleDirect(wire.NodeID, any) bool {
	return false
}

func TestTable1FormatContainsPaperRows(t *testing.T) {
	out := FormatTable1(PaperTable1)
	for _, want := range []string{"SEQ", "Eternal", "ADETS-SAT", "ADETS-MAT", "LSA", "PDS",
		"implicit", "interception", "transformation", "manual", "MA (restr.)"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable1 missing %q:\n%s", want, out)
		}
	}
	if len(PaperTable1) != 7 {
		t.Errorf("PaperTable1 has %d rows, want 7", len(PaperTable1))
	}
}
