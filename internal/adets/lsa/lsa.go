// Package lsa implements ADETS-LSA — Basile's Loose Synchronization
// Algorithm extended per Section 4.1 of the paper with the native Java
// synchronization model: condition variables, deterministic time-bounded
// waits via timeout threads (paper Fig. 1), dynamic mutexes, and leader
// fail-over driven by in-stream view changes.
//
// One replica (the lowest-ranked member of the current view) is the
// *leader*: it executes threads without restriction, grants mutexes
// first-come-first-served, records the grant order as a sequence of
// (mutex, logical thread) pairs, and broadcasts this mutex table
// periodically. *Followers* suspend a thread that requests a mutex until
// the table tells them it is that thread's turn.
//
// Deviation from Basile's original, documented in DESIGN.md: mutex tables
// travel through the group's totally-ordered broadcast rather than plain
// multicast. Every follower therefore applies exactly the same table
// prefix, which makes crash fail-over state-free — the new leader simply
// keeps granting where the delivered table ends, and grants the old leader
// logged but never got delivered are re-decided by the new leader. Clients
// are protected by the majority reply policy.
package lsa

import (
	"fmt"
	"sort"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// DefaultPeriod is the default mutex-table broadcast period.
const DefaultPeriod = 5 * time.Millisecond

// TableEntry is one grant record: mutex m was granted to logical thread l.
type TableEntry struct {
	M adets.MutexID
	L wire.LogicalID
}

// TableUpdate carries a batch of grant records from the leader.
type TableUpdate struct {
	From    wire.NodeID
	Entries []TableEntry
}

func init() { wire.RegisterPayload(TableUpdate{}) }

type lsaThread struct {
	waiting     bool
	waitSeq     uint64
	timedOut    bool
	granted     bool // set by the grant path before unparking a lock waiter
	lockWait    bool // parked in Lock awaiting a grant
	nested      bool // parked in BeginNested awaiting the ordered reply
	replyPermit bool // EndNested arrived before BeginNested: next park is a no-op
}

type lockState struct {
	owner    wire.LogicalID
	schedule []wire.LogicalID // applied table entries, grant order
	nextIdx  int              // next schedule position to grant
	pending  map[wire.LogicalID]*adets.Thread
	arrival  []wire.LogicalID // request arrival order (leader grant order)
}

type condKey struct {
	m adets.MutexID
	c adets.CondID
}

// Option configures the scheduler.
type Option func(*Scheduler)

// WithPeriod sets the mutex-table broadcast period.
func WithPeriod(d time.Duration) Option {
	return func(s *Scheduler) { s.period = d }
}

// Scheduler implements adets.Scheduler with the leader-follower LSA model.
type Scheduler struct {
	env    adets.Env
	reg    *adets.Registry
	period time.Duration

	leader  wire.NodeID
	locks   map[adets.MutexID]*lockState
	conds   map[condKey]*adets.FIFO
	waiters map[wire.LogicalID]*adets.Thread
	threads map[*adets.Thread]bool

	pendingLog []TableEntry // leader: grants not yet broadcast
	inflight   int          // table batches broadcast but not yet delivered back
	batchSeq   uint64
	waitSeqs   map[wire.LogicalID]uint64
	flushTimer *vtime.Timer
	stopped    bool
	quiesce    func(drained bool)
}

var _ adets.Scheduler = (*Scheduler)(nil)

// New returns an ADETS-LSA scheduler.
func New(opts ...Option) *Scheduler {
	s := &Scheduler{
		period:   DefaultPeriod,
		locks:    make(map[adets.MutexID]*lockState),
		conds:    make(map[condKey]*adets.FIFO),
		waiters:  make(map[wire.LogicalID]*adets.Thread),
		threads:  make(map[*adets.Thread]bool),
		waitSeqs: make(map[wire.LogicalID]uint64),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name implements adets.Scheduler.
func (s *Scheduler) Name() string { return "ADETS-LSA" }

// Capabilities implements adets.Scheduler.
func (s *Scheduler) Capabilities() adets.Capabilities {
	return adets.Capabilities{
		Coordination:      "Locks/Monitor",
		DeadlockFree:      "NI+CB",
		Deployment:        "manual",
		Multithreading:    "MA",
		ReentrantLocks:    true,
		ConditionVars:     true,
		TimedWait:         true,
		NestedInvocations: true,
		Callbacks:         true,
	}
}

// Start implements adets.Scheduler.
func (s *Scheduler) Start(env adets.Env) {
	s.env = env
	s.reg = adets.NewRegistry(env.RT)
	if len(env.Peers) > 0 {
		s.leader = env.Peers[0]
	}
	s.scheduleFlush()
}

// Stop implements adets.Scheduler.
func (s *Scheduler) Stop() {
	rt := s.env.RT
	rt.Lock()
	s.stopped = true
	if s.flushTimer != nil {
		rt.StopTimerLocked(s.flushTimer)
		s.flushTimer = nil
	}
	for t := range s.threads {
		t.Unpark(rt)
	}
	rt.Unlock()
}

func st(t *adets.Thread) *lsaThread { return t.Sched.(*lsaThread) }

func (s *Scheduler) isLeaderLocked() bool { return s.leader == s.env.Self }

// Submit implements adets.Scheduler: true multithreading — every request
// starts executing immediately on all replicas; determinism comes from the
// grant order alone.
func (s *Scheduler) Submit(req adets.Request) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return
	}
	s.env.Obs.Submitted()
	t := s.reg.NewThread("lsa/"+string(req.Logical), req.Logical)
	t.Sched = &lsaThread{}
	s.threads[t] = true
	s.reg.Spawn(t, func() {
		if !s.isStopped() {
			req.Exec(t)
		}
		s.threadDone(t)
	})
}

func (s *Scheduler) isStopped() bool {
	s.env.RT.Lock()
	defer s.env.RT.Unlock()
	return s.stopped
}

func (s *Scheduler) threadDone(t *adets.Thread) {
	s.env.RT.Lock()
	delete(s.threads, t)
	s.checkQuiesceLocked()
	s.env.RT.Unlock()
}

func (s *Scheduler) lock(m adets.MutexID) *lockState {
	ls, ok := s.locks[m]
	if !ok {
		ls = &lockState{pending: make(map[wire.LogicalID]*adets.Thread)}
		s.locks[m] = ls
	}
	return ls
}

func (s *Scheduler) cond(m adets.MutexID, c adets.CondID) *adets.FIFO {
	k := condKey{m, c}
	q, ok := s.conds[k]
	if !ok {
		q = &adets.FIFO{}
		s.conds[k] = q
	}
	return q
}

// Lock implements adets.Scheduler. On the leader the request is granted
// FCFS and logged; on a follower it is granted when the applied mutex
// table says so.
func (s *Scheduler) Lock(t *adets.Thread, m adets.MutexID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	s.requestLocked(t, m)
	blocked := !st(t).granted
	var t0 time.Duration
	if blocked && s.env.Obs != nil {
		s.env.Obs.Blocked()
		t0 = rt.NowLocked()
	}
	// Park unconditionally: if the grant already happened, the unpark left
	// a permit and Park returns immediately — no lost wakeup, no stale
	// permit.
	st(t).lockWait = true
	s.checkQuiesceLocked()
	t.Park(rt)
	st(t).lockWait = false
	granted := st(t).granted
	st(t).granted = false
	if !granted && s.stopped {
		if blocked {
			s.env.Obs.Unblocked()
		}
		return adets.ErrStopped
	}
	if blocked && s.env.Obs != nil {
		s.env.Obs.GrantedAfterBlock(m, string(t.Logical), rt.NowLocked()-t0)
	}
	return nil
}

// requestLocked registers a lock request and runs the grant machinery.
// If the request can be satisfied immediately, the grant deposits an
// unpark permit the caller's Park consumes.
func (s *Scheduler) requestLocked(t *adets.Thread, m adets.MutexID) {
	ls := s.lock(m)
	ls.pending[t.Logical] = t
	ls.arrival = append(ls.arrival, t.Logical)
	s.tryGrantLocked(m)
}

// tryGrantLocked advances grants for m as far as possible:
//   - first along the applied schedule (both roles — a freshly promoted
//     leader finishes the old leader's published decisions first);
//   - then, on the leader only, FCFS over arrived requests, logging each
//     grant for the next table broadcast.
func (s *Scheduler) tryGrantLocked(m adets.MutexID) {
	ls := s.lock(m)
	for ls.owner == "" {
		if ls.nextIdx < len(ls.schedule) {
			next := ls.schedule[ls.nextIdx]
			th := ls.pending[next]
			if th == nil {
				return // that thread has not requested yet on this replica
			}
			ls.nextIdx++
			s.grantLocked(ls, th, m, false)
			continue
		}
		if !s.isLeaderLocked() {
			return // follower: wait for more table
		}
		th := s.nextArrivalLocked(ls)
		if th == nil {
			return
		}
		s.grantLocked(ls, th, m, true)
	}
}

// nextArrivalLocked pops the oldest still-pending arrival (leader FCFS).
func (s *Scheduler) nextArrivalLocked(ls *lockState) *adets.Thread {
	for len(ls.arrival) > 0 {
		l := ls.arrival[0]
		ls.arrival = ls.arrival[1:]
		if th, ok := ls.pending[l]; ok {
			return th
		}
	}
	return nil
}

func (s *Scheduler) grantLocked(ls *lockState, th *adets.Thread, m adets.MutexID, log bool) {
	delete(ls.pending, th.Logical)
	ls.owner = th.Logical
	s.env.Obs.Grant(m, string(th.Logical))
	st(th).granted = true
	th.Unpark(s.env.RT) // harmless permit if the thread has not parked yet
	if log {
		s.pendingLog = append(s.pendingLog, TableEntry{M: m, L: th.Logical})
	}
}

// Unlock implements adets.Scheduler.
func (s *Scheduler) Unlock(t *adets.Thread, m adets.MutexID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner != t.Logical {
		return adets.ErrNotHeld
	}
	s.env.Obs.Unlock(m, string(t.Logical))
	ls.owner = ""
	s.tryGrantLocked(m)
	return nil
}

// Wait implements adets.Scheduler. Operations on a condition variable are
// protected by its mutex, whose grant order is deterministic, so plain
// local FIFO queues suffice (Section 4.1). Time bounds use the timeout
// thread of Fig. 1.
func (s *Scheduler) Wait(t *adets.Thread, m adets.MutexID, c adets.CondID, d time.Duration) (bool, error) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return false, adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner != t.Logical {
		return false, adets.ErrNotHeld
	}
	lst := st(t)
	lst.waiting = true
	lst.timedOut = false
	s.waitSeqs[t.Logical]++
	lst.waitSeq = s.waitSeqs[t.Logical]
	s.waiters[t.Logical] = t
	s.cond(m, c).Push(t)
	var timer *vtime.Timer
	if d > 0 {
		timer = s.spawnTimeoutThreadLocked(t, m, c, lst.waitSeq, d)
	}
	s.env.Obs.WaitStart(m, c, string(t.Logical))
	ls.owner = ""
	s.tryGrantLocked(m)
	s.checkQuiesceLocked()
	t.Park(rt) // woken when re-granted m after notify/timeout
	lst.waiting = false
	delete(s.waiters, t.Logical)
	if timer != nil {
		rt.StopTimerLocked(timer)
	}
	if s.stopped {
		return false, adets.ErrStopped
	}
	st(t).granted = false
	return lst.timedOut, nil
}

// spawnTimeoutThreadLocked arms the local timer that creates the TO-thread
// of paper Fig. 1: a scheduler-managed thread that locks the mutex and, if
// the target is still waiting, performs the timeout wake. Its lock request
// is ordered by the normal LSA machinery, so leader and followers resolve
// the timeout-vs-notify race identically.
func (s *Scheduler) spawnTimeoutThreadLocked(target *adets.Thread, m adets.MutexID, c adets.CondID, seq uint64, d time.Duration) *vtime.Timer {
	logical := wire.LogicalID(fmt.Sprintf("lsa-to/%s/%d", target.Logical, seq))
	return s.env.RT.AfterLocked(d, string(logical), func() {
		rt := s.env.RT
		rt.Lock()
		if s.stopped {
			rt.Unlock()
			return
		}
		t := s.reg.NewThread(string(logical), logical)
		t.Sched = &lsaThread{}
		s.threads[t] = true
		rt.Unlock()
		if err := s.Lock(t, m); err == nil {
			rt.Lock()
			w := s.waiters[target.Logical]
			if w != nil && st(w).waiting && st(w).waitSeq == seq {
				s.env.Obs.TimeoutFired()
				s.env.Obs.Wake(m, c, string(w.Logical), true)
				s.cond(m, c).Remove(w)
				st(w).timedOut = true
				s.requeueWaiterLocked(w, m)
			}
			rt.Unlock()
			_ = s.Unlock(t, m)
		}
		s.threadDone(t)
	})
}

// requeueWaiterLocked makes a woken condition waiter reacquire its mutex
// through the regular grant machinery.
func (s *Scheduler) requeueWaiterLocked(w *adets.Thread, m adets.MutexID) {
	ls := s.lock(m)
	ls.pending[w.Logical] = w
	ls.arrival = append(ls.arrival, w.Logical)
	s.tryGrantLocked(m)
}

// Notify implements adets.Scheduler.
func (s *Scheduler) Notify(t *adets.Thread, m adets.MutexID, c adets.CondID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner != t.Logical {
		return adets.ErrNotHeld
	}
	if w := s.cond(m, c).Pop(); w != nil {
		s.env.Obs.Wake(m, c, string(w.Logical), false)
		s.requeueWaiterLocked(w, m)
	}
	return nil
}

// NotifyAll implements adets.Scheduler.
func (s *Scheduler) NotifyAll(t *adets.Thread, m adets.MutexID, c adets.CondID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner != t.Logical {
		return adets.ErrNotHeld
	}
	for _, w := range s.cond(m, c).Drain() {
		s.env.Obs.Wake(m, c, string(w.Logical), false)
		s.requeueWaiterLocked(w, m)
	}
	return nil
}

// Yield implements adets.Scheduler (no-op: LSA threads are never
// token-gated).
func (s *Scheduler) Yield(*adets.Thread) {}

// BeginNested implements adets.Scheduler: "a thread waiting for a nested
// invocation reply does not have any influence on the progress of other
// threads" (Section 4.1) — it simply parks. An early EndNested leaves a
// permit, so the order of the two calls does not matter.
func (s *Scheduler) BeginNested(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	lst := st(t)
	if lst.replyPermit {
		// The reply was delivered before we parked: consume the permit
		// without ever looking blocked to a concurrent Quiesce.
		lst.replyPermit = false
		t.Park(rt)
		rt.Unlock()
		return
	}
	lst.nested = true
	s.checkQuiesceLocked()
	t.Park(rt)
	lst.nested = false
	rt.Unlock()
}

// EndNested implements adets.Scheduler.
func (s *Scheduler) EndNested(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	if !st(t).nested {
		st(t).replyPermit = true
	}
	t.Unpark(rt)
	rt.Unlock()
}

// ViewChanged implements adets.Scheduler: the new leader is the lowest
// ranked member of the view, delivered at the same stream position on
// every replica. A freshly promoted leader finishes the published schedule
// first (tryGrantLocked), then grants FCFS.
func (s *Scheduler) ViewChanged(v gcs.View) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if len(v.Members) == 0 {
		return
	}
	s.env.Obs.ViewChange(v.Epoch)
	was := s.leader
	s.leader = v.Members[0]
	if s.leader == s.env.Self && was != s.env.Self {
		// Promotion: revisit every mutex — pending requests beyond the
		// published schedule can now be granted (and logged) by us.
		for m := range s.locks {
			s.tryGrantLocked(m)
		}
	}
}

// HandleOrdered implements adets.Scheduler: mutex-table batches arrive
// through the total order; followers apply them and grant accordingly.
func (s *Scheduler) HandleOrdered(_ string, payload any) bool {
	up, ok := payload.(TableUpdate)
	if !ok {
		return false
	}
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return true
	}
	if up.From == s.env.Self {
		// Our own broadcast returning through the order: grants were already
		// applied locally at log time; the batch is now published to all.
		s.inflight--
		s.checkQuiesceLocked()
		return true
	}
	touched := make(map[adets.MutexID]bool)
	for _, e := range up.Entries {
		ls := s.lock(e.M)
		ls.schedule = append(ls.schedule, e.L)
		touched[e.M] = true
	}
	for _, m := range sortedMutexes(touched) {
		s.tryGrantLocked(m)
	}
	return true
}

func sortedMutexes(set map[adets.MutexID]bool) []adets.MutexID {
	out := make([]adets.MutexID, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Quiesce implements adets.Scheduler. LSA is stable when every live thread
// is parked awaiting a grant, a notification, or a nested reply. Drained
// additionally requires that the leader's grant log is fully published AND
// delivered back through the order: an unpublished (or undelivered) grant
// means the leader executed ahead of the stream — the grantee may have
// finished here while it is still blocked on every follower, so leader and
// followers would disagree about the cut. A grant pending publication can
// never deliver while dispatch is paused, so in that case the stable report
// is drained=false (checkpoint skipped) on the leader — and on followers
// too, whose corresponding threads are still parked awaiting the table.
func (s *Scheduler) Quiesce(report func(drained bool)) {
	rt := s.env.RT
	rt.Lock()
	s.quiesce = report
	s.checkQuiesceLocked()
	rt.Unlock()
}

func (s *Scheduler) checkQuiesceLocked() {
	if s.quiesce == nil {
		return
	}
	for t := range s.threads {
		lst := st(t)
		stable := lst.nested || ((lst.waiting || lst.lockWait) && !lst.granted)
		if !stable {
			return
		}
	}
	pubClean := len(s.pendingLog) == 0 && s.inflight == 0
	report := s.quiesce
	s.quiesce = nil
	report(len(s.threads) == 0 && pubClean)
}

// HandleDirect implements adets.Scheduler.
func (s *Scheduler) HandleDirect(wire.NodeID, any) bool { return false }

// scheduleFlush arms the periodic mutex-table broadcast.
func (s *Scheduler) scheduleFlush() {
	rt := s.env.RT
	rt.Lock()
	if s.stopped {
		rt.Unlock()
		return
	}
	s.flushTimer = rt.AfterLocked(s.period, "lsa-flush/"+string(s.env.Self), s.flush)
	rt.Unlock()
}

func (s *Scheduler) flush() {
	rt := s.env.RT
	rt.Lock()
	var batch []TableEntry
	var id string
	if !s.stopped && s.isLeaderLocked() && len(s.pendingLog) > 0 {
		batch = s.pendingLog
		s.pendingLog = nil
		s.batchSeq++
		s.inflight++
		id = fmt.Sprintf("lsa-table/%s/%d", s.env.Self, s.batchSeq)
	}
	rt.Unlock()
	if batch != nil {
		s.env.BroadcastOrdered(id, TableUpdate{From: s.env.Self, Entries: batch})
	}
	s.scheduleFlush()
}
