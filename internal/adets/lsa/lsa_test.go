package lsa

import (
	"testing"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// White-box tests of the grant machinery: leader FCFS with logging,
// follower schedule replay, and the promotion rule (finish the published
// schedule first, then grant fresh).

func newBare(self wire.NodeID, leader wire.NodeID) (*Scheduler, *vtime.VirtualRuntime) {
	rt := vtime.Virtual()
	s := New()
	s.env = adets.Env{RT: rt, Self: self, Peers: []wire.NodeID{"g/0", "g/1"}}
	s.reg = adets.NewRegistry(rt)
	s.leader = leader
	return s, rt
}

func mkThread(s *Scheduler, rt *vtime.VirtualRuntime, logical wire.LogicalID) *adets.Thread {
	rt.Lock()
	defer rt.Unlock()
	t := s.reg.NewThread(string(logical), logical)
	t.Sched = &lsaThread{}
	s.threads[t] = true
	return t
}

func TestLeaderGrantsFCFSAndLogs(t *testing.T) {
	s, rt := newBare("g/0", "g/0")
	defer rt.Stop()
	a := mkThread(s, rt, "a")
	b := mkThread(s, rt, "b")
	rt.Lock()
	s.requestLocked(a, "m")
	if got := s.lock("m").owner; got != "a" {
		t.Errorf("owner = %q, want a (immediate leader grant)", got)
	}
	s.requestLocked(b, "m") // held: must queue
	if got := s.lock("m").owner; got != "a" {
		t.Errorf("owner = %q after second request", got)
	}
	// Release: b granted next, both grants logged in order.
	s.lock("m").owner = ""
	s.tryGrantLocked("m")
	if got := s.lock("m").owner; got != "b" {
		t.Errorf("owner = %q, want b", got)
	}
	if len(s.pendingLog) != 2 || s.pendingLog[0].L != "a" || s.pendingLog[1].L != "b" {
		t.Errorf("pendingLog = %+v, want [a b] on m", s.pendingLog)
	}
	rt.Unlock()
}

func TestFollowerWaitsForSchedule(t *testing.T) {
	s, rt := newBare("g/1", "g/0") // follower
	defer rt.Stop()
	a := mkThread(s, rt, "a")
	b := mkThread(s, rt, "b")
	rt.Lock()
	// Requests arrive in the "wrong" order locally; the schedule decides.
	s.requestLocked(b, "m")
	s.requestLocked(a, "m")
	if got := s.lock("m").owner; got != "" {
		t.Errorf("follower granted %q without a schedule", got)
	}
	// Apply the leader's table: a first, then b.
	s.lock("m").schedule = append(s.lock("m").schedule, "a", "b")
	s.tryGrantLocked("m")
	if got := s.lock("m").owner; got != "a" {
		t.Errorf("owner = %q, want a (schedule order)", got)
	}
	if len(s.pendingLog) != 0 {
		t.Errorf("follower logged grants: %+v", s.pendingLog)
	}
	s.lock("m").owner = ""
	s.tryGrantLocked("m")
	if got := s.lock("m").owner; got != "b" {
		t.Errorf("owner = %q, want b", got)
	}
	rt.Unlock()
}

func TestFollowerBlocksOnScheduleForAbsentThread(t *testing.T) {
	s, rt := newBare("g/1", "g/0")
	defer rt.Stop()
	b := mkThread(s, rt, "b")
	a := mkThread(s, rt, "a")
	rt.Lock()
	s.requestLocked(b, "m")
	// Schedule says "a" goes first, but a has not requested locally yet:
	// b must keep waiting (the grant order is sacrosanct).
	s.lock("m").schedule = append(s.lock("m").schedule, "a", "b")
	s.tryGrantLocked("m")
	if got := s.lock("m").owner; got != "" {
		t.Errorf("owner = %q; follower must wait for thread a", got)
	}
	s.requestLocked(a, "m")
	if got := s.lock("m").owner; got != "a" {
		t.Errorf("owner = %q, want a once it arrives", got)
	}
	rt.Unlock()
}

func TestPromotionFinishesScheduleThenGrantsFresh(t *testing.T) {
	s, rt := newBare("g/1", "g/0") // starts as follower
	defer rt.Stop()
	a := mkThread(s, rt, "a")
	b := mkThread(s, rt, "b")
	c := mkThread(s, rt, "c")
	rt.Lock()
	s.requestLocked(a, "m")
	s.requestLocked(b, "m")
	s.requestLocked(c, "m")
	// Published schedule covers only a.
	s.lock("m").schedule = append(s.lock("m").schedule, "a")
	s.tryGrantLocked("m")
	if got := s.lock("m").owner; got != "a" {
		t.Errorf("owner = %q", got)
	}
	rt.Unlock()

	// Promote (in-stream view change).
	s.ViewChanged(viewWith("g/1", "g/2"))

	rt.Lock()
	// After a releases, the new leader grants the remaining requests
	// fresh, logging them.
	s.lock("m").owner = ""
	s.tryGrantLocked("m")
	owner := s.lock("m").owner
	if owner != "b" && owner != "c" {
		t.Errorf("owner = %q, want one of the pending requesters", owner)
	}
	if len(s.pendingLog) != 1 || s.pendingLog[0].M != "m" {
		t.Errorf("pendingLog = %+v, want one fresh grant", s.pendingLog)
	}
	rt.Unlock()
}

func viewWith(members ...wire.NodeID) gcs.View {
	return gcs.View{Epoch: 1, Members: members}
}
