package lsa

import (
	"fmt"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/wire"
)

// Binary wire-codec fast path for the leader's mutex-table broadcast —
// under ADETS-LSA every grant the leader records crosses the wire in one of
// these (tag range 30–39 belongs to the scheduler packages; adets uses 30).

const tagTableUpdate = 31

func init() {
	wire.RegisterBinaryPayload(tagTableUpdate, TableUpdate{},
		func(b *wire.Buffer, v any) error {
			u := v.(TableUpdate)
			b.String(string(u.From))
			b.Uvarint(uint64(len(u.Entries)))
			for _, e := range u.Entries {
				b.String(string(e.M))
				b.String(string(e.L))
			}
			return nil
		},
		func(r *wire.Reader) (any, error) {
			var u TableUpdate
			s, err := r.String()
			if err != nil {
				return nil, err
			}
			u.From = wire.NodeID(s)
			n, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			if n > uint64(r.Remaining()) {
				return nil, fmt.Errorf("lsa: table entry count %d exceeds frame", n)
			}
			if n > 0 {
				u.Entries = make([]TableEntry, 0, n)
				for i := uint64(0); i < n; i++ {
					var e TableEntry
					if s, err = r.String(); err != nil {
						return nil, err
					}
					e.M = adets.MutexID(s)
					if s, err = r.String(); err != nil {
						return nil, err
					}
					e.L = wire.LogicalID(s)
					u.Entries = append(u.Entries, e)
				}
			}
			return u, nil
		})
}
