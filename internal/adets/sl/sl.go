// Package sl implements the single-logical-thread model pioneered by the
// Eternal middleware (paper Section 3.2): execution is sequential, but
// nested invocations are tagged with the originating logical thread, so a
// callback — a request whose logical thread matches the one currently
// blocked in a nested invocation — is recognized and executed on an
// additional physical thread instead of deadlocking.
package sl

import (
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/wire"
)

// Scheduler is the Eternal-style SL scheduler.
type Scheduler struct {
	env          adets.Env
	reg          *adets.Registry
	queue        []adets.Request
	busy         bool
	workerNested bool
	cbLive       int // live callback threads
	cbBlocked    int // callback threads parked in a nested invocation
	stopped      bool
	worker       *adets.Thread
	quiesce      func(drained bool)
}

var _ adets.Scheduler = (*Scheduler)(nil)

// New returns an SL scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name implements adets.Scheduler.
func (s *Scheduler) Name() string { return "Eternal" }

// Capabilities implements adets.Scheduler.
func (s *Scheduler) Capabilities() adets.Capabilities {
	return adets.Capabilities{
		Coordination:   "implicit",
		DeadlockFree:   "CB",
		Deployment:     "interception",
		Multithreading: "SL",
		Callbacks:      true,
	}
}

// Start implements adets.Scheduler.
func (s *Scheduler) Start(env adets.Env) {
	s.env = env
	s.reg = adets.NewRegistry(env.RT)
}

// Stop implements adets.Scheduler.
func (s *Scheduler) Stop() {
	s.env.RT.Lock()
	s.stopped = true
	s.queue = nil
	if s.worker != nil && !s.busy {
		s.worker.Unpark(s.env.RT)
	}
	s.env.RT.Unlock()
}

// Submit implements adets.Scheduler. Ordinary requests queue sequentially;
// callbacks run immediately on an extra physical thread under the same
// logical identity.
func (s *Scheduler) Submit(req adets.Request) {
	s.env.RT.Lock()
	defer s.env.RT.Unlock()
	if s.stopped {
		return
	}
	s.env.Obs.Submitted()
	if req.Callback {
		t := s.reg.NewThread("sl-callback", req.Logical)
		s.cbLive++
		s.reg.Spawn(t, func() {
			req.Exec(t)
			s.env.RT.Lock()
			s.cbLive--
			s.checkQuiesceLocked()
			s.env.RT.Unlock()
		})
		return
	}
	s.queue = append(s.queue, req)
	if s.worker == nil {
		s.worker = s.reg.NewThread("sl-worker", "")
		// Busy from birth: the worker drains the queue before it first
		// parks, so a Submit racing with the spawn must not Unpark it — the
		// stale permit would make a later BeginNested return early.
		s.busy = true
		w := s.worker
		s.reg.Spawn(w, func() { s.loop(w) })
		return
	}
	if !s.busy {
		s.worker.Unpark(s.env.RT)
	}
}

func (s *Scheduler) loop(w *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	for {
		if s.stopped {
			rt.Unlock()
			return
		}
		if len(s.queue) == 0 {
			s.busy = false
			s.checkQuiesceLocked()
			w.Park(rt)
			continue
		}
		req := s.queue[0]
		s.queue = s.queue[1:]
		s.busy = true
		w.Logical = req.Logical
		rt.Unlock()
		s.env.Obs.Exec(string(req.Logical))
		req.Exec(w)
		rt.Lock()
	}
}

// Lock implements adets.Scheduler: coordination is implicit; within one
// logical thread, callback and originator never run simultaneously (the
// originator is blocked in the nested invocation while the callback runs).
func (s *Scheduler) Lock(*adets.Thread, adets.MutexID) error { return nil }

// Unlock implements adets.Scheduler.
func (s *Scheduler) Unlock(*adets.Thread, adets.MutexID) error { return nil }

// Wait implements adets.Scheduler (unsupported, as in Eternal).
func (s *Scheduler) Wait(*adets.Thread, adets.MutexID, adets.CondID, time.Duration) (bool, error) {
	return false, adets.ErrUnsupported
}

// Notify implements adets.Scheduler (unsupported).
func (s *Scheduler) Notify(*adets.Thread, adets.MutexID, adets.CondID) error {
	return adets.ErrUnsupported
}

// NotifyAll implements adets.Scheduler (unsupported).
func (s *Scheduler) NotifyAll(*adets.Thread, adets.MutexID, adets.CondID) error {
	return adets.ErrUnsupported
}

// Yield implements adets.Scheduler (no-op).
func (s *Scheduler) Yield(*adets.Thread) {}

// BeginNested implements adets.Scheduler: the thread blocks until the reply
// arrives; callbacks issued by the invoked service execute meanwhile on
// extra physical threads of the same logical thread.
func (s *Scheduler) BeginNested(t *adets.Thread) {
	s.env.RT.Lock()
	isWorker := t == s.worker
	if isWorker {
		s.workerNested = true
	} else {
		s.cbBlocked++
	}
	s.checkQuiesceLocked()
	t.Park(s.env.RT)
	if isWorker {
		s.workerNested = false
	} else {
		s.cbBlocked--
	}
	s.env.RT.Unlock()
}

// EndNested implements adets.Scheduler.
func (s *Scheduler) EndNested(t *adets.Thread) {
	s.env.RT.Lock()
	t.Unpark(s.env.RT)
	s.env.RT.Unlock()
}

// ViewChanged implements adets.Scheduler.
func (s *Scheduler) ViewChanged(gcs.View) {}

// Quiesce implements adets.Scheduler. SL is stable when the worker is
// parked (idle or nested) and every callback thread is either finished or
// itself parked in a nested invocation.
func (s *Scheduler) Quiesce(report func(drained bool)) {
	s.env.RT.Lock()
	s.quiesce = report
	s.checkQuiesceLocked()
	s.env.RT.Unlock()
}

func (s *Scheduler) checkQuiesceLocked() {
	if s.quiesce == nil {
		return
	}
	idle := !s.busy && len(s.queue) == 0
	workerStable := idle || s.workerNested
	if !workerStable || s.cbBlocked != s.cbLive {
		return // something is running or about to
	}
	report := s.quiesce
	s.quiesce = nil
	report(idle && !s.workerNested && s.cbLive == 0)
}

// HandleOrdered implements adets.Scheduler.
func (s *Scheduler) HandleOrdered(string, any) bool { return false }

// HandleDirect implements adets.Scheduler.
func (s *Scheduler) HandleDirect(wire.NodeID, any) bool { return false }
