package sl

import (
	"testing"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// White-box tests of the Eternal-style SL model: ordinary requests run
// strictly sequentially in delivery order, while callbacks — requests tagged
// with the logical thread currently blocked in a nested invocation — run
// immediately on an extra physical thread (paper Section 3.2).

func newBare() (*Scheduler, *vtime.VirtualRuntime) {
	rt := vtime.Virtual()
	s := New()
	s.Start(adets.Env{
		RT:               rt,
		Self:             "g/0",
		Peers:            []wire.NodeID{"g/0"},
		SendPeer:         func(wire.NodeID, any) {},
		BroadcastOrdered: func(string, any) {},
	})
	return s, rt
}

func TestOrdinaryRequestsRunSequentially(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	var order []string
	vtime.Run(rt, "main", func() {
		running, max := 0, 0
		done := vtime.NewMailbox[struct{}](rt, "done")
		for i := 0; i < 5; i++ {
			logical := wire.LogicalID(rune('a' + i))
			s.Submit(adets.Request{
				Logical: logical,
				Exec: func(th *adets.Thread) {
					if err := s.Lock(th, "m"); err != nil {
						t.Errorf("Lock: %v", err)
					}
					rt.Lock()
					running++
					if running > max {
						max = running
					}
					order = append(order, string(logical))
					rt.Unlock()
					rt.Sleep(10) // overlap window (virtual time)
					rt.Lock()
					running--
					rt.Unlock()
					if err := s.Unlock(th, "m"); err != nil {
						t.Errorf("Unlock: %v", err)
					}
					done.Put(struct{}{})
				},
			})
		}
		for i := 0; i < 5; i++ {
			done.Get()
		}
		if max != 1 {
			t.Errorf("max concurrently running = %d, want 1 (SL is sequential for ordinary requests)", max)
		}
		s.Stop()
	})
	want := []string{"a", "b", "c", "d", "e"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %q, want %q (delivery order)", i, order[i], want[i])
		}
	}
}

// TestCallbackRunsWhileOriginatorNested: the defining SL property — a
// callback for the logical thread blocked in a nested invocation executes on
// an extra physical thread instead of deadlocking behind the single worker.
func TestCallbackRunsWhileOriginatorNested(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	var order []string
	vtime.Run(rt, "main", func() {
		done := vtime.NewMailbox[struct{}](rt, "done")
		var nested *adets.Thread
		s.Submit(adets.Request{
			Logical: "origin",
			Exec: func(th *adets.Thread) {
				rt.Lock()
				order = append(order, "nested-start")
				nested = th
				rt.Unlock()
				s.BeginNested(th)
				rt.Lock()
				order = append(order, "nested-end")
				rt.Unlock()
				done.Put(struct{}{})
			},
		})
		rt.Sleep(1000) // origin is now parked in the nested invocation
		s.Submit(adets.Request{
			Logical:  "origin",
			Callback: true,
			Exec: func(th *adets.Thread) {
				if th.Logical != "origin" {
					t.Errorf("callback thread logical = %q, want origin", th.Logical)
				}
				rt.Lock()
				order = append(order, "callback")
				rt.Unlock()
				done.Put(struct{}{})
			},
		})
		done.Get() // the callback completes while origin is still blocked
		rt.Lock()
		got := append([]string(nil), order...)
		rt.Unlock()
		if len(got) != 2 || got[0] != "nested-start" || got[1] != "callback" {
			t.Fatalf("order while nested = %v, want [nested-start callback]", got)
		}
		s.EndNested(nested)
		done.Get()
		s.Stop()
	})
	if order[len(order)-1] != "nested-end" {
		t.Errorf("order = %v, want nested-end last", order)
	}
}

// TestCallbackOvertakesQueuedRequests: a callback does not queue behind
// ordinary requests — it is spawned directly, so it completes even while the
// single worker is occupied by a long-running request.
func TestCallbackOvertakesQueuedRequests(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	var order []string
	vtime.Run(rt, "main", func() {
		gate := vtime.NewMailbox[struct{}](rt, "gate")
		done := vtime.NewMailbox[struct{}](rt, "done")
		s.Submit(adets.Request{
			Logical: "long",
			Exec: func(*adets.Thread) {
				rt.Lock()
				order = append(order, "long")
				rt.Unlock()
				gate.Get() // hold the worker
				done.Put(struct{}{})
			},
		})
		s.Submit(adets.Request{
			Logical: "queued",
			Exec: func(*adets.Thread) {
				rt.Lock()
				order = append(order, "queued")
				rt.Unlock()
				done.Put(struct{}{})
			},
		})
		rt.Sleep(1000) // "long" occupies the worker; "queued" waits
		s.Submit(adets.Request{
			Logical:  "long",
			Callback: true,
			Exec: func(*adets.Thread) {
				rt.Lock()
				order = append(order, "callback")
				rt.Unlock()
				done.Put(struct{}{})
			},
		})
		done.Get() // callback finishes while the worker is still held
		gate.Put(struct{}{})
		done.Get()
		done.Get()
		s.Stop()
	})
	want := []string{"long", "callback", "queued"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %q, want %q", i, order[i], want[i])
		}
	}
}

// TestWaitUnsupportedDeterministically: like Eternal, SL offers no condition
// variables — Wait/Notify must fail fast with ErrUnsupported for any timeout
// without arming timers or advancing virtual time.
func TestWaitUnsupportedDeterministically(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	vtime.Run(rt, "main", func() {
		done := vtime.NewMailbox[struct{}](rt, "done")
		s.Submit(adets.Request{
			Logical: "a",
			Exec: func(th *adets.Thread) {
				before := rt.Now()
				for _, d := range []time.Duration{0, time.Millisecond, time.Hour} {
					if fired, err := s.Wait(th, "m", "c", d); err != adets.ErrUnsupported || fired {
						t.Errorf("Wait(%v) = (%v, %v), want (false, ErrUnsupported)", d, fired, err)
					}
				}
				if err := s.Notify(th, "m", "c"); err != adets.ErrUnsupported {
					t.Errorf("Notify = %v, want ErrUnsupported", err)
				}
				if err := s.NotifyAll(th, "m", "c"); err != adets.ErrUnsupported {
					t.Errorf("NotifyAll = %v, want ErrUnsupported", err)
				}
				if rt.Now() != before {
					t.Errorf("unsupported Wait advanced virtual time by %v", rt.Now()-before)
				}
				done.Put(struct{}{})
			},
		})
		done.Get()
		s.Stop()
	})
}

func TestSubmitAfterStopIsNoop(t *testing.T) {
	s, rt := newBare()
	defer rt.Stop()
	vtime.Run(rt, "main", func() {
		done := vtime.NewMailbox[struct{}](rt, "done")
		s.Submit(adets.Request{Logical: "a", Exec: func(*adets.Thread) { done.Put(struct{}{}) }})
		done.Get()
		s.Stop()
		s.Submit(adets.Request{Logical: "late", Exec: func(*adets.Thread) {
			t.Error("request executed after Stop")
		}})
		s.Submit(adets.Request{Logical: "late-cb", Callback: true, Exec: func(*adets.Thread) {
			t.Error("callback executed after Stop")
		}})
		rt.Sleep(1000)
	})
}
