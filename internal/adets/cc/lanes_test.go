package cc

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestLaneOfRangeAndStability(t *testing.T) {
	for _, lanes := range []int{1, 2, 8, 13, 64} {
		for _, class := range []string{"", "a", "b", "shard0", "shard7", "ledger3", "€"} {
			l := LaneOf(class, lanes)
			if l < 0 || l >= lanes {
				t.Fatalf("LaneOf(%q, %d) = %d out of range", class, lanes, l)
			}
			if again := LaneOf(class, lanes); again != l {
				t.Fatalf("LaneOf(%q, %d) unstable: %d then %d", class, lanes, l, again)
			}
		}
	}
	if LaneOf("x", 0) != 0 || LaneOf("x", -3) != 0 {
		t.Fatal("non-positive lane count must map to lane 0")
	}
}

func TestAssignLanesGlobal(t *testing.T) {
	for _, lanes := range []int{1, 4, 8} {
		want := make([]int, lanes)
		for i := range want {
			want[i] = i
		}
		if got := AssignLanes(nil, lanes); !reflect.DeepEqual(got, want) {
			t.Errorf("AssignLanes(nil, %d) = %v, want all lanes %v", lanes, got, want)
		}
		if got := AssignLanes([]string{}, lanes); !reflect.DeepEqual(got, want) {
			t.Errorf("AssignLanes([], %d) = %v, want all lanes %v", lanes, got, want)
		}
	}
}

func TestAssignLanesSortedUniqueAndOrderFree(t *testing.T) {
	classes := []string{"a", "b", "c", "a", "b"}
	lanes := 8
	got := AssignLanes(classes, lanes)
	if !sort.IntsAreSorted(got) {
		t.Fatalf("not sorted: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("duplicate lane: %v", got)
		}
	}
	rev := []string{"b", "a", "b", "c", "a"}
	if other := AssignLanes(rev, lanes); !reflect.DeepEqual(got, other) {
		t.Fatalf("assignment depends on class declaration order: %v vs %v", got, other)
	}
}

// TestPureFunctionOfOrderedPrefix simulates three replicas consuming the
// same totally ordered stream of class declarations with different
// (irrelevant) local conditions — processing in one pass, in chunks, and
// interleaved with unrelated work — and asserts they compute identical
// lane-assignment sequences. The assignment must depend on nothing but the
// ordered prefix itself.
func TestPureFunctionOfOrderedPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	classPool := []string{"u", "v", "w", "x", "y", "z", "shardA", "shardB"}
	var stream [][]string
	for i := 0; i < 200; i++ {
		switch rng.Intn(4) {
		case 0:
			stream = append(stream, nil) // global
		default:
			k := 1 + rng.Intn(3)
			var cs []string
			for j := 0; j < k; j++ {
				cs = append(cs, classPool[rng.Intn(len(classPool))])
			}
			stream = append(stream, cs)
		}
	}
	const lanes = 8
	assign := func() [][]int {
		out := make([][]int, len(stream))
		for i, cs := range stream {
			out[i] = AssignLanes(cs, lanes)
		}
		return out
	}
	ref := assign()
	// "Replica 2": chunked processing.
	var chunked [][]int
	for lo := 0; lo < len(stream); lo += 7 {
		hi := lo + 7
		if hi > len(stream) {
			hi = len(stream)
		}
		for _, cs := range stream[lo:hi] {
			chunked = append(chunked, AssignLanes(cs, lanes))
		}
	}
	// "Replica 3": reversed evaluation (results placed by index).
	reversed := make([][]int, len(stream))
	for i := len(stream) - 1; i >= 0; i-- {
		reversed[i] = AssignLanes(stream[i], lanes)
	}
	if !reflect.DeepEqual(ref, chunked) || !reflect.DeepEqual(ref, reversed) {
		t.Fatal("lane assignment is not a pure function of the ordered prefix")
	}
}

// FuzzAssignLanes fuzzes (class set, lane count) and checks the assignment
// invariants: in range, sorted, duplicate-free, deterministic, independent
// of declaration order, and global (= all lanes) for the empty set.
func FuzzAssignLanes(f *testing.F) {
	f.Add("a,b,c", uint8(8))
	f.Add("", uint8(4))
	f.Add("shard0,shard0,shard1", uint8(1))
	f.Add("x", uint8(255))
	f.Fuzz(func(t *testing.T, csv string, lanesByte uint8) {
		lanes := 1 + int(lanesByte)%64
		var classes []string
		if csv != "" {
			classes = strings.Split(csv, ",")
		}
		got := AssignLanes(classes, lanes)
		if len(got) == 0 {
			t.Fatal("empty assignment")
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("not sorted: %v", got)
		}
		for i, l := range got {
			if l < 0 || l >= lanes {
				t.Fatalf("lane %d out of [0,%d)", l, lanes)
			}
			if i > 0 && got[i-1] == l {
				t.Fatalf("duplicate lane %d", l)
			}
		}
		if again := AssignLanes(classes, lanes); !reflect.DeepEqual(got, again) {
			t.Fatalf("nondeterministic: %v vs %v", got, again)
		}
		if len(classes) > 1 {
			rev := make([]string, len(classes))
			for i, c := range classes {
				rev[len(classes)-1-i] = c
			}
			if other := AssignLanes(rev, lanes); !reflect.DeepEqual(got, other) {
				t.Fatalf("order-dependent: %v vs %v", got, other)
			}
		}
		if len(classes) == 0 && len(got) != lanes {
			t.Fatalf("global must span all %d lanes, got %v", lanes, got)
		}
	})
}
