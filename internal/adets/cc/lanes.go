package cc

import (
	"hash/fnv"
	"sort"
)

// LaneOf maps a conflict class to its worker lane. The mapping is a pure
// function of the class name and the lane count (FNV-1a over the class
// bytes, reduced modulo lanes): no replica rank, arrival time, or prior
// scheduling state enters, so every replica agrees on it by construction.
func LaneOf(class string, lanes int) int {
	if lanes <= 0 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(class))
	return int(h.Sum32() % uint32(lanes))
}

// AssignLanes maps a request's declared conflict classes to the sorted,
// duplicate-free set of lanes the request must occupy. An empty class set
// is the "global" declaration: the request conflicts with everything and
// occupies every lane, turning it into an all-lane barrier.
//
// Like LaneOf, the result depends only on the inputs — it is the pure
// function of the ordered prefix that the determinism argument of
// conflict-class dispatch rests on.
func AssignLanes(classes []string, lanes int) []int {
	if lanes <= 0 {
		lanes = 1
	}
	if len(classes) == 0 {
		all := make([]int, lanes)
		for i := range all {
			all[i] = i
		}
		return all
	}
	set := make(map[int]struct{}, len(classes))
	for _, c := range classes {
		set[LaneOf(c, lanes)] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}
