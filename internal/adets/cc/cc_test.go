package cc_test

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/adets/cc"
	"github.com/replobj/replobj/internal/adets/schedtest"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/wire"
)

const timeout = 30 * time.Second

func newCluster(n int, opts ...cc.Option) *schedtest.Cluster {
	return schedtest.New(n, func(int) adets.Scheduler { return cc.New(opts...) })
}

// TestCrossClassParallel: requests of disjoint classes overlap in (virtual)
// time — the whole point of conflict-class dispatch.
func TestCrossClassParallel(t *testing.T) {
	if cc.LaneOf("a", cc.DefaultLanes) == cc.LaneOf("b", cc.DefaultLanes) {
		t.Fatal("test classes collide on one lane; pick different names")
	}
	c := newCluster(1)
	c.Run(func() {
		start := c.RT.Now()
		for _, class := range []string{"a", "b"} {
			c.SubmitClasses(wire.LogicalID("L-"+class), false, []string{class}, func(ic *schedtest.Ictx) {
				ic.Compute(10 * time.Millisecond)
			})
		}
		if _, err := c.Await(2, timeout); err != nil {
			t.Fatal(err)
		}
		if el := c.RT.Now() - start; el >= 20*time.Millisecond {
			t.Fatalf("cross-class requests serialized: elapsed %v", el)
		}
	})
}

// TestSameClassSerializesInOrder: same-class requests run one at a time in
// total (submission) order, on every replica.
func TestSameClassSerializesInOrder(t *testing.T) {
	c := newCluster(3)
	var want []string
	c.Run(func() {
		for k := 0; k < 4; k++ {
			name := fmt.Sprintf("L%d", k)
			want = append(want, "start "+name, "end "+name)
			c.SubmitClasses(wire.LogicalID(name), false, []string{"x"}, func(ic *schedtest.Ictx) {
				ic.Trace("start %s", name)
				ic.Compute(2 * time.Millisecond)
				ic.Trace("end %s", name)
			})
		}
		if _, err := c.Await(4, timeout); err != nil {
			t.Fatal(err)
		}
		for i, tr := range c.Traces() {
			if !reflect.DeepEqual(tr, want) {
				t.Errorf("replica %d: trace %v, want %v", i, tr, want)
			}
		}
	})
}

// TestGlobalBarrier: a request without declared classes occupies every lane
// — it waits for everything ordered before it and blocks everything ordered
// after it.
func TestGlobalBarrier(t *testing.T) {
	c := newCluster(1)
	c.Run(func() {
		submit := func(name string, classes []string) {
			c.SubmitClasses(wire.LogicalID(name), false, classes, func(ic *schedtest.Ictx) {
				ic.Trace("start %s", name)
				ic.Compute(5 * time.Millisecond)
				ic.Trace("end %s", name)
			})
		}
		submit("A", []string{"a"})
		submit("G", nil) // global
		submit("B", []string{"b"})
		if _, err := c.Await(3, timeout); err != nil {
			t.Fatal(err)
		}
		want := []string{"start A", "end A", "start G", "end G", "start B", "end B"}
		if tr := c.Traces()[0]; !reflect.DeepEqual(tr, want) {
			t.Fatalf("trace %v, want %v", tr, want)
		}
	})
}

// TestCallbackBypassesLanes: a callback of a logical thread whose
// originator is parked at the head of the callback's own class lane must
// not queue behind it — it runs immediately (lane bypass), or the nested
// chain deadlocks.
func TestCallbackBypassesLanes(t *testing.T) {
	c := newCluster(3)
	c.Run(func() {
		logical := wire.LogicalID("orig")
		c.SubmitClasses(logical, false, []string{"a"}, func(ic *schedtest.Ictx) {
			ic.Trace("pre")
			ic.Nested(20 * time.Millisecond)
			ic.Trace("post")
		})
		c.RT.Sleep(5 * time.Millisecond)
		c.SubmitClasses(logical, true, []string{"a"}, func(ic *schedtest.Ictx) {
			ic.Trace("cb")
		})
		if _, err := c.Await(2, timeout); err != nil {
			t.Fatal(err)
		}
		want := []string{"pre", "cb", "post"}
		for i, tr := range c.Traces() {
			if !reflect.DeepEqual(tr, want) {
				t.Errorf("replica %d: trace %v, want %v", i, tr, want)
			}
		}
	})
}

// TestNestedDoesNotBlockOtherClasses: while a request is blocked in a
// nested invocation, requests of disjoint classes complete (the generic
// TestNestedInvocationsDontBlockOthers excludes CC because undeclared
// classes mean "global"; with classes declared the property holds).
func TestNestedDoesNotBlockOtherClasses(t *testing.T) {
	c := newCluster(1)
	c.Run(func() {
		c.SubmitClasses(wire.LogicalID("nester"), false, []string{"a"}, func(ic *schedtest.Ictx) {
			ic.Nested(50 * time.Millisecond)
		})
		c.SubmitClasses(wire.LogicalID("quick"), false, []string{"b"}, func(ic *schedtest.Ictx) {
			ic.Compute(time.Millisecond)
		})
		order, err := c.Await(2, timeout)
		if err != nil {
			t.Errorf("await: %v", err)
			return
		}
		if !reflect.DeepEqual(order[0], []string{"quick", "nester"}) {
			t.Errorf("completion order = %v, want quick before nester", order[0])
		}
	})
}

// TestViewChangeFence: a view change drains every lane before any request
// ordered after it may start, even on an otherwise free lane.
func TestViewChangeFence(t *testing.T) {
	c := newCluster(1)
	c.Run(func() {
		c.SubmitClasses(wire.LogicalID("R1"), false, []string{"a"}, func(ic *schedtest.Ictx) {
			ic.Trace("start R1")
			ic.Compute(10 * time.Millisecond)
			ic.Trace("end R1")
		})
		c.ViewChange(gcs.View{Epoch: 1})
		c.SubmitClasses(wire.LogicalID("R2"), false, []string{"b"}, func(ic *schedtest.Ictx) {
			ic.Trace("start R2")
			ic.Trace("end R2")
		})
		if _, err := c.Await(2, timeout); err != nil {
			t.Fatal(err)
		}
		want := []string{"start R1", "end R1", "start R2", "end R2"}
		if tr := c.Traces()[0]; !reflect.DeepEqual(tr, want) {
			t.Fatalf("trace %v, want %v (view fence did not drain lane a)", tr, want)
		}
	})
}

// TestMixedWorkloadDeterministicAcrossReplicas: with several classes in
// flight the global interleaving is real-time dependent, but the per-class
// execution order must be identical on every replica (and equal to the
// submission order of that class).
func TestMixedWorkloadDeterministicAcrossReplicas(t *testing.T) {
	c := newCluster(3)
	classes := []string{"x", "y", "z"}
	want := make(map[string][]string)
	c.Run(func() {
		for k := 0; k < 9; k++ {
			class := classes[k%len(classes)]
			name := fmt.Sprintf("%s:L%d", class, k)
			want[class] = append(want[class], name)
			c.SubmitClasses(wire.LogicalID(name), false, []string{class}, func(ic *schedtest.Ictx) {
				ic.Compute(time.Duration(1+k%3) * time.Millisecond)
				ic.Trace("%s", name)
			})
		}
		if _, err := c.Await(9, timeout); err != nil {
			t.Fatal(err)
		}
		for i, tr := range c.Traces() {
			got := make(map[string][]string)
			for _, e := range tr {
				class := strings.SplitN(e, ":", 2)[0]
				got[class] = append(got[class], e)
			}
			for _, class := range classes {
				if !reflect.DeepEqual(got[class], want[class]) {
					t.Errorf("replica %d class %s: order %v, want %v", i, class, got[class], want[class])
				}
			}
		}
	})
}

// TestLockWithinClassAndUnsupportedOps: locks work (reentrantly) inside a
// class; condition variables are ErrUnsupported like SEQ and basic SAT.
func TestLockWithinClassAndUnsupportedOps(t *testing.T) {
	c := newCluster(1)
	c.Run(func() {
		c.SubmitClasses(wire.LogicalID("L"), false, []string{"a"}, func(ic *schedtest.Ictx) {
			if err := ic.Lock("m"); err != nil {
				ic.Trace("lock err %v", err)
				return
			}
			if err := ic.Lock("m"); err != nil { // reentrant
				ic.Trace("relock err %v", err)
				return
			}
			ic.Trace("depth %d", ic.Depth("m"))
			if _, err := ic.Wait("m", "", 0); !errors.Is(err, adets.ErrUnsupported) {
				ic.Trace("wait err %v", err)
			}
			if err := ic.Notify("m", ""); !errors.Is(err, adets.ErrUnsupported) {
				ic.Trace("notify err %v", err)
			}
			_ = ic.Unlock("m")
			_ = ic.Unlock("m")
			ic.Trace("done depth %d", ic.Depth("m"))
		})
		if _, err := c.Await(1, timeout); err != nil {
			t.Fatal(err)
		}
		want := []string{"depth 2", "done depth 0"}
		if tr := c.Traces()[0]; !reflect.DeepEqual(tr, want) {
			t.Fatalf("trace %v, want %v", tr, want)
		}
	})
}

// TestCapabilities pins the Table 1 row of the extension.
func TestCapabilities(t *testing.T) {
	s := cc.New()
	if s.Name() != "ADETS-CC" {
		t.Errorf("Name() = %q", s.Name())
	}
	caps := s.Capabilities()
	if caps.Multithreading != "MA (classes)" || caps.Coordination != "Locks" || caps.DeadlockFree != "NI+CB" {
		t.Errorf("unexpected Table 1 row: %+v", caps)
	}
	if caps.ConditionVars || caps.TimedWait {
		t.Errorf("CC must not advertise condition variables: %+v", caps)
	}
	if !caps.ReentrantLocks || !caps.NestedInvocations || !caps.Callbacks {
		t.Errorf("CC must support reentrant locks, NI and CB: %+v", caps)
	}
	if s.LaneCount() != cc.DefaultLanes {
		t.Errorf("LaneCount() = %d, want %d", s.LaneCount(), cc.DefaultLanes)
	}
	if got := cc.New(cc.WithLanes(4)).LaneCount(); got != 4 {
		t.Errorf("WithLanes(4): LaneCount() = %d", got)
	}
}
