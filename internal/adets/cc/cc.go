// Package cc implements ADETS-CC, conflict-class parallel dispatch — the
// first strategy in this codebase that parallelizes the *dispatch* layer
// rather than only the lock layer. It follows the Early Scheduling line of
// work on parallel state-machine replication (Alchieri et al., "Early
// Scheduling in Parallel State Machine Replication"; Marandi & Pedone,
// "Optimistic Parallel State-Machine Replication"): the application
// declares, per request, which conflict classes the request touches; the
// sequencer's total order is then partitioned deterministically onto a
// fixed pool of worker lanes (one lane per class, hash-mapped), and
// requests whose class sets are disjoint execute truly in parallel.
//
// Determinism argument: lane assignment is a pure function of the request
// content and the lane count (see AssignLanes), and every enqueue happens
// at the totally-ordered submit point, so all replicas build byte-identical
// lane queues. Within a lane, requests execute in queue (= total) order;
// a request occupying several lanes — including the "global" request that
// declared no classes and therefore occupies every lane — only starts once
// it heads *all* its lanes, which makes it a deterministic barrier. Because
// conflicting requests always share a lane, any state they both touch is
// accessed in total order on every replica; the real-time interleaving of
// non-conflicting requests across lanes is invisible to replicated state by
// construction, which is exactly why it may remain unobserved by the trace
// digests (only the deterministic lane *assignment* is traced, never the
// cross-lane start order).
//
// View changes insert a fence — a ticket spanning every lane — at their
// totally-ordered delivery point: all requests ordered before the view
// drain from their lanes before any request ordered after it starts, giving
// deterministic lane draining on membership changes.
package cc

import (
	"strconv"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/wire"
)

// DefaultLanes is the worker-lane pool size when none is configured.
const DefaultLanes = 8

// Option configures the scheduler.
type Option func(*Scheduler)

// WithLanes sets the worker-lane pool size. All replicas of a group must
// use the same value — the lane count is an input of the deterministic
// class→lane mapping.
func WithLanes(n int) Option {
	return func(s *Scheduler) {
		if n > 0 {
			s.laneCount = n
		}
	}
}

// ticket is one lane-queue entry: a request occupying its assigned lanes,
// or a fence (t == nil is never used; fence tickets carry fence == true and
// span every lane).
type ticket struct {
	t     *adets.Thread
	lanes []int // sorted, duplicate-free; empty for callbacks (lane bypass)
	fence bool

	started      bool // allowed to run (or fence completed)
	parked       bool // goroutine parked awaiting first activation
	blockT0      time.Duration
	lockBlocked  bool // parked in Lock awaiting a grant
	nested       bool // parked in BeginNested
	pendingReply bool // nested reply arrived before the thread parked
}

type lockState struct {
	owner   wire.LogicalID
	waiters adets.FIFO
}

// Scheduler implements adets.Scheduler with conflict-class parallel
// dispatch (MA over declared classes).
type Scheduler struct {
	env       adets.Env
	reg       *adets.Registry
	laneCount int

	// All fields below are guarded by the runtime lock.
	queues  [][]*ticket // one FIFO of tickets per lane
	locks   map[adets.MutexID]*lockState
	threads map[*adets.Thread]bool
	stopped bool
	quiesce func(drained bool)

	// early caches lane plans computed at optimistic-delivery time (see
	// adets.EarlyScheduler); earlyOrder bounds it FIFO.
	early      map[wire.InvocationID][]int
	earlyOrder []wire.InvocationID
}

var (
	_ adets.Scheduler      = (*Scheduler)(nil)
	_ adets.EarlyScheduler = (*Scheduler)(nil)
)

// New returns an ADETS-CC scheduler.
func New(opts ...Option) *Scheduler {
	s := &Scheduler{
		laneCount: DefaultLanes,
		locks:     make(map[adets.MutexID]*lockState),
		threads:   make(map[*adets.Thread]bool),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name implements adets.Scheduler.
func (s *Scheduler) Name() string { return "ADETS-CC" }

// LaneCount returns the configured worker-lane pool size.
func (s *Scheduler) LaneCount() int { return s.laneCount }

// Capabilities implements adets.Scheduler. Like basic SAT, ADETS-CC offers
// plain (framework-reentrant) locks but no condition variables: a
// deterministic notify/wait race across parallel lanes would reintroduce
// the cross-lane ordering the strategy exists to avoid.
func (s *Scheduler) Capabilities() adets.Capabilities {
	return adets.Capabilities{
		Coordination:      "Locks",
		DeadlockFree:      "NI+CB",
		Deployment:        "manual",
		Multithreading:    "MA (classes)",
		ReentrantLocks:    true,
		NestedInvocations: true,
		Callbacks:         true,
	}
}

// Start implements adets.Scheduler.
func (s *Scheduler) Start(env adets.Env) {
	s.env = env
	s.reg = adets.NewRegistry(env.RT)
	s.queues = make([][]*ticket, s.laneCount)
	env.Obs.Lanes(s.laneCount)
}

// Stop implements adets.Scheduler: blocked threads are woken and their
// pending operations fail with ErrStopped.
func (s *Scheduler) Stop() {
	rt := s.env.RT
	rt.Lock()
	s.stopped = true
	for t := range s.threads {
		t.Unpark(rt)
	}
	rt.Unlock()
}

func (s *Scheduler) isStopped() bool {
	s.env.RT.Lock()
	defer s.env.RT.Unlock()
	return s.stopped
}

func st(t *adets.Thread) *ticket { return t.Sched.(*ticket) }

// Submit implements adets.Scheduler. It runs at the totally-ordered
// delivery point: the lane assignment computed here is a pure function of
// the ordered request stream and is recorded into the per-lane trace
// streams. Callbacks bypass the lanes entirely — the originating thread of
// the logical chain is parked at the head of its lanes, so queueing the
// callback behind it would deadlock; running it immediately is safe because
// it belongs to the same logical thread (paper Section 3.1).
func (s *Scheduler) Submit(req adets.Request) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return
	}
	s.env.Obs.Submitted()
	t := s.reg.NewThread("cc/"+string(req.Logical), req.Logical)
	tk := &ticket{t: t}
	t.Sched = tk
	s.threads[t] = true
	if req.Callback {
		tk.started = true // lane bypass: run immediately
	} else {
		// The trace position is the total-order seq of the delivery, not a
		// local submission count — a replica restored from a checkpoint never
		// saw the truncated prefix, but its lane trace must still line up
		// with replicas that executed it.
		pos := strconv.FormatUint(req.Seq, 10)
		tk.lanes = s.takeEarlyPlanLocked(req.ID, req.Classes)
		for _, l := range tk.lanes {
			s.queues[l] = append(s.queues[l], tk)
			s.env.Obs.LaneAssign(l, string(req.Logical), pos)
		}
	}
	s.reg.Spawn(t, func() {
		rt.Lock()
		for !tk.started && !s.stopped {
			tk.parked = true
			s.checkQuiesceLocked()
			t.Park(rt)
			tk.parked = false
		}
		rt.Unlock()
		if !s.isStopped() {
			req.Exec(t)
		}
		s.threadDone(t)
	})
	if !tk.started {
		s.pumpLocked()
	}
}

func (s *Scheduler) threadDone(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	delete(s.threads, t)
	s.removeLocked(st(t))
	s.pumpLocked()
	s.checkQuiesceLocked()
	rt.Unlock()
}

// removeLocked deletes a ticket from every lane it occupies.
func (s *Scheduler) removeLocked(tk *ticket) {
	for _, l := range tk.lanes {
		q := s.queues[l]
		for i, x := range q {
			if x == tk {
				s.queues[l] = append(q[:i], q[i+1:]...)
				break
			}
		}
	}
}

// eligibleLocked reports whether tk heads every lane it occupies — the
// start condition that turns multi-lane tickets into barriers. Because all
// tickets enqueue atomically in total order, a ticket only ever waits for
// earlier-ordered tickets: the cross-lane wait-for relation follows the
// total order and cannot cycle.
func (s *Scheduler) eligibleLocked(tk *ticket) bool {
	for _, l := range tk.lanes {
		if len(s.queues[l]) == 0 || s.queues[l][0] != tk {
			return false
		}
	}
	return true
}

// pumpLocked starts every eligible lane head and completes eligible
// fences, repeating until no further progress — a fence completing can
// unblock heads in all lanes at once.
func (s *Scheduler) pumpLocked() {
	if s.stopped {
		return
	}
	for progressed := true; progressed; {
		progressed = false
		for l := 0; l < s.laneCount; l++ {
			q := s.queues[l]
			if len(q) == 0 {
				continue
			}
			h := q[0]
			if h.started || !s.eligibleLocked(h) {
				continue
			}
			progressed = true
			if h.fence {
				s.removeLocked(h)
				continue
			}
			h.started = true
			for _, hl := range h.lanes {
				s.env.Obs.LaneStart(hl)
			}
			if h.parked {
				h.t.Unpark(s.env.RT)
			}
		}
	}
}

func (s *Scheduler) lock(m adets.MutexID) *lockState {
	ls, ok := s.locks[m]
	if !ok {
		ls = &lockState{}
		s.locks[m] = ls
	}
	return ls
}

// Lock implements adets.Scheduler. Under correct class declarations every
// pair of requests locking the same mutex shares a conflict class and is
// therefore serialized by the lanes — the uncontended path is the common
// one, and the grant order per mutex is the lane (= total) order. The
// blocking path exists for defense in depth against mis-declared classes;
// it grants FIFO, which the chaos digests then validate.
func (s *Scheduler) Lock(t *adets.Thread, m adets.MutexID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner == "" {
		ls.owner = t.Logical
		s.env.Obs.Grant(m, string(t.Logical))
		return nil
	}
	var t0 time.Duration
	if s.env.Obs != nil {
		s.env.Obs.Blocked()
		t0 = rt.NowLocked()
	}
	ls.waiters.Push(t)
	tk := st(t)
	tk.lockBlocked = true
	s.checkQuiesceLocked()
	t.Park(rt)
	tk.lockBlocked = false
	if s.stopped {
		s.env.Obs.Unblocked()
		return adets.ErrStopped
	}
	if s.env.Obs != nil {
		s.env.Obs.GrantedAfterBlock(m, string(t.Logical), rt.NowLocked()-t0)
	}
	// Woken ⇒ granted ownership by releaseLocked.
	return nil
}

// Unlock implements adets.Scheduler.
func (s *Scheduler) Unlock(t *adets.Thread, m adets.MutexID) error {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return adets.ErrStopped
	}
	ls := s.lock(m)
	if ls.owner != t.Logical {
		return adets.ErrNotHeld
	}
	s.env.Obs.Unlock(m, string(t.Logical))
	w := ls.waiters.Pop()
	if w == nil {
		ls.owner = ""
		return nil
	}
	ls.owner = w.Logical
	s.env.Obs.Grant(m, string(w.Logical))
	st(w).lockBlocked = false // cleared by the granter: the permit is pending
	w.Unpark(rt)
	return nil
}

// Wait implements adets.Scheduler: unsupported. A deterministic
// notification order across concurrently executing lanes would require a
// cross-lane synchronization point, defeating the strategy; object code
// falls back to polling, as under SEQ and basic SAT.
func (s *Scheduler) Wait(*adets.Thread, adets.MutexID, adets.CondID, time.Duration) (bool, error) {
	return false, adets.ErrUnsupported
}

// Notify implements adets.Scheduler (unsupported).
func (s *Scheduler) Notify(*adets.Thread, adets.MutexID, adets.CondID) error {
	return adets.ErrUnsupported
}

// NotifyAll implements adets.Scheduler (unsupported).
func (s *Scheduler) NotifyAll(*adets.Thread, adets.MutexID, adets.CondID) error {
	return adets.ErrUnsupported
}

// Yield implements adets.Scheduler (no-op: lanes already run in parallel;
// within a lane, yielding to a later-ordered request would break the
// per-class total order).
func (s *Scheduler) Yield(*adets.Thread) {}

// BeginNested implements adets.Scheduler: the thread parks until the
// totally-ordered reply resumes it. It keeps occupying its lanes while
// nested, so later same-class requests stay queued behind it — per-class
// program order is preserved; callbacks of the same logical thread bypass
// the lanes (see Submit) and therefore still make progress.
func (s *Scheduler) BeginNested(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	tk := st(t)
	if tk.pendingReply {
		tk.pendingReply = false
		rt.Unlock()
		return
	}
	tk.nested = true
	s.checkQuiesceLocked()
	t.Park(rt)
	tk.nested = false
	rt.Unlock()
}

// EndNested implements adets.Scheduler.
func (s *Scheduler) EndNested(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	tk := st(t)
	if !tk.nested {
		tk.pendingReply = true // reply beat the park (real-time race)
		return
	}
	t.Unpark(rt)
}

// maxEarlyPlans bounds the early-plan cache: requests that are optimistically
// delivered but never ordered (lost submits) must not pin memory.
const maxEarlyPlans = 1 << 12

// EarlySubmit implements adets.EarlyScheduler: the class→lane assignment is
// computed at optimistic-delivery time and cached for the ordered Submit.
// AssignLanes is a pure function of (classes, laneCount), so the cached
// plan is byte-identical to what Submit would compute — early scheduling
// moves work off the ordered path without entering any scheduling state,
// and nothing is recorded into the (ordered-only) trace streams.
func (s *Scheduler) EarlySubmit(id wire.InvocationID, classes []string) {
	rt := s.env.RT
	if rt == nil {
		return // not started
	}
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return
	}
	if _, ok := s.early[id]; ok {
		return
	}
	if s.early == nil {
		s.early = make(map[wire.InvocationID][]int)
	}
	if len(s.earlyOrder) >= maxEarlyPlans {
		old := s.earlyOrder[0]
		s.earlyOrder = s.earlyOrder[1:]
		delete(s.early, old)
	}
	s.early[id] = AssignLanes(classes, s.laneCount)
	s.earlyOrder = append(s.earlyOrder, id)
}

// takeEarlyPlanLocked consumes the cached early lane plan for id, falling
// back to computing it fresh — both paths yield the same plan.
func (s *Scheduler) takeEarlyPlanLocked(id wire.InvocationID, classes []string) []int {
	if plan, ok := s.early[id]; ok {
		delete(s.early, id)
		return plan
	}
	return AssignLanes(classes, s.laneCount)
}

// ViewChanged implements adets.Scheduler: a fence spanning every lane is
// inserted at the view's totally-ordered delivery position, draining all
// requests ordered before the membership change from their lanes before
// any request ordered after it may start.
func (s *Scheduler) ViewChanged(v gcs.View) {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	if s.stopped {
		return
	}
	s.env.Obs.ViewChange(v.Epoch)
	s.env.Obs.FenceInserted()
	f := &ticket{fence: true, lanes: make([]int, s.laneCount)}
	for i := range f.lanes {
		f.lanes[i] = i
	}
	for _, l := range f.lanes {
		s.queues[l] = append(s.queues[l], f)
	}
	s.pumpLocked()
}

// Quiesce implements adets.Scheduler. CC is stable when every ticket is
// parked for good until a future delivery: awaiting its lane activation
// (which, with dispatch paused, only a completing earlier ticket can
// trigger — covered by the threadDone re-check), blocked on a lock, or
// parked in a nested invocation. Fences carry no thread and are removed
// eagerly by pumpLocked, so an empty thread set implies empty lanes — the
// all-lane drain the barrier semantics require.
func (s *Scheduler) Quiesce(report func(drained bool)) {
	rt := s.env.RT
	rt.Lock()
	s.quiesce = report
	s.checkQuiesceLocked()
	rt.Unlock()
}

func (s *Scheduler) checkQuiesceLocked() {
	if s.quiesce == nil {
		return
	}
	for t := range s.threads {
		tk := st(t)
		stable := (!tk.started && tk.parked) || tk.nested || tk.lockBlocked
		if !stable {
			return
		}
	}
	report := s.quiesce
	s.quiesce = nil
	if len(s.threads) == 0 {
		// Drained boundary: drop cached early plans. They are arrival-time
		// hints, not ordered state — a checkpoint cut (and any replica
		// restored from it) must not depend on what happened to arrive
		// optimistically here; un-ordered requests recompute their plan at
		// their ordered Submit.
		s.early = nil
		s.earlyOrder = nil
	}
	report(len(s.threads) == 0)
}

// HandleOrdered implements adets.Scheduler.
func (s *Scheduler) HandleOrdered(string, any) bool { return false }

// HandleDirect implements adets.Scheduler.
func (s *Scheduler) HandleDirect(wire.NodeID, any) bool { return false }
