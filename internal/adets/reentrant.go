package adets

import (
	"time"

	"github.com/replobj/replobj/internal/wire"
)

// Reentrancy implements reentrant locks on top of any scheduler that
// supports plain locks, exactly as the paper prescribes (Section 4): a
// per-(logical thread, mutex) hold counter, with only the 0→1 and 1→0
// transitions reaching the underlying algorithm.
//
// Hold counts are keyed by *logical* thread, so a callback executing on an
// extra physical thread may re-enter a mutex held by its originating
// request (the SA+L and MA models of Section 3.1).
//
// The invocation context owns one Reentrancy per scheduler instance. All
// methods require the runtime lock NOT to be held; they delegate blocking
// operations to the scheduler, which synchronizes internally.
type Reentrancy struct {
	sched Scheduler
	// holds is only mutated while the runtime lock is held via the
	// scheduler's internal synchronization... it is not: Lock/Unlock below
	// run outside the runtime lock, so Reentrancy brings its own discipline:
	// entries for a logical thread are only touched by physical threads of
	// that logical thread, which never run concurrently with each other
	// except callbacks — and a callback only runs while its originator is
	// blocked in a nested invocation. A plain map with the runtime lock
	// held for map mutation keeps the race detector satisfied.
	rt interface {
		Lock()
		Unlock()
	}
	holds map[holdKey]int
	obs   *SchedObs
}

type holdKey struct {
	logical wire.LogicalID
	mutex   MutexID
}

// NewReentrancy returns a reentrancy layer over sched.
func NewReentrancy(rt interface {
	Lock()
	Unlock()
}, sched Scheduler) *Reentrancy {
	return &Reentrancy{sched: sched, rt: rt, holds: make(map[holdKey]int)}
}

// SetObs attaches observability hooks (sampling re-entry depths). Must be
// called before the scheduler starts taking requests.
func (r *Reentrancy) SetObs(o *SchedObs) { r.obs = o }

// Lock acquires m for t, counting re-entries.
func (r *Reentrancy) Lock(t *Thread, m MutexID) error {
	k := holdKey{t.Logical, m}
	r.rt.Lock()
	n := r.holds[k]
	if n > 0 {
		r.holds[k] = n + 1
		r.rt.Unlock()
		r.obs.ReentrantDepth(n + 1)
		return nil
	}
	r.rt.Unlock()
	if err := r.sched.Lock(t, m); err != nil {
		return err
	}
	r.rt.Lock()
	r.holds[k] = 1
	r.rt.Unlock()
	return nil
}

// Unlock releases one hold of m; only the last release reaches the
// scheduler.
func (r *Reentrancy) Unlock(t *Thread, m MutexID) error {
	k := holdKey{t.Logical, m}
	r.rt.Lock()
	n := r.holds[k]
	if n == 0 {
		r.rt.Unlock()
		return ErrNotHeld
	}
	if n > 1 {
		r.holds[k] = n - 1
		r.rt.Unlock()
		return nil
	}
	delete(r.holds, k)
	r.rt.Unlock()
	return r.sched.Unlock(t, m)
}

// Wait fully releases the monitor (whatever the re-entry depth — Java
// semantics), waits on (m, c), and restores the depth before returning.
func (r *Reentrancy) Wait(t *Thread, m MutexID, c CondID, d time.Duration) (bool, error) {
	k := holdKey{t.Logical, m}
	r.rt.Lock()
	depth := r.holds[k]
	if depth == 0 {
		r.rt.Unlock()
		return false, ErrNotHeld
	}
	delete(r.holds, k)
	r.rt.Unlock()
	timedOut, err := r.sched.Wait(t, m, c, d)
	r.rt.Lock()
	// Restore the depth on success (the scheduler reacquired the
	// single-level lock) and on failure (every scheduler error path —
	// ErrUnsupported, ErrNotHeld, ErrStopped — rejects the wait before
	// releasing, so the monitor is still logically held).
	r.holds[k] = depth
	r.rt.Unlock()
	return timedOut, err
}

// Notify requires the monitor to be held, then delegates.
func (r *Reentrancy) Notify(t *Thread, m MutexID, c CondID) error {
	if !r.Held(t, m) {
		return ErrNotHeld
	}
	return r.sched.Notify(t, m, c)
}

// NotifyAll requires the monitor to be held, then delegates.
func (r *Reentrancy) NotifyAll(t *Thread, m MutexID, c CondID) error {
	if !r.Held(t, m) {
		return ErrNotHeld
	}
	return r.sched.NotifyAll(t, m, c)
}

// Held reports whether t's logical thread currently holds m.
func (r *Reentrancy) Held(t *Thread, m MutexID) bool {
	r.rt.Lock()
	defer r.rt.Unlock()
	return r.holds[holdKey{t.Logical, m}] > 0
}

// Depth returns t's current re-entry depth on m.
func (r *Reentrancy) Depth(t *Thread, m MutexID) int {
	r.rt.Lock()
	defer r.rt.Unlock()
	return r.holds[holdKey{t.Logical, m}]
}
