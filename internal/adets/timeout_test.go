package adets

import (
	"testing"
	"time"

	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

func timeoutEnv(rt vtime.Runtime, sink *[]string) Env {
	return Env{
		RT:       rt,
		Self:     "r/0",
		Peers:    []wire.NodeID{"r/0"},
		SendPeer: func(wire.NodeID, any) {},
		BroadcastOrdered: func(id string, payload any) {
			rt.Lock()
			*sink = append(*sink, id)
			rt.Unlock()
		},
	}
}

func TestTimeoutsArmFiresBroadcast(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	var sent []string
	to := NewTimeouts(timeoutEnv(rt, &sent))
	th := &Thread{Logical: "cl1"}
	vtime.Run(rt, "main", func() {
		rt.Lock()
		seq := to.Arm(th, "m", "", 10*time.Millisecond)
		rt.Unlock()
		if seq != 1 {
			t.Errorf("first WaitSeq = %d, want 1", seq)
		}
		rt.Sleep(20 * time.Millisecond)
		rt.Lock()
		defer rt.Unlock()
		if len(sent) != 1 || sent[0] != TimeoutID(TimeoutMsg{Target: "cl1", WaitSeq: 1}) {
			t.Errorf("broadcasts = %v", sent)
		}
	})
}

func TestTimeoutsDisarmCancels(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	var sent []string
	to := NewTimeouts(timeoutEnv(rt, &sent))
	th := &Thread{Logical: "cl1"}
	vtime.Run(rt, "main", func() {
		rt.Lock()
		to.Arm(th, "m", "", 10*time.Millisecond)
		to.Disarm(th)
		rt.Unlock()
		rt.Sleep(30 * time.Millisecond)
		rt.Lock()
		defer rt.Unlock()
		if len(sent) != 0 {
			t.Errorf("disarmed timer still broadcast: %v", sent)
		}
	})
}

func TestTimeoutsPerLogicalSequencing(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	var sent []string
	to := NewTimeouts(timeoutEnv(rt, &sent))
	a := &Thread{Logical: "a"}
	b := &Thread{Logical: "b"}
	vtime.Run(rt, "main", func() {
		rt.Lock()
		defer rt.Unlock()
		// Interleaved arms by two logical threads must keep independent
		// counters — the sequence is per logical thread, never global
		// (a global counter would diverge across replicas).
		if s := to.Arm(a, "m", "", time.Hour); s != 1 {
			t.Errorf("a#1 = %d", s)
		}
		to.Disarm(a)
		if s := to.Arm(b, "m", "", time.Hour); s != 1 {
			t.Errorf("b#1 = %d", s)
		}
		to.Disarm(b)
		if s := to.Arm(a, "m", "", time.Hour); s != 2 {
			t.Errorf("a#2 = %d", s)
		}
		if got := to.Current(a); got != 2 {
			t.Errorf("Current(a) = %d", got)
		}
		if got := to.Current(b); got != 1 {
			t.Errorf("Current(b) = %d", got)
		}
		to.StopAll()
	})
}

func TestTimeoutIDUniquePerWait(t *testing.T) {
	a := TimeoutID(TimeoutMsg{Target: "x", WaitSeq: 1})
	b := TimeoutID(TimeoutMsg{Target: "x", WaitSeq: 2})
	c := TimeoutID(TimeoutMsg{Target: "y", WaitSeq: 1})
	if a == b || a == c || b == c {
		t.Errorf("timeout ids collide: %q %q %q", a, b, c)
	}
}
