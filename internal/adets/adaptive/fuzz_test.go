package adaptive

import (
	"fmt"
	"testing"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/wire"
)

// kinds the default policy may legally return.
var policyKinds = map[string]bool{KindSEQ: true, KindSAT: true, KindMAT: true, KindCC: true}

// FuzzDefaultPolicy fuzzes the decision function for the properties the
// switch protocol depends on. Purity cannot be proven by fuzzing, but its
// observable consequences can be checked on every input:
//
//   - determinism: the same window and current kind always produce the same
//     verdict (the function has no hidden time or randomness inputs);
//   - closure: the verdict is always a kind the default factory set can
//     build, or the current kind verbatim;
//   - capability safety: a window with condition-variable traffic never
//     leaves the full-monitor kind, and a window with nested invocations or
//     callbacks never selects SEQ (whose single thread would deadlock).
func FuzzDefaultPolicy(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint8(0))
	f.Add(uint64(10), uint64(0), uint64(9), uint64(4), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint8(1))
	f.Add(uint64(10), uint64(1), uint64(0), uint64(1), uint64(10), uint64(10), uint64(2), uint64(1), uint64(1), uint64(1), uint8(2))
	f.Add(uint64(100), uint64(0), uint64(0), uint64(50), uint64(80), uint64(10), uint64(0), uint64(0), uint64(0), uint64(0), uint8(3))
	currents := []string{KindSEQ, KindSAT, KindMAT, KindCC}
	f.Fuzz(func(t *testing.T, reqs, callbacks, classed, logicals, lockOps, sharedOps, waits, timedWaits, notifies, nested uint64, cur uint8) {
		w := Window{
			Requests: reqs, Callbacks: callbacks, Classed: classed,
			Logicals: logicals, LockOps: lockOps, SharedOps: sharedOps,
			Waits: waits, TimedWaits: timedWaits, Notifies: notifies, Nested: nested,
		}
		current := currents[int(cur)%len(currents)]
		got := DefaultPolicy(w, current)
		if again := DefaultPolicy(w, current); again != got {
			t.Fatalf("nondeterministic: %s then %s for %+v", got, again, w)
		}
		if !policyKinds[got] && got != current {
			t.Fatalf("verdict %q is not a buildable kind (window %+v, current %s)", got, w, current)
		}
		if w.Requests > 0 && (w.Waits > 0 || w.Notifies > 0) && got != KindSAT {
			t.Fatalf("condition traffic decided %s, want %s (window %+v)", got, KindSAT, w)
		}
		if got == KindSEQ && (w.Nested > 0 || w.Callbacks > 0) {
			t.Fatalf("SEQ selected with nested/callbacks in the window: %+v", w)
		}
	})
}

// FuzzSplitID fuzzes the broadcast-id parser: it must never panic, must
// round-trip every wrapped id, and must never claim an id that wrapID could
// not have produced for its parsed generation.
func FuzzSplitID(f *testing.F) {
	f.Add("adapt/0/sat/7")
	f.Add("adapt/18446744073709551615/x")
	f.Add("adapt//")
	f.Add("viewchange/3")
	f.Add("")
	f.Fuzz(func(t *testing.T, id string) {
		rest, gen, ok := splitID(id)
		if !ok {
			return
		}
		if wrapID(gen, rest) != id {
			t.Fatalf("splitID(%q) = (%q, %d) does not round-trip", id, rest, gen)
		}
	})
}

// FuzzWindowPersist fuzzes the canonical serialization: persist must be
// stable under re-persisting and restore(persist(w)) must preserve the
// sampled Window exactly.
func FuzzWindowPersist(f *testing.F) {
	f.Add(uint64(3), uint64(1), uint64(2), uint64(5), uint64(2), uint64(1), uint64(1), uint64(1))
	f.Fuzz(func(t *testing.T, reqs, callbacks, classed, locks, waits, timedWaits, notifies, nested uint64) {
		var w window
		w.reset()
		w.reqs, w.callbacks, w.classed = reqs, callbacks, classed
		w.waits, w.timedWaits, w.notifies, w.nested = waits, timedWaits, notifies, nested
		// Derive deterministic logical/mutex sets from the lock counter.
		for i := uint64(0); i < locks%16; i++ {
			w.noteLock(wire.LogicalID(fmt.Sprintf("cl%d", i%5)), adets.MutexID(fmt.Sprintf("m%d", i%3)))
		}
		img := w.persist()
		if got := w.persist(); !equalPersisted(got, img) {
			t.Fatal("persist is not canonical")
		}
		var r window
		r.restore(img)
		if r.sample() != w.sample() {
			t.Fatalf("restore changed the sample: %+v != %+v", r.sample(), w.sample())
		}
	})
}

func equalPersisted(a, b persistedWindow) bool {
	if a.Reqs != b.Reqs || len(a.Logicals) != len(b.Logicals) || len(a.Mutexes) != len(b.Mutexes) {
		return false
	}
	for i := range a.Logicals {
		if a.Logicals[i] != b.Logicals[i] {
			return false
		}
	}
	for i := range a.Mutexes {
		am, bm := a.Mutexes[i], b.Mutexes[i]
		if am.ID != bm.ID || am.Ops != bm.Ops || len(am.Logicals) != len(bm.Logicals) {
			return false
		}
		for j := range am.Logicals {
			if am.Logicals[j] != bm.Logicals[j] {
				return false
			}
		}
	}
	return true
}
