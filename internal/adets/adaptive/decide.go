package adaptive

import (
	"sort"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/wire"
)

// Window is the metrics window one epoch accumulates, sampled at the
// boundary's quiesced cut. Every field is a pure function of the executed
// ordered prefix: the set of requests that ran (and how far each got before
// the cut stabilized) is determined by the total order, and sums over that
// set are independent of the real-time interleaving any one replica
// happened to execute. Wall-clock quantities — grant latencies, live queue
// depths — are deliberately absent; they are exported as advisory metrics
// (SchedObs) but may never influence the decision.
type Window struct {
	// Requests counts scheduler submissions, Callbacks the subset flagged
	// as callbacks, Classed the subset with declared conflict classes.
	Requests  uint64
	Callbacks uint64
	Classed   uint64
	// Logicals is the number of distinct logical threads that submitted.
	Logicals uint64
	// LockOps counts top-level mutex acquisitions; SharedOps the subset on
	// mutexes acquired by >= 2 distinct logical threads within the window —
	// the window's observed conflict ratio is SharedOps/LockOps.
	LockOps   uint64
	SharedOps uint64
	// Condition-variable traffic and external interactions.
	Waits      uint64
	TimedWaits uint64
	Notifies   uint64
	Nested     uint64
}

// DefaultPolicy is the default pure decision function — the paper's
// Section 5 findings as a rule list, first match wins:
//
//  1. Condition-variable traffic forces ADETS-SAT: the strategies that beat
//     it elsewhere either lack condition variables (SEQ) or pay more for
//     wakeup ordering under contention.
//  2. A mostly-classed window (>= 75% of requests declaring conflict
//     classes) selects ADETS-CC: disjoint classes dispatch in parallel.
//  3. A lock-free multi-client window selects ADETS-MAT: pure computations
//     overlap fully (the paper's pattern (a), Fig. 4a).
//  4. A single client, or a lock-dominated window with a high conflict
//     ratio (>= 50% of acquisitions on contended mutexes), selects SEQ —
//     everything serializes anyway and SEQ has the least scheduling
//     overhead — unless nested invocations or callbacks appeared, which SEQ
//     cannot overlap (its single thread blocks; a callback would deadlock);
//     then ADETS-SAT.
//  5. Everything else selects ADETS-MAT.
func DefaultPolicy(w Window, current string) string {
	switch {
	case w.Requests == 0:
		return current
	case w.Waits > 0 || w.Notifies > 0:
		return KindSAT
	case 4*w.Classed >= 3*w.Requests:
		return KindCC
	case w.LockOps == 0 && w.Logicals > 1 && w.Nested == 0 && w.Callbacks == 0:
		return KindMAT
	case w.Logicals <= 1 || 2*w.SharedOps >= w.LockOps:
		if w.Nested > 0 || w.Callbacks > 0 {
			return KindSAT
		}
		return KindSEQ
	default:
		return KindMAT
	}
}

// window is the live accumulator behind Window.
type window struct {
	reqs, callbacks, classed uint64
	locks                    uint64
	waits, timedWaits        uint64
	notifies, nested         uint64
	logicals                 map[wire.LogicalID]struct{}
	mutexes                  map[adets.MutexID]*mutexStat
}

type mutexStat struct {
	ops      uint64
	logicals map[wire.LogicalID]struct{}
}

func (w *window) reset() {
	w.reqs, w.callbacks, w.classed = 0, 0, 0
	w.locks, w.waits, w.timedWaits = 0, 0, 0
	w.notifies, w.nested = 0, 0
	w.logicals = make(map[wire.LogicalID]struct{})
	w.mutexes = make(map[adets.MutexID]*mutexStat)
}

func (w *window) noteSubmit(req adets.Request) {
	w.reqs++
	if req.Callback {
		w.callbacks++
	}
	if len(req.Classes) > 0 {
		w.classed++
	}
	w.logicals[req.Logical] = struct{}{}
}

func (w *window) noteLock(logical wire.LogicalID, m adets.MutexID) {
	w.locks++
	ms := w.mutexes[m]
	if ms == nil {
		ms = &mutexStat{logicals: make(map[wire.LogicalID]struct{})}
		w.mutexes[m] = ms
	}
	ms.ops++
	ms.logicals[logical] = struct{}{}
}

// sample reduces the accumulator to the pure Window. Sums over maps are
// iteration-order independent, so the result is identical on every replica
// even though each observed its own real-time op order.
func (w *window) sample() Window {
	out := Window{
		Requests:   w.reqs,
		Callbacks:  w.callbacks,
		Classed:    w.classed,
		Logicals:   uint64(len(w.logicals)),
		LockOps:    w.locks,
		Waits:      w.waits,
		TimedWaits: w.timedWaits,
		Notifies:   w.notifies,
		Nested:     w.nested,
	}
	for _, ms := range w.mutexes {
		if len(ms.logicals) >= 2 {
			out.SharedOps += ms.ops
		}
	}
	return out
}

// persist serializes the accumulator canonically (sorted slices).
func (w *window) persist() persistedWindow {
	out := persistedWindow{
		Reqs: w.reqs, Callbacks: w.callbacks, Classed: w.classed,
		Locks: w.locks, Waits: w.waits, TimedWaits: w.timedWaits,
		Notifies: w.notifies, Nested: w.nested,
	}
	for l := range w.logicals {
		out.Logicals = append(out.Logicals, string(l))
	}
	sort.Strings(out.Logicals)
	for m, ms := range w.mutexes {
		pm := persistedMutex{ID: string(m), Ops: ms.ops}
		for l := range ms.logicals {
			pm.Logicals = append(pm.Logicals, string(l))
		}
		sort.Strings(pm.Logicals)
		out.Mutexes = append(out.Mutexes, pm)
	}
	sort.Slice(out.Mutexes, func(i, j int) bool { return out.Mutexes[i].ID < out.Mutexes[j].ID })
	return out
}

func (w *window) restore(img persistedWindow) {
	w.reset()
	w.reqs, w.callbacks, w.classed = img.Reqs, img.Callbacks, img.Classed
	w.locks, w.waits, w.timedWaits = img.Locks, img.Waits, img.TimedWaits
	w.notifies, w.nested = img.Notifies, img.Nested
	for _, l := range img.Logicals {
		w.logicals[wire.LogicalID(l)] = struct{}{}
	}
	for _, pm := range img.Mutexes {
		ms := &mutexStat{ops: pm.Ops, logicals: make(map[wire.LogicalID]struct{})}
		for _, l := range pm.Logicals {
			ms.logicals[wire.LogicalID(l)] = struct{}{}
		}
		w.mutexes[adets.MutexID(pm.ID)] = ms
	}
}
