// Package adaptive implements ADETS-ADAPT, a meta-scheduler that switches
// between the static multithreading strategies at deterministic epoch
// boundaries of the totally ordered stream.
//
// The paper's own conclusion is that no strategy dominates: the best
// scheduler depends on the workload's conflict ratio, nesting depth and
// request mix (Section 5). ADETS-ADAPT wraps the static schedulers and
// re-evaluates that choice while the object runs. Every Config.Epoch
// positions of the total order it quiesces the active scheduler (reusing the
// checkpoint cut of Scheduler.Quiesce), samples a metrics window that is a
// pure function of the executed ordered prefix — request and callback
// counts, declared-conflict-class ratio, distinct logical threads, lock
// operations and how many of them touched contended mutexes, condition
// waits, nested invocations — and feeds it to a pure decision function.
// Because every replica sees the same window over the same prefix, the
// switch decision is itself replicated state: all replicas swap to the same
// successor at the same boundary, the swap is recorded in the schedule trace
// ("sched" stream, switch events), and trace digests must stay equal across
// it.
//
// A boundary whose quiesce reports live threads (blocked on future
// deliveries — a nested reply, an undelivered notification) is skipped, the
// same way on every replica, exactly like a skipped checkpoint: the
// blocked-until-stable outcome is a function of the ordered prefix too.
// Switches therefore only ever happen with no live request threads, which is
// what makes the handoff safe: the successor starts empty, logical-thread
// identity and reentrancy accounting live above the scheduler and carry
// over, and parked dispatch work resumes into the successor's structures.
//
// The epoch counter, metrics window, switch history and generation are
// replicated scheduler state (adets.StatefulScheduler): they ride checkpoint
// snapshots so a replica restored by state transfer adopts the same epoch
// and active kind as its donor instead of trying to re-derive them from a
// truncated prefix.
package adaptive

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/adets/cc"
	"github.com/replobj/replobj/internal/adets/mat"
	"github.com/replobj/replobj/internal/adets/sat"
	"github.com/replobj/replobj/internal/adets/seq"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// Kind names for the wrapped strategies, matching replobj.SchedulerKind.
const (
	KindSEQ = "SEQ"
	KindSAT = "ADETS-SAT"
	KindMAT = "ADETS-MAT"
	KindCC  = "ADETS-CC"
)

// Name is the meta-scheduler's strategy name.
const Name = "ADETS-ADAPT"

// PlanStep forces the active kind from a given epoch on (tests and
// experiments that need switches at exact boundaries). Steps define a step
// function over epoch indices: at every boundary the last step whose Epoch
// is <= the boundary's index applies, so a skipped boundary converges to the
// planned kind at the next one.
type PlanStep struct {
	Epoch uint64
	Kind  string
}

// Transition is one performed switch.
type Transition struct {
	Epoch uint64
	From  string
	To    string
}

// Config tunes the meta-scheduler.
type Config struct {
	// Epoch is the boundary spacing in total-order positions (default 64):
	// a request delivered at position seq crosses into epoch seq/Epoch.
	Epoch uint64
	// Initial is the kind active before the first switch (default
	// ADETS-SAT, the full-capability strategy).
	Initial string
	// MinWindow is the minimum number of requests a window must hold for
	// the policy to run; sparser windows keep the current kind (default 8).
	MinWindow uint64
	// Factories construct the candidate schedulers by kind name. Defaults
	// to DefaultFactories. A policy/plan result without a factory keeps the
	// current kind.
	Factories map[string]func() adets.Scheduler
	// Policy is the pure decision function (default DefaultPolicy). It must
	// depend only on its arguments — never on wall-clock time or local
	// queue state — so every replica decides identically.
	Policy func(w Window, current string) string
	// Plan, when non-empty, overrides Policy with a fixed switching
	// schedule (sorted by New).
	Plan []PlanStep
}

// DefaultFactories builds the default candidate set: the four strategies the
// default policy chooses between, with default options.
func DefaultFactories() map[string]func() adets.Scheduler {
	return map[string]func() adets.Scheduler{
		KindSEQ: func() adets.Scheduler { return seq.New() },
		KindSAT: func() adets.Scheduler { return sat.New() },
		KindMAT: func() adets.Scheduler { return mat.New() },
		KindCC:  func() adets.Scheduler { return cc.New() },
	}
}

// Scheduler is the ADETS-ADAPT meta-scheduler. All scheduling operations
// forward to the active inner scheduler; Submit additionally drives the
// epoch state machine.
type Scheduler struct {
	cfg Config

	env  adets.Env // outer environment
	ienv adets.Env // environment handed to inner schedulers (wrapped broadcast)

	// gen counts performed switches; it namespaces the ordered broadcasts of
	// inner schedulers (timeout messages) so a fresh successor's ids never
	// collide with — and stale deliveries never leak into — another
	// generation. Atomic because inner broadcasts may fire from timer
	// callbacks that do not hold the runtime lock.
	gen atomic.Uint64

	// Guarded by env.RT's lock.
	inner     adets.Scheduler
	kind      string
	epoch     uint64
	switches  uint64
	skipped   uint64
	history   []Transition
	win       window
	stopped   bool
	quiescing bool
}

var (
	_ adets.Scheduler         = (*Scheduler)(nil)
	_ adets.StatefulScheduler = (*Scheduler)(nil)
)

// New validates cfg, fills defaults and returns the meta-scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Epoch == 0 {
		cfg.Epoch = 64
	}
	if cfg.Initial == "" {
		cfg.Initial = KindSAT
	}
	if cfg.MinWindow == 0 {
		cfg.MinWindow = 8
	}
	if cfg.Factories == nil {
		cfg.Factories = DefaultFactories()
	}
	if cfg.Policy == nil {
		cfg.Policy = DefaultPolicy
	}
	if _, ok := cfg.Factories[cfg.Initial]; !ok {
		return nil, fmt.Errorf("adaptive: no factory for initial kind %q", cfg.Initial)
	}
	cfg.Plan = append([]PlanStep(nil), cfg.Plan...)
	sort.SliceStable(cfg.Plan, func(i, j int) bool { return cfg.Plan[i].Epoch < cfg.Plan[j].Epoch })
	for _, st := range cfg.Plan {
		if _, ok := cfg.Factories[st.Kind]; !ok {
			return nil, fmt.Errorf("adaptive: no factory for planned kind %q (epoch %d)", st.Kind, st.Epoch)
		}
	}
	s := &Scheduler{cfg: cfg, kind: cfg.Initial}
	s.win.reset()
	return s, nil
}

// Name implements adets.Scheduler.
func (s *Scheduler) Name() string { return Name }

// Capabilities implements adets.Scheduler. The meta-scheduler advertises the
// full extended feature set; the default policy only ever switches to a kind
// that supports the features the window has actually exercised (e.g. it
// stays on ADETS-SAT once condition waits appear and never picks SEQ while
// nested invocations or callbacks are in the mix).
func (s *Scheduler) Capabilities() adets.Capabilities {
	return adets.Capabilities{
		Coordination:      "Locks/Monitor",
		DeadlockFree:      "NI+CB",
		Deployment:        "manual",
		Multithreading:    "adaptive",
		ReentrantLocks:    true,
		ConditionVars:     true,
		TimedWait:         true,
		NestedInvocations: true,
		Callbacks:         true,
	}
}

// Start implements adets.Scheduler.
func (s *Scheduler) Start(env adets.Env) {
	s.env = env
	s.ienv = env
	outer := env.BroadcastOrdered
	if outer != nil {
		s.ienv.BroadcastOrdered = func(id string, payload any) {
			outer(wrapID(s.gen.Load(), id), payload)
		}
	}
	s.inner = s.cfg.Factories[s.kind]()
	s.inner.Start(s.ienv)
}

// Stop implements adets.Scheduler.
func (s *Scheduler) Stop() {
	rt := s.env.RT
	rt.Lock()
	s.stopped = true
	inner := s.inner
	rt.Unlock()
	inner.Stop()
}

// Submit implements adets.Scheduler. Stream-ordered submissions (Seq > 0)
// drive the epoch state machine: the first submission whose position crosses
// into a new epoch quiesces the active scheduler, samples the window,
// decides, possibly swaps, and only then is forwarded — so it executes under
// the successor.
func (s *Scheduler) Submit(req adets.Request) {
	rt := s.env.RT
	rt.Lock()
	if s.stopped {
		rt.Unlock()
		return
	}
	var boundary uint64
	if req.Seq > 0 && !s.quiescing {
		if e := req.Seq / s.cfg.Epoch; e > s.epoch {
			boundary = e
		}
	}
	rt.Unlock()
	if boundary > 0 {
		s.crossEpoch(boundary)
	}
	rt.Lock()
	if s.stopped {
		rt.Unlock()
		return
	}
	s.win.noteSubmit(req)
	inner := s.inner
	rt.Unlock()
	inner.Submit(req)
}

// crossEpoch runs the boundary protocol. The caller is the dispatching
// goroutine, so no further ordered deliveries can reach the scheduler while
// it is parked here — exactly the guarantee Scheduler.Quiesce requires.
func (s *Scheduler) crossEpoch(e uint64) {
	rt := s.env.RT
	rt.Lock()
	if s.stopped || s.quiescing {
		rt.Unlock()
		return
	}
	s.quiescing = true
	inner := s.inner
	rt.Unlock()

	p := vtime.NewParker("adapt-epoch/" + string(s.env.Self))
	drained := false
	inner.Quiesce(func(d bool) {
		drained = d
		rt.Unpark(p)
	})
	rt.Lock()
	rt.Park(p)
	// Stable point: every thread has either completed or is parked on a
	// future delivery. The window is now a pure function of the executed
	// ordered prefix.
	w := s.win.sample()
	from := s.kind
	to := from
	verdict := "keep"
	if !drained {
		// Live threads parked on future deliveries: handing their scheduler-
		// private park state to a fresh successor is not possible, so the
		// boundary is skipped — deterministically, on every replica.
		verdict = "skip"
		s.skipped++
	} else if next := s.decideLocked(w, e); next != from {
		if _, ok := s.cfg.Factories[next]; ok {
			to = next
			verdict = "switch"
		}
	}
	s.epoch = e
	s.win.reset()
	s.env.Obs.AdaptiveEpoch(e, from, to, verdict)
	if verdict != "switch" {
		s.quiescing = false
		rt.Unlock()
		return
	}
	s.switches++
	s.kind = to
	s.history = append(s.history, Transition{Epoch: e, From: from, To: to})
	s.gen.Add(1)
	old := s.inner
	rt.Unlock()

	// Build and start the successor before publishing it, so a direct peer
	// message racing the swap still reaches a started scheduler. No request
	// threads exist (drained) and the dispatch goroutine is here, so nothing
	// else can touch the inner pointer meanwhile.
	next := s.cfg.Factories[to]()
	next.Start(s.ienv)
	rt.Lock()
	s.inner = next
	s.quiescing = false
	rt.Unlock()
	old.Stop()
}

// decideLocked returns the kind the boundary at epoch e selects: the plan's
// step function when a plan is set, otherwise the policy over the sampled
// window (sparse windows keep the current kind).
func (s *Scheduler) decideLocked(w Window, e uint64) string {
	if len(s.cfg.Plan) > 0 {
		kind := s.kind
		for _, st := range s.cfg.Plan {
			if st.Epoch > e {
				break
			}
			kind = st.Kind
		}
		return kind
	}
	if w.Requests < s.cfg.MinWindow {
		return s.kind
	}
	return s.cfg.Policy(w, s.kind)
}

// current returns the active inner scheduler under the runtime lock.
func (s *Scheduler) current() adets.Scheduler {
	rt := s.env.RT
	rt.Lock()
	inner := s.inner
	rt.Unlock()
	return inner
}

// Lock implements adets.Scheduler.
func (s *Scheduler) Lock(t *adets.Thread, m adets.MutexID) error {
	rt := s.env.RT
	rt.Lock()
	s.win.noteLock(t.Logical, m)
	inner := s.inner
	rt.Unlock()
	return inner.Lock(t, m)
}

// Unlock implements adets.Scheduler.
func (s *Scheduler) Unlock(t *adets.Thread, m adets.MutexID) error {
	return s.current().Unlock(t, m)
}

// Wait implements adets.Scheduler.
func (s *Scheduler) Wait(t *adets.Thread, m adets.MutexID, c adets.CondID, d time.Duration) (bool, error) {
	rt := s.env.RT
	rt.Lock()
	s.win.waits++
	if d > 0 {
		s.win.timedWaits++
	}
	inner := s.inner
	rt.Unlock()
	return inner.Wait(t, m, c, d)
}

// Notify implements adets.Scheduler.
func (s *Scheduler) Notify(t *adets.Thread, m adets.MutexID, c adets.CondID) error {
	rt := s.env.RT
	rt.Lock()
	s.win.notifies++
	inner := s.inner
	rt.Unlock()
	return inner.Notify(t, m, c)
}

// NotifyAll implements adets.Scheduler.
func (s *Scheduler) NotifyAll(t *adets.Thread, m adets.MutexID, c adets.CondID) error {
	rt := s.env.RT
	rt.Lock()
	s.win.notifies++
	inner := s.inner
	rt.Unlock()
	return inner.NotifyAll(t, m, c)
}

// Yield implements adets.Scheduler.
func (s *Scheduler) Yield(t *adets.Thread) { s.current().Yield(t) }

// BeginNested implements adets.Scheduler. A thread parked here blocks on a
// future delivery, so any boundary crossed meanwhile reports drained=false
// and is skipped: the thread resumes under the scheduler that parked it.
func (s *Scheduler) BeginNested(t *adets.Thread) {
	rt := s.env.RT
	rt.Lock()
	s.win.nested++
	inner := s.inner
	rt.Unlock()
	inner.BeginNested(t)
}

// EndNested implements adets.Scheduler.
func (s *Scheduler) EndNested(t *adets.Thread) { s.current().EndNested(t) }

// EarlySubmit implements adets.EarlyScheduler by forwarding to the active
// inner scheduler when it is early-capable (currently ADETS-CC). An early
// plan computed just before a boundary switch is simply lost with the old
// scheduler — plans are recomputable hints, so the swap stays safe.
func (s *Scheduler) EarlySubmit(id wire.InvocationID, classes []string) {
	if es, ok := s.current().(adets.EarlyScheduler); ok {
		es.EarlySubmit(id, classes)
	}
}

// ViewChanged implements adets.Scheduler.
func (s *Scheduler) ViewChanged(v gcs.View) { s.current().ViewChanged(v) }

// Quiesce implements adets.Scheduler (the replica's checkpoint cut): the
// meta-scheduler itself holds no thread state, so the verdict is the active
// scheduler's.
func (s *Scheduler) Quiesce(report func(drained bool)) {
	s.current().Quiesce(report)
}

// HandleOrdered implements adets.Scheduler. Inner broadcasts travel with a
// generation prefix; a message from a previous generation is consumed and
// dropped — deterministically, because the swap that bumped the generation
// happened at the same stream position on every replica, and a drained swap
// guarantees no thread was waiting on it.
func (s *Scheduler) HandleOrdered(id string, payload any) bool {
	rest, gen, ok := splitID(id)
	if !ok {
		return false
	}
	if gen != s.gen.Load() {
		return true
	}
	return s.current().HandleOrdered(rest, payload)
}

// HandleDirect implements adets.Scheduler.
func (s *Scheduler) HandleDirect(from wire.NodeID, payload any) bool {
	return s.current().HandleDirect(from, payload)
}

// CurrentKind returns the active strategy's kind name.
func (s *Scheduler) CurrentKind() string {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	return s.kind
}

// Epoch returns the last crossed epoch boundary's index.
func (s *Scheduler) Epoch() uint64 {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	return s.epoch
}

// Generation returns the switch generation (number of performed switches
// since the group's genesis, including ones adopted via state transfer).
func (s *Scheduler) Generation() uint64 { return s.gen.Load() }

// Switches returns the number of performed switches.
func (s *Scheduler) Switches() uint64 {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	return s.switches
}

// Skipped returns the number of boundaries skipped because the cut was not
// drained.
func (s *Scheduler) Skipped() uint64 {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	return s.skipped
}

// History returns the performed transitions in order.
func (s *Scheduler) History() []Transition {
	rt := s.env.RT
	rt.Lock()
	defer rt.Unlock()
	return append([]Transition(nil), s.history...)
}

// --- replicated state (adets.StatefulScheduler) ---

// persisted is the gob image of the meta-scheduler's replicated state.
// Slices are sorted so the image is canonical.
type persisted struct {
	Kind     string
	Epoch    uint64
	Gen      uint64
	Switches uint64
	Skipped  uint64
	History  []Transition
	Win      persistedWindow
}

type persistedWindow struct {
	Reqs, Callbacks, Classed uint64
	Locks, Waits, TimedWaits uint64
	Notifies, Nested         uint64
	Logicals                 []string
	Mutexes                  []persistedMutex
}

type persistedMutex struct {
	ID       string
	Ops      uint64
	Logicals []string
}

// MarshalSchedulerState implements adets.StatefulScheduler. Called at a
// drained checkpoint cut, where the window accumulators are a pure function
// of the executed prefix.
func (s *Scheduler) MarshalSchedulerState() ([]byte, error) {
	rt := s.env.RT
	rt.Lock()
	img := persisted{
		Kind:     s.kind,
		Epoch:    s.epoch,
		Gen:      s.gen.Load(),
		Switches: s.switches,
		Skipped:  s.skipped,
		History:  append([]Transition(nil), s.history...),
		Win:      s.win.persist(),
	}
	rt.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalSchedulerState implements adets.StatefulScheduler: the rejoiner
// adopts the donor's epoch, window and active kind. When the donor's kind
// differs from the local one the inner scheduler is swapped — safe because
// snapshots are only taken drained, so the donor had no live threads, and
// any threads the local (pre-crash) scheduler abandoned are woken with
// ErrStopped by Stop.
func (s *Scheduler) UnmarshalSchedulerState(data []byte) error {
	var img persisted
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return err
	}
	if img.Kind == "" {
		return fmt.Errorf("adaptive: empty scheduler state")
	}
	if _, ok := s.cfg.Factories[img.Kind]; !ok {
		return fmt.Errorf("adaptive: no factory for restored kind %q", img.Kind)
	}
	rt := s.env.RT
	rt.Lock()
	swap := img.Kind != s.kind
	old := s.inner
	s.kind = img.Kind
	s.epoch = img.Epoch
	s.switches = img.Switches
	s.skipped = img.Skipped
	s.history = append(s.history[:0], img.History...)
	s.win.restore(img.Win)
	s.gen.Store(img.Gen)
	rt.Unlock()
	if !swap {
		return nil
	}
	next := s.cfg.Factories[img.Kind]()
	next.Start(s.ienv)
	rt.Lock()
	s.inner = next
	rt.Unlock()
	old.Stop()
	return nil
}

// --- ordered-broadcast generation namespace ---

const idPrefix = "adapt/"

func wrapID(gen uint64, id string) string {
	return idPrefix + strconv.FormatUint(gen, 10) + "/" + id
}

func splitID(id string) (rest string, gen uint64, ok bool) {
	if !strings.HasPrefix(id, idPrefix) {
		return "", 0, false
	}
	rem := id[len(idPrefix):]
	i := strings.IndexByte(rem, '/')
	if i < 0 {
		return "", 0, false
	}
	g, err := strconv.ParseUint(rem[:i], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return rem[i+1:], g, true
}
