package adaptive

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/adets/schedtest"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/wire"
)

func TestNewDefaults(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.cfg.Epoch != 64 || s.cfg.Initial != KindSAT || s.cfg.MinWindow != 8 {
		t.Errorf("defaults = epoch %d initial %s minwindow %d, want 64/%s/8",
			s.cfg.Epoch, s.cfg.Initial, s.cfg.MinWindow, KindSAT)
	}
	if s.cfg.Policy == nil || s.cfg.Factories == nil {
		t.Error("policy/factories not defaulted")
	}
	if s.Name() != Name {
		t.Errorf("Name = %s, want %s", s.Name(), Name)
	}
	caps := s.Capabilities()
	if !caps.ReentrantLocks || !caps.ConditionVars || !caps.TimedWait ||
		!caps.NestedInvocations || !caps.Callbacks {
		t.Errorf("capabilities not full: %+v", caps)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Initial: "BOGUS"}); err == nil {
		t.Error("unknown initial kind accepted")
	}
	if _, err := New(Config{Plan: []PlanStep{{Epoch: 1, Kind: "BOGUS"}}}); err == nil {
		t.Error("unknown planned kind accepted")
	}
	s, err := New(Config{Plan: []PlanStep{{Epoch: 5, Kind: KindSEQ}, {Epoch: 2, Kind: KindMAT}}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.cfg.Plan[0].Epoch != 2 || s.cfg.Plan[1].Epoch != 5 {
		t.Errorf("plan not sorted: %v", s.cfg.Plan)
	}
}

func TestWrapSplitID(t *testing.T) {
	for _, gen := range []uint64{0, 1, 42} {
		id := wrapID(gen, "sat/timeout/7")
		rest, g, ok := splitID(id)
		if !ok || g != gen || rest != "sat/timeout/7" {
			t.Errorf("splitID(wrapID(%d)) = %q %d %v", gen, rest, g, ok)
		}
	}
	for _, bad := range []string{"", "x", "sat/timeout/7", "adapt/", "adapt/abc/x", "adapt/5", "adapt//x"} {
		if _, _, ok := splitID(bad); ok {
			t.Errorf("splitID(%q) accepted", bad)
		}
	}
}

func TestDecidePlanStepFunction(t *testing.T) {
	s, err := New(Config{Plan: []PlanStep{{Epoch: 2, Kind: KindMAT}, {Epoch: 5, Kind: KindSEQ}}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want := map[uint64]string{1: KindSAT, 2: KindMAT, 3: KindMAT, 4: KindMAT, 5: KindSEQ, 9: KindSEQ}
	for e, kind := range want {
		if got := s.decideLocked(Window{Requests: 100}, e); got != kind {
			t.Errorf("epoch %d: decided %s, want %s", e, got, kind)
		}
	}
}

func TestDecideMinWindowHysteresis(t *testing.T) {
	s, err := New(Config{MinWindow: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// A sparse window that would otherwise select ADETS-CC keeps the
	// current kind.
	w := Window{Requests: 3, Classed: 3}
	if got := s.decideLocked(w, 1); got != KindSAT {
		t.Errorf("sparse window decided %s, want keep %s", got, KindSAT)
	}
	w.Requests, w.Classed = 8, 8
	if got := s.decideLocked(w, 1); got != KindCC {
		t.Errorf("dense window decided %s, want %s", got, KindCC)
	}
}

func TestDefaultPolicyTable(t *testing.T) {
	cases := []struct {
		name    string
		w       Window
		current string
		want    string
	}{
		{"empty-keeps-current", Window{}, KindMAT, KindMAT},
		{"waits-force-sat", Window{Requests: 10, Waits: 1}, KindSEQ, KindSAT},
		{"notifies-force-sat", Window{Requests: 10, Notifies: 2}, KindCC, KindSAT},
		{"classed-selects-cc", Window{Requests: 8, Classed: 6}, KindSAT, KindCC},
		{"lockfree-multiclient-selects-mat", Window{Requests: 8, Logicals: 4}, KindSAT, KindMAT},
		{"single-client-selects-seq", Window{Requests: 8, Logicals: 1, LockOps: 8}, KindSAT, KindSEQ},
		{"contended-selects-seq", Window{Requests: 8, Logicals: 4, LockOps: 10, SharedOps: 6}, KindMAT, KindSEQ},
		{"contended-nested-selects-sat", Window{Requests: 8, Logicals: 4, LockOps: 10, SharedOps: 6, Nested: 1}, KindMAT, KindSAT},
		{"single-client-callbacks-selects-sat", Window{Requests: 8, Logicals: 1, Callbacks: 2}, KindSEQ, KindSAT},
		{"disjoint-locks-select-mat", Window{Requests: 8, Logicals: 4, LockOps: 10, SharedOps: 2}, KindSEQ, KindMAT},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := DefaultPolicy(tc.w, tc.current); got != tc.want {
				t.Errorf("DefaultPolicy(%+v, %s) = %s, want %s", tc.w, tc.current, got, tc.want)
			}
		})
	}
}

func TestWindowAccumulator(t *testing.T) {
	var w window
	w.reset()
	w.noteSubmit(adets.Request{Logical: "a", Seq: 1})
	w.noteSubmit(adets.Request{Logical: "b", Seq: 2, Classes: []string{"c1"}})
	w.noteSubmit(adets.Request{Logical: "a", Seq: 3, Callback: true})
	w.noteLock("a", "m1")
	w.noteLock("a", "m1")
	w.noteLock("b", "m1") // m1 now shared: 3 ops count as shared
	w.noteLock("b", "m2") // m2 private
	got := w.sample()
	want := Window{Requests: 3, Callbacks: 1, Classed: 1, Logicals: 2, LockOps: 4, SharedOps: 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sample = %+v, want %+v", got, want)
	}
}

func TestWindowPersistRestore(t *testing.T) {
	var w window
	w.reset()
	for i := 0; i < 5; i++ {
		w.noteSubmit(adets.Request{Logical: wire.LogicalID(fmt.Sprintf("cl%d", i)), Seq: uint64(i + 1)})
		w.noteLock(wire.LogicalID(fmt.Sprintf("cl%d", i)), adets.MutexID(fmt.Sprintf("m%d", i%2)))
	}
	w.waits, w.timedWaits, w.notifies, w.nested = 3, 1, 2, 1
	img1, img2 := w.persist(), w.persist()
	if !reflect.DeepEqual(img1, img2) {
		t.Errorf("persist not canonical:\n  %+v\n  %+v", img1, img2)
	}
	var r window
	r.restore(img1)
	if !reflect.DeepEqual(r.sample(), w.sample()) {
		t.Errorf("restored sample %+v, want %+v", r.sample(), w.sample())
	}
	if !reflect.DeepEqual(r.persist(), img1) {
		t.Error("persist(restore(img)) != img")
	}
}

// alternatingPlan switches between ADETS-MAT (odd epochs) and ADETS-SAT
// (even epochs) for the first 16 epochs.
func alternatingPlan() []PlanStep {
	plan := make([]PlanStep, 0, 16)
	for e := uint64(1); e <= 16; e++ {
		kind := KindSAT
		if e%2 == 1 {
			kind = KindMAT
		}
		plan = append(plan, PlanStep{Epoch: e, Kind: kind})
	}
	return plan
}

// TestSwitchingEndToEnd drives the meta-scheduler through the schedtest
// harness across planned switches while exercising every forwarded
// operation: locks, condition waits (timed and plain), notifications,
// yields, nested invocations, callbacks and view changes.
func TestSwitchingEndToEnd(t *testing.T) {
	factory := func(int) adets.Scheduler {
		s, err := New(Config{Epoch: 3, MinWindow: 1, Plan: alternatingPlan()})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s
	}
	c := schedtest.New(3, factory)
	c.Run(func() {
		// Epoch 0 (ADETS-SAT): a producer/consumer handoff plus a timed wait.
		c.Submit("consumer", false, func(ic *schedtest.Ictx) {
			_ = ic.Lock("buf")
			if _, err := ic.Wait("buf", "", 0); err != nil {
				t.Errorf("Wait: %v", err)
			}
			ic.Trace("consumed")
			_ = ic.Unlock("buf")
		})
		c.Submit("producer", false, func(ic *schedtest.Ictx) {
			ic.Compute(2 * time.Millisecond)
			_ = ic.Lock("buf")
			_ = ic.Notify("buf", "")
			_ = ic.NotifyAll("buf", "")
			_ = ic.Unlock("buf")
		})
		if _, err := c.Await(2, 30*time.Second); err != nil {
			t.Fatalf("phase 1: %v", err)
		}
		// Cross into later epochs with a mixed workload.
		const n = 8
		for i := 0; i < n; i++ {
			logical := wire.LogicalID(fmt.Sprintf("cl%d", i))
			c.Submit(logical, false, func(ic *schedtest.Ictx) {
				_ = ic.Lock("m")
				ic.Yield()
				ic.Compute(time.Millisecond)
				_ = ic.Unlock(adets.MutexID("m"))
			})
		}
		if _, err := c.Await(n, 30*time.Second); err != nil {
			t.Fatalf("phase 2: %v", err)
		}
		// A nested invocation with a callback, then a view change.
		c.Submit("chain", false, func(ic *schedtest.Ictx) {
			ic.Trace("pre")
			ic.Nested(20 * time.Millisecond)
			ic.Trace("post")
		})
		c.RT.Sleep(5 * time.Millisecond)
		c.Submit("chain", true, func(ic *schedtest.Ictx) {
			ic.Trace("cb")
		})
		if _, err := c.Await(2, 30*time.Second); err != nil {
			t.Fatalf("phase 3: %v", err)
		}
		c.ViewChange(gcs.View{Epoch: 2})
		c.RT.Sleep(time.Millisecond)

		var ref *Scheduler
		for i, s := range c.Scheds {
			as := s.(*Scheduler)
			if as.Switches() == 0 {
				t.Errorf("replica %d: no switches", i)
			}
			if as.Generation() != as.Switches() {
				t.Errorf("replica %d: generation %d != switches %d", i, as.Generation(), as.Switches())
			}
			if i == 0 {
				ref = as
				continue
			}
			if !reflect.DeepEqual(as.History(), ref.History()) ||
				as.Epoch() != ref.Epoch() || as.CurrentKind() != ref.CurrentKind() ||
				as.Skipped() != ref.Skipped() {
				t.Errorf("replica %d state (kind %s epoch %d skipped %d history %v) differs from replica 0 (kind %s epoch %d skipped %d history %v)",
					i, as.CurrentKind(), as.Epoch(), as.Skipped(), as.History(),
					ref.CurrentKind(), ref.Epoch(), ref.Skipped(), ref.History())
			}
		}
	})
	traces := c.Traces()
	for i := 1; i < len(traces); i++ {
		if !reflect.DeepEqual(traces[0], traces[i]) {
			t.Errorf("replica %d trace %v differs from replica 0 %v", i, traces[i], traces[0])
		}
	}
}

// TestSkippedBoundary crosses an epoch boundary while a thread is parked in
// a nested invocation: the cut is not drained, so every replica must skip
// the boundary — and still agree on the skip count.
func TestSkippedBoundary(t *testing.T) {
	factory := func(int) adets.Scheduler {
		s, err := New(Config{Epoch: 2, MinWindow: 1, Plan: alternatingPlan()})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s
	}
	c := schedtest.New(2, factory)
	c.Run(func() {
		c.Submit("nester", false, func(ic *schedtest.Ictx) {
			ic.Nested(50 * time.Millisecond)
			ic.Trace("post")
		})
		// These cross seq 2 and 4 while the nester is parked on the future
		// reply: the boundary quiesce must report non-drained and skip.
		for i := 0; i < 3; i++ {
			c.Submit(wire.LogicalID(fmt.Sprintf("q%d", i)), false, func(ic *schedtest.Ictx) {
				ic.Compute(time.Millisecond)
			})
		}
		if _, err := c.Await(4, 30*time.Second); err != nil {
			t.Fatalf("await: %v", err)
		}
		s0 := c.Scheds[0].(*Scheduler)
		s1 := c.Scheds[1].(*Scheduler)
		if s0.Skipped() == 0 {
			t.Error("no boundary was skipped; the nested park did not cross one")
		}
		if s0.Skipped() != s1.Skipped() || s0.Epoch() != s1.Epoch() {
			t.Errorf("replicas disagree: skipped %d/%d epoch %d/%d",
				s0.Skipped(), s1.Skipped(), s0.Epoch(), s1.Epoch())
		}
	})
}

// TestStatefulRoundTrip marshals the meta-state after switches and restores
// it into a fresh instance (the snapshot state-transfer path): the rejoiner
// must adopt the donor's kind, epoch, generation and history, swap its inner
// scheduler, and keep executing requests.
func TestStatefulRoundTrip(t *testing.T) {
	donorFactory := func(int) adets.Scheduler {
		s, err := New(Config{Epoch: 3, MinWindow: 1, Plan: []PlanStep{{Epoch: 1, Kind: KindMAT}}})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s
	}
	var img []byte
	var donor *Scheduler
	c := schedtest.New(1, donorFactory)
	c.Run(func() {
		for i := 0; i < 6; i++ {
			c.Submit(wire.LogicalID(fmt.Sprintf("cl%d", i)), false, func(ic *schedtest.Ictx) {
				_ = ic.Lock("m")
				_ = ic.Unlock("m")
			})
		}
		if _, err := c.Await(6, 30*time.Second); err != nil {
			t.Fatalf("await: %v", err)
		}
		donor = c.Scheds[0].(*Scheduler)
		if donor.CurrentKind() != KindMAT || donor.Switches() == 0 {
			t.Fatalf("donor did not switch: kind %s switches %d", donor.CurrentKind(), donor.Switches())
		}
		var err error
		img, err = donor.MarshalSchedulerState()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
	})

	c2 := schedtest.New(1, func(int) adets.Scheduler {
		s, err := New(Config{Epoch: 3, MinWindow: 1})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s
	})
	c2.Run(func() {
		rejoiner := c2.Scheds[0].(*Scheduler)
		if err := rejoiner.UnmarshalSchedulerState(img); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if rejoiner.CurrentKind() != donor.CurrentKind() ||
			rejoiner.Epoch() != donor.Epoch() ||
			rejoiner.Generation() != donor.Generation() ||
			rejoiner.Switches() != donor.Switches() ||
			!reflect.DeepEqual(rejoiner.History(), donor.History()) {
			t.Errorf("rejoiner (kind %s epoch %d gen %d) != donor (kind %s epoch %d gen %d)",
				rejoiner.CurrentKind(), rejoiner.Epoch(), rejoiner.Generation(),
				donor.CurrentKind(), donor.Epoch(), donor.Generation())
		}
		// The swapped-in inner scheduler must execute requests.
		c2.Submit("after", false, func(ic *schedtest.Ictx) {
			_ = ic.Lock("m")
			ic.Trace("after")
			_ = ic.Unlock("m")
		})
		if _, err := c2.Await(1, 30*time.Second); err != nil {
			t.Fatalf("post-restore await: %v", err)
		}
	})

	// Error paths.
	c3 := schedtest.New(1, donorFactory)
	c3.Run(func() {
		s := c3.Scheds[0].(*Scheduler)
		if err := s.UnmarshalSchedulerState([]byte("garbage")); err == nil {
			t.Error("garbage image accepted")
		}
	})
}

// TestHandleOrderedGenerations checks the broadcast id namespace: unprefixed
// ids are not consumed, current-generation ids are forwarded to the inner
// scheduler, and stale-generation ids are consumed and dropped.
func TestHandleOrderedGenerations(t *testing.T) {
	c := schedtest.New(1, func(int) adets.Scheduler {
		s, err := New(Config{})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s
	})
	c.Run(func() {
		s := c.Scheds[0].(*Scheduler)
		if s.HandleOrdered("unrelated/id", nil) {
			t.Error("unprefixed id consumed")
		}
		if !s.HandleOrdered(wrapID(99, "x"), nil) {
			t.Error("stale-generation id not consumed")
		}
		// Current generation forwards to the inner scheduler, which does not
		// recognize the id either — but the meta-layer must have unwrapped it.
		if s.HandleOrdered(wrapID(s.Generation(), "x"), nil) {
			t.Error("inner scheduler claimed an unknown id")
		}
		if s.HandleDirect("peer", nil) {
			t.Error("inner scheduler claimed an unknown direct payload")
		}
	})
}
