package shard

import (
	"bytes"
	"strings"
	"testing"

	"github.com/replobj/replobj/internal/wire"
)

func TestGroupNaming(t *testing.T) {
	if g := GroupName("kv", 3); g != "kv@3" {
		t.Fatalf("GroupName = %s", g)
	}
	if d := DirGroup("kv"); d != "kv.dir" {
		t.Fatalf("DirGroup = %s", d)
	}
	obj, idx, ok := SplitGroup("kv@3")
	if !ok || obj != "kv" || idx != 3 {
		t.Fatalf("SplitGroup(kv@3) = %q %d %v", obj, idx, ok)
	}
	for _, bad := range []wire.GroupID{"kv.dir", "kv", "@3", "kv@", "kv@x", "kv@-1"} {
		if _, _, ok := SplitGroup(bad); ok {
			t.Fatalf("SplitGroup(%q) unexpectedly ok", bad)
		}
	}
}

func TestTableEncodeRoundTrip(t *testing.T) {
	tab := NewTable("bank", 4, 32)
	dec, err := DecodeTable(tab.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Object != "bank" || dec.Epoch != 1 || dec.VNodes != 32 || len(dec.Shards) != 4 {
		t.Fatalf("round trip mangled table: %+v", dec)
	}
	if !dec.SameShards(tab) {
		t.Fatalf("shard set mangled: %v vs %v", dec.Shards, tab.Shards)
	}
	// Canonical: re-encoding a decoded table is byte-identical.
	if !bytes.Equal(dec.Encode(), tab.Encode()) {
		t.Fatalf("re-encode not byte-stable")
	}
}

func TestTableDecodeRejectsGarbage(t *testing.T) {
	good := NewTable("bank", 2, 8).Encode()
	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte{}, good...), 0x01),
	}
	for name, b := range cases {
		if _, err := DecodeTable(b); err == nil {
			t.Fatalf("%s: decode unexpectedly succeeded", name)
		}
	}
	// Structurally invalid tables are rejected even when well-framed.
	bad := Table{Object: "bank", Epoch: 0, Shards: []wire.GroupID{"bank@0"}, VNodes: 8}
	if _, err := DecodeTable(bad.Encode()); err == nil {
		t.Fatalf("epoch-0 table decoded without error")
	}
	dup := Table{Object: "bank", Epoch: 1, Shards: []wire.GroupID{"bank@0", "bank@0"}, VNodes: 8}
	if _, err := DecodeTable(dup.Encode()); err == nil {
		t.Fatalf("duplicate-shard table decoded without error")
	}
}

func TestTableValidate(t *testing.T) {
	ok := NewTable("kv", 2, 0)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	for name, tab := range map[string]Table{
		"no-object": {Epoch: 1, Shards: []wire.GroupID{"a@0"}, VNodes: 1},
		"no-shards": {Object: "kv", Epoch: 1, VNodes: 1},
		"no-vnodes": {Object: "kv", Epoch: 1, Shards: []wire.GroupID{"kv@0"}},
	} {
		if err := tab.Validate(); err == nil {
			t.Fatalf("%s: Validate unexpectedly passed", name)
		}
	}
}

func TestDirectoryStateApply(t *testing.T) {
	d := StateFactory(NewTable("kv", 2, 16))().(*DirectoryState)
	if d.Get().Epoch != 1 {
		t.Fatalf("initial epoch %d", d.Get().Epoch)
	}
	next := d.Get().Next(32)
	if err := d.Apply(next); err != nil {
		t.Fatalf("apply next: %v", err)
	}
	if d.Get().Epoch != 2 || d.Get().VNodes != 32 {
		t.Fatalf("apply did not install: %+v", d.Get())
	}
	// Epoch must advance by exactly one.
	skip := d.Get().Next(32)
	skip.Epoch++
	if err := d.Apply(skip); err == nil || !strings.Contains(err.Error(), "does not follow") {
		t.Fatalf("epoch skip accepted: %v", err)
	}
	// Replays of the current epoch are rejected too (epoch 2 again).
	if err := d.Apply(next); err == nil {
		t.Fatalf("epoch replay accepted")
	}
	// Object renames and shard-set changes are rejected.
	wrongObj := d.Get().Next(0)
	wrongObj.Object = "other"
	if err := d.Apply(wrongObj); err == nil {
		t.Fatalf("object rename accepted")
	}
	// Shard-set changes are allowed — the directory flip is half of the
	// resharding fence; the shard replicas' own EpochMethod path keeps its
	// SameShards guard.
	grown := d.Get().Reshape(3)
	if err := d.Apply(grown); err != nil {
		t.Fatalf("shard-set change rejected: %v", err)
	}
	if got := d.Get(); len(got.Shards) != 3 || got.Epoch != grown.Epoch {
		t.Fatalf("reshape did not install: %+v", got)
	}
}

func TestDirectoryStateSnapshotRestore(t *testing.T) {
	d := StateFactory(NewTable("kv", 2, 16))().(*DirectoryState)
	if err := d.Apply(d.Get().Next(8)); err != nil {
		t.Fatalf("apply: %v", err)
	}
	img, err := d.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	fresh := StateFactory(NewTable("kv", 2, 16))().(*DirectoryState)
	if err := fresh.Restore(img); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if fresh.Get().Epoch != 2 || fresh.Get().VNodes != 8 {
		t.Fatalf("restore mangled table: %+v", fresh.Get())
	}
	if err := fresh.Restore([]byte{0xff}); err == nil {
		t.Fatalf("garbage restore accepted")
	}
}

func TestGroupStateInstall(t *testing.T) {
	tab := NewTable("kv", 2, 16)
	g := NewGroupState(GroupName("kv", 0), tab)
	if g.Self() != "kv@0" {
		t.Fatalf("Self = %s", g.Self())
	}
	if g.Current().Table.Epoch != 1 || g.Current().Ring == nil {
		t.Fatalf("initial epoch not installed")
	}
	// Same epoch: idempotent no-op.
	if err := g.Install(tab); err != nil {
		t.Fatalf("idempotent install: %v", err)
	}
	// Forward: installs, with a fresh ring.
	if err := g.Install(tab.Next(32)); err != nil {
		t.Fatalf("forward install: %v", err)
	}
	if e := g.Current(); e.Table.Epoch != 2 || e.Ring.Table().VNodes != 32 {
		t.Fatalf("install did not switch: %+v", e.Table)
	}
	// Backward: rejected.
	if err := g.Install(tab); err == nil {
		t.Fatalf("backward install accepted")
	}
	// Wrong object: rejected.
	if err := g.Install(NewTable("other", 2, 16)); err == nil {
		t.Fatalf("cross-object install accepted")
	}
	// Invalid table: rejected.
	if err := g.Install(Table{}); err == nil {
		t.Fatalf("invalid install accepted")
	}
}

func TestRedirectError(t *testing.T) {
	e := RedirectError(3, "k", "kv@1")
	if !IsRedirect(e) || !strings.Contains(e, "kv@1") || !strings.Contains(e, "epoch 3") {
		t.Fatalf("redirect error malformed: %q", e)
	}
	plain := RedirectError(2, "", "")
	if !IsRedirect(plain) || strings.Contains(plain, "homed") {
		t.Fatalf("epoch-only redirect malformed: %q", plain)
	}
	if IsRedirect("some other error") {
		t.Fatalf("IsRedirect false positive")
	}
}

// FuzzDecodeTable: arbitrary bytes never panic the decoder, and anything
// that decodes re-encodes byte-identically (canonical form).
func FuzzDecodeTable(f *testing.F) {
	f.Add(NewTable("kv", 4, 16).Encode())
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x01, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		tab, err := DecodeTable(b)
		if err != nil {
			return
		}
		if !bytes.Equal(tab.Encode(), b) {
			t.Fatalf("non-canonical table encoding accepted: %x", b)
		}
	})
}
