package shard

import (
	"sort"
	"strconv"

	"github.com/replobj/replobj/internal/wire"
)

// Ring is the consistent-hash ring derived from a Table: each shard
// places Table.VNodes virtual nodes on a 64-bit hash circle, and a key's
// home is the owner of the first point at or clockwise of the key's hash.
//
// Purity is the load-bearing property — replicas validate routing and
// handlers pick nested cross-shard targets at totally ordered points, so
// assignment must be a pure function of (table, key), identical in every
// process. Two deliberate consequences:
//
//   - A virtual node's position depends only on its shard group id and
//     vnode index, never on the epoch. Bumping the epoch without changing
//     the shard set or vnode count therefore moves no keys at all, and
//     growing the shard set from S to S+1 moves only the keys captured by
//     the new shard's points — about 1/(S+1) of the space (the classic
//     consistent-hashing rebalance bound, property-tested in this
//     package).
//   - Hash-point ties break by (shard rank, vnode index), both taken from
//     the table, so even colliding points resolve identically everywhere.
type Ring struct {
	table  Table
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int // index into table.Shards
	vnode int
}

// NewRing builds the ring of a table. The table is assumed valid
// (Validate'd by DecodeTable or built by NewTable).
func NewRing(t Table) *Ring {
	r := &Ring{table: t, points: make([]ringPoint, 0, len(t.Shards)*t.VNodes)}
	for si, g := range t.Shards {
		for v := 0; v < t.VNodes; v++ {
			h := hashPoint(string(g), v)
			r.points = append(r.points, ringPoint{hash: h, shard: si, vnode: v})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.vnode < b.vnode
	})
	return r
}

// Table returns the table the ring was built from.
func (r *Ring) Table() Table { return r.table }

// Home returns the shard index owning a key.
func (r *Ring) Home(key string) int {
	return r.homeHash(hashKey(key))
}

// homeHash returns the shard index owning a raw ring position — the first
// point at or clockwise of h. The migration planner diffs two rings arc by
// arc through this, so it must match Home exactly.
func (r *Ring) homeHash(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise of the top of the circle
	}
	return r.points[i].shard
}

// HomeGroup returns the shard group id owning a key.
func (r *Ring) HomeGroup(key string) wire.GroupID {
	return r.table.Shards[r.Home(key)]
}

// FNV-1a 64-bit with disjoint domain prefixes (so vnode placements and
// key hashes can never alias each other), finished with a splitmix64
// avalanche: raw FNV mixes trailing bytes weakly, which visibly skews the
// arc lengths of vnode points that differ only in their index suffix.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv1a(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func hashPoint(group string, vnode int) uint64 {
	h := fnv1a(fnvOffset, "vn/")
	h = fnv1a(h, group)
	h = fnv1a(h, "/")
	h = fnv1a(h, strconv.Itoa(vnode))
	return mix64(h)
}

func hashKey(key string) uint64 {
	h := fnv1a(fnvOffset, "key/")
	return mix64(fnv1a(h, key))
}
