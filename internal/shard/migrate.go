package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/replobj/replobj/internal/wire"
)

// Elastic resharding: moving a key between shard groups means moving its
// state between two independent total orders, so every step of a ring
// transition is itself an ordered event. This file holds the pure parts —
// the transition table shape, the migration planner (which group hands
// which arc of the ring to which other group), deterministic chunk
// partitioning, and the control-method constants plus the Status encoding
// the orchestrator polls. The replica-side protocol that consumes a Plan
// (quiesced cut, chunked handoff, dual-home forwarding, fence) lives in
// internal/replica; the orchestration in replobj's Sharded.Reshard.

// Reserved control methods of the migration protocol. Like EpochMethod
// they are applied inline at their ordered dispatch positions, never
// through the scheduler, so every replica of a group takes each step at
// exactly the same point of its stream.
const (
	// PrepareMethod arms a transition: the replica computes the migration
	// plan against its installed table, freezes checkpoints and log
	// truncation, and — on source groups — schedules the quiesced cut.
	PrepareMethod = "_shard/prepare"
	// InstallMethod labels the ordered position at which a migration chunk
	// is folded into a target replica's state (chunks travel as their own
	// ordered payloads; the label appears in traces and status output).
	InstallMethod = "_shard/install"
	// FenceMethod completes a transition: the pending table becomes
	// current. It deterministically fails while any incoming handoff is
	// still draining, so the orchestrator retries until every replica of
	// the group fences at the same stream position.
	FenceMethod = "_shard/fence"
	// StatusMethod reads a replica's migration progress (read-only, still
	// ordered so the answer is a consistent cut of the stream).
	StatusMethod = "_shard/status"
)

// Reshape returns the next-epoch table with n shards — the elastic
// counterpart of Next. Shard group ids are always object@0..n-1, so
// growing keeps every existing group and appends, and shrinking retires
// the tail groups; vnode weighting is preserved.
func (t Table) Reshape(n int) Table {
	nt := Table{Object: t.Object, Epoch: t.Epoch + 1, VNodes: t.VNodes}
	for i := 0; i < n; i++ {
		nt.Shards = append(nt.Shards, GroupName(t.Object, i))
	}
	return nt
}

// Move is one directed handoff of a ring transition: every key homed on
// Source under the old table and on Target under the new one.
type Move struct {
	Source wire.GroupID
	Target wire.GroupID
}

// Plan is the full migration plan between two adjacent epochs: the
// distinct (source, target) pairs induced by the ring diff. Plans are
// pure functions of the two tables — every replica and the orchestrator
// compute the identical plan independently.
type Plan struct {
	From, To Table
	Moves    []Move

	fromRing, toRing *Ring
}

// PlanMigration diffs the rings of two adjacent-epoch tables of the same
// object. The moved-key set is exactly the set of keys whose home differs
// between the rings; Moves lists the distinct ownership changes, computed
// arc-by-arc over the merged point sets (ownership is constant on each
// elementary arc, so checking one position per arc is exhaustive).
func PlanMigration(from, to Table) (*Plan, error) {
	if err := from.Validate(); err != nil {
		return nil, err
	}
	if err := to.Validate(); err != nil {
		return nil, err
	}
	if from.Object != to.Object {
		return nil, fmt.Errorf("shard: migration across objects %q -> %q", from.Object, to.Object)
	}
	if to.Epoch != from.Epoch+1 {
		return nil, fmt.Errorf("shard: migration epoch %d does not follow %d", to.Epoch, from.Epoch)
	}
	p := &Plan{From: from, To: to, fromRing: NewRing(from), toRing: NewRing(to)}

	// Merged arc boundaries: each ring's ownership is constant between
	// consecutive points of the union, and the arc ending at boundary h
	// (right-closed) is owned by homeHash(h) on both rings. The wrap arc
	// (maxBoundary, minBoundary] is covered by the minimum boundary.
	bounds := make([]uint64, 0, len(p.fromRing.points)+len(p.toRing.points))
	for _, pt := range p.fromRing.points {
		bounds = append(bounds, pt.hash)
	}
	for _, pt := range p.toRing.points {
		bounds = append(bounds, pt.hash)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	seen := make(map[Move]bool)
	for i, h := range bounds {
		if i > 0 && bounds[i-1] == h {
			continue
		}
		src := from.Shards[p.fromRing.homeHash(h)]
		dst := to.Shards[p.toRing.homeHash(h)]
		if src == dst {
			continue
		}
		m := Move{Source: src, Target: dst}
		if !seen[m] {
			seen[m] = true
			p.Moves = append(p.Moves, m)
		}
	}
	sort.Slice(p.Moves, func(i, j int) bool {
		if p.Moves[i].Source != p.Moves[j].Source {
			return p.Moves[i].Source < p.Moves[j].Source
		}
		return p.Moves[i].Target < p.Moves[j].Target
	})
	return p, nil
}

// MoveOf returns the handoff a key rides, if its home changes across the
// transition.
func (p *Plan) MoveOf(key string) (Move, bool) {
	src := p.From.Shards[p.fromRing.Home(key)]
	dst := p.To.Shards[p.toRing.Home(key)]
	if src == dst {
		return Move{}, false
	}
	return Move{Source: src, Target: dst}, true
}

// Outgoing lists the moves a group sends (Source == self), in plan order.
func (p *Plan) Outgoing(self wire.GroupID) []Move {
	var out []Move
	for _, m := range p.Moves {
		if m.Source == self {
			out = append(out, m)
		}
	}
	return out
}

// Incoming lists the moves a group receives (Target == self), in plan
// order.
func (p *Plan) Incoming(self wire.GroupID) []Move {
	var in []Move
	for _, m := range p.Moves {
		if m.Target == self {
			in = append(in, m)
		}
	}
	return in
}

// DefaultChunkKeys caps the number of keys per migration chunk. Chunking
// bounds frame size and lets the target interleave installs with its own
// traffic; the cut is still atomic — all chunks of one move export at the
// same quiesced position.
const DefaultChunkKeys = 256

// Chunks partitions a sorted key list into runs of at most size keys
// (size <= 0 selects DefaultChunkKeys). An empty key list yields a single
// empty chunk so the handoff always has at least one frame — the target
// learns the stream extent even when nothing moves.
func Chunks(sorted []string, size int) [][]string {
	if size <= 0 {
		size = DefaultChunkKeys
	}
	if len(sorted) == 0 {
		return [][]string{nil}
	}
	out := make([][]string, 0, (len(sorted)+size-1)/size)
	for len(sorted) > size {
		out = append(out, sorted[:size])
		sorted = sorted[size:]
	}
	return append(out, sorted)
}

// Status is one replica's migration progress, answered under
// StatusMethod. The orchestrator polls every replica group until Done on
// all of them before fencing.
type Status struct {
	// Epoch is the installed (current) epoch; Next is the pending one, 0
	// when no transition is in progress.
	Epoch, Next uint64
	// OutDone/OutTotal count this group's outgoing moves whose quiesced
	// cut has completed (state exported and handed off).
	OutDone, OutTotal int
	// InDone/InTotal count incoming source streams fully installed.
	InDone, InTotal int
	// Parked counts requests for incoming keys buffered behind an
	// uninstalled handoff (0 once InDone == InTotal).
	Parked int
	// Forwarded counts old-epoch arrivals relayed to the new home during
	// the dual-home window.
	Forwarded int
}

// Done reports whether the replica has finished its part of the handoff
// and can fence.
func (s Status) Done() bool {
	return s.Next != 0 && s.OutDone == s.OutTotal && s.InDone == s.InTotal
}

// Encode serializes a Status (uvarint fields in declaration order).
func (s Status) Encode() []byte {
	out := make([]byte, 0, 9*7)
	out = binary.AppendUvarint(out, s.Epoch)
	out = binary.AppendUvarint(out, s.Next)
	out = binary.AppendUvarint(out, uint64(s.OutDone))
	out = binary.AppendUvarint(out, uint64(s.OutTotal))
	out = binary.AppendUvarint(out, uint64(s.InDone))
	out = binary.AppendUvarint(out, uint64(s.InTotal))
	out = binary.AppendUvarint(out, uint64(s.Parked))
	out = binary.AppendUvarint(out, uint64(s.Forwarded))
	return out
}

// DecodeStatus parses an encoded Status.
func DecodeStatus(b []byte) (Status, error) {
	var s Status
	fields := []*int{&s.OutDone, &s.OutTotal, &s.InDone, &s.InTotal, &s.Parked, &s.Forwarded}
	var err error
	if s.Epoch, b, err = readUvarint(b); err != nil {
		return s, err
	}
	if s.Next, b, err = readUvarint(b); err != nil {
		return s, err
	}
	for _, f := range fields {
		var v uint64
		if v, b, err = readUvarint(b); err != nil {
			return s, err
		}
		*f = int(v)
	}
	if len(b) != 0 {
		return s, errors.New("shard: trailing bytes after status")
	}
	return s, nil
}
