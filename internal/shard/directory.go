package shard

import (
	"fmt"
	"sync"
)

// DirectoryState is the replicated state of a shard directory group: the
// current routing table of one sharded object. It is an ordinary
// replicated object state — mutated only by totally ordered handler
// invocations — so every directory replica holds the same table at the
// same point of its stream. The mutex only guards against the replica's
// checkpoint machinery reading concurrently with a handler.
type DirectoryState struct {
	mu    sync.Mutex
	table Table
}

// StateFactory returns a per-replica state factory for the directory
// group, seeded with the initial table. Each replica gets its own
// DirectoryState instance (replicated state must never be shared between
// co-hosted replicas).
func StateFactory(initial Table) func() any {
	return func() any { return &DirectoryState{table: initial} }
}

// Get returns the current table.
func (d *DirectoryState) Get() Table {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.table
}

// Apply installs the next table. Updates must advance the epoch by
// exactly one and keep the object name; the shard set may change — the
// directory flip is the first half of a resharding fence (Sharded.Reshard
// flips the directory only after every handoff has drained, and shard
// replicas guard the migration-free EpochMethod path with their own
// SameShards check). The error strings are deterministic, so a rejected
// update rejects identically on every replica.
func (d *DirectoryState) Apply(next Table) error {
	if err := next.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if next.Object != d.table.Object {
		return fmt.Errorf("shard: table object %q does not match directory object %q", next.Object, d.table.Object)
	}
	if next.Epoch != d.table.Epoch+1 {
		return fmt.Errorf("shard: table epoch %d does not follow directory epoch %d", next.Epoch, d.table.Epoch)
	}
	d.table = next
	return nil
}

// Snapshot implements the replica Snapshotter shape: directory state
// rides checkpoints as the encoded table.
func (d *DirectoryState) Snapshot() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.table.Encode(), nil
}

// Restore implements the replica Snapshotter shape.
func (d *DirectoryState) Restore(b []byte) error {
	t, err := DecodeTable(b)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.table = t
	return nil
}
