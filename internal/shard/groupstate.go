package shard

import (
	"fmt"
	"sync/atomic"

	"github.com/replobj/replobj/internal/wire"
)

// Epoch is one immutable installed routing epoch of a shard group
// replica: the table plus the ring derived from it. Handlers and the
// dispatch loop work against an Epoch snapshot, so a table install
// mid-request can never change what an already-dispatched request sees.
type Epoch struct {
	Table Table
	Ring  *Ring
}

// view is the immutable routing view behind GroupState's atomic pointer:
// the current epoch plus, during a ring transition, the pending next
// epoch and the migration plan between them.
type view struct {
	cur  *Epoch
	next *Epoch
	plan *Plan
}

// GroupState is a shard-group replica's view of the routing table. The
// dispatch goroutine installs new epochs at totally ordered points
// (EpochMethod requests, migration prepare/fence, snapshot installs);
// request threads and observers read the current snapshot through an
// atomic pointer, so no reader ever blocks the ordered stream.
type GroupState struct {
	self wire.GroupID
	cur  atomic.Pointer[view]
}

// NewGroupState seeds a replica's routing state. self is the shard group
// the replica belongs to; initial is the bootstrap table (epoch 1 unless
// the replica is rejoining from a snapshot, which reinstalls on top).
func NewGroupState(self wire.GroupID, initial Table) *GroupState {
	g := &GroupState{self: self}
	g.cur.Store(&view{cur: &Epoch{Table: initial, Ring: NewRing(initial)}})
	return g
}

// Self returns the shard group this replica belongs to.
func (g *GroupState) Self() wire.GroupID { return g.self }

// Current returns the installed epoch snapshot.
func (g *GroupState) Current() *Epoch { return g.cur.Load().cur }

// Pending returns the transition's target epoch, nil outside transitions.
func (g *GroupState) Pending() *Epoch { return g.cur.Load().next }

// Plan returns the in-progress migration plan, nil outside transitions.
func (g *GroupState) Plan() *Plan { return g.cur.Load().plan }

// Install switches to a newer table with the same shard set — the
// migration-free epoch bump of EpochMethod. Installing the current epoch
// again is an idempotent no-op (EpochMethod retries land here); going
// backwards, changing the shard set (that path is BeginTransition +
// FinalizeTransition), or installing during a transition is an error.
// Only the dispatch goroutine mutates the state, at ordered points, so
// the read-modify-write needs no CAS loop.
func (g *GroupState) Install(t Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	v := g.cur.Load()
	if t.Object != v.cur.Table.Object {
		return fmt.Errorf("shard: table object %q does not match group object %q", t.Object, v.cur.Table.Object)
	}
	if t.Epoch < v.cur.Table.Epoch {
		return fmt.Errorf("shard: table epoch %d behind installed epoch %d", t.Epoch, v.cur.Table.Epoch)
	}
	if t.Epoch == v.cur.Table.Epoch {
		return nil
	}
	if v.next != nil {
		return fmt.Errorf("shard: epoch install during transition to %d", v.next.Table.Epoch)
	}
	if !t.SameShards(v.cur.Table) {
		return fmt.Errorf("shard: shard-set change %d -> %d shards requires migration", len(v.cur.Table.Shards), len(t.Shards))
	}
	g.cur.Store(&view{cur: &Epoch{Table: t, Ring: NewRing(t)}})
	return nil
}

// BeginTransition arms a ring transition to the next-epoch table and
// returns the migration plan. Re-arming the same transition is
// idempotent (prepare retries return the existing plan).
func (g *GroupState) BeginTransition(next Table) (*Plan, error) {
	v := g.cur.Load()
	if v.next != nil {
		if next.Epoch == v.next.Table.Epoch && next.SameShards(v.next.Table) {
			return v.plan, nil
		}
		return nil, fmt.Errorf("shard: transition to epoch %d already in progress", v.next.Table.Epoch)
	}
	plan, err := PlanMigration(v.cur.Table, next)
	if err != nil {
		return nil, err
	}
	g.cur.Store(&view{
		cur:  v.cur,
		next: &Epoch{Table: next, Ring: plan.toRing},
		plan: plan,
	})
	return plan, nil
}

// FinalizeTransition fences the in-progress transition: the pending
// epoch becomes current. Calling it without a transition is an error
// (the fence handler checks handoff completion before calling).
func (g *GroupState) FinalizeTransition() (*Epoch, error) {
	v := g.cur.Load()
	if v.next == nil {
		return nil, fmt.Errorf("shard: fence without a transition (epoch %d)", v.cur.Table.Epoch)
	}
	g.cur.Store(&view{cur: v.next})
	return v.next, nil
}

// Restore adopts a table from a snapshot install, clearing any armed
// transition: checkpoints never cover mid-migration state (they are
// suppressed between prepare and fence), so a snapshot's table is always
// pre-prepare or post-fence and the tail replay reconstructs the rest.
func (g *GroupState) Restore(t Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	v := g.cur.Load()
	if t.Object != v.cur.Table.Object {
		return fmt.Errorf("shard: table object %q does not match group object %q", t.Object, v.cur.Table.Object)
	}
	g.cur.Store(&view{cur: &Epoch{Table: t, Ring: NewRing(t)}})
	return nil
}
