package shard

import (
	"fmt"
	"sync/atomic"

	"github.com/replobj/replobj/internal/wire"
)

// Epoch is one immutable installed routing epoch of a shard group
// replica: the table plus the ring derived from it. Handlers and the
// dispatch loop work against an Epoch snapshot, so a table install
// mid-request can never change what an already-dispatched request sees.
type Epoch struct {
	Table Table
	Ring  *Ring
}

// GroupState is a shard-group replica's view of the routing table. The
// dispatch goroutine installs new epochs at totally ordered points
// (EpochMethod requests, snapshot installs); request threads and
// observers read the current snapshot through an atomic pointer, so no
// reader ever blocks the ordered stream.
type GroupState struct {
	self wire.GroupID
	cur  atomic.Pointer[Epoch]
}

// NewGroupState seeds a replica's routing state. self is the shard group
// the replica belongs to; initial is the bootstrap table (epoch 1 unless
// the replica is rejoining from a snapshot, which reinstalls on top).
func NewGroupState(self wire.GroupID, initial Table) *GroupState {
	g := &GroupState{self: self}
	e := &Epoch{Table: initial, Ring: NewRing(initial)}
	g.cur.Store(e)
	return g
}

// Self returns the shard group this replica belongs to.
func (g *GroupState) Self() wire.GroupID { return g.self }

// Current returns the installed epoch snapshot.
func (g *GroupState) Current() *Epoch { return g.cur.Load() }

// Install switches to a newer table. Installing the current epoch again
// is an idempotent no-op (EpochMethod retries land here); going backwards
// is an error. Only the dispatch goroutine calls Install, at ordered
// points, so the read-modify-write needs no CAS loop.
func (g *GroupState) Install(t Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	cur := g.cur.Load()
	if t.Object != cur.Table.Object {
		return fmt.Errorf("shard: table object %q does not match group object %q", t.Object, cur.Table.Object)
	}
	if t.Epoch < cur.Table.Epoch {
		return fmt.Errorf("shard: table epoch %d behind installed epoch %d", t.Epoch, cur.Table.Epoch)
	}
	if t.Epoch == cur.Table.Epoch {
		return nil
	}
	g.cur.Store(&Epoch{Table: t, Ring: NewRing(t)})
	return nil
}
