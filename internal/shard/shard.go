// Package shard partitions a replicated object's key space across many
// independent replica groups — the scale-out axis of the middleware. One
// replicated object = one group = one total order is the hard ceiling on
// aggregate throughput no matter how fast the single pipeline gets;
// following Parallel Deferred Update Replication (see PAPERS.md), the
// object space is split into S shards, each a full replica group with its
// own sequencer, ordered log, scheduler and checkpoints, and clients route
// each invocation to its home group by key class.
//
// Routing is a consistent-hash ring with virtual nodes, derived from an
// epoch-numbered Table. The table itself lives in a *shard directory* that
// is a replicated object like any other (the middleware eats its own
// dogfood), so all clients and replicas converge on the same routing
// epoch; a replica that receives a request routed with a stale epoch — or
// with a key it does not own under the current table — answers with a
// deterministic redirect carrying its current epoch, and the client
// refreshes and retries with bounded backoff.
//
// Cross-shard invocations take a first-cut blocking two-group ordered
// path: the request is ordered in the primary key's home group, and the
// handler reaches the other shards through nested invocations routed by
// the table captured at the request's totally ordered dispatch point
// (Invocation.InvokeShard), so the merge point — the nested reply's
// position in the originating order — is identical on every replica.
//
// This package holds the pure routing machinery (table, ring, directory
// state, per-replica group state); the replica/client integration lives in
// internal/replica and internal/client, the public API in replobj.go.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/replobj/replobj/internal/wire"
)

// DefaultVNodes is the default number of virtual nodes each shard places
// on the ring. More virtual nodes smooth the key distribution and shrink
// the per-shard load variance; 64 keeps rebalance deltas near the
// theoretical 1/(S+1) bound without bloating ring construction.
const DefaultVNodes = 64

// EpochMethod is the reserved control method that installs a new routing
// table on a shard group. It travels through the group's own total order
// and is applied inline at its ordered dispatch position — never through
// the scheduler — so every replica switches epochs at exactly the same
// point of the stream. Application handlers cannot be registered under it.
const EpochMethod = "_shard/epoch"

// GroupName returns the group id of the i-th shard of an object.
func GroupName(object string, i int) wire.GroupID {
	return wire.GroupID(object + "@" + strconv.Itoa(i))
}

// DirGroup returns the group id of an object's shard directory.
func DirGroup(object string) wire.GroupID {
	return wire.GroupID(object + ".dir")
}

// SplitGroup parses a shard group id back into (object, shard index).
// ok is false for unsharded group ids (including directory groups).
func SplitGroup(g wire.GroupID) (object string, index int, ok bool) {
	s := string(g)
	at := strings.LastIndexByte(s, '@')
	if at <= 0 || at == len(s)-1 {
		return "", 0, false
	}
	idx, err := strconv.Atoi(s[at+1:])
	if err != nil || idx < 0 {
		return "", 0, false
	}
	return s[:at], idx, true
}

// Table is the epoch-numbered routing table of one sharded object: the
// shard groups in rank order plus the virtual-node count of the ring
// derived from it. Tables are immutable values; a rebalance installs a
// whole new table under the next epoch.
type Table struct {
	// Object is the sharded object's base name.
	Object string
	// Epoch numbers the table, starting at 1; every routed request carries
	// the epoch it was routed under, and shard replicas redirect requests
	// whose epoch differs from the installed one.
	Epoch uint64
	// Shards lists the shard group ids in rank order.
	Shards []wire.GroupID
	// VNodes is the virtual-node count per shard on the ring.
	VNodes int
}

// NewTable builds the epoch-1 table of an object with n shards. vnodes <= 0
// selects DefaultVNodes.
func NewTable(object string, n, vnodes int) Table {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	t := Table{Object: object, Epoch: 1, VNodes: vnodes}
	for i := 0; i < n; i++ {
		t.Shards = append(t.Shards, GroupName(object, i))
	}
	return t
}

// Next returns the table of the following epoch with a new virtual-node
// count — the only rebalance shape supported without state migration: the
// shard set is unchanged, but key→shard assignment may shift with the
// vnode weighting.
func (t Table) Next(vnodes int) Table {
	if vnodes <= 0 {
		vnodes = t.VNodes
	}
	return Table{
		Object: t.Object,
		Epoch:  t.Epoch + 1,
		Shards: append([]wire.GroupID(nil), t.Shards...),
		VNodes: vnodes,
	}
}

// Validate checks structural invariants.
func (t Table) Validate() error {
	if t.Object == "" {
		return errors.New("shard: table without object name")
	}
	if t.Epoch == 0 {
		return errors.New("shard: table epoch 0")
	}
	if len(t.Shards) == 0 {
		return errors.New("shard: table without shards")
	}
	if t.VNodes <= 0 {
		return errors.New("shard: table without virtual nodes")
	}
	seen := make(map[wire.GroupID]bool, len(t.Shards))
	for _, g := range t.Shards {
		if g == "" || seen[g] {
			return fmt.Errorf("shard: duplicate or empty shard group %q", g)
		}
		seen[g] = true
	}
	return nil
}

// SameShards reports whether o covers exactly the same shard set in the
// same order — the precondition for a migration-free table update.
func (t Table) SameShards(o Table) bool {
	if len(t.Shards) != len(o.Shards) {
		return false
	}
	for i := range t.Shards {
		if t.Shards[i] != o.Shards[i] {
			return false
		}
	}
	return true
}

// Encode serializes the table into the canonical binary form that rides
// directory replies, EpochMethod control requests and checkpoint
// envelopes: uvarint epoch, uvarint vnodes, object, uvarint shard count,
// shards — all strings length-prefixed.
func (t Table) Encode() []byte {
	out := make([]byte, 0, 16+len(t.Object)+16*len(t.Shards))
	out = binary.AppendUvarint(out, t.Epoch)
	out = binary.AppendUvarint(out, uint64(t.VNodes))
	out = appendString(out, t.Object)
	out = binary.AppendUvarint(out, uint64(len(t.Shards)))
	for _, g := range t.Shards {
		out = appendString(out, string(g))
	}
	return out
}

// DecodeTable parses an encoded table and validates it.
func DecodeTable(b []byte) (Table, error) {
	var t Table
	epoch, b, err := readUvarint(b)
	if err != nil {
		return t, err
	}
	vn, b, err := readUvarint(b)
	if err != nil {
		return t, err
	}
	obj, b, err := readString(b)
	if err != nil {
		return t, err
	}
	n, b, err := readUvarint(b)
	if err != nil {
		return t, err
	}
	if n > 1<<16 {
		return t, fmt.Errorf("shard: implausible shard count %d", n)
	}
	t = Table{Object: obj, Epoch: epoch, VNodes: int(vn)}
	for i := uint64(0); i < n; i++ {
		var g string
		if g, b, err = readString(b); err != nil {
			return t, err
		}
		t.Shards = append(t.Shards, wire.GroupID(g))
	}
	if len(b) != 0 {
		return t, errors.New("shard: trailing bytes after table")
	}
	if err := t.Validate(); err != nil {
		return t, err
	}
	return t, nil
}

var errTruncated = errors.New("shard: truncated table encoding")

func appendString(out []byte, s string) []byte {
	out = binary.AppendUvarint(out, uint64(len(s)))
	return append(out, s...)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, errTruncated
	}
	return v, b[n:], nil
}

func readString(b []byte) (string, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return "", b, err
	}
	if n > uint64(len(b)) {
		return "", b, errTruncated
	}
	return string(b[:n]), b[n:], nil
}

// RedirectPrefix opens the deterministic error string of a wrong-shard
// reply. The authoritative redirect marker on the wire is the reply's
// non-zero ShardEpoch field; the prefix exists for log readability and
// for IsRedirect checks on flattened errors.
const RedirectPrefix = "shard: wrong shard"

// RedirectError formats a wrong-shard reply error: the replica's installed
// epoch and, when the key itself is misrouted, the key's current home.
func RedirectError(epoch uint64, key string, home wire.GroupID) string {
	if home != "" {
		return fmt.Sprintf("%s (epoch %d; key %q is homed on %s)", RedirectPrefix, epoch, key, home)
	}
	return fmt.Sprintf("%s (epoch %d)", RedirectPrefix, epoch)
}

// IsRedirect reports whether an error string is a wrong-shard redirect.
func IsRedirect(errstr string) bool {
	return strings.HasPrefix(errstr, RedirectPrefix)
}
