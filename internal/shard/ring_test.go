package shard

import (
	"fmt"
	"testing"
)

// Ring assignment must be a pure function of (table, key): rebuilding the
// ring from an independently decoded copy of the table — as a second
// process would — yields identical homes for every key.
func TestRingPurityAcrossDecode(t *testing.T) {
	for _, s := range []int{1, 2, 3, 4, 8, 16} {
		tab := NewTable("kv", s, 0)
		remote, err := DecodeTable(tab.Encode())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		local, far := NewRing(tab), NewRing(remote)
		for i := 0; i < 5000; i++ {
			k := fmt.Sprintf("user:%06d", i)
			if a, b := local.Home(k), far.Home(k); a != b {
				t.Fatalf("S=%d key %q: local home %d, decoded-table home %d", s, k, a, b)
			}
		}
	}
}

// Bumping the epoch without changing the shard set or vnode count must
// move no keys at all: virtual-node placement is independent of epoch.
func TestRingEpochBumpMovesNothing(t *testing.T) {
	tab := NewTable("kv", 4, 0)
	next := tab.Next(0)
	if next.Epoch != tab.Epoch+1 {
		t.Fatalf("Next epoch = %d, want %d", next.Epoch, tab.Epoch+1)
	}
	a, b := NewRing(tab), NewRing(next)
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("k%07d", i)
		if a.Home(k) != b.Home(k) {
			t.Fatalf("epoch bump moved key %q: %d -> %d", k, a.Home(k), b.Home(k))
		}
	}
}

// Growing the shard set from S to S+1 moves only the keys the new
// shard's virtual nodes capture — about 1/(S+1) of the space. Assert the
// classic consistent-hashing rebalance-delta bound with generous slack
// (2× expected above, expected/4 below so the test also proves the ring
// actually rebalances).
func TestRingRebalanceDeltaBound(t *testing.T) {
	const keys = 20000
	for _, s := range []int{1, 2, 3, 4, 7} {
		// 256 vnodes tighten the variance so the 2× bound has huge margin.
		small := NewTable("kv", s, 256)
		big := NewTable("kv", s+1, 256)
		a, b := NewRing(small), NewRing(big)
		moved, movedElsewhere := 0, 0
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("acct:%07d", i)
			ha, hb := a.Home(k), b.Home(k)
			if ha != hb {
				moved++
				if hb != s {
					movedElsewhere++
				}
			}
		}
		expected := float64(keys) / float64(s+1)
		if f := float64(moved); f > 2*expected {
			t.Fatalf("S=%d->%d moved %d keys, above 2x the 1/(S+1) bound (%.0f)", s, s+1, moved, expected)
		} else if f < expected/4 {
			t.Fatalf("S=%d->%d moved only %d keys — ring is not rebalancing (expected ~%.0f)", s, s+1, moved, expected)
		}
		// Consistent hashing's defining property: keys only ever move TO
		// the new shard, never between surviving shards.
		if movedElsewhere != 0 {
			t.Fatalf("S=%d->%d: %d keys moved between surviving shards", s, s+1, movedElsewhere)
		}
	}
}

// Every shard must own a non-trivial slice of the key space (vnode
// smoothing working as intended).
func TestRingBalance(t *testing.T) {
	const keys = 40000
	tab := NewTable("kv", 8, 0)
	r := NewRing(tab)
	counts := make([]int, 8)
	for i := 0; i < keys; i++ {
		counts[r.Home(fmt.Sprintf("sess:%07d", i))]++
	}
	fair := keys / 8
	for i, c := range counts {
		if c < fair/3 || c > fair*3 {
			t.Fatalf("shard %d owns %d of %d keys (fair share %d): imbalance beyond 3x", i, c, keys, fair)
		}
	}
}

func TestRingHomeGroup(t *testing.T) {
	tab := NewTable("kv", 4, 0)
	r := NewRing(tab)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("x%d", i)
		if got, want := r.HomeGroup(k), tab.Shards[r.Home(k)]; got != want {
			t.Fatalf("HomeGroup(%q) = %s, want %s", k, got, want)
		}
	}
	if r.Table().Epoch != 1 {
		t.Fatalf("Table() epoch = %d", r.Table().Epoch)
	}
}

// FuzzRingPurity: for arbitrary keys and shard counts, assignment is in
// range, stable across ring rebuilds, and identical when computed from a
// decoded copy of the table.
func FuzzRingPurity(f *testing.F) {
	f.Add("user:42", uint8(4), uint8(16))
	f.Add("", uint8(1), uint8(1))
	f.Add("\x00\xff\x17", uint8(9), uint8(3))
	f.Fuzz(func(t *testing.T, key string, shards, vnodes uint8) {
		s := int(shards%16) + 1
		v := int(vnodes%64) + 1
		tab := NewTable("obj", s, v)
		r1 := NewRing(tab)
		h := r1.Home(key)
		if h < 0 || h >= s {
			t.Fatalf("home %d out of range [0,%d)", h, s)
		}
		if r1.Home(key) != h {
			t.Fatalf("unstable within one ring")
		}
		dec, err := DecodeTable(tab.Encode())
		if err != nil {
			t.Fatalf("decode round-trip: %v", err)
		}
		if NewRing(dec).Home(key) != h {
			t.Fatalf("home differs across decode: key %q S=%d V=%d", key, s, v)
		}
	})
}
