package shard

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestReshapeShape: Reshape advances the epoch by one, renumbers the
// shard groups 0..n-1, and keeps the vnode weighting.
func TestReshapeShape(t *testing.T) {
	tab := NewTable("kv", 2, 16)
	grown := tab.Reshape(4)
	if grown.Epoch != 2 || grown.VNodes != 16 || len(grown.Shards) != 4 {
		t.Fatalf("reshape mangled table: %+v", grown)
	}
	for i, g := range grown.Shards {
		if g != GroupName("kv", i) {
			t.Fatalf("shard %d named %s", i, g)
		}
	}
	if err := grown.Validate(); err != nil {
		t.Fatalf("reshaped table invalid: %v", err)
	}
	shrunk := grown.Reshape(1)
	if shrunk.Epoch != 3 || len(shrunk.Shards) != 1 {
		t.Fatalf("shrink mangled table: %+v", shrunk)
	}
}

// TestPlanMigrationProperties sweeps (old size, new size, vnodes) pairs
// and checks the planner's load-bearing properties against the public
// ring API:
//
//   - a sampled key is moved iff its home differs between the two rings,
//     and its move is listed in Plan.Moves (completeness);
//   - growing moves keys only INTO new groups, shrinking only OUT OF
//     retired groups (the consistent-hashing minimal-movement guarantee,
//     lifted to the plan);
//   - equal shard sets plan zero moves (epoch bumps move nothing);
//   - Outgoing/Incoming partition the move set.
func TestPlanMigrationProperties(t *testing.T) {
	const keys = 4000
	for _, vn := range []int{1, 8, 32} {
		for oldS := 1; oldS <= 5; oldS++ {
			for newS := 1; newS <= 5; newS++ {
				from := NewTable("kv", oldS, vn)
				to := from.Reshape(newS)
				plan, err := PlanMigration(from, to)
				if err != nil {
					t.Fatalf("plan %d->%d vn=%d: %v", oldS, newS, vn, err)
				}
				fromRing, toRing := NewRing(from), NewRing(to)
				listed := make(map[Move]bool, len(plan.Moves))
				for _, m := range plan.Moves {
					listed[m] = true
				}
				for i := 0; i < keys; i++ {
					key := fmt.Sprintf("key-%d", i)
					src, dst := fromRing.HomeGroup(key), toRing.HomeGroup(key)
					m, moved := plan.MoveOf(key)
					if moved != (src != dst) {
						t.Fatalf("%d->%d vn=%d key %s: MoveOf=%v, ring diff=%v",
							oldS, newS, vn, key, moved, src != dst)
					}
					if moved {
						if m.Source != src || m.Target != dst {
							t.Fatalf("key %s: move %+v, rings say %s->%s", key, m, src, dst)
						}
						if !listed[m] {
							t.Fatalf("%d->%d vn=%d: realized move %+v missing from plan %v",
								oldS, newS, vn, m, plan.Moves)
						}
					}
				}
				switch {
				case newS == oldS:
					if len(plan.Moves) != 0 {
						t.Fatalf("equal shard sets planned moves: %v", plan.Moves)
					}
				case newS > oldS:
					for _, m := range plan.Moves {
						if _, idx, ok := SplitGroup(m.Target); !ok || idx < oldS {
							t.Fatalf("grow %d->%d moves into surviving group: %+v", oldS, newS, m)
						}
					}
				default:
					for _, m := range plan.Moves {
						if _, idx, ok := SplitGroup(m.Source); !ok || idx < newS {
							t.Fatalf("shrink %d->%d moves out of surviving group: %+v", oldS, newS, m)
						}
					}
				}
				var split []Move
				for _, g := range to.Shards {
					split = append(split, plan.Incoming(g)...)
				}
				if newS > oldS && len(split) != len(plan.Moves) {
					t.Fatalf("Incoming does not partition moves: %d vs %d", len(split), len(plan.Moves))
				}
				split = split[:0]
				for _, g := range from.Shards {
					split = append(split, plan.Outgoing(g)...)
				}
				if len(split) != len(plan.Moves) {
					t.Fatalf("Outgoing does not partition moves: %d vs %d", len(split), len(plan.Moves))
				}
			}
		}
	}
}

// TestPlanMigrationDeterministic: the plan is a pure function of the two
// tables — computing it twice yields identical move lists (replicas and
// the orchestrator plan independently and must agree).
func TestPlanMigrationDeterministic(t *testing.T) {
	from := NewTable("kv", 2, 32)
	to := from.Reshape(4)
	a, err := PlanMigration(from, to)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	b, _ := PlanMigration(from, to)
	if len(a.Moves) == 0 {
		t.Fatalf("2->4 planned no moves")
	}
	if fmt.Sprint(a.Moves) != fmt.Sprint(b.Moves) {
		t.Fatalf("plans differ: %v vs %v", a.Moves, b.Moves)
	}
}

// TestPlanMigrationRejects: cross-object and non-adjacent-epoch plans are
// deterministic errors.
func TestPlanMigrationRejects(t *testing.T) {
	from := NewTable("kv", 2, 16)
	if _, err := PlanMigration(from, NewTable("other", 4, 16)); err == nil {
		t.Fatalf("cross-object plan accepted")
	}
	skip := from.Reshape(4)
	skip.Epoch++
	if _, err := PlanMigration(from, skip); err == nil {
		t.Fatalf("epoch-skipping plan accepted")
	}
	if _, err := PlanMigration(from, Table{}); err == nil {
		t.Fatalf("invalid target accepted")
	}
}

// TestChunksPartition: chunking a sorted key list concatenates back to
// the original, respects the size cap, and an empty list still yields one
// (empty) chunk so the handoff stream has an extent.
func TestChunksPartition(t *testing.T) {
	var keys []string
	for i := 0; i < 1000; i++ {
		keys = append(keys, fmt.Sprintf("k%04d", i))
	}
	for _, size := range []int{1, 7, 256, 999, 1000, 5000} {
		chunks := Chunks(keys, size)
		var back []string
		for _, c := range chunks {
			if len(c) > size {
				t.Fatalf("size=%d: chunk of %d keys", size, len(c))
			}
			back = append(back, c...)
		}
		if len(back) != len(keys) {
			t.Fatalf("size=%d: partition lost keys (%d of %d)", size, len(back), len(keys))
		}
		for i := range back {
			if back[i] != keys[i] {
				t.Fatalf("size=%d: key %d reordered", size, i)
			}
		}
	}
	if chunks := Chunks(nil, 0); len(chunks) != 1 || len(chunks[0]) != 0 {
		t.Fatalf("empty list chunked to %v", chunks)
	}
	if chunks := Chunks(keys, 0); len(chunks) != (len(keys)+DefaultChunkKeys-1)/DefaultChunkKeys {
		t.Fatalf("default chunk size not applied: %d chunks", len(chunks))
	}
}

// TestGroupStateTransition drives the replica-side epoch state machine:
// arm, idempotent re-arm, guarded install during transition, fence.
func TestGroupStateTransition(t *testing.T) {
	tab := NewTable("kv", 2, 16)
	g := NewGroupState(GroupName("kv", 0), tab)
	next := tab.Reshape(4)
	plan, err := g.BeginTransition(next)
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if g.Pending() == nil || g.Pending().Table.Epoch != 2 || g.Plan() != plan {
		t.Fatalf("transition not armed: pending=%+v", g.Pending())
	}
	if g.Current().Table.Epoch != 1 {
		t.Fatalf("begin flipped current epoch early")
	}
	// Re-arming the identical transition is idempotent.
	again, err := g.BeginTransition(next)
	if err != nil || again != plan {
		t.Fatalf("re-arm: plan=%p err=%v", again, err)
	}
	// A different transition while one is armed is rejected.
	if _, err := g.BeginTransition(tab.Reshape(3)); err == nil {
		t.Fatalf("conflicting transition accepted")
	}
	// EpochMethod installs are rejected mid-transition.
	if err := g.Install(tab.Next(32)); err == nil || !strings.Contains(err.Error(), "transition") {
		t.Fatalf("install during transition: %v", err)
	}
	e, err := g.FinalizeTransition()
	if err != nil || e.Table.Epoch != 2 {
		t.Fatalf("fence: %+v %v", e, err)
	}
	if g.Pending() != nil || g.Current().Table.Epoch != 2 || len(g.Current().Table.Shards) != 4 {
		t.Fatalf("fence did not install: %+v", g.Current().Table)
	}
	// Fencing without a transition is an error.
	if _, err := g.FinalizeTransition(); err == nil {
		t.Fatalf("double fence accepted")
	}
}

// TestGroupStateInstallGuardsShardSet: the migration-free EpochMethod
// path refuses shard-set changes now that the directory allows them —
// those must travel through BeginTransition/FinalizeTransition.
func TestGroupStateInstallGuardsShardSet(t *testing.T) {
	tab := NewTable("kv", 2, 16)
	g := NewGroupState(GroupName("kv", 0), tab)
	if err := g.Install(tab.Reshape(4)); err == nil || !strings.Contains(err.Error(), "migration") {
		t.Fatalf("shard-set install accepted: %v", err)
	}
	// Restore (the snapshot path) may adopt any valid same-object table.
	if err := g.Restore(tab.Reshape(4)); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(g.Current().Table.Shards) != 4 || g.Pending() != nil {
		t.Fatalf("restore did not adopt: %+v", g.Current().Table)
	}
	if err := g.Restore(NewTable("other", 2, 16)); err == nil {
		t.Fatalf("cross-object restore accepted")
	}
}

// TestStatusRoundTrip: Status encodes canonically and Done tracks the
// handoff counters.
func TestStatusRoundTrip(t *testing.T) {
	s := Status{Epoch: 3, Next: 4, OutDone: 1, OutTotal: 2, InDone: 0, InTotal: 1, Parked: 5, Forwarded: 7}
	dec, err := DecodeStatus(s.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec != s {
		t.Fatalf("round trip mangled status: %+v vs %+v", dec, s)
	}
	if s.Done() {
		t.Fatalf("incomplete handoff reported done")
	}
	done := Status{Epoch: 3, Next: 4, OutDone: 2, OutTotal: 2, InDone: 1, InTotal: 1}
	if !done.Done() {
		t.Fatalf("complete handoff not done")
	}
	if (Status{Epoch: 4}).Done() {
		t.Fatalf("no-transition status reported done")
	}
	if _, err := DecodeStatus([]byte{0x01}); err == nil {
		t.Fatalf("truncated status decoded")
	}
	if _, err := DecodeStatus(append(s.Encode(), 0x00)); err == nil {
		t.Fatalf("trailing bytes accepted")
	}
}

// FuzzDecodeStatus: arbitrary bytes never panic, and anything that
// decodes re-encodes byte-identically (canonical form).
func FuzzDecodeStatus(f *testing.F) {
	f.Add(Status{Epoch: 1, Next: 2, OutTotal: 3}.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeStatus(b)
		if err != nil {
			return
		}
		if !bytes.Equal(s.Encode(), b) {
			t.Fatalf("non-canonical status encoding accepted: %x", b)
		}
	})
}
