package tracing

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDDeterministicAndNonZero(t *testing.T) {
	a := TraceID("client/c0#1")
	b := TraceID("client/c0#1")
	if a != b {
		t.Fatalf("TraceID not deterministic: %x vs %x", a, b)
	}
	if a == 0 {
		t.Fatal("TraceID returned the untraced sentinel 0")
	}
	if TraceID("client/c0#2") == a {
		t.Fatal("distinct logical ids collided")
	}
	if TraceID("") == 0 {
		t.Fatal("TraceID(\"\") must still be non-zero")
	}
}

func TestNewSpanIDDistinguishesInputs(t *testing.T) {
	tr := TraceID("client/c0#1")
	ids := map[uint64]string{}
	for _, c := range []struct {
		name, node string
		start      time.Duration
	}{
		{"exec", "g/0", 10}, {"exec", "g/1", 10}, {"exec", "g/0", 20},
		{"order", "g/0", 10},
	} {
		id := NewSpanID(tr, c.name, c.node, c.start)
		if id == 0 {
			t.Fatal("span id 0")
		}
		key := fmt.Sprintf("%s/%s/%d", c.name, c.node, c.start)
		if prev, dup := ids[id]; dup {
			t.Fatalf("span id collision between %s and %s", prev, key)
		}
		ids[id] = key
	}
}

func TestCollectorRecordSnapshotOrder(t *testing.T) {
	c := NewCollector(8)
	for i := 3; i >= 1; i-- {
		c.Record(Span{Trace: 1, ID: uint64(i), Name: "s", Start: time.Duration(i)})
	}
	snap := c.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("len = %d, want 3", len(snap))
	}
	for i, sp := range snap {
		if sp.Start != time.Duration(i+1) {
			t.Fatalf("snapshot not start-ordered: %v", snap)
		}
	}
	if c.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", c.Dropped())
	}
}

func TestCollectorRingOverwrites(t *testing.T) {
	c := NewCollector(4)
	for i := 0; i < 10; i++ {
		c.Record(Span{Trace: 1, ID: uint64(i + 1), Start: time.Duration(i)})
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := c.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	for _, sp := range c.Snapshot() {
		if sp.ID <= 6 {
			t.Fatalf("span %d survived overwrite", sp.ID)
		}
	}
}

func TestCollectorConcurrentRecord(t *testing.T) {
	c := NewCollector(1024)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Record(Span{Trace: uint64(w + 1), ID: uint64(i + 1)})
			}
		}()
	}
	wg.Wait()
	if got := c.Len(); got != 1024 {
		t.Fatalf("Len = %d, want full ring", got)
	}
	if got := c.Dropped(); got != workers*per-1024 {
		t.Fatalf("Dropped = %d, want %d", got, workers*per-1024)
	}
}

func TestBindLookupUnbind(t *testing.T) {
	c := NewCollector(4)
	ctx := Context{TraceID: 42, Span: 7}
	c.Bind("client/c0#1", ctx)
	if got := c.Lookup("client/c0#1"); got != ctx {
		t.Fatalf("Lookup = %+v, want %+v", got, ctx)
	}
	if got := c.Lookup("client/cX#9"); got.Valid() {
		t.Fatalf("unknown logical resolved to %+v", got)
	}
	c.Unbind("client/c0#1")
	if got := c.Lookup("client/c0#1"); got.Valid() {
		t.Fatalf("Lookup after Unbind = %+v", got)
	}
	// Zero contexts must not bind (they would shadow real ones).
	c.Bind("x", Context{})
	if c.Lookup("x").Valid() {
		t.Fatal("zero context bound")
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Record(Span{})
	c.Bind("x", Context{TraceID: 1})
	c.Unbind("x")
	c.SetObserver(func(Span) {})
	if c.Lookup("x").Valid() || c.Len() != 0 || c.Dropped() != 0 || c.Snapshot() != nil {
		t.Fatal("nil collector leaked state")
	}
	if err := c.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestObserverReceivesSpans(t *testing.T) {
	c := NewCollector(4)
	var got []Span
	c.SetObserver(func(sp Span) { got = append(got, sp) })
	c.Record(Span{Trace: 1, Name: "exec"})
	if len(got) != 1 || got[0].Name != "exec" {
		t.Fatalf("observer got %+v", got)
	}
	c.SetObserver(nil)
	c.Record(Span{Trace: 1, Name: "exec"})
	if len(got) != 1 {
		t.Fatal("cleared observer still invoked")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	c := NewCollector(8)
	c.Record(Span{Trace: 3, ID: 9, Parent: 1, Name: "exec", Node: "g/0",
		Seq: 4, Start: 100, Dur: 50})
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Count   int    `json:"count"`
		Dropped uint64 `json:"dropped"`
		Spans   []Span `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, buf.String())
	}
	if doc.Count != 1 || len(doc.Spans) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Spans[0].Name != "exec" || doc.Spans[0].Seq != 4 || doc.Spans[0].Dur != 50 {
		t.Fatalf("span = %+v", doc.Spans[0])
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	c := NewCollector(8)
	c.Record(Span{Trace: 3, ID: 9, Name: "order", Node: "g/0", Start: 2000, Dur: 1000})
	c.Record(Span{Trace: 3, ID: 10, Name: "exec", Node: "g/1", Start: 3000, Dur: 500})
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			if ev["ts"].(float64) <= 0 {
				t.Fatalf("event ts = %v, want µs > 0", ev["ts"])
			}
		}
	}
	if meta != 2 || complete != 2 {
		t.Fatalf("meta=%d complete=%d, want 2/2: %s", meta, complete, buf.String())
	}
	if !strings.Contains(buf.String(), `"thread_name"`) {
		t.Fatal("missing thread_name metadata")
	}
}
