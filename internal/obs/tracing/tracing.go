// Package tracing implements per-request distributed tracing for the
// middleware: a 64-bit trace context that rides every invocation through
// the wire codec, spans recorded at each stage boundary (client submit,
// transport, sequencer ordering, scheduler grant wait, execution, reply),
// and a bounded lock-free span ring per process.
//
// Trace identifiers are deterministic: they are the FNV-1a hash of the
// invocation's logical thread id, which the client stub derives from
// (member, submit sequence). Any layer that knows the logical thread —
// notably the schedulers' grant/wait hooks — can therefore attach spans to
// the right trace without threading a context through every call.
//
// The package is stdlib-only and imports nothing else from the repository,
// so every layer (wire, transport, gcs, adets, replica, client, obs) can
// depend on it without cycles. Like package obs, every method is safe on a
// nil receiver: a deployment without tracing passes nil collectors around
// and instrumented paths cost one branch.
package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Context is the trace context carried by a request and its reply: the
// trace it belongs to and the span that emitted it. The zero value means
// "not traced" and encodes on the wire exactly as before tracing existed
// (see the variant payload tags in internal/replica/binary.go).
type Context struct {
	TraceID uint64
	Span    uint64
}

// Valid reports whether the context belongs to a trace.
func (c Context) Valid() bool { return c.TraceID != 0 }

// Traced is implemented by payloads that carry a trace context. The gcs
// envelopes (Submit, Ordered) delegate to their nested payload, so the
// transport can annotate any traced message without knowing its type.
type Traced interface {
	TraceCtx() Context
}

// FNV-1a, matching the constants of the schedule-trace digests in
// package obs.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// TraceID derives the deterministic trace id of a logical thread id
// (e.g. "client/c0#7"). Identical on every process that sees the request;
// never zero (zero is the "untraced" sentinel).
func TraceID(logical string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(logical); i++ {
		h ^= uint64(logical[i])
		h *= fnvPrime64
	}
	if h == 0 {
		h = 1
	}
	return h
}

// NewSpanID derives a span id from its trace, stage name, recording node
// and start time — unique enough to resolve parent links within one trace
// without coordination, and deterministic given identical timings.
func NewSpanID(trace uint64, name, node string, start time.Duration) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h ^= (trace >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime64
	}
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= fnvPrime64
	}
	s := uint64(start)
	for i := 0; i < 8; i++ {
		h ^= (s >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Span is one annotated stage of a request's journey. Start is the
// recording process's runtime clock (vtime); within one process — and
// within one simulated cluster, which shares a runtime — all spans are on
// a single timeline.
type Span struct {
	Trace  uint64        `json:"trace"`
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Node   string        `json:"node"`
	Shard  string        `json:"shard,omitempty"`
	Detail string        `json:"detail,omitempty"`
	Seq    uint64        `json:"seq,omitempty"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
}

// Collector is a bounded lock-free span ring: writers claim a slot with one
// atomic increment and publish with one atomic pointer store; when the ring
// is full the oldest spans are overwritten (and counted as dropped).
// Snapshot, the JSON/Chrome exporters and the /spans endpoint read
// concurrently without stopping writers.
//
// The collector also keeps a small bounded map from live logical thread ids
// to their trace contexts (Bind/Lookup/Unbind) so instrumentation that only
// knows the logical thread — the schedulers' grant hooks — can attach
// spans to the right trace.
type Collector struct {
	slots []atomic.Pointer[Span]
	pos   atomic.Uint64

	// observer, when set, additionally receives every recorded span —
	// the bridge that feeds per-stage histograms without this package
	// importing obs.
	observer atomic.Pointer[func(Span)]

	mu        sync.RWMutex
	bind      map[string]Context
	bindOrder []string
}

// maxBindings bounds the logical→context map against leaks when threads
// never unbind (mirrors the bounded id maps of gcs.Member).
const maxBindings = 1 << 13

// DefaultRingSize is the span-ring capacity used when none is given.
const DefaultRingSize = 1 << 14

// NewCollector returns a collector retaining the last n spans (n <= 0
// selects DefaultRingSize).
func NewCollector(n int) *Collector {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Collector{
		slots: make([]atomic.Pointer[Span], n),
		bind:  make(map[string]Context),
	}
}

// Record publishes one span. Safe on a nil receiver (no-op) and safe for
// concurrent use; the hot path is one atomic add plus one pointer store.
func (c *Collector) Record(sp Span) {
	if c == nil {
		return
	}
	i := c.pos.Add(1) - 1
	c.slots[i%uint64(len(c.slots))].Store(&sp)
	if f := c.observer.Load(); f != nil {
		(*f)(sp)
	}
}

// SetObserver installs fn to additionally receive every recorded span
// (nil clears). Used to feed per-stage latency histograms.
func (c *Collector) SetObserver(fn func(Span)) {
	if c == nil {
		return
	}
	if fn == nil {
		c.observer.Store(nil)
		return
	}
	c.observer.Store(&fn)
}

// Bind associates a live logical thread with its trace context so hooks
// that only see the logical id can attach spans (see SchedObs).
func (c *Collector) Bind(logical string, ctx Context) {
	if c == nil || !ctx.Valid() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.bind[logical]; !ok {
		c.bindOrder = append(c.bindOrder, logical)
		if len(c.bindOrder) > maxBindings {
			old := c.bindOrder[0]
			c.bindOrder = c.bindOrder[1:]
			delete(c.bind, old)
		}
	}
	c.bind[logical] = ctx
}

// Lookup returns the context bound to a logical thread (zero when none).
func (c *Collector) Lookup(logical string) Context {
	if c == nil {
		return Context{}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.bind[logical]
}

// Unbind drops a logical thread's binding (the order slice is pruned
// lazily by the Bind cap).
func (c *Collector) Unbind(logical string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.bind, logical)
}

// Len returns the number of spans currently retained.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	n := c.pos.Load()
	if n > uint64(len(c.slots)) {
		return len(c.slots)
	}
	return int(n)
}

// Dropped returns how many spans have been overwritten by ring wraparound.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	n := c.pos.Load()
	if n <= uint64(len(c.slots)) {
		return 0
	}
	return n - uint64(len(c.slots))
}

// Reset discards every retained span and the drop count, so a fresh
// measurement window starts empty (the logical-thread bindings survive:
// in-flight requests keep attaching spans to the right traces). Not
// intended to run concurrently with writers — a racing Record may land
// before or after the wipe, either of which is a coherent outcome.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.pos.Store(0)
	for i := range c.slots {
		c.slots[i].Store(nil)
	}
}

// Snapshot returns the retained spans ordered by start time. A concurrent
// writer may be mid-overwrite; torn slots are simply the old or the new
// span (pointers swap atomically), never garbage.
func (c *Collector) Snapshot() []Span {
	if c == nil {
		return nil
	}
	out := make([]Span, 0, len(c.slots))
	for i := range c.slots {
		if p := c.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ByTrace returns the retained spans of one trace, ordered by start time.
func (c *Collector) ByTrace(trace uint64) []Span {
	var out []Span
	for _, sp := range c.Snapshot() {
		if sp.Trace == trace {
			out = append(out, sp)
		}
	}
	return out
}

// document is the JSON shape of WriteJSON.
type document struct {
	Count   int    `json:"count"`
	Dropped uint64 `json:"dropped"`
	Spans   []Span `json:"spans"`
}

// WriteJSON writes the retained spans as one JSON document.
func (c *Collector) WriteJSON(w io.Writer) error {
	doc := document{Count: c.Len(), Dropped: c.Dropped(), Spans: c.Snapshot()}
	if doc.Spans == nil {
		doc.Spans = []Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteChromeTrace writes the retained spans in the Chrome trace-event
// format (complete events, µs timestamps) — load the output in Perfetto or
// chrome://tracing to see the per-stage decomposition on a shared timeline,
// one thread track per node.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	spans := c.Snapshot()
	// Stable small integer per node for the tid field; named via metadata.
	tids := make(map[string]int)
	var nodes []string
	for _, sp := range spans {
		if _, ok := tids[sp.Node]; !ok {
			tids[sp.Node] = len(tids) + 1
			nodes = append(nodes, sp.Node)
		}
	}
	type chromeEvent struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat,omitempty"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur,omitempty"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	events := make([]chromeEvent, 0, len(spans)+len(nodes))
	for _, node := range nodes {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tids[node],
			Args: map[string]any{"name": node},
		})
	}
	for _, sp := range spans {
		args := map[string]any{
			"trace": fmt.Sprintf("%016x", sp.Trace),
			"span":  fmt.Sprintf("%016x", sp.ID),
		}
		if sp.Parent != 0 {
			args["parent"] = fmt.Sprintf("%016x", sp.Parent)
		}
		if sp.Shard != "" {
			args["shard"] = sp.Shard
		}
		if sp.Detail != "" {
			args["detail"] = sp.Detail
		}
		if sp.Seq != 0 {
			args["seq"] = sp.Seq
		}
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  "replobj",
			Ph:   "X",
			TS:   float64(sp.Start) / 1e3,
			Dur:  float64(sp.Dur) / 1e3,
			PID:  1,
			TID:  tids[sp.Node],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events, "displayTimeUnit": "ms"})
}
