// Package obs is the stdlib-only observability layer of the middleware: a
// registry of atomic counters, gauges and bucketed histograms rendered in
// Prometheus text exposition format, and a deterministic schedule trace
// whose per-stream rolling digests double as a replica-divergence oracle
// (see trace.go).
//
// Design constraints, in force everywhere the package is used:
//
//   - Hot-path updates are single atomic operations — the registry lock is
//     only taken at metric registration and at render time.
//   - Every method is nil-receiver safe: a disabled deployment passes nil
//     registries/traces around and instrumented code paths cost one
//     predictable branch and zero allocations.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one. Safe on a nil receiver.
func (g *Gauge) Dec() { g.Add(-1) }

// Add adds d. Safe on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Set replaces the value. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram. Bounds are upper bucket limits in
// ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated

	// negative counts samples that arrived below zero and were clamped
	// (shared registry-wide; see NegativeObservations).
	negative *Counter

	// exemplars holds the most recent traced sample per bucket,
	// rendered OpenMetrics-style after the bucket line.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one histogram sample to the trace that produced it.
type Exemplar struct {
	Value   float64
	TraceID uint64
}

// NegativeObservations is the registry-wide counter of histogram samples
// that arrived negative and were clamped to zero. A non-zero value means an
// instrumentation site computed a nonsensical (e.g. reversed) duration.
const NegativeObservations = "replobj_obs_negative_observations"

// LatencyBuckets are the default bounds for latency histograms, in seconds
// (100 µs … 10 s, roughly exponential).
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// DepthBuckets are the default bounds for small-integer distributions such
// as queue depths and reentrancy depths.
func DepthBuckets() []float64 {
	return []float64{1, 2, 3, 4, 8, 16, 32, 64}
}

// Observe records one sample. Negative samples are clamped to zero and
// counted in NegativeObservations — a negative latency is always an
// instrumentation bug, and letting it through would corrupt the sum.
// Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
		h.negative.Inc()
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds. Safe on a nil receiver.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Exemplar links the bucket v falls into to the trace that produced the
// sample, replacing any previous exemplar of that bucket. Rendered
// OpenMetrics-style after the bucket line. Safe on a nil receiver.
func (h *Histogram) Exemplar(v float64, traceID uint64) {
	if h == nil || traceID == 0 || len(h.exemplars) == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID})
}

// BucketExemplar returns the exemplar of the i-th bucket (nil when none).
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if h == nil || i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the sample's bucket — the streaming estimator behind the p50/p99/
// p999 lines in /metrics and the bench reports. Returns 0 with no samples;
// samples in the +Inf bucket report the highest finite bound (the estimate
// saturates there). Safe on a nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			if i >= len(h.bounds) {
				break // +Inf bucket: saturate at the last finite bound
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (h.bounds[i]-lo)*((rank-cum)/c)
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// BucketCount returns the cumulative count of samples ≤ the i-th bound
// (i == len(bounds) means the +Inf bucket).
func (h *Histogram) BucketCount(i int) uint64 {
	if h == nil {
		return 0
	}
	var c uint64
	for j := 0; j <= i && j < len(h.counts); j++ {
		c += h.counts[j].Load()
	}
	return c
}

// Registry holds named metrics. Metric names use the Prometheus exposition
// syntax, optionally with inline labels: `replobj_grants_total` or
// `replobj_grants_total{node="counter/0"}`. Registration takes the registry
// lock; updates on the returned metric are lock-free.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter. On a nil registry
// it returns nil, which is itself a valid no-op metric.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counterLocked(name)
}

// counterLocked is Counter with the write lock already held — used by
// registrations that need a companion counter without re-entering the lock.
func (r *Registry) counterLocked(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the given
// bucket bounds (ascending); nil on a nil registry. Bounds are fixed at
// first registration.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{
			bounds:    append([]float64(nil), bounds...),
			counts:    make([]atomic.Uint64, len(bounds)+1),
			exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
			negative:  r.counterLocked(NegativeObservations),
		}
		r.hists[name] = h
	}
	return h
}

// family strips the label set from a metric name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// spliceLabel inserts an extra label into a metric name, merging with any
// existing label set: spliceLabel(`m{a="1"}`, "_bucket", `le="5"`) returns
// `m_bucket{a="1",le="5"}`.
func spliceLabel(name, suffix, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		inner := name[i+1 : len(name)-1]
		return name[:i] + suffix + "{" + inner + "," + label + "}"
	}
	return name + suffix + "{" + label + "}"
}

func formatBound(b float64) string {
	if math.IsInf(b, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders every metric in Prometheus text exposition format,
// sorted by name, with one `# TYPE` line per family.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	var b strings.Builder
	r.mu.RLock()
	type entry struct {
		name string
		kind string // "counter", "gauge", "histogram"
	}
	entries := make([]entry, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		entries = append(entries, entry{n, "counter"})
	}
	for n := range r.gauges {
		entries = append(entries, entry{n, "gauge"})
	}
	for n := range r.hists {
		entries = append(entries, entry{n, "histogram"})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	typed := make(map[string]bool)
	for _, e := range entries {
		fam := family(e.name)
		if !typed[fam] {
			typed[fam] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", fam, e.kind)
		}
		switch e.kind {
		case "counter":
			fmt.Fprintf(&b, "%s %d\n", e.name, r.counters[e.name].Value())
		case "gauge":
			fmt.Fprintf(&b, "%s %d\n", e.name, r.gauges[e.name].Value())
		case "histogram":
			h := r.hists[e.name]
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s %d%s\n",
					spliceLabel(e.name, "_bucket", `le="`+formatBound(bound)+`"`),
					cum, exemplarSuffix(h, i))
			}
			fmt.Fprintf(&b, "%s %d%s\n",
				spliceLabel(e.name, "_bucket", `le="+Inf"`),
				h.Count(), exemplarSuffix(h, len(h.bounds)))
			fmt.Fprintf(&b, "%s %s\n", withSuffix(e.name, "_sum"), formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s %d\n", withSuffix(e.name, "_count"), h.Count())
			if h.Count() > 0 {
				qfam := fam + "_quantile"
				if !typed[qfam] {
					typed[qfam] = true
					fmt.Fprintf(&b, "# TYPE %s gauge\n", qfam)
				}
				for _, q := range []struct {
					label string
					v     float64
				}{{"0.5", 0.5}, {"0.99", 0.99}, {"0.999", 0.999}} {
					fmt.Fprintf(&b, "%s %s\n",
						spliceLabel(e.name, "_quantile", `quantile="`+q.label+`"`),
						formatFloat(h.Quantile(q.v)))
				}
			}
		}
	}
	r.mu.RUnlock()
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// exemplarSuffix renders the i-th bucket's exemplar, OpenMetrics-style
// (`… # {trace_id="…"} value`), or "" when the bucket has none.
func exemplarSuffix(h *Histogram, i int) string {
	ex := h.BucketExemplar(i)
	if ex == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%016x\"} %s", ex.TraceID, formatFloat(ex.Value))
}

// withSuffix appends a name suffix before any label set.
func withSuffix(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// Render returns the Prometheus exposition text ("" on nil).
func (r *Registry) Render() string {
	var b strings.Builder
	_, _ = r.WriteTo(&b)
	return b.String()
}

// Summary returns a compact human-readable dump: one `name value` line per
// counter/gauge and `name count=N sum=S` per histogram, sorted, zero-valued
// counters omitted.
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	var lines []string
	r.mu.RLock()
	for n, c := range r.counters {
		if v := c.Value(); v > 0 {
			lines = append(lines, fmt.Sprintf("%s %d", n, v))
		}
	}
	for n, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %d", n, g.Value()))
	}
	for n, h := range r.hists {
		if c := h.Count(); c > 0 {
			lines = append(lines, fmt.Sprintf("%s count=%d sum=%s mean=%s",
				n, c, formatFloat(h.Sum()), formatFloat(h.Sum()/float64(c))))
		}
	}
	r.mu.RUnlock()
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
