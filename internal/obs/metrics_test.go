package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/obs/tracing"
)

func TestNilMetricsAreNoops(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Inc()
	g.Dec()
	g.Set(7)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	if r.Render() != "" || r.Summary() != "" {
		t.Fatal("nil registry render")
	}
	var tr *Trace
	tr.Record("s", KindGrant, "a", "")
	if len(tr.Snapshot()) != 0 {
		t.Fatal("nil trace snapshot")
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.001, 0.01, 0.1})
	// One sample per region: ≤0.001, (0.001,0.01], (0.01,0.1], >0.1.
	for _, v := range []float64{0.0005, 0.001, 0.005, 0.05, 0.2, 3} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	// Bound values land in the bucket they equal (le semantics).
	wantCum := []uint64{2, 3, 4, 6} // ≤0.001, ≤0.01, ≤0.1, +Inf
	for i, want := range wantCum {
		if got := h.BucketCount(i); got != want {
			t.Errorf("BucketCount(%d) = %d, want %d", i, got, want)
		}
	}
	wantSum := 0.0005 + 0.001 + 0.005 + 0.05 + 0.2 + 3
	if diff := h.Sum() - wantSum; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestPrometheusRenderGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(`replobj_msgs_total{node="a"}`).Add(3)
	r.Counter(`replobj_msgs_total{node="b"}`).Add(4)
	r.Gauge("replobj_inflight").Set(2)
	h := r.Histogram(`replobj_latency_seconds{node="a"}`, []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)

	h.Exemplar(0.05, 0xabc)

	want := strings.Join([]string{
		`# TYPE replobj_inflight gauge`,
		`replobj_inflight 2`,
		`# TYPE replobj_latency_seconds histogram`,
		`replobj_latency_seconds_bucket{node="a",le="0.01"} 1`,
		`replobj_latency_seconds_bucket{node="a",le="0.1"} 2 # {trace_id="0000000000000abc"} 0.05`,
		`replobj_latency_seconds_bucket{node="a",le="+Inf"} 3`,
		`replobj_latency_seconds_sum{node="a"} 0.555`,
		`replobj_latency_seconds_count{node="a"} 3`,
		`# TYPE replobj_latency_seconds_quantile gauge`,
		`replobj_latency_seconds_quantile{node="a",quantile="0.5"} 0.05500000000000001`,
		`replobj_latency_seconds_quantile{node="a",quantile="0.99"} 0.1`,
		`replobj_latency_seconds_quantile{node="a",quantile="0.999"} 0.1`,
		`# TYPE replobj_msgs_total counter`,
		`replobj_msgs_total{node="a"} 3`,
		`replobj_msgs_total{node="b"} 4`,
		`# TYPE replobj_obs_negative_observations counter`,
		`replobj_obs_negative_observations 0`,
	}, "\n") + "\n"
	if got := r.Render(); got != want {
		t.Errorf("render mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("zero") // zero counters are omitted
	r.Counter("hits").Add(10)
	r.Gauge("depth").Set(-1)
	h := r.Histogram("lat", []float64{1})
	h.Observe(0.5)
	h.Observe(1.5)
	s := r.Summary()
	for _, want := range []string{"hits 10", "depth -1", "lat count=2 sum=2 mean=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "zero") {
		t.Errorf("summary should omit zero counters:\n%s", s)
	}
}

// TestRegistryConcurrent exercises registration and updates from many
// goroutines; run under -race it validates the lock-free hot path.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers = 8
	const iters = 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{1, 10}).Observe(float64(i % 20))
				if i%500 == 0 {
					_ = r.Render()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("g").Value(); got != workers*iters {
		t.Fatalf("gauge = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("replobj_up").Inc()
	tr := NewTrace(16)
	tr.Record("mutex/state", KindGrant, "c0/1", "")
	spans := tracing.NewCollector(16)
	spans.Record(tracing.Span{Trace: 7, ID: 9, Name: "exec", Node: "g/0", Start: 10, Dur: 5})
	srv := httptest.NewServer(Handler(reg, map[string]*Trace{"counter/0": tr}, spans))
	defer srv.Close()

	get := func(path string, wantStatus int) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}
	if body := get("/metrics", 200); !strings.Contains(body, "replobj_up 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	body := get("/trace", 200)
	if !strings.Contains(body, "trace counter/0") || !strings.Contains(body, "grant c0/1") {
		t.Errorf("/trace missing event:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline", 200); body == "" {
		t.Error("pprof cmdline empty")
	}

	// /trace rejects non-positive and non-numeric tails and caps huge ones.
	get("/trace?n=0", 400)
	get("/trace?n=-5", 400)
	get("/trace?n=bogus", 400)
	if body := get("/trace?n=999999", 200); !strings.Contains(body, "trace counter/0") {
		t.Errorf("/trace with capped n lost output:\n%s", body)
	}

	// /spans serves both formats and rejects unknown ones.
	if body := get("/spans", 200); !strings.Contains(body, `"exec"`) {
		t.Errorf("/spans missing span:\n%s", body)
	}
	if body := get("/spans?format=chrome", 200); !strings.Contains(body, `"traceEvents"`) {
		t.Errorf("/spans chrome format:\n%s", body)
	}
	get("/spans?format=xml", 400)
}

func TestNegativeObservationsClamped(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(-0.5)
	h.Observe(-2)
	h.Observe(3)
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3 (clamped samples still counted)", got)
	}
	if got := h.Sum(); got != 3 {
		t.Fatalf("sum = %g, want 3 (negatives clamped to 0)", got)
	}
	// Both clamped samples land in the first bucket.
	if got := h.BucketCount(0); got != 2 {
		t.Fatalf("bucket[0] = %d, want 2", got)
	}
	if got := r.Counter(NegativeObservations).Value(); got != 2 {
		t.Fatalf("%s = %d, want 2", NegativeObservations, got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	if got := r.Histogram("empty", []float64{1}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	h := r.Histogram("lat", []float64{1, 2, 4})
	// 100 samples uniform over the (0,1] bucket, 100 over (1,2].
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %g, want 1 (boundary of the two buckets)", got)
	}
	if got := h.Quantile(0.25); got != 0.5 {
		t.Errorf("p25 = %g, want 0.5 (midway through the first bucket)", got)
	}
	if got := h.Quantile(0.99); got != 1.98 {
		t.Errorf("p99 = %g, want 1.98", got)
	}
	// Samples beyond the last bound saturate at the highest finite bound.
	h.Observe(100)
	if got := h.Quantile(1); got != 4 {
		t.Errorf("p100 = %g, want saturation at 4", got)
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile")
	}
}
