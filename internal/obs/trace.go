// Deterministic schedule trace: an append-only log of scheduler decisions
// partitioned into *streams*, each with a rolling FNV-1a digest.
//
// The determinism contract of the middleware is per stream, not global:
// events guarded by one mutex's ownership (grants, unlocks, waits, wakes)
// occur in the same order on every replica, but the real-time interleaving
// *between* mutexes — or between a mutex and the delivery stream — is not
// deterministic (e.g. two ADETS-MAT secondaries unlocking different mutexes
// race in wall-clock time while their per-mutex grant sequences stay
// identical). Each trace therefore keeps one digest per stream:
//
//	mutex/<m>  ownership-serialized events of mutex m
//	order      totally-ordered deliveries (the group's sequence numbers)
//	rounds     ADETS-PDS round starts
//	sched      strategy-global decisions (SEQ/SL execution order, view
//	           changes)
//
// Two replicas of one group MUST have pairwise-equal stream prefixes: for
// every stream, the first min(countA, countB) events — and hence the rolling
// digests at those positions — must match. FirstDivergence checks exactly
// that, which turns the trace into a correctness oracle for all six ADETS
// algorithms: any nondeterministic scheduling decision shows up as a digest
// mismatch at an exact stream position.
//
// Digests hash only replica-deterministic inputs: event kind, the *logical*
// thread or message id, and the detail string. Never physical thread ids,
// never timestamps.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a schedule event.
type Kind uint8

// Schedule event kinds.
const (
	// KindGrant: a mutex was granted to a logical thread.
	KindGrant Kind = iota + 1
	// KindUnlock: a mutex was released by its owner.
	KindUnlock
	// KindWait: the owner released the mutex to wait on a condition.
	KindWait
	// KindWake: a condition waiter was woken (notify or deterministic
	// timeout; the detail distinguishes them).
	KindWake
	// KindExec: an execution-order decision (sequential strategies) or a
	// totally-ordered delivery (the "order" stream).
	KindExec
	// KindRound: a scheduling round started (ADETS-PDS).
	KindRound
	// KindView: a membership view change reached the scheduler.
	KindView
	// KindCheckpoint: a deterministic checkpoint boundary on the ordered
	// stream (taken or skipped; the detail distinguishes them). Recorded on
	// every replica at the same sequence number, so a replica that skips a
	// checkpoint another replica takes diverges in the digest — the trace
	// doubles as the oracle for checkpoint determinism.
	KindCheckpoint
	// KindSwitch: an adaptive-scheduler epoch boundary (kept, switched or
	// skipped; the detail distinguishes them). The switch decision is a pure
	// function of the ordered stream, so a replica that switches strategies
	// at a boundary another replica keeps diverges in the digest — the trace
	// is the oracle for switch determinism.
	KindSwitch
)

func (k Kind) String() string {
	switch k {
	case KindGrant:
		return "grant"
	case KindUnlock:
		return "unlock"
	case KindWait:
		return "wait"
	case KindWake:
		return "wake"
	case KindExec:
		return "exec"
	case KindRound:
		return "round"
	case KindView:
		return "view"
	case KindCheckpoint:
		return "checkpoint"
	case KindSwitch:
		return "switch"
	}
	return "?"
}

// Event is one recorded scheduler decision.
type Event struct {
	// Pos is the event's 0-based position within its stream.
	Pos uint64
	// Kind classifies the decision.
	Kind Kind
	// Subject is the logical thread (or message id) the decision concerns.
	Subject string
	// Detail carries extra deterministic context (sequence number,
	// "timeout" marker, round number).
	Detail string
	// Digest is the stream's rolling digest *after* folding this event in.
	Digest uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

// stream is one digest-carrying event sequence; retained events form a ring.
type stream struct {
	count  uint64
	digest uint64
	ring   []Event // capacity = retain; oldest retained event at head
	head   int     // ring index of the oldest event once the ring is full
}

// Trace is a per-replica schedule trace. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops / zero values), so
// instrumented code needs no enabled-check.
type Trace struct {
	mu      sync.Mutex
	retain  int
	streams map[string]*stream
}

// DefaultRetain is the default number of events retained per stream.
const DefaultRetain = 4096

// NewTrace returns a trace retaining the last `retain` events per stream
// (DefaultRetain if retain <= 0). The rolling digests always cover the full
// history regardless of retention.
func NewTrace(retain int) *Trace {
	if retain <= 0 {
		retain = DefaultRetain
	}
	return &Trace{retain: retain, streams: make(map[string]*stream)}
}

// Record appends an event to a stream and folds it into the stream digest.
// Safe on a nil receiver.
func (t *Trace) Record(streamName string, kind Kind, subject, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	s := t.streams[streamName]
	if s == nil {
		s = &stream{digest: fnvOffset64, ring: make([]Event, 0, t.retain)}
		t.streams[streamName] = s
	}
	h := fnvByte(s.digest, byte(kind))
	h = fnvString(h, subject)
	h = fnvByte(h, 0xfe)
	h = fnvString(h, detail)
	h = fnvByte(h, 0xff)
	s.digest = h
	ev := Event{Pos: s.count, Kind: kind, Subject: subject, Detail: detail, Digest: h}
	if len(s.ring) < t.retain {
		s.ring = append(s.ring, ev)
	} else {
		s.ring[s.head] = ev
		s.head = (s.head + 1) % t.retain
	}
	s.count++
	t.mu.Unlock()
}

// StreamSnapshot is an immutable copy of one stream's state.
type StreamSnapshot struct {
	Stream string
	Count  uint64
	Digest uint64  // rolling digest over the full history
	Events []Event // retained tail, oldest first
}

// event returns the retained event at pos, or nil.
func (s StreamSnapshot) event(pos uint64) *Event {
	if len(s.Events) == 0 {
		return nil
	}
	first := s.Events[0].Pos
	if pos < first || pos >= first+uint64(len(s.Events)) {
		return nil
	}
	return &s.Events[pos-first]
}

// Snapshot returns a consistent copy of every stream. Safe on nil (empty).
func (t *Trace) Snapshot() map[string]StreamSnapshot {
	out := make(map[string]StreamSnapshot)
	if t == nil {
		return out
	}
	t.mu.Lock()
	for name, s := range t.streams {
		evs := make([]Event, 0, len(s.ring))
		if len(s.ring) == t.retain && s.head > 0 {
			// Ring wrapped: oldest retained is at head.
			evs = append(evs, s.ring[s.head:]...)
			evs = append(evs, s.ring[:s.head]...)
		} else {
			evs = append(evs, s.ring...)
		}
		out[name] = StreamSnapshot{Stream: name, Count: s.count, Digest: s.digest, Events: evs}
	}
	t.mu.Unlock()
	return out
}

// Digest returns a stream's event count and rolling digest (0, 0 on nil or
// unknown stream).
func (t *Trace) Digest(streamName string) (count, digest uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.streams[streamName]; s != nil {
		return s.count, s.digest
	}
	return 0, 0
}

// Divergence reports the first position at which two traces' schedule
// decisions differ.
type Divergence struct {
	// Stream is the diverging stream name (e.g. "mutex/state").
	Stream string
	// Pos is the 0-based stream position of the first differing event.
	Pos uint64
	// A and B are the differing events (nil when evicted from retention).
	A, B *Event
}

func (d *Divergence) String() string {
	if d == nil {
		return "<no divergence>"
	}
	fmtEv := func(e *Event) string {
		if e == nil {
			return "<evicted>"
		}
		return fmt.Sprintf("%s %s %s (digest %016x)", e.Kind, e.Subject, e.Detail, e.Digest)
	}
	return fmt.Sprintf("stream %q position %d: %s != %s", d.Stream, d.Pos, fmtEv(d.A), fmtEv(d.B))
}

// FirstDivergence compares the common prefix of two trace snapshots stream
// by stream and returns the earliest divergence, or nil if every stream's
// first min(countA, countB) events agree. A stream present on only one side
// (or longer on one side) is NOT a divergence — replicas may lag behind one
// another; they may not *disagree*.
func FirstDivergence(a, b map[string]StreamSnapshot) *Divergence {
	names := make([]string, 0, len(a))
	for n := range a {
		if _, ok := b[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var first *Divergence
	for _, n := range names {
		sa, sb := a[n], b[n]
		common := sa.Count
		if sb.Count < common {
			common = sb.Count
		}
		if common == 0 {
			continue
		}
		// Fast path: equal digests at the last common position mean the
		// whole prefix matches (rolling hash).
		da, db := digestAt(sa, common-1), digestAt(sb, common-1)
		if da != 0 && da == db {
			continue
		}
		d := scanDivergence(n, sa, sb, common)
		if d != nil && (first == nil || d.Pos < first.Pos) {
			first = d
		}
	}
	return first
}

// digestAt returns the rolling digest after position pos, or 0 if unknown.
func digestAt(s StreamSnapshot, pos uint64) uint64 {
	if pos == s.Count-1 {
		return s.Digest
	}
	if e := s.event(pos); e != nil {
		return e.Digest
	}
	return 0
}

func scanDivergence(name string, sa, sb StreamSnapshot, common uint64) *Divergence {
	for pos := uint64(0); pos < common; pos++ {
		ea, eb := sa.event(pos), sb.event(pos)
		if ea == nil || eb == nil {
			continue // evicted on one side; cannot compare this position
		}
		if ea.Kind != eb.Kind || ea.Subject != eb.Subject || ea.Detail != eb.Detail {
			return &Divergence{Stream: name, Pos: pos, A: ea, B: eb}
		}
		if ea.Digest != eb.Digest {
			// Contents agree but rolling digests differ: the schedules
			// diverged at an earlier, already-evicted position.
			return &Divergence{Stream: name, Pos: pos}
		}
	}
	// Digests differ but every comparable retained pair agrees: the
	// divergence precedes retention. Report the earliest retained position.
	var pos uint64
	if len(sa.Events) > 0 && sa.Events[0].Pos > pos {
		pos = sa.Events[0].Pos
	}
	if len(sb.Events) > 0 && sb.Events[0].Pos > pos {
		pos = sb.Events[0].Pos
	}
	return &Divergence{Stream: name, Pos: pos}
}

// StreamState is the transferable digest state of one stream: the event
// count and the rolling digest, without the retained ring. It is what a
// snapshot carries so that a replica restored from state transfer continues
// every stream at the donor's exact position.
type StreamState struct {
	Count  uint64
	Digest uint64
}

// ExportStreams returns every stream's count and rolling digest — the
// digest state a checkpoint embeds. Safe on nil (empty map).
func (t *Trace) ExportStreams() map[string]StreamState {
	out := make(map[string]StreamState)
	if t == nil {
		return out
	}
	t.mu.Lock()
	for name, s := range t.streams {
		out[name] = StreamState{Count: s.count, Digest: s.digest}
	}
	t.mu.Unlock()
	return out
}

// RestoreStreams resets the trace to a snapshot's exported digest state:
// every stream named in states is set to the given count and digest with an
// empty retained ring, and streams not named are dropped. A replica
// installing a snapshot calls this so its digests continue from the donor's
// positions instead of from its own stale history. Safe on nil.
func (t *Trace) RestoreStreams(states map[string]StreamState) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.streams = make(map[string]*stream, len(states))
	for name, st := range states {
		t.streams[name] = &stream{
			count:  st.Count,
			digest: st.Digest,
			ring:   make([]Event, 0, t.retain),
		}
	}
	t.mu.Unlock()
}

// Dump writes a human-readable tail of the trace: per-stream counts and
// digests, plus the last n retained events of each stream (all retained
// events when n <= 0). streamFilter restricts the output to one stream when
// non-empty. Safe on a nil receiver.
func (t *Trace) Dump(w io.Writer, streamFilter string, n int) {
	snap := t.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		if streamFilter != "" && name != streamFilter {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := snap[name]
		fmt.Fprintf(w, "stream %s count=%d digest=%016x\n", name, s.Count, s.Digest)
		evs := s.Events
		if n > 0 && len(evs) > n {
			evs = evs[len(evs)-n:]
		}
		for _, e := range evs {
			line := fmt.Sprintf("  [%d] %s %s", e.Pos, e.Kind, e.Subject)
			if e.Detail != "" {
				line += " " + e.Detail
			}
			fmt.Fprintln(w, strings.TrimRight(line, " "))
		}
	}
}
