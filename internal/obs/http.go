package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// Handler serves the observability endpoints of one process:
//
//	/metrics        Prometheus text exposition of the registry
//	/trace          human-readable tail of every schedule trace
//	                (?stream=mutex/state&n=50 to filter/limit)
//	/debug/pprof/*  the standard runtime profiles
//
// Registry and traces may be nil; the endpoints then render empty output.
func Handler(reg *Registry, traces map[string]*Trace) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = reg.WriteTo(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		stream := r.URL.Query().Get("stream")
		n := 50
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		names := make([]string, 0, len(traces))
		for name := range traces {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "=== trace %s ===\n", name)
			traces[name].Dump(w, stream, n)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
