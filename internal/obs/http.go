package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"github.com/replobj/replobj/internal/obs/tracing"
)

// maxTraceTail caps how many schedule-trace events one /trace request may
// ask for, so a stray query cannot make the handler render unbounded output.
const maxTraceTail = 1000

// Handler serves the observability endpoints of one process:
//
//	/metrics        Prometheus text exposition of the registry
//	/trace          human-readable tail of every schedule trace
//	                (?stream=mutex/state&n=50 to filter/limit)
//	/spans          the request-span ring (?format=json|chrome; the chrome
//	                form loads in Perfetto / chrome://tracing)
//	/debug/pprof/*  the standard runtime profiles
//
// Registry, traces and spans may be nil; the endpoints then render empty
// output.
func Handler(reg *Registry, traces map[string]*Trace, spans *tracing.Collector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = reg.WriteTo(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		stream := r.URL.Query().Get("stream")
		n := 50
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, fmt.Sprintf("invalid n %q: want a positive integer", s),
					http.StatusBadRequest)
				return
			}
			if v > maxTraceTail {
				v = maxTraceTail
			}
			n = v
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		names := make([]string, 0, len(traces))
		for name := range traces {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "=== trace %s ===\n", name)
			traces[name].Dump(w, stream, n)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("format") {
		case "", "json":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			_ = spans.WriteJSON(w)
		case "chrome":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			_ = spans.WriteChromeTrace(w)
		default:
			http.Error(w, `invalid format: want "json" or "chrome"`, http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
