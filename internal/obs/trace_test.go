package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func record(t *Trace, n int, perturb int) {
	for i := 0; i < n; i++ {
		subj := "c" + strconv.Itoa(i%3)
		if i == perturb {
			subj = "intruder"
		}
		t.Record("mutex/state", KindGrant, subj, "")
		t.Record("mutex/state", KindUnlock, subj, "")
	}
}

func TestTraceDigestsMatch(t *testing.T) {
	a, b := NewTrace(0), NewTrace(0)
	record(a, 50, -1)
	record(b, 50, -1)
	ca, da := a.Digest("mutex/state")
	cb, db := b.Digest("mutex/state")
	if ca != 100 || cb != 100 {
		t.Fatalf("counts = %d, %d, want 100", ca, cb)
	}
	if da != db || da == 0 {
		t.Fatalf("digests differ: %016x vs %016x", da, db)
	}
	if d := FirstDivergence(a.Snapshot(), b.Snapshot()); d != nil {
		t.Fatalf("unexpected divergence: %v", d)
	}
}

func TestTraceDivergencePosition(t *testing.T) {
	a, b := NewTrace(0), NewTrace(0)
	record(a, 50, -1)
	record(b, 50, 7) // b's 8th grant goes to a different thread
	d := FirstDivergence(a.Snapshot(), b.Snapshot())
	if d == nil {
		t.Fatal("divergence not detected")
	}
	// Grant i is at stream position 2i.
	if d.Stream != "mutex/state" || d.Pos != 14 {
		t.Fatalf("divergence = %v, want stream mutex/state pos 14", d)
	}
	if d.A == nil || d.B == nil || d.A.Kind != KindGrant || d.B.Subject != "intruder" {
		t.Fatalf("divergence events wrong: %v", d)
	}
	if !strings.Contains(d.String(), "position 14") {
		t.Fatalf("String() = %q", d.String())
	}
}

func TestTracePrefixToleratesLag(t *testing.T) {
	a, b := NewTrace(0), NewTrace(0)
	record(a, 50, -1)
	record(b, 30, -1) // b lags (e.g. an LSA follower) but agrees on its prefix
	if d := FirstDivergence(a.Snapshot(), b.Snapshot()); d != nil {
		t.Fatalf("lagging prefix flagged as divergence: %v", d)
	}
	// A stream only one side has is not a divergence either.
	a.Record("rounds", KindRound, "", "1")
	if d := FirstDivergence(a.Snapshot(), b.Snapshot()); d != nil {
		t.Fatalf("one-sided stream flagged: %v", d)
	}
}

func TestTraceRingEviction(t *testing.T) {
	tr := NewTrace(8)
	for i := 0; i < 20; i++ {
		tr.Record("s", KindExec, strconv.Itoa(i), "")
	}
	snap := tr.Snapshot()["s"]
	if snap.Count != 20 {
		t.Fatalf("count = %d", snap.Count)
	}
	if len(snap.Events) != 8 {
		t.Fatalf("retained = %d, want 8", len(snap.Events))
	}
	if snap.Events[0].Pos != 12 || snap.Events[7].Pos != 19 {
		t.Fatalf("retained window = [%d, %d], want [12, 19]",
			snap.Events[0].Pos, snap.Events[7].Pos)
	}
	// The digest still covers the full history: an identical trace without
	// eviction has the same digest.
	full := NewTrace(64)
	for i := 0; i < 20; i++ {
		full.Record("s", KindExec, strconv.Itoa(i), "")
	}
	if _, d1 := tr.Digest("s"); true {
		if _, d2 := full.Digest("s"); d1 != d2 {
			t.Fatalf("digest depends on retention: %016x vs %016x", d1, d2)
		}
	}
}

func TestTraceEvictedDivergenceReported(t *testing.T) {
	// Diverge early, then evict the diverging events: the comparator can no
	// longer name the exact event but must still report a divergence.
	a, b := NewTrace(4), NewTrace(4)
	for i := 0; i < 30; i++ {
		a.Record("s", KindExec, strconv.Itoa(i), "")
		subj := strconv.Itoa(i)
		if i == 2 {
			subj = "x"
		}
		b.Record("s", KindExec, subj, "")
	}
	d := FirstDivergence(a.Snapshot(), b.Snapshot())
	if d == nil {
		t.Fatal("evicted divergence not detected")
	}
	if d.A != nil || d.B != nil {
		t.Fatalf("expected evicted (nil) events, got %v", d)
	}
}

func TestTraceKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindGrant: "grant", KindUnlock: "unlock", KindWait: "wait",
		KindWake: "wake", KindExec: "exec", KindRound: "round", KindView: "view",
		Kind(0): "?",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record("s"+strconv.Itoa(w%2), KindGrant, "t", "")
			}
		}()
	}
	wg.Wait()
	snap := tr.Snapshot()
	if snap["s0"].Count+snap["s1"].Count != 8000 {
		t.Fatalf("lost events: %d + %d", snap["s0"].Count, snap["s1"].Count)
	}
}

func TestTraceDump(t *testing.T) {
	tr := NewTrace(16)
	tr.Record("mutex/state", KindGrant, "c0/1", "")
	tr.Record("order", KindExec, "c0/1", "seq=1")
	var b strings.Builder
	tr.Dump(&b, "", 0)
	out := b.String()
	for _, want := range []string{"stream mutex/state count=1", "grant c0/1", "exec c0/1 seq=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	tr.Dump(&b, "order", 0)
	if strings.Contains(b.String(), "mutex/state") {
		t.Errorf("filter ignored:\n%s", b.String())
	}
}
