package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

type testPayload struct {
	N    int
	Text string
	Data []byte
}

type otherPayload struct {
	Flag bool
}

func init() {
	RegisterPayload(testPayload{})
	RegisterPayload(otherPayload{})
}

func TestIDHelpers(t *testing.T) {
	if got := ReplicaID("groupA", 2); got != "groupA/2" {
		t.Errorf("ReplicaID = %q, want groupA/2", got)
	}
	if got := ClientID("c7"); got != "client/c7" {
		t.Errorf("ClientID = %q, want client/c7", got)
	}
	id := InvocationID{Logical: "client/c7#3", Seq: 9}
	if got := id.String(); got != "client/c7#3#9" {
		t.Errorf("InvocationID.String = %q", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	dec := NewDecoder(&buf)

	in := Message{
		From:    "a",
		To:      "b",
		Payload: testPayload{N: 42, Text: "hello", Data: []byte{1, 2, 3}},
	}
	if err := enc.Encode(&in); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var out Message
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	p, ok := out.Payload.(testPayload)
	if !ok {
		t.Fatalf("payload type = %T, want testPayload", out.Payload)
	}
	if out.From != "a" || out.To != "b" || p.N != 42 || p.Text != "hello" || !bytes.Equal(p.Data, []byte{1, 2, 3}) {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func TestCodecMultipleFramesAndTypes(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	dec := NewDecoder(&buf)
	msgs := []Message{
		{From: "a", To: "b", Payload: testPayload{N: 1}},
		{From: "b", To: "a", Payload: otherPayload{Flag: true}},
		{From: "a", To: "b", Payload: testPayload{N: 2, Text: strings.Repeat("x", 10000)}},
	}
	for i := range msgs {
		if err := enc.Encode(&msgs[i]); err != nil {
			t.Fatalf("Encode[%d]: %v", i, err)
		}
	}
	for i := range msgs {
		var out Message
		if err := dec.Decode(&out); err != nil {
			t.Fatalf("Decode[%d]: %v", i, err)
		}
		if out.From != msgs[i].From {
			t.Errorf("frame %d: From = %q, want %q", i, out.From, msgs[i].From)
		}
	}
	var out Message
	if err := dec.Decode(&out); err != io.EOF {
		t.Errorf("Decode past end = %v, want io.EOF", err)
	}
}

func TestCodecRejectsOversizedHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB frame claim
	dec := NewDecoder(&buf)
	var out Message
	if err := dec.Decode(&out); err == nil {
		t.Error("Decode of oversized frame succeeded, want error")
	}
}

func TestCodecTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(&Message{From: "a", To: "b", Payload: testPayload{N: 5}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	dec := NewDecoder(bytes.NewReader(trunc))
	var out Message
	if err := dec.Decode(&out); err == nil {
		t.Error("Decode of truncated frame succeeded, want error")
	}
}
