package wire_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/replobj/replobj/internal/wire"
)

// TestGenerateFuzzCorpus refreshes the checked-in FuzzDecode corpus with
// frames in the current binary format. Run with REPLOBJ_GEN_CORPUS=1; it is
// a no-op otherwise.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("REPLOBJ_GEN_CORPUS") == "" {
		t.Skip("corpus generator; set REPLOBJ_GEN_CORPUS=1 to run")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var all []byte
	for i, m := range exemplarMessages() {
		bin, err := wire.AppendMessage(nil, &m)
		if err != nil {
			t.Fatal(err)
		}
		write(fmt.Sprintf("seed-bin-%02d", i), bin)
		all = append(all, bin...)
		gobbed, err := wire.AppendMessageGob(nil, &m)
		if err != nil {
			t.Fatal(err)
		}
		write(fmt.Sprintf("seed-gob-%02d", i), gobbed)
	}
	write("seed-stream", all)
}
