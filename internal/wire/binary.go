package wire

// This file implements the self-describing binary fast path of the codec.
//
// Frame layout (see codec.go for the stream framing):
//
//	frame := uvarint(len(body)) body
//	body  := uvarint(tag) rest
//
//	tag 0 (gob):  rest = one self-contained gob stream encoding the whole
//	              Message — the fallback for payload types without a
//	              registered binary codec.
//	tag 1 (nil):  rest = string(From) string(To); the payload is nil.
//	tag >= 8:     rest = string(From) string(To) payload, where the payload
//	              encoding is owned by the codec registered for the tag.
//
// Primitive encodings: uvarint is encoding/binary's unsigned varint,
// required to be minimal-length; string and byte-slice are uvarint(len)
// followed by the raw bytes; bool is a single 0/1 byte. The decoder rejects
// non-minimal varints, out-of-range bools and trailing bytes, so every
// decodable binary frame re-encodes to the identical byte string — the
// property the differential fuzzer pins down.
//
// Nested payloads (the Payload any fields of gcs.Submit and gcs.Ordered)
// recurse with the same tagging through Buffer.Any / Reader.Any; an
// unregistered nested payload becomes a length-prefixed gob blob without
// forcing the enclosing message off the fast path.
//
// Tag ranges are assigned statically so both ends of a connection agree
// without negotiation:
//
//	 0– 7  reserved (gob fallback, nil payload)
//	10–19  internal/gcs
//	20–29  internal/replica
//	30–39  internal/adets (schedulers)

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
)

const (
	tagGob uint64 = 0
	tagNil uint64 = 1
	// TagUserMin is the lowest tag value available to payload codecs.
	TagUserMin uint64 = 8
)

type binaryCodec struct {
	tag uint64
	typ reflect.Type
	enc func(*Buffer, any) error
	dec func(*Reader) (any, error)
	// use selects this codec over the base codec of the same type (variant
	// registrations only; nil on a base codec).
	use func(v any) bool
	// variants are alternate encodings of the same type, consulted in
	// registration order at encode time (base codecs only).
	variants []*binaryCodec
}

// forValue returns the codec to encode v with: the first variant whose
// predicate accepts v, or the base codec itself.
func (c *binaryCodec) forValue(v any) *binaryCodec {
	for _, vc := range c.variants {
		if vc.use(v) {
			return vc
		}
	}
	return c
}

var (
	binByType = map[reflect.Type]*binaryCodec{}
	binByTag  = map[uint64]*binaryCodec{}
)

// RegisterBinaryPayload installs a binary fast-path codec for the payload
// type of prototype under the given tag. Call it from an init function
// (registration is not synchronized); duplicate tags or types panic. enc
// receives a value of exactly prototype's type; dec must consume exactly
// the bytes enc produced. Types without a binary codec still travel via the
// gob fallback — RegisterPayload remains the minimum requirement.
func RegisterBinaryPayload(tag uint64, prototype any, enc func(*Buffer, any) error, dec func(*Reader) (any, error)) {
	if tag < TagUserMin {
		panic(fmt.Sprintf("wire: binary payload tag %d is reserved", tag))
	}
	t := reflect.TypeOf(prototype)
	if _, dup := binByTag[tag]; dup {
		panic(fmt.Sprintf("wire: binary payload tag %d registered twice", tag))
	}
	if _, dup := binByType[t]; dup {
		panic(fmt.Sprintf("wire: binary payload type %v registered twice", t))
	}
	c := &binaryCodec{tag: tag, typ: t, enc: enc, dec: dec}
	binByTag[tag] = c
	binByType[t] = c
}

// RegisterBinaryPayloadVariant installs an alternate binary encoding for a
// type that already has a base codec, selected at encode time by the use
// predicate. Values the predicate rejects keep the base codec — and its
// exact byte layout — so extending a wire type with an optional field (a
// trace context, say) stays tag-compatible: frames of values without the
// field are byte-identical to frames produced before the variant existed.
// The decode side is symmetric: the variant's tag maps to its dec, which
// must produce a value the predicate accepts (so re-encoding a decoded
// frame reproduces it bit for bit, the fuzzer-pinned codec invariant).
func RegisterBinaryPayloadVariant(tag uint64, prototype any, use func(v any) bool, enc func(*Buffer, any) error, dec func(*Reader) (any, error)) {
	if tag < TagUserMin {
		panic(fmt.Sprintf("wire: binary payload tag %d is reserved", tag))
	}
	if use == nil {
		panic("wire: binary payload variant needs a selection predicate")
	}
	t := reflect.TypeOf(prototype)
	if _, dup := binByTag[tag]; dup {
		panic(fmt.Sprintf("wire: binary payload tag %d registered twice", tag))
	}
	base, ok := binByType[t]
	if !ok {
		panic(fmt.Sprintf("wire: binary payload variant for %v has no base codec", t))
	}
	c := &binaryCodec{tag: tag, typ: t, enc: enc, dec: dec, use: use}
	binByTag[tag] = c
	base.variants = append(base.variants, c)
}

// HasBinaryCodec reports whether v's type has a registered binary fast
// path (nil counts: it has a dedicated tag).
func HasBinaryCodec(v any) bool {
	if v == nil {
		return true
	}
	_, ok := binByType[reflect.TypeOf(v)]
	return ok
}

// uvarintLen returns the number of bytes of the minimal uvarint encoding.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// --- encode side ---

// Buffer accumulates the binary encoding of one frame body. Buffers are
// pooled; obtain them through the codec entry points, not directly.
type Buffer struct {
	b []byte
}

var bufferPool = sync.Pool{New: func() any { return &Buffer{b: make([]byte, 0, 512)} }}

func getBuffer() *Buffer {
	b := bufferPool.Get().(*Buffer)
	b.b = b.b[:0]
	return b
}

func putBuffer(b *Buffer) {
	if cap(b.b) > maxPooledBuf {
		return // let oversized one-off frames be collected
	}
	bufferPool.Put(b)
}

// maxPooledBuf bounds the capacity of buffers returned to the pool so one
// huge frame does not pin its allocation forever.
const maxPooledBuf = 1 << 20

// Write implements io.Writer (gob fallback encodes straight into the
// frame buffer).
func (b *Buffer) Write(p []byte) (int, error) {
	b.b = append(b.b, p...)
	return len(p), nil
}

// Uvarint appends v as a minimal unsigned varint.
func (b *Buffer) Uvarint(v uint64) {
	b.b = binary.AppendUvarint(b.b, v)
}

// String appends a length-prefixed string.
func (b *Buffer) String(s string) {
	b.b = binary.AppendUvarint(b.b, uint64(len(s)))
	b.b = append(b.b, s...)
}

// Bytes appends a length-prefixed byte slice (nil and empty encode
// identically, like gob).
func (b *Buffer) Bytes(p []byte) {
	b.b = binary.AppendUvarint(b.b, uint64(len(p)))
	b.b = append(b.b, p...)
}

// Byte appends one raw byte.
func (b *Buffer) Byte(c byte) {
	b.b = append(b.b, c)
}

// Bool appends a bool as one 0/1 byte.
func (b *Buffer) Bool(v bool) {
	if v {
		b.b = append(b.b, 1)
	} else {
		b.b = append(b.b, 0)
	}
}

// Any appends a nested payload: its tag, then its encoding. Unregistered
// payloads become a length-prefixed self-contained gob blob.
func (b *Buffer) Any(v any) error {
	if v == nil {
		b.Uvarint(tagNil)
		return nil
	}
	if c, ok := binByType[reflect.TypeOf(v)]; ok {
		c = c.forValue(v)
		b.Uvarint(c.tag)
		return c.enc(b, v)
	}
	b.Uvarint(tagGob)
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(&v); err != nil {
		return fmt.Errorf("wire: gob-encode nested %T: %w", v, err)
	}
	b.Bytes(blob.Bytes())
	return nil
}

// appendBody encodes m's frame body (everything after the length header).
func appendBody(b *Buffer, m *Message) error {
	if m.Payload == nil {
		b.Uvarint(tagNil)
		b.String(string(m.From))
		b.String(string(m.To))
		return nil
	}
	c, ok := binByType[reflect.TypeOf(m.Payload)]
	if !ok {
		b.Uvarint(tagGob)
		if err := gob.NewEncoder(b).Encode(m); err != nil {
			return fmt.Errorf("wire: gob-encode message with %T payload: %w", m.Payload, err)
		}
		return nil
	}
	c = c.forValue(m.Payload)
	b.Uvarint(c.tag)
	b.String(string(m.From))
	b.String(string(m.To))
	return c.enc(b, m.Payload)
}

// AppendMessage appends one complete encoded frame for m to dst and
// returns the extended slice. It is the allocation-free core the stream
// Encoder, the benchmarks and the batching layer share.
func AppendMessage(dst []byte, m *Message) ([]byte, error) {
	body := getBuffer()
	defer putBuffer(body)
	if err := appendBody(body, m); err != nil {
		return dst, err
	}
	if len(body.b) > maxFrame {
		return dst, fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body.b))
	}
	dst = binary.AppendUvarint(dst, uint64(len(body.b)))
	return append(dst, body.b...), nil
}

// AppendMessageGob is AppendMessage with the binary fast path disabled:
// the frame always takes the gob fallback. It exists for the codec
// benchmarks and the differential fuzzer, which compare the two paths.
func AppendMessageGob(dst []byte, m *Message) ([]byte, error) {
	body := getBuffer()
	defer putBuffer(body)
	body.Uvarint(tagGob)
	if err := gob.NewEncoder(body).Encode(m); err != nil {
		return dst, fmt.Errorf("wire: gob-encode message: %w", err)
	}
	if len(body.b) > maxFrame {
		return dst, fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body.b))
	}
	dst = binary.AppendUvarint(dst, uint64(len(body.b)))
	return append(dst, body.b...), nil
}

// --- decode side ---

// Reader decodes the binary encoding of one frame body. All reads are
// bounds-checked; any violation poisons the decode with an error.
type Reader struct {
	b      []byte
	off    int
	sawGob bool // a gob fallback was taken somewhere in this frame
}

// Remaining returns the number of unread bytes left in the frame.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Uvarint reads a minimal unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated or overlong varint at offset %d", r.off)
	}
	if n != uvarintLen(v) {
		return 0, fmt.Errorf("wire: non-minimal varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.Remaining()) {
		return "", fmt.Errorf("wire: string of %d bytes exceeds remaining %d", n, r.Remaining())
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// Bytes reads a length-prefixed byte slice. The result is a copy, never an
// alias of the (pooled) frame buffer; zero length decodes as nil.
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("wire: byte slice of %d bytes exceeds remaining %d", n, r.Remaining())
	}
	if n == 0 {
		return nil, nil
	}
	p := make([]byte, n)
	copy(p, r.b[r.off:])
	r.off += int(n)
	return p, nil
}

// Byte reads one raw byte.
func (r *Reader) Byte() (byte, error) {
	if r.Remaining() < 1 {
		return 0, fmt.Errorf("wire: unexpected end of frame at offset %d", r.off)
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

// Bool reads a 0/1 byte.
func (r *Reader) Bool() (bool, error) {
	c, err := r.Byte()
	if err != nil {
		return false, err
	}
	switch c {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("wire: invalid bool byte %#x", c)
}

// Any reads a nested payload written by Buffer.Any.
func (r *Reader) Any() (any, error) {
	tag, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagGob:
		r.sawGob = true
		blob, err := r.Bytes()
		if err != nil {
			return nil, err
		}
		var v any
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&v); err != nil {
			return nil, fmt.Errorf("wire: gob-decode nested payload: %w", err)
		}
		return v, nil
	}
	c, ok := binByTag[tag]
	if !ok {
		return nil, fmt.Errorf("wire: unknown nested payload tag %d", tag)
	}
	return c.dec(r)
}

// parseBody decodes one frame body. It reports (via binaryClean) whether
// the whole frame took the binary fast path — no gob fallback at any
// nesting level — which is when byte-identical re-encoding is guaranteed.
func parseBody(data []byte, m *Message) (binaryClean bool, err error) {
	r := &Reader{b: data}
	tag, err := r.Uvarint()
	if err != nil {
		return false, err
	}
	if tag == tagGob {
		if err := gob.NewDecoder(bytes.NewReader(data[r.off:])).Decode(m); err != nil {
			return false, fmt.Errorf("wire: decode message: %w", err)
		}
		return false, nil
	}
	from, err := r.String()
	if err != nil {
		return false, err
	}
	to, err := r.String()
	if err != nil {
		return false, err
	}
	var payload any
	if tag != tagNil {
		c, ok := binByTag[tag]
		if !ok {
			return false, fmt.Errorf("wire: unknown payload tag %d", tag)
		}
		payload, err = c.dec(r)
		if err != nil {
			return false, err
		}
	}
	if r.Remaining() != 0 {
		return false, fmt.Errorf("wire: %d trailing bytes after payload", r.Remaining())
	}
	m.From = NodeID(from)
	m.To = NodeID(to)
	m.Payload = payload
	return !r.sawGob, nil
}

// ConsumeMessage decodes the first frame of data, returning the decoded
// message, the number of bytes the frame occupied, and whether the frame
// decoded entirely through the binary fast path (in which case re-encoding
// the message reproduces data[:n] bit for bit).
func ConsumeMessage(data []byte) (m Message, n int, binaryClean bool, err error) {
	size, hn := binary.Uvarint(data)
	if hn <= 0 {
		return m, 0, false, fmt.Errorf("wire: truncated or overlong frame header")
	}
	if hn != uvarintLen(size) {
		return m, 0, false, fmt.Errorf("wire: non-minimal frame header")
	}
	if size > maxFrame {
		return m, 0, false, fmt.Errorf("wire: frame of %d bytes exceeds limit", size)
	}
	if size > uint64(len(data)-hn) {
		return m, 0, false, fmt.Errorf("wire: frame body of %d bytes exceeds remaining %d", size, len(data)-hn)
	}
	body := data[hn : hn+int(size)]
	clean, err := parseBody(body, &m)
	if err != nil {
		return m, 0, false, err
	}
	return m, hn + int(size), clean, nil
}
