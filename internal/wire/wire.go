// Package wire defines the shared vocabulary of the middleware: node,
// group and invocation identifiers, the transport message envelope, and the
// framed codec used by the TCP transport — a hand-rolled binary fast path
// for the hot protocol payloads (see binary.go) with a gob fallback for
// everything else.
//
// It corresponds to the IIOP/GIOP layer of the paper's CORBA-based FTflex
// infrastructure: a small, stable set of types every other layer speaks.
package wire

import (
	"encoding/gob"
	"fmt"
)

// NodeID identifies a process endpoint: a replica ("groupA/0") or a client
// ("client/c1").
type NodeID string

// GroupID identifies a replicated object group.
type GroupID string

// ReplicaID builds the NodeID of the i-th replica of a group.
func ReplicaID(g GroupID, i int) NodeID {
	return NodeID(fmt.Sprintf("%s/%d", g, i))
}

// ClientID builds the NodeID of a client endpoint.
func ClientID(name string) NodeID {
	return NodeID("client/" + name)
}

// LogicalID identifies a logical thread of execution (paper Section 3.1,
// the SL and SA+L models). A chain of nested invocations — even one that
// calls back into the originating object — carries a single LogicalID, which
// is what lets a replica (a) detect callbacks and run them on an extra
// physical thread, and (b) grant reentrant locks owned by the same logical
// thread.
type LogicalID string

// InvocationID uniquely identifies one method invocation for at-most-once
// semantics: the logical thread plus a per-thread invocation counter.
// Retransmissions reuse the same InvocationID and are answered from the
// reply cache.
type InvocationID struct {
	Logical LogicalID
	Seq     uint64
}

func (id InvocationID) String() string {
	return fmt.Sprintf("%s#%d", id.Logical, id.Seq)
}

// Message is the transport envelope. Payload is one of the protocol structs
// registered with RegisterPayload (gob needs concrete types for the TCP
// path; the in-process transport passes the value through untouched).
type Message struct {
	From    NodeID
	To      NodeID
	Payload any
}

// RegisterPayload registers a payload type with the codec's gob fallback.
// Each protocol layer registers its message structs from an init function;
// hot types additionally install a binary fast path with
// RegisterBinaryPayload.
func RegisterPayload(v any) {
	gob.Register(v)
}
