package wire_test

import (
	"fmt"
	"testing"

	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/replica"
	"github.com/replobj/replobj/internal/wire"
)

// benchCases are the hot payloads of the protocol: every client invocation
// crosses the wire as a Request inside a Submit, is rebroadcast inside an
// Ordered, and returns as a Reply; Heartbeats dominate message count at
// idle. Each is benchmarked through the binary fast path and through the
// gob fallback so the speedup is measured, not assumed.
func benchCases() []struct {
	name string
	msg  wire.Message
} {
	req := replica.Request{
		ID:      wire.InvocationID{Logical: "client/c1", Seq: 7},
		Group:   "g",
		Method:  "add",
		Args:    []byte{1, 2, 3, 4, 5, 6, 7, 8},
		ReplyTo: "client/c1",
	}
	sub := gcs.Submit{Group: "g", ID: "client/c1#7", Origin: "client/c1", Payload: req}
	batch := make([]gcs.Submit, 8)
	for i := range batch {
		r := req
		r.ID.Seq = uint64(i)
		batch[i] = gcs.Submit{Group: "g", ID: fmt.Sprintf("client/c1#%d", i), Origin: "client/c1", Payload: r}
	}
	return []struct {
		name string
		msg  wire.Message
	}{
		{"Request", wire.Message{From: "client/c1", To: "g/0", Payload: req}},
		{"Reply", wire.Message{From: "g/0", To: "client/c1", Payload: replica.Reply{
			ID: req.ID, From: "g/0", Result: []byte{42, 0, 0, 0, 0, 0, 0, 0}}}},
		{"Submit", wire.Message{From: "client/c1", To: "g/0", Payload: sub}},
		{"Ordered", wire.Message{From: "g/0", To: "g/1", Payload: gcs.Ordered{
			Group: "g", Epoch: 3, Seq: 41, ID: sub.ID, Origin: sub.Origin, Payload: req}}},
		{"OrderedBatch8", wire.Message{From: "g/0", To: "g/1", Payload: gcs.Ordered{
			Group: "g", Epoch: 3, Seq: 41, Origin: "g/0", Batch: batch}}},
		{"Heartbeat", wire.Message{From: "g/2", To: "g/0", Payload: gcs.Heartbeat{
			Group: "g", From: "g/2", Epoch: 3, MaxSeq: 40}}},
		{"ViewChange", wire.Message{From: "g/0", To: "g/1", Payload: gcs.Ordered{
			Group: "g", Epoch: 4, Seq: 42, ID: "viewevent/g/0/4", Origin: "g/0",
			View: &gcs.View{Epoch: 4, Members: []wire.NodeID{"g/0", "g/1"}}}}},
	}
}

func BenchmarkEncode(b *testing.B) {
	for _, tc := range benchCases() {
		m := tc.msg
		b.Run(tc.name+"/binary", func(b *testing.B) {
			b.ReportAllocs()
			var buf []byte
			var err error
			for i := 0; i < b.N; i++ {
				if buf, err = wire.AppendMessage(buf[:0], &m); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(buf)))
		})
		b.Run(tc.name+"/gob", func(b *testing.B) {
			b.ReportAllocs()
			var buf []byte
			var err error
			for i := 0; i < b.N; i++ {
				if buf, err = wire.AppendMessageGob(buf[:0], &m); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(buf)))
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, tc := range benchCases() {
		m := tc.msg
		bin, err := wire.AppendMessage(nil, &m)
		if err != nil {
			b.Fatal(err)
		}
		gobbed, err := wire.AppendMessageGob(nil, &m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name+"/binary", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(bin)))
			for i := 0; i < b.N; i++ {
				if _, _, _, err := wire.ConsumeMessage(bin); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/gob", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(gobbed)))
			for i := 0; i < b.N; i++ {
				if _, _, _, err := wire.ConsumeMessage(gobbed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
