package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

type propPayload struct {
	A int64
	B string
	C []byte
	D map[string]uint32
	E bool
}

func init() { RegisterPayload(propPayload{}) }

// TestQuickCodecRoundTrip: any message encodes and decodes identically.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(from, to string, p propPayload) bool {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		in := Message{From: NodeID(from), To: NodeID(to), Payload: p}
		if err := enc.Encode(&in); err != nil {
			return false
		}
		var out Message
		if err := NewDecoder(&buf).Decode(&out); err != nil {
			return false
		}
		got, ok := out.Payload.(propPayload)
		if !ok || out.From != in.From || out.To != in.To {
			return false
		}
		// gob maps nil and empty containers onto each other; normalize.
		return got.A == p.A && got.B == p.B && got.E == p.E &&
			bytes.Equal(got.C, p.C) && equalMaps(got.D, p.D)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func equalMaps(a, b map[string]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestQuickCodecStream: sequences of messages decode in order through one
// persistent encoder/decoder pair (gob type descriptors amortized).
func TestQuickCodecStream(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%32) + 1
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		var want []Message
		for i := 0; i < count; i++ {
			m := Message{
				From:    NodeID(randStr(rng)),
				To:      NodeID(randStr(rng)),
				Payload: propPayload{A: rng.Int63(), B: randStr(rng)},
			}
			want = append(want, m)
			if err := enc.Encode(&m); err != nil {
				return false
			}
		}
		dec := NewDecoder(&buf)
		for i := 0; i < count; i++ {
			var got Message
			if err := dec.Decode(&got); err != nil {
				return false
			}
			if got.From != want[i].From || got.To != want[i].To {
				return false
			}
			if !reflect.DeepEqual(got.Payload.(propPayload).A, want[i].Payload.(propPayload).A) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func randStr(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(12)+1)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

// TestQuickInvocationIDString: distinct ids produce distinct strings (the
// string form is used as a deduplication key end to end).
func TestQuickInvocationIDString(t *testing.T) {
	f := func(l1, l2 string, s1, s2 uint64) bool {
		a := InvocationID{Logical: LogicalID(l1), Seq: s1}
		b := InvocationID{Logical: LogicalID(l2), Seq: s2}
		if a == b {
			return a.String() == b.String()
		}
		// Logical ids never contain '#' in practice (they are built from
		// node ids and counters); restrict the claim accordingly.
		if hasHash(l1) || hasHash(l2) {
			return true
		}
		return a.String() != b.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func hasHash(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '#' {
			return true
		}
	}
	return false
}
