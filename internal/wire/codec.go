package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// maxFrame bounds a single encoded message; anything larger is treated as a
// protocol error rather than an allocation request.
const maxFrame = 16 << 20 // 16 MiB

// Encoder writes length-prefixed frames to an underlying writer: a minimal
// uvarint body length, then the self-describing body (see binary.go). It is
// not safe for concurrent use; callers serialize writes per connection.
type Encoder struct {
	w *bufio.Writer
}

// NewEncoder returns an Encoder writing to w. The buffer is sized above
// the transport's coalesce budget so bufio never auto-flushes mid-batch;
// the writer loop decides when frames hit the socket.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriterSize(w, 128<<10)}
}

// Encode writes one message frame and flushes it — the one-shot form for
// callers without their own coalescing loop.
func (e *Encoder) Encode(m *Message) error {
	if err := e.EncodeBuffered(m); err != nil {
		return err
	}
	return e.Flush()
}

// EncodeBuffered writes one message frame into the encoder's buffer
// without flushing. The transport's writer goroutine uses it to coalesce a
// burst of frames into a single Flush (one syscall).
func (e *Encoder) EncodeBuffered(m *Message) error {
	body := getBuffer()
	defer putBuffer(body)
	if err := appendBody(body, m); err != nil {
		return err
	}
	if len(body.b) > maxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body.b))
	}
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(body.b)))
	if _, err := e.w.Write(hdr[:hn]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := e.w.Write(body.b); err != nil {
		return fmt.Errorf("wire: write frame body: %w", err)
	}
	return nil
}

// Flush writes all buffered frames to the underlying writer.
func (e *Encoder) Flush() error {
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush frames: %w", err)
	}
	return nil
}

// Buffered returns the number of encoded bytes awaiting a Flush.
func (e *Encoder) Buffered() int { return e.w.Buffered() }

// framePool holds frame-sized scratch slices for the decoder.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// Decoder reads length-prefixed frames.
type Decoder struct {
	r *bufio.Reader
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReaderSize(r, 32<<10)}
}

// Decode reads the next message frame into m. The frame buffer is pooled;
// decoded messages never alias it (all strings and byte slices are
// copies).
func (d *Decoder) Decode(m *Message) error {
	n, err := d.readHeader()
	if err != nil {
		return err
	}
	bufp := framePool.Get().(*[]byte)
	defer func() {
		if cap(*bufp) <= maxPooledBuf {
			framePool.Put(bufp)
		}
	}()
	if cap(*bufp) < int(n) {
		*bufp = make([]byte, n)
	}
	buf := (*bufp)[:n]
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return fmt.Errorf("wire: read frame body: %w", err)
	}
	if _, err := parseBody(buf, m); err != nil {
		return err
	}
	return nil
}

// readHeader reads and validates the uvarint frame-length header. A clean
// EOF before the first header byte is io.EOF; EOF mid-header is an error.
func (d *Decoder) readHeader() (uint64, error) {
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("wire: read frame header: %w", err)
	}
	if n > maxFrame {
		return 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	return n, nil
}
