package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// maxFrame bounds a single encoded message; anything larger is treated as a
// protocol error rather than an allocation request.
const maxFrame = 16 << 20 // 16 MiB

// Encoder writes length-prefixed gob frames to an underlying writer.
// It is not safe for concurrent use; callers serialize writes per
// connection.
type Encoder struct {
	w   *bufio.Writer
	enc *gob.Encoder
	buf frameBuffer
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	e := &Encoder{w: bufio.NewWriter(w)}
	e.enc = gob.NewEncoder(&e.buf)
	return e
}

// Encode writes one message frame and flushes it.
func (e *Encoder) Encode(m *Message) error {
	e.buf.b = e.buf.b[:0]
	if err := e.enc.Encode(m); err != nil {
		return fmt.Errorf("wire: encode message: %w", err)
	}
	if len(e.buf.b) > maxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(e.buf.b))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(e.buf.b)))
	if _, err := e.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := e.w.Write(e.buf.b); err != nil {
		return fmt.Errorf("wire: write frame body: %w", err)
	}
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush frame: %w", err)
	}
	return nil
}

type frameBuffer struct{ b []byte }

func (f *frameBuffer) Write(p []byte) (int, error) {
	f.b = append(f.b, p...)
	return len(p), nil
}

// Decoder reads length-prefixed gob frames.
type Decoder struct {
	r   *bufio.Reader
	dec *gob.Decoder
	cur frameReader
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	d := &Decoder{r: bufio.NewReader(r)}
	d.dec = gob.NewDecoder(&d.cur)
	return d
}

// Decode reads the next message frame into m.
func (d *Decoder) Decode(m *Message) error {
	var hdr [4]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("wire: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	d.cur.buf = make([]byte, n)
	if _, err := io.ReadFull(d.r, d.cur.buf); err != nil {
		return fmt.Errorf("wire: read frame body: %w", err)
	}
	d.cur.off = 0
	if err := d.dec.Decode(m); err != nil {
		return fmt.Errorf("wire: decode message: %w", err)
	}
	return nil
}

type frameReader struct {
	buf []byte
	off int
}

func (f *frameReader) Read(p []byte) (int, error) {
	if f.off >= len(f.buf) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[f.off:])
	f.off += n
	return n, nil
}
