package wire_test

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/adets/lsa"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/replica"
	"github.com/replobj/replobj/internal/wire"
)

// exemplarMessages covers every protocol payload the middleware registers
// with the codec: gcs ordering and view-change traffic, replica
// request/reply envelopes, scheduler timeout and LSA table messages.
func exemplarMessages() []wire.Message {
	view := gcs.View{Epoch: 3, Members: []wire.NodeID{"g/0", "g/1", "g/2"}}
	sub := gcs.Submit{Group: "g", ID: "inv-1", Origin: "client/c1",
		Payload: replica.Request{
			ID:      wire.InvocationID{Logical: "client/c1", Seq: 7},
			Group:   "g",
			Method:  "add",
			Args:    []byte{1, 2, 3},
			ReplyTo: "client/c1",
		}}
	return []wire.Message{
		{From: "client/c1", To: "g/0", Payload: sub},
		{From: "g/0", To: "g/1", Payload: gcs.Ordered{
			Group: "g", Epoch: 3, Seq: 41, ID: "inv-1", Origin: "client/c1",
			Payload: sub.Payload}},
		{From: "g/0", To: "g/1", Payload: gcs.Ordered{
			Group: "g", Epoch: 4, Seq: 42, ID: "viewevent/g/0/4", Origin: "g/0",
			View: &gcs.View{Epoch: 4, Members: view.Members[:2]}}},
		{From: "g/1", To: "g/0", Payload: gcs.Nack{Group: "g", From: "g/1", Want: 17}},
		{From: "g/2", To: "g/0", Payload: gcs.Heartbeat{Group: "g", From: "g/2", Epoch: 3, MaxSeq: 40}},
		{From: "g/1", To: "g/2", Payload: gcs.Propose{Group: "g", From: "g/1", View: view}},
		{From: "g/1", To: "g/2", Payload: gcs.SyncReq{Group: "g", From: "g/1", View: view}},
		{From: "g/2", To: "g/1", Payload: gcs.SyncResp{
			Group: "g", From: "g/2", Epoch: 3, Delivered: 40,
			Tail:    []gcs.Ordered{{Group: "g", Epoch: 3, Seq: 41, ID: "inv-1", Origin: "client/c1"}},
			Pending: []gcs.Submit{{Group: "g", ID: "inv-2", Origin: "client/c2"}}}},
		{From: "g/0", To: "client/c1", Payload: replica.Reply{
			ID: wire.InvocationID{Logical: "client/c1", Seq: 7}, From: "g/0",
			Result: []byte{9}, Err: ""}},
		{From: "g/0", To: "g/1", Payload: adets.TimeoutMsg{
			Target: "client/c1", Mutex: "state", Cond: "ready", WaitSeq: 2}},
		{From: "g/0", To: "g/1", Payload: lsa.TableUpdate{
			From:    "g/0",
			Entries: []lsa.TableEntry{{M: "state", L: "client/c1"}}}},
	}
}

// TestRoundTripAllMessageTypes: encode→decode preserves every registered
// protocol message bit for bit.
func TestRoundTripAllMessageTypes(t *testing.T) {
	for _, in := range exemplarMessages() {
		var buf bytes.Buffer
		if err := wire.NewEncoder(&buf).Encode(&in); err != nil {
			t.Fatalf("%T: Encode: %v", in.Payload, err)
		}
		var out wire.Message
		if err := wire.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("%T: Decode: %v", in.Payload, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%T: round trip mismatch:\n in:  %+v\n out: %+v", in.Payload, in, out)
		}
	}
}

// FuzzDecode feeds arbitrary bytes to the frame decoder: it must return an
// error or io.EOF, never panic, and a frame that does decode must re-encode
// and decode to the same envelope.
func FuzzDecode(f *testing.F) {
	for _, m := range exemplarMessages() {
		var buf bytes.Buffer
		if err := wire.NewEncoder(&buf).Encode(&m); err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 2, 0x42})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := wire.NewDecoder(bytes.NewReader(data))
		for frames := 0; frames < 64; frames++ {
			var m wire.Message
			if err := dec.Decode(&m); err != nil {
				if err == io.EOF && frames == 0 && len(data) >= 4 {
					// EOF on a non-empty prefix is fine too (short header).
					_ = err
				}
				return
			}
			// A successfully decoded envelope must survive a re-encode.
			var buf bytes.Buffer
			if err := wire.NewEncoder(&buf).Encode(&m); err != nil {
				// Unregistered or unencodable payloads can't come out of
				// gob decode, so a re-encode failure is a codec bug.
				t.Fatalf("re-encode of decoded message failed: %v (%+v)", err, m)
			}
			var again wire.Message
			if err := wire.NewDecoder(&buf).Decode(&again); err != nil {
				t.Fatalf("decode of re-encoded message failed: %v (%+v)", err, m)
			}
			if !reflect.DeepEqual(m, again) {
				t.Fatalf("re-encode round trip mismatch:\n got:  %+v\n want: %+v", again, m)
			}
		}
	})
}
