package wire_test

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/adets/lsa"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/replica"
	"github.com/replobj/replobj/internal/wire"
)

// exemplarMessages covers every protocol payload the middleware registers
// with the codec: gcs ordering and view-change traffic, replica
// request/reply envelopes, scheduler timeout and LSA table messages.
func exemplarMessages() []wire.Message {
	view := gcs.View{Epoch: 3, Members: []wire.NodeID{"g/0", "g/1", "g/2"}}
	sub := gcs.Submit{Group: "g", ID: "inv-1", Origin: "client/c1",
		Payload: replica.Request{
			ID:      wire.InvocationID{Logical: "client/c1", Seq: 7},
			Group:   "g",
			Method:  "add",
			Args:    []byte{1, 2, 3},
			ReplyTo: "client/c1",
		}}
	return []wire.Message{
		{From: "client/c1", To: "g/0", Payload: sub},
		{From: "g/0", To: "g/1", Payload: gcs.Ordered{
			Group: "g", Epoch: 3, Seq: 41, ID: "inv-1", Origin: "client/c1",
			Payload: sub.Payload}},
		{From: "g/0", To: "g/1", Payload: gcs.Ordered{
			Group: "g", Epoch: 4, Seq: 42, ID: "viewevent/g/0/4", Origin: "g/0",
			View: &gcs.View{Epoch: 4, Members: view.Members[:2]}}},
		{From: "g/1", To: "g/0", Payload: gcs.Nack{Group: "g", From: "g/1", Want: 17}},
		{From: "g/2", To: "g/0", Payload: gcs.Heartbeat{Group: "g", From: "g/2", Epoch: 3, MaxSeq: 40}},
		{From: "g/1", To: "g/2", Payload: gcs.Propose{Group: "g", From: "g/1", View: view}},
		{From: "g/1", To: "g/2", Payload: gcs.SyncReq{Group: "g", From: "g/1", View: view}},
		{From: "g/2", To: "g/1", Payload: gcs.SyncResp{
			Group: "g", From: "g/2", Epoch: 3, Delivered: 40,
			Tail:    []gcs.Ordered{{Group: "g", Epoch: 3, Seq: 41, ID: "inv-1", Origin: "client/c1"}},
			Pending: []gcs.Submit{{Group: "g", ID: "inv-2", Origin: "client/c2"}}}},
		{From: "g/0", To: "client/c1", Payload: replica.Reply{
			ID: wire.InvocationID{Logical: "client/c1", Seq: 7}, From: "g/0",
			Result: []byte{9}, Err: ""}},
		{From: "g/0", To: "g/1", Payload: adets.TimeoutMsg{
			Target: "client/c1", Mutex: "state", Cond: "ready", WaitSeq: 2}},
		{From: "g/0", To: "g/1", Payload: lsa.TableUpdate{
			From:    "g/0",
			Entries: []lsa.TableEntry{{M: "state", L: "client/c1"}}}},
		// Migration handoff frames ride the ordered stream as gcs.Submit
		// payloads: a mid-stream chunk with key images, and a stream-opening
		// chunk carrying migrated reply-cache entries.
		{From: "kv@0/0", To: "kv@2/0", Payload: gcs.Submit{
			Group: "kv@2", ID: "migrate/kv/2/kv@0/kv@2/1", Origin: "kv@0/0",
			Payload: replica.MigrateChunk{
				Object: "kv", Epoch: 2, Source: "kv@0", Target: "kv@2",
				Index: 1, Count: 3, Cut: 57,
				Keys: []replica.KeyState{
					{Key: "acct-4", Data: []byte{0, 0, 0, 0, 0, 0, 0, 9}},
					{Key: "acct-12", Data: nil},
				}}}},
		{From: "kv@0/1", To: "kv@2/1", Payload: gcs.Ordered{
			Group: "kv@2", Epoch: 1, Seq: 9, ID: "migrate/kv/2/kv@0/kv@2/0", Origin: "kv@0/1",
			Payload: replica.MigrateChunk{
				Object: "kv", Epoch: 2, Source: "kv@0", Target: "kv@2",
				Index: 0, Count: 3, Cut: 57,
				Cache: []replica.CacheEntry{{
					ID:  wire.InvocationID{Logical: "client/c1", Seq: 12},
					Key: "acct-4",
					Reply: replica.Reply{
						ID:     wire.InvocationID{Logical: "client/c1", Seq: 12},
						From:   "kv@0/0",
						Result: []byte{0, 0, 0, 0, 0, 0, 0, 5}},
				}}}}},
	}
}

// TestRoundTripAllMessageTypes: encode→decode preserves every registered
// protocol message bit for bit.
func TestRoundTripAllMessageTypes(t *testing.T) {
	for _, in := range exemplarMessages() {
		var buf bytes.Buffer
		if err := wire.NewEncoder(&buf).Encode(&in); err != nil {
			t.Fatalf("%T: Encode: %v", in.Payload, err)
		}
		var out wire.Message
		if err := wire.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("%T: Decode: %v", in.Payload, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%T: round trip mismatch:\n in:  %+v\n out: %+v", in.Payload, in, out)
		}
	}
}

// TestDifferentialBinaryVsGob cross-checks the two codec paths on every
// exemplar: the hand-marshalled binary frame and its gob twin must decode
// to deeply equal messages, and the binary frame must survive a
// decode→re-encode cycle bit for bit (the canonical-encoding guarantee).
func TestDifferentialBinaryVsGob(t *testing.T) {
	for _, in := range exemplarMessages() {
		bin, err := wire.AppendMessage(nil, &in)
		if err != nil {
			t.Fatalf("%T: binary encode: %v", in.Payload, err)
		}
		gobbed, err := wire.AppendMessageGob(nil, &in)
		if err != nil {
			t.Fatalf("%T: gob encode: %v", in.Payload, err)
		}
		fromBin, n, clean, err := wire.ConsumeMessage(bin)
		if err != nil {
			t.Fatalf("%T: binary decode: %v", in.Payload, err)
		}
		if n != len(bin) {
			t.Errorf("%T: binary frame consumed %d of %d bytes", in.Payload, n, len(bin))
		}
		fromGob, _, _, err := wire.ConsumeMessage(gobbed)
		if err != nil {
			t.Fatalf("%T: gob decode: %v", in.Payload, err)
		}
		if !reflect.DeepEqual(fromBin, fromGob) {
			t.Errorf("%T: codec paths disagree:\n binary: %+v\n gob:    %+v",
				in.Payload, fromBin, fromGob)
		}
		if !reflect.DeepEqual(fromBin, in) {
			t.Errorf("%T: binary round trip mismatch:\n in:  %+v\n out: %+v",
				in.Payload, in, fromBin)
		}
		if clean {
			re, err := wire.AppendMessage(nil, &fromBin)
			if err != nil {
				t.Fatalf("%T: re-encode: %v", in.Payload, err)
			}
			if !bytes.Equal(re, bin) {
				t.Errorf("%T: binary-clean frame is not byte-stable:\n first:  %x\n second: %x",
					in.Payload, bin, re)
			}
		}
	}
}

// FuzzDecode is a differential fuzzer over the frame decoder. Arbitrary
// bytes must never panic; any frame that does decode must (a) re-encode
// and decode to the same envelope, (b) if it decoded entirely through the
// binary fast path, re-encode to the identical bytes (canonical encoding),
// and (c) decode to the same message through the gob fallback twin.
func FuzzDecode(f *testing.F) {
	for _, m := range exemplarMessages() {
		bin, err := wire.AppendMessage(nil, &m)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(bin)
		gobbed, err := wire.AppendMessageGob(nil, &m)
		if err != nil {
			f.Fatalf("seed gob encode: %v", err)
		}
		f.Add(gobbed)
		f.Add(append(append([]byte(nil), bin...), gobbed...)) // two frames back to back
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{2, 1, 0}) // frame of size 2: tag nil, empty From — short
	f.Add([]byte{1, 1})    // frame of size 1: tag nil alone

	f.Fuzz(func(t *testing.T, data []byte) {
		// The stream decoder must agree with the one-shot parser.
		dec := wire.NewDecoder(bytes.NewReader(data))
		rest := data
		for frames := 0; frames < 64; frames++ {
			m, n, clean, err := wire.ConsumeMessage(rest)
			var streamed wire.Message
			streamErr := dec.Decode(&streamed)
			if err != nil {
				// The stream decoder may fail differently (it reads lazily)
				// but must fail too, except at a clean end of stream.
				if streamErr == nil && len(rest) > 0 {
					t.Fatalf("ConsumeMessage rejected (%v) what Decode accepted: %+v", err, streamed)
				}
				return
			}
			if streamErr != nil {
				t.Fatalf("Decode rejected (%v) what ConsumeMessage accepted: %+v", streamErr, m)
			}
			if !reflect.DeepEqual(m, streamed) {
				t.Fatalf("stream and one-shot decoders disagree:\n stream:   %+v\n one-shot: %+v", streamed, m)
			}
			frame := rest[:n]
			rest = rest[n:]

			// (a) Re-encode must round-trip to the same envelope.
			re, err := wire.AppendMessage(nil, &m)
			if err != nil {
				t.Fatalf("re-encode of decoded message failed: %v (%+v)", err, m)
			}
			again, _, _, err := wire.ConsumeMessage(re)
			if err != nil {
				t.Fatalf("decode of re-encoded message failed: %v (%+v)", err, m)
			}
			if !reflect.DeepEqual(m, again) {
				t.Fatalf("re-encode round trip mismatch:\n got:  %+v\n want: %+v", again, m)
			}
			// (b) Binary-clean frames re-encode bit for bit: the canonical
			// rules (minimal varints, 0/1 bools, no trailing bytes) leave
			// exactly one encoding per message.
			if clean && !bytes.Equal(re, frame) {
				t.Fatalf("binary-clean frame is not byte-stable:\n in:  %x\n out: %x", frame, re)
			}
			// (c) The gob twin must decode to the same message. Nil payloads
			// are skipped: gob cannot encode a nil interface.
			if m.Payload != nil {
				gb, err := wire.AppendMessageGob(nil, &m)
				if err != nil {
					t.Fatalf("gob twin encode failed: %v (%+v)", err, m)
				}
				fromGob, _, _, err := wire.ConsumeMessage(gb)
				if err != nil {
					t.Fatalf("gob twin decode failed: %v (%+v)", err, m)
				}
				if !reflect.DeepEqual(m, fromGob) {
					t.Fatalf("codec paths disagree:\n binary: %+v\n gob:    %+v", m, fromGob)
				}
			}
			if len(rest) == 0 {
				return
			}
		}
	})
}
