// Package gcs implements the group communication substrate of the
// middleware: reliable totally-ordered broadcast within a replica group,
// group membership with deterministic view changes, and a heartbeat failure
// detector.
//
// It plays the role of the Aspectix group communication module in the
// paper's FTflex stack (Section 5.1): client requests, nested-invocation
// replies, deterministic-timeout requests, and LSA mutex-table updates all
// travel through it, and every replica observes them in the same total
// order. View changes are delivered *in-stream* as ordered events, so a
// scheduler such as ADETS-LSA sees the leader change at exactly the same
// logical position on every replica.
//
// The protocol is a fixed-sequencer total order: the lowest-ranked live
// member sequences. On suspicion of a member, a new view is proposed; the
// new sequencer synchronizes ordered-message tails from all live members,
// rebroadcasts the union, and resumes numbering in the same sequence space.
//
// Assumptions (documented limits, adequate for the paper's experiments):
// crash-stop failures, at most a minority of a group failing, and an
// eventually well-behaved network. Byzantine failures are out of scope
// (the paper's LSA discussion mentions a Byzantine fail-over variant; we
// implement the crash variant).
package gcs

import (
	"fmt"
	"time"

	"github.com/replobj/replobj/internal/obs/tracing"
	"github.com/replobj/replobj/internal/wire"
)

// View is a group membership view: a monotonically increasing epoch and the
// live members in rank order (a subset of the initial membership, original
// order preserved).
type View struct {
	Epoch   uint64
	Members []wire.NodeID
}

// Sequencer returns the member responsible for ordering in this view.
func (v View) Sequencer() wire.NodeID {
	if len(v.Members) == 0 {
		return ""
	}
	return v.Members[0]
}

// Contains reports whether id is a member of the view.
func (v View) Contains(id wire.NodeID) bool {
	for _, m := range v.Members {
		if m == id {
			return true
		}
	}
	return false
}

// clone returns a deep copy of the view.
func (v View) clone() View {
	return View{Epoch: v.Epoch, Members: append([]wire.NodeID(nil), v.Members...)}
}

func (v View) String() string {
	return fmt.Sprintf("view{epoch=%d members=%v}", v.Epoch, v.Members)
}

// Delivery is one element of the totally ordered stream a member hands to
// the layer above.
type Delivery struct {
	// Seq is the position in the group-wide total order. Seqs are contiguous
	// and shared across view changes.
	Seq uint64
	// ID is the submitter-chosen unique id of the message (used for
	// deduplication end to end).
	ID string
	// Origin is the node that submitted the message.
	Origin wire.NodeID
	// Payload is the application payload, nil for view events.
	Payload any
	// NewView is non-nil when this delivery announces a membership change.
	NewView *View
	// Snapshot is non-nil when the requested tail has been truncated and the
	// stream resumes from a checkpoint instead: Seq is the checkpoint
	// position and Snapshot the opaque state image recorded there (see
	// Member.SetCheckpoint). The layer above must restore from it; ordinary
	// deliveries continue at Seq+1.
	Snapshot []byte
}

// --- protocol payloads ---

// Submit asks the sequencer to order a payload.
type Submit struct {
	Group   wire.GroupID
	ID      string
	Origin  wire.NodeID
	Payload any
}

// TraceCtx delegates to the nested payload, so the transport can annotate
// a traced submit in flight without knowing the payload type.
func (s Submit) TraceCtx() tracing.Context {
	if t, ok := s.Payload.(tracing.Traced); ok {
		return t.TraceCtx()
	}
	return tracing.Context{}
}

// Ordered is a sequenced message broadcast by the sequencer.
//
// Two wire forms exist. The single form carries one message: Seq, ID,
// Origin, Payload (and View for in-stream view-change announcements). The
// batch form — produced by sequencer-side submit batching — leaves those
// blank and carries Batch instead: len(Batch) consecutively sequenced
// messages, Batch[i] holding sequence number Seq+i. Receivers unpack a
// batch into single messages immediately, so the retransmission log, NACK
// recovery and view synchronization only ever see the single form.
type Ordered struct {
	Group   wire.GroupID
	Epoch   uint64
	Seq     uint64
	ID      string
	Origin  wire.NodeID
	Payload any
	// View is non-nil for in-stream view-change announcements.
	View *View
	// Batch, when non-empty, turns this message into one ordering round:
	// submit i is assigned sequence number Seq+i.
	Batch []Submit
}

// TraceCtx returns the trace context of the payload, or — for a batch —
// of the first traced batch element, so transport spans can attach a
// batched broadcast to at least one of the traces riding in it.
func (o Ordered) TraceCtx() tracing.Context {
	if t, ok := o.Payload.(tracing.Traced); ok {
		return t.TraceCtx()
	}
	for _, s := range o.Batch {
		if ctx := s.TraceCtx(); ctx.Valid() {
			return ctx
		}
	}
	return tracing.Context{}
}

// Nack requests retransmission of ordered messages starting at Want.
type Nack struct {
	Group wire.GroupID
	From  wire.NodeID
	Want  uint64
}

// Heartbeat is the failure-detector beacon. MaxSeq piggybacks the sender's
// ordered-sequence frontier so a receiver that silently lost the tail of a
// burst (no later traffic would ever open a gap) learns it is behind and
// NACKs the sequencer. Acked piggybacks the sender's delivery frontier
// (highest contiguously delivered seq); the minimum over the view is the
// stability watermark below which retained log entries may be truncated.
type Heartbeat struct {
	Group  wire.GroupID
	From   wire.NodeID
	Epoch  uint64
	MaxSeq uint64
	Acked  uint64
}

// Snapshot transfers a checkpoint state image to a member whose requested
// tail has been truncated: it stands in for every ordered message up to and
// including Seq. Data is opaque to gcs (produced by the layer above through
// Member.SetCheckpoint).
type Snapshot struct {
	Group wire.GroupID
	Seq   uint64
	Data  []byte
}

// Hint is the sequencer's spontaneous-order announcement: on accepting a
// fresh submit for ordering it predicts the sequence number the submit
// will take (exact under stable batching, wrong across view changes or
// resubmit races) and broadcasts the prediction immediately, before the
// ordering round completes. Replicas use hints purely as speculation
// fuel — a wrong hint costs a discarded speculative execution, never
// correctness, because speculations are validated against the confirmed
// position at the ordered dispatch point.
type Hint struct {
	Group wire.GroupID
	ID    string
	Seq   uint64
}

// Propose announces a candidate next view after a suspicion.
type Propose struct {
	Group wire.GroupID
	From  wire.NodeID
	View  View
}

// SyncReq is sent by the sequencer of a proposed view to collect state.
// It carries the proposed view so a member that missed the Propose can
// adopt it.
type SyncReq struct {
	Group wire.GroupID
	From  wire.NodeID
	View  View
}

// SyncResp carries a member's ordered-message tail to the new sequencer.
// SnapSeq/Snap carry the member's latest checkpoint (zero/nil when none):
// the new sequencer uses the best one to bring deep-lagged members past
// truncated stretches of the log instead of filling them with no-ops.
type SyncResp struct {
	Group     wire.GroupID
	From      wire.NodeID
	Epoch     uint64
	Delivered uint64    // highest contiguously delivered seq
	Tail      []Ordered // retained ordered messages (any order)
	Pending   []Submit  // submits cached but possibly never ordered
	SnapSeq   uint64    // checkpoint position (0 = no checkpoint)
	Snap      []byte    // checkpoint state image
}

func init() {
	wire.RegisterPayload(Submit{})
	wire.RegisterPayload(Ordered{})
	wire.RegisterPayload(Nack{})
	wire.RegisterPayload(Heartbeat{})
	wire.RegisterPayload(Propose{})
	wire.RegisterPayload(SyncReq{})
	wire.RegisterPayload(SyncResp{})
	wire.RegisterPayload(Snapshot{})
	wire.RegisterPayload(Hint{})
}

// rankSubset returns the members of initial, in rank order, minus the
// excluded set — the deterministic membership rule every node applies.
func rankSubset(initial []wire.NodeID, excluded map[wire.NodeID]bool) []wire.NodeID {
	out := make([]wire.NodeID, 0, len(initial))
	for _, m := range initial {
		if !excluded[m] {
			out = append(out, m)
		}
	}
	return out
}

// Config configures a group member.
type Config struct {
	// Group is the group identifier; messages for other groups are ignored.
	Group wire.GroupID
	// Self is this member's node id; must appear in Members.
	Self wire.NodeID
	// Members is the initial membership in rank order.
	Members []wire.NodeID
	// Send transmits a payload to a peer (provided by the owner of the
	// transport endpoint). It must be safe to call from multiple goroutines
	// and must not be called with the runtime lock held — the Member
	// guarantees the latter.
	Send func(to wire.NodeID, payload any)

	// FailureDetection enables heartbeats and view changes.
	FailureDetection bool
	// HeartbeatEvery is the heartbeat period (default 25ms).
	HeartbeatEvery time.Duration
	// SuspectAfter is the silence threshold for suspicion (default 100ms).
	SuspectAfter time.Duration
	// SyncGrace bounds how long a new sequencer waits for SyncResps from
	// members that stay silent (default 2×SuspectAfter).
	SyncGrace time.Duration
	// ResubmitAfter is how long a cached submit may stay unordered before
	// the FD tick re-sends it to the sequencer (default 2×HeartbeatEvery).
	// Repairs submits lost between a replica and the sequencer. Only active
	// with FailureDetection.
	ResubmitAfter time.Duration
	// Quorum, when set, restricts the protocol to majority partitions: view
	// proposals must retain a strict majority of the current view, and the
	// sequencer suspends ordering while it cannot hear a majority. This
	// trades the ability to shrink below a majority (cascading-crash
	// tolerance) for split-brain safety under network partitions — an
	// isolated minority can neither form its own view nor order messages.
	Quorum bool

	// LogRetain is how many ordered messages are kept for retransmission
	// and view synchronization (default 4096).
	LogRetain int

	// MaxBatch caps how many submits the sequencer packs into one Ordered
	// broadcast (default 64; 1 disables batching). Batching amortizes the
	// per-broadcast fan-out — one wire message per round instead of one per
	// submit — without changing the total order any member observes.
	MaxBatch int
	// MaxBatchDelay is how long the sequencer may hold a partially filled
	// batch open waiting for more submits. The default 0 closes every
	// batch at the end of the event that opened it, so isolated submits
	// are ordered with unchanged latency and batching only coalesces
	// submits that arrive together (e.g. a resubmit burst). A positive
	// delay trades that latency for bigger rounds under sustained load.
	MaxBatchDelay time.Duration

	// DuplicateSubmit, when non-nil, is invoked (outside the runtime lock)
	// for each submit whose id this member has already seen ordered. The
	// ordered stream carries no second delivery in that case, so the owner
	// gets no other signal that a client is retransmitting: the replica
	// layer uses the hook to resend a cached at-most-once reply whose
	// original transmission was lost. Without it, a retransmitting client
	// can wait forever once every live replica has delivered the request
	// (the sequencer's log re-broadcast only repairs members that missed
	// the ordered message itself). seq is the stream position the id was
	// ordered at, 0 when the position has been pruned from the tracking
	// window — the replica layer uses it to classify retransmissions whose
	// reply-cache entry has already been evicted.
	DuplicateSubmit func(sub Submit, seq uint64)

	// OptimisticDeliver, when non-nil, is invoked (outside the runtime
	// lock) for each fresh submit this member sees before it is ordered —
	// the optimistic-delivery stream speculative execution runs on. The
	// hook may fire for submits that are never ordered (e.g. lost before
	// the sequencer) and fires at most once per id per member; the ordered
	// stream remains the only authority on what executes.
	OptimisticDeliver func(sub Submit)

	// SpecHints, when true, makes the sequencer broadcast a Hint — its
	// predicted sequence number — for every fresh submit it accepts, the
	// moment it is accepted (before the ordering round completes). Hints
	// feed HintDeliver on every member, including the sequencer itself.
	SpecHints bool

	// HintDeliver, when non-nil, receives sequencer spontaneous-order
	// hints (outside the runtime lock). Predictions are best-effort; see
	// Hint.
	HintDeliver func(h Hint)

	// Stats receives protocol metrics. May be nil (all recordings no-op).
	Stats *Stats

	// Spans, when non-nil, records ordering-stage spans ("order",
	// "seq.batch") for traced payloads.
	Spans *tracing.Collector

	// Shard, when non-empty, labels this member's spans with its shard
	// group id so per-stage latency decomposes per shard under multi-group
	// hosting. Plain (unsharded) groups leave it empty.
	Shard string
}

func (c *Config) applyDefaults() {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 25 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 100 * time.Millisecond
	}
	if c.SyncGrace <= 0 {
		c.SyncGrace = 2 * c.SuspectAfter
	}
	if c.ResubmitAfter <= 0 {
		c.ResubmitAfter = 2 * c.HeartbeatEvery
	}
	if c.LogRetain <= 0 {
		c.LogRetain = 4096
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
}
