package gcs

import (
	"fmt"
	"testing"

	"github.com/replobj/replobj/internal/wire"
)

// TestHoldTruncationPinsLog: an armed migration pins log truncation at its
// prepare position — a checkpoint taken while the hold is armed must not
// advance the log floor past it, so a rejoiner can still replay the
// ordered tail from the prepare onward (snapshot bridges only the prefix).
// Release restores normal checkpoint-driven truncation.
func TestHoldTruncationPinsLog(t *testing.T) {
	h := newHarness(3, false)
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		const n = 12
		for i := 0; i < n; i++ {
			h.submitFromClient(cl, fmt.Sprintf("m%02d", i), "x")
		}
		take(t, h.rt, h.members[0], n)
		m := h.members[0]

		// Arm the hold at seq 5 (the migration prepare), then checkpoint at
		// 10: without the hold this would retain only seqs 11..12.
		m.HoldTruncation(5)
		m.SetCheckpoint(10, []byte("snapimage"))
		if got := m.LogLen(); got != 8 {
			t.Errorf("held log length = %d, want 8 (seqs 5..12 pinned by the hold)", got)
		}

		// The hold only lowers: a later, higher hold must not let the floor
		// creep up past the original pin.
		m.HoldTruncation(8)
		m.SetCheckpoint(10, []byte("snapimage"))
		if got := m.LogLen(); got != 8 {
			t.Errorf("log length after higher re-hold = %d, want 8 (hold must only lower)", got)
		}

		// Release: the next checkpoint truncates normally again.
		m.ReleaseTruncation()
		m.SetCheckpoint(10, []byte("snapimage"))
		if got := m.LogLen(); got != 2 {
			t.Errorf("post-release log length = %d, want 2 (seqs 11..12)", got)
		}
	})
}

// TestHoldTruncationIdempotentRelease: releasing without a hold (or twice)
// is a no-op, and a fresh hold after release arms again.
func TestHoldTruncationIdempotentRelease(t *testing.T) {
	h := newHarness(3, false)
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		const n = 8
		for i := 0; i < n; i++ {
			h.submitFromClient(cl, fmt.Sprintf("m%02d", i), "x")
		}
		take(t, h.rt, h.members[0], n)
		m := h.members[0]
		m.ReleaseTruncation()
		m.ReleaseTruncation()
		m.SetCheckpoint(6, []byte("s"))
		if got := m.LogLen(); got != 2 {
			t.Errorf("log length = %d, want 2 (release without hold must not pin)", got)
		}
		m.HoldTruncation(7)
		m.SetCheckpoint(8, []byte("s"))
		if got := m.LogLen(); got != 2 {
			t.Errorf("log length = %d, want 2 (seqs 7..8 under fresh hold)", got)
		}
	})
}
