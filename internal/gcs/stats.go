package gcs

import "github.com/replobj/replobj/internal/obs"

// Stats collects group-communication metrics for one member. All fields are
// nil-safe: a nil *Stats (or one built from a nil registry) makes every
// recording a no-op, so the hot path pays nothing when observability is off.
type Stats struct {
	Broadcasts  *obs.Counter
	Delivered   *obs.Counter
	Nacks       *obs.Counter
	ViewChanges *obs.Counter
	Heartbeats  *obs.Counter
	Suspicions  *obs.Counter
	// Batches counts multi-submit ordering rounds broadcast by this member
	// as sequencer; BatchedSubmits counts the submits they carried.
	Batches        *obs.Counter
	BatchedSubmits *obs.Counter
	// DeliverLatency measures broadcast-to-self-delivery time in seconds
	// for messages this member originated.
	DeliverLatency *obs.Histogram
	// LogLength tracks the number of retained ordered messages; Truncated
	// counts log entries dropped below the stability watermark.
	LogLength *obs.Gauge
	Truncated *obs.Counter
	// TruncationHold is the current HoldTruncation pin (0 = none);
	// TruncationHeld counts truncation rounds whose floor was clamped by
	// an active hold — a growing count during a migration is the watermark
	// trying to advance past the handoff tail and being stopped.
	TruncationHold *obs.Gauge
	TruncationHeld *obs.Counter
	// SnapshotsSent/SnapshotsInstalled count checkpoint state transfers to
	// (resp. from) peers whose requested tail was truncated.
	SnapshotsSent      *obs.Counter
	SnapshotsInstalled *obs.Counter
}

// NewStats builds the member's metric set in reg, labelling every series
// with the node ID. A nil registry yields nil (all recordings no-op).
func NewStats(reg *obs.Registry, node string) *Stats {
	return newStats(reg, `{node="`+node+`"}`)
}

// NewStatsGrouped is the multi-group hosting form of NewStats: one process
// hosts many members (a sharded object's groups plus its directory), and
// the extra shard label lets dashboards slice the same series per shard
// group instead of prying the group out of the node id.
func NewStatsGrouped(reg *obs.Registry, node, shard string) *Stats {
	return newStats(reg, `{node="`+node+`",shard="`+shard+`"}`)
}

func newStats(reg *obs.Registry, label string) *Stats {
	if reg == nil {
		return nil
	}
	return &Stats{
		Broadcasts:         reg.Counter("replobj_gcs_broadcasts_total" + label),
		Delivered:          reg.Counter("replobj_gcs_delivered_total" + label),
		Nacks:              reg.Counter("replobj_gcs_nacks_total" + label),
		ViewChanges:        reg.Counter("replobj_gcs_view_changes_total" + label),
		Heartbeats:         reg.Counter("replobj_gcs_heartbeats_sent_total" + label),
		Suspicions:         reg.Counter("replobj_gcs_suspicions_total" + label),
		Batches:            reg.Counter("replobj_gcs_batches_total" + label),
		BatchedSubmits:     reg.Counter("replobj_gcs_batched_submits_total" + label),
		DeliverLatency:     reg.Histogram("replobj_gcs_deliver_latency_seconds"+label, obs.LatencyBuckets()),
		LogLength:          reg.Gauge("replobj_gcs_log_length" + label),
		Truncated:          reg.Counter("replobj_gcs_log_truncated_total" + label),
		TruncationHold:     reg.Gauge("replobj_gcs_log_truncation_hold" + label),
		TruncationHeld:     reg.Counter("replobj_gcs_log_truncation_held_total" + label),
		SnapshotsSent:      reg.Counter("replobj_gcs_snapshots_sent_total" + label),
		SnapshotsInstalled: reg.Counter("replobj_gcs_snapshots_installed_total" + label),
	}
}
