package gcs

import (
	"reflect"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/wire"
)

// These tests cover the chaos-hardening paths: heartbeat-frontier catch-up,
// FD-driven resubmission of lost submits, the opt-in quorum guard, and
// crash-restart rejoin.

// TestHeartbeatFrontierRepairsLostTail: the last messages of a burst are
// lost toward one member and no later submit ever arrives to open a gap —
// the piggybacked heartbeat frontier must trigger the NACK instead.
func TestHeartbeatFrontierRepairsLostTail(t *testing.T) {
	h := newHarnessCfg(3, true, func(c *Config) {
		c.ResubmitAfter = time.Hour // isolate the frontier path
	})
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		victim, seqr := h.ids[2], h.ids[0]
		h.rt.Sleep(30 * time.Millisecond) // establish liveness
		h.net.SetDropRule(func(from, to wire.NodeID) bool {
			return from == seqr && to == victim
		})
		for i := 0; i < 5; i++ {
			h.submitFromClient(cl, []string{"a", "b", "c", "d", "e"}[i], "x")
		}
		h.rt.Sleep(50 * time.Millisecond) // burst fully ordered elsewhere; victim got nothing
		h.net.SetDropRule(nil)
		// No further submits: only heartbeats flow. The victim must still
		// catch up within a few heartbeat intervals.
		got := ids(take(t, h.rt, h.members[2], 5))
		want := []string{"a", "b", "c", "d", "e"}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("victim delivered %v, want %v", got, want)
		}
	})
}

// TestStaleSubmitResent: a member's own broadcast is lost on its way to the
// sequencer; the FD tick re-sends it once it has sat unordered past
// ResubmitAfter, without any view change.
func TestStaleSubmitResent(t *testing.T) {
	h := newHarness(3, true)
	h.run(func() {
		h.rt.Sleep(30 * time.Millisecond)
		// Cut member1→sequencer for less than SuspectAfter so no suspicion
		// fires, losing the forwarded submit.
		h.net.SetDropRule(func(from, to wire.NodeID) bool {
			return from == h.ids[1] && to == h.ids[0]
		})
		h.members[1].Broadcast("lost-once", appMsg{Body: "x"})
		h.rt.Sleep(60 * time.Millisecond)
		h.net.SetDropRule(nil)
		for i, m := range h.members {
			got := ids(take(t, h.rt, m, 1))
			if !reflect.DeepEqual(got, []string{"lost-once"}) {
				t.Errorf("member %d delivered %v, want [lost-once]", i, got)
			}
		}
		// No view change may have occurred.
		if v := h.members[0].View(); v.Epoch != 0 || len(v.Members) != 3 {
			t.Errorf("unexpected view change: %v", v)
		}
	})
}

// TestQuorumBlocksMinorityProgress: with Quorum set, a sequencer that can
// hear no majority must neither shrink the view nor order submits; once the
// peers are reachable again it orders its backlog in place.
func TestQuorumBlocksMinorityProgress(t *testing.T) {
	h := newHarnessCfg(3, true, func(c *Config) { c.Quorum = true })
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		h.rt.Sleep(50 * time.Millisecond)
		h.net.Crash(h.ids[1])
		h.net.Crash(h.ids[2])
		h.rt.Sleep(300 * time.Millisecond) // well past SuspectAfter
		h.submitFromClient(cl, "stuck", "x")
		if d, ok, timedOut := h.members[0].DeliverTimeout(300 * time.Millisecond); ok && !timedOut {
			t.Fatalf("minority sequencer ordered %+v without a quorum", d)
		}
		if v := h.members[0].View(); v.Epoch != 0 || len(v.Members) != 3 {
			t.Fatalf("minority sequencer changed the view: %v", v)
		}
		h.net.Restore(h.ids[1])
		h.net.Restore(h.ids[2])
		h.rt.Sleep(200 * time.Millisecond)
		for i, m := range h.members {
			got := ids(take(t, h.rt, m, 1))
			if !reflect.DeepEqual(got, []string{"stuck"}) {
				t.Errorf("member %d delivered %v, want [stuck]", i, got)
			}
		}
	})
}

// TestCrashRestartRejoinsAtOriginalRank: a follower isolated long enough to
// be excluded from the view is re-added at its original rank once heard
// again, and catches up on everything ordered during its absence.
func TestCrashRestartRejoinsAtOriginalRank(t *testing.T) {
	h := newHarnessCfg(3, true, func(c *Config) { c.Quorum = true })
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		h.submitFromClient(cl, "before", "x")
		h.rt.Sleep(50 * time.Millisecond)
		h.net.Crash(h.ids[1])
		h.rt.Sleep(500 * time.Millisecond) // view change to {0, 2}
		if v := h.members[0].View(); len(v.Members) != 2 {
			t.Fatalf("follower crash not detected: %v", v)
		}
		h.submitFromClient(cl, "during", "x")
		h.rt.Sleep(50 * time.Millisecond)
		h.net.Restore(h.ids[1])
		h.rt.Sleep(500 * time.Millisecond) // rejoin proposal + sync
		h.submitFromClient(cl, "after", "x")

		want := []string{"before", "during", "after"}
		for _, idx := range []int{0, 1, 2} {
			app, views := takeWithViews(t, h.members[idx], 3)
			if !reflect.DeepEqual(app, want) {
				t.Errorf("member %d app stream = %v, want %v", idx, app, want)
			}
			if len(views) == 0 {
				t.Fatalf("member %d saw no view changes", idx)
			}
			final := views[len(views)-1]
			if !reflect.DeepEqual(final.Members, h.ids) {
				t.Errorf("member %d final view = %v, want full membership %v", idx, final, h.ids)
			}
			if final.Sequencer() != h.ids[0] {
				t.Errorf("member %d: sequencer = %v, want %v (original rank order)", idx, final.Sequencer(), h.ids[0])
			}
		}
	})
}

// TestAbandonedInstallRecovers: a follower adopts a view proposal, then the
// proposed sequencer dies before committing the view event. The follower
// must abandon the stalled install and drive a fresh view change instead of
// staying wedged forever.
func TestAbandonedInstallRecovers(t *testing.T) {
	h := newHarness(3, true)
	h.run(func() {
		h.rt.Sleep(50 * time.Millisecond) // establish liveness
		// Lose member2's sync responses so member1's fail-over sync stalls
		// in its grace period.
		h.net.SetDropRule(func(from, to wire.NodeID) bool {
			return from == h.ids[2] && to == h.ids[1]
		})
		h.net.Crash(h.ids[0])
		h.rt.Sleep(150 * time.Millisecond) // suspicion fires; member1 proposes and starts syncing
		h.net.Crash(h.ids[1])              // proposer dies mid-install
		h.net.SetDropRule(nil)
		h.rt.Sleep(time.Second) // abandon grace + suspicion + re-proposal
		h.members[2].Broadcast("solo", appMsg{Body: "x"})
		_, views := takeWithViews(t, h.members[2], 1)
		if len(views) == 0 {
			t.Fatal("member 2 never installed a new view")
		}
		final := views[len(views)-1]
		if len(final.Members) != 1 || final.Sequencer() != h.ids[2] {
			t.Errorf("member 2 final view = %v, want singleton {%v}", final, h.ids[2])
		}
	})
}

// TestFailoverDeliversInSeqOrder: when the sequencer crashes while the next
// sequencer holds cached submits, installing the new view re-orders that
// backlog recursively — the view event must still precede it in the delivery
// stream, and sequence numbers must stay strictly increasing.
func TestFailoverDeliversInSeqOrder(t *testing.T) {
	h := newHarness(3, true)
	h.run(func() {
		h.rt.Sleep(50 * time.Millisecond) // establish liveness
		h.net.Crash(h.ids[0])
		// Cached at members 1 and 2, unreachable by the dead sequencer.
		h.members[1].Broadcast("backlog-a", appMsg{Body: "x"})
		h.members[1].Broadcast("backlog-b", appMsg{Body: "x"})
		h.rt.Sleep(500 * time.Millisecond) // suspicion + fail-over

		for _, idx := range []int{1, 2} {
			var seqs []uint64
			sawView := false
			for {
				d, ok, timedOut := h.members[idx].DeliverTimeout(200 * time.Millisecond)
				if !ok || timedOut {
					break
				}
				if d.NewView != nil {
					sawView = true
				} else if !sawView {
					t.Errorf("member %d delivered %q (seq %d) before the view event", idx, d.ID, d.Seq)
				}
				seqs = append(seqs, d.Seq)
			}
			if !sawView {
				t.Fatalf("member %d saw no view change", idx)
			}
			for i := 1; i < len(seqs); i++ {
				if seqs[i] <= seqs[i-1] {
					t.Errorf("member %d seqs not strictly increasing: %v", idx, seqs)
				}
			}
		}
	})
}

// TestDeposedSequencerStopsOrdering: a sequencer that learns of a higher
// epoch (it was deposed while unreachable) must not order in the old
// sequence space, even before the new view reaches it.
func TestDeposedSequencerStopsOrdering(t *testing.T) {
	h := newHarness(3, false)
	h.run(func() {
		m := h.members[0]
		// Simulate hearing a heartbeat from a higher epoch.
		m.Handle(h.ids[1], Heartbeat{Group: h.group, From: h.ids[1], Epoch: 5})
		m.Broadcast("late", appMsg{Body: "x"})
		if d, ok, timedOut := m.DeliverTimeout(50 * time.Millisecond); ok && !timedOut {
			t.Fatalf("deposed sequencer delivered %+v", d)
		}
		h.rt.Lock()
		cached := len(m.submitCache)
		h.rt.Unlock()
		if cached != 1 {
			t.Errorf("submit not cached for the next view (cache=%d)", cached)
		}
	})
}
