package gcs

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/wire"
)

// takeWithViews reads deliveries until n app messages have arrived,
// returning app ids and the views announced along the way.
func takeWithViews(t *testing.T, m *Member, n int) (app []string, views []View) {
	t.Helper()
	for len(app) < n {
		d, ok, timedOut := m.DeliverTimeout(10 * time.Second)
		if timedOut {
			t.Fatalf("timed out after %d/%d app deliveries (views so far: %v)", len(app), n, views)
		}
		if !ok {
			t.Fatalf("stream closed after %d/%d", len(app), n)
		}
		if d.NewView != nil {
			views = append(views, *d.NewView)
			continue
		}
		if d.Payload == nil {
			continue
		}
		app = append(app, d.ID)
	}
	return app, views
}

func TestViewChangeOnFollowerCrash(t *testing.T) {
	h := newHarness(3, true)
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		h.submitFromClient(cl, "before", "x")
		// Let traffic establish liveness, then crash a follower.
		h.rt.Sleep(50 * time.Millisecond)
		h.net.Crash(h.ids[1])
		// Wait for suspicion and view change, then submit again.
		h.rt.Sleep(500 * time.Millisecond)
		h.submitFromClient(cl, "after", "x")

		for _, idx := range []int{0, 2} {
			app, views := takeWithViews(t, h.members[idx], 2)
			if !reflect.DeepEqual(app, []string{"before", "after"}) {
				t.Errorf("member %d app stream = %v", idx, app)
			}
			if len(views) == 0 {
				t.Fatalf("member %d saw no view change", idx)
			}
			v := views[len(views)-1]
			want := []wire.NodeID{h.ids[0], h.ids[2]}
			if !reflect.DeepEqual(v.Members, want) {
				t.Errorf("member %d final view = %v, want members %v", idx, v, want)
			}
			if v.Sequencer() != h.ids[0] {
				t.Errorf("sequencer = %v, want %v (unchanged)", v.Sequencer(), h.ids[0])
			}
		}
	})
}

func TestViewChangeOnSequencerCrashElectsNext(t *testing.T) {
	h := newHarness(3, true)
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		h.submitFromClient(cl, "before", "x")
		h.rt.Sleep(50 * time.Millisecond)
		h.net.Crash(h.ids[0])
		h.rt.Sleep(800 * time.Millisecond)
		h.submitFromClient(cl, "after", "x")

		var streams [][]string
		for _, idx := range []int{1, 2} {
			app, views := takeWithViews(t, h.members[idx], 2)
			streams = append(streams, app)
			if len(views) == 0 {
				t.Fatalf("member %d saw no view change after sequencer crash", idx)
			}
			v := views[len(views)-1]
			if v.Sequencer() != h.ids[1] {
				t.Errorf("member %d: new sequencer = %v, want %v", idx, v.Sequencer(), h.ids[1])
			}
		}
		if !reflect.DeepEqual(streams[0], streams[1]) {
			t.Errorf("survivors disagree: %v vs %v", streams[0], streams[1])
		}
		if !reflect.DeepEqual(streams[0], []string{"before", "after"}) {
			t.Errorf("stream = %v, want [before after]", streams[0])
		}
	})
}

func TestSubmitDuringSequencerOutageIsRecovered(t *testing.T) {
	h := newHarness(3, true)
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		h.submitFromClient(cl, "m0", "x")
		h.rt.Sleep(50 * time.Millisecond)
		h.net.Crash(h.ids[0])
		// Submitted while the old sequencer is dead but before anyone
		// suspects it: the submit reaches the followers' caches and must be
		// ordered by the new sequencer after the view change.
		h.submitFromClient(cl, "m1-during-outage", "x")
		h.rt.Sleep(800 * time.Millisecond)
		h.submitFromClient(cl, "m2", "x")

		app, _ := takeWithViews(t, h.members[2], 3)
		want := []string{"m0", "m1-during-outage", "m2"}
		if !reflect.DeepEqual(app, want) {
			t.Errorf("stream = %v, want %v", app, want)
		}
	})
}

func TestCascadingCrashesLeaveSingleton(t *testing.T) {
	h := newHarness(3, true)
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		h.submitFromClient(cl, "a", "x")
		h.rt.Sleep(50 * time.Millisecond)
		h.net.Crash(h.ids[0])
		h.rt.Sleep(800 * time.Millisecond)
		h.net.Crash(h.ids[1])
		h.rt.Sleep(800 * time.Millisecond)
		h.submitFromClient(cl, "b", "x")

		app, views := takeWithViews(t, h.members[2], 2)
		if !reflect.DeepEqual(app, []string{"a", "b"}) {
			t.Errorf("stream = %v", app)
		}
		final := views[len(views)-1]
		if len(final.Members) != 1 || final.Sequencer() != h.ids[2] {
			t.Errorf("final view = %v, want singleton %v", final, h.ids[2])
		}
	})
}

func TestViewChangeDeterministicIDs(t *testing.T) {
	v := View{Epoch: 3, Members: []wire.NodeID{"g/1", "g/2"}}
	if got := viewEventID(v); got != "viewevent/g/1/3" {
		t.Errorf("viewEventID = %q", got)
	}
	if itoa(0) != "0" || itoa(12345) != "12345" {
		t.Errorf("itoa broken: %q %q", itoa(0), itoa(12345))
	}
}

func TestViewHelpers(t *testing.T) {
	v := View{Epoch: 1, Members: []wire.NodeID{"a", "b", "c"}}
	if v.Sequencer() != "a" {
		t.Errorf("Sequencer = %v", v.Sequencer())
	}
	if !v.Contains("b") || v.Contains("z") {
		t.Error("Contains broken")
	}
	if (View{}).Sequencer() != "" {
		t.Error("empty view sequencer should be empty")
	}
	c := v.clone()
	c.Members[0] = "mut"
	if v.Members[0] != "a" {
		t.Error("clone aliases members")
	}
	sub := rankSubset([]wire.NodeID{"a", "b", "c"}, map[wire.NodeID]bool{"b": true})
	if !reflect.DeepEqual(sub, []wire.NodeID{"a", "c"}) {
		t.Errorf("rankSubset = %v", sub)
	}
	if got := fmt.Sprint(v); got == "" {
		t.Error("View.String empty")
	}
}
