package gcs

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/transport"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

type appMsg struct {
	Body string
}

func init() { wire.RegisterPayload(appMsg{}) }

// harness wires n members of one group over an in-process network.
type harness struct {
	rt      *vtime.VirtualRuntime
	net     *transport.Inproc
	group   wire.GroupID
	ids     []wire.NodeID
	members []*Member
	eps     []transport.Endpoint
}

func newHarness(n int, fd bool) *harness {
	return newHarnessCfg(n, fd, nil)
}

// newHarnessCfg is newHarness with a per-member Config hook (applied before
// defaulting, so explicit values stick).
func newHarnessCfg(n int, fd bool, mutate func(*Config)) *harness {
	rt := vtime.Virtual()
	net := transport.NewInproc(rt)
	h := &harness{rt: rt, net: net, group: "g"}
	for i := 0; i < n; i++ {
		h.ids = append(h.ids, wire.ReplicaID(h.group, i))
	}
	for i := 0; i < n; i++ {
		ep := net.Endpoint(h.ids[i])
		cfg := Config{
			Group:            h.group,
			Self:             h.ids[i],
			Members:          h.ids,
			Send:             ep.Send,
			FailureDetection: fd,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		m := NewMember(rt, cfg)
		h.members = append(h.members, m)
		h.eps = append(h.eps, ep)
		rt.Go("recv/"+string(h.ids[i]), func() {
			for {
				msg, ok := ep.Recv()
				if !ok {
					return
				}
				m.Handle(msg.From, msg.Payload)
			}
		})
		m.Start()
	}
	return h
}

// run executes fn on a tracked goroutine, then tears the group down from
// inside the simulation so every recv loop exits before the kernel reaches
// quiescence (the virtual kernel treats leaked parked goroutines with no
// pending timers as a deadlock).
func (h *harness) run(fn func()) {
	vtime.Run(h.rt, "main", func() {
		fn()
		for i, m := range h.members {
			m.Stop()
			h.eps[i].Close()
		}
	})
	h.rt.Stop()
}

// submitFromClient mimics a client: sends the Submit to every member.
func (h *harness) submitFromClient(cl transport.Endpoint, id, body string) {
	sub := Submit{Group: h.group, ID: id, Origin: cl.ID(), Payload: appMsg{Body: body}}
	for _, m := range h.ids {
		cl.Send(m, sub)
	}
}

// take reads n app deliveries (skipping view events) from a member, failing
// the test on timeout. It must run on a tracked goroutine.
func take(t *testing.T, rt vtime.Runtime, m *Member, n int) []Delivery {
	t.Helper()
	out := make([]Delivery, 0, n)
	for len(out) < n {
		d, ok, timedOut := m.DeliverTimeout(5 * time.Second)
		if timedOut {
			t.Fatalf("timed out after %d/%d deliveries", len(out), n)
		}
		if !ok {
			t.Fatalf("delivery stream closed after %d/%d", len(out), n)
		}
		if d.NewView != nil || d.Payload == nil {
			continue
		}
		out = append(out, d)
	}
	return out
}

func ids(ds []Delivery) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.ID
	}
	return out
}

func TestTotalOrderBasic(t *testing.T) {
	h := newHarness(3, false)
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		const n = 20
		for i := 0; i < n; i++ {
			h.submitFromClient(cl, fmt.Sprintf("m%02d", i), "x")
		}
		var streams [][]string
		for _, m := range h.members {
			streams = append(streams, ids(take(t, h.rt, m, n)))
		}
		for i := 1; i < len(streams); i++ {
			if !reflect.DeepEqual(streams[0], streams[i]) {
				t.Errorf("member %d delivered %v, member 0 delivered %v", i, streams[i], streams[0])
			}
		}
		if len(streams[0]) != n {
			t.Errorf("delivered %d messages, want %d", len(streams[0]), n)
		}
	})
}

func TestDuplicateSubmitsDeliveredOnce(t *testing.T) {
	h := newHarness(3, false)
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		for i := 0; i < 3; i++ {
			h.submitFromClient(cl, "dup", "x") // retransmissions
		}
		h.submitFromClient(cl, "tail", "x")
		got := ids(take(t, h.rt, h.members[2], 2))
		want := []string{"dup", "tail"}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("delivered %v, want %v", got, want)
		}
	})
}

func TestMemberBroadcast(t *testing.T) {
	h := newHarness(3, false)
	h.run(func() {
		// Broadcast from a follower must reach everyone in order.
		h.members[2].Broadcast("from-follower", appMsg{Body: "f"})
		h.members[0].Broadcast("from-sequencer", appMsg{Body: "s"})
		for i, m := range h.members {
			got := ids(take(t, h.rt, m, 2))
			if len(got) != 2 {
				t.Fatalf("member %d: got %v", i, got)
			}
		}
	})
}

func TestSameOrderAcrossMembersUnderConcurrency(t *testing.T) {
	h := newHarness(3, false)
	h.run(func() {
		cl1 := h.net.Endpoint(wire.ClientID("c1"))
		cl2 := h.net.Endpoint(wire.ClientID("c2"))
		defer cl1.Close()
		defer cl2.Close()
		const n = 15
		for i := 0; i < n; i++ {
			h.submitFromClient(cl1, fmt.Sprintf("a%02d", i), "a")
			h.submitFromClient(cl2, fmt.Sprintf("b%02d", i), "b")
			h.members[1].Broadcast(fmt.Sprintf("c%02d", i), appMsg{Body: "c"})
		}
		ref := ids(take(t, h.rt, h.members[0], 3*n))
		for i := 1; i < 3; i++ {
			got := ids(take(t, h.rt, h.members[i], 3*n))
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("member %d order differs:\n  m0: %v\n  m%d: %v", i, ref, i, got)
			}
		}
	})
}

func TestNackRecoversDroppedOrdereds(t *testing.T) {
	h := newHarness(3, false)
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		victim := h.ids[2]
		seqr := h.ids[0]
		// Drop all sequencer→victim traffic for a while.
		h.net.SetDropRule(func(from, to wire.NodeID) bool {
			return from == seqr && to == victim
		})
		for i := 0; i < 5; i++ {
			h.submitFromClient(cl, fmt.Sprintf("lost%d", i), "x")
		}
		h.rt.Sleep(20 * time.Millisecond)
		h.net.SetDropRule(nil)
		// The next ordered message creates a gap at the victim, which NACKs.
		h.submitFromClient(cl, "trigger", "x")
		got := ids(take(t, h.rt, h.members[2], 6))
		want := []string{"lost0", "lost1", "lost2", "lost3", "lost4", "trigger"}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("victim delivered %v, want %v", got, want)
		}
	})
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []string {
		h := newHarness(3, false)
		var got []string
		h.run(func() {
			cl := h.net.Endpoint(wire.ClientID("c1"))
			defer cl.Close()
			for i := 0; i < 10; i++ {
				h.submitFromClient(cl, fmt.Sprintf("m%d", i), "x")
			}
			got = ids(take(t, h.rt, h.members[1], 10))
		})
		return got
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical runs delivered different orders:\n  %v\n  %v", a, b)
	}
}
