package gcs

import (
	"time"

	"github.com/replobj/replobj/internal/obs/tracing"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// Member is one group member's instance of the total-order protocol.
// All state is guarded by the runtime lock; public methods take it
// internally and must be called without it.
type Member struct {
	rt  vtime.Runtime
	cfg Config

	deliveries *vtime.Mailbox[Delivery]

	view       View
	installing *View // adopted proposal, not yet installed via view event

	// Sequencer state.
	nextSeq    uint64
	orderedIDs map[string]bool
	idToSeq    map[string]uint64 // ordered id → sequence number (for resends)
	idOrder    []string          // FIFO for pruning orderedIDs

	// Sequencer-side submit batching (Config.MaxBatch/MaxBatchDelay):
	// submits accepted but not yet broadcast. Flushed at the end of the
	// event that opened the batch, when it fills, or when batchTimer fires.
	batch      []Submit
	batchAt    []time.Duration // batch[i]'s arrival time (span instrumentation)
	batchTimer *vtime.Timer

	// Delivery state.
	nextDeliver  uint64
	pendingOrder map[uint64]Ordered

	// Retained ordered messages for NACK retransmission and view sync.
	log map[uint64]Ordered

	// Checkpoint / truncation state. peerAcked records each peer's delivery
	// frontier (piggybacked on heartbeats); the minimum over the current
	// view is the stability watermark. Entries at or below logFloor have
	// been truncated from the log and can only be recovered via snapshot.
	peerAcked map[wire.NodeID]uint64
	logFloor  uint64
	snapSeq   uint64 // latest checkpoint position (0 = none)
	snapData  []byte // latest checkpoint state image
	// holdSeq, when non-zero, pins the truncation floor below it: entries
	// at or above holdSeq survive checkpoints, the stability watermark and
	// the retention cap. The replica holds its shard-migration prepare
	// position so the prepare→fence tail (including handoff chunks) stays
	// replayable for rejoiners until the fence releases the hold.
	holdSeq uint64

	// Submits seen but possibly not yet ordered; resubmitted on view change
	// and re-sent by the FD tick once stale (cacheAt records when each was
	// last sent toward the sequencer).
	submitCache map[string]Submit
	cacheOrder  []string
	cacheAt     map[string]time.Duration

	// maxSeenEpoch is the highest view epoch observed in any protocol
	// message. A sequencer whose installed epoch is below it has been
	// superseded (e.g. it was partitioned away and deposed) and must not
	// order messages until it catches up to the newer view.
	maxSeenEpoch uint64

	// Broadcast timestamps for self-originated ids, used to measure
	// broadcast→deliver latency. Only populated when cfg.Stats is set.
	submitAt    map[string]time.Duration
	submitAtIDs []string

	// Failure detection.
	lastSeen  map[wire.NodeID]time.Duration
	fdTimer   *vtime.Timer
	syncTimer *vtime.Timer
	syncResps map[wire.NodeID]SyncResp
	stopped   bool
}

// NewMember creates a member. Call Start before use and Stop when done.
func NewMember(rt vtime.Runtime, cfg Config) *Member {
	cfg.applyDefaults()
	return &Member{
		rt:           rt,
		cfg:          cfg,
		deliveries:   vtime.NewMailbox[Delivery](rt, "gcs/"+string(cfg.Self)),
		view:         View{Epoch: 0, Members: append([]wire.NodeID(nil), cfg.Members...)},
		nextSeq:      1,
		nextDeliver:  1,
		orderedIDs:   make(map[string]bool),
		idToSeq:      make(map[string]uint64),
		pendingOrder: make(map[uint64]Ordered),
		log:          make(map[uint64]Ordered),
		submitCache:  make(map[string]Submit),
		cacheAt:      make(map[string]time.Duration),
		lastSeen:     make(map[wire.NodeID]time.Duration),
		peerAcked:    make(map[wire.NodeID]uint64),
	}
}

// Start begins failure detection (if enabled).
func (m *Member) Start() {
	if m.cfg.FailureDetection {
		m.scheduleFDTick()
	}
}

// Stop cancels timers and closes the delivery stream.
func (m *Member) Stop() {
	m.rt.Lock()
	m.stopped = true
	fd, sy, bt := m.fdTimer, m.syncTimer, m.batchTimer
	m.fdTimer, m.syncTimer, m.batchTimer = nil, nil, nil
	m.rt.Unlock()
	m.rt.StopTimer(fd)
	m.rt.StopTimer(sy)
	m.rt.StopTimer(bt)
	m.deliveries.Close()
}

// Deliver blocks until the next totally-ordered delivery; ok is false after
// Stop.
func (m *Member) Deliver() (Delivery, bool) {
	return m.deliveries.Get()
}

// DeliverTimeout is Deliver with a deadline; the third result reports a
// timeout.
func (m *Member) DeliverTimeout(d time.Duration) (Delivery, bool, bool) {
	return m.deliveries.GetTimeout(d)
}

// View returns the currently installed view.
func (m *Member) View() View {
	m.rt.Lock()
	defer m.rt.Unlock()
	return m.view.clone()
}

// Broadcast submits a payload for total ordering on behalf of this member.
// The id must be globally unique; duplicate ids are ordered at most once.
func (m *Member) Broadcast(id string, payload any) {
	sub := Submit{Group: m.cfg.Group, ID: id, Origin: m.cfg.Self, Payload: payload}
	var act actions
	m.rt.Lock()
	if !m.stopped {
		if st := m.cfg.Stats; st != nil {
			st.Broadcasts.Inc()
			m.noteSubmitLocked(id, m.rt.NowLocked())
		}
		m.handleSubmitLocked(sub, &act)
		m.maybeFlushBatchLocked(&act)
	}
	m.rt.Unlock()
	act.finish(m)
}

// noteSubmitLocked remembers when a self-originated id was broadcast so its
// delivery latency can be observed. The map is capped to bound memory when
// deliveries stall.
func (m *Member) noteSubmitLocked(id string, now time.Duration) {
	const maxTrackedSubmits = 1 << 13
	if m.submitAt == nil {
		m.submitAt = make(map[string]time.Duration)
	}
	if _, ok := m.submitAt[id]; ok {
		return
	}
	m.submitAt[id] = now
	m.submitAtIDs = append(m.submitAtIDs, id)
	if len(m.submitAtIDs) > maxTrackedSubmits {
		old := m.submitAtIDs[0]
		m.submitAtIDs = m.submitAtIDs[1:]
		delete(m.submitAt, old)
	}
}

// SetCheckpoint records a checkpoint taken by the layer above: data stands
// in for every ordered message up to and including seq. The member keeps
// only the latest checkpoint, answers NACKs for truncated positions with
// it, and truncates the retransmission log up to the checkpoint (bounded
// additionally by the stability watermark when failure detection is on).
func (m *Member) SetCheckpoint(seq uint64, data []byte) {
	m.rt.Lock()
	if !m.stopped && seq > m.snapSeq && len(data) > 0 {
		m.snapSeq = seq
		m.snapData = data
		m.truncateLocked()
	}
	m.rt.Unlock()
}

// HoldTruncation pins the truncation floor strictly below seq: ordered
// messages at or above seq are retained regardless of later checkpoints,
// the stability watermark, or the retention cap. Holds do not stack — a
// second call only lowers the pin — and Release resumes normal
// truncation. The shard-migration protocol holds its prepare position so
// a replica that rejoins mid-handoff recovers by snapshot (necessarily
// pre-prepare, checkpoints being suppressed during migration) plus a tail
// that still contains the prepare, the source cut and every chunk.
func (m *Member) HoldTruncation(seq uint64) {
	m.rt.Lock()
	if !m.stopped && seq > 0 && (m.holdSeq == 0 || seq < m.holdSeq) {
		m.holdSeq = seq
		if st := m.cfg.Stats; st != nil {
			st.TruncationHold.Set(int64(seq))
		}
	}
	m.rt.Unlock()
}

// ReleaseTruncation lifts the HoldTruncation pin and immediately
// re-truncates up to the normal stability floor.
func (m *Member) ReleaseTruncation() {
	m.rt.Lock()
	if !m.stopped && m.holdSeq != 0 {
		m.holdSeq = 0
		if st := m.cfg.Stats; st != nil {
			st.TruncationHold.Set(0)
		}
		m.truncateLocked()
	}
	m.rt.Unlock()
}

// LogLen returns the number of retained ordered messages (exposed for the
// bench reporter and tests; the same value feeds the Stats.LogLength gauge).
func (m *Member) LogLen() int {
	m.rt.Lock()
	defer m.rt.Unlock()
	return len(m.log)
}

// Handle processes an incoming payload, returning true if it was a group
// communication message for this member's group (consumed), false
// otherwise.
func (m *Member) Handle(from wire.NodeID, payload any) bool {
	group, isGCS := payloadGroup(payload)
	if !isGCS || group != m.cfg.Group {
		return false
	}
	now := m.rt.Now()
	var act actions
	m.rt.Lock()
	if m.stopped {
		m.rt.Unlock()
		return true
	}
	m.touchLocked(from, now)
	switch p := payload.(type) {
	case Submit:
		m.handleSubmitLocked(p, &act)
	case Ordered:
		m.noteEpochLocked(p.Epoch)
		m.handleOrderedLocked(p, &act)
	case Nack:
		m.handleNackLocked(p, &act)
	case Heartbeat:
		// touch already recorded liveness
		m.noteEpochLocked(p.Epoch)
		if p.Acked > m.peerAcked[p.From] {
			m.peerAcked[p.From] = p.Acked
			m.truncateLocked() // the stability watermark may have advanced
		}
		// Frontier check: a peer knows an ordered seq we never delivered and
		// no later traffic will open the gap for us — ask the sequencer.
		if m.installing == nil && p.Epoch == m.view.Epoch &&
			p.MaxSeq >= m.nextDeliver && m.view.Sequencer() != m.cfg.Self {
			act.send(m.view.Sequencer(), Nack{Group: m.cfg.Group, From: m.cfg.Self, Want: m.nextDeliver})
		}
	case Snapshot:
		m.handleSnapshotLocked(p, &act)
	case Hint:
		if m.cfg.HintDeliver != nil {
			act.hints = append(act.hints, p)
		}
	case Propose:
		m.noteEpochLocked(p.View.Epoch)
		m.adoptProposalLocked(p.View, &act)
	case SyncReq:
		m.noteEpochLocked(p.View.Epoch)
		m.handleSyncReqLocked(p, &act)
	case SyncResp:
		m.handleSyncRespLocked(p, &act)
	}
	m.maybeFlushBatchLocked(&act)
	m.rt.Unlock()
	act.finish(m)
	return true
}

func payloadGroup(payload any) (wire.GroupID, bool) {
	switch p := payload.(type) {
	case Submit:
		return p.Group, true
	case Ordered:
		return p.Group, true
	case Nack:
		return p.Group, true
	case Heartbeat:
		return p.Group, true
	case Propose:
		return p.Group, true
	case SyncReq:
		return p.Group, true
	case SyncResp:
		return p.Group, true
	case Snapshot:
		return p.Group, true
	case Hint:
		return p.Group, true
	}
	return "", false
}

// --- actions ---

type outMsg struct {
	to      wire.NodeID
	payload any
}

// actions accumulates sends to perform after the runtime lock is released
// (the transport schedules timers, which itself needs the lock). Deliveries
// go straight to the mailbox via PutLocked, preserving total order.
type actions struct {
	sends []outMsg
	// dups are already-ordered submits (with the position each was ordered
	// at, 0 when pruned) to surface through the DuplicateSubmit hook once
	// the lock is released.
	dups []dupSubmit
	// opts are fresh submits to surface through the OptimisticDeliver hook
	// once the lock is released.
	opts []Submit
	// hints are sequencer spontaneous-order predictions to surface through
	// the HintDeliver hook once the lock is released.
	hints []Hint
	// nacked dedups gap NACKs within one lock section (see
	// handleOrderedLocked).
	nacked bool
}

type dupSubmit struct {
	sub Submit
	seq uint64
}

func (a *actions) send(to wire.NodeID, payload any) {
	a.sends = append(a.sends, outMsg{to: to, payload: payload})
}

func (a *actions) do(send func(to wire.NodeID, payload any)) {
	for _, s := range a.sends {
		send(s.to, s.payload)
	}
}

// finish runs the post-lock tail of an event: queued sends, then the
// duplicate-submit / optimistic-delivery / hint notifications (which may
// call back into the replica layer and so must also run without the
// runtime lock held).
func (a *actions) finish(m *Member) {
	a.do(m.cfg.Send)
	if m.cfg.DuplicateSubmit != nil {
		for _, d := range a.dups {
			m.cfg.DuplicateSubmit(d.sub, d.seq)
		}
	}
	if m.cfg.OptimisticDeliver != nil {
		for _, s := range a.opts {
			m.cfg.OptimisticDeliver(s)
		}
	}
	if m.cfg.HintDeliver != nil {
		for _, h := range a.hints {
			m.cfg.HintDeliver(h)
		}
	}
}

// --- core paths ---

func (m *Member) isSequencerLocked() bool {
	if m.installing != nil || m.view.Sequencer() != m.cfg.Self {
		return false
	}
	if m.maxSeenEpoch > m.view.Epoch {
		// A higher view exists somewhere (this node was deposed while
		// unreachable, or a proposal it never saw is being installed):
		// ordering now would fork the sequence space. Submits are cached and
		// re-ordered once the newer view reaches us.
		return false
	}
	return m.quorumOKLocked(m.rt.NowLocked())
}

func (m *Member) noteEpochLocked(e uint64) {
	if e > m.maxSeenEpoch {
		m.maxSeenEpoch = e
	}
}

// quorumOKLocked reports whether this member currently hears a strict
// majority of its view (itself included). Members never heard from count as
// alive — the clock starts at the first FD tick. Always true without
// cfg.Quorum.
func (m *Member) quorumOKLocked(now time.Duration) bool {
	if !m.cfg.Quorum || !m.cfg.FailureDetection || len(m.view.Members) <= 1 {
		return true
	}
	alive := 0
	for _, peer := range m.view.Members {
		if peer == m.cfg.Self {
			alive++
			continue
		}
		seen, ok := m.lastSeen[peer]
		if !ok || now-seen <= m.cfg.SuspectAfter {
			alive++
		}
	}
	return 2*alive > len(m.view.Members)
}

func (m *Member) handleSubmitLocked(sub Submit, act *actions) {
	if m.orderedIDs[sub.ID] {
		if m.cfg.DuplicateSubmit != nil {
			act.dups = append(act.dups, dupSubmit{sub: sub, seq: m.idToSeq[sub.ID]})
		}
		// A duplicate of something already ordered — usually a client
		// retransmission because some replica never received the ordered
		// message (e.g. the final message of a burst was lost and no later
		// traffic triggered a NACK). Re-broadcast the retained log from that
		// point through the frontier: trailing messages (such as a
		// scheduler's mutex-table update ordered right after the request)
		// may be the very thing the lagging replica is missing.
		if m.isSequencerLocked() {
			if seq, ok := m.idToSeq[sub.ID]; ok {
				const batch = 64
				for s := seq; s < m.nextSeq && s < seq+batch; s++ {
					o, ok := m.log[s]
					if !ok {
						continue
					}
					for _, peer := range m.view.Members {
						if peer != m.cfg.Self {
							act.send(peer, o)
						}
					}
				}
			}
		}
		return
	}
	if m.cfg.OptimisticDeliver != nil {
		// First sight of a fresh, not-yet-ordered submit on this member:
		// surface it on the optimistic-delivery stream (once per id — later
		// retransmissions find it in the submit cache).
		if _, seen := m.submitCache[sub.ID]; !seen {
			act.opts = append(act.opts, sub)
		}
	}
	m.cacheSubmitLocked(sub)
	if m.isSequencerLocked() {
		m.sequenceSubmitLocked(sub, act)
		return
	}
	// Not the sequencer (or a view change is in progress): if this submit
	// originated here, forward it to the sequencer. Submits from clients
	// reach the sequencer directly, so those are only cached for potential
	// resubmission after a view change. A sequencer that is merely
	// suspended (quorum lost, or superseded epoch seen) must not forward to
	// itself — the cached submit is ordered once it resumes or a new view
	// arrives.
	if sub.Origin == m.cfg.Self && m.installing == nil && m.view.Sequencer() != m.cfg.Self {
		act.send(m.view.Sequencer(), sub)
	}
}

// sequenceSubmitLocked accepts a submit for ordering on the sequencer.
// With batching enabled it joins the open batch — broadcast at the end of
// the current event, when the batch fills, or when the delay timer fires —
// otherwise it is ordered immediately.
func (m *Member) sequenceSubmitLocked(sub Submit, act *actions) {
	if m.cfg.MaxBatch <= 1 {
		m.hintLocked(sub.ID, m.nextSeq, act)
		m.orderLocked(sub.ID, sub.Origin, sub.Payload, nil, act)
		return
	}
	for i := range m.batch {
		if m.batch[i].ID == sub.ID {
			return // already waiting in the open batch
		}
	}
	// Predicted position: the open batch flushes before anything else is
	// ordered in this event, so the submit takes nextSeq plus its batch
	// index. The prediction is announced before the ordering round — exact
	// in steady state, and harmlessly wrong across view changes.
	m.hintLocked(sub.ID, m.nextSeq+uint64(len(m.batch)), act)
	m.batch = append(m.batch, sub)
	m.batchAt = append(m.batchAt, m.rt.NowLocked())
	if len(m.batch) >= m.cfg.MaxBatch {
		m.flushBatchLocked(act)
	}
}

// hintLocked queues a spontaneous-order hint for broadcast to every view
// member (the sequencer's own HintDeliver fires via the local actions
// tail). No-op unless Config.SpecHints is set.
func (m *Member) hintLocked(id string, seq uint64, act *actions) {
	if !m.cfg.SpecHints || id == "" {
		return
	}
	h := Hint{Group: m.cfg.Group, ID: id, Seq: seq}
	for _, peer := range m.view.Members {
		if peer != m.cfg.Self {
			act.send(peer, h)
		}
	}
	if m.cfg.HintDeliver != nil {
		act.hints = append(act.hints, h)
	}
}

// maybeFlushBatchLocked closes the open batch at the end of a lock section
// (immediate mode) or arms the delay timer. Every public entry point that
// can grow the batch calls it before releasing the runtime lock, so in
// immediate mode (MaxBatchDelay 0) a batch never outlives the event that
// opened it and a lone submit is broadcast exactly as without batching.
func (m *Member) maybeFlushBatchLocked(act *actions) {
	if len(m.batch) == 0 {
		return
	}
	if m.cfg.MaxBatchDelay <= 0 {
		m.flushBatchLocked(act)
		return
	}
	if m.batchTimer == nil {
		m.batchTimer = m.rt.AfterLocked(m.cfg.MaxBatchDelay, "gcs-batch/"+string(m.cfg.Self), m.batchTick)
	}
}

func (m *Member) batchTick() {
	var act actions
	m.rt.Lock()
	if !m.stopped {
		m.batchTimer = nil
		m.flushBatchLocked(&act)
	}
	m.rt.Unlock()
	act.finish(m)
}

// flushBatchLocked broadcasts the open batch as one ordering round:
// a single Ordered carrying len(batch) submits, Batch[i] taking sequence
// number Seq+i. Submits ordered since they were batched (by a view change
// or resubmit race) are filtered out; if the member lost the sequencer role
// while the batch was open the whole batch is dropped — every submit
// survives in submitCache and the view-change/resubmit paths re-send them.
func (m *Member) flushBatchLocked(act *actions) {
	if t := m.batchTimer; t != nil {
		m.batchTimer = nil
		m.rt.StopTimerLocked(t)
	}
	batch := m.batch
	batchAt := m.batchAt
	m.batch, m.batchAt = nil, nil
	if len(batch) == 0 {
		return
	}
	if !m.isSequencerLocked() {
		return
	}
	if m.cfg.Spans != nil {
		// Batch residency: how long each traced submit sat in the open
		// batch before this ordering round broadcast it.
		now := m.rt.NowLocked()
		for i, sub := range batch {
			if m.orderedIDs[sub.ID] || i >= len(batchAt) {
				continue
			}
			if ctx := sub.TraceCtx(); ctx.Valid() {
				m.cfg.Spans.Record(tracing.Span{
					Trace:  ctx.TraceID,
					ID:     tracing.NewSpanID(ctx.TraceID, "seq.batch", string(m.cfg.Self), batchAt[i]),
					Parent: ctx.Span,
					Name:   "seq.batch",
					Node:   string(m.cfg.Self),
					Shard:  m.cfg.Shard,
					Start:  batchAt[i],
					Dur:    now - batchAt[i],
				})
			}
		}
	}
	subs := batch[:0]
	for _, sub := range batch {
		if !m.orderedIDs[sub.ID] {
			subs = append(subs, sub)
		}
	}
	if len(subs) == 0 {
		return
	}
	if len(subs) == 1 {
		m.orderLocked(subs[0].ID, subs[0].Origin, subs[0].Payload, nil, act)
		return
	}
	o := Ordered{
		Group:  m.cfg.Group,
		Epoch:  m.view.Epoch,
		Seq:    m.nextSeq,
		Origin: m.cfg.Self,
		Batch:  subs,
	}
	m.nextSeq += uint64(len(subs))
	for i, sub := range subs {
		m.markOrderedIDLocked(sub.ID)
		m.idToSeq[sub.ID] = o.Seq + uint64(i)
	}
	if st := m.cfg.Stats; st != nil {
		st.Batches.Inc()
		st.BatchedSubmits.Add(uint64(len(subs)))
	}
	for _, peer := range m.view.Members {
		if peer != m.cfg.Self {
			act.send(peer, o)
		}
	}
	m.handleOrderedLocked(o, act)
}

// orderLocked assigns the next sequence number and broadcasts. Only the
// sequencer calls it.
func (m *Member) orderLocked(id string, origin wire.NodeID, payload any, view *View, act *actions) {
	if id != "" && m.orderedIDs[id] {
		return
	}
	o := Ordered{
		Group:   m.cfg.Group,
		Epoch:   m.view.Epoch,
		Seq:     m.nextSeq,
		ID:      id,
		Origin:  origin,
		Payload: payload,
		View:    view,
	}
	m.nextSeq++
	m.markOrderedIDLocked(id)
	if id != "" {
		m.idToSeq[id] = o.Seq
	}
	for _, peer := range m.view.Members {
		if peer != m.cfg.Self {
			act.send(peer, o)
		}
	}
	m.handleOrderedLocked(o, act)
}

func (m *Member) handleOrderedLocked(o Ordered, act *actions) {
	if len(o.Batch) > 0 {
		// A batched round: unpack into single messages immediately so the
		// retransmission log, NACK recovery and view sync never see the
		// batch form.
		for i, sub := range o.Batch {
			m.handleOrderedLocked(Ordered{
				Group:   o.Group,
				Epoch:   o.Epoch,
				Seq:     o.Seq + uint64(i),
				ID:      sub.ID,
				Origin:  sub.Origin,
				Payload: sub.Payload,
			}, act)
		}
		return
	}
	if o.Seq < m.nextDeliver {
		return // duplicate
	}
	m.pendingOrder[o.Seq] = o
	m.retainLocked(o)
	if m.nextSeq <= o.Seq {
		m.nextSeq = o.Seq + 1 // keep the shared sequence space monotone
	}
	for {
		next, ok := m.pendingOrder[m.nextDeliver]
		if !ok {
			break
		}
		delete(m.pendingOrder, m.nextDeliver)
		m.nextDeliver++
		m.deliverLocked(next, act)
	}
	if len(m.pendingOrder) > 0 && !act.nacked {
		// One NACK per lock section: unpacking a batch that lands above the
		// delivery frontier would otherwise request the same gap once per
		// element.
		act.nacked = true
		act.send(m.view.Sequencer(), Nack{Group: m.cfg.Group, From: m.cfg.Self, Want: m.nextDeliver})
	}
}

func (m *Member) deliverLocked(o Ordered, act *actions) {
	if st := m.cfg.Stats; st != nil {
		st.Delivered.Inc()
		if o.Origin == m.cfg.Self && o.ID != "" {
			if t0, ok := m.submitAt[o.ID]; ok {
				delete(m.submitAt, o.ID)
				st.DeliverLatency.Observe((m.rt.NowLocked() - t0).Seconds())
			}
		}
	}
	if m.cfg.Spans != nil && o.Payload != nil {
		// Ordering span: from this member first seeing the submit (cached
		// on its way to the sequencer) to total-order delivery here.
		if t, ok := o.Payload.(tracing.Traced); ok {
			if ctx := t.TraceCtx(); ctx.Valid() {
				now := m.rt.NowLocked()
				start := now
				if t0, ok := m.cacheAt[o.ID]; ok {
					start = t0
				}
				m.cfg.Spans.Record(tracing.Span{
					Trace:  ctx.TraceID,
					ID:     tracing.NewSpanID(ctx.TraceID, "order", string(m.cfg.Self), start),
					Parent: ctx.Span,
					Name:   "order",
					Node:   string(m.cfg.Self),
					Shard:  m.cfg.Shard,
					Seq:    o.Seq,
					Start:  start,
					Dur:    now - start,
				})
			}
		}
	}
	m.markOrderedIDLocked(o.ID)
	if o.ID != "" {
		m.idToSeq[o.ID] = o.Seq
	}
	delete(m.submitCache, o.ID)
	delete(m.cacheAt, o.ID)
	if o.View == nil && o.Payload == nil {
		return // gap filler ordered by a recovering sequencer
	}
	d := Delivery{Seq: o.Seq, ID: o.ID, Origin: o.Origin, Payload: o.Payload}
	if o.View != nil {
		v := o.View.clone()
		d.NewView = &v
		// Enqueue before installing: if this member is the new sequencer,
		// installViewLocked re-orders its cached submits, which delivers
		// them recursively — the view event must precede them in the stream.
		m.deliveries.PutLocked(d)
		m.installViewLocked(v, act)
		return
	}
	m.deliveries.PutLocked(d)
}

func (m *Member) installViewLocked(v View, act *actions) {
	if v.Epoch <= m.view.Epoch {
		return // stale re-announcement from a tail rebroadcast
	}
	if st := m.cfg.Stats; st != nil {
		st.ViewChanges.Inc()
	}
	m.view = v.clone()
	if m.installing != nil && m.installing.Epoch <= v.Epoch {
		m.installing = nil
	}
	m.syncResps = nil
	if t := m.syncTimer; t != nil {
		m.syncTimer = nil
		m.rt.StopTimerLocked(t)
	}
	// The view may have shrunk: the stability watermark no longer waits on
	// departed members, so retained entries may become truncatable.
	m.truncateLocked()
	// Resubmit cached submits so nothing that only the crashed sequencer
	// saw is lost. The new sequencer deduplicates by id.
	if m.view.Sequencer() == m.cfg.Self {
		for _, id := range append([]string(nil), m.cacheOrder...) {
			if sub, ok := m.submitCache[id]; ok {
				m.orderLocked(sub.ID, sub.Origin, sub.Payload, nil, act)
			}
		}
		return
	}
	for _, id := range m.cacheOrder {
		if sub, ok := m.submitCache[id]; ok {
			act.send(m.view.Sequencer(), sub)
		}
	}
}

func (m *Member) handleNackLocked(n Nack, act *actions) {
	if st := m.cfg.Stats; st != nil {
		st.Nacks.Inc()
	}
	start := n.Want
	if n.Want <= m.logFloor && m.snapData != nil {
		// The requested tail has been truncated: bring the peer forward
		// with the latest checkpoint, then resend what is retained above it.
		act.send(n.From, Snapshot{Group: m.cfg.Group, Seq: m.snapSeq, Data: m.snapData})
		if st := m.cfg.Stats; st != nil {
			st.SnapshotsSent.Inc()
		}
		start = m.snapSeq + 1
	}
	// Resend whatever is retained from start upward (bounded batch).
	const batch = 256
	sent := 0
	for seq := start; seq < m.nextSeq && sent < batch; seq++ {
		if o, ok := m.log[seq]; ok {
			act.send(n.From, o)
			sent++
		}
	}
}

// handleSnapshotLocked installs a checkpoint received in place of a
// truncated tail: it stands in for every ordered message up to and
// including p.Seq, so pending messages at or below it are dropped and
// delivery resumes at p.Seq+1. A snapshot behind the delivery frontier is
// stale and ignored — everything it covers was already delivered here.
func (m *Member) handleSnapshotLocked(p Snapshot, act *actions) {
	if p.Seq < m.nextDeliver || len(p.Data) == 0 {
		return
	}
	if st := m.cfg.Stats; st != nil {
		st.SnapshotsInstalled.Inc()
	}
	for seq := range m.pendingOrder {
		if seq <= p.Seq {
			delete(m.pendingOrder, seq)
		}
	}
	if m.nextSeq <= p.Seq {
		m.nextSeq = p.Seq + 1
	}
	m.deliveries.PutLocked(Delivery{Seq: p.Seq, Snapshot: p.Data})
	m.nextDeliver = p.Seq + 1
	// Adopt the checkpoint as our own so we can serve it onward and
	// truncate the (now irrelevant) retained prefix.
	if p.Seq > m.snapSeq {
		m.snapSeq = p.Seq
		m.snapData = p.Data
		m.truncateLocked()
	}
	for {
		next, ok := m.pendingOrder[m.nextDeliver]
		if !ok {
			break
		}
		delete(m.pendingOrder, m.nextDeliver)
		m.nextDeliver++
		m.deliverLocked(next, act)
	}
}

// --- bookkeeping ---

const maxTrackedIDs = 1 << 14

func (m *Member) markOrderedIDLocked(id string) {
	if id == "" || m.orderedIDs[id] {
		return
	}
	m.orderedIDs[id] = true
	m.idOrder = append(m.idOrder, id)
	if len(m.idOrder) > maxTrackedIDs {
		old := m.idOrder[0]
		m.idOrder = m.idOrder[1:]
		delete(m.orderedIDs, old)
		delete(m.idToSeq, old)
	}
}

func (m *Member) cacheSubmitLocked(sub Submit) {
	if _, ok := m.submitCache[sub.ID]; ok {
		return
	}
	m.submitCache[sub.ID] = sub
	m.cacheAt[sub.ID] = m.rt.NowLocked()
	m.cacheOrder = append(m.cacheOrder, sub.ID)
	if len(m.cacheOrder) > maxTrackedIDs {
		old := m.cacheOrder[0]
		m.cacheOrder = m.cacheOrder[1:]
		delete(m.submitCache, old)
		delete(m.cacheAt, old)
	}
}

func (m *Member) retainLocked(o Ordered) {
	m.log[o.Seq] = o
	defer func() {
		if st := m.cfg.Stats; st != nil {
			st.LogLength.Set(int64(len(m.log)))
		}
	}()
	if len(m.log) <= 2*m.cfg.LogRetain {
		return
	}
	// Rebuild, keeping a window below the delivery frontier plus everything
	// not yet delivered — and never evicting a held migration tail.
	floor := uint64(0)
	if m.nextDeliver > uint64(m.cfg.LogRetain) {
		floor = m.nextDeliver - uint64(m.cfg.LogRetain)
	}
	if m.holdSeq != 0 && floor > m.holdSeq {
		floor = m.holdSeq
	}
	for seq := range m.log {
		if seq < floor {
			delete(m.log, seq)
		}
	}
}

// truncateLocked drops retained log entries at or below the stability
// floor. With failure detection the floor is min(checkpoint, watermark),
// where the watermark is the lowest delivery frontier across the current
// view (self included; peers report theirs via heartbeat Acked, a peer
// never heard from holds it at 0) — so no entry a live view member might
// still NACK is dropped. Without failure detection there are no acks and
// the checkpoint alone bounds the log: NACKs below the floor are answered
// with the snapshot instead of the dropped entries.
func (m *Member) truncateLocked() {
	if m.snapSeq == 0 {
		return
	}
	floor := m.snapSeq
	if m.cfg.FailureDetection {
		if w := m.watermarkLocked(); w < floor {
			floor = w
		}
	}
	if m.holdSeq != 0 && floor >= m.holdSeq {
		floor = m.holdSeq - 1
		if st := m.cfg.Stats; st != nil {
			st.TruncationHeld.Inc()
		}
	}
	if floor <= m.logFloor {
		return
	}
	removed := uint64(0)
	for seq := range m.log {
		if seq <= floor {
			delete(m.log, seq)
			removed++
		}
	}
	m.logFloor = floor
	if st := m.cfg.Stats; st != nil {
		st.Truncated.Add(removed)
		st.LogLength.Set(int64(len(m.log)))
	}
}

// watermarkLocked returns the lowest delivery frontier across the current
// view: every member has delivered (and acked) everything at or below it.
func (m *Member) watermarkLocked() uint64 {
	w := m.nextDeliver - 1
	for _, peer := range m.view.Members {
		if peer == m.cfg.Self {
			continue
		}
		if a := m.peerAcked[peer]; a < w {
			w = a
		}
	}
	return w
}

func (m *Member) touchLocked(from wire.NodeID, now time.Duration) {
	m.lastSeen[from] = now
}
