package gcs

import (
	"sort"

	"github.com/replobj/replobj/internal/wire"
)

// This file implements failure detection and view changes: suspicion,
// proposal, tail synchronization by the new sequencer, and the in-stream
// view-change announcement.

func (m *Member) scheduleFDTick() {
	m.rt.Lock()
	if m.stopped {
		m.rt.Unlock()
		return
	}
	m.fdTimer = m.rt.AfterLocked(m.cfg.HeartbeatEvery, "gcs-fd/"+string(m.cfg.Self), m.fdTick)
	m.rt.Unlock()
}

func (m *Member) fdTick() {
	now := m.rt.Now()
	var act actions
	m.rt.Lock()
	if m.stopped {
		m.rt.Unlock()
		return
	}
	hb := Heartbeat{
		Group:  m.cfg.Group,
		From:   m.cfg.Self,
		Epoch:  m.view.Epoch,
		MaxSeq: m.nextSeq - 1,
		Acked:  m.nextDeliver - 1,
	}
	for _, peer := range m.view.Members {
		if peer != m.cfg.Self {
			act.send(peer, hb)
			if st := m.cfg.Stats; st != nil {
				st.Heartbeats.Inc()
			}
		}
	}
	// Suspect silent members of the current view.
	suspects := make(map[wire.NodeID]bool)
	for _, peer := range m.view.Members {
		if peer == m.cfg.Self {
			continue
		}
		seen, ok := m.lastSeen[peer]
		if !ok {
			m.lastSeen[peer] = now // never heard from it: start the clock
			continue
		}
		if now-seen > m.cfg.SuspectAfter {
			suspects[peer] = true
		}
	}
	if st := m.cfg.Stats; st != nil {
		st.Suspicions.Add(uint64(len(suspects)))
	}
	// Desired membership: the current view minus suspects, plus initial
	// members outside the view that have been heard again recently (a
	// crash-restarted or healed node) — the latter re-added at their
	// original rank, proposed only by the sequencer to avoid proposal
	// storms.
	isSeq := m.installing == nil && m.view.Sequencer() == m.cfg.Self
	rejoin := false
	excluded := make(map[wire.NodeID]bool)
	for _, peer := range m.cfg.Members {
		if peer == m.cfg.Self {
			continue
		}
		if m.view.Contains(peer) {
			if suspects[peer] {
				excluded[peer] = true
			}
			continue
		}
		seen, ok := m.lastSeen[peer]
		if isSeq && ok && now-seen <= m.cfg.SuspectAfter {
			rejoin = true
		} else {
			excluded[peer] = true
		}
	}
	if (len(suspects) > 0 || rejoin) && m.installing == nil && m.view.Contains(m.cfg.Self) {
		members := rankSubset(m.cfg.Members, excluded)
		if len(members) > 0 && (!m.cfg.Quorum || 2*len(members) > len(m.view.Members)) {
			next := View{Epoch: m.view.Epoch + 1, Members: members}
			prop := Propose{Group: m.cfg.Group, From: m.cfg.Self, View: next}
			for _, peer := range members {
				if peer != m.cfg.Self {
					act.send(peer, prop)
				}
			}
			m.adoptProposalLocked(next, &act)
		}
	}
	// Re-send cached submits that have sat unordered for too long: either
	// the submit never reached the sequencer or its Ordered never came
	// back. The sequencer deduplicates by id, so resends are harmless; a
	// suspended sequencer orders its own backlog here once it resumes.
	if m.installing == nil {
		for _, id := range m.cacheOrder {
			sub, ok := m.submitCache[id]
			if !ok || m.orderedIDs[id] {
				continue
			}
			at, ok := m.cacheAt[id]
			if !ok || now-at < m.cfg.ResubmitAfter {
				continue
			}
			m.cacheAt[id] = now // refresh: one resend per ResubmitAfter
			if m.isSequencerLocked() {
				// A resubmit burst (e.g. a resumed sequencer ordering its
				// backlog) is the batching sweet spot: one round for the lot.
				m.sequenceSubmitLocked(sub, &act)
			} else if m.view.Sequencer() != m.cfg.Self {
				act.send(m.view.Sequencer(), sub)
			}
		}
	}
	m.maybeFlushBatchLocked(&act)
	m.rt.Unlock()
	act.do(m.cfg.Send)
	m.scheduleFDTick()
}

// adoptProposalLocked moves the member into the "installing" state for a
// higher-epoch view. If this member is the proposed sequencer it starts the
// tail synchronization round.
func (m *Member) adoptProposalLocked(v View, act *actions) {
	cur := m.view.Epoch
	if m.installing != nil && m.installing.Epoch > cur {
		cur = m.installing.Epoch
	}
	if v.Epoch <= cur {
		return
	}
	vv := v.clone()
	m.installing = &vv
	m.syncResps = make(map[wire.NodeID]SyncResp)
	if t := m.syncTimer; t != nil {
		// Back-to-back proposals: a grace timer armed for the abandoned
		// epoch must not fire against this install (it would clear the new
		// installing state or finish a sync round that no longer exists).
		m.syncTimer = nil
		m.rt.StopTimerLocked(t)
	}
	if vv.Sequencer() != m.cfg.Self {
		// The proposed sequencer may die before committing the view event,
		// which would otherwise leave this member in the installing state
		// forever (fdTick proposes nothing while installing). Abandon the
		// install once the proposer has had ample time (its own sync grace
		// plus delivery slack) so suspicion and re-proposal can resume.
		epoch := vv.Epoch
		m.syncTimer = m.rt.AfterLocked(2*m.cfg.SyncGrace, "gcs-installgrace/"+string(m.cfg.Self), func() {
			m.rt.Lock()
			if !m.stopped && m.installing != nil && m.installing.Epoch == epoch &&
				m.installing.Sequencer() != m.cfg.Self {
				m.installing = nil
				m.syncResps = nil
				m.syncTimer = nil
			}
			m.rt.Unlock()
		})
		return
	}
	// New sequencer: collect tails from every proposed member.
	req := SyncReq{Group: m.cfg.Group, From: m.cfg.Self, View: vv}
	for _, peer := range vv.Members {
		if peer != m.cfg.Self {
			act.send(peer, req)
		}
	}
	m.syncResps[m.cfg.Self] = m.tailLocked(vv.Epoch)
	epoch := vv.Epoch
	m.syncTimer = m.rt.AfterLocked(m.cfg.SyncGrace, "gcs-syncgrace/"+string(m.cfg.Self), func() {
		var act2 actions
		m.rt.Lock()
		if !m.stopped && m.installing != nil && m.installing.Epoch == epoch &&
			m.installing.Sequencer() == m.cfg.Self {
			m.finishSyncLocked(&act2)
		}
		m.rt.Unlock()
		act2.do(m.cfg.Send)
	})
	m.maybeFinishSyncLocked(act)
}

func (m *Member) handleSyncReqLocked(req SyncReq, act *actions) {
	m.adoptProposalLocked(req.View, act)
	if req.View.Epoch <= m.view.Epoch {
		return // already installed; the requester has moved on too
	}
	act.send(req.From, m.tailLocked(req.View.Epoch))
}

func (m *Member) handleSyncRespLocked(resp SyncResp, act *actions) {
	if m.installing == nil || resp.Epoch != m.installing.Epoch ||
		m.installing.Sequencer() != m.cfg.Self {
		return
	}
	m.syncResps[resp.From] = resp
	m.maybeFinishSyncLocked(act)
}

func (m *Member) maybeFinishSyncLocked(act *actions) {
	if m.installing == nil || m.installing.Sequencer() != m.cfg.Self {
		return
	}
	for _, peer := range m.installing.Members {
		if _, ok := m.syncResps[peer]; !ok {
			return
		}
	}
	m.finishSyncLocked(act)
}

// finishSyncLocked is run by the new sequencer once all live members
// answered (or the grace period expired). It merges tails, rebroadcasts the
// union so every member can close gaps, fills irrecoverably lost sequence
// numbers with no-ops, announces the view in-stream, and re-orders cached
// submits.
func (m *Member) finishSyncLocked(act *actions) {
	v := m.installing.clone()
	merged := make(map[uint64]Ordered, len(m.log))
	for seq, o := range m.log {
		merged[seq] = o
	}
	minDelivered := m.nextDeliver - 1
	maxSeq := m.nextSeq - 1
	pending := make(map[string]Submit)
	for _, resp := range m.syncResps {
		if resp.Delivered < minDelivered {
			minDelivered = resp.Delivered
		}
		if resp.Delivered > maxSeq {
			maxSeq = resp.Delivered
		}
		for _, o := range resp.Tail {
			if o.Seq > maxSeq {
				maxSeq = o.Seq
			}
			if _, ok := merged[o.Seq]; !ok {
				merged[o.Seq] = o
			}
		}
		for _, sub := range resp.Pending {
			pending[sub.ID] = sub
		}
	}
	for seq := range merged {
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	for _, o := range merged {
		m.markOrderedIDLocked(o.ID)
	}
	// Best checkpoint across the responses. When a member's frontier sits
	// below it, the stretch in between may have been truncated everywhere —
	// bring such members forward via state transfer instead of no-op
	// fillers, which would silently skip real requests.
	var bestSnapSeq uint64
	var bestSnap []byte
	for _, resp := range m.syncResps {
		if resp.SnapSeq > bestSnapSeq && len(resp.Snap) > 0 {
			bestSnapSeq = resp.SnapSeq
			bestSnap = resp.Snap
		}
	}
	start := minDelivered + 1
	if bestSnapSeq > minDelivered {
		snap := Snapshot{Group: m.cfg.Group, Seq: bestSnapSeq, Data: bestSnap}
		for _, resp := range m.syncResps {
			if resp.From != m.cfg.Self && resp.Delivered < bestSnapSeq {
				act.send(resp.From, snap)
				if st := m.cfg.Stats; st != nil {
					st.SnapshotsSent.Inc()
				}
			}
		}
		m.handleSnapshotLocked(snap, act) // no-op unless self is behind too
		if bestSnapSeq > m.snapSeq {
			m.snapSeq = bestSnapSeq
			m.snapData = bestSnap
		}
		start = bestSnapSeq + 1
	}
	// Rebroadcast the tail above the lowest delivery frontier (or the
	// checkpoint) so every member can fill its gaps; sequence numbers nobody
	// retains are filled with no-ops so the delivery frontier can pass them
	// (their submits are re-ordered below or retransmitted by clients).
	for seq := start; seq <= maxSeq; seq++ {
		o, ok := merged[seq]
		if !ok {
			o = Ordered{Group: m.cfg.Group, Epoch: v.Epoch, Seq: seq, Origin: m.cfg.Self}
		}
		for _, peer := range v.Members {
			if peer != m.cfg.Self {
				act.send(peer, o)
			}
		}
		m.handleOrderedLocked(o, act)
	}
	// Become the sequencer of the new view: continue the shared numbering.
	if m.nextSeq <= maxSeq {
		m.nextSeq = maxSeq + 1
	}
	m.installing = nil
	prevEpoch := m.view.Epoch
	m.view = v.clone()
	m.view.Epoch = prevEpoch // authoritative bump happens at delivery
	m.orderLocked(viewEventID(v), m.cfg.Self, nil, &v, act)
	// Re-order surviving submits in a deterministic order.
	for id, sub := range m.submitCache {
		pending[id] = sub
	}
	ids := make([]string, 0, len(pending))
	for id := range pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sub := pending[id]
		if !m.orderedIDs[sub.ID] {
			m.orderLocked(sub.ID, sub.Origin, sub.Payload, nil, act)
		}
	}
}

// tailLocked snapshots this member's retained state for the new sequencer.
func (m *Member) tailLocked(epoch uint64) SyncResp {
	tail := make([]Ordered, 0, len(m.log))
	for _, o := range m.log {
		tail = append(tail, o)
	}
	pend := make([]Submit, 0, len(m.submitCache))
	for _, id := range m.cacheOrder {
		if sub, ok := m.submitCache[id]; ok {
			pend = append(pend, sub)
		}
	}
	return SyncResp{
		Group:     m.cfg.Group,
		From:      m.cfg.Self,
		Epoch:     epoch,
		Delivered: m.nextDeliver - 1,
		Tail:      tail,
		Pending:   pend,
		SnapSeq:   m.snapSeq,
		Snap:      m.snapData,
	}
}

func viewEventID(v View) string {
	return "viewevent/" + string(v.Sequencer()) + "/" + itoa(v.Epoch)
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
