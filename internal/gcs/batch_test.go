package gcs

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/obs"
	"github.com/replobj/replobj/internal/wire"
)

// TestBatchingDeliversSameOrder drives a submit burst through a sequencer
// with batching enabled and checks that (a) every member still delivers the
// identical total order, and (b) at least one multi-submit round actually
// crossed the wire — the burst arrives well inside MaxBatchDelay, so the
// sequencer must coalesce.
func TestBatchingDeliversSameOrder(t *testing.T) {
	reg := obs.NewRegistry()
	var seqStats *Stats
	h := newHarnessCfg(3, false, func(c *Config) {
		c.MaxBatch = 8
		c.MaxBatchDelay = time.Millisecond
		if c.Self == wire.ReplicaID("g", 0) {
			seqStats = NewStats(reg, string(c.Self))
			c.Stats = seqStats
		}
	})
	h.run(func() {
		cl1 := h.net.Endpoint(wire.ClientID("c1"))
		cl2 := h.net.Endpoint(wire.ClientID("c2"))
		defer cl1.Close()
		defer cl2.Close()
		const n = 20
		for i := 0; i < n; i++ {
			h.submitFromClient(cl1, fmt.Sprintf("a%02d", i), "a")
			h.submitFromClient(cl2, fmt.Sprintf("b%02d", i), "b")
		}
		ref := ids(take(t, h.rt, h.members[0], 2*n))
		for i := 1; i < 3; i++ {
			got := ids(take(t, h.rt, h.members[i], 2*n))
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("member %d order differs:\n  m0: %v\n  m%d: %v", i, ref, i, got)
			}
		}
		if seqStats.Batches.Value() == 0 {
			t.Error("sequencer formed no multi-submit batches under a concurrent burst")
		}
		if got := seqStats.BatchedSubmits.Value(); got < 2 {
			t.Errorf("BatchedSubmits = %d, want >= 2", got)
		}
	})
}

// TestBatchDelayZeroKeepsSingleRounds checks the default configuration's
// latency guarantee: with MaxBatchDelay 0, a submit that arrives alone is
// ordered in the same event that received it, as a single-form Ordered —
// identical wire traffic to the unbatched protocol.
func TestBatchDelayZeroKeepsSingleRounds(t *testing.T) {
	reg := obs.NewRegistry()
	var seqStats *Stats
	h := newHarnessCfg(3, false, func(c *Config) {
		if c.Self == wire.ReplicaID("g", 0) {
			seqStats = NewStats(reg, string(c.Self))
			c.Stats = seqStats
		}
	})
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		const n = 10
		for i := 0; i < n; i++ {
			h.submitFromClient(cl, fmt.Sprintf("m%02d", i), "x")
		}
		got := ids(take(t, h.rt, h.members[2], n))
		if len(got) != n {
			t.Fatalf("delivered %d messages, want %d", len(got), n)
		}
		if b := seqStats.Batches.Value(); b != 0 {
			t.Errorf("Batches = %d with MaxBatchDelay=0 and serial submits, want 0", b)
		}
	})
}

// TestBatchedRoundSurvivesNack loses a batched round on its way to one
// member and checks that NACK recovery — which resends retained single-form
// messages — closes the gap.
func TestBatchedRoundSurvivesNack(t *testing.T) {
	h := newHarnessCfg(3, false, func(c *Config) {
		c.MaxBatch = 8
		c.MaxBatchDelay = time.Millisecond
	})
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		const n = 6
		for i := 0; i < n; i++ {
			h.submitFromClient(cl, fmt.Sprintf("m%02d", i), "x")
		}
		// All members deliver the burst.
		for i := range h.members {
			if got := ids(take(t, h.rt, h.members[i], n)); len(got) != n {
				t.Fatalf("member %d delivered %d, want %d", i, len(got), n)
			}
		}
		// A straggler that never saw the batch asks for the whole range; the
		// sequencer's retained log must cover every sequence number the batch
		// occupied.
		var act actions
		m0 := h.members[0]
		h.rt.Lock()
		m0.handleNackLocked(Nack{Group: h.group, From: h.ids[2], Want: 1}, &act)
		covered := uint64(0)
		for _, s := range act.sends {
			if o, ok := s.payload.(Ordered); ok && len(o.Batch) == 0 && o.ID != "" {
				covered++
			}
		}
		h.rt.Unlock()
		if covered < n {
			t.Errorf("NACK resend covered %d single-form messages, want >= %d", covered, n)
		}
	})
}
