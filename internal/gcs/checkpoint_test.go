package gcs

import (
	"fmt"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/wire"
)

// TestSetCheckpointTruncatesWithoutFD: without failure detection there are
// no acks, so the checkpoint alone bounds the retained log.
func TestSetCheckpointTruncatesWithoutFD(t *testing.T) {
	h := newHarness(3, false)
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		const n = 12
		for i := 0; i < n; i++ {
			h.submitFromClient(cl, fmt.Sprintf("m%02d", i), "x")
		}
		take(t, h.rt, h.members[0], n)
		if got := h.members[0].LogLen(); got < n {
			t.Fatalf("pre-checkpoint log length = %d, want >= %d", got, n)
		}
		h.members[0].SetCheckpoint(10, []byte("snapimage"))
		if got := h.members[0].LogLen(); got != 2 {
			t.Errorf("post-checkpoint log length = %d, want 2 (seqs 11, 12)", got)
		}
	})
}

// TestNackBelowFloorServesSnapshot: a member whose NACK asks for a
// truncated position is brought forward with the checkpoint image and the
// retained tail above it.
func TestNackBelowFloorServesSnapshot(t *testing.T) {
	h := newHarness(3, false)
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		seqr, victim := h.ids[0], h.ids[2]
		h.net.SetDropRule(func(from, to wire.NodeID) bool {
			return from == seqr && to == victim
		})
		const n = 10
		for i := 0; i < n; i++ {
			h.submitFromClient(cl, fmt.Sprintf("m%02d", i), "x")
		}
		take(t, h.rt, h.members[0], n)
		h.members[0].SetCheckpoint(8, []byte("snapimage"))
		h.net.SetDropRule(nil)
		// The next ordered message opens a gap at the victim; its NACK for
		// seq 1 is below the sequencer's log floor.
		h.submitFromClient(cl, "trigger", "x")

		d, ok, timedOut := h.members[2].DeliverTimeout(5 * time.Second)
		if !ok || timedOut {
			t.Fatal("victim got no delivery")
		}
		if d.Snapshot == nil || d.Seq != 8 || string(d.Snapshot) != "snapimage" {
			t.Fatalf("first victim delivery = %+v, want snapshot at seq 8", d)
		}
		rest := take(t, h.rt, h.members[2], 3)
		for i, want := range []uint64{9, 10, 11} {
			if rest[i].Seq != want {
				t.Errorf("delivery %d seq = %d, want %d", i, rest[i].Seq, want)
			}
		}
	})
}

// TestBackToBackProposalsDropStaleSyncState: when a second view proposal
// supersedes an unfinished sync round, responses collected for the
// abandoned epoch must not leak into the new round (and the old grace
// timer must not fire against it).
func TestBackToBackProposalsDropStaleSyncState(t *testing.T) {
	h := newHarness(3, false)
	h.run(func() {
		m := h.members[0]
		var act actions
		h.rt.Lock()
		v1 := View{Epoch: 1, Members: h.ids}
		m.adoptProposalLocked(v1, &act)
		m.handleSyncRespLocked(SyncResp{Group: h.group, From: h.ids[1], Epoch: 1, Delivered: 0}, &act)
		if len(m.syncResps) != 2 { // own tail + member 1's response
			t.Fatalf("epoch-1 syncResps = %d, want 2", len(m.syncResps))
		}
		v2 := View{Epoch: 2, Members: h.ids}
		m.adoptProposalLocked(v2, &act)
		if len(m.syncResps) != 1 {
			t.Errorf("after superseding proposal syncResps = %d, want 1 (only the fresh own tail)", len(m.syncResps))
		}
		for from, resp := range m.syncResps {
			if resp.Epoch != 2 {
				t.Errorf("stale epoch-%d response from %s leaked into the epoch-2 round", resp.Epoch, from)
			}
		}
		if m.installing == nil || m.installing.Epoch != 2 {
			t.Errorf("installing = %v, want epoch-2 view", m.installing)
		}
		h.rt.Unlock()
	})
}

// TestWatermarkHoldsUntilViewChange: a live member that never acks (its
// outbound traffic is lost) pins the stability watermark, so nothing is
// truncated past it — until a view change removes it from the membership
// and the watermark no longer waits on it.
func TestWatermarkHoldsUntilViewChange(t *testing.T) {
	h := newHarness(3, true)
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		victim := h.ids[2]
		h.net.SetDropRule(func(from, to wire.NodeID) bool {
			return from == victim
		})
		const n = 10
		for i := 0; i < n; i++ {
			h.submitFromClient(cl, fmt.Sprintf("m%02d", i), "x")
		}
		take(t, h.rt, h.members[0], n)
		take(t, h.rt, h.members[1], n)
		h.rt.Sleep(50 * time.Millisecond) // acked frontiers propagate
		h.members[0].SetCheckpoint(8, []byte("snapimage"))
		if got := h.members[0].LogLen(); got < n {
			t.Errorf("log truncated past a silent view member: length = %d, want >= %d", got, n)
		}
		// After suspicion the view shrinks to {0, 1}; the install truncates.
		h.rt.Sleep(500 * time.Millisecond)
		if v := h.members[0].View(); len(v.Members) != 2 {
			t.Fatalf("victim not excluded: %v", v)
		}
		if got := h.members[0].LogLen(); got > 4 {
			t.Errorf("log length after view change = %d, want <= 4 (truncated to the checkpoint)", got)
		}
	})
}
