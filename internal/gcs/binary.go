package gcs

import (
	"fmt"

	"github.com/replobj/replobj/internal/wire"
)

// Binary wire-codec fast paths for the gcs protocol messages — the hottest
// payloads on the wire (every invocation crosses the network as a Submit
// and again inside an Ordered, and heartbeats tick constantly). Tags live
// in the 10–19 range assigned to this package (see internal/wire/binary.go
// for the format and the canonical-encoding rules the decoders enforce).

const (
	tagSubmit    = 10
	tagOrdered   = 11
	tagNack      = 12
	tagHeartbeat = 13
	tagPropose   = 14
	tagSyncReq   = 15
	tagSyncResp  = 16
	tagSnapshot  = 17
	tagHint      = 18
)

func init() {
	wire.RegisterBinaryPayload(tagSubmit, Submit{},
		func(b *wire.Buffer, v any) error { return encSubmit(b, v.(Submit)) },
		func(r *wire.Reader) (any, error) { return decSubmit(r) })
	wire.RegisterBinaryPayload(tagOrdered, Ordered{},
		func(b *wire.Buffer, v any) error { return encOrdered(b, v.(Ordered)) },
		func(r *wire.Reader) (any, error) { return decOrdered(r) })
	wire.RegisterBinaryPayload(tagNack, Nack{},
		func(b *wire.Buffer, v any) error {
			n := v.(Nack)
			b.String(string(n.Group))
			b.String(string(n.From))
			b.Uvarint(n.Want)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			var n Nack
			var err error
			if n.Group, err = groupID(r); err != nil {
				return nil, err
			}
			if n.From, err = nodeID(r); err != nil {
				return nil, err
			}
			if n.Want, err = r.Uvarint(); err != nil {
				return nil, err
			}
			return n, nil
		})
	wire.RegisterBinaryPayload(tagHeartbeat, Heartbeat{},
		func(b *wire.Buffer, v any) error {
			h := v.(Heartbeat)
			b.String(string(h.Group))
			b.String(string(h.From))
			b.Uvarint(h.Epoch)
			b.Uvarint(h.MaxSeq)
			b.Uvarint(h.Acked)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			var h Heartbeat
			var err error
			if h.Group, err = groupID(r); err != nil {
				return nil, err
			}
			if h.From, err = nodeID(r); err != nil {
				return nil, err
			}
			if h.Epoch, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if h.MaxSeq, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if h.Acked, err = r.Uvarint(); err != nil {
				return nil, err
			}
			return h, nil
		})
	wire.RegisterBinaryPayload(tagPropose, Propose{},
		func(b *wire.Buffer, v any) error {
			p := v.(Propose)
			b.String(string(p.Group))
			b.String(string(p.From))
			encView(b, p.View)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			var p Propose
			var err error
			if p.Group, err = groupID(r); err != nil {
				return nil, err
			}
			if p.From, err = nodeID(r); err != nil {
				return nil, err
			}
			if p.View, err = decView(r); err != nil {
				return nil, err
			}
			return p, nil
		})
	wire.RegisterBinaryPayload(tagSyncReq, SyncReq{},
		func(b *wire.Buffer, v any) error {
			q := v.(SyncReq)
			b.String(string(q.Group))
			b.String(string(q.From))
			encView(b, q.View)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			var q SyncReq
			var err error
			if q.Group, err = groupID(r); err != nil {
				return nil, err
			}
			if q.From, err = nodeID(r); err != nil {
				return nil, err
			}
			if q.View, err = decView(r); err != nil {
				return nil, err
			}
			return q, nil
		})
	wire.RegisterBinaryPayload(tagSyncResp, SyncResp{},
		func(b *wire.Buffer, v any) error { return encSyncResp(b, v.(SyncResp)) },
		func(r *wire.Reader) (any, error) { return decSyncResp(r) })
	wire.RegisterBinaryPayload(tagSnapshot, Snapshot{},
		func(b *wire.Buffer, v any) error {
			s := v.(Snapshot)
			b.String(string(s.Group))
			b.Uvarint(s.Seq)
			b.Bytes(s.Data)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			var s Snapshot
			var err error
			if s.Group, err = groupID(r); err != nil {
				return nil, err
			}
			if s.Seq, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if s.Data, err = r.Bytes(); err != nil {
				return nil, err
			}
			return s, nil
		})
	wire.RegisterBinaryPayload(tagHint, Hint{},
		func(b *wire.Buffer, v any) error {
			h := v.(Hint)
			b.String(string(h.Group))
			b.String(h.ID)
			b.Uvarint(h.Seq)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			var h Hint
			var err error
			if h.Group, err = groupID(r); err != nil {
				return nil, err
			}
			if h.ID, err = r.String(); err != nil {
				return nil, err
			}
			if h.Seq, err = r.Uvarint(); err != nil {
				return nil, err
			}
			return h, nil
		})
}

func groupID(r *wire.Reader) (wire.GroupID, error) {
	s, err := r.String()
	return wire.GroupID(s), err
}

func nodeID(r *wire.Reader) (wire.NodeID, error) {
	s, err := r.String()
	return wire.NodeID(s), err
}

func encSubmit(b *wire.Buffer, s Submit) error {
	b.String(string(s.Group))
	b.String(s.ID)
	b.String(string(s.Origin))
	return b.Any(s.Payload)
}

func decSubmit(r *wire.Reader) (Submit, error) {
	var s Submit
	var err error
	if s.Group, err = groupID(r); err != nil {
		return s, err
	}
	if s.ID, err = r.String(); err != nil {
		return s, err
	}
	if s.Origin, err = nodeID(r); err != nil {
		return s, err
	}
	if s.Payload, err = r.Any(); err != nil {
		return s, err
	}
	return s, nil
}

func encView(b *wire.Buffer, v View) {
	b.Uvarint(v.Epoch)
	b.Uvarint(uint64(len(v.Members)))
	for _, m := range v.Members {
		b.String(string(m))
	}
}

func decView(r *wire.Reader) (View, error) {
	var v View
	var err error
	if v.Epoch, err = r.Uvarint(); err != nil {
		return v, err
	}
	n, err := sliceLen(r, "view members")
	if err != nil {
		return v, err
	}
	if n == 0 {
		return v, nil
	}
	v.Members = make([]wire.NodeID, 0, n)
	for i := 0; i < n; i++ {
		m, err := nodeID(r)
		if err != nil {
			return v, err
		}
		v.Members = append(v.Members, m)
	}
	return v, nil
}

// sliceLen reads a slice length and sanity-checks it against the bytes
// remaining in the frame (every element costs at least one byte), so
// corrupt input cannot request an absurd allocation.
func sliceLen(r *wire.Reader, what string) (int, error) {
	n, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.Remaining()) {
		return 0, fmt.Errorf("gcs: %s count %d exceeds frame", what, n)
	}
	return int(n), nil
}

func encOrdered(b *wire.Buffer, o Ordered) error {
	b.String(string(o.Group))
	b.Uvarint(o.Epoch)
	b.Uvarint(o.Seq)
	b.String(o.ID)
	b.String(string(o.Origin))
	if err := b.Any(o.Payload); err != nil {
		return err
	}
	b.Bool(o.View != nil)
	if o.View != nil {
		encView(b, *o.View)
	}
	b.Uvarint(uint64(len(o.Batch)))
	for _, s := range o.Batch {
		if err := encSubmit(b, s); err != nil {
			return err
		}
	}
	return nil
}

func decOrdered(r *wire.Reader) (Ordered, error) {
	var o Ordered
	var err error
	if o.Group, err = groupID(r); err != nil {
		return o, err
	}
	if o.Epoch, err = r.Uvarint(); err != nil {
		return o, err
	}
	if o.Seq, err = r.Uvarint(); err != nil {
		return o, err
	}
	if o.ID, err = r.String(); err != nil {
		return o, err
	}
	if o.Origin, err = nodeID(r); err != nil {
		return o, err
	}
	if o.Payload, err = r.Any(); err != nil {
		return o, err
	}
	hasView, err := r.Bool()
	if err != nil {
		return o, err
	}
	if hasView {
		v, err := decView(r)
		if err != nil {
			return o, err
		}
		o.View = &v
	}
	n, err := sliceLen(r, "ordered batch")
	if err != nil {
		return o, err
	}
	if n > 0 {
		o.Batch = make([]Submit, 0, n)
		for i := 0; i < n; i++ {
			s, err := decSubmit(r)
			if err != nil {
				return o, err
			}
			o.Batch = append(o.Batch, s)
		}
	}
	return o, nil
}

func encSyncResp(b *wire.Buffer, s SyncResp) error {
	b.String(string(s.Group))
	b.String(string(s.From))
	b.Uvarint(s.Epoch)
	b.Uvarint(s.Delivered)
	b.Uvarint(uint64(len(s.Tail)))
	for _, o := range s.Tail {
		if err := encOrdered(b, o); err != nil {
			return err
		}
	}
	b.Uvarint(uint64(len(s.Pending)))
	for _, sub := range s.Pending {
		if err := encSubmit(b, sub); err != nil {
			return err
		}
	}
	b.Uvarint(s.SnapSeq)
	b.Bytes(s.Snap)
	return nil
}

func decSyncResp(r *wire.Reader) (SyncResp, error) {
	var s SyncResp
	var err error
	if s.Group, err = groupID(r); err != nil {
		return s, err
	}
	if s.From, err = nodeID(r); err != nil {
		return s, err
	}
	if s.Epoch, err = r.Uvarint(); err != nil {
		return s, err
	}
	if s.Delivered, err = r.Uvarint(); err != nil {
		return s, err
	}
	n, err := sliceLen(r, "sync tail")
	if err != nil {
		return s, err
	}
	if n > 0 {
		s.Tail = make([]Ordered, 0, n)
		for i := 0; i < n; i++ {
			o, err := decOrdered(r)
			if err != nil {
				return s, err
			}
			s.Tail = append(s.Tail, o)
		}
	}
	n, err = sliceLen(r, "sync pending")
	if err != nil {
		return s, err
	}
	if n > 0 {
		s.Pending = make([]Submit, 0, n)
		for i := 0; i < n; i++ {
			sub, err := decSubmit(r)
			if err != nil {
				return s, err
			}
			s.Pending = append(s.Pending, sub)
		}
	}
	if s.SnapSeq, err = r.Uvarint(); err != nil {
		return s, err
	}
	if s.Snap, err = r.Bytes(); err != nil {
		return s, err
	}
	return s, nil
}
