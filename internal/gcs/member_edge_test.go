package gcs

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/replobj/replobj/internal/wire"
)

// TestLossyNetworkUnderLoad: sustained random message loss between the
// sequencer and a follower must be fully repaired by NACK retransmission.
func TestLossyNetworkUnderLoad(t *testing.T) {
	h := newHarness(3, false)
	drop := 0
	h.net.SetDropRule(func(from, to wire.NodeID) bool {
		// Drop every third sequencer→member2 message.
		if from == h.ids[0] && to == h.ids[2] {
			drop++
			return drop%3 == 0
		}
		return false
	})
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		const n = 40
		for i := 0; i < n; i++ {
			h.submitFromClient(cl, fmt.Sprintf("m%03d", i), "x")
			if i%5 == 4 {
				h.rt.Sleep(2 * time.Millisecond)
			}
		}
		// Keep nudging: each extra message triggers gap NACKs at the victim.
		for i := 0; i < 10; i++ {
			h.rt.Sleep(10 * time.Millisecond)
			h.submitFromClient(cl, fmt.Sprintf("nudge%d", i), "x")
		}
		ref := ids(take(t, h.rt, h.members[0], n+10))
		got := ids(take(t, h.rt, h.members[2], n+10))
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("lossy member diverged:\n  ref: %v\n  got: %v", ref, got)
		}
	})
}

// TestStaleProposalIgnored: proposals with an epoch not above the current
// (or already-installing) one must be ignored.
func TestStaleProposalIgnored(t *testing.T) {
	h := newHarness(3, false)
	h.run(func() {
		m := h.members[1]
		var act actions
		h.rt.Lock()
		m.adoptProposalLocked(View{Epoch: 0, Members: []wire.NodeID{h.ids[1]}}, &act)
		if m.installing != nil {
			t.Error("epoch-0 proposal adopted over installed epoch 0")
		}
		m.adoptProposalLocked(View{Epoch: 2, Members: []wire.NodeID{h.ids[1], h.ids[2]}}, &act)
		if m.installing == nil || m.installing.Epoch != 2 {
			t.Fatalf("installing = %v", m.installing)
		}
		m.adoptProposalLocked(View{Epoch: 1, Members: []wire.NodeID{h.ids[2]}}, &act)
		if m.installing.Epoch != 2 {
			t.Error("lower-epoch proposal replaced a higher installing one")
		}
		h.rt.Unlock()
	})
}

// TestDuplicateOrderedIgnored: redelivered Ordered messages (below the
// delivery frontier) do not re-deliver.
func TestDuplicateOrderedIgnored(t *testing.T) {
	h := newHarness(3, false)
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		h.submitFromClient(cl, "a", "x")
		got := ids(take(t, h.rt, h.members[1], 1))
		if !reflect.DeepEqual(got, []string{"a"}) {
			t.Fatalf("got %v", got)
		}
		// Replay the retained ordered message at member 1.
		h.rt.Lock()
		o, ok := h.members[1].log[1]
		h.rt.Unlock()
		if !ok {
			t.Fatal("seq 1 not retained")
		}
		h.members[1].Handle(h.ids[0], o)
		if d, ok, timedOut := h.members[1].DeliverTimeout(10 * time.Millisecond); ok && !timedOut {
			t.Errorf("duplicate ordered redelivered: %+v", d)
		}
	})
}

// TestBroadcastAfterStopIsNoop: using a stopped member must not panic or
// deliver.
func TestBroadcastAfterStopIsNoop(t *testing.T) {
	h := newHarness(3, false)
	h.run(func() {
		h.members[1].Stop()
		h.members[1].Broadcast("late", appMsg{Body: "x"})
		if _, ok := h.members[1].Deliver(); ok {
			t.Error("delivery after Stop")
		}
		ok := h.members[1].Handle(h.ids[0], Ordered{Group: h.group, Seq: 99, ID: "z"})
		if !ok {
			t.Error("stopped member should still consume gcs traffic silently")
		}
	})
}

// TestLogRetentionBounded: the retained ordered log must stay within its
// configured bound under sustained traffic.
func TestLogRetentionBounded(t *testing.T) {
	rt := newHarness(1, false)
	// Tighten retention for the test.
	rt.members[0].cfg.LogRetain = 32
	rt.run(func() {
		cl := rt.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		const n = 200
		for i := 0; i < n; i++ {
			rt.submitFromClient(cl, fmt.Sprintf("m%03d", i), "x")
		}
		_ = take(t, rt.rt, rt.members[0], n)
		rt.rt.Lock()
		size := len(rt.members[0].log)
		rt.rt.Unlock()
		if size > 2*32 {
			t.Errorf("retained log has %d entries, cap 2×32", size)
		}
	})
}

// TestViewString covers the diagnostic formatting.
func TestViewString(t *testing.T) {
	v := View{Epoch: 4, Members: []wire.NodeID{"a"}}
	if got := v.String(); got != "view{epoch=4 members=[a]}" {
		t.Errorf("String = %q", got)
	}
}

// TestSimultaneousSuspicion: both survivors suspect the crashed sequencer
// in the same FD tick and propose the identical next view — the protocol
// must converge to one view without conflict.
func TestSimultaneousSuspicion(t *testing.T) {
	h := newHarness(3, true)
	h.run(func() {
		cl := h.net.Endpoint(wire.ClientID("c1"))
		defer cl.Close()
		h.submitFromClient(cl, "pre", "x")
		h.rt.Sleep(60 * time.Millisecond)
		h.net.Crash(h.ids[0])
		h.rt.Sleep(time.Second)
		h.submitFromClient(cl, "post", "x")

		for _, idx := range []int{1, 2} {
			app, views := takeWithViews(t, h.members[idx], 2)
			if !reflect.DeepEqual(app, []string{"pre", "post"}) {
				t.Errorf("member %d stream = %v", idx, app)
			}
			// Exactly one view change must have been installed, with both
			// survivors and member 1 as sequencer.
			if len(views) != 1 {
				t.Errorf("member %d saw %d view changes: %v", idx, len(views), views)
			}
			v := views[len(views)-1]
			want := []wire.NodeID{h.ids[1], h.ids[2]}
			if !reflect.DeepEqual(v.Members, want) {
				t.Errorf("member %d view = %v", idx, v)
			}
		}
	})
}
