package transport

import (
	"math/rand"
	"sync"
	"time"

	"github.com/replobj/replobj/internal/obs/tracing"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// LatencyFunc returns the one-way delivery latency for a message.
type LatencyFunc func(from, to wire.NodeID) time.Duration

// DropFunc reports whether a message should be silently dropped.
type DropFunc func(from, to wire.NodeID) bool

// InprocOption configures an in-process network.
type InprocOption func(*Inproc)

// WithLatency sets a constant one-way latency (default 600 µs, a small
// message on the paper's 100 Mbit/s switched LAN).
func WithLatency(d time.Duration) InprocOption {
	return func(n *Inproc) {
		n.latency = func(_, _ wire.NodeID) time.Duration { return d }
	}
}

// WithLatencyFunc sets a per-edge latency model.
func WithLatencyFunc(f LatencyFunc) InprocOption {
	return func(n *Inproc) { n.latency = f }
}

// WithJitter adds uniform random jitter in [0, j) to every delivery, drawn
// from a deterministic seeded source.
func WithJitter(j time.Duration, seed int64) InprocOption {
	return func(n *Inproc) {
		n.jitter = j
		n.rng = rand.New(rand.NewSource(seed))
	}
}

// DefaultLatency is the default one-way message latency of the simulated
// LAN.
const DefaultLatency = 600 * time.Microsecond

// Inproc is an in-memory Network with simulated latency. Delivery order
// between a pair of nodes is FIFO per sender when latency is constant
// (messages scheduled earlier fire earlier; the virtual kernel breaks
// deadline ties by creation order).
type Inproc struct {
	rt      vtime.Runtime
	latency LatencyFunc
	jitter  time.Duration
	rng     *rand.Rand

	mu      sync.Mutex
	nodes   map[wire.NodeID]*inprocEndpoint
	drop    DropFunc
	crashed map[wire.NodeID]bool
	stats   *Stats
}

var _ Network = (*Inproc)(nil)

// NewInproc returns an in-memory network on rt.
func NewInproc(rt vtime.Runtime, opts ...InprocOption) *Inproc {
	n := &Inproc{
		rt:      rt,
		latency: func(_, _ wire.NodeID) time.Duration { return DefaultLatency },
		nodes:   make(map[wire.NodeID]*inprocEndpoint),
		crashed: make(map[wire.NodeID]bool),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Endpoint implements Network.
func (n *Inproc) Endpoint(id wire.NodeID) Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep := &inprocEndpoint{
		net:   n,
		id:    id,
		inbox: vtime.NewMailbox[wire.Message](n.rt, "inproc/"+string(id)),
	}
	n.nodes[id] = ep
	delete(n.crashed, id)
	return ep
}

// SetStats installs st as the network's metric sink (nil disables). Shared
// by all endpoints of this network.
func (n *Inproc) SetStats(st *Stats) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = st
}

// SetDropRule installs f as the message-drop predicate (nil clears it).
// Used by failure-injection tests to create partitions and lossy links.
func (n *Inproc) SetDropRule(f DropFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.drop = f
}

// Crash makes id unreachable: all future messages to or from it are
// dropped. It models a process crash as seen by the network; the node's
// goroutines are not forcibly stopped (they starve, as a real crashed
// process's peers would observe).
func (n *Inproc) Crash(id wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restore undoes Crash for id.
func (n *Inproc) Restore(id wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

func (n *Inproc) send(from, to wire.NodeID, payload any) {
	n.mu.Lock()
	st := n.stats
	if n.crashed[from] || n.crashed[to] || (n.drop != nil && n.drop(from, to)) {
		n.mu.Unlock()
		if st != nil {
			st.Dropped.Inc()
		}
		return
	}
	d := n.latency(from, to)
	if n.jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.jitter)))
	}
	n.mu.Unlock()
	if st != nil {
		st.MsgsSent.Inc()
		if st.Spans != nil {
			if t, ok := payload.(tracing.Traced); ok {
				if ctx := t.TraceCtx(); ctx.Valid() {
					// One-way flight time: latency is known up front here,
					// so the span covers [now, now+d).
					start := n.rt.Now()
					st.Spans.Record(tracing.Span{
						Trace:  ctx.TraceID,
						ID:     tracing.NewSpanID(ctx.TraceID, "xport", string(from), start),
						Parent: ctx.Span,
						Name:   "xport",
						Node:   string(from),
						Detail: string(to),
						Start:  start,
						Dur:    d,
					})
				}
			}
		}
	}

	msg := wire.Message{From: from, To: to, Payload: payload}
	n.rt.After(d, "deliver/"+string(to), func() {
		n.mu.Lock()
		dst, ok := n.nodes[to]
		dead := n.crashed[to]
		n.mu.Unlock()
		if ok && !dead {
			if st != nil {
				st.MsgsRecv.Inc()
			}
			dst.inbox.Put(msg)
		} else if st != nil {
			st.Dropped.Inc()
		}
	})
}

type inprocEndpoint struct {
	net   *Inproc
	id    wire.NodeID
	inbox *vtime.Mailbox[wire.Message]
}

var _ Endpoint = (*inprocEndpoint)(nil)

func (e *inprocEndpoint) ID() wire.NodeID { return e.id }

func (e *inprocEndpoint) Send(to wire.NodeID, payload any) {
	e.net.send(e.id, to, payload)
}

func (e *inprocEndpoint) Recv() (wire.Message, bool) {
	return e.inbox.Get()
}

func (e *inprocEndpoint) Close() {
	e.net.mu.Lock()
	if e.net.nodes[e.id] == e {
		delete(e.net.nodes, e.id)
	}
	e.net.mu.Unlock()
	e.inbox.Close()
}
