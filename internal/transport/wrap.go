package transport

import (
	"github.com/replobj/replobj/internal/wire"
)

// WrappedNetwork layers a send interceptor over an existing Network. It is
// the generic hook point for fault injection, traffic capture, or
// rate-limiting wrappers: endpoints bind through to the inner network, and
// every Send first passes the interceptor. A nil interceptor forwards
// everything. The faultnet package builds its deterministic chaos transport
// on this seam.
type WrappedNetwork struct {
	inner     Network
	intercept func(from, to wire.NodeID, payload any, forward func()) bool
}

var _ Network = (*WrappedNetwork)(nil)

// NewWrappedNetwork wraps inner. The interceptor receives each outbound
// message plus a forward closure that performs the real send; it returns
// true if it consumed the message (i.e. the wrapper must NOT forward it
// itself — the interceptor either dropped it or called forward, possibly
// several times or from a timer).
func NewWrappedNetwork(inner Network, intercept func(from, to wire.NodeID, payload any, forward func()) bool) *WrappedNetwork {
	return &WrappedNetwork{inner: inner, intercept: intercept}
}

// Endpoint implements Network.
func (w *WrappedNetwork) Endpoint(id wire.NodeID) Endpoint {
	return &wrappedEndpoint{net: w, inner: w.inner.Endpoint(id)}
}

// Inner returns the wrapped network (e.g. to reach Inproc's Crash switch).
func (w *WrappedNetwork) Inner() Network { return w.inner }

// SetStats forwards the metric/span sink to the inner network when it
// supports one, so instrumentation sees the traffic that actually survives
// the interceptor (post-fault, for faultnet).
func (w *WrappedNetwork) SetStats(st *Stats) {
	if s, ok := w.inner.(interface{ SetStats(*Stats) }); ok {
		s.SetStats(st)
	}
}

type wrappedEndpoint struct {
	net   *WrappedNetwork
	inner Endpoint
}

var _ Endpoint = (*wrappedEndpoint)(nil)

func (e *wrappedEndpoint) ID() wire.NodeID { return e.inner.ID() }

func (e *wrappedEndpoint) Send(to wire.NodeID, payload any) {
	if e.net.intercept != nil {
		consumed := e.net.intercept(e.inner.ID(), to, payload, func() {
			e.inner.Send(to, payload)
		})
		if consumed {
			return
		}
	}
	e.inner.Send(to, payload)
}

func (e *wrappedEndpoint) Recv() (wire.Message, bool) { return e.inner.Recv() }

func (e *wrappedEndpoint) Close() { e.inner.Close() }
