package transport

import (
	"testing"
	"time"

	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

func TestTCPRoundTrip(t *testing.T) {
	rt := vtime.Real()
	defer rt.Stop()
	net := NewTCP(rt, map[wire.NodeID]string{
		"a": "127.0.0.1:0",
		"b": "127.0.0.1:0",
	})
	a, err := net.Listen("a")
	if err != nil {
		t.Fatalf("Listen(a): %v", err)
	}
	defer a.Close()
	b, err := net.Listen("b")
	if err != nil {
		t.Fatalf("Listen(b): %v", err)
	}
	defer b.Close()

	a.Send("b", ping{N: 5})
	got := make(chan wire.Message, 1)
	rt.Go("recv", func() {
		m, ok := b.Recv()
		if ok {
			got <- m
		}
	})
	select {
	case m := <-got:
		if m.From != "a" || m.Payload.(ping).N != 5 {
			t.Errorf("got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never arrived over TCP")
	}
}

func TestTCPManyMessagesBothDirections(t *testing.T) {
	rt := vtime.Real()
	defer rt.Stop()
	net := NewTCP(rt, map[wire.NodeID]string{
		"a": "127.0.0.1:0",
		"b": "127.0.0.1:0",
	})
	a, err := net.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := net.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 100
	recvAll := func(e Endpoint, want int, out chan<- int) {
		for i := 0; i < want; i++ {
			m, ok := e.Recv()
			if !ok {
				return
			}
			out <- m.Payload.(ping).N
		}
	}
	fromA, fromB := make(chan int, n), make(chan int, n)
	rt.Go("recvB", func() { recvAll(b, n, fromA) })
	rt.Go("recvA", func() { recvAll(a, n, fromB) })
	for i := 0; i < n; i++ {
		a.Send("b", ping{N: i})
		b.Send("a", ping{N: i + 1000})
	}
	deadline := time.After(10 * time.Second)
	seenA, seenB := 0, 0
	for seenA < n || seenB < n {
		select {
		case v := <-fromA:
			if v != seenA {
				t.Fatalf("b received %d, want %d (per-sender FIFO)", v, seenA)
			}
			seenA++
		case v := <-fromB:
			if v != seenB+1000 {
				t.Fatalf("a received %d, want %d", v, seenB+1000)
			}
			seenB++
		case <-deadline:
			t.Fatalf("timed out: %d/%d from a, %d/%d from b", seenA, n, seenB, n)
		}
	}
}

func TestTCPSendToUnknownNodeIsDropped(t *testing.T) {
	rt := vtime.Real()
	defer rt.Stop()
	net := NewTCP(rt, map[wire.NodeID]string{"a": "127.0.0.1:0"})
	a, err := net.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Send("ghost", ping{N: 1}) // best-effort: no panic, no block
}

func TestTCPEndpointErr(t *testing.T) {
	rt := vtime.Real()
	defer rt.Stop()
	net := NewTCP(rt, map[wire.NodeID]string{})
	ep := net.Endpoint("unregistered")
	if err := EndpointErr(ep); err == nil {
		t.Error("EndpointErr = nil for unregistered node, want error")
	}
	// broken endpoint operations are inert
	ep.Send("x", ping{})
	if _, ok := ep.Recv(); ok {
		t.Error("broken endpoint Recv = ok")
	}
	ep.Close()

	healthy := net2healthy(t, rt)
	defer healthy.Close()
	if err := EndpointErr(healthy); err != nil {
		t.Errorf("EndpointErr on healthy endpoint = %v, want nil", err)
	}
}

func net2healthy(t *testing.T, rt vtime.Runtime) Endpoint {
	t.Helper()
	net := NewTCP(rt, map[wire.NodeID]string{"h": "127.0.0.1:0"})
	return net.Endpoint("h")
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	rt := vtime.Real()
	defer rt.Stop()
	net := NewTCP(rt, map[wire.NodeID]string{"a": "127.0.0.1:0"})
	a, err := net.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	rt.Go("recv", func() {
		_, ok := a.Recv()
		done <- ok
	})
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Recv after Close = ok")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv never unblocked after Close")
	}
	a.Close() // double close is a no-op
}
