package transport

import (
	"testing"

	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

func benchPair(b *testing.B, opts ...TCPOption) (*TCPEndpoint, *TCPEndpoint, func()) {
	b.Helper()
	rt := vtime.Real()
	net := NewTCP(rt, map[wire.NodeID]string{
		"a": "127.0.0.1:0",
		"b": "127.0.0.1:0",
	}, opts...)
	a, err := net.Listen("a")
	if err != nil {
		b.Fatal(err)
	}
	bb, err := net.Listen("b")
	if err != nil {
		b.Fatal(err)
	}
	return a, bb, func() {
		a.Close()
		bb.Close()
		rt.Stop()
	}
}

// BenchmarkTCPLoopbackRoundTrip measures one full send→recv→echo→recv
// cycle over loopback TCP: framing, codec, send queue, writer goroutine and
// kernel socket in both directions.
func BenchmarkTCPLoopbackRoundTrip(b *testing.B) {
	a, bb, stop := benchPair(b)
	defer stop()
	go func() {
		for {
			m, ok := bb.Recv()
			if !ok {
				return
			}
			bb.Send(m.From, m.Payload)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send("b", ping{N: i})
		if _, ok := a.Recv(); !ok {
			b.Fatal("endpoint closed mid-benchmark")
		}
	}
}

// BenchmarkTCPLoopbackBurst measures pipelined one-way throughput: the
// sender enqueues a window of messages and the writer goroutine coalesces
// them into large flushes. This is the path the coalescing transport
// optimizes — compare ns/op with the round-trip benchmark's serial sends.
func BenchmarkTCPLoopbackBurst(b *testing.B) {
	const window = 256
	a, bb, stop := benchPair(b, WithSendQueueDepth(2*window))
	defer stop()
	got := make(chan struct{}, window)
	go func() {
		for {
			if _, ok := bb.Recv(); !ok {
				return
			}
			got <- struct{}{}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	inFlight := 0
	for i := 0; i < b.N; i++ {
		for inFlight >= window {
			<-got
			inFlight--
		}
		a.Send("b", ping{N: i})
		inFlight++
	}
	for inFlight > 0 {
		<-got
		inFlight--
	}
}
