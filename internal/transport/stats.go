package transport

import (
	"github.com/replobj/replobj/internal/obs"
	"github.com/replobj/replobj/internal/obs/tracing"
)

// Stats collects network-level metrics for one network (shared across its
// endpoints). A nil *Stats makes every recording a no-op — both field
// access and counter methods are guarded — so instrumented paths cost
// nothing when observability is off.
type Stats struct {
	MsgsSent  *obs.Counter
	MsgsRecv  *obs.Counter
	Dropped   *obs.Counter
	Dials     *obs.Counter
	ConnDrops *obs.Counter
	BytesSent *obs.Counter
	BytesRecv *obs.Counter

	// Spans, when non-nil, records an "xport" span for every traced
	// payload in flight (see internal/obs/tracing).
	Spans *tracing.Collector
}

// NewStats builds the transport metric set in reg with the given label
// value (typically the network kind: "inproc" or "tcp"). A nil registry
// yields a Stats with nil metrics, still usable as a span carrier.
func NewStats(reg *obs.Registry, label string) *Stats {
	if reg == nil {
		return &Stats{}
	}
	l := `{net="` + label + `"}`
	return &Stats{
		MsgsSent:  reg.Counter("replobj_transport_msgs_sent_total" + l),
		MsgsRecv:  reg.Counter("replobj_transport_msgs_recv_total" + l),
		Dropped:   reg.Counter("replobj_transport_msgs_dropped_total" + l),
		Dials:     reg.Counter("replobj_transport_dials_total" + l),
		ConnDrops: reg.Counter("replobj_transport_conn_drops_total" + l),
		BytesSent: reg.Counter("replobj_transport_bytes_sent_total" + l),
		BytesRecv: reg.Counter("replobj_transport_bytes_recv_total" + l),
	}
}
