// Package transport moves wire.Messages between nodes.
//
// Two implementations mirror the two vtime runtimes:
//
//   - Inproc — an in-memory network with a configurable latency model,
//     drop rules and crash switches, used with the virtual-time kernel. It
//     stands in for the paper's 100 Mbit/s switched-Ethernet testbed: the
//     default one-way latency approximates a small CORBA message on that
//     LAN, and EXPERIMENTS.md compares curve shapes, not absolute values.
//
//   - TCP — a real network transport (gob-framed, length-prefixed) for
//     deployments on actual machines, normally combined with vtime.Real().
package transport

import (
	"github.com/replobj/replobj/internal/wire"
)

// Endpoint is one node's attachment to a network.
type Endpoint interface {
	// ID returns the node identifier this endpoint is bound to.
	ID() wire.NodeID

	// Send enqueues a message for asynchronous, best-effort delivery.
	// It never blocks on the destination.
	Send(to wire.NodeID, payload any)

	// Recv blocks until a message arrives; ok is false after Close.
	Recv() (wire.Message, bool)

	// Close detaches the endpoint; blocked Recvs return ok=false and
	// messages addressed here are dropped from then on.
	Close()
}

// Network creates endpoints.
type Network interface {
	// Endpoint binds id and returns its endpoint. Binding an id twice
	// replaces the previous binding (the old endpoint keeps its queued
	// messages but receives no new ones).
	Endpoint(id wire.NodeID) Endpoint
}
