package transport

import (
	"testing"
	"time"

	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

type ping struct{ N int }

// ping gets a binary codec so the transport benchmarks exercise the same
// fast path production payloads take; unregistered types would fall back to
// per-frame gob and measure the codec fallback instead of the transport.
func init() {
	wire.RegisterPayload(ping{})
	wire.RegisterBinaryPayload(100, ping{},
		func(b *wire.Buffer, v any) error {
			b.Uvarint(uint64(int64(v.(ping).N)))
			return nil
		},
		func(r *wire.Reader) (any, error) {
			n, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			return ping{N: int(int64(n))}, nil
		})
}

// pump forwards everything an endpoint receives into a mailbox so tests can
// poll with timeouts without losing messages to abandoned readers. The pump
// goroutine exits when the endpoint is closed.
func pump(rt vtime.Runtime, e Endpoint) *vtime.Mailbox[wire.Message] {
	mb := vtime.NewMailbox[wire.Message](rt, "pump/"+string(e.ID()))
	rt.Go("pump/"+string(e.ID()), func() {
		for {
			m, ok := e.Recv()
			if !ok {
				mb.Close()
				return
			}
			mb.Put(m)
		}
	})
	return mb
}

func TestInprocDeliveryWithLatency(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := NewInproc(rt, WithLatency(time.Millisecond))
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	vtime.Run(rt, "main", func() {
		a.Send("b", ping{N: 1})
		m, ok := b.Recv()
		if !ok {
			t.Fatal("Recv: closed")
		}
		if m.From != "a" || m.To != "b" || m.Payload.(ping).N != 1 {
			t.Errorf("got %+v", m)
		}
		if now := rt.Now(); now != time.Millisecond {
			t.Errorf("delivered at %v, want 1ms", now)
		}
	})
}

func TestInprocFIFOPerSender(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := NewInproc(rt) // default constant latency
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	vtime.Run(rt, "main", func() {
		for i := 0; i < 20; i++ {
			a.Send("b", ping{N: i})
		}
		for i := 0; i < 20; i++ {
			m, ok := b.Recv()
			if !ok {
				t.Fatal("closed early")
			}
			if got := m.Payload.(ping).N; got != i {
				t.Fatalf("message %d arrived as %d: FIFO violated", i, got)
			}
		}
	})
}

func TestInprocSendToUnknownNodeIsDropped(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := NewInproc(rt)
	a := net.Endpoint("a")
	vtime.Run(rt, "main", func() {
		a.Send("ghost", ping{N: 1}) // must not panic or wedge
		rt.Sleep(10 * time.Millisecond)
	})
}

func TestInprocCrashDropsBothDirections(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := NewInproc(rt)
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	vtime.Run(rt, "main", func() {
		pa, pb := pump(rt, a), pump(rt, b)
		defer func() { a.Close(); b.Close() }()
		net.Crash("b")
		a.Send("b", ping{N: 1})
		b.Send("a", ping{N: 2})
		if m, ok, _ := pa.GetTimeout(10 * time.Millisecond); ok {
			t.Errorf("a received %+v from crashed node", m)
		}
		if m, ok, _ := pb.GetTimeout(time.Millisecond); ok {
			t.Errorf("crashed b received %+v", m)
		}
		net.Restore("b")
		a.Send("b", ping{N: 3})
		m, ok, timedOut := pb.GetTimeout(10 * time.Millisecond)
		if !ok || timedOut || m.Payload.(ping).N != 3 {
			t.Errorf("after restore: got (%+v, %v, %v)", m, ok, timedOut)
		}
	})
}

func TestInprocCrashedMessagesInFlightDropped(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := NewInproc(rt, WithLatency(5*time.Millisecond))
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	vtime.Run(rt, "main", func() {
		pb := pump(rt, b)
		defer func() { a.Close(); b.Close() }()
		a.Send("b", ping{N: 1}) // in flight for 5ms
		rt.Sleep(time.Millisecond)
		net.Crash("b") // crashes before delivery
		if _, ok, _ := pb.GetTimeout(20 * time.Millisecond); ok {
			t.Error("message delivered to node that crashed mid-flight")
		}
	})
}

func TestInprocDropRule(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := NewInproc(rt)
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	vtime.Run(rt, "main", func() {
		pb := pump(rt, b)
		defer func() { a.Close(); b.Close() }()
		net.SetDropRule(func(from, to wire.NodeID) bool { return from == "a" })
		a.Send("b", ping{N: 1})
		if _, ok, _ := pb.GetTimeout(10 * time.Millisecond); ok {
			t.Error("dropped message was delivered")
		}
		net.SetDropRule(nil)
		a.Send("b", ping{N: 2})
		m, ok, _ := pb.GetTimeout(10 * time.Millisecond)
		if !ok || m.Payload.(ping).N != 2 {
			t.Errorf("after clearing rule: got (%+v, %v)", m, ok)
		}
	})
}

func TestInprocCloseUnblocksRecv(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := NewInproc(rt)
	a := net.Endpoint("a")
	vtime.Run(rt, "main", func() {
		done := vtime.NewMailbox[bool](rt, "done")
		rt.Go("reader", func() {
			_, ok := a.Recv()
			done.Put(ok)
		})
		rt.Sleep(time.Millisecond)
		a.Close()
		if ok, _ := done.Get(); ok {
			t.Error("Recv after Close returned ok=true")
		}
	})
}

func TestInprocRebindReplacesEndpoint(t *testing.T) {
	rt := vtime.Virtual()
	defer rt.Stop()
	net := NewInproc(rt)
	a := net.Endpoint("a")
	old := net.Endpoint("b")
	fresh := net.Endpoint("b") // replaces old binding
	vtime.Run(rt, "main", func() {
		a.Send("b", ping{N: 7})
		m, ok := fresh.Recv()
		if !ok || m.Payload.(ping).N != 7 {
			t.Errorf("fresh binding got (%+v, %v)", m, ok)
		}
		_ = old
	})
}

func TestInprocJitterIsDeterministic(t *testing.T) {
	run := func() []time.Duration {
		rt := vtime.Virtual()
		defer rt.Stop()
		net := NewInproc(rt, WithLatency(time.Millisecond), WithJitter(time.Millisecond, 42))
		a := net.Endpoint("a")
		b := net.Endpoint("b")
		var times []time.Duration
		vtime.Run(rt, "main", func() {
			for i := 0; i < 10; i++ {
				a.Send("b", ping{N: i})
			}
			for i := 0; i < 10; i++ {
				if _, ok := b.Recv(); ok {
					times = append(times, rt.Now())
				}
			}
		})
		return times
	}
	t1, t2 := run(), run()
	if len(t1) != 10 || len(t2) != 10 {
		t.Fatalf("runs delivered %d/%d messages, want 10", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Errorf("delivery %d: %v vs %v — jitter not deterministic", i, t1[i], t2[i])
		}
	}
}
