package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// TCPNetwork is a Network over real TCP connections. Node addresses come
// from a static registry, mirroring a deployment descriptor. It must be
// used with vtime.Real(): connection reads block outside the virtual
// kernel's knowledge, so it cannot participate in simulated time.
type TCPNetwork struct {
	rt    vtime.Runtime
	mu    sync.Mutex
	addrs map[wire.NodeID]string
	stats *Stats
}

var _ Network = (*TCPNetwork)(nil)

// NewTCP returns a TCP network using the given node→address registry.
func NewTCP(rt vtime.Runtime, addrs map[wire.NodeID]string) *TCPNetwork {
	cp := make(map[wire.NodeID]string, len(addrs))
	for k, v := range addrs {
		cp[k] = v
	}
	return &TCPNetwork{rt: rt, addrs: cp}
}

// SetStats installs st as the network's metric sink (nil disables). Shared
// by all endpoints of this network; set it before creating endpoints so
// connections count their bytes from the start.
func (n *TCPNetwork) SetStats(st *Stats) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = st
}

func (n *TCPNetwork) getStats() *Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// countingConn wraps a net.Conn to count bytes moved in each direction.
type countingConn struct {
	net.Conn
	st *Stats
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.st.BytesRecv.Add(uint64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.st.BytesSent.Add(uint64(n))
	}
	return n, err
}

// wrapConn adds byte counting when stats are enabled.
func (n *TCPNetwork) wrapConn(c net.Conn) net.Conn {
	if st := n.getStats(); st != nil {
		return &countingConn{Conn: c, st: st}
	}
	return c
}

// Register adds or replaces a node's address. Registration may happen
// after endpoints exist: connections are dialed lazily at first send, so a
// deployment can bind every node on port 0 first and exchange the actual
// addresses afterwards.
func (n *TCPNetwork) Register(id wire.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs[id] = addr
}

// Address returns the registered (post-Listen: actual) address of a node.
func (n *TCPNetwork) Address(id wire.NodeID) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addrs[id]
}

// Endpoint implements Network. It starts listening on the node's registered
// address immediately; errors surface through EndpointErr.
func (n *TCPNetwork) Endpoint(id wire.NodeID) Endpoint {
	ep, err := n.Listen(id)
	if err != nil {
		return &brokenEndpoint{id: id, err: err}
	}
	return ep
}

// Listen binds id's registered address and returns its endpoint.
func (n *TCPNetwork) Listen(id wire.NodeID) (*TCPEndpoint, error) {
	n.mu.Lock()
	addr, ok := n.addrs[id]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no address registered for node %q", id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s for %q: %w", addr, id, err)
	}
	ep := &TCPEndpoint{
		net:     n,
		id:      id,
		ln:      ln,
		inbox:   vtime.NewMailbox[wire.Message](n.rt, "tcp/"+string(id)),
		conns:   make(map[wire.NodeID]*tcpConn),
		pending: make(map[wire.NodeID][]wire.Message),
	}
	// If the registry used port 0, record the actual bound address so peers
	// in the same process can reach this node.
	n.mu.Lock()
	n.addrs[id] = ln.Addr().String()
	n.mu.Unlock()
	n.rt.Go("tcp-accept/"+string(id), ep.acceptLoop)
	return ep, nil
}

// TCPEndpoint is one node's TCP attachment.
type TCPEndpoint struct {
	net   *TCPNetwork
	id    wire.NodeID
	ln    net.Listener
	inbox *vtime.Mailbox[wire.Message]

	mu    sync.Mutex
	conns map[wire.NodeID]*tcpConn
	// pending buffers messages to nodes with no address and no learned
	// connection yet — e.g. a reply to a client whose ordered request
	// (relayed by the sequencer) overtook its own direct connection. The
	// buffer flushes as soon as the sender's connection is learned.
	pending map[wire.NodeID][]wire.Message
	closed  bool
}

var _ Endpoint = (*TCPEndpoint)(nil)

type tcpConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *wire.Encoder
}

// ID implements Endpoint.
func (e *TCPEndpoint) ID() wire.NodeID { return e.id }

// Addr returns the actual listening address.
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// Send implements Endpoint: best-effort, drops on persistent connection
// errors. Messages to nodes that are neither registered nor connected yet
// are buffered briefly (see pending).
func (e *TCPEndpoint) Send(to wire.NodeID, payload any) {
	msg := wire.Message{From: e.id, To: to, Payload: payload}
	st := e.net.getStats()
	conn, err := e.connTo(to)
	if err != nil {
		const maxPending = 128
		buffered := false
		e.mu.Lock()
		if !e.closed && len(e.pending[to]) < maxPending {
			e.pending[to] = append(e.pending[to], msg)
			buffered = true
		}
		e.mu.Unlock()
		if !buffered && st != nil {
			st.Dropped.Inc()
		}
		return
	}
	conn.mu.Lock()
	err = conn.enc.Encode(&msg)
	conn.mu.Unlock()
	if err != nil {
		e.dropConn(to, conn)
		if st != nil {
			st.Dropped.Inc()
		}
		return
	}
	if st != nil {
		st.MsgsSent.Inc()
	}
}

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv() (wire.Message, bool) {
	return e.inbox.Get()
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	conns := e.conns
	e.conns = map[wire.NodeID]*tcpConn{}
	e.mu.Unlock()
	_ = e.ln.Close()
	for _, c := range conns {
		_ = c.c.Close()
	}
	e.inbox.Close()
}

func (e *TCPEndpoint) connTo(to wire.NodeID) (*tcpConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, errors.New("transport: endpoint closed")
	}
	if c, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()

	e.net.mu.Lock()
	addr, ok := e.net.addrs[to]
	e.net.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no address for node %q", to)
	}
	dialed, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q at %s: %w", to, addr, err)
	}
	if st := e.net.getStats(); st != nil {
		st.Dials.Inc()
	}
	raw := e.net.wrapConn(dialed)
	c := &tcpConn{c: raw, enc: wire.NewEncoder(raw)}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = raw.Close()
		return nil, errors.New("transport: endpoint closed")
	}
	if existing, ok := e.conns[to]; ok {
		e.mu.Unlock()
		_ = raw.Close()
		return existing, nil
	}
	e.conns[to] = c
	e.mu.Unlock()

	// Outgoing connections are also read: the peer may reply on the same
	// socket or, more commonly here, simply never write. Reading reaps EOFs.
	e.net.rt.Go("tcp-read/"+string(e.id), func() { e.readLoop(raw) })
	return c, nil
}

func (e *TCPEndpoint) dropConn(to wire.NodeID, c *tcpConn) {
	e.mu.Lock()
	if e.conns[to] == c {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	_ = c.c.Close()
	if st := e.net.getStats(); st != nil {
		st.ConnDrops.Inc()
	}
}

func (e *TCPEndpoint) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		wrapped := e.net.wrapConn(conn)
		e.net.rt.Go("tcp-read/"+string(e.id), func() { e.readLoop(wrapped) })
	}
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	st := e.net.getStats()
	dec := wire.NewDecoder(conn)
	wrapped := &tcpConn{c: conn, enc: wire.NewEncoder(conn)}
	learned := false
	for {
		var m wire.Message
		if err := dec.Decode(&m); err != nil {
			if err != io.EOF {
				_ = conn.Close()
			}
			return
		}
		if st != nil {
			st.MsgsRecv.Inc()
		}
		if !learned && m.From != "" {
			// Remember the sender's connection so replies can travel back
			// over it — this is how replicas answer clients that have no
			// entry in the static address registry — and flush anything
			// buffered for that sender.
			learned = true
			e.mu.Lock()
			if _, exists := e.conns[m.From]; !exists && !e.closed {
				e.conns[m.From] = wrapped
			}
			flush := e.pending[m.From]
			delete(e.pending, m.From)
			e.mu.Unlock()
			for i := range flush {
				wrapped.mu.Lock()
				err := wrapped.enc.Encode(&flush[i])
				wrapped.mu.Unlock()
				if err != nil {
					break
				}
			}
		}
		e.inbox.Put(m)
	}
}

// brokenEndpoint satisfies Endpoint for nodes whose listener failed; every
// operation is inert and the error is available via EndpointErr.
type brokenEndpoint struct {
	id  wire.NodeID
	err error
}

var _ Endpoint = (*brokenEndpoint)(nil)

func (b *brokenEndpoint) ID() wire.NodeID            { return b.id }
func (b *brokenEndpoint) Send(wire.NodeID, any)      {}
func (b *brokenEndpoint) Recv() (wire.Message, bool) { return wire.Message{}, false }
func (b *brokenEndpoint) Close()                     {}

// EndpointErr returns the bind error of an endpoint created through
// Network.Endpoint, or nil if it is healthy.
func EndpointErr(e Endpoint) error {
	if b, ok := e.(*brokenEndpoint); ok {
		return b.err
	}
	return nil
}
