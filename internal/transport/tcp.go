package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/replobj/replobj/internal/obs/tracing"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// Per-connection send-path defaults. Both are tunable through TCPOptions;
// EXPERIMENTS.md documents the trade-offs.
const (
	// defaultSendQueueDepth bounds the per-connection send queue. Send is
	// best-effort: when the writer goroutine falls behind and the queue
	// fills, further messages are dropped (and counted) rather than
	// blocking the protocol layers.
	defaultSendQueueDepth = 512
	// defaultCoalesceBytes caps how many encoded bytes the writer
	// goroutine accumulates before forcing a Flush, bounding both memory
	// and the latency a frame can sit buffered behind a burst.
	defaultCoalesceBytes = 64 << 10
)

// TCPNetwork is a Network over real TCP connections. Node addresses come
// from a static registry, mirroring a deployment descriptor. It must be
// used with vtime.Real(): connection reads block outside the virtual
// kernel's knowledge, so it cannot participate in simulated time.
type TCPNetwork struct {
	rt             vtime.Runtime
	sendQueueDepth int
	coalesceBytes  int

	mu    sync.Mutex
	addrs map[wire.NodeID]string
	stats *Stats
}

var _ Network = (*TCPNetwork)(nil)

// TCPOption tunes a TCPNetwork at construction time.
type TCPOption func(*TCPNetwork)

// WithSendQueueDepth sets the length of each connection's bounded send
// queue (default 512 messages). Send enqueues without blocking; when the
// queue is full the message is dropped and counted in Stats.Dropped.
func WithSendQueueDepth(n int) TCPOption {
	return func(t *TCPNetwork) { t.sendQueueDepth = n }
}

// WithCoalesceBytes sets the byte budget a connection's writer goroutine
// coalesces into a single flush (default 64 KiB). Lower values trade
// throughput for latency under sustained load.
func WithCoalesceBytes(n int) TCPOption {
	return func(t *TCPNetwork) { t.coalesceBytes = n }
}

// NewTCP returns a TCP network using the given node→address registry.
func NewTCP(rt vtime.Runtime, addrs map[wire.NodeID]string, opts ...TCPOption) *TCPNetwork {
	cp := make(map[wire.NodeID]string, len(addrs))
	for k, v := range addrs {
		cp[k] = v
	}
	n := &TCPNetwork{
		rt:             rt,
		addrs:          cp,
		sendQueueDepth: defaultSendQueueDepth,
		coalesceBytes:  defaultCoalesceBytes,
	}
	for _, o := range opts {
		o(n)
	}
	if n.sendQueueDepth < 1 {
		n.sendQueueDepth = 1
	}
	if n.coalesceBytes < 1 {
		n.coalesceBytes = 1
	}
	return n
}

// SetStats installs st as the network's metric sink (nil disables). Shared
// by all endpoints of this network; set it before creating endpoints so
// connections count their bytes from the start.
func (n *TCPNetwork) SetStats(st *Stats) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = st
}

func (n *TCPNetwork) getStats() *Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// countingConn wraps a net.Conn to count bytes moved in each direction.
type countingConn struct {
	net.Conn
	st *Stats
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.st.BytesRecv.Add(uint64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.st.BytesSent.Add(uint64(n))
	}
	return n, err
}

// wrapConn adds byte counting when stats are enabled.
func (n *TCPNetwork) wrapConn(c net.Conn) net.Conn {
	if st := n.getStats(); st != nil {
		return &countingConn{Conn: c, st: st}
	}
	return c
}

// Register adds or replaces a node's address. Registration may happen
// after endpoints exist: connections are dialed lazily at first send, so a
// deployment can bind every node on port 0 first and exchange the actual
// addresses afterwards.
func (n *TCPNetwork) Register(id wire.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs[id] = addr
}

// Address returns the registered (post-Listen: actual) address of a node.
func (n *TCPNetwork) Address(id wire.NodeID) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addrs[id]
}

// Endpoint implements Network. It starts listening on the node's registered
// address immediately; errors surface through EndpointErr.
func (n *TCPNetwork) Endpoint(id wire.NodeID) Endpoint {
	ep, err := n.Listen(id)
	if err != nil {
		return &brokenEndpoint{id: id, err: err}
	}
	return ep
}

// Listen binds id's registered address and returns its endpoint.
func (n *TCPNetwork) Listen(id wire.NodeID) (*TCPEndpoint, error) {
	n.mu.Lock()
	addr, ok := n.addrs[id]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no address registered for node %q", id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s for %q: %w", addr, id, err)
	}
	ep := &TCPEndpoint{
		net:     n,
		id:      id,
		ln:      ln,
		inbox:   vtime.NewMailbox[wire.Message](n.rt, "tcp/"+string(id)),
		conns:   make(map[wire.NodeID]*tcpConn),
		pending: make(map[wire.NodeID][]queuedMsg),
	}
	// If the registry used port 0, record the actual bound address so peers
	// in the same process can reach this node.
	n.mu.Lock()
	n.addrs[id] = ln.Addr().String()
	n.mu.Unlock()
	n.rt.Go("tcp-accept/"+string(id), ep.acceptLoop)
	return ep, nil
}

// TCPEndpoint is one node's TCP attachment.
type TCPEndpoint struct {
	net   *TCPNetwork
	id    wire.NodeID
	ln    net.Listener
	inbox *vtime.Mailbox[wire.Message]

	mu    sync.Mutex
	conns map[wire.NodeID]*tcpConn
	// pending buffers messages to nodes with no address and no learned
	// connection yet — e.g. a reply to a client whose ordered request
	// (relayed by the sequencer) overtook its own direct connection. The
	// buffer flushes as soon as the sender's connection is learned.
	pending map[wire.NodeID][]queuedMsg
	closed  bool
}

var _ Endpoint = (*TCPEndpoint)(nil)

// queuedMsg is one send-queue element: the message plus its enqueue time
// (zero unless span tracing is enabled), so the writer goroutine can record
// how long a frame sat queued before its flush hit the socket.
type queuedMsg struct {
	msg wire.Message
	at  time.Duration
}

// tcpConn pairs a socket with its bounded send queue. All writes go
// through the queue to a dedicated writer goroutine (see writeLoop), so
// protocol layers never block on — or interleave frames over — the socket.
type tcpConn struct {
	c net.Conn
	q chan queuedMsg

	mu     sync.Mutex
	closed bool
}

// enqueue offers m to the writer goroutine without blocking. It reports
// false when the connection is shut down or the queue is full.
func (c *tcpConn) enqueue(m queuedMsg) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	select {
	case c.q <- m:
		return true
	default:
		return false
	}
}

// shutdown closes the socket and the send queue, releasing the writer
// goroutine. Idempotent.
func (c *tcpConn) shutdown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.q)
	c.mu.Unlock()
	_ = c.c.Close()
}

// newConn registers a writer goroutine for raw and returns its queue
// handle.
func (e *TCPEndpoint) newConn(to wire.NodeID, raw net.Conn) *tcpConn {
	c := &tcpConn{c: raw, q: make(chan queuedMsg, e.net.sendQueueDepth)}
	e.net.rt.Go("tcp-write/"+string(e.id)+"->"+string(to), func() { e.writeLoop(to, c) })
	return c
}

// writeLoop drains the connection's send queue, coalescing every frame
// already queued into a single Flush — one syscall per burst rather than
// one per message. A frame never waits on future traffic: the loop flushes
// as soon as the queue goes idle or the coalesce byte budget fills.
// Messages count as sent only once their flush succeeds. On any encode or
// flush error the connection is retired and everything still queued is
// counted dropped.
func (e *TCPEndpoint) writeLoop(to wire.NodeID, c *tcpConn) {
	st := e.net.getStats()
	enc := wire.NewEncoder(c.c)
	var inflight []queuedMsg // traced frames awaiting flush (spans on only)
	track := func(qm queuedMsg) {
		if st == nil || st.Spans == nil {
			return
		}
		if t, ok := qm.msg.Payload.(tracing.Traced); ok {
			if t.TraceCtx().Valid() {
				inflight = append(inflight, qm)
			}
		}
	}
	for m := range c.q {
		inflight = inflight[:0]
		batch := 0 // frames encoded into the buffer, awaiting flush
		lost := 0  // frames that failed to encode
		err := enc.EncodeBuffered(&m.msg)
		if err != nil {
			lost = 1
		} else {
			batch++
			track(m)
		coalesce:
			for enc.Buffered() < e.net.coalesceBytes {
				select {
				case m2, ok := <-c.q:
					if !ok {
						break coalesce
					}
					if err = enc.EncodeBuffered(&m2.msg); err != nil {
						lost = 1
						break coalesce
					}
					batch++
					track(m2)
				default:
					break coalesce // queue idle: flush what we have
				}
			}
		}
		if err == nil {
			err = enc.Flush()
		}
		if err != nil {
			if st != nil {
				st.Dropped.Add(uint64(batch + lost))
			}
			e.dropConn(to, c)
			for range c.q { // drained: shutdown closed the queue
				if st != nil {
					st.Dropped.Inc()
				}
			}
			return
		}
		if st != nil {
			st.MsgsSent.Add(uint64(batch))
			if st.Spans != nil && len(inflight) > 0 {
				// Enqueue→flush residency of every traced frame in the
				// coalesced burst (socket flight time is not observable
				// from one side; the queue wait is the tunable part).
				now := e.net.rt.Now()
				for _, qm := range inflight {
					ctx := qm.msg.Payload.(tracing.Traced).TraceCtx()
					st.Spans.Record(tracing.Span{
						Trace:  ctx.TraceID,
						ID:     tracing.NewSpanID(ctx.TraceID, "xport", string(e.id), qm.at),
						Parent: ctx.Span,
						Name:   "xport",
						Node:   string(e.id),
						Detail: string(qm.msg.To),
						Start:  qm.at,
						Dur:    now - qm.at,
					})
				}
			}
		}
	}
	_ = enc.Flush() // clean shutdown: best-effort final flush
}

// ID implements Endpoint.
func (e *TCPEndpoint) ID() wire.NodeID { return e.id }

// Addr returns the actual listening address.
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// Send implements Endpoint: best-effort and non-blocking. The message is
// handed to the connection's writer goroutine; if that queue is full or
// the connection is gone, the message is dropped and counted. Messages to
// nodes that are neither registered nor connected yet are buffered briefly
// (see pending).
func (e *TCPEndpoint) Send(to wire.NodeID, payload any) {
	st := e.net.getStats()
	qm := queuedMsg{msg: wire.Message{From: e.id, To: to, Payload: payload}}
	if st != nil && st.Spans != nil {
		qm.at = e.net.rt.Now()
	}
	conn, err := e.connTo(to)
	if err != nil {
		const maxPending = 128
		buffered := false
		e.mu.Lock()
		if !e.closed && len(e.pending[to]) < maxPending {
			e.pending[to] = append(e.pending[to], qm)
			buffered = true
		}
		e.mu.Unlock()
		if !buffered && st != nil {
			st.Dropped.Inc()
		}
		return
	}
	if !conn.enqueue(qm) && st != nil {
		st.Dropped.Inc()
	}
}

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv() (wire.Message, bool) {
	return e.inbox.Get()
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	conns := e.conns
	e.conns = map[wire.NodeID]*tcpConn{}
	e.mu.Unlock()
	_ = e.ln.Close()
	for _, c := range conns {
		c.shutdown()
	}
	e.inbox.Close()
}

func (e *TCPEndpoint) connTo(to wire.NodeID) (*tcpConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, errors.New("transport: endpoint closed")
	}
	if c, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()

	e.net.mu.Lock()
	addr, ok := e.net.addrs[to]
	e.net.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no address for node %q", to)
	}
	dialed, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q at %s: %w", to, addr, err)
	}
	if st := e.net.getStats(); st != nil {
		st.Dials.Inc()
	}
	raw := e.net.wrapConn(dialed)

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = raw.Close()
		return nil, errors.New("transport: endpoint closed")
	}
	if existing, ok := e.conns[to]; ok {
		e.mu.Unlock()
		_ = raw.Close()
		return existing, nil
	}
	c := e.newConn(to, raw)
	e.conns[to] = c
	e.mu.Unlock()

	// Outgoing connections are also read: the peer may reply on the same
	// socket or, more commonly here, simply never write. Reading reaps EOFs.
	e.net.rt.Go("tcp-read/"+string(e.id), func() { e.readLoop(raw) })
	return c, nil
}

func (e *TCPEndpoint) dropConn(to wire.NodeID, c *tcpConn) {
	e.mu.Lock()
	if e.conns[to] == c {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	c.shutdown()
	if st := e.net.getStats(); st != nil {
		st.ConnDrops.Inc()
	}
}

func (e *TCPEndpoint) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		wrapped := e.net.wrapConn(conn)
		e.net.rt.Go("tcp-read/"+string(e.id), func() { e.readLoop(wrapped) })
	}
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	st := e.net.getStats()
	dec := wire.NewDecoder(conn)
	learned := false
	for {
		var m wire.Message
		if err := dec.Decode(&m); err != nil {
			if err != io.EOF {
				_ = conn.Close()
			}
			return
		}
		if st != nil {
			st.MsgsRecv.Inc()
		}
		if !learned && m.From != "" {
			// Remember the sender's connection so replies can travel back
			// over it — this is how replicas answer clients that have no
			// entry in the static address registry — and flush anything
			// buffered for that sender through the normal send queue, so
			// flushed messages get the same stats accounting as Send.
			learned = true
			e.mu.Lock()
			target, exists := e.conns[m.From]
			if !exists && !e.closed {
				target = e.newConn(m.From, conn)
				e.conns[m.From] = target
			}
			flush := e.pending[m.From]
			delete(e.pending, m.From)
			e.mu.Unlock()
			for i := range flush {
				if target == nil || !target.enqueue(flush[i]) {
					if st != nil {
						st.Dropped.Inc()
					}
				}
			}
		}
		e.inbox.Put(m)
	}
}

// brokenEndpoint satisfies Endpoint for nodes whose listener failed; every
// operation is inert and the error is available via EndpointErr.
type brokenEndpoint struct {
	id  wire.NodeID
	err error
}

var _ Endpoint = (*brokenEndpoint)(nil)

func (b *brokenEndpoint) ID() wire.NodeID            { return b.id }
func (b *brokenEndpoint) Send(wire.NodeID, any)      {}
func (b *brokenEndpoint) Recv() (wire.Message, bool) { return wire.Message{}, false }
func (b *brokenEndpoint) Close()                     {}

// EndpointErr returns the bind error of an endpoint created through
// Network.Endpoint, or nil if it is healthy.
func EndpointErr(e Endpoint) error {
	if b, ok := e.(*brokenEndpoint); ok {
		return b.err
	}
	return nil
}
