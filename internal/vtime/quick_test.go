package vtime

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickTimersFireInDeadlineOrder: any set of timer durations fires in
// nondecreasing deadline order, with equal deadlines in creation order.
func TestQuickTimersFireInDeadlineOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		rt := Virtual()
		defer rt.Stop()
		type fired struct {
			idx int
			at  time.Duration
		}
		got := make([]fired, 0, len(raw))
		done := NewMailbox[struct{}](rt, "done")
		for i, r := range raw {
			i := i
			d := time.Duration(r%1000) * time.Millisecond
			rt.After(d, "t", func() {
				now := rt.Now()
				rt.Lock()
				got = append(got, fired{idx: i, at: now})
				rt.Unlock()
				done.Put(struct{}{})
			})
		}
		ok := true
		Run(rt, "main", func() {
			for range raw {
				done.Get()
			}
		})
		// Fire times must be the sorted durations.
		want := make([]time.Duration, len(raw))
		for i, r := range raw {
			want[i] = time.Duration(r%1000) * time.Millisecond
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		// got is appended under the kernel lock but callbacks of distinct
		// deadlines cannot overlap in virtual time; compare the observed
		// times sorted by index of arrival.
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].at != want[i] {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickParallelSleepMax: N goroutines sleeping d_i concurrently finish
// at exactly max(d_i) — the unlimited-CPU model of the paper.
func TestQuickParallelSleepMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		rt := Virtual()
		defer rt.Stop()
		var max time.Duration
		for _, r := range raw {
			d := time.Duration(r%500) * time.Millisecond
			if d > max {
				max = d
			}
		}
		var finished time.Duration
		Run(rt, "main", func() {
			done := NewMailbox[struct{}](rt, "done")
			for _, r := range raw {
				d := time.Duration(r%500) * time.Millisecond
				rt.Go("sleeper", func() {
					rt.Sleep(d)
					done.Put(struct{}{})
				})
			}
			for range raw {
				done.Get()
			}
			finished = rt.Now()
		})
		return finished == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickMailboxPreservesFIFO: any put sequence is received in order.
func TestQuickMailboxPreservesFIFO(t *testing.T) {
	f := func(values []int32) bool {
		rt := Virtual()
		defer rt.Stop()
		ok := true
		Run(rt, "main", func() {
			m := NewMailbox[int32](rt, "m")
			for _, v := range values {
				m.Put(v)
			}
			for _, want := range values {
				got, alive := m.Get()
				if !alive || got != want {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
