package vtime

import (
	"testing"
	"time"
)

// The real runtime runs the same contract over wall-clock time; these tests
// use short durations and generous assertions to stay robust on loaded CI.

func TestRealSleepAndNow(t *testing.T) {
	rt := Real()
	defer rt.Stop()
	before := rt.Now()
	rt.Sleep(20 * time.Millisecond)
	if got := rt.Now() - before; got < 15*time.Millisecond {
		t.Errorf("slept %v, want >= 15ms", got)
	}
}

func TestRealParkUnpark(t *testing.T) {
	rt := Real()
	defer rt.Stop()
	p := NewParker("p")
	done := make(chan struct{})
	rt.Go("waker", func() {
		time.Sleep(10 * time.Millisecond)
		rt.Lock()
		rt.Unpark(p)
		rt.Unlock()
	})
	rt.Go("sleeper", func() {
		rt.Lock()
		rt.Park(p)
		rt.Unlock()
		close(done)
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Park never woke")
	}
}

func TestRealUnparkPermit(t *testing.T) {
	rt := Real()
	defer rt.Stop()
	p := NewParker("p")
	rt.Lock()
	rt.Unpark(p)
	rt.Park(p) // must not block
	rt.Unlock()
}

func TestRealParkTimeout(t *testing.T) {
	rt := Real()
	defer rt.Stop()
	p := NewParker("p")
	rt.Lock()
	timedOut := rt.ParkTimeout(p, 10*time.Millisecond)
	rt.Unlock()
	if !timedOut {
		t.Error("ParkTimeout = false, want true")
	}
}

func TestRealParkTimeoutUnparkedEarly(t *testing.T) {
	rt := Real()
	defer rt.Stop()
	p := NewParker("p")
	rt.Go("waker", func() {
		time.Sleep(5 * time.Millisecond)
		rt.Lock()
		rt.Unpark(p)
		rt.Unlock()
	})
	rt.Lock()
	timedOut := rt.ParkTimeout(p, 5*time.Second)
	rt.Unlock()
	if timedOut {
		t.Error("ParkTimeout = true, want false (unparked)")
	}
}

func TestRealAfterAndStopTimer(t *testing.T) {
	rt := Real()
	defer rt.Stop()
	fired := make(chan struct{}, 1)
	tm := rt.After(5*time.Millisecond, "t", func() { fired <- struct{}{} })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	tm2 := rt.After(time.Hour, "never", func() { t.Error("stopped timer fired") })
	if !rt.StopTimer(tm2) {
		t.Error("StopTimer = false, want true")
	}
	if rt.StopTimer(tm) && rt.StopTimer(nil) {
		t.Error("StopTimer on fired/nil timer = true, want false")
	}
}

func TestRealStopSuppressesCallbacks(t *testing.T) {
	rt := Real()
	rt.After(5*time.Millisecond, "t", func() { t.Error("callback ran after Stop") })
	rt.Stop()
	time.Sleep(20 * time.Millisecond)
}

func TestRealMailbox(t *testing.T) {
	rt := Real()
	defer rt.Stop()
	m := NewMailbox[int](rt, "m")
	done := make(chan int, 1)
	rt.Go("reader", func() {
		v, _ := m.Get()
		done <- v
	})
	time.Sleep(5 * time.Millisecond)
	m.Put(42)
	select {
	case v := <-done:
		if v != 42 {
			t.Errorf("got %d, want 42", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("mailbox Get never returned")
	}
}
