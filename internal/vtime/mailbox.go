package vtime

import "time"

// Mailbox is an unbounded FIFO queue integrated with a Runtime: Get parks
// the calling tracked goroutine until an item arrives, so the virtual kernel
// correctly accounts for the blocked reader. It is the building block for
// message queues throughout the middleware.
//
// All methods acquire the runtime lock internally; call them without it.
type Mailbox[T any] struct {
	rt      Runtime
	name    string
	items   []T
	waiters []*Parker
	closed  bool
}

// NewMailbox returns an empty mailbox on rt. The name is used in diagnostic
// dumps for parked readers.
func NewMailbox[T any](rt Runtime, name string) *Mailbox[T] {
	return &Mailbox[T]{rt: rt, name: name}
}

// Put appends v and wakes the oldest blocked reader, if any. Putting to a
// closed mailbox is a silent no-op (late messages after shutdown).
func (m *Mailbox[T]) Put(v T) {
	m.rt.Lock()
	defer m.rt.Unlock()
	if m.closed {
		return
	}
	m.items = append(m.items, v)
	m.wakeOneLocked()
}

// Get blocks until an item is available or the mailbox is closed. The second
// result is false if the mailbox was closed and drained.
func (m *Mailbox[T]) Get() (T, bool) {
	v, ok, _ := m.get(0)
	return v, ok
}

// GetTimeout is Get with a deadline; the third result reports a timeout.
func (m *Mailbox[T]) GetTimeout(d time.Duration) (v T, ok bool, timedOut bool) {
	return m.get(d)
}

func (m *Mailbox[T]) get(d time.Duration) (v T, ok bool, timedOut bool) {
	m.rt.Lock()
	defer m.rt.Unlock()
	for len(m.items) == 0 {
		if m.closed {
			return v, false, false
		}
		p := NewParker(m.name + "/get")
		m.waiters = append(m.waiters, p)
		if m.rt.ParkTimeout(p, d) {
			m.removeWaiterLocked(p)
			return v, false, true
		}
	}
	v = m.items[0]
	m.items[0] = *new(T)
	m.items = m.items[1:]
	return v, true, false
}

// TryGet pops an item without blocking.
func (m *Mailbox[T]) TryGet() (T, bool) {
	m.rt.Lock()
	defer m.rt.Unlock()
	var v T
	if len(m.items) == 0 {
		return v, false
	}
	v = m.items[0]
	m.items[0] = *new(T)
	m.items = m.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int {
	m.rt.Lock()
	defer m.rt.Unlock()
	return len(m.items)
}

// Close wakes all blocked readers; subsequent Gets return ok=false once the
// queue is drained, and Puts are dropped.
func (m *Mailbox[T]) Close() {
	m.rt.Lock()
	defer m.rt.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	for _, p := range m.waiters {
		m.rt.Unpark(p)
	}
	m.waiters = nil
}

func (m *Mailbox[T]) wakeOneLocked() {
	if len(m.waiters) == 0 {
		return
	}
	p := m.waiters[0]
	m.waiters[0] = nil
	m.waiters = m.waiters[1:]
	m.rt.Unpark(p)
}

func (m *Mailbox[T]) removeWaiterLocked(p *Parker) {
	for i, w := range m.waiters {
		if w == p {
			m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
			return
		}
	}
}
