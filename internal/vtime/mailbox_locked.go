package vtime

// PutLocked is Put for callers that already hold the runtime lock. It
// exists so a state machine can atomically update its state and emit
// deliveries in a guaranteed order: two goroutines that each (under the
// lock) advance the state and enqueue the corresponding items can never
// interleave their enqueues out of order.
func (m *Mailbox[T]) PutLocked(v T) {
	if m.closed {
		return
	}
	m.items = append(m.items, v)
	m.wakeOneLocked()
}
