// Package vtime provides the execution substrate shared by the whole
// middleware stack: a Runtime abstraction over time, goroutine tracking,
// and parking/unparking of threads.
//
// Two implementations exist:
//
//   - Virtual() — a discrete-event kernel. All coordination in the stack is
//     written as a monitor over the single kernel lock. Virtual time only
//     advances when every tracked goroutine is parked (on a lock queue, a
//     condition variable, a message in flight, or a simulated computation).
//     This reproduces the paper's measurement methodology — computations are
//     "simulated by suspending the request-handler thread for the duration
//     of the computation time" — while making experiments fast and
//     repeatable, and it detects global deadlocks exactly.
//
//   - Real() — the same interface over sync primitives and wall-clock time,
//     used for real deployments (TCP transport) and validation runs.
//
// Conventions (enforced by the implementations where possible):
//
//   - Every goroutine that interacts with the runtime must be spawned via
//     Go (or wrapped with Run). Untracked goroutines may only communicate
//     with tracked ones through plain Go channels.
//   - Park, ParkTimeout and Unpark must be called while holding the runtime
//     lock; Park releases the lock while blocked and reacquires it before
//     returning, like sync.Cond.Wait.
//   - Sleep and Now must be called without holding the runtime lock.
//   - Timer callbacks run as fresh tracked goroutines.
package vtime

import "time"

// Runtime is the execution substrate: a clock, a goroutine tracker, and a
// global monitor lock with park/unpark thread-blocking primitives.
type Runtime interface {
	// Now returns the current time as an offset from the runtime's start.
	Now() time.Duration

	// NowLocked is Now for callers that already hold the runtime lock
	// (schedulers timestamp scheduling decisions while updating state).
	NowLocked() time.Duration

	// Go spawns a tracked goroutine. The name is used in deadlock and
	// diagnostic dumps. Must be called without the runtime lock held.
	Go(name string, fn func())

	// GoLocked is Go for callers that already hold the runtime lock
	// (schedulers spawn threads while updating their state).
	GoLocked(name string, fn func())

	// Lock acquires the global runtime lock. All middleware state machines
	// are monitors over this lock.
	Lock()
	// Unlock releases the global runtime lock.
	Unlock()

	// Park blocks the calling tracked goroutine until p is unparked.
	// Must be called with the runtime lock held; the lock is released while
	// parked and reacquired before Park returns. If p holds a permit from an
	// earlier Unpark, Park consumes it and returns immediately.
	Park(p *Parker)

	// ParkTimeout is Park with a deadline. It reports whether the wakeup was
	// caused by the timeout (true) rather than by Unpark (false).
	// d <= 0 blocks forever, like Park.
	ParkTimeout(p *Parker, d time.Duration) bool

	// Unpark wakes the goroutine parked on p, or deposits a permit if none
	// is parked. Must be called with the runtime lock held.
	Unpark(p *Parker)

	// Sleep blocks the calling tracked goroutine for d. It models both
	// simulated computation (the paper's 100 ms "compute" steps) and real
	// waiting. Must be called without the runtime lock.
	Sleep(d time.Duration)

	// After schedules fn to run as a new tracked goroutine once d has
	// elapsed. The returned timer can be stopped before it fires.
	// Must be called without the runtime lock held.
	After(d time.Duration, name string, fn func()) *Timer

	// AfterLocked is After for callers that already hold the runtime lock
	// (state machines frequently arm timers while updating their state).
	AfterLocked(d time.Duration, name string, fn func()) *Timer

	// StopTimer cancels t, reporting whether it was still pending. Must be
	// called without the runtime lock held. Stopping a nil or already-fired
	// timer is a no-op that returns false.
	StopTimer(t *Timer) bool

	// StopTimerLocked is StopTimer for callers holding the runtime lock.
	StopTimerLocked(t *Timer) bool

	// Stop shuts the runtime down: pending timers are dropped and new timers
	// become no-ops. Tracked goroutines that are still parked are not woken;
	// Stop is for tearing down a finished simulation or deployment.
	Stop()
}

// Parker is a one-goroutine parking slot with binary-permit semantics
// (like java.util.concurrent.LockSupport). The zero value is not usable;
// create parkers with NewParker.
type Parker struct {
	name     string
	ch       chan struct{}
	parked   bool
	permit   bool
	timedOut bool
	timer    *Timer
}

// NewParker returns a parker with the given diagnostic name.
func NewParker(name string) *Parker {
	return &Parker{name: name, ch: make(chan struct{}, 1)}
}

// Name returns the parker's diagnostic name.
func (p *Parker) Name() string { return p.name }

// Timer is a handle to a scheduled callback.
type Timer struct {
	deadline  time.Duration
	seq       uint64
	name      string
	fire      func() // virtual mode: invoked with the kernel lock held
	cancelled bool
	index     int         // heap index (virtual mode)
	stopReal  func() bool // real mode cancellation
}

// Deadline returns the absolute runtime time at which the timer fires.
func (t *Timer) Deadline() time.Duration { return t.deadline }

// Run executes fn on a tracked goroutine and blocks the caller until it
// returns. It is the bridge from untracked code (main, tests, benchmarks)
// into a runtime.
func Run(rt Runtime, name string, fn func()) {
	done := make(chan struct{})
	rt.Go(name, func() {
		defer close(done)
		fn()
	})
	<-done
}
