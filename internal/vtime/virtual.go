package vtime

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// DeadlockInfo describes a global deadlock detected by the virtual kernel:
// every tracked goroutine is parked and no timer is pending, so virtual time
// can never advance again.
type DeadlockInfo struct {
	// Now is the virtual time at which the deadlock was detected.
	Now time.Duration
	// Parked lists the diagnostic names of all parked goroutines.
	Parked []string
}

func (d DeadlockInfo) String() string {
	return fmt.Sprintf("vtime: global deadlock at %v; parked: [%s]",
		d.Now, strings.Join(d.Parked, ", "))
}

// VirtualRuntime is the discrete-event implementation of Runtime.
// Create one with Virtual.
type VirtualRuntime struct {
	mu       sync.Mutex
	now      time.Duration
	runnable int
	live     int
	seq      uint64
	timers   timerHeap
	parked   map[*Parker]struct{}
	stopped  bool

	// onDeadlock, if non-nil, is invoked (with the kernel lock held) when a
	// global deadlock is detected. If it returns true the kernel assumes the
	// handler resolved the situation (e.g. by recording it for a test);
	// otherwise the kernel panics with the DeadlockInfo.
	onDeadlock func(DeadlockInfo) bool
}

var _ Runtime = (*VirtualRuntime)(nil)

// Virtual returns a new discrete-event runtime starting at time zero.
func Virtual() *VirtualRuntime {
	return &VirtualRuntime{parked: make(map[*Parker]struct{})}
}

// SetDeadlockHandler installs fn as the global-deadlock handler. fn runs
// with the kernel lock held and must not block; returning true suppresses
// the default panic. Used by tests that assert deadlock behaviour (the
// paper's motivation for multithreading, Section 2).
func (rt *VirtualRuntime) SetDeadlockHandler(fn func(DeadlockInfo) bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.onDeadlock = fn
}

// Now implements Runtime.
func (rt *VirtualRuntime) Now() time.Duration {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.now
}

// NowLocked implements Runtime.
func (rt *VirtualRuntime) NowLocked() time.Duration { return rt.now }

// Go implements Runtime.
func (rt *VirtualRuntime) Go(name string, fn func()) {
	rt.mu.Lock()
	rt.GoLocked(name, fn)
	rt.mu.Unlock()
}

// GoLocked implements Runtime.
func (rt *VirtualRuntime) GoLocked(_ string, fn func()) {
	rt.runnable++
	rt.live++
	go func() {
		defer func() {
			rt.mu.Lock()
			rt.runnable--
			rt.live--
			if rt.runnable == 0 {
				rt.advanceLocked()
			}
			rt.mu.Unlock()
		}()
		fn()
	}()
}

// Lock implements Runtime.
func (rt *VirtualRuntime) Lock() { rt.mu.Lock() }

// Unlock implements Runtime.
func (rt *VirtualRuntime) Unlock() { rt.mu.Unlock() }

// Park implements Runtime.
func (rt *VirtualRuntime) Park(p *Parker) {
	rt.parkTimeoutLocked(p, 0)
}

// ParkTimeout implements Runtime.
func (rt *VirtualRuntime) ParkTimeout(p *Parker, d time.Duration) bool {
	return rt.parkTimeoutLocked(p, d)
}

func (rt *VirtualRuntime) parkTimeoutLocked(p *Parker, d time.Duration) bool {
	if p.permit {
		p.permit = false
		return false
	}
	p.parked = true
	p.timedOut = false
	if d > 0 {
		p.timer = rt.addTimerLocked(d, p.name+"/timeout", func() {
			// Runs with the kernel lock held during advanceLocked.
			if p.parked {
				p.parked = false
				p.timedOut = true
				delete(rt.parked, p)
				rt.runnable++
				p.ch <- struct{}{}
			}
		})
	}
	rt.parked[p] = struct{}{}
	rt.runnable--
	if rt.runnable == 0 {
		rt.advanceLocked()
	}
	rt.mu.Unlock()
	<-p.ch
	rt.mu.Lock()
	if p.timer != nil {
		p.timer.cancelled = true
		p.timer = nil
	}
	return p.timedOut
}

// Unpark implements Runtime.
func (rt *VirtualRuntime) Unpark(p *Parker) {
	if !p.parked {
		p.permit = true
		return
	}
	p.parked = false
	delete(rt.parked, p)
	rt.runnable++
	p.ch <- struct{}{}
}

// Sleep implements Runtime.
func (rt *VirtualRuntime) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	rt.mu.Lock()
	rt.parkTimeoutLocked(NewParker("sleep"), d)
	rt.mu.Unlock()
}

// After implements Runtime. The callback runs as a new tracked goroutine.
func (rt *VirtualRuntime) After(d time.Duration, name string, fn func()) *Timer {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.AfterLocked(d, name, fn)
}

// AfterLocked implements Runtime.
func (rt *VirtualRuntime) AfterLocked(d time.Duration, name string, fn func()) *Timer {
	if rt.stopped {
		return &Timer{cancelled: true}
	}
	return rt.addTimerLocked(d, name, func() {
		// goLocked-equivalent: we already hold the kernel lock.
		rt.runnable++
		rt.live++
		go func() {
			defer func() {
				rt.mu.Lock()
				rt.runnable--
				rt.live--
				if rt.runnable == 0 {
					rt.advanceLocked()
				}
				rt.mu.Unlock()
			}()
			fn()
		}()
	})
}

// Stop implements Runtime.
func (rt *VirtualRuntime) Stop() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.stopped = true
	rt.timers = nil
}

// StopTimer cancels t. It reports whether the timer was pending (and is now
// guaranteed not to fire). Must be called without the runtime lock held.
func (rt *VirtualRuntime) StopTimer(t *Timer) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.StopTimerLocked(t)
}

// StopTimerLocked implements Runtime.
func (rt *VirtualRuntime) StopTimerLocked(t *Timer) bool {
	if t == nil || t.cancelled {
		return false
	}
	t.cancelled = true
	return true
}

func (rt *VirtualRuntime) addTimerLocked(d time.Duration, name string, fire func()) *Timer {
	rt.seq++
	t := &Timer{deadline: rt.now + d, seq: rt.seq, name: name, fire: fire}
	heap.Push(&rt.timers, t)
	return t
}

// advanceLocked is called whenever the runnable count reaches zero. It fires
// timers (advancing virtual time) until some goroutine becomes runnable
// again, the runtime is stopped, or a deadlock is detected.
func (rt *VirtualRuntime) advanceLocked() {
	for rt.runnable == 0 && !rt.stopped {
		// Drop cancelled timers lazily.
		for len(rt.timers) > 0 && rt.timers[0].cancelled {
			heap.Pop(&rt.timers)
		}
		if len(rt.timers) == 0 {
			if rt.live == 0 {
				return // clean quiescence: every tracked goroutine finished
			}
			info := DeadlockInfo{Now: rt.now, Parked: rt.parkedNamesLocked()}
			if rt.onDeadlock != nil && rt.onDeadlock(info) {
				return
			}
			// Terminal: stop the kernel and release the lock before
			// panicking so that a recovering test binary does not wedge on
			// the kernel mutex.
			rt.stopped = true
			rt.mu.Unlock()
			panic(info.String())
		}
		t := heap.Pop(&rt.timers).(*Timer)
		if t.deadline > rt.now {
			rt.now = t.deadline
		}
		t.fire()
	}
}

func (rt *VirtualRuntime) parkedNamesLocked() []string {
	names := make([]string, 0, len(rt.parked))
	for p := range rt.parked {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}

// timerHeap orders timers by deadline, breaking ties by creation sequence so
// equal-deadline timers fire in a deterministic order.
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
