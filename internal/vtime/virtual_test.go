package vtime

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualSleepAdvancesTime(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		rt.Sleep(100 * time.Millisecond)
		if got := rt.Now(); got != 100*time.Millisecond {
			t.Errorf("Now() = %v, want 100ms", got)
		}
		rt.Sleep(250 * time.Millisecond)
		if got := rt.Now(); got != 350*time.Millisecond {
			t.Errorf("Now() = %v, want 350ms", got)
		}
	})
}

func TestVirtualParallelSleepsOverlap(t *testing.T) {
	// N goroutines each sleeping 100ms concurrently must finish at t=100ms,
	// not N*100ms: virtual time models unlimited CPUs, as the paper assumes.
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		done := NewMailbox[time.Duration](rt, "done")
		for i := 0; i < 10; i++ {
			rt.Go("worker", func() {
				rt.Sleep(100 * time.Millisecond)
				done.Put(rt.Now())
			})
		}
		for i := 0; i < 10; i++ {
			at, ok := done.Get()
			if !ok || at != 100*time.Millisecond {
				t.Errorf("worker finished at %v (ok=%v), want 100ms", at, ok)
			}
		}
	})
}

func TestVirtualZeroAndNegativeSleep(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		rt.Sleep(0)
		rt.Sleep(-time.Second)
		if got := rt.Now(); got != 0 {
			t.Errorf("Now() = %v, want 0", got)
		}
	})
}

func TestVirtualParkUnpark(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		p := NewParker("blocked")
		order := make(chan string, 4)
		rt.Go("waker", func() {
			rt.Sleep(50 * time.Millisecond)
			order <- "waking"
			rt.Lock()
			rt.Unpark(p)
			rt.Unlock()
		})
		rt.Lock()
		rt.Park(p)
		rt.Unlock()
		order <- "woken"
		if got := rt.Now(); got != 50*time.Millisecond {
			t.Errorf("woken at %v, want 50ms", got)
		}
		if first := <-order; first != "waking" {
			t.Errorf("order: got %q first, want waking", first)
		}
	})
}

func TestVirtualUnparkPermitBeforePark(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		p := NewParker("p")
		rt.Lock()
		rt.Unpark(p) // deposits a permit
		rt.Park(p)   // consumes it, returns immediately
		rt.Unlock()
		if got := rt.Now(); got != 0 {
			t.Errorf("Now() = %v, want 0 (no blocking)", got)
		}
	})
}

func TestVirtualParkTimeoutFires(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		p := NewParker("p")
		rt.Lock()
		timedOut := rt.ParkTimeout(p, 30*time.Millisecond)
		rt.Unlock()
		if !timedOut {
			t.Error("ParkTimeout = false, want true (timeout)")
		}
		if got := rt.Now(); got != 30*time.Millisecond {
			t.Errorf("Now() = %v, want 30ms", got)
		}
	})
}

func TestVirtualParkTimeoutUnparkedEarly(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		p := NewParker("p")
		rt.Go("waker", func() {
			rt.Sleep(10 * time.Millisecond)
			rt.Lock()
			rt.Unpark(p)
			rt.Unlock()
		})
		rt.Lock()
		timedOut := rt.ParkTimeout(p, 500*time.Millisecond)
		rt.Unlock()
		if timedOut {
			t.Error("ParkTimeout = true, want false (unparked early)")
		}
		if got := rt.Now(); got != 10*time.Millisecond {
			t.Errorf("Now() = %v, want 10ms", got)
		}
		// The cancelled timeout timer must not fire later.
		rt.Sleep(time.Second)
		if got := rt.Now(); got != 1010*time.Millisecond {
			t.Errorf("Now() = %v, want 1010ms", got)
		}
	})
}

func TestVirtualAfterFiresInOrder(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		got := make(chan int, 3)
		fired := NewParker("collector")
		n := 0
		record := func(id int) func() {
			return func() {
				rt.Lock()
				got <- id
				n++
				if n == 3 {
					rt.Unpark(fired)
				}
				rt.Unlock()
			}
		}
		rt.After(30*time.Millisecond, "t3", record(3))
		rt.After(10*time.Millisecond, "t1", record(1))
		rt.After(20*time.Millisecond, "t2", record(2))
		rt.Lock()
		rt.Park(fired)
		rt.Unlock()
		for want := 1; want <= 3; want++ {
			if id := <-got; id != want {
				t.Errorf("timer order: got %d, want %d", id, want)
			}
		}
	})
}

func TestVirtualEqualDeadlineTimersFireInCreationOrder(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		got := make(chan int, 5)
		var mu sync.Mutex
		remaining := 5
		done := NewParker("done")
		for i := 0; i < 5; i++ {
			i := i
			rt.After(10*time.Millisecond, "tie", func() {
				mu.Lock()
				got <- i
				remaining--
				last := remaining == 0
				mu.Unlock()
				if last {
					rt.Lock()
					rt.Unpark(done)
					rt.Unlock()
				}
			})
		}
		rt.Lock()
		rt.Park(done)
		rt.Unlock()
		// Equal-deadline timers fire in creation order, but each callback is
		// a fresh goroutine; the kernel fires them one at a time only while
		// nothing is runnable, so ordering of the channel sends may still
		// interleave. We assert only the full set arrived.
		seen := make(map[int]bool)
		for i := 0; i < 5; i++ {
			seen[<-got] = true
		}
		if len(seen) != 5 {
			t.Errorf("got %d distinct timer ids, want 5", len(seen))
		}
	})
}

func TestVirtualStopTimerPreventsFire(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		fired := false
		tm := rt.After(10*time.Millisecond, "t", func() { fired = true })
		if !rt.StopTimer(tm) {
			t.Error("StopTimer = false, want true")
		}
		if rt.StopTimer(tm) {
			t.Error("second StopTimer = true, want false")
		}
		rt.Sleep(100 * time.Millisecond)
		if fired {
			t.Error("stopped timer fired")
		}
	})
}

func TestVirtualDeadlockDetection(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	detected := make(chan DeadlockInfo, 1)
	rt.SetDeadlockHandler(func(info DeadlockInfo) bool {
		select {
		case detected <- info:
		default:
		}
		// Resolve by unparking everything so the test can finish.
		for p := range rt.parked {
			rt.Unpark(p)
		}
		return true
	})
	Run(rt, "main", func() {
		p := NewParker("stuck-thread")
		rt.Lock()
		rt.Park(p) // nobody will ever unpark this
		rt.Unlock()
	})
	info := <-detected
	if len(info.Parked) != 1 || info.Parked[0] != "stuck-thread" {
		t.Errorf("deadlock parked = %v, want [stuck-thread]", info.Parked)
	}
}

func TestVirtualDeadlockPanicsWithoutHandler(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	panicked := make(chan any, 1)
	done := make(chan struct{})
	rt.Go("main", func() {
		defer close(done)
		defer func() { panicked <- recover() }()
		p := NewParker("alone")
		rt.Lock()
		rt.Park(p)
		rt.Unlock()
	})
	<-done
	if v := <-panicked; v == nil {
		t.Fatal("expected deadlock panic, got none")
	}
}

func TestVirtualStopDropsTimers(t *testing.T) {
	rt := Virtual()
	fired := make(chan struct{}, 1)
	// Registered from untracked code: with no tracked goroutine running, the
	// kernel has no occasion to advance, so the timer stays pending.
	rt.After(time.Hour, "never", func() { fired <- struct{}{} })
	rt.Stop()
	select {
	case <-fired:
		t.Error("timer fired after Stop")
	default:
	}
	// After on a stopped runtime is a no-op.
	tm := rt.After(time.Millisecond, "dead", func() { fired <- struct{}{} })
	if rt.StopTimer(tm) {
		t.Error("StopTimer on post-Stop timer = true, want false")
	}
}

func TestVirtualManyGoroutinesStress(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	const n = 200
	Run(rt, "main", func() {
		results := NewMailbox[time.Duration](rt, "results")
		for i := 0; i < n; i++ {
			d := time.Duration(i%17+1) * time.Millisecond
			rt.Go("w", func() {
				rt.Sleep(d)
				rt.Sleep(d)
				results.Put(rt.Now())
			})
		}
		max := time.Duration(0)
		for i := 0; i < n; i++ {
			if v, ok := results.Get(); ok && v > max {
				max = v
			}
		}
		if max != 34*time.Millisecond {
			t.Errorf("latest finish = %v, want 34ms", max)
		}
	})
}
