package vtime

import (
	"sync"
	"time"
)

// RealRuntime implements Runtime over wall-clock time and standard sync
// primitives. It is used for real deployments (TCP transport) and for
// validating that results obtained under the virtual kernel carry over.
type RealRuntime struct {
	mu      sync.Mutex
	start   time.Time
	stopped bool
}

var _ Runtime = (*RealRuntime)(nil)

// Real returns a new wall-clock runtime starting now.
func Real() *RealRuntime {
	return &RealRuntime{start: time.Now()}
}

// Now implements Runtime.
func (rt *RealRuntime) Now() time.Duration { return time.Since(rt.start) }

// NowLocked implements Runtime.
func (rt *RealRuntime) NowLocked() time.Duration { return time.Since(rt.start) }

// Go implements Runtime.
func (rt *RealRuntime) Go(_ string, fn func()) { go fn() }

// GoLocked implements Runtime.
func (rt *RealRuntime) GoLocked(_ string, fn func()) { go fn() }

// Lock implements Runtime.
func (rt *RealRuntime) Lock() { rt.mu.Lock() }

// Unlock implements Runtime.
func (rt *RealRuntime) Unlock() { rt.mu.Unlock() }

// Park implements Runtime.
func (rt *RealRuntime) Park(p *Parker) {
	if p.permit {
		p.permit = false
		return
	}
	p.parked = true
	rt.mu.Unlock()
	<-p.ch
	rt.mu.Lock()
}

// ParkTimeout implements Runtime.
func (rt *RealRuntime) ParkTimeout(p *Parker, d time.Duration) bool {
	if d <= 0 {
		rt.Park(p)
		return false
	}
	if p.permit {
		p.permit = false
		return false
	}
	p.parked = true
	rt.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.ch:
		rt.mu.Lock()
		return false
	case <-t.C:
		rt.mu.Lock()
		if !p.parked {
			// An Unpark raced with the timeout and won: it already cleared
			// parked and deposited a wake token under the lock. Consume it
			// and report a normal wakeup.
			<-p.ch
			return false
		}
		p.parked = false
		return true
	}
}

// Unpark implements Runtime.
func (rt *RealRuntime) Unpark(p *Parker) {
	if !p.parked {
		p.permit = true
		return
	}
	p.parked = false
	p.ch <- struct{}{}
}

// Sleep implements Runtime.
func (rt *RealRuntime) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// After implements Runtime.
func (rt *RealRuntime) After(d time.Duration, name string, fn func()) *Timer {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.AfterLocked(d, name, fn)
}

// AfterLocked implements Runtime.
func (rt *RealRuntime) AfterLocked(d time.Duration, name string, fn func()) *Timer {
	t := &Timer{deadline: rt.Now() + d, name: name}
	if rt.stopped {
		t.cancelled = true
		return t
	}
	af := time.AfterFunc(d, func() {
		rt.mu.Lock()
		dead := rt.stopped
		rt.mu.Unlock()
		if !dead {
			fn()
		}
	})
	t.stopReal = af.Stop
	return t
}

// StopTimer implements Runtime.
func (rt *RealRuntime) StopTimer(t *Timer) bool {
	return rt.StopTimerLocked(t)
}

// StopTimerLocked implements Runtime. (The real implementation has no
// lock-sensitive state; time.Timer.Stop is safe either way.)
func (rt *RealRuntime) StopTimerLocked(t *Timer) bool {
	if t == nil || t.cancelled || t.stopReal == nil {
		return false
	}
	t.cancelled = true
	return t.stopReal()
}

// Stop implements Runtime.
func (rt *RealRuntime) Stop() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.stopped = true
}
