package vtime

import (
	"testing"
	"time"
)

func TestMailboxPutGetFIFO(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		m := NewMailbox[int](rt, "m")
		for i := 1; i <= 5; i++ {
			m.Put(i)
		}
		if got := m.Len(); got != 5 {
			t.Errorf("Len = %d, want 5", got)
		}
		for i := 1; i <= 5; i++ {
			v, ok := m.Get()
			if !ok || v != i {
				t.Errorf("Get = (%d, %v), want (%d, true)", v, ok, i)
			}
		}
	})
}

func TestMailboxGetBlocksUntilPut(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		m := NewMailbox[string](rt, "m")
		rt.Go("producer", func() {
			rt.Sleep(40 * time.Millisecond)
			m.Put("hello")
		})
		v, ok := m.Get()
		if !ok || v != "hello" {
			t.Errorf("Get = (%q, %v), want (hello, true)", v, ok)
		}
		if now := rt.Now(); now != 40*time.Millisecond {
			t.Errorf("unblocked at %v, want 40ms", now)
		}
	})
}

func TestMailboxTryGet(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		m := NewMailbox[int](rt, "m")
		if _, ok := m.TryGet(); ok {
			t.Error("TryGet on empty = true, want false")
		}
		m.Put(7)
		if v, ok := m.TryGet(); !ok || v != 7 {
			t.Errorf("TryGet = (%d, %v), want (7, true)", v, ok)
		}
	})
}

func TestMailboxGetTimeout(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		m := NewMailbox[int](rt, "m")
		_, ok, timedOut := m.GetTimeout(25 * time.Millisecond)
		if ok || !timedOut {
			t.Errorf("GetTimeout = (ok=%v, timedOut=%v), want (false, true)", ok, timedOut)
		}
		if now := rt.Now(); now != 25*time.Millisecond {
			t.Errorf("timed out at %v, want 25ms", now)
		}
		m.Put(1)
		v, ok, timedOut := m.GetTimeout(25 * time.Millisecond)
		if !ok || timedOut || v != 1 {
			t.Errorf("GetTimeout = (%d, %v, %v), want (1, true, false)", v, ok, timedOut)
		}
	})
}

func TestMailboxClose(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		m := NewMailbox[int](rt, "m")
		results := NewMailbox[bool](rt, "results")
		rt.Go("reader", func() {
			_, ok := m.Get()
			results.Put(ok)
		})
		rt.Sleep(10 * time.Millisecond) // let the reader park
		m.Close()
		ok, _ := results.Get()
		if ok {
			t.Error("Get after Close = ok, want !ok")
		}
		// Put after close is dropped.
		m.Put(9)
		if _, ok := m.TryGet(); ok {
			t.Error("TryGet found item put after Close")
		}
		m.Close() // double close is a no-op
	})
}

func TestMailboxCloseDrainsBufferedItems(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		m := NewMailbox[int](rt, "m")
		m.Put(1)
		m.Put(2)
		m.Close()
		if v, ok := m.Get(); !ok || v != 1 {
			t.Errorf("Get = (%d, %v), want (1, true)", v, ok)
		}
		if v, ok := m.Get(); !ok || v != 2 {
			t.Errorf("Get = (%d, %v), want (2, true)", v, ok)
		}
		if _, ok := m.Get(); ok {
			t.Error("Get on drained closed mailbox = ok, want !ok")
		}
	})
}

func TestMailboxManyProducersOneConsumer(t *testing.T) {
	rt := Virtual()
	defer rt.Stop()
	Run(rt, "main", func() {
		m := NewMailbox[int](rt, "m")
		const n = 50
		for i := 0; i < n; i++ {
			i := i
			rt.Go("producer", func() {
				rt.Sleep(time.Duration(i%7) * time.Millisecond)
				m.Put(i)
			})
		}
		seen := make(map[int]bool)
		for i := 0; i < n; i++ {
			v, ok := m.Get()
			if !ok {
				t.Fatal("mailbox closed unexpectedly")
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Errorf("received %d distinct items, want %d", len(seen), n)
		}
	})
}
