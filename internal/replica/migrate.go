package replica

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/obs"
	"github.com/replobj/replobj/internal/shard"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// Elastic resharding, replica side. A ring transition moves keys between
// shard groups — between two independent total orders — so every step is
// itself an ordered event:
//
//  1. Prepare (shard.PrepareMethod, ordered on every participating group)
//     arms the transition: the replica plans the migration against its
//     installed table, freezes checkpoints and pins gcs log truncation at
//     the prepare position.
//  2. Cut (source groups): at the first quiesced position after prepare,
//     the replica exports every moving key through the state's
//     KeyedSnapshotter, drops them locally, and submits the chunks into
//     each target group's total order. All replicas of the group reach
//     the same cut position (the quiescence verdict is a deterministic
//     function of the stream) and submit byte-identical chunks under the
//     same ids, so gcs dedup installs each chunk exactly once.
//  3. Dual-home window (source groups, post-cut): a request stamped with
//     the old epoch whose key has moved is accepted — at-most-once
//     bookkeeping included — and forwarded to the new home over the
//     ordered nested-invocation path, stamped with the next epoch. The
//     reply relays back through the source group's own order.
//  4. Install (target groups): delivered chunks are folded into the state
//     at quiesced positions; requests stamped with the next epoch for a
//     key whose handoff has not installed yet are parked and flushed — in
//     arrival order — the moment their source stream completes.
//  5. Fence (shard.FenceMethod): deterministically fails until the
//     handoff has drained, then installs the next epoch as current. The
//     cutover is exact: at the source's single ordered stream, an
//     old-epoch request for a moved key is delivered either before the
//     fence (executed locally pre-cut, or forwarded) or after it
//     (redirected) — never both.
//
// Sharded.Reshard in the public API orchestrates the sequence; the pure
// planning lives in internal/shard.

// KeyedSnapshotter is implemented by object states that support partial,
// per-key state transfer — the requirement for elastic resharding (the
// whole-state Snapshotter is not enough: a migration moves a subset of
// keys between two live states). All three methods are called only at
// quiesced ordered positions, with no request threads live.
type KeyedSnapshotter interface {
	// ExportKeys serializes every key selected by the predicate.
	ExportKeys(selected func(key string) bool) (map[string][]byte, error)
	// InstallKeys folds exported key images into this state.
	InstallKeys(state map[string][]byte) error
	// DropKeys removes keys handed off to another shard.
	DropKeys(keys []string) error
}

// KeyState is one key's serialized image inside a migration chunk.
type KeyState struct {
	Key  string
	Data []byte
}

// CacheEntry is one migrated reply-cache entry: the at-most-once
// bookkeeping of a moved key travels with its state, so a client
// retransmission of an already-executed invocation hitting the new home
// is answered from cache instead of re-executed.
type CacheEntry struct {
	ID    wire.InvocationID
	Key   string
	Reply Reply
}

// MigrateChunk is one ordered handoff frame of a ring transition,
// submitted by the source group's replicas into the target group's total
// order at the source's quiesced cut. Every source replica submits
// byte-identical chunks under the same gcs ids, so the target orders each
// chunk exactly once regardless of source group size or crashes.
type MigrateChunk struct {
	// Object names the sharded object; Epoch is the transition's target
	// epoch (the chunk is part of the migration INTO that epoch).
	Object string
	Epoch  uint64
	// Source and Target are the handoff's shard groups.
	Source wire.GroupID
	Target wire.GroupID
	// Index/Count position this chunk in its (source → target) stream;
	// Count is carried by every chunk so the target learns the stream
	// extent from whichever chunk arrives first. A moved-key set can be
	// empty — the stream is then a single chunk with no keys.
	Index int
	Count int
	// Cut is the source group's stream position of the quiesced cut
	// (observability; targets do not interpret it).
	Cut uint64
	// Keys carries the moved key images; Cache the reply-cache entries of
	// moved keys (attached to the stream's first chunk).
	Keys  []KeyState
	Cache []CacheEntry
}

func init() {
	wire.RegisterPayload(MigrateChunk{})
}

// chunkID is the gcs submission id of one handoff frame: identical on
// every source replica, so the target's sequencer dedups the group-wide
// resubmissions to one ordered instance.
func chunkID(object string, epoch uint64, source, target wire.GroupID, index int) string {
	return "migrate/" + object + "/" + strconv.FormatUint(epoch, 10) + "/" +
		string(source) + "/" + string(target) + "/" + strconv.Itoa(index)
}

// migration is a replica's handoff state between prepare and fence. It is
// only touched by the dispatch goroutine (all protocol steps happen at
// ordered positions); the runtime lock guards the fields the status
// handler and tests read.
type migration struct {
	plan *shard.Plan
	next *shard.Epoch
	// prepareSeq is the ordered position of the prepare (the truncation
	// hold point).
	prepareSeq uint64

	// Source role.
	outgoing []shard.Move
	cutDone  bool
	cutSeq   uint64

	// Target role: one stream per incoming move, keyed by source group.
	incoming map[wire.GroupID]*incomingStream

	// forwarded counts dual-home forwards relayed by this replica.
	forwarded int
}

// incomingStream tracks one source group's chunk stream: chunks buffer on
// delivery and install in index order at quiesced positions.
type incomingStream struct {
	move     shard.Move
	buffered map[int]MigrateChunk
	// next is the lowest uninstalled chunk index; count the stream extent
	// (0 until the first chunk arrives).
	next  int
	count int
	done  bool
	// parked buffers next-epoch requests for this stream's keys until the
	// handoff installs, in arrival order.
	parked []parkedRequest
}

type parkedRequest struct {
	req Request
	seq uint64
}

// bufferChunk files a delivered chunk under its stream. Replayed or alien
// chunks (wrong epoch, unplanned source, already-installed index) are
// dropped — a plan replay is idempotent by construction.
func (m *migration) bufferChunk(ck MigrateChunk) {
	if ck.Epoch != m.next.Table.Epoch {
		return
	}
	s := m.incoming[ck.Source]
	if s == nil || s.done || ck.Index < s.next {
		return
	}
	if _, dup := s.buffered[ck.Index]; dup {
		return
	}
	s.buffered[ck.Index] = ck
	if s.count == 0 && ck.Count > 0 {
		s.count = ck.Count
	}
}

// dispatchMigrateChunk handles an ordered MigrateChunk delivery. Chunks
// arriving before this group's own prepare (possible only if the
// orchestrator's prepare order is violated, but harmless to tolerate) are
// buffered aside and folded in at prepare; both buffers suppress
// checkpoints, so no snapshot ever covers half a handoff.
func (r *Replica) dispatchMigrateChunk(ck MigrateChunk) {
	r.rt.Lock()
	defer r.rt.Unlock()
	if r.stopped {
		return
	}
	if r.mig == nil {
		r.earlyChunks = append(r.earlyChunks, ck)
		return
	}
	r.mig.bufferChunk(ck)
}

// applyShardPrepare arms a transition at its ordered position (inline,
// outside the scheduler, like EpochMethod installs).
func (r *Replica) applyShardPrepare(req Request, seq uint64) {
	reply := Reply{ID: req.ID, From: r.self}
	if req.Trace.Valid() {
		reply.Trace = req.Trace
	}
	err := r.prepareMigration(req.Args, seq)
	cur := r.shard.Current().Table
	reply.ShardEpoch = cur.Epoch
	if err != nil {
		reply.Err = err.Error()
	} else {
		reply.Result = cur.Encode()
	}
	r.rt.Lock()
	r.cache[req.ID] = reply
	r.rt.Unlock()
	r.sendReply(req, reply)
}

func (r *Replica) prepareMigration(args []byte, seq uint64) error {
	next, err := shard.DecodeTable(args)
	if err != nil {
		return err
	}
	cur := r.shard.Current().Table
	if cur.Epoch == next.Epoch && cur.SameShards(next) {
		return nil // post-fence prepare replay: idempotent
	}
	// Probe the plan before arming: a group whose state cannot do keyed
	// transfer must reject with nothing armed, identically everywhere.
	probe, err := shard.PlanMigration(cur, next)
	if err != nil {
		return err
	}
	if len(probe.Outgoing(r.group)) > 0 || len(probe.Incoming(r.group)) > 0 {
		if _, ok := r.state.(KeyedSnapshotter); !ok {
			return fmt.Errorf("replica: state %T does not implement KeyedSnapshotter; cannot reshard", r.state)
		}
	}
	plan, err := r.shard.BeginTransition(next)
	if err != nil {
		return err
	}
	r.rt.Lock()
	if r.mig == nil {
		m := &migration{
			plan:       plan,
			next:       r.shard.Pending(),
			prepareSeq: seq,
			outgoing:   plan.Outgoing(r.group),
			incoming:   make(map[wire.GroupID]*incomingStream),
		}
		for _, mv := range plan.Incoming(r.group) {
			m.incoming[mv.Source] = &incomingStream{move: mv, buffered: make(map[int]MigrateChunk)}
		}
		for _, ck := range r.earlyChunks {
			m.bufferChunk(ck)
		}
		r.earlyChunks = nil
		r.mig = m
	}
	r.rt.Unlock()
	r.member.HoldTruncation(seq)
	r.migActive.Set(1)
	return nil
}

// applyShardStatus answers a migration progress probe at its ordered
// position — a consistent cut of the stream, identical across replicas.
func (r *Replica) applyShardStatus(req Request) {
	reply := Reply{ID: req.ID, From: r.self}
	if req.Trace.Valid() {
		reply.Trace = req.Trace
	}
	st := r.migrationStatus()
	reply.ShardEpoch = st.Epoch
	reply.Result = st.Encode()
	r.rt.Lock()
	r.cache[req.ID] = reply
	r.rt.Unlock()
	r.sendReply(req, reply)
}

func (r *Replica) migrationStatus() shard.Status {
	st := shard.Status{Epoch: r.shard.Current().Table.Epoch}
	r.rt.Lock()
	defer r.rt.Unlock()
	m := r.mig
	if m == nil {
		return st
	}
	st.Next = m.next.Table.Epoch
	st.OutTotal = len(m.outgoing)
	if m.cutDone {
		st.OutDone = st.OutTotal
	}
	st.InTotal = len(m.incoming)
	for _, s := range m.incoming {
		if s.done {
			st.InDone++
		}
		st.Parked += len(s.parked)
	}
	st.Forwarded = m.forwarded
	return st
}

// applyShardFence completes (or deterministically refuses to complete)
// the transition at its ordered position.
func (r *Replica) applyShardFence(req Request) {
	reply := Reply{ID: req.ID, From: r.self}
	if req.Trace.Valid() {
		reply.Trace = req.Trace
	}
	err := r.fenceMigration(req.Args)
	cur := r.shard.Current().Table
	reply.ShardEpoch = cur.Epoch
	if err != nil {
		reply.Err = err.Error()
	} else {
		reply.Result = cur.Encode()
	}
	r.rt.Lock()
	r.cache[req.ID] = reply
	r.rt.Unlock()
	r.sendReply(req, reply)
}

func (r *Replica) fenceMigration(args []byte) error {
	next, err := shard.DecodeTable(args)
	if err != nil {
		return err
	}
	cur := r.shard.Current().Table
	if cur.Epoch == next.Epoch && cur.SameShards(next) {
		return nil // post-fence replay: idempotent
	}
	pending := r.shard.Pending()
	if pending == nil || pending.Table.Epoch != next.Epoch {
		return fmt.Errorf("replica: fence for epoch %d without matching transition (installed epoch %d)", next.Epoch, cur.Epoch)
	}
	if st := r.migrationStatus(); !st.Done() {
		return fmt.Errorf("replica: fence before handoff drained (out %d/%d, in %d/%d, parked %d)",
			st.OutDone, st.OutTotal, st.InDone, st.InTotal, st.Parked)
	}
	if _, err := r.shard.FinalizeTransition(); err != nil {
		return err
	}
	r.rt.Lock()
	r.mig = nil
	r.rt.Unlock()
	r.member.ReleaseTruncation()
	r.shardEpochG.Set(int64(next.Epoch))
	r.migActive.Set(0)
	r.trace.Record("order", obs.KindCheckpoint, "migrate-fence", strconv.FormatUint(next.Epoch, 10))
	return nil
}

// migrationStep runs after every ordered delivery while a transition is
// armed: it retries the pending quiesced work (the source cut, target
// chunk installs) until the scheduler drains. The attempt set and the
// quiescence verdict are both pure functions of the stream, so every
// replica performs each step at the same position — certified by the
// migrate-* trace records, which divergence checks compare like any other
// event.
func (r *Replica) migrationStep(seq uint64) {
	r.rt.Lock()
	m := r.mig
	if m == nil {
		r.rt.Unlock()
		return
	}
	needCut := len(m.outgoing) > 0 && !m.cutDone
	needInstall := false
	for _, s := range m.incoming {
		if !s.done {
			if _, ok := s.buffered[s.next]; ok {
				needInstall = true
				break
			}
		}
	}
	r.rt.Unlock()
	if !needCut && !needInstall {
		return
	}
	p := vtime.NewParker("migrate/" + string(r.self))
	drained := false
	r.sched.Quiesce(func(d bool) {
		drained = d
		r.rt.Unpark(p)
	})
	r.rt.Lock()
	r.rt.Park(p)
	r.rt.Unlock()
	if !drained {
		r.trace.Record("order", obs.KindCheckpoint, "migrate", strconv.FormatUint(seq, 10)+"/busy")
		return
	}
	if needCut {
		r.performCut(m, seq)
	}
	if needInstall {
		r.performInstalls(m, seq)
	}
}

// performCut exports every outgoing move at this quiesced position: the
// moved keys leave the state, their reply-cache entries ride along, and
// the chunks enter each target's total order. Failures (a state whose
// export breaks) are deterministic — every replica fails the same way and
// the fence never passes, surfacing the error at the orchestrator.
func (r *Replica) performCut(m *migration, seq uint64) {
	ks := r.state.(KeyedSnapshotter) // checked at prepare
	object := m.next.Table.Object
	for _, mv := range m.outgoing {
		mv := mv
		exported, err := ks.ExportKeys(func(key string) bool {
			got, moved := m.plan.MoveOf(key)
			return moved && got == mv
		})
		if err != nil {
			return
		}
		keys := make([]string, 0, len(exported))
		for k := range exported {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		cache := r.movedCacheEntries(mv)
		if err := ks.DropKeys(keys); err != nil {
			return
		}
		chunks := shard.Chunks(keys, shard.DefaultChunkKeys)
		members := r.dir.Members(mv.Target)
		for i, chunkKeys := range chunks {
			ck := MigrateChunk{
				Object: object,
				Epoch:  m.next.Table.Epoch,
				Source: r.group,
				Target: mv.Target,
				Index:  i,
				Count:  len(chunks),
				Cut:    seq,
			}
			for _, k := range chunkKeys {
				ck.Keys = append(ck.Keys, KeyState{Key: k, Data: exported[k]})
			}
			if i == 0 {
				ck.Cache = cache
			}
			sub := gcs.Submit{
				Group:   mv.Target,
				ID:      chunkID(object, ck.Epoch, r.group, mv.Target, i),
				Origin:  r.self,
				Payload: ck,
			}
			for _, node := range members {
				r.ep.Send(node, sub)
			}
			r.migChunksSent.Inc()
		}
		r.migKeysMoved.Add(uint64(len(keys)))
	}
	m.cutDone = true
	m.cutSeq = seq
	r.trace.Record("order", obs.KindCheckpoint, "migrate-cut", strconv.FormatUint(seq, 10))
}

// movedCacheEntries collects the Done reply-cache entries of keys riding
// a move, in first-seen order (deterministic: it follows the stream).
func (r *Replica) movedCacheEntries(mv shard.Move) []CacheEntry {
	r.rt.Lock()
	defer r.rt.Unlock()
	var out []CacheEntry
	for _, id := range r.seenOrder {
		key, ok := r.seenKey[id]
		if !ok || key == "" {
			continue
		}
		got, moved := r.mig.plan.MoveOf(key)
		if !moved || got != mv {
			continue
		}
		if rep, done := r.cache[id]; done {
			out = append(out, CacheEntry{ID: id, Key: key, Reply: rep})
		}
	}
	return out
}

// performInstalls folds buffered chunks into the state, in index order
// per stream, and flushes the stream's parked requests once it completes.
func (r *Replica) performInstalls(m *migration, seq uint64) {
	ks := r.state.(KeyedSnapshotter) // checked at prepare
	for _, mv := range m.plan.Incoming(r.group) {
		s := m.incoming[mv.Source]
		if s == nil || s.done {
			continue
		}
		for {
			ck, ok := s.buffered[s.next]
			if !ok {
				break
			}
			if len(ck.Keys) > 0 {
				kv := make(map[string][]byte, len(ck.Keys))
				for _, k := range ck.Keys {
					kv[k.Key] = k.Data
				}
				if err := ks.InstallKeys(kv); err != nil {
					return // deterministic failure: fence never passes
				}
			}
			r.rt.Lock()
			for _, ce := range ck.Cache {
				if _, dup := r.seen[ce.ID]; dup {
					continue // already seen here: at-most-once wins
				}
				r.markSeenLocked(ce.ID, seq, ce.Key)
				r.cache[ce.ID] = ce.Reply
			}
			delete(s.buffered, s.next)
			s.next++
			r.rt.Unlock()
			r.migChunksInstalled.Inc()
			r.trace.Record("order", obs.KindCheckpoint, InstallLabel,
				strconv.FormatUint(seq, 10)+"/"+string(ck.Source)+"/"+strconv.Itoa(ck.Index))
		}
		if s.count > 0 && s.next >= s.count {
			s.done = true
			parked := s.parked
			s.parked = nil
			r.migParked.Add(-int64(len(parked)))
			for _, pr := range parked {
				r.admit(pr.req, pr.seq, m.next)
			}
		}
	}
}

// InstallLabel is the trace id of a chunk-install event — the ordered
// "_shard/install" position of the handoff on the target group's order.
const InstallLabel = shard.InstallMethod

// submitForward schedules the dual-home relay of an old-epoch request: a
// scheduler thread performs a nested invocation of the new home (stamped
// with the next epoch) and relays the ordered reply to the caller. The
// nested id derives deterministically from the original request, so every
// source replica submits the same invocation and gcs dedup executes it
// exactly once at the target.
func (r *Replica) submitForward(req Request, callback bool, seq uint64, next *shard.Epoch, target wire.GroupID) {
	var classes []string
	if r.classes != nil {
		classes = r.classes(req.Method, req.Args)
	}
	r.sched.Submit(adets.Request{
		ID:       req.ID,
		Logical:  req.Logical(),
		Callback: callback,
		Classes:  classes,
		Seq:      seq,
		Exec:     func(t *adets.Thread) { r.executeForward(req, t, next, target) },
	})
}

func (r *Replica) executeForward(req Request, t *adets.Thread, next *shard.Epoch, target wire.GroupID) {
	r.inflight.Inc()
	defer r.inflight.Dec()
	inv := &Invocation{r: r, t: t, req: req, epoch: next}
	result, err := inv.invoke(target, req.Method, req.Args, func(q *Request) {
		q.ShardEpoch = next.Table.Epoch
		q.ShardKey = req.ShardKey
		q.CrossKeys = req.CrossKeys
	})
	reply := Reply{ID: req.ID, From: r.self, Result: result}
	if err != nil {
		reply.Err = err.Error()
		if shard.IsRedirect(reply.Err) {
			// The new home bounced the relayed request (e.g. it is mid-
			// failover on yet another transition). Keep the redirect signal
			// intact so the router retries instead of failing terminally.
			reply.ShardEpoch = next.Table.Epoch
		}
	}
	if req.Trace.Valid() {
		reply.Trace = req.Trace
	}
	r.rt.Lock()
	r.cache[req.ID] = reply
	r.logicalLive[req.Logical()]--
	if r.logicalLive[req.Logical()] == 0 {
		delete(r.logicalLive, req.Logical())
	}
	r.rt.Unlock()
	r.sendReply(req, reply)
}

// admit runs the post-validation tail of request dispatch (callback
// classification and scheduler submission) — shared by the normal path
// and the parked-request flush.
func (r *Replica) admit(req Request, seq uint64, epoch *shard.Epoch) {
	r.rt.Lock()
	if r.stopped {
		r.rt.Unlock()
		return
	}
	callback := r.logicalLive[req.Logical()] > 0
	r.logicalLive[req.Logical()]++
	if callback && r.nestedWaiting[req.Logical()] == 0 {
		r.pendingCallbacks[req.Logical()] = append(r.pendingCallbacks[req.Logical()], pendingCallback{req: req, epoch: epoch})
		r.rt.Unlock()
		return
	}
	r.rt.Unlock()
	r.submitRequest(req, callback, seq, epoch)
}
