package replica

import (
	"errors"
	"fmt"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/shard"
	"github.com/replobj/replobj/internal/wire"
)

// ErrStopped is returned for operations on a stopped replica.
var ErrStopped = errors.New("replica: stopped")

// Invocation is the execution context of one method invocation — the Go
// counterpart of the paper's transformed synchronization operations: every
// lock, condition-variable and nested-invocation operation is routed
// through the deterministic scheduler.
type Invocation struct {
	r   *Replica
	t   *adets.Thread
	req Request
	// epoch is the shard routing snapshot captured at this request's
	// totally ordered dispatch point (nil on unsharded groups). InvokeShard
	// routes against it, never against the live table, so a table installed
	// mid-execution cannot make replicas pick different nested targets.
	epoch     *shard.Epoch
	nestedSeq uint64
	anonSeq   uint64
	// speculative marks an execution against a private fork (see
	// speculate.go): t is nil, State returns fork, lock operations are
	// no-ops (the fork is single-threaded by construction), and facilities
	// that cannot run without the scheduler — condition variables, nested
	// invocations — abort the speculation via a sentinel panic.
	speculative bool
	fork        any
}

// Args returns the marshalled invocation arguments.
func (inv *Invocation) Args() []byte { return inv.req.Args }

// State returns this replica's private object state (see Config.State) —
// or, under speculative execution, the invocation's private fork of it.
func (inv *Invocation) State() any {
	if inv.speculative {
		return inv.fork
	}
	return inv.r.state
}

// Method returns the invoked method name.
func (inv *Invocation) Method() string { return inv.req.Method }

// Logical returns the logical thread id of this invocation chain.
func (inv *Invocation) Logical() wire.LogicalID { return inv.req.Logical() }

// Replica returns the executing replica's node id (diagnostics only; do
// not branch behaviour on it, or replicas diverge).
func (inv *Invocation) Replica() wire.NodeID { return inv.r.self }

// Lock acquires the named reentrant mutex through the scheduler. Under
// speculative execution it is a no-op: the fork is private to this one
// goroutine, so mutual exclusion is vacuous.
func (inv *Invocation) Lock(m adets.MutexID) error {
	if inv.speculative {
		return nil
	}
	return inv.r.reent.Lock(inv.t, m)
}

// Unlock releases one hold of m.
func (inv *Invocation) Unlock(m adets.MutexID) error {
	if inv.speculative {
		return nil
	}
	return inv.r.reent.Unlock(inv.t, m)
}

// NewMutex creates an anonymous mutex with a replica-deterministic identity
// derived from the creating logical thread and a per-invocation counter —
// the dynamic mutex IDs of ADETS-LSA (paper Section 4.1) generalized to all
// schedulers.
func (inv *Invocation) NewMutex() adets.MutexID {
	inv.anonSeq++
	return adets.MutexID(fmt.Sprintf("anon/%s/%d", inv.req.ID, inv.anonSeq))
}

// Wait waits on m's condition variable c (empty c = the mutex's implicit
// Java-style condition variable); d > 0 bounds the wait and the result
// reports whether the deterministic timeout fired.
func (inv *Invocation) Wait(m adets.MutexID, c adets.CondID, d time.Duration) (timedOut bool, err error) {
	if inv.speculative {
		panic(specAbort{}) // needs other threads: cannot run on a fork
	}
	return inv.r.reent.Wait(inv.t, m, c, d)
}

// Notify wakes the deterministically-first waiter of (m, c).
func (inv *Invocation) Notify(m adets.MutexID, c adets.CondID) error {
	if inv.speculative {
		panic(specAbort{})
	}
	return inv.r.reent.Notify(inv.t, m, c)
}

// NotifyAll wakes all waiters of (m, c).
func (inv *Invocation) NotifyAll(m adets.MutexID, c adets.CondID) error {
	if inv.speculative {
		panic(specAbort{})
	}
	return inv.r.reent.NotifyAll(inv.t, m, c)
}

// Yield offers the scheduler a voluntary scheduling point (ADETS-MAT's
// remedy for trailing computations, paper Section 5.3).
func (inv *Invocation) Yield() {
	if inv.speculative {
		return
	}
	inv.r.sched.Yield(inv.t)
}

// DeclareNoMoreLocks tells a prediction-capable scheduler (ADETS-MAT) that
// this invocation will acquire no further mutexes — the explicit-API form
// of the paper's synchronization-prediction follow-up work. Under other
// schedulers it is a no-op. A later Lock fails with
// adets.ErrLockAfterDeclaration.
func (inv *Invocation) DeclareNoMoreLocks() {
	if inv.speculative {
		return
	}
	if lp, ok := inv.r.sched.(adets.LockPredictor); ok {
		lp.NoMoreLocks(inv.t)
	}
}

// Now returns the current time of the replica's runtime (virtual time
// under simulation, wall clock in real deployments).
func (inv *Invocation) Now() time.Duration { return inv.r.rt.Now() }

// Compute simulates local computation taking d, exactly as the paper's
// benchmarks do: the request-handler thread suspends for the duration,
// freeing the (virtual) CPU. Under vtime.Real it is a plain sleep; real
// computations can simply be executed inline instead.
func (inv *Invocation) Compute(d time.Duration) { inv.r.rt.Sleep(d) }

// ShardKey returns the key class this request was routed by (empty for
// unrouted traffic and unsharded groups).
func (inv *Invocation) ShardKey() string { return inv.req.ShardKey }

// CrossKeys returns the additional key classes the client declared for
// this invocation (see Request.CrossKeys); empty for single-shard calls.
func (inv *Invocation) CrossKeys() []string { return inv.req.CrossKeys }

// ShardEpoch returns the routing epoch this request executes under (0 on
// unsharded groups).
func (inv *Invocation) ShardEpoch() uint64 {
	if inv.epoch == nil {
		return 0
	}
	return inv.epoch.Table.Epoch
}

// ShardHome returns the shard group a key class is homed on under the
// routing table captured at this request's ordered dispatch point. The
// result is a pure function of (captured table, key), so every replica
// resolves the same home.
func (inv *Invocation) ShardHome(key string) (wire.GroupID, error) {
	if inv.epoch == nil {
		return "", errors.New("replica: ShardHome on an unsharded group")
	}
	return inv.epoch.Ring.HomeGroup(key), nil
}

// InvokeShard performs a nested invocation on the shard group owning key,
// under the routing table captured at this request's ordered dispatch
// point — the cross-shard path. The nested request is ordered in the
// target group (validated there against the same epoch), its reply is
// ordered back into this group's stream, and the resume position is the
// deterministic merge point: identical on every replica of both groups.
// A key homed on this very group loops through the same ordered nested
// path, which is legal but wasteful — co-homed keys should be accessed
// directly under a scheduler lock instead.
func (inv *Invocation) InvokeShard(key, method string, args []byte) ([]byte, error) {
	if inv.epoch == nil {
		return nil, errors.New("replica: InvokeShard on an unsharded group")
	}
	home := inv.epoch.Ring.HomeGroup(key)
	return inv.invoke(home, method, args, func(q *Request) {
		q.ShardEpoch = inv.epoch.Table.Epoch
		q.ShardKey = key
	})
}

// Invoke performs a nested invocation of another replicated object. The
// request carries this chain's logical thread id, so the target detects
// callbacks; the reply is delivered through this group's total order and
// resumes the thread at the same position on every replica.
func (inv *Invocation) Invoke(group wire.GroupID, method string, args []byte) ([]byte, error) {
	return inv.invoke(group, method, args, nil)
}

func (inv *Invocation) invoke(group wire.GroupID, method string, args []byte, mod func(*Request)) ([]byte, error) {
	if inv.speculative {
		// A nested invocation would leak the speculation into another
		// group's total order; abort and leave it to the ordered run.
		panic(specAbort{})
	}
	inv.nestedSeq++
	id := wire.InvocationID{Logical: inv.req.Logical(), Seq: inv.nestedSeq + inv.req.ID.Seq*1000}
	req := Request{
		ID:     id,
		Group:  group,
		Method: method,
		Args:   args,
		Kind:   KindNested,
		Origin: inv.r.group,
		Trace:  inv.req.Trace,
	}
	if mod != nil {
		mod(&req)
	}
	r := inv.r
	r.rt.Lock()
	if r.stopped {
		r.rt.Unlock()
		return nil, ErrStopped
	}
	nc := &nestedCall{thread: inv.t}
	r.nested[id] = nc
	// The originator is now "at" its nested invocation: deferred callbacks
	// of this logical thread may run, and an early reply is consumed here.
	logical := inv.req.Logical()
	r.nestedWaiting[logical]++
	flush := r.pendingCallbacks[logical]
	delete(r.pendingCallbacks, logical)
	if early, ok := r.earlyReplies[id]; ok {
		delete(r.earlyReplies, id)
		nc.reply = &early
	}
	r.rt.Unlock()

	for _, cb := range flush {
		r.submitRequest(cb.req, true, 0, cb.epoch)
	}
	if nc.reply == nil {
		sub := gcs.Submit{
			Group:   group,
			ID:      id.String(),
			Origin:  r.self,
			Payload: req,
		}
		for _, m := range r.dir.Members(group) {
			r.ep.Send(m, sub)
		}
	} else {
		// The reply raced ahead of this thread (it lagged structurally);
		// deposit the resume so BeginNested returns immediately.
		r.sched.EndNested(inv.t)
	}
	r.sched.BeginNested(inv.t) // blocks until the ordered reply resumes us

	r.rt.Lock()
	delete(r.nested, id)
	r.nestedWaiting[logical]--
	if r.nestedWaiting[logical] == 0 {
		delete(r.nestedWaiting, logical)
	}
	reply := nc.reply
	stopped := r.stopped
	r.rt.Unlock()
	if reply == nil {
		if stopped {
			return nil, ErrStopped
		}
		return nil, errors.New("replica: nested invocation resumed without reply")
	}
	if reply.Err != "" {
		return nil, errors.New(reply.Err)
	}
	return reply.Result, nil
}
