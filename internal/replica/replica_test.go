package replica

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"github.com/replobj/replobj/internal/adets/sat"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/transport"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

func TestDirectoryBasics(t *testing.T) {
	d := NewDirectory()
	if got := d.Members("ghost"); len(got) != 0 {
		t.Errorf("Members(ghost) = %v", got)
	}
	d.Add("a", []wire.NodeID{"a/0", "a/1"})
	d.Add("b", []wire.NodeID{"b/0"})
	got := d.Members("a")
	if !reflect.DeepEqual(got, []wire.NodeID{"a/0", "a/1"}) {
		t.Errorf("Members(a) = %v", got)
	}
	got[0] = "mutated" // callers must not alias internal storage
	if d.Members("a")[0] != "a/0" {
		t.Error("Members aliases internal storage")
	}
	groups := d.Groups()
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	if !reflect.DeepEqual(groups, []wire.GroupID{"a", "b"}) {
		t.Errorf("Groups = %v", groups)
	}
	d.Add("a", []wire.NodeID{"a/0"}) // replacement
	if n := len(d.Members("a")); n != 1 {
		t.Errorf("after replacement: %d members", n)
	}
}

func TestQuickDirectoryConcurrentSafety(t *testing.T) {
	// Concurrent Add/Members must never race or corrupt (run with -race).
	f := func(names []string) bool {
		d := NewDirectory()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for _, n := range names {
				d.Add(wire.GroupID(n), []wire.NodeID{wire.NodeID(n)})
			}
		}()
		for _, n := range names {
			_ = d.Members(wire.GroupID(n))
			_ = d.Groups()
		}
		<-done
		for _, n := range names {
			m := d.Members(wire.GroupID(n))
			if len(m) != 1 || m[0] != wire.NodeID(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// harness: one real replica wired to an in-process network, driven by raw
// gcs Submits from a test endpoint.
type oneReplica struct {
	rt  *vtime.VirtualRuntime
	net *transport.Inproc
	r   *Replica
	cl  transport.Endpoint
	dir *Directory
}

func newOneReplica(t *testing.T, execCount *int) *oneReplica {
	t.Helper()
	rt := vtime.Virtual()
	net := transport.NewInproc(rt)
	dir := NewDirectory()
	dir.Add("g", []wire.NodeID{wire.ReplicaID("g", 0)})
	r := New(Config{
		RT:        rt,
		Group:     "g",
		Self:      wire.ReplicaID("g", 0),
		Directory: dir,
		Network:   net,
		Scheduler: sat.New(),
	})
	r.Register("echo", func(inv *Invocation) ([]byte, error) {
		rt.Lock()
		*execCount++
		rt.Unlock()
		return inv.Args(), nil
	})
	r.Register("fail", func(inv *Invocation) ([]byte, error) {
		return nil, fmt.Errorf("app error")
	})
	r.Start()
	return &oneReplica{rt: rt, net: net, r: r, cl: net.Endpoint(wire.ClientID("t")), dir: dir}
}

func (h *oneReplica) submit(id wire.InvocationID, method string, args []byte) {
	req := Request{ID: id, Group: "g", Method: method, Args: args, Kind: KindClient, ReplyTo: h.cl.ID()}
	h.cl.Send(wire.ReplicaID("g", 0), gcs.Submit{Group: "g", ID: id.String(), Origin: h.cl.ID(), Payload: req})
}

func (h *oneReplica) recvReply(t *testing.T) Reply {
	t.Helper()
	for {
		msg, ok := recvOne(h.rt, h.cl, 5*time.Second)
		if !ok {
			t.Fatal("no reply")
		}
		if rep, ok := msg.Payload.(Reply); ok {
			return rep
		}
	}
}

func recvOne(rt vtime.Runtime, ep transport.Endpoint, d time.Duration) (wire.Message, bool) {
	res := vtime.NewMailbox[wire.Message](rt, "recvOne")
	stop := vtime.NewMailbox[struct{}](rt, "stop")
	rt.Go("recv", func() {
		m, ok := ep.Recv()
		if ok {
			res.Put(m)
		}
		stop.Put(struct{}{})
	})
	m, ok, _ := res.GetTimeout(d)
	return m, ok
}

func TestAtMostOnceDuplicateSubmits(t *testing.T) {
	execs := 0
	h := newOneReplica(t, &execs)
	defer h.rt.Stop()
	vtime.Run(h.rt, "main", func() {
		defer h.r.Stop()
		defer h.cl.Close()
		id := wire.InvocationID{Logical: "client/t#1", Seq: 0}
		req := Request{ID: id, Group: "g", Method: "echo", Args: []byte("x"),
			Kind: KindClient, ReplyTo: h.cl.ID()}
		// First delivery executes; a duplicate delivery (the group
		// communication layer already filters most, this is the adapter's
		// own at-most-once line of defense) answers from the reply cache.
		h.r.dispatchRequest(req, 1)
		rep := h.recvReply(t)
		if string(rep.Result) != "x" {
			t.Errorf("reply = %q", rep.Result)
		}
		h.r.dispatchRequest(req, 2)
		rep2 := h.recvReply(t)
		if string(rep2.Result) != "x" {
			t.Errorf("cached reply = %q", rep2.Result)
		}
		h.rt.Lock()
		n := execs
		h.rt.Unlock()
		if n != 1 {
			t.Errorf("handler executed %d times, want 1", n)
		}
	})
}

func TestUnknownMethodError(t *testing.T) {
	execs := 0
	h := newOneReplica(t, &execs)
	defer h.rt.Stop()
	vtime.Run(h.rt, "main", func() {
		defer h.r.Stop()
		defer h.cl.Close()
		h.submit(wire.InvocationID{Logical: "client/t#1"}, "nosuch", nil)
		rep := h.recvReply(t)
		if rep.Err == "" {
			t.Error("expected unknown-method error")
		}
	})
}

func TestHandlerErrorPropagates(t *testing.T) {
	execs := 0
	h := newOneReplica(t, &execs)
	defer h.rt.Stop()
	vtime.Run(h.rt, "main", func() {
		defer h.r.Stop()
		defer h.cl.Close()
		h.submit(wire.InvocationID{Logical: "client/t#1"}, "fail", nil)
		rep := h.recvReply(t)
		if rep.Err != "app error" {
			t.Errorf("Err = %q, want app error", rep.Err)
		}
	})
}

func TestSeenCacheBounded(t *testing.T) {
	execs := 0
	h := newOneReplica(t, &execs)
	defer h.rt.Stop()
	vtime.Run(h.rt, "main", func() {
		defer h.r.Stop()
		defer h.cl.Close()
		// Force far more ids than the cap through markSeen directly.
		h.rt.Lock()
		for i := 0; i < maxSeen+100; i++ {
			h.r.markSeenLocked(wire.InvocationID{Logical: wire.LogicalID(fmt.Sprintf("l%d", i))}, uint64(i+1), "")
		}
		if len(h.r.seen) > maxSeen {
			t.Errorf("seen cache grew to %d (cap %d)", len(h.r.seen), maxSeen)
		}
		if len(h.r.seenOrder) > maxSeen {
			t.Errorf("seenOrder grew to %d", len(h.r.seenOrder))
		}
		h.rt.Unlock()
	})
}

func TestRequestLogicalAccessor(t *testing.T) {
	req := Request{ID: wire.InvocationID{Logical: "x", Seq: 3}}
	if req.Logical() != "x" {
		t.Errorf("Logical = %q", req.Logical())
	}
}
