package replica

import (
	"fmt"
	"testing"

	"github.com/replobj/replobj/internal/adets/sat"
	"github.com/replobj/replobj/internal/obs"
	"github.com/replobj/replobj/internal/transport"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// newCkptReplica is newOneReplica with checkpointing enabled.
func newCkptReplica(t *testing.T, execCount *int, every int) *oneReplica {
	t.Helper()
	rt := vtime.Virtual()
	net := transport.NewInproc(rt)
	dir := NewDirectory()
	dir.Add("g", []wire.NodeID{wire.ReplicaID("g", 0)})
	r := New(Config{
		RT:              rt,
		Group:           "g",
		Self:            wire.ReplicaID("g", 0),
		Directory:       dir,
		Network:         net,
		Scheduler:       sat.New(),
		Metrics:         obs.NewRegistry(),
		CheckpointEvery: every,
	})
	r.Register("echo", func(inv *Invocation) ([]byte, error) {
		rt.Lock()
		*execCount++
		rt.Unlock()
		return inv.Args(), nil
	})
	r.Start()
	return &oneReplica{rt: rt, net: net, r: r, cl: net.Endpoint(wire.ClientID("t")), dir: dir}
}

// TestReplyCacheEvictedAtCheckpoints: under a long duplicate-free workload
// the reply cache must not grow with the stream — entries older than two
// checkpoint intervals are dropped at each boundary.
func TestReplyCacheEvictedAtCheckpoints(t *testing.T) {
	execs := 0
	const every = 4
	h := newCkptReplica(t, &execs, every)
	defer h.rt.Stop()
	vtime.Run(h.rt, "main", func() {
		defer h.r.Stop()
		defer h.cl.Close()
		const n = 40
		for i := 0; i < n; i++ {
			h.submit(wire.InvocationID{Logical: wire.LogicalID(fmt.Sprintf("client/t#%d", i))}, "echo", []byte("x"))
			h.recvReply(t)
		}
		h.rt.Lock()
		cached, seen := len(h.r.cache), len(h.r.seen)
		ckpts := h.r.checkpoints.Value()
		h.rt.Unlock()
		if ckpts == 0 {
			t.Fatal("no checkpoints were taken")
		}
		// The duplicate-detection window is 2*every; everything below the
		// last boundary minus the window must be gone.
		if limit := 3 * every; cached > limit {
			t.Errorf("reply cache holds %d entries after %d requests, want <= %d", cached, n, limit)
		}
		if limit := 3 * every; seen > limit {
			t.Errorf("seen map holds %d entries after %d requests, want <= %d", seen, n, limit)
		}
		if execs != n {
			t.Errorf("executed %d of %d requests", execs, n)
		}
	})
}

// TestCheckpointHandsSnapshotToMember: the serialized envelope reaches the
// group member and truncates its log.
func TestCheckpointHandsSnapshotToMember(t *testing.T) {
	execs := 0
	const every = 4
	h := newCkptReplica(t, &execs, every)
	defer h.rt.Stop()
	vtime.Run(h.rt, "main", func() {
		defer h.r.Stop()
		defer h.cl.Close()
		const n = 10
		for i := 0; i < n; i++ {
			h.submit(wire.InvocationID{Logical: wire.LogicalID(fmt.Sprintf("client/t#%d", i))}, "echo", []byte("x"))
			h.recvReply(t)
		}
		// Last checkpoint at seq 8 (n=10, every=4): the member's log must
		// retain only the tail above it. Single-member view, so the
		// stability watermark never lags.
		if got := h.r.member.LogLen(); got > n-every {
			t.Errorf("member log length = %d, want <= %d after checkpoint truncation", got, n-every)
		}
		h.rt.Lock()
		size := h.r.snapSize.Value()
		h.rt.Unlock()
		if size <= 0 {
			t.Errorf("snapshot size gauge = %d, want > 0", size)
		}
	})
}
