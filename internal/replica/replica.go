// Package replica implements the object-replication runtime: the object
// adapter (at-most-once semantics, method dispatch), the integration of the
// deterministic thread scheduler between the group communication module and
// the object implementation (exactly the FTflex layering of the paper's
// Section 5.1), and the nested-invocation machinery with logical-thread
// tagging and callback detection.
package replica

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/obs"
	"github.com/replobj/replobj/internal/obs/tracing"
	"github.com/replobj/replobj/internal/shard"
	"github.com/replobj/replobj/internal/spec"
	"github.com/replobj/replobj/internal/transport"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// Directory maps groups to their replica node ids; it is the deployment
// descriptor shared by replicas and clients. It is safe for concurrent use
// so groups can be added while others already run.
type Directory struct {
	mu sync.RWMutex
	m  map[wire.GroupID][]wire.NodeID
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{m: make(map[wire.GroupID][]wire.NodeID)}
}

// Add registers (or replaces) a group's membership in rank order.
func (d *Directory) Add(g wire.GroupID, members []wire.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m[g] = append([]wire.NodeID(nil), members...)
}

// Members returns the replica nodes of g (nil if unknown).
func (d *Directory) Members(g wire.GroupID) []wire.NodeID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]wire.NodeID(nil), d.m[g]...)
}

// Groups returns all registered group ids.
func (d *Directory) Groups() []wire.GroupID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]wire.GroupID, 0, len(d.m))
	for g := range d.m {
		out = append(out, g)
	}
	return out
}

// RequestKind distinguishes top-level client requests from nested
// invocations issued by another replicated object.
type RequestKind uint8

// Request kinds.
const (
	KindClient RequestKind = iota
	KindNested
)

// Request is a method invocation travelling through the total order.
type Request struct {
	ID      wire.InvocationID
	Group   wire.GroupID
	Method  string
	Args    []byte
	Kind    RequestKind
	ReplyTo wire.NodeID  // client endpoint (KindClient)
	Origin  wire.GroupID // originating group (KindNested)
	// Trace is the optional trace context allocated at client submit. The
	// zero value (tracing off) keeps the pre-tracing wire encoding
	// byte-identical; a non-zero context selects the traced payload tag
	// (see binary.go).
	Trace tracing.Context
	// ShardEpoch is the directory epoch the submitter routed under; 0 marks
	// unrouted traffic, which skips shard validation. A sharded replica
	// redirects requests whose epoch differs from its installed table.
	ShardEpoch uint64
	// ShardKey is the key class the request was routed by; sharded replicas
	// verify at the ordered dispatch point that they are its home.
	ShardKey string
	// CrossKeys lists additional key classes the invocation touches that may
	// be homed on other shards; the handler reaches them through
	// Invocation.InvokeShard (or locally when co-homed). Non-empty CrossKeys
	// mark the request as a cross-shard operation.
	CrossKeys []string
}

// TraceCtx implements tracing.Traced.
func (req Request) TraceCtx() tracing.Context { return req.Trace }

// Reply is an invocation result. Client replies travel directly; nested
// replies are submitted into the originating group's total order so every
// replica resumes the blocked thread at the same position.
type Reply struct {
	ID     wire.InvocationID
	From   wire.NodeID
	Result []byte
	Err    string
	// Trace carries the request's trace id and the executing replica's
	// exec span, so the client links its reply span under the execution.
	Trace tracing.Context
	// ShardEpoch, when non-zero, is the replying shard's installed routing
	// epoch. Combined with a wrong-shard Err it is the redirect signal the
	// client router refreshes on; EpochMethod acks carry it informationally.
	ShardEpoch uint64
}

// TraceCtx implements tracing.Traced.
func (p Reply) TraceCtx() tracing.Context { return p.Trace }

func init() {
	wire.RegisterPayload(Request{})
	wire.RegisterPayload(Reply{})
}

// Handler executes one method; it may use every Invocation facility
// (locks, condition variables, nested invocations, simulated computation).
type Handler func(inv *Invocation) ([]byte, error)

// ConflictClasser is implemented by object states that declare conflict
// classes dynamically, per request. The result must be a pure function of
// (method, args) — identical on every replica — and names the classes the
// request may touch; nil or empty means "global" (conflicts with
// everything). Conflict-aware schedulers (ADETS-CC) execute requests with
// disjoint class sets in parallel.
type ConflictClasser interface {
	ConflictClasses(method string, args []byte) []string
}

// Config assembles a replica.
type Config struct {
	RT        vtime.Runtime
	Group     wire.GroupID
	Self      wire.NodeID
	Directory *Directory
	Network   transport.Network
	Scheduler adets.Scheduler
	// State, if non-nil, builds this replica's private object state,
	// retrievable in handlers via Invocation.State. Each replica gets its
	// own instance; handlers must guard access with scheduler locks.
	State func() any
	// Journal, if non-nil, is invoked for every fresh (non-duplicate)
	// request at its totally-ordered dispatch point — the hook passive
	// replication uses to log what the primary executed since the last
	// checkpoint (paper Section 1).
	Journal func(Request)
	// Classes, if non-nil, maps a request to its declared conflict classes
	// for conflict-aware scheduling (ADETS-CC). It must be a pure function
	// of (method, args) — it is evaluated at the totally-ordered dispatch
	// point and every replica must compute the same set. Nil or an empty
	// result marks the request "global" (conflicts with everything). When
	// nil, a State instance implementing ConflictClasser is used instead.
	Classes func(method string, args []byte) []string
	// CheckpointEvery, when positive, takes a deterministic checkpoint at
	// every n-th position of the totally-ordered stream: the scheduler is
	// quiesced, the object state is serialized (via Snapshotter, or gob for
	// plain pointer states with exported fields), and the group member
	// learns the checkpoint so it can truncate its retransmission log and
	// serve snapshot-based state transfer to rejoiners whose tail has been
	// truncated. The trigger is a pure function of the stream, so every
	// replica checkpoints (or deterministically skips) the same boundaries.
	CheckpointEvery int
	// Speculative enables speculative execution on optimistic delivery (see
	// speculate.go): arriving submits are executed immediately against a
	// forked state and the precomputed reply is released when the total
	// order confirms the speculation as conflict-free. Requires State (the
	// factory builds the forks); ignored on sharded groups, whose requests
	// are validated and possibly redirected at their ordered position. Also
	// enables sequencer spontaneous-order hints and early scheduling
	// (conflict classes fed to ADETS-CC at arrival time).
	Speculative bool
	// Shard, if non-nil, marks this replica a member of a sharded object's
	// shard group: requests routed with a shard epoch are validated against
	// the installed table at their ordered dispatch point (wrong epoch or
	// wrong home → deterministic redirect reply), and the reserved
	// shard.EpochMethod control request installs table updates in-stream.
	Shard *shard.GroupState
	// GCS carries the group communication knobs (failure detection etc.);
	// Group/Self/Members/Send are filled in by the replica.
	GCS gcs.Config
	// Metrics, if non-nil, receives counters/gauges/histograms from the
	// scheduler, the group member, and the replica itself.
	Metrics *obs.Registry
	// Spans, if non-nil, receives per-request spans (scheduler wait,
	// execution) from this replica, its group member and its scheduler
	// hooks. Requests without a trace context record nothing.
	Spans *tracing.Collector
	// Trace, if non-nil, records the deterministic schedule trace
	// (scheduler decisions plus the totally-ordered dispatch stream) whose
	// rolling digests must agree across replicas.
	Trace *obs.Trace
}

// Replica is one member of a replicated object group.
type Replica struct {
	rt     vtime.Runtime
	group  wire.GroupID
	self   wire.NodeID
	dir    *Directory
	ep     transport.Endpoint
	member *gcs.Member
	sched  adets.Scheduler
	reent  *adets.Reentrancy
	state  any
	// stateFactory is Config.State, retained so speculative executions can
	// build private fork instances (nil when speculation is off).
	stateFactory func() any
	journal      func(Request)
	classes      func(method string, args []byte) []string

	// shard is non-nil on shard-group members (see Config.Shard);
	// shardLabel tags this replica's spans with its shard group id so the
	// latency breakdown decomposes per shard.
	shard      *shard.GroupState
	shardLabel string

	// ckptEvery is Config.CheckpointEvery (0 = checkpointing off).
	ckptEvery uint64

	// Observability (all nil-safe; nil when disabled).
	schedObs        *adets.SchedObs
	trace           *obs.Trace
	spans           *tracing.Collector
	inflight        *obs.Gauge
	cacheHits       *obs.Counter
	dupReplies      *obs.Counter
	dupExpired      *obs.Counter
	specAttempts    *obs.Counter
	specHits        *obs.Counter
	specAborts      *obs.Counter
	specMismatches  *obs.Counter
	specHintMatches *obs.Counter
	checkpoints     *obs.Counter
	ckptSkipped     *obs.Counter
	snapSize        *obs.Gauge
	ckptDuration    *obs.Histogram
	shardRouted     *obs.Counter
	shardRedirects  *obs.Counter
	shardCross      *obs.Counter
	shardEpochG     *obs.Gauge

	// Migration metrics (see migrate.go).
	migActive          *obs.Gauge
	migParked          *obs.Gauge
	migKeysMoved       *obs.Counter
	migChunksSent      *obs.Counter
	migChunksInstalled *obs.Counter
	migForwarded       *obs.Counter

	handlers map[string]Handler

	// All fields below are guarded by the runtime lock.
	seen      map[wire.InvocationID]uint64 // delivered at least once, at this stream position
	seenOrder []wire.InvocationID
	// seenKey remembers the shard key an accepted routed request carried, so
	// a migration can select the reply-cache entries riding a key move.
	seenKey     map[wire.InvocationID]string
	cache       map[wire.InvocationID]Reply // completed (reply cache)
	logicalLive map[wire.LogicalID]int
	nested      map[wire.InvocationID]*nestedCall
	// earlyReplies buffers nested replies that arrive before this replica's
	// own thread reached the Invoke (possible when a thread lags behind its
	// peers structurally, e.g. an LSA follower waiting for a mutex table).
	earlyReplies map[wire.InvocationID]Reply
	// nestedWaiting counts, per logical thread, local threads inside a
	// nested invocation; callbacks are deferred until the originator has
	// reached its Invoke so the logical program order (pre-invoke code →
	// callback) holds on every replica.
	nestedWaiting    map[wire.LogicalID]int
	pendingCallbacks map[wire.LogicalID][]pendingCallback
	stopped          bool

	// specMgr holds the speculation bookkeeping (nil when Config.Speculative
	// is off or unusable); specPending counts requests dispatched to local
	// execution whose handler has not completed — the fork image may only be
	// refreshed when it is zero (the primary state is then exactly the
	// ordered prefix). evictFloor is the highest stream position whose
	// reply-cache entries evictStableLocked has dropped; duplicates ordered
	// at or below it are answered with a typed expired-duplicate error.
	specMgr     *spec.Manager
	specPending int
	evictFloor  uint64

	// mig is the in-progress ring transition (nil outside migrations);
	// earlyChunks buffers handoff chunks delivered before this group's own
	// prepare. Both are mutated only at ordered dispatch positions.
	mig         *migration
	earlyChunks []MigrateChunk
}

type nestedCall struct {
	thread *adets.Thread
	reply  *Reply
}

// pendingCallback is a deferred callback request plus the shard routing
// epoch captured at its ordered dispatch point — the epoch must travel
// with the request so a table installed between deferral and flush cannot
// change what the callback's handler routes against.
type pendingCallback struct {
	req   Request
	epoch *shard.Epoch
}

// New wires a replica together: transport endpoint, group member,
// scheduler.
func New(cfg Config) *Replica {
	r := &Replica{
		rt:               cfg.RT,
		group:            cfg.Group,
		self:             cfg.Self,
		dir:              cfg.Directory,
		sched:            cfg.Scheduler,
		handlers:         make(map[string]Handler),
		seen:             make(map[wire.InvocationID]uint64),
		seenKey:          make(map[wire.InvocationID]string),
		cache:            make(map[wire.InvocationID]Reply),
		logicalLive:      make(map[wire.LogicalID]int),
		nested:           make(map[wire.InvocationID]*nestedCall),
		earlyReplies:     make(map[wire.InvocationID]Reply),
		nestedWaiting:    make(map[wire.LogicalID]int),
		pendingCallbacks: make(map[wire.LogicalID][]pendingCallback),
	}
	if cfg.State != nil {
		r.state = cfg.State()
	}
	if cfg.Shard != nil {
		r.shard = cfg.Shard
		r.shardLabel = string(cfg.Group)
	}
	if cfg.Speculative && cfg.State != nil && cfg.Shard == nil {
		r.stateFactory = cfg.State
		r.specMgr = spec.NewManager()
	}
	r.journal = cfg.Journal
	r.classes = cfg.Classes
	if r.classes == nil {
		if cc, ok := r.state.(ConflictClasser); ok {
			r.classes = cc.ConflictClasses
		}
	}
	r.ep = cfg.Network.Endpoint(cfg.Self)
	r.trace = cfg.Trace
	r.spans = cfg.Spans
	r.schedObs = adets.NewSchedObs(cfg.Metrics, cfg.Trace, cfg.Scheduler.Name(), string(cfg.Self)).
		WithSpans(cfg.Spans, cfg.RT.NowLocked, string(cfg.Self))
	if cfg.CheckpointEvery > 0 {
		r.ckptEvery = uint64(cfg.CheckpointEvery)
	}
	if cfg.Metrics != nil {
		label := `{node="` + string(cfg.Self) + `"}`
		r.inflight = cfg.Metrics.Gauge("replobj_replica_invocations_in_flight" + label)
		r.cacheHits = cfg.Metrics.Counter("replobj_replica_reply_cache_hits_total" + label)
		r.dupReplies = cfg.Metrics.Counter("replobj_replica_duplicate_submit_replies_total" + label)
		r.dupExpired = cfg.Metrics.Counter("replobj_replica_duplicate_expired_total" + label)
		if r.specMgr != nil {
			r.specAttempts = cfg.Metrics.Counter("replobj_replica_spec_attempts_total" + label)
			r.specHits = cfg.Metrics.Counter("replobj_replica_spec_hits_total" + label)
			r.specAborts = cfg.Metrics.Counter("replobj_replica_spec_aborts_total" + label)
			r.specMismatches = cfg.Metrics.Counter("replobj_replica_spec_mismatches_total" + label)
			r.specHintMatches = cfg.Metrics.Counter("replobj_replica_spec_hint_matches_total" + label)
		}
		r.checkpoints = cfg.Metrics.Counter("replobj_replica_checkpoints_total" + label)
		r.ckptSkipped = cfg.Metrics.Counter("replobj_replica_checkpoints_skipped_total" + label)
		r.snapSize = cfg.Metrics.Gauge("replobj_replica_snapshot_bytes" + label)
		r.ckptDuration = cfg.Metrics.Histogram("replobj_replica_checkpoint_seconds"+label, obs.LatencyBuckets())
		if r.shard != nil {
			slabel := `{node="` + string(cfg.Self) + `",shard="` + r.shardLabel + `"}`
			r.shardRouted = cfg.Metrics.Counter("replobj_shard_routed_requests_total" + slabel)
			r.shardRedirects = cfg.Metrics.Counter("replobj_shard_redirects_total" + slabel)
			r.shardCross = cfg.Metrics.Counter("replobj_shard_cross_requests_total" + slabel)
			r.shardEpochG = cfg.Metrics.Gauge("replobj_shard_directory_epoch" + slabel)
			r.shardEpochG.Set(int64(r.shard.Current().Table.Epoch))
			r.migActive = cfg.Metrics.Gauge("replobj_shard_migration_active" + slabel)
			r.migParked = cfg.Metrics.Gauge("replobj_shard_migration_parked" + slabel)
			r.migKeysMoved = cfg.Metrics.Counter("replobj_shard_migration_keys_total" + slabel)
			r.migChunksSent = cfg.Metrics.Counter("replobj_shard_migration_chunks_sent_total" + slabel)
			r.migChunksInstalled = cfg.Metrics.Counter("replobj_shard_migration_chunks_installed_total" + slabel)
			r.migForwarded = cfg.Metrics.Counter("replobj_shard_migration_forwarded_total" + slabel)
		}
	}
	g := cfg.GCS
	g.Group = cfg.Group
	g.Self = cfg.Self
	g.Members = cfg.Directory.Members(cfg.Group)
	g.Send = r.ep.Send
	g.Spans = cfg.Spans
	g.Shard = r.shardLabel
	if g.Stats == nil {
		if r.shard != nil {
			g.Stats = gcs.NewStatsGrouped(cfg.Metrics, string(cfg.Self), r.shardLabel)
		} else {
			g.Stats = gcs.NewStats(cfg.Metrics, string(cfg.Self))
		}
	}
	// A client retransmission of an already-ordered request produces no new
	// delivery, so the dispatch-time duplicate path never sees it. Replay
	// the cached at-most-once reply here instead — the original reply may
	// have been lost in the network, and with replicas down the client may
	// have no slack to reach its reply quorum without this replica. seq is
	// the retransmitted request's ordered position (0 when the member has
	// pruned its mapping): when the reply-cache entry has aged out of the
	// duplicate-detection window, replay is impossible and the client gets
	// a typed expired-duplicate error instead of eternal silence.
	g.DuplicateSubmit = func(sub gcs.Submit, seq uint64) {
		req, ok := sub.Payload.(Request)
		if !ok || req.Kind != KindClient {
			return
		}
		r.rt.Lock()
		cached, done := r.cache[req.ID]
		_, seen := r.seen[req.ID]
		floor := r.evictFloor
		stopped := r.stopped
		r.rt.Unlock()
		if stopped {
			return
		}
		switch {
		case done:
			r.dupReplies.Inc()
			r.sendReply(req, cached)
		case seen:
			// Ordered and still executing: the original execution replies.
		case seq != 0 && seq <= floor:
			r.dupExpired.Inc()
			reply := Reply{ID: req.ID, From: r.self, Err: expiredDuplicateError(seq)}
			if req.Trace.Valid() {
				reply.Trace = req.Trace
			}
			r.sendReply(req, reply)
		}
		// Remaining case — ordered above the eviction floor but not yet
		// dispatched locally — resolves when the delivery arrives.
	}
	if r.specMgr != nil {
		g.SpecHints = true
		g.OptimisticDeliver = r.onOptimisticSubmit
		g.HintDeliver = r.onHint
	} else if cfg.Speculative {
		// No forkable state (or a sharded group): speculation proper is off,
		// but conflict classes are still fed to an early-scheduling-capable
		// scheduler at arrival time.
		g.OptimisticDeliver = r.onOptimisticSubmit
	}
	r.member = gcs.NewMember(cfg.RT, g)
	r.reent = adets.NewReentrancy(cfg.RT, cfg.Scheduler)
	r.reent.SetObs(r.schedObs)
	return r
}

// Register binds a method name to a handler. Must be called before Start.
func (r *Replica) Register(method string, h Handler) {
	r.handlers[method] = h
}

// Start launches the replica's receive and dispatch loops and the
// scheduler.
func (r *Replica) Start() {
	rank := 0
	members := r.dir.Members(r.group)
	for i, m := range members {
		if m == r.self {
			rank = i
		}
	}
	_ = rank
	r.sched.Start(adets.Env{
		RT:       r.rt,
		Self:     r.self,
		Peers:    members,
		SendPeer: r.ep.Send,
		BroadcastOrdered: func(id string, payload any) {
			r.member.Broadcast(id, payload)
		},
		Obs: r.schedObs,
	})
	r.member.Start()
	r.rt.Go("replica-recv/"+string(r.self), r.recvLoop)
	r.rt.Go("replica-dispatch/"+string(r.self), r.dispatchLoop)
}

// Stop tears the replica down.
func (r *Replica) Stop() {
	r.rt.Lock()
	r.stopped = true
	r.rt.Unlock()
	r.sched.Stop()
	r.member.Stop()
	r.ep.Close()
}

// recvLoop feeds transport messages to the group member and the scheduler.
func (r *Replica) recvLoop() {
	for {
		msg, ok := r.ep.Recv()
		if !ok {
			return
		}
		if r.member.Handle(msg.From, msg.Payload) {
			continue
		}
		if r.sched.HandleDirect(msg.From, msg.Payload) {
			continue
		}
		// Unknown direct message: dropped (a real middleware would log).
	}
}

// dispatchLoop consumes the totally ordered stream: requests, nested
// replies, scheduler messages, view changes.
func (r *Replica) dispatchLoop() {
	for {
		d, ok := r.member.Deliver()
		if !ok {
			return
		}
		if d.Snapshot != nil {
			// State transfer in place of a truncated tail: restore and
			// continue at d.Seq+1. Not recorded as a regular trace event —
			// the restored digest state already covers everything up to
			// d.Seq, including the donor's checkpoint event.
			r.installSnapshot(d)
			continue
		}
		// One event per totally-ordered delivery: position and id must agree
		// across replicas, so the "order" stream digests are comparable.
		r.trace.Record("order", obs.KindExec, d.ID, strconv.FormatUint(d.Seq, 10))
		if d.NewView != nil {
			r.sched.ViewChanged(*d.NewView)
			if d.Payload == nil {
				continue
			}
		}
		switch p := d.Payload.(type) {
		case Request:
			r.dispatchRequest(p, d.Seq)
		case Reply:
			r.dispatchNestedReply(p)
		case MigrateChunk:
			r.dispatchMigrateChunk(p)
		default:
			if p != nil {
				r.sched.HandleOrdered(d.ID, p)
			}
		}
		if r.ckptEvery > 0 && d.Seq%r.ckptEvery == 0 {
			r.checkpoint(d.Seq)
		}
		// While a ring transition is armed, retry its pending quiesced work
		// (source cut, target installs) after every delivery.
		r.migrationStep(d.Seq)
	}
}

// dispatchRequest applies at-most-once semantics and hands fresh requests
// to the scheduler. Everything here happens at a totally ordered point, so
// the classification (duplicate? callback?) is identical on every replica.
func (r *Replica) dispatchRequest(req Request, seq uint64) {
	r.rt.Lock()
	if r.stopped {
		r.rt.Unlock()
		return
	}
	if _, dup := r.seen[req.ID]; dup {
		cached, done := r.cache[req.ID]
		r.rt.Unlock()
		r.cacheHits.Inc()
		if done {
			r.sendReply(req, cached)
		}
		// Still executing: the original execution will reply.
		return
	}
	r.markSeenLocked(req.ID, seq, req.ShardKey)
	// Shard control and validation happen here, at the totally ordered
	// dispatch point, so the verdict (install / redirect / accept / forward
	// / park) and the routing table any accepted request will execute
	// against are pure functions of the stream — identical on every replica.
	var epoch *shard.Epoch
	if r.shard != nil {
		switch req.Method {
		case shard.EpochMethod:
			r.rt.Unlock()
			r.applyShardTable(req)
			return
		case shard.PrepareMethod:
			r.rt.Unlock()
			r.applyShardPrepare(req, seq)
			return
		case shard.StatusMethod:
			r.rt.Unlock()
			r.applyShardStatus(req)
			return
		case shard.FenceMethod:
			r.rt.Unlock()
			r.applyShardFence(req)
			return
		}
		epoch = r.shard.Current()
		if req.ShardEpoch != 0 {
			m := r.mig
			var errstr string
			switch {
			case req.ShardEpoch == epoch.Table.Epoch:
				if req.ShardKey != "" {
					if home := epoch.Ring.HomeGroup(req.ShardKey); home != r.group {
						errstr = shard.RedirectError(epoch.Table.Epoch, req.ShardKey, home)
					} else if m != nil && m.cutDone {
						// Dual-home window: the key's state has already left
						// with the cut, but the fence has not flipped this
						// request's epoch yet. Relay it over the ordered
						// cross-shard path to its new home instead of
						// redirecting — the client keeps its in-flight call.
						if mv, moved := m.plan.MoveOf(req.ShardKey); moved && mv.Source == r.group {
							m.forwarded++
							callback := r.logicalLive[req.Logical()] > 0
							r.logicalLive[req.Logical()]++
							next := m.next
							r.rt.Unlock()
							r.migForwarded.Inc()
							r.shardRouted.Inc()
							r.submitForward(req, callback, seq, next, mv.Target)
							return
						}
					}
				}
			case m != nil && req.ShardEpoch == m.next.Table.Epoch:
				// Routed under the transition's target epoch (the client
				// refreshed ahead of this group's fence). Valid on the new
				// home; parked while the key's handoff is still in flight.
				if req.ShardKey != "" {
					if home := m.next.Ring.HomeGroup(req.ShardKey); home != r.group {
						errstr = shard.RedirectError(epoch.Table.Epoch, req.ShardKey, home)
					} else {
						if mv, moved := m.plan.MoveOf(req.ShardKey); moved && mv.Target == r.group {
							if s := m.incoming[mv.Source]; s != nil && !s.done {
								s.parked = append(s.parked, parkedRequest{req: req, seq: seq})
								r.rt.Unlock()
								r.migParked.Inc()
								return
							}
						}
						epoch = m.next
					}
				} else {
					epoch = m.next
				}
			default:
				errstr = shard.RedirectError(epoch.Table.Epoch, "", "")
			}
			if errstr != "" {
				reply := Reply{ID: req.ID, From: r.self, Err: errstr, ShardEpoch: epoch.Table.Epoch}
				if req.Trace.Valid() {
					reply.Trace = req.Trace
				}
				// A redirected request never executes; its key must not ride
				// a migration's reply-cache handoff.
				delete(r.seenKey, req.ID)
				r.cache[req.ID] = reply
				r.rt.Unlock()
				r.shardRedirects.Inc()
				r.sendReply(req, reply)
				return
			}
			r.shardRouted.Inc()
			if len(req.CrossKeys) > 0 {
				r.shardCross.Inc()
			}
		}
	}
	if r.journal != nil && req.Kind == KindClient {
		r.journal(req)
	}
	var act specAction
	if r.specMgr != nil {
		var classes []string
		if r.classes != nil {
			classes = r.classes(req.Method, req.Args)
		}
		// Confirm against the floors as of the previous dispatch, then raise
		// them with this request: its own dispatch must not invalidate its
		// own speculation.
		act = r.specConfirmLocked(req, seq, classes)
		r.specMgr.TrackDispatch(seq, classes)
		r.specPending++
	}
	callback := r.logicalLive[req.Logical()] > 0
	r.logicalLive[req.Logical()]++
	if callback && r.nestedWaiting[req.Logical()] == 0 {
		// The originating thread has not reached its nested invocation on
		// this replica yet (it lags structurally, e.g. an LSA follower
		// waiting for a mutex-table grant). Running the callback now would
		// execute "later" code of the logical thread before "earlier" code.
		// Defer it; Invoke flushes it once the originator is in place.
		r.pendingCallbacks[req.Logical()] = append(r.pendingCallbacks[req.Logical()], pendingCallback{req: req, epoch: epoch})
		r.rt.Unlock()
		r.specConfirmFinish(req, act)
		return
	}
	r.rt.Unlock()
	r.specConfirmFinish(req, act)
	r.submitRequest(req, callback, seq, epoch)
}

// applyShardTable installs a table update delivered as a reserved
// shard.EpochMethod control request. It runs at the request's ordered
// position, outside the scheduler — table installs must not contend with
// application threads — and replies like any invocation so the updater
// learns the outcome. Install is idempotent for replayed epochs, and its
// verdict depends only on (installed table, args), so every replica
// accepts or rejects identically.
func (r *Replica) applyShardTable(req Request) {
	reply := Reply{ID: req.ID, From: r.self}
	if req.Trace.Valid() {
		reply.Trace = req.Trace
	}
	t, err := shard.DecodeTable(req.Args)
	if err == nil {
		err = r.shard.Install(t)
	}
	if err != nil {
		reply.Err = err.Error()
	}
	cur := r.shard.Current().Table
	reply.ShardEpoch = cur.Epoch
	if err == nil {
		reply.Result = cur.Encode()
		r.shardEpochG.Set(int64(cur.Epoch))
	}
	r.rt.Lock()
	r.cache[req.ID] = reply
	r.rt.Unlock()
	r.sendReply(req, reply)
}

func (r *Replica) submitRequest(req Request, callback bool, seq uint64, epoch *shard.Epoch) {
	var classes []string
	if r.classes != nil {
		classes = r.classes(req.Method, req.Args)
	}
	exec := func(t *adets.Thread) { r.execute(req, t, epoch) }
	if r.spans != nil && req.Trace.Valid() {
		// The grant hooks only see the logical thread id; the binding lets
		// them resolve it back to this request's trace (see SchedObs).
		r.spans.Bind(string(req.Logical()), req.Trace)
		tSubmit := r.rt.Now()
		exec = func(t *adets.Thread) {
			tStart := r.rt.Now()
			r.spans.Record(tracing.Span{
				Trace:  req.Trace.TraceID,
				ID:     tracing.NewSpanID(req.Trace.TraceID, "sched.wait", string(r.self), tSubmit),
				Parent: req.Trace.Span,
				Name:   "sched.wait",
				Node:   string(r.self),
				Shard:  r.shardLabel,
				Detail: req.Method,
				Seq:    seq,
				Start:  tSubmit,
				Dur:    tStart - tSubmit,
			})
			r.execute(req, t, epoch)
		}
	}
	r.sched.Submit(adets.Request{
		ID:       req.ID,
		Logical:  req.Logical(),
		Callback: callback,
		Classes:  classes,
		Seq:      seq,
		Exec:     exec,
	})
}

// Logical returns the logical thread of a request.
func (req Request) Logical() wire.LogicalID { return req.ID.Logical }

func (r *Replica) execute(req Request, t *adets.Thread, epoch *shard.Epoch) {
	r.inflight.Inc()
	defer r.inflight.Dec()
	traced := r.spans != nil && req.Trace.Valid()
	var tStart time.Duration
	if traced {
		tStart = r.rt.Now()
	}
	inv := &Invocation{r: r, t: t, req: req, epoch: epoch}
	var reply Reply
	h, ok := r.handlers[req.Method]
	if !ok {
		reply = Reply{ID: req.ID, From: r.self, Err: fmt.Sprintf("replica: unknown method %q", req.Method)}
	} else {
		result, err := h(inv)
		reply = Reply{ID: req.ID, From: r.self, Result: result}
		if err != nil {
			reply.Err = err.Error()
		}
	}
	if traced {
		tEnd := r.rt.Now()
		execID := tracing.NewSpanID(req.Trace.TraceID, "exec", string(r.self), tStart)
		r.spans.Record(tracing.Span{
			Trace:  req.Trace.TraceID,
			ID:     execID,
			Parent: req.Trace.Span,
			Name:   "exec",
			Node:   string(r.self),
			Shard:  r.shardLabel,
			Detail: req.Method,
			Start:  tStart,
			Dur:    tEnd - tStart,
		})
		// Replies (cached ones included) link back to this execution.
		reply.Trace = tracing.Context{TraceID: req.Trace.TraceID, Span: execID}
	}
	r.rt.Lock()
	r.cache[req.ID] = reply
	r.logicalLive[req.Logical()]--
	if r.logicalLive[req.Logical()] == 0 {
		delete(r.logicalLive, req.Logical())
		if traced {
			r.spans.Unbind(string(req.Logical()))
		}
	}
	var suppress, mismatch, late bool
	if r.specMgr != nil {
		if r.specPending > 0 {
			r.specPending--
		}
		if req.Kind == KindClient {
			srep, released, l := r.specMgr.Resolve(req.ID.String())
			late = l
			if released {
				if sr, ok := srep.(Reply); ok && sr.Err == reply.Err && bytes.Equal(sr.Result, reply.Result) {
					// The released speculative reply matches: the client has
					// it already, suppress the duplicate send.
					suppress = true
				} else {
					// The speculative reply differed from the ordered one —
					// the handler broke the purity/class-confinement contract.
					// Send the authoritative reply too and surface the event.
					mismatch = true
				}
			}
		}
	}
	r.rt.Unlock()
	if mismatch {
		r.specMismatches.Inc()
	}
	if late {
		// Confirmed-valid speculation outrun by the ordered execution: the
		// early reply never left, so it counts as a (cheap) abort.
		r.specAborts.Inc()
	}
	if !suppress {
		r.sendReply(req, reply)
	}
}

// sendReply routes a reply: directly to the client, or into the
// originating group's total order for nested invocations.
func (r *Replica) sendReply(req Request, reply Reply) {
	switch req.Kind {
	case KindClient:
		r.ep.Send(req.ReplyTo, reply)
	case KindNested:
		sub := gcs.Submit{
			Group:   req.Origin,
			ID:      "nested-reply/" + req.ID.String(),
			Origin:  r.self,
			Payload: reply,
		}
		for _, m := range r.dir.Members(req.Origin) {
			r.ep.Send(m, sub)
		}
	}
}

// dispatchNestedReply resumes the thread blocked on the invocation, or
// buffers the reply if the local thread has not issued the call yet.
func (r *Replica) dispatchNestedReply(reply Reply) {
	r.rt.Lock()
	nc := r.nested[reply.ID]
	if nc == nil {
		if !r.stopped {
			r.earlyReplies[reply.ID] = reply
		}
		r.rt.Unlock()
		return
	}
	if nc.reply != nil {
		r.rt.Unlock()
		return // duplicate
	}
	cp := reply
	nc.reply = &cp
	t := nc.thread
	r.rt.Unlock()
	r.sched.EndNested(t)
}

const maxSeen = 1 << 14

func (r *Replica) markSeenLocked(id wire.InvocationID, seq uint64, key string) {
	r.seen[id] = seq
	r.seenOrder = append(r.seenOrder, id)
	if key != "" {
		r.seenKey[id] = key
	}
	if len(r.seenOrder) > maxSeen {
		old := r.seenOrder[0]
		r.seenOrder = r.seenOrder[1:]
		delete(r.seen, old)
		delete(r.seenKey, old)
		delete(r.cache, old)
	}
}

// Scheduler exposes the scheduler (capability metadata, tests).
func (r *Replica) Scheduler() adets.Scheduler { return r.sched }

// Member exposes the group member (tests).
func (r *Replica) Member() *gcs.Member { return r.member }
