package replica

import (
	"bytes"
	"encoding/gob"
	"strconv"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/obs"
	"github.com/replobj/replobj/internal/shard"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// Deterministic checkpointing and snapshot-based state transfer.
//
// With Config.CheckpointEvery set, every replica pauses at the same
// positions of the totally-ordered stream, quiesces its scheduler, and
// serializes (object state, reply cache, trace digests) into a snapshot
// envelope handed to the group member. The member truncates its
// retransmission log up to the checkpoint (bounded by the group-wide
// stability watermark) and answers NACKs for truncated positions with the
// snapshot instead — so a replica that rejoins after the log has moved past
// its position is restored by state transfer rather than replay.

// Snapshotter is implemented by object states that support checkpointing
// with an explicit serialization. States that do not implement it are
// checkpointed with encoding/gob, which requires a pointer state with
// exported fields; when neither works the checkpoint is skipped (the same
// way on every replica) and the log falls back to the retention cap.
type Snapshotter interface {
	// Snapshot serializes the state. It is called only at a quiesced
	// checkpoint boundary, with no request threads live.
	Snapshot() ([]byte, error)
	// Restore replaces the state with a previously snapshotted image.
	Restore(data []byte) error
}

// seenEntry is one at-most-once bookkeeping entry carried by a checkpoint:
// the invocation id, the stream position it was first seen at, and the
// cached reply once execution finished.
type seenEntry struct {
	ID     wire.InvocationID
	SeenAt uint64
	Done   bool
	Reply  Reply
	// Key is the shard key the request was accepted under (empty when
	// unrouted); restoring it keeps a rejoiner's migration reply-cache
	// handoffs byte-identical to its peers'.
	Key string
}

// snapshotEnvelope is the serialized form of a checkpoint: everything a
// rejoiner needs to resume as if it had delivered the whole prefix itself.
type snapshotEnvelope struct {
	Seq     uint64
	State   []byte
	UsedGob bool
	Entries []seenEntry
	Streams map[string]obs.StreamState
	// Sched carries replicated scheduler meta-state (adets.StatefulScheduler
	// — the adaptive meta-scheduler's epoch, window and active kind), nil
	// for stateless schedulers.
	Sched []byte
	// Shard carries the encoded shard routing table installed at the
	// checkpoint (nil on unsharded groups), so a rejoiner restored past a
	// truncated EpochMethod delivery still adopts the donor's epoch.
	Shard []byte
}

// checkpoint runs at a checkpoint boundary (stream position seq, the
// delivery just dispatched). It quiesces the scheduler — waiting until all
// request threads have drained or are provably blocked on future
// deliveries — and in the drained case evicts stable reply-cache entries,
// records the boundary in the trace, and hands the serialized snapshot to
// the group member. When threads are still live the boundary is skipped;
// the quiescence verdict is a deterministic function of the stream, so
// every replica records the same event (checkpoint or skip marker) and any
// disagreement surfaces as a digest divergence.
func (r *Replica) checkpoint(seq uint64) {
	// No snapshot may cover a half-done ring transition: the handoff state
	// (buffered chunks, parked requests, pending cut) is reconstructed by
	// rejoiners from the ordered tail instead, which the migration's
	// truncation hold keeps available. The verdict is a pure function of
	// the stream (the migration is armed and disarmed at ordered
	// positions), so every replica defers the same boundaries.
	r.rt.Lock()
	migrating := r.mig != nil || len(r.earlyChunks) > 0
	r.rt.Unlock()
	if migrating {
		r.ckptSkipped.Inc()
		r.trace.Record("order", obs.KindCheckpoint, "ckpt", strconv.FormatUint(seq, 10)+"/defer")
		return
	}
	start := r.rt.Now()
	p := vtime.NewParker("ckpt/" + string(r.self))
	drained := false
	r.sched.Quiesce(func(d bool) {
		drained = d
		r.rt.Unpark(p)
	})
	r.rt.Lock()
	r.rt.Park(p)
	r.rt.Unlock()
	if !drained {
		r.ckptSkipped.Inc()
		r.trace.Record("order", obs.KindCheckpoint, "ckpt", strconv.FormatUint(seq, 10)+"/skip")
		return
	}
	r.rt.Lock()
	r.evictStableLocked(seq)
	entries := r.seenEntriesLocked()
	r.rt.Unlock()
	// Record before exporting: the envelope's digest state must include the
	// checkpoint event itself, so a replica restored from this snapshot
	// continues with digests identical to the donors'.
	r.trace.Record("order", obs.KindCheckpoint, "ckpt", strconv.FormatUint(seq, 10))
	state, usedGob, err := r.snapshotState()
	if err != nil {
		// Same state type on every replica, so the failure (e.g. gob meeting
		// unexported fields) is deterministic: nobody records a checkpoint
		// and the log stays bounded only by the retention cap.
		return
	}
	env := snapshotEnvelope{
		Seq:     seq,
		State:   state,
		UsedGob: usedGob,
		Entries: entries,
		Streams: r.trace.ExportStreams(),
	}
	if ss, ok := r.sched.(adets.StatefulScheduler); ok {
		sched, err := ss.MarshalSchedulerState()
		if err != nil {
			return // deterministic: the same state fails on every replica
		}
		env.Sched = sched
	}
	if r.shard != nil {
		env.Shard = r.shard.Current().Table.Encode()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return
	}
	data := buf.Bytes()
	r.member.SetCheckpoint(seq, data)
	r.checkpoints.Inc()
	r.snapSize.Set(int64(len(data)))
	r.ckptDuration.ObserveDuration(r.rt.Now() - start)
}

// snapshotState serializes the object state: Snapshotter when implemented,
// gob otherwise (nil state yields a nil image).
func (r *Replica) snapshotState() (data []byte, usedGob bool, err error) {
	switch s := r.state.(type) {
	case nil:
		return nil, false, nil
	case Snapshotter:
		data, err = s.Snapshot()
		return data, false, err
	default:
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(r.state); err != nil {
			return nil, true, err
		}
		return buf.Bytes(), true, nil
	}
}

func (r *Replica) restoreState(env *snapshotEnvelope) {
	if len(env.State) == 0 || r.state == nil {
		return
	}
	if s, ok := r.state.(Snapshotter); ok && !env.UsedGob {
		_ = s.Restore(env.State)
		return
	}
	_ = gob.NewDecoder(bytes.NewReader(env.State)).Decode(r.state)
}

// evictStableLocked drops reply-cache entries that have aged out of the
// duplicate-detection window: everything first seen at or below seq minus
// two checkpoint intervals. The boundary is a pure function of the ordered
// stream — unlike the gcs stability watermark, which depends on
// failure-detector timing — so every replica evicts the same entries at the
// same position and duplicate classification never diverges. Entries still
// executing (no cached reply yet) are always retained.
func (r *Replica) evictStableLocked(seq uint64) {
	window := 2 * r.ckptEvery
	if seq <= window {
		return
	}
	floor := seq - window
	// Remember the eviction floor: a retransmission ordered at or below it
	// whose entry is gone can no longer be answered from the reply cache —
	// the duplicate hook returns a typed expired-duplicate error instead.
	r.evictFloor = floor
	kept := r.seenOrder[:0]
	for _, id := range r.seenOrder {
		at, ok := r.seen[id]
		if !ok {
			continue
		}
		if at <= floor {
			if _, done := r.cache[id]; done {
				delete(r.seen, id)
				delete(r.seenKey, id)
				delete(r.cache, id)
				continue
			}
		}
		kept = append(kept, id)
	}
	r.seenOrder = kept
}

// seenEntriesLocked copies the at-most-once bookkeeping for the envelope,
// in first-seen order (already deterministic: it follows the stream).
func (r *Replica) seenEntriesLocked() []seenEntry {
	entries := make([]seenEntry, 0, len(r.seenOrder))
	for _, id := range r.seenOrder {
		at, ok := r.seen[id]
		if !ok {
			continue
		}
		e := seenEntry{ID: id, SeenAt: at, Key: r.seenKey[id]}
		if rep, done := r.cache[id]; done {
			e.Done = true
			e.Reply = rep
		}
		entries = append(entries, e)
	}
	return entries
}

// installSnapshot restores this replica from a checkpoint delivered in
// place of a truncated tail. The group member has already repositioned the
// delivery frontier at d.Seq+1; here the object state, the reply cache and
// the trace digests are reset to the donor's exact position. Checkpoints
// are only taken fully drained, so the donor had no live threads — local
// nested-invocation bookkeeping (necessarily stale) is cleared outright.
func (r *Replica) installSnapshot(d gcs.Delivery) {
	var env snapshotEnvelope
	if err := gob.NewDecoder(bytes.NewReader(d.Snapshot)).Decode(&env); err != nil {
		return
	}
	r.restoreState(&env)
	r.rt.Lock()
	r.seen = make(map[wire.InvocationID]uint64, len(env.Entries))
	r.seenOrder = r.seenOrder[:0]
	r.seenKey = make(map[wire.InvocationID]string)
	r.cache = make(map[wire.InvocationID]Reply, len(env.Entries))
	for _, e := range env.Entries {
		r.seen[e.ID] = e.SeenAt
		r.seenOrder = append(r.seenOrder, e.ID)
		if e.Key != "" {
			r.seenKey[e.ID] = e.Key
		}
		if e.Done {
			r.cache[e.ID] = e.Reply
		}
	}
	r.logicalLive = make(map[wire.LogicalID]int)
	r.nested = make(map[wire.InvocationID]*nestedCall)
	r.earlyReplies = make(map[wire.InvocationID]Reply)
	r.nestedWaiting = make(map[wire.LogicalID]int)
	r.pendingCallbacks = make(map[wire.LogicalID][]pendingCallback)
	// Checkpoints are never taken mid-migration, so the donor had no
	// handoff state; any local leftovers are stale by construction. The
	// ordered tail past the snapshot replays prepare/chunks/fence and
	// rebuilds them deterministically.
	r.mig = nil
	r.earlyChunks = nil
	if r.specMgr != nil {
		// The primary state was rewritten wholesale: no fork taken before
		// this point can be valid, and in-flight accounting is void.
		r.specMgr.Reset(env.Seq)
		r.specPending = 0
	}
	r.rt.Unlock()
	if r.shard != nil && len(env.Shard) > 0 {
		// Restore, not Install: the donor's table may be any number of
		// epochs (and reshapes) ahead of this rejoiner's.
		if t, err := shard.DecodeTable(env.Shard); err == nil {
			if r.shard.Restore(t) == nil {
				r.shardEpochG.Set(int64(t.Epoch))
			}
		}
	}
	if len(env.Sched) > 0 {
		if ss, ok := r.sched.(adets.StatefulScheduler); ok {
			// The rejoiner adopts the donor's scheduler epoch/kind: the
			// boundary submissions that produced them are in the truncated
			// prefix and can never be replayed here.
			_ = ss.UnmarshalSchedulerState(env.Sched)
		}
	}
	r.trace.RestoreStreams(env.Streams)
}

// CacheSize returns the number of cached replies (tests, bench reporter).
func (r *Replica) CacheSize() int {
	r.rt.Lock()
	defer r.rt.Unlock()
	return len(r.cache)
}
