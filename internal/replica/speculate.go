package replica

import (
	"bytes"
	"encoding/gob"
	"errors"
	"strings"
	"time"

	"github.com/replobj/replobj/internal/adets"
	"github.com/replobj/replobj/internal/gcs"
	"github.com/replobj/replobj/internal/obs/tracing"
	"github.com/replobj/replobj/internal/spec"
)

// Speculative execution on optimistic delivery.
//
// Clients already send every Submit to every member, so each replica sees a
// request the moment it arrives — long before the sequencer assigns it a
// position. With Config.Speculative set, the replica uses that window: it
// executes the request immediately against a forked copy of the object
// state, and when the total order confirms the request it releases the
// precomputed reply at once if no conflicting request was dispatched in
// between (a hit). The ordered execution still runs unchanged on every
// replica — it is what mutates the primary state, feeds the schedule-trace
// digests, and populates the reply cache — so committed state, traces and
// at-most-once behaviour are bit-identical to a non-speculative run; a
// speculation only ever touches its private fork, and an abort is a plain
// discard. What speculation changes is purely when the client's reply
// leaves the replica.
//
// Validity is judged with conflict classes (the same classes ADETS-CC
// schedules by): a speculation forked at stream position base is a hit iff
// no request whose classes intersect was dispatched after base. A handler
// must therefore confine its reads and writes to its declared classes and
// be a pure function of (state, args) — a handler that peeks outside them
// can produce a speculative reply that differs from the ordered one; the
// mismatch counter surfaces exactly that.
//
// A speculation whose handler is still running when the order confirms it
// is not discarded: its validity verdict is frozen (later dispatches are
// ordered after it and cannot conflict retroactively) and the reply is
// released the moment the handler finishes — the deferred hit that keeps
// speculation profitable when execution time exceeds the ordering delay.

// expiredDuplicatePrefix tags the typed error a replica returns when a
// client retransmits a request whose reply has aged out of the
// duplicate-detection window (see evictStableLocked): at-most-once can no
// longer replay the original reply, and silence would leave the client
// retrying forever.
const expiredDuplicatePrefix = "replica: duplicate expired"

// expiredDuplicateError formats the typed expired-duplicate error.
func expiredDuplicateError(seq uint64) string {
	return expiredDuplicatePrefix + ": reply evicted at stream position " + utoa(seq)
}

// IsExpiredDuplicate reports whether an invocation error marks a
// retransmission whose original reply was evicted from the reply cache.
// The caller cannot learn the outcome of the original execution; it must
// treat the request as possibly-executed.
func IsExpiredDuplicate(err error) bool {
	return err != nil && strings.HasPrefix(err.Error(), expiredDuplicatePrefix)
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for v > 0 {
		p--
		b[p] = byte('0' + v%10)
		v /= 10
	}
	return string(b[p:])
}

// errSpecAbort is the sentinel a speculative invocation panics with when
// the handler uses a facility that cannot run against a private fork
// (condition variables, nested invocations). runSpeculation recovers it
// and poisons the record; the ordered execution runs the request normally.
type specAbort struct{}

// onOptimisticSubmit fires (outside the runtime lock) for every fresh
// Submit arriving at this member, before the total order positions it.
// It feeds the conflict classes to an early-scheduling-capable scheduler
// and, when possible, starts a speculative execution on a forked state.
func (r *Replica) onOptimisticSubmit(sub gcs.Submit) {
	req, ok := sub.Payload.(Request)
	if !ok || req.Kind != KindClient {
		return
	}
	var classes []string
	if r.classes != nil {
		classes = r.classes(req.Method, req.Args)
	}
	// Early scheduling: the class→lane plan is computed (and cached) now,
	// so the ordered Submit finds it ready.
	if es, ok := r.sched.(adets.EarlyScheduler); ok {
		es.EarlySubmit(req.ID, classes)
	}
	h, ok := r.handlers[req.Method]
	if !ok {
		return
	}
	r.rt.Lock()
	if r.stopped || r.specMgr == nil {
		r.rt.Unlock()
		return
	}
	if _, seen := r.seen[req.ID]; seen {
		// Already ordered and dispatched: speculating now cannot beat it.
		r.rt.Unlock()
		return
	}
	// Refresh the fork image when it is stale and the state is quiescent:
	// no dispatched request is between submission and completed execution,
	// so the primary state is exactly the ordered prefix up to LastSeq.
	// Holding the runtime lock keeps it that way (dispatch takes the lock
	// first), so the snapshot cannot tear.
	if r.specMgr.NeedImage() && r.specPending == 0 {
		if data, usedGob, err := r.snapshotState(); err == nil {
			r.specMgr.SetImage(data, usedGob, r.specMgr.LastSeq())
		}
	}
	image, usedGob, base, okImg := r.specMgr.Image()
	if !okImg || !r.specMgr.Begin(req.ID.String(), base, classes) {
		// No usable image (or a duplicate/overflowing record): skip — the
		// ordered execution alone serves this request.
		r.rt.Unlock()
		return
	}
	r.rt.Unlock()
	r.specAttempts.Inc()
	r.rt.Go("spec/"+req.ID.String(), func() {
		r.runSpeculation(req, h, image, usedGob)
	})
}

// onHint records a sequencer spontaneous-order hint: the predicted stream
// position for a submission in flight. Hints are advisory — the conflict
// floors remain the sole validity authority — and are only consumed by the
// hint-accuracy counter at confirm time.
func (r *Replica) onHint(h gcs.Hint) {
	r.rt.Lock()
	if !r.stopped && r.specMgr != nil {
		r.specMgr.Hint(h.ID, h.Seq)
	}
	r.rt.Unlock()
}

// forkState builds a private state instance from the cached image.
func (r *Replica) forkState(image []byte, usedGob bool) (any, error) {
	if r.stateFactory == nil {
		return nil, errors.New("replica: no state factory to fork")
	}
	st := r.stateFactory()
	if len(image) == 0 {
		return st, nil
	}
	if s, ok := st.(Snapshotter); ok && !usedGob {
		if err := s.Restore(image); err != nil {
			return nil, err
		}
		return st, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(image)).Decode(st); err != nil {
		return nil, err
	}
	return st, nil
}

// runSpeculation executes req's handler against a fork restored from
// image, entirely outside the scheduler: the fork is private to this
// goroutine, so locks degenerate to no-ops and no deterministic decision
// is ever taken (nothing here reaches the trace streams). On completion
// the reply is stored for the confirm path — or sent directly when the
// total order already confirmed the speculation as valid (deferred hit).
func (r *Replica) runSpeculation(req Request, h Handler, image []byte, usedGob bool) {
	id := req.ID.String()
	fork, err := r.forkState(image, usedGob)
	if err != nil {
		r.rt.Lock()
		r.specMgr.Abort(id)
		r.rt.Unlock()
		return
	}
	traced := r.spans != nil && req.Trace.Valid()
	var tStart time.Duration
	if traced {
		tStart = r.rt.Now()
	}
	inv := &Invocation{r: r, req: req, speculative: true, fork: fork}
	var reply Reply
	aborted := false
	func() {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(specAbort); ok {
					aborted = true
					return
				}
				panic(p)
			}
		}()
		result, herr := h(inv)
		reply = Reply{ID: req.ID, From: r.self, Result: result}
		if herr != nil {
			reply.Err = herr.Error()
		}
	}()
	if traced {
		tEnd := r.rt.Now()
		specID := tracing.NewSpanID(req.Trace.TraceID, "spec", string(r.self), tStart)
		r.spans.Record(tracing.Span{
			Trace:  req.Trace.TraceID,
			ID:     specID,
			Parent: req.Trace.Span,
			Name:   "spec",
			Node:   string(r.self),
			Detail: req.Method,
			Start:  tStart,
			Dur:    tEnd - tStart,
		})
		// A released speculative reply links back to this span exactly as an
		// ordered reply links to its exec span.
		reply.Trace = tracing.Context{TraceID: req.Trace.TraceID, Span: specID}
	}
	r.rt.Lock()
	if aborted {
		r.specMgr.Abort(id)
		r.rt.Unlock()
		return
	}
	release, _ := r.specMgr.Finish(id, reply)
	stopped := r.stopped
	r.rt.Unlock()
	if release && !stopped {
		// Deferred hit: the order confirmed this speculation while the
		// handler was still running; release the reply now.
		r.specHits.Inc()
		r.sendReply(req, reply)
	}
}

// specConfirm resolves a confirmed request against the speculation state
// at its totally ordered dispatch point. Called under the runtime lock,
// before the request's own TrackDispatch; the returned action is performed
// by the caller after unlocking.
type specAction struct {
	reply     Reply
	send      bool // hit: release the precomputed reply now
	abort     bool // stale or poisoned: count it
	hintMatch bool // the sequencer's position hint was exact
	hintSeen  bool
}

func (r *Replica) specConfirmLocked(req Request, seq uint64, classes []string) (act specAction) {
	if r.specMgr == nil || req.Kind != KindClient {
		return act
	}
	id := req.ID.String()
	act.hintMatch, act.hintSeen = r.specMgr.HintMatch(id, seq)
	rep, out := r.specMgr.Confirm(id, classes)
	switch out {
	case spec.Hit:
		if rp, ok := rep.(Reply); ok {
			act.reply = rp
			act.send = true
		}
	case spec.Stale, spec.Aborted:
		act.abort = true
	case spec.Pending, spec.Miss:
		// Pending: the running handler releases the reply on finish (or the
		// ordered execution outruns it — counted there). Miss: nothing to do.
	}
	return act
}

// specConfirmFinish performs the side effects of a confirm outcome outside
// the runtime lock.
func (r *Replica) specConfirmFinish(req Request, act specAction) {
	if act.hintSeen && act.hintMatch {
		r.specHintMatches.Inc()
	}
	if act.abort {
		r.specAborts.Inc()
	}
	if act.send {
		r.specHits.Inc()
		r.sendReply(req, act.reply)
	}
}
