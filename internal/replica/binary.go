package replica

import (
	"errors"

	"github.com/replobj/replobj/internal/obs/tracing"
	"github.com/replobj/replobj/internal/wire"
)

// Binary wire-codec fast paths for the invocation envelopes. Every client
// invocation crosses the wire as a Request (inside a gcs.Submit, then again
// inside the sequencer's gcs.Ordered) and returns as a Reply, so these two
// types dominate payload bytes. Tags live in the 20–29 range assigned to
// this package (see internal/wire/binary.go).
//
// Traced requests and replies (non-zero Trace context) take the variant
// tags 22/23, which append the two context words after the base fields.
// Untraced values keep tags 20/21 with the exact pre-tracing byte layout,
// so mixed-version peers interoperate as long as tracing stays off.
//
// Shard-routed traffic takes tags 24–26: 24 appends the routing epoch,
// the shard key and the trace words to a request; 25 additionally carries
// the cross-shard key list; 26 appends a reply's shard epoch and trace
// words. The variant predicates are mutually exclusive (a value matches
// exactly one tag), so the canonical-encoding invariant — decode then
// re-encode is byte-stable — holds regardless of registration order.

const (
	tagRequest       = 20
	tagReply         = 21
	tagRequestTraced = 22
	tagReplyTraced   = 23
	tagRequestShard  = 24
	tagRequestCross  = 25
	tagReplyShard    = 26
	tagMigrateChunk  = 27
)

// errUntracedVariant rejects traced-tag frames whose context is zero —
// the canonical encoding of those values is the untraced tag.
var errUntracedVariant = errors.New("replica: traced payload tag without trace id")

// errUnshardedVariant rejects shard-tag frames without shard fields — the
// canonical encoding of those values is tag 20/22 (or 21/23 for replies).
var errUnshardedVariant = errors.New("replica: shard payload tag without shard fields")

// maxCrossKeys bounds the cross-shard key list a frame may carry: sanity
// against hostile or corrupted length prefixes.
const maxCrossKeys = 1 << 12

// maxChunkKeys / maxChunkCache bound a migration chunk's key and
// reply-cache entry counts — again sanity against corrupted prefixes (the
// sender chunks at shard.DefaultChunkKeys, far below either).
const (
	maxChunkKeys  = 1 << 20
	maxChunkCache = 1 << 16
)

func requestSharded(q Request) bool {
	return q.ShardEpoch != 0 || q.ShardKey != ""
}

func init() {
	wire.RegisterBinaryPayload(tagRequest, Request{},
		func(b *wire.Buffer, v any) error {
			encRequestFields(b, v.(Request))
			return nil
		},
		func(r *wire.Reader) (any, error) {
			return decRequestFields(r)
		})
	wire.RegisterBinaryPayloadVariant(tagRequestTraced, Request{},
		func(v any) bool {
			q := v.(Request)
			return q.Trace.Valid() && !requestSharded(q) && len(q.CrossKeys) == 0
		},
		func(b *wire.Buffer, v any) error {
			q := v.(Request)
			encRequestFields(b, q)
			b.Uvarint(q.Trace.TraceID)
			b.Uvarint(q.Trace.Span)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			q, err := decRequestFields(r)
			if err != nil {
				return nil, err
			}
			if q.Trace.TraceID, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if q.Trace.Span, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if !q.Trace.Valid() {
				// Canonical form: a zero trace id belongs on the untraced
				// tag. Rejecting it keeps re-encoding byte-stable.
				return nil, errUntracedVariant
			}
			return q, nil
		})
	wire.RegisterBinaryPayloadVariant(tagRequestShard, Request{},
		func(v any) bool {
			q := v.(Request)
			return requestSharded(q) && len(q.CrossKeys) == 0
		},
		func(b *wire.Buffer, v any) error {
			q := v.(Request)
			encRequestFields(b, q)
			b.Uvarint(q.ShardEpoch)
			b.String(q.ShardKey)
			b.Uvarint(q.Trace.TraceID)
			b.Uvarint(q.Trace.Span)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			q, err := decRequestShardFields(r)
			if err != nil {
				return nil, err
			}
			if !requestSharded(q) {
				// Canonical form: without shard fields this is a 20/22 frame.
				return nil, errUnshardedVariant
			}
			return q, nil
		})
	wire.RegisterBinaryPayloadVariant(tagRequestCross, Request{},
		func(v any) bool { return len(v.(Request).CrossKeys) > 0 },
		func(b *wire.Buffer, v any) error {
			q := v.(Request)
			encRequestFields(b, q)
			b.Uvarint(q.ShardEpoch)
			b.String(q.ShardKey)
			b.Uvarint(uint64(len(q.CrossKeys)))
			for _, k := range q.CrossKeys {
				b.String(k)
			}
			b.Uvarint(q.Trace.TraceID)
			b.Uvarint(q.Trace.Span)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			q, err := decRequestFields(r)
			if err != nil {
				return nil, err
			}
			if q.ShardEpoch, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if q.ShardKey, err = r.String(); err != nil {
				return nil, err
			}
			n, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			if n == 0 {
				// Canonical form: no cross keys belongs on tag 24 (or 20/22).
				return nil, errUnshardedVariant
			}
			if n > maxCrossKeys {
				return nil, errors.New("replica: implausible cross-shard key count")
			}
			q.CrossKeys = make([]string, n)
			for i := range q.CrossKeys {
				if q.CrossKeys[i], err = r.String(); err != nil {
					return nil, err
				}
			}
			if q.Trace.TraceID, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if q.Trace.Span, err = r.Uvarint(); err != nil {
				return nil, err
			}
			return q, nil
		})
	wire.RegisterBinaryPayload(tagReply, Reply{},
		func(b *wire.Buffer, v any) error {
			encReplyFields(b, v.(Reply))
			return nil
		},
		func(r *wire.Reader) (any, error) {
			return decReplyFields(r)
		})
	wire.RegisterBinaryPayloadVariant(tagReplyTraced, Reply{},
		func(v any) bool {
			p := v.(Reply)
			return p.Trace.Valid() && p.ShardEpoch == 0
		},
		func(b *wire.Buffer, v any) error {
			p := v.(Reply)
			encReplyFields(b, p)
			b.Uvarint(p.Trace.TraceID)
			b.Uvarint(p.Trace.Span)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			p, err := decReplyFields(r)
			if err != nil {
				return nil, err
			}
			if p.Trace.TraceID, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if p.Trace.Span, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if !p.Trace.Valid() {
				return nil, errUntracedVariant
			}
			return p, nil
		})
	wire.RegisterBinaryPayloadVariant(tagReplyShard, Reply{},
		func(v any) bool { return v.(Reply).ShardEpoch != 0 },
		func(b *wire.Buffer, v any) error {
			p := v.(Reply)
			encReplyFields(b, p)
			b.Uvarint(p.ShardEpoch)
			b.Uvarint(p.Trace.TraceID)
			b.Uvarint(p.Trace.Span)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			p, err := decReplyFields(r)
			if err != nil {
				return nil, err
			}
			if p.ShardEpoch, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if p.Trace.TraceID, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if p.Trace.Span, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if p.ShardEpoch == 0 {
				// Canonical form: epoch-less replies belong on tags 21/23.
				return nil, errUnshardedVariant
			}
			return p, nil
		})
	wire.RegisterBinaryPayload(tagMigrateChunk, MigrateChunk{},
		func(b *wire.Buffer, v any) error {
			encMigrateChunk(b, v.(MigrateChunk))
			return nil
		},
		func(r *wire.Reader) (any, error) {
			return decMigrateChunk(r)
		})
}

func encMigrateChunk(b *wire.Buffer, ck MigrateChunk) {
	b.String(ck.Object)
	b.Uvarint(ck.Epoch)
	b.String(string(ck.Source))
	b.String(string(ck.Target))
	b.Uvarint(uint64(ck.Index))
	b.Uvarint(uint64(ck.Count))
	b.Uvarint(ck.Cut)
	b.Uvarint(uint64(len(ck.Keys)))
	for _, k := range ck.Keys {
		b.String(k.Key)
		b.Bytes(k.Data)
	}
	b.Uvarint(uint64(len(ck.Cache)))
	for _, ce := range ck.Cache {
		encInvocationID(b, ce.ID)
		b.String(ce.Key)
		encReplyFields(b, ce.Reply)
		b.Uvarint(ce.Reply.ShardEpoch)
		b.Uvarint(ce.Reply.Trace.TraceID)
		b.Uvarint(ce.Reply.Trace.Span)
	}
}

func decMigrateChunk(r *wire.Reader) (MigrateChunk, error) {
	var ck MigrateChunk
	var err error
	if ck.Object, err = r.String(); err != nil {
		return ck, err
	}
	if ck.Epoch, err = r.Uvarint(); err != nil {
		return ck, err
	}
	s, err := r.String()
	if err != nil {
		return ck, err
	}
	ck.Source = wire.GroupID(s)
	if s, err = r.String(); err != nil {
		return ck, err
	}
	ck.Target = wire.GroupID(s)
	u, err := r.Uvarint()
	if err != nil {
		return ck, err
	}
	ck.Index = int(u)
	if u, err = r.Uvarint(); err != nil {
		return ck, err
	}
	ck.Count = int(u)
	if ck.Cut, err = r.Uvarint(); err != nil {
		return ck, err
	}
	n, err := r.Uvarint()
	if err != nil {
		return ck, err
	}
	if n > maxChunkKeys {
		return ck, errors.New("replica: implausible migration chunk key count")
	}
	if n > 0 {
		ck.Keys = make([]KeyState, n)
		for i := range ck.Keys {
			if ck.Keys[i].Key, err = r.String(); err != nil {
				return ck, err
			}
			if ck.Keys[i].Data, err = r.Bytes(); err != nil {
				return ck, err
			}
		}
	}
	if n, err = r.Uvarint(); err != nil {
		return ck, err
	}
	if n > maxChunkCache {
		return ck, errors.New("replica: implausible migration cache entry count")
	}
	if n > 0 {
		ck.Cache = make([]CacheEntry, n)
		for i := range ck.Cache {
			if ck.Cache[i].ID, err = decInvocationID(r); err != nil {
				return ck, err
			}
			if ck.Cache[i].Key, err = r.String(); err != nil {
				return ck, err
			}
			if ck.Cache[i].Reply, err = decReplyFields(r); err != nil {
				return ck, err
			}
			if ck.Cache[i].Reply.ShardEpoch, err = r.Uvarint(); err != nil {
				return ck, err
			}
			if ck.Cache[i].Reply.Trace.TraceID, err = r.Uvarint(); err != nil {
				return ck, err
			}
			if ck.Cache[i].Reply.Trace.Span, err = r.Uvarint(); err != nil {
				return ck, err
			}
		}
	}
	return ck, nil
}

// decRequestShardFields decodes a tag-24 frame: base fields, shard epoch,
// shard key, trace words.
func decRequestShardFields(r *wire.Reader) (Request, error) {
	q, err := decRequestFields(r)
	if err != nil {
		return q, err
	}
	if q.ShardEpoch, err = r.Uvarint(); err != nil {
		return q, err
	}
	if q.ShardKey, err = r.String(); err != nil {
		return q, err
	}
	if q.Trace.TraceID, err = r.Uvarint(); err != nil {
		return q, err
	}
	if q.Trace.Span, err = r.Uvarint(); err != nil {
		return q, err
	}
	return q, nil
}

func encRequestFields(b *wire.Buffer, q Request) {
	encInvocationID(b, q.ID)
	b.String(string(q.Group))
	b.String(q.Method)
	b.Bytes(q.Args)
	b.Byte(byte(q.Kind))
	b.String(string(q.ReplyTo))
	b.String(string(q.Origin))
}

func decRequestFields(r *wire.Reader) (Request, error) {
	var q Request
	var err error
	if q.ID, err = decInvocationID(r); err != nil {
		return q, err
	}
	s, err := r.String()
	if err != nil {
		return q, err
	}
	q.Group = wire.GroupID(s)
	if q.Method, err = r.String(); err != nil {
		return q, err
	}
	if q.Args, err = r.Bytes(); err != nil {
		return q, err
	}
	kind, err := r.Byte()
	if err != nil {
		return q, err
	}
	q.Kind = RequestKind(kind)
	if s, err = r.String(); err != nil {
		return q, err
	}
	q.ReplyTo = wire.NodeID(s)
	if s, err = r.String(); err != nil {
		return q, err
	}
	q.Origin = wire.GroupID(s)
	return q, nil
}

func encReplyFields(b *wire.Buffer, p Reply) {
	encInvocationID(b, p.ID)
	b.String(string(p.From))
	b.Bytes(p.Result)
	b.String(p.Err)
}

func decReplyFields(r *wire.Reader) (Reply, error) {
	var p Reply
	var err error
	if p.ID, err = decInvocationID(r); err != nil {
		return p, err
	}
	s, err := r.String()
	if err != nil {
		return p, err
	}
	p.From = wire.NodeID(s)
	if p.Result, err = r.Bytes(); err != nil {
		return p, err
	}
	if p.Err, err = r.String(); err != nil {
		return p, err
	}
	return p, nil
}

func encInvocationID(b *wire.Buffer, id wire.InvocationID) {
	b.String(string(id.Logical))
	b.Uvarint(id.Seq)
}

func decInvocationID(r *wire.Reader) (wire.InvocationID, error) {
	var id wire.InvocationID
	s, err := r.String()
	if err != nil {
		return id, err
	}
	id.Logical = wire.LogicalID(s)
	if id.Seq, err = r.Uvarint(); err != nil {
		return id, err
	}
	return id, nil
}

var (
	_ tracing.Traced = Request{}
	_ tracing.Traced = Reply{}
)
