package replica

import (
	"errors"

	"github.com/replobj/replobj/internal/obs/tracing"
	"github.com/replobj/replobj/internal/wire"
)

// Binary wire-codec fast paths for the invocation envelopes. Every client
// invocation crosses the wire as a Request (inside a gcs.Submit, then again
// inside the sequencer's gcs.Ordered) and returns as a Reply, so these two
// types dominate payload bytes. Tags live in the 20–29 range assigned to
// this package (see internal/wire/binary.go).
//
// Traced requests and replies (non-zero Trace context) take the variant
// tags 22/23, which append the two context words after the base fields.
// Untraced values keep tags 20/21 with the exact pre-tracing byte layout,
// so mixed-version peers interoperate as long as tracing stays off.

const (
	tagRequest       = 20
	tagReply         = 21
	tagRequestTraced = 22
	tagReplyTraced   = 23
)

// errUntracedVariant rejects traced-tag frames whose context is zero —
// the canonical encoding of those values is the untraced tag.
var errUntracedVariant = errors.New("replica: traced payload tag without trace id")

func init() {
	wire.RegisterBinaryPayload(tagRequest, Request{},
		func(b *wire.Buffer, v any) error {
			encRequestFields(b, v.(Request))
			return nil
		},
		func(r *wire.Reader) (any, error) {
			return decRequestFields(r)
		})
	wire.RegisterBinaryPayloadVariant(tagRequestTraced, Request{},
		func(v any) bool { return v.(Request).Trace.Valid() },
		func(b *wire.Buffer, v any) error {
			q := v.(Request)
			encRequestFields(b, q)
			b.Uvarint(q.Trace.TraceID)
			b.Uvarint(q.Trace.Span)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			q, err := decRequestFields(r)
			if err != nil {
				return nil, err
			}
			if q.Trace.TraceID, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if q.Trace.Span, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if !q.Trace.Valid() {
				// Canonical form: a zero trace id belongs on the untraced
				// tag. Rejecting it keeps re-encoding byte-stable.
				return nil, errUntracedVariant
			}
			return q, nil
		})
	wire.RegisterBinaryPayload(tagReply, Reply{},
		func(b *wire.Buffer, v any) error {
			encReplyFields(b, v.(Reply))
			return nil
		},
		func(r *wire.Reader) (any, error) {
			return decReplyFields(r)
		})
	wire.RegisterBinaryPayloadVariant(tagReplyTraced, Reply{},
		func(v any) bool { return v.(Reply).Trace.Valid() },
		func(b *wire.Buffer, v any) error {
			p := v.(Reply)
			encReplyFields(b, p)
			b.Uvarint(p.Trace.TraceID)
			b.Uvarint(p.Trace.Span)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			p, err := decReplyFields(r)
			if err != nil {
				return nil, err
			}
			if p.Trace.TraceID, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if p.Trace.Span, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if !p.Trace.Valid() {
				return nil, errUntracedVariant
			}
			return p, nil
		})
}

func encRequestFields(b *wire.Buffer, q Request) {
	encInvocationID(b, q.ID)
	b.String(string(q.Group))
	b.String(q.Method)
	b.Bytes(q.Args)
	b.Byte(byte(q.Kind))
	b.String(string(q.ReplyTo))
	b.String(string(q.Origin))
}

func decRequestFields(r *wire.Reader) (Request, error) {
	var q Request
	var err error
	if q.ID, err = decInvocationID(r); err != nil {
		return q, err
	}
	s, err := r.String()
	if err != nil {
		return q, err
	}
	q.Group = wire.GroupID(s)
	if q.Method, err = r.String(); err != nil {
		return q, err
	}
	if q.Args, err = r.Bytes(); err != nil {
		return q, err
	}
	kind, err := r.Byte()
	if err != nil {
		return q, err
	}
	q.Kind = RequestKind(kind)
	if s, err = r.String(); err != nil {
		return q, err
	}
	q.ReplyTo = wire.NodeID(s)
	if s, err = r.String(); err != nil {
		return q, err
	}
	q.Origin = wire.GroupID(s)
	return q, nil
}

func encReplyFields(b *wire.Buffer, p Reply) {
	encInvocationID(b, p.ID)
	b.String(string(p.From))
	b.Bytes(p.Result)
	b.String(p.Err)
}

func decReplyFields(r *wire.Reader) (Reply, error) {
	var p Reply
	var err error
	if p.ID, err = decInvocationID(r); err != nil {
		return p, err
	}
	s, err := r.String()
	if err != nil {
		return p, err
	}
	p.From = wire.NodeID(s)
	if p.Result, err = r.Bytes(); err != nil {
		return p, err
	}
	if p.Err, err = r.String(); err != nil {
		return p, err
	}
	return p, nil
}

func encInvocationID(b *wire.Buffer, id wire.InvocationID) {
	b.String(string(id.Logical))
	b.Uvarint(id.Seq)
}

func decInvocationID(r *wire.Reader) (wire.InvocationID, error) {
	var id wire.InvocationID
	s, err := r.String()
	if err != nil {
		return id, err
	}
	id.Logical = wire.LogicalID(s)
	if id.Seq, err = r.Uvarint(); err != nil {
		return id, err
	}
	return id, nil
}

var (
	_ tracing.Traced = Request{}
	_ tracing.Traced = Reply{}
)
