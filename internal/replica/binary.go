package replica

import (
	"github.com/replobj/replobj/internal/wire"
)

// Binary wire-codec fast paths for the invocation envelopes. Every client
// invocation crosses the wire as a Request (inside a gcs.Submit, then again
// inside the sequencer's gcs.Ordered) and returns as a Reply, so these two
// types dominate payload bytes. Tags live in the 20–29 range assigned to
// this package (see internal/wire/binary.go).

const (
	tagRequest = 20
	tagReply   = 21
)

func init() {
	wire.RegisterBinaryPayload(tagRequest, Request{},
		func(b *wire.Buffer, v any) error {
			q := v.(Request)
			encInvocationID(b, q.ID)
			b.String(string(q.Group))
			b.String(q.Method)
			b.Bytes(q.Args)
			b.Byte(byte(q.Kind))
			b.String(string(q.ReplyTo))
			b.String(string(q.Origin))
			return nil
		},
		func(r *wire.Reader) (any, error) {
			var q Request
			var err error
			if q.ID, err = decInvocationID(r); err != nil {
				return nil, err
			}
			s, err := r.String()
			if err != nil {
				return nil, err
			}
			q.Group = wire.GroupID(s)
			if q.Method, err = r.String(); err != nil {
				return nil, err
			}
			if q.Args, err = r.Bytes(); err != nil {
				return nil, err
			}
			kind, err := r.Byte()
			if err != nil {
				return nil, err
			}
			q.Kind = RequestKind(kind)
			if s, err = r.String(); err != nil {
				return nil, err
			}
			q.ReplyTo = wire.NodeID(s)
			if s, err = r.String(); err != nil {
				return nil, err
			}
			q.Origin = wire.GroupID(s)
			return q, nil
		})
	wire.RegisterBinaryPayload(tagReply, Reply{},
		func(b *wire.Buffer, v any) error {
			p := v.(Reply)
			encInvocationID(b, p.ID)
			b.String(string(p.From))
			b.Bytes(p.Result)
			b.String(p.Err)
			return nil
		},
		func(r *wire.Reader) (any, error) {
			var p Reply
			var err error
			if p.ID, err = decInvocationID(r); err != nil {
				return nil, err
			}
			s, err := r.String()
			if err != nil {
				return nil, err
			}
			p.From = wire.NodeID(s)
			if p.Result, err = r.Bytes(); err != nil {
				return nil, err
			}
			if p.Err, err = r.String(); err != nil {
				return nil, err
			}
			return p, nil
		})
}

func encInvocationID(b *wire.Buffer, id wire.InvocationID) {
	b.String(string(id.Logical))
	b.Uvarint(id.Seq)
}

func decInvocationID(r *wire.Reader) (wire.InvocationID, error) {
	var id wire.InvocationID
	s, err := r.String()
	if err != nil {
		return id, err
	}
	id.Logical = wire.LogicalID(s)
	if id.Seq, err = r.Uvarint(); err != nil {
		return id, err
	}
	return id, nil
}
