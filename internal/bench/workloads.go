package bench

import (
	"encoding/binary"
	"fmt"
	"time"

	replobj "github.com/replobj/replobj"
)

// This file defines the benchmark object implementations — the handlers the
// paper's Section 5 deploys on the replicated groups — and the
// deterministic client-side parameter generation (mutex choice, randomized
// durations). Parameters are computed by the client and shipped in the
// request arguments, so every replica sees identical values by
// construction.

// Pattern selects one of the local-computation behaviours of Fig. 3.
type Pattern byte

// The four patterns of the paper's Fig. 3 plus the yield ablation variant.
const (
	// PatternA: compute.
	PatternA Pattern = 'a'
	// PatternB: compute – lock – state access – unlock.
	PatternB Pattern = 'b'
	// PatternC: lock – state access and compute – unlock.
	PatternC Pattern = 'c'
	// PatternD: lock – state access – unlock – compute.
	PatternD Pattern = 'd'
	// PatternDYield: PatternD with an explicit Yield after the unlock —
	// the paper's suggested MAT remedy (Section 5.3), ablation AB4.
	PatternDYield Pattern = 'y'
	// PatternDouble: lock m1 – compute – lock m2 – compute – unlock both;
	// exercises PDS-2's two-grants-per-round rule, ablation AB1.
	PatternDouble Pattern = '2'
)

// ComputeTime is the paper's local computation duration.
const ComputeTime = 100 * time.Millisecond

// NumMutexes is the paper's fine-grained lock count for Fig. 4.
const NumMutexes = 10

// registerLocalObject installs the "work" method implementing Fig. 3's
// patterns. Args: [pattern, mutexIdx, mutex2Idx].
func registerLocalObject(g *replobj.Group, compute time.Duration) {
	g.Register("work", func(inv *replobj.Invocation) ([]byte, error) {
		args := inv.Args()
		p := Pattern(args[0])
		m := replobj.MutexID(fmt.Sprintf("m%d", args[1]))
		switch p {
		case PatternA:
			inv.Compute(compute)
		case PatternB:
			inv.Compute(compute)
			if err := inv.Lock(m); err != nil {
				return nil, err
			}
			// state access: negligible time (paper Section 5.3)
			if err := inv.Unlock(m); err != nil {
				return nil, err
			}
		case PatternC:
			if err := inv.Lock(m); err != nil {
				return nil, err
			}
			inv.Compute(compute)
			if err := inv.Unlock(m); err != nil {
				return nil, err
			}
		case PatternD, PatternDYield:
			if err := inv.Lock(m); err != nil {
				return nil, err
			}
			if err := inv.Unlock(m); err != nil {
				return nil, err
			}
			if p == PatternDYield {
				inv.Yield()
			}
			inv.Compute(compute)
		case PatternDouble:
			m2 := replobj.MutexID(fmt.Sprintf("m%d", args[2]))
			if err := inv.Lock(m); err != nil {
				return nil, err
			}
			inv.Compute(compute / 10)
			if err := inv.Lock(m2); err != nil {
				return nil, err
			}
			inv.Compute(compute / 10)
			if err := inv.Unlock(m2); err != nil {
				return nil, err
			}
			if err := inv.Unlock(m); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("bench: unknown pattern %q", p)
		}
		return nil, nil
	})
}

// mix hashes (client, seq) into a deterministic pseudo-random stream so
// clients pick "random" mutexes and durations reproducibly.
func mix(client, seq, salt uint64) uint64 {
	x := client*0x9E3779B97F4A7C15 ^ seq*0xC2B2AE3D27D4EB4F ^ salt*0x165667B19E3779F9
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// localArgs builds the "work" arguments for one invocation. The two-mutex
// pattern acquires in increasing index order (standard lock ordering —
// otherwise the workload itself could deadlock, under any scheduler).
func localArgs(p Pattern, client, seq int) []byte {
	m1 := mix(uint64(client), uint64(seq), 1) % NumMutexes
	m2 := mix(uint64(client), uint64(seq), 2) % NumMutexes
	if m2 == m1 {
		m2 = (m2 + 1) % NumMutexes
	}
	if m2 < m1 {
		m1, m2 = m2, m1
	}
	return []byte{byte(p), byte(m1), byte(m2)}
}

// registerMixedObject installs "mixed" (ablation AB7): half of the
// requests are pure computations, half lock-compute-unlock on a shared
// mutex. Args: [kind(0=compute,1=locker), declare(0/1)]. With declare=1 a
// computation-only request announces NoMoreLocks up front — the explicit
// form of the paper's synchronization-prediction follow-up — so under
// ADETS-MAT it steps out of the token order and never delays the lockers.
func registerMixedObject(g *replobj.Group, compute time.Duration) {
	g.Register("mixed", func(inv *replobj.Invocation) ([]byte, error) {
		args := inv.Args()
		if args[0] == 0 {
			if args[1] == 1 {
				inv.DeclareNoMoreLocks()
			}
			inv.Compute(compute)
			return nil, nil
		}
		if err := inv.Lock("state"); err != nil {
			return nil, err
		}
		inv.Compute(compute / 10)
		if err := inv.Unlock("state"); err != nil {
			return nil, err
		}
		return nil, nil
	})
}

// registerSleepObject installs "sleep": suspend for the duration encoded in
// the arguments (the external service B of the nested-invocation
// benchmarks).
func registerSleepObject(g *replobj.Group) {
	g.Register("sleep", func(inv *replobj.Invocation) ([]byte, error) {
		inv.Compute(time.Duration(binary.BigEndian.Uint16(inv.Args())) * time.Millisecond)
		return nil, nil
	})
}

// registerForwardObject installs "fwd" on group A: a single nested
// invocation of B's "sleep" (Fig. 5(a)).
func registerForwardObject(g *replobj.Group, target replobj.GroupID) {
	g.Register("fwd", func(inv *replobj.Invocation) ([]byte, error) {
		return inv.Invoke(target, "sleep", inv.Args())
	})
}

// registerPermObject installs "perm" on group A (Fig. 5(b)): execute the
// three elements N (nested invocation of B), C (computation), S
// (synchronized state update) in the order given by the arguments.
// Args: [perm0, perm1, perm2, N_ms uint16, C_ms uint16].
func registerPermObject(g *replobj.Group, target replobj.GroupID) {
	g.Register("perm", func(inv *replobj.Invocation) ([]byte, error) {
		args := inv.Args()
		nDur := args[3:5]
		cDur := time.Duration(binary.BigEndian.Uint16(args[5:7])) * time.Millisecond
		for _, el := range args[:3] {
			switch el {
			case 'N':
				if _, err := inv.Invoke(target, "sleep", nDur); err != nil {
					return nil, err
				}
			case 'C':
				inv.Compute(cDur)
			case 'S':
				if err := inv.Lock("state"); err != nil {
					return nil, err
				}
				if err := inv.Unlock("state"); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("bench: bad perm element %q", el)
			}
		}
		return nil, nil
	})
}

// permArgs builds "perm" arguments: N uniform in [100,150)ms, C uniform in
// [75,125)ms, exactly the paper's Section 5.4 parameters.
func permArgs(perm string, client, seq int) []byte {
	n := 100 + mix(uint64(client), uint64(seq), 3)%50
	c := 75 + mix(uint64(client), uint64(seq), 4)%50
	out := make([]byte, 7)
	copy(out, perm)
	binary.BigEndian.PutUint16(out[3:5], uint16(n))
	binary.BigEndian.PutUint16(out[5:7], uint16(c))
	return out
}

// Perms are the six interaction patterns of Fig. 5(b).
var Perms = []string{"NCS", "CNS", "NSC", "CSN", "SCN", "SNC"}

// bufState is the buffer object of the condition-variable benchmarks.
type bufState struct {
	cap   int // 0 = unbounded
	items []byte
}

// DispatchCost models the server-side CPU each invocation consumes
// (unmarshalling, dispatch, handler prologue) — roughly 1 ms on the paper's
// testbed, where a full invocation took 4–5 ms. It is what makes the
// sequential polling fallback degrade: every unsuccessful poll still
// occupies the single-threaded server (paper Section 5.5).
const DispatchCost = time.Millisecond

// registerBufferObject installs the producer/consumer methods of Section
// 5.5: blocking produce/consume (condition variables) plus the polling
// variants used by the sequential baseline. Every method consumes
// DispatchCost of (simulated) server CPU.
func registerBufferObject(g *replobj.Group) {
	g.Register("produce", func(inv *replobj.Invocation) ([]byte, error) {
		st := inv.State().(*bufState)
		inv.Compute(DispatchCost)
		if err := inv.Lock("buf"); err != nil {
			return nil, err
		}
		defer func() { _ = inv.Unlock("buf") }()
		for st.cap > 0 && len(st.items) >= st.cap {
			if _, err := inv.Wait("buf", "notfull", 0); err != nil {
				return nil, err
			}
		}
		st.items = append(st.items, inv.Args()[0])
		if err := inv.Notify("buf", "notempty"); err != nil {
			return nil, err
		}
		return nil, nil
	})
	g.Register("consume", func(inv *replobj.Invocation) ([]byte, error) {
		st := inv.State().(*bufState)
		inv.Compute(DispatchCost)
		if err := inv.Lock("buf"); err != nil {
			return nil, err
		}
		defer func() { _ = inv.Unlock("buf") }()
		for len(st.items) == 0 {
			if _, err := inv.Wait("buf", "notempty", 0); err != nil {
				return nil, err
			}
		}
		v := st.items[0]
		st.items = st.items[1:]
		if st.cap > 0 {
			if err := inv.Notify("buf", "notfull"); err != nil {
				return nil, err
			}
		}
		return []byte{v}, nil
	})
	// Polling variants: non-blocking, first byte 1 = success.
	g.Register("tryproduce", func(inv *replobj.Invocation) ([]byte, error) {
		st := inv.State().(*bufState)
		inv.Compute(DispatchCost)
		if st.cap > 0 && len(st.items) >= st.cap {
			return []byte{0}, nil
		}
		st.items = append(st.items, inv.Args()[0])
		return []byte{1}, nil
	})
	g.Register("tryconsume", func(inv *replobj.Invocation) ([]byte, error) {
		st := inv.State().(*bufState)
		inv.Compute(DispatchCost)
		if len(st.items) == 0 {
			return []byte{0}, nil
		}
		v := st.items[0]
		st.items = st.items[1:]
		return []byte{1, v}, nil
	})
}

// PollInterval is the retry delay of the sequential polling fallback.
const PollInterval = 5 * time.Millisecond
