package bench

import (
	"encoding/binary"
	"fmt"
	"time"

	replobj "github.com/replobj/replobj"
	"github.com/replobj/replobj/internal/vtime"
)

// Fig4Kinds are the strategies compared in Fig. 4, with the paper's labels.
var Fig4Kinds = []struct {
	Label string
	Kind  replobj.SchedulerKind
}{
	{"SAT", replobj.ADSAT},
	{"MAT", replobj.MAT},
	{"LSA", replobj.LSA},
	{"PDS", replobj.PDS},
}

// Fig5bKinds adds the sequential baseline (Fig. 5(b) compares all five).
var Fig5bKinds = []struct {
	Label string
	Kind  replobj.SchedulerKind
}{
	{"SEQ", replobj.SEQ},
	{"SAT", replobj.ADSAT},
	{"PDS", replobj.PDS},
	{"LSA", replobj.LSA},
	{"MAT", replobj.MAT},
}

// MaxClients is the paper's client sweep bound for Figs. 4, 5(a) and 6(a).
const MaxClients = 10

// groupOpts builds the group options for a strategy, sizing PDS pools to
// the client count as the paper does ("the size of the thread-pool in PDS
// was equal to the number of clients").
func groupOpts(kind replobj.SchedulerKind, clients int) []replobj.GroupOption {
	opts := []replobj.GroupOption{replobj.WithScheduler(kind)}
	if kind == replobj.PDS || kind == replobj.PDS2 {
		opts = append(opts, replobj.WithPDSPool(clients))
	}
	return opts
}

// localSetup creates the single replicated object of the Fig. 4 suite.
func localSetup(cfg Config, kind replobj.SchedulerKind, clients int, compute time.Duration) func(*replobj.Cluster) error {
	return func(c *replobj.Cluster) error {
		g, err := c.NewGroup("obj", cfg.Replicas, groupOpts(kind, clients)...)
		if err != nil {
			return err
		}
		registerLocalObject(g, compute)
		g.Start()
		return nil
	}
}

// localScript drives the Fig. 4 "work" method with pattern p.
func localScript(cfg Config, p Pattern) clientScript {
	return func(rt vtime.Runtime, cl *replobj.Client, idx int) ([]time.Duration, error) {
		return timedLoop(rt, cfg, func(seq int) error {
			_, err := cl.Invoke("obj", "work", localArgs(p, idx, seq))
			return err
		})
	}
}

// Fig4 reproduces one panel of the paper's Fig. 4 (local computations and
// mutex locks): mean invocation time over 1..MaxClients clients, for
// ADETS-SAT, ADETS-MAT, ADETS-LSA and ADETS-PDS.
func Fig4(cfg Config, p Pattern) (Result, error) {
	titles := map[Pattern]string{
		PatternA: "(a) compute",
		PatternB: "(b) compute-lock-unlock",
		PatternC: "(c) lock-compute-unlock",
		PatternD: "(d) lock-unlock-compute",
	}
	res := Result{
		ID:     "fig4" + string(p),
		Title:  "Fig. 4 " + titles[p] + " — local computations with mutex locks",
		XLabel: "clients",
		YLabel: "ms/invocation",
	}
	for _, k := range Fig4Kinds {
		s := Series{Label: k.Label}
		for n := 1; n <= MaxClients; n++ {
			y, err := runScenario(cfg, n,
				localSetup(cfg, k.Kind, n, ComputeTime),
				localScript(cfg, p))
			if err != nil {
				return res, fmt.Errorf("%s %s n=%d: %w", res.ID, k.Label, n, err)
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig5a reproduces Fig. 5(a): nested invocations only, SEQ vs ADETS-SAT,
// with the invoked method returning immediately or suspending 2 ms.
func Fig5a(cfg Config) (Result, error) {
	res := Result{
		ID:     "fig5a",
		Title:  "Fig. 5(a) — nested invocations only (two groups)",
		XLabel: "clients",
		YLabel: "ms/invocation",
	}
	for _, k := range []struct {
		label string
		kind  replobj.SchedulerKind
		delay uint16 // ms at B
	}{
		{"SEQ", replobj.SEQ, 0},
		{"SAT", replobj.ADSAT, 0},
		{"SEQ(2ms)", replobj.SEQ, 2},
		{"SAT(2ms)", replobj.ADSAT, 2},
	} {
		s := Series{Label: k.label}
		var dly [2]byte
		binary.BigEndian.PutUint16(dly[:], k.delay)
		for n := 1; n <= MaxClients; n++ {
			setup := func(c *replobj.Cluster) error {
				a, err := c.NewGroup("A", cfg.Replicas, groupOpts(k.kind, n)...)
				if err != nil {
					return err
				}
				b, err := c.NewGroup("B", cfg.Replicas, groupOpts(k.kind, n)...)
				if err != nil {
					return err
				}
				registerForwardObject(a, "B")
				registerSleepObject(b)
				a.Start()
				b.Start()
				return nil
			}
			y, err := runScenario(cfg, n, setup, func(rt vtime.Runtime, cl *replobj.Client, idx int) ([]time.Duration, error) {
				return timedLoop(rt, cfg, func(int) error {
					_, err := cl.Invoke("A", "fwd", dly[:])
					return err
				})
			})
			if err != nil {
				return res, fmt.Errorf("fig5a %s n=%d: %w", k.label, n, err)
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig5bClients is the paper's client count for Fig. 5(b).
const Fig5bClients = 10

// Fig5b reproduces Fig. 5(b): the six permutations of nested invocation
// (N), computation (C) and synchronized state update (S), ten clients, all
// five strategies. X enumerates the permutations in the paper's order.
func Fig5b(cfg Config) (Result, error) {
	return fig5b(cfg, nil)
}

// fig5b optionally overrides group options per kind (used by the PDS
// nested-strategy ablation).
func fig5b(cfg Config, extra map[replobj.SchedulerKind][]replobj.GroupOption) (Result, error) {
	res := Result{
		ID:     "fig5b",
		Title:  "Fig. 5(b) — nested invocations, local computations, mutex locks (10 clients; X = " + fmt.Sprint(Perms) + ")",
		XLabel: "pattern#",
		YLabel: "ms/invocation",
	}
	for _, k := range Fig5bKinds {
		s := Series{Label: k.Label}
		for pi, perm := range Perms {
			perm := perm
			setup := func(c *replobj.Cluster) error {
				opts := groupOpts(k.Kind, Fig5bClients)
				opts = append(opts, extra[k.Kind]...)
				a, err := c.NewGroup("A", cfg.Replicas, opts...)
				if err != nil {
					return err
				}
				b, err := c.NewGroup("B", cfg.Replicas, groupOpts(k.Kind, Fig5bClients)...)
				if err != nil {
					return err
				}
				registerPermObject(a, "B")
				registerSleepObject(b)
				a.Start()
				b.Start()
				return nil
			}
			y, err := runScenario(cfg, Fig5bClients, setup, func(rt vtime.Runtime, cl *replobj.Client, idx int) ([]time.Duration, error) {
				return timedLoop(rt, cfg, func(seq int) error {
					_, err := cl.Invoke("A", "perm", permArgs(perm, idx, seq))
					return err
				})
			})
			if err != nil {
				return res, fmt.Errorf("fig5b %s %s: %w", k.Label, perm, err)
			}
			s.Points = append(s.Points, Point{X: float64(pi + 1), Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig6Kinds are the strategies compared in Fig. 6.
var Fig6Kinds = []struct {
	Label string
	Kind  replobj.SchedulerKind
}{
	{"SEQ", replobj.SEQ},
	{"SAT", replobj.ADSAT},
	{"MAT", replobj.MAT},
	{"LSA", replobj.LSA},
	{"PDS", replobj.PDS},
}

// bufferSetup creates the buffer group with the given capacity (0 =
// unbounded).
func bufferSetup(cfg Config, kind replobj.SchedulerKind, clients, capacity int) func(*replobj.Cluster) error {
	return func(c *replobj.Cluster) error {
		opts := append(groupOpts(kind, clients),
			replobj.WithState(func() any { return &bufState{cap: capacity} }))
		g, err := c.NewGroup("buf", cfg.Replicas, opts...)
		if err != nil {
			return err
		}
		registerBufferObject(g)
		g.Start()
		return nil
	}
}

// pollLoop is the sequential polling fallback: one logical consume (or
// produce) = try until success, sleeping PollInterval between attempts.
func pollLoop(rt vtime.Runtime, cl *replobj.Client, method string, arg []byte) error {
	for {
		out, err := cl.Invoke("buf", method, arg)
		if err != nil {
			return err
		}
		if len(out) > 0 && out[0] == 1 {
			return nil
		}
		rt.Sleep(PollInterval)
	}
}

// Fig6a reproduces Fig. 6(a): unbounded buffer, one producer, 1..10
// consumers; consumer-side mean invocation time. SEQ uses polling.
func Fig6a(cfg Config) (Result, error) {
	res := Result{
		ID:     "fig6a",
		Title:  "Fig. 6(a) — unbounded buffer, 1 producer, N consumers",
		XLabel: "consumers",
		YLabel: "ms/invocation",
	}
	for _, k := range Fig6Kinds {
		s := Series{Label: k.Label}
		poll := k.Kind == replobj.SEQ
		for consumers := 1; consumers <= MaxClients; consumers++ {
			consumers := consumers
			total := consumers * (cfg.Warmup + cfg.PerClient)
			// Client 0 is the producer (unmeasured); 1..consumers consume.
			script := func(rt vtime.Runtime, cl *replobj.Client, idx int) ([]time.Duration, error) {
				if idx == 0 {
					for i := 0; i < total; i++ {
						var err error
						if poll {
							err = pollLoop(rt, cl, "tryproduce", []byte{1})
						} else {
							_, err = cl.Invoke("buf", "produce", []byte{1})
						}
						if err != nil {
							return nil, err
						}
					}
					return nil, nil
				}
				return timedLoop(rt, cfg, func(int) error {
					if poll {
						return pollLoop(rt, cl, "tryconsume", nil)
					}
					_, err := cl.Invoke("buf", "consume", nil)
					return err
				})
			}
			y, err := runScenario(cfg, consumers+1,
				bufferSetup(cfg, k.Kind, consumers+1, 0), script)
			if err != nil {
				return res, fmt.Errorf("fig6a %s n=%d: %w", k.Label, consumers, err)
			}
			s.Points = append(s.Points, Point{X: float64(consumers), Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig6bPairs is the producer/consumer sweep bound of Fig. 6(b).
const Fig6bPairs = 5

// Fig6bCapacity is the paper's bounded-buffer size.
const Fig6bCapacity = 2

// Fig6b reproduces Fig. 6(b): bounded buffer (size 2), k producers and k
// consumers, k = 1..5; consumer-side mean invocation time.
func Fig6b(cfg Config) (Result, error) {
	res := Result{
		ID:     "fig6b",
		Title:  "Fig. 6(b) — bounded buffer (size 2), N producers + N consumers",
		XLabel: "consumers",
		YLabel: "ms/invocation",
	}
	for _, k := range Fig6Kinds {
		s := Series{Label: k.Label}
		poll := k.Kind == replobj.SEQ
		for pairs := 1; pairs <= Fig6bPairs; pairs++ {
			pairs := pairs
			perClient := cfg.Warmup + cfg.PerClient
			script := func(rt vtime.Runtime, cl *replobj.Client, idx int) ([]time.Duration, error) {
				if idx < pairs { // producers (unmeasured)
					for i := 0; i < perClient; i++ {
						var err error
						if poll {
							err = pollLoop(rt, cl, "tryproduce", []byte{1})
						} else {
							_, err = cl.Invoke("buf", "produce", []byte{1})
						}
						if err != nil {
							return nil, err
						}
					}
					return nil, nil
				}
				return timedLoop(rt, cfg, func(int) error {
					if poll {
						return pollLoop(rt, cl, "tryconsume", nil)
					}
					_, err := cl.Invoke("buf", "consume", nil)
					return err
				})
			}
			y, err := runScenario(cfg, 2*pairs,
				bufferSetup(cfg, k.Kind, 2*pairs, Fig6bCapacity), script)
			if err != nil {
				return res, fmt.Errorf("fig6b %s k=%d: %w", k.Label, pairs, err)
			}
			s.Points = append(s.Points, Point{X: float64(pairs), Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
