// Package bench reproduces the paper's experimental evaluation (Section 5):
// workload generators for every benchmark scenario, the measurement
// methodology (client-side invocation latency, warm-up exclusion,
// per-client averaging), and one experiment function per table and figure,
// plus the ablations listed in DESIGN.md.
//
// All experiments run on the virtual-time kernel: the simulated
// computations, network latencies and scheduler interactions compose in
// virtual time exactly as they would on the paper's testbed, while a full
// sweep finishes in seconds of host time and is reproducible.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	replobj "github.com/replobj/replobj"
	"github.com/replobj/replobj/internal/client"
	"github.com/replobj/replobj/internal/vtime"
)

// Config tunes experiment size. The paper averages over at least 5000
// invocations per point and drops the first 200; the defaults here are
// smaller so the whole suite runs in seconds — crank them up with
// cmd/replbench for paper-scale runs.
type Config struct {
	// PerClient is the number of measured invocations per client.
	PerClient int
	// Warmup invocations per client are excluded from the average.
	Warmup int
	// Replicas per group (the paper uses 3).
	Replicas int
	// Latency is the one-way network latency.
	Latency time.Duration
	// Policy is the client reply-collection policy.
	Policy replobj.ReplyPolicy
	// Metrics, if non-nil, collects cluster metrics across every scenario
	// of the run (cmd/replbench prints a summary at the end).
	Metrics *replobj.MetricsRegistry
	// ConflictRatio, when >= 0, restricts the cc-conflict experiment to a
	// single global-request ratio instead of the default sweep grid.
	ConflictRatio float64
	// ShardCounts, when non-empty, overrides the shard-count sweep of the
	// shards experiment (default {1,2,4,8}).
	ShardCounts []int
}

// Defaults returns the standard experiment configuration.
func Defaults() Config {
	return Config{
		PerClient:     60,
		Warmup:        5,
		Replicas:      3,
		Latency:       600 * time.Microsecond,
		Policy:        client.Majority,
		ConflictRatio: -1,
	}
}

// Point is one measured coordinate of a series.
type Point struct {
	X float64
	Y float64 // mean invocation latency, milliseconds
}

// Series is one curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Result is one reproduced table or figure.
type Result struct {
	ID     string // e.g. "fig4a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Stages carries the per-stage latency decomposition of the
	// latency-breakdown experiment (empty for every other result).
	Stages []StageQuantile `json:",omitempty"`
	// Scenarios carries the SLO rows of the production scenario suite
	// (empty for every other result).
	Scenarios []ScenarioSLO `json:",omitempty"`
	// ShardCells carries the aggregate and per-shard rows of the shard
	// scale-out experiment (empty for every other result).
	ShardCells []ShardCell `json:",omitempty"`
	// ReshardCells carries the per-transition rows of the live-resharding
	// experiment (empty for every other result).
	ReshardCells []ReshardCell `json:",omitempty"`
	// SpecCells carries the per-(ratio, mode) rows of the speculation
	// experiment (empty for every other result).
	SpecCells []SpecCell `json:",omitempty"`
}

// Format renders a result as an aligned text table (clients × strategies),
// mirroring how the paper's plots read.
func (r Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "%-22s", r.XLabel+" \\ "+r.YLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%12s", s.Label)
	}
	b.WriteByte('\n')
	// Collect the union of X values in order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-22.6g", x)
		for _, s := range r.Series {
			y, ok := s.at(x)
			if !ok {
				fmt.Fprintf(&b, "%12s", "-")
				continue
			}
			fmt.Fprintf(&b, "%12.2f", y)
		}
		b.WriteByte('\n')
	}
	if len(r.Stages) > 0 {
		fmt.Fprintf(&b, "\n%-12s %-12s %8s %10s %10s %10s\n",
			"scheduler", "stage", "count", "p50 ms", "p99 ms", "p99.9 ms")
		for _, sq := range r.Stages {
			fmt.Fprintf(&b, "%-12s %-12s %8d %10.3f %10.3f %10.3f\n",
				sq.Scheduler, sq.Stage, sq.Count, sq.P50ms, sq.P99ms, sq.P999ms)
		}
	}
	if len(r.Scenarios) > 0 {
		fmt.Fprintf(&b, "\n%-16s %-12s %8s %10s %10s %10s %9s\n",
			"scenario", "scheduler", "reqs", "p50 ms", "p99 ms", "p99.9 ms", "switches")
		for _, sc := range r.Scenarios {
			fmt.Fprintf(&b, "%-16s %-12s %8d %10.3f %10.3f %10.3f %9d\n",
				sc.Scenario, sc.Scheduler, sc.Requests, sc.P50ms, sc.P99ms, sc.P999ms, sc.Switches)
		}
	}
	if len(r.ShardCells) > 0 {
		fmt.Fprintf(&b, "\n%-16s %-10s %7s %6s %8s %12s %10s %10s %8s\n",
			"scenario", "scheduler", "shards", "shard", "reqs", "rps", "p50 ms", "p99 ms", "speedup")
		for _, sc := range r.ShardCells {
			shardCol := "all"
			if sc.Shard >= 0 {
				shardCol = fmt.Sprint(sc.Shard)
			}
			speedup := ""
			if sc.SpeedupVsS1 > 0 {
				speedup = fmt.Sprintf("%.2fx", sc.SpeedupVsS1)
			}
			fmt.Fprintf(&b, "%-16s %-10s %7d %6s %8d %12.1f %10.3f %10.3f %8s\n",
				sc.Scenario, sc.Scheduler, sc.Shards, shardCol, sc.Requests,
				sc.ThroughputRPS, sc.P50ms, sc.P99ms, speedup)
		}
	}
	if len(r.SpecCells) > 0 {
		fmt.Fprintf(&b, "\n%-8s %-6s %8s %10s %10s %10s %8s %8s %9s\n",
			"ratio", "mode", "reqs", "p50 ms", "p99 ms", "attempts", "hits", "aborts", "hit rate")
		for _, sc := range r.SpecCells {
			fmt.Fprintf(&b, "%-8g %-6s %8d %10.3f %10.3f %10d %8d %8d %9.2f\n",
				sc.Ratio, sc.Mode, sc.Requests, sc.P50ms, sc.P99ms,
				sc.Attempts, sc.Hits, sc.Aborts, sc.HitRate)
		}
	}
	if len(r.ReshardCells) > 0 {
		fmt.Fprintf(&b, "\n%-12s %5s %3s %6s %10s %10s %10s %10s %10s %9s %5s %5s\n",
			"transition", "from", "to", "reqs", "window ms", "base p99", "win p99", "after p99", "stall ms", "base p50", "lost", "dup")
		for _, rc := range r.ReshardCells {
			fmt.Fprintf(&b, "%-12s %5d %3d %6d %10.2f %10.3f %10.3f %10.3f %10.3f %9.3f %5d %5d\n",
				rc.Transition, rc.FromShards, rc.ToShards, rc.Requests, rc.WindowMs,
				rc.BaselineP99ms, rc.WindowP99ms, rc.AfterP99ms, rc.StallMs,
				rc.BaselineP50ms, rc.LostEffects, rc.DupEffects)
		}
	}
	return b.String()
}

// CSV renders a result as comma-separated values.
func (r Result) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x")
	for _, s := range r.Series {
		fmt.Fprintf(&b, ",%s", s.Label)
	}
	b.WriteByte('\n')
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range r.Series {
			if y, ok := s.at(x); ok {
				fmt.Fprintf(&b, ",%.3f", y)
			} else {
				fmt.Fprintf(&b, ",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (s Series) at(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Get returns the series with the given label.
func (r Result) Get(label string) (Series, bool) {
	for _, s := range r.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

// --- measurement core ---

// clientScript drives one client: it performs warmup+measured invocations
// and returns the measured per-invocation durations (empty for auxiliary
// clients such as producers whose latency is not part of the figure).
type clientScript func(rt vtime.Runtime, cl *replobj.Client, clientIdx int) ([]time.Duration, error)

// runScenario builds a fresh virtual cluster, applies setup (create groups,
// register handlers, start), runs n concurrent clients with the given
// script, and returns the mean invocation latency in milliseconds.
func runScenario(cfg Config, n int, setup func(c *replobj.Cluster) error, script clientScript) (float64, error) {
	return runScenarioOpts(cfg, n, nil, setup, script)
}

// runScenarioOpts is runScenario with extra cluster options — the
// latency-breakdown experiment uses it to attach a span collector.
func runScenarioOpts(cfg Config, n int, extra []replobj.ClusterOption, setup func(c *replobj.Cluster) error, script clientScript) (float64, error) {
	rt := vtime.Virtual()
	defer rt.Stop()
	copts := []replobj.ClusterOption{replobj.WithLatency(cfg.Latency)}
	if cfg.Metrics != nil {
		copts = append(copts, replobj.WithMetrics(cfg.Metrics))
	}
	copts = append(copts, extra...)
	c := replobj.NewCluster(rt, copts...)
	var total time.Duration
	var count int
	var firstErr error
	vtime.Run(rt, "bench-main", func() {
		defer c.Close()
		if err := setup(c); err != nil {
			firstErr = err
			return
		}
		results := vtime.NewMailbox[clientResult](rt, "bench-results")
		for i := 0; i < n; i++ {
			i := i
			rt.Go(fmt.Sprintf("bench-client-%d", i), func() {
				cl := c.NewClient(fmt.Sprintf("c%d", i),
					replobj.WithReplyPolicy(cfg.Policy),
					replobj.WithInvocationTimeout(5*time.Minute))
				durs, err := script(rt, cl, i)
				results.Put(clientResult{durs: durs, err: err})
			})
		}
		for i := 0; i < n; i++ {
			res, _ := results.Get()
			if res.err != nil && firstErr == nil {
				firstErr = res.err
			}
			for _, d := range res.durs {
				total += d
				count++
			}
		}
	})
	if firstErr != nil {
		return 0, firstErr
	}
	if count == 0 {
		return 0, fmt.Errorf("bench: no samples collected")
	}
	return float64(total.Microseconds()) / float64(count) / 1000.0, nil
}

type clientResult struct {
	durs []time.Duration
	err  error
}

// timedLoop performs warmup+measured invocations of a single fixed call.
func timedLoop(rt vtime.Runtime, cfg Config, invoke func(seq int) error) ([]time.Duration, error) {
	for i := 0; i < cfg.Warmup; i++ {
		if err := invoke(i); err != nil {
			return nil, err
		}
	}
	out := make([]time.Duration, 0, cfg.PerClient)
	for i := 0; i < cfg.PerClient; i++ {
		t0 := rt.Now()
		if err := invoke(cfg.Warmup + i); err != nil {
			return nil, err
		}
		out = append(out, rt.Now()-t0)
	}
	return out, nil
}
