package bench

import (
	"fmt"
	"sort"
	"time"

	replobj "github.com/replobj/replobj"
	"github.com/replobj/replobj/internal/shard"
	"github.com/replobj/replobj/internal/vtime"
)

// This file implements the shard scale-out experiment: the production
// scenario workloads of the SLO suite, rerun against a sharded object with
// S ∈ {1,2,4,8} independent replica groups behind consistent-hash routing.
// The headline metric flips from latency to aggregate throughput — ops per
// second of virtual makespan over a barrier-aligned measured phase — with
// per-shard p50/p99 rows showing the balance of the ring. Every cell also
// verifies per-shard trace-digest equality across replicas: sharding must
// not cost any determinism.
//
// The scenarios predict the shape: the rate limiter serializes every
// request inside a shard (SEQ), so shards multiply the only thing that
// limits it and throughput scales near-linearly; the read-mostly cache
// serializes only its 5% global writes, scaling in between; the session
// store is already lane-parallel under ADETS-CC inside one group, so extra
// shards mostly relieve sequencer pressure.

// Shard scale-out sizing.
const (
	// ShardDrivers is the concurrent driver-connection count per cell; each
	// driver owns a Router and spreads keys uniformly over the shards.
	ShardDrivers = 24
	// ShardKeyPool is the number of distinct key classes per shard a cell
	// draws from (found by ring scan, so load is balanced by construction).
	ShardKeyPool = 64
	// shardClassSpace is the conflict-class space the keyed scenarios hash
	// onto inside each shard group (mirrors ScenarioShards).
	shardClassSpace = 64
)

// DefaultShardCounts is the S sweep of the shards experiment.
var DefaultShardCounts = []int{1, 2, 4, 8}

// ShardCell is one measured (scenario, shard-count[, shard]) row of the
// scale-out experiment. Shard == -1 is the aggregate row; per-shard rows
// carry the shard-group index and its local latency quantiles.
type ShardCell struct {
	Scenario  string
	Scheduler string
	Shards    int
	Shard     int
	Requests  int
	// ThroughputRPS is measured ops per second of virtual makespan
	// (aggregate rows) or this shard's share of them (per-shard rows).
	ThroughputRPS float64
	P50ms         float64
	P99ms         float64
	// SpeedupVsS1 is aggregate throughput relative to the same scenario at
	// S=1 (aggregate rows only).
	SpeedupVsS1 float64 `json:",omitempty"`
}

// shardScenario is one workload of the scale-out sweep.
type shardScenario struct {
	ID    string
	Title string
	Kind  replobj.SchedulerKind
	// Args builds the op arguments for a key whose hash is kh (the class
	// byte must derive from the key so classes spread inside each shard).
	Args func(kh uint64, driver, seq int) []byte
}

func shardScenarios() []shardScenario {
	return []shardScenario{
		{
			ID:    "rate-limiter",
			Title: "per-tenant token buckets, fully serialized per shard",
			Kind:  replobj.SEQ,
			// Global inside the group: every op conflicts, 1 ms of compute.
			// The shard count is the only parallelism — the near-linear cell.
			Args: func(kh uint64, driver, seq int) []byte {
				return []byte{0, 1, 10}
			},
		},
		{
			ID:    "read-mostly-kv",
			Title: "95% classed shard reads, 5% global writes",
			Kind:  replobj.CC,
			Args: func(kh uint64, driver, seq int) []byte {
				if mix(uint64(driver), uint64(seq), 43)%100 < 5 {
					return []byte{0, 1, 20, 32} // write: global, 2 ms, spans 32 locks
				}
				return []byte{byte(kh % 32), 0, 5} // read: classed, 500 µs
			},
		},
		{
			ID:    "session-store",
			Title: "per-session ops, fully classed (lane-parallel inside a shard)",
			Kind:  replobj.CC,
			Args: func(kh uint64, driver, seq int) []byte {
				return []byte{byte(kh % shardClassSpace), 0, 10} // classed, 1 ms
			},
		},
	}
}

// shardKeyPools scans candidate keys against the ring of (object, S) until
// every shard owns ShardKeyPool key classes. The pools are a pure function
// of the table, so drivers, replicas and this scan all agree on homes.
func shardKeyPools(object string, s int) [][]string {
	table := shard.NewTable(object, s, 0)
	ring := shard.NewRing(table)
	index := make(map[replobj.GroupID]int, s)
	for i, gid := range table.Shards {
		index[gid] = i
	}
	pools := make([][]string, s)
	filled := 0
	for i := 0; filled < s; i++ {
		key := fmt.Sprintf("k%d", i)
		si := index[ring.HomeGroup(key)]
		if len(pools[si]) >= ShardKeyPool {
			continue
		}
		pools[si] = append(pools[si], key)
		if len(pools[si]) == ShardKeyPool {
			filled++
		}
	}
	return pools
}

// keyHash is the stable per-key hash the scenarios derive class bytes
// from; any mixing works as long as every replica sees the same bytes —
// the args travel with the request.
func keyHash(key string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

type shardDriverOut struct {
	durs   []time.Duration
	shards []int
	err    error
}

// runShardCell measures one (scenario, S) cell and returns the aggregate
// row followed by the per-shard rows.
func runShardCell(cfg Config, sc shardScenario, s int) ([]ShardCell, error) {
	rt := vtime.Virtual()
	defer rt.Stop()
	copts := []replobj.ClusterOption{replobj.WithLatency(cfg.Latency)}
	if cfg.Metrics != nil {
		copts = append(copts, replobj.WithMetrics(cfg.Metrics))
	}
	c := replobj.NewCluster(rt, copts...)
	pools := shardKeyPools(sc.ID, s)

	var outs []shardDriverOut
	var makespan time.Duration
	var firstErr error
	vtime.Run(rt, "shards-main", func() {
		defer c.Close()
		opts := append(groupOpts(sc.Kind, ShardDrivers),
			replobj.WithShards(s),
			replobj.WithState(func() any { return scenarioObject{} }),
			replobj.WithSchedTrace(0))
		if sc.Kind == replobj.CC {
			opts = append(opts, replobj.WithCCLanes(ScenarioLanes))
		}
		so, err := c.NewSharded(sc.ID, cfg.Replicas, opts...)
		if err != nil {
			firstErr = err
			return
		}
		so.EachShard(func(i int, g *replobj.Group) { registerScenarioObject(g) })
		so.Start()

		ready := vtime.NewMailbox[bool](rt, "shards-ready")
		start := make([]*vtime.Mailbox[bool], ShardDrivers)
		for i := range start {
			start[i] = vtime.NewMailbox[bool](rt, fmt.Sprintf("shards-start-%d", i))
		}
		done := vtime.NewMailbox[shardDriverOut](rt, "shards-done")
		for i := 0; i < ShardDrivers; i++ {
			i := i
			rt.Go(fmt.Sprintf("shards-driver-%d", i), func() {
				cl := c.NewClient(fmt.Sprintf("d%d", i),
					replobj.WithReplyPolicy(cfg.Policy),
					replobj.WithInvocationTimeout(5*time.Minute))
				r := cl.Router(sc.ID)
				op := func(seq int) (int, error) {
					si := int(mix(uint64(i), uint64(seq), 51) % uint64(s))
					key := pools[si][mix(uint64(i), uint64(seq), 53)%ShardKeyPool]
					args := sc.Args(keyHash(key), i, seq)
					_, err := r.Invoke("op", args, replobj.WithShardKey(key))
					return si, err
				}
				out := shardDriverOut{}
				for seq := 0; seq < cfg.Warmup; seq++ {
					if _, err := op(seq); err != nil {
						out.err = err
						break
					}
				}
				ready.Put(true)
				start[i].Get()
				if out.err == nil {
					for seq := 0; seq < cfg.PerClient; seq++ {
						t0 := rt.Now()
						si, err := op(cfg.Warmup + seq)
						if err != nil {
							out.err = err
							break
						}
						out.durs = append(out.durs, rt.Now()-t0)
						out.shards = append(out.shards, si)
					}
				}
				done.Put(out)
			})
		}
		// Barrier-aligned measured phase: makespan covers exactly the window
		// in which every driver runs its measured ops.
		for i := 0; i < ShardDrivers; i++ {
			ready.Get()
		}
		t0 := rt.Now()
		for i := range start {
			start[i].Put(true)
		}
		for i := 0; i < ShardDrivers; i++ {
			out, _ := done.Get()
			if out.err != nil && firstErr == nil {
				firstErr = out.err
			}
			outs = append(outs, out)
		}
		makespan = rt.Now() - t0

		// Determinism oracle: inside every shard group the replicas took the
		// same schedule, position for position.
		if firstErr == nil {
			so.EachShard(func(i int, g *replobj.Group) {
				ref := g.Trace(0)
				if cnt, _ := ref.Digest("order"); cnt == 0 {
					firstErr = fmt.Errorf("shards %s S=%d: shard %d ordered nothing", sc.ID, s, i)
					return
				}
				for rank := 1; rank < cfg.Replicas; rank++ {
					if d := replobj.FirstTraceDivergence(ref, g.Trace(rank)); d != nil && firstErr == nil {
						firstErr = fmt.Errorf("shards %s S=%d: shard %d rank %d diverged from rank 0: %v",
							sc.ID, s, i, rank, d)
					}
				}
			})
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}

	perShard := make([][]time.Duration, s)
	var all []time.Duration
	for _, out := range outs {
		for j, d := range out.durs {
			perShard[out.shards[j]] = append(perShard[out.shards[j]], d)
			all = append(all, d)
		}
	}
	if len(all) == 0 || makespan <= 0 {
		return nil, fmt.Errorf("shards %s S=%d: no samples collected", sc.ID, s)
	}
	secs := makespan.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	cells := []ShardCell{{
		Scenario:      sc.ID,
		Scheduler:     string(sc.Kind),
		Shards:        s,
		Shard:         -1,
		Requests:      len(all),
		ThroughputRPS: float64(len(all)) / secs,
		P50ms:         quantileMS(all, 0.50),
		P99ms:         quantileMS(all, 0.99),
	}}
	for i, durs := range perShard {
		if len(durs) == 0 {
			return nil, fmt.Errorf("shards %s S=%d: shard %d served no measured ops", sc.ID, s, i)
		}
		sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
		cells = append(cells, ShardCell{
			Scenario:      sc.ID,
			Scheduler:     string(sc.Kind),
			Shards:        s,
			Shard:         i,
			Requests:      len(durs),
			ThroughputRPS: float64(len(durs)) / secs,
			P50ms:         quantileMS(durs, 0.50),
			P99ms:         quantileMS(durs, 0.99),
		})
	}
	return cells, nil
}

// ShardScaleOut runs the scale-out sweep: every shard scenario at every
// shard count. The figure plots aggregate throughput per shard count; the
// full rows (per-shard quantiles, speedups) ride Result.ShardCells.
func ShardScaleOut(cfg Config) (Result, error) {
	counts := cfg.ShardCounts
	if len(counts) == 0 {
		counts = DefaultShardCounts
	}
	res := Result{
		ID:     "shards",
		Title:  "Shard scale-out — aggregate throughput vs shard count (consistent-hash routing)",
		XLabel: "shards",
		YLabel: "requests/s",
	}
	for _, sc := range shardScenarios() {
		series := Series{Label: sc.ID}
		baseline := 0.0
		for _, s := range counts {
			cells, err := runShardCell(cfg, sc, s)
			if err != nil {
				return res, err
			}
			agg := cells[0]
			if s == 1 {
				baseline = agg.ThroughputRPS
			}
			if baseline > 0 {
				cells[0].SpeedupVsS1 = agg.ThroughputRPS / baseline
			}
			res.ShardCells = append(res.ShardCells, cells...)
			series.Points = append(series.Points, Point{X: float64(s), Y: agg.ThroughputRPS})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}
