package bench

import (
	"fmt"
	"sort"
	"time"

	replobj "github.com/replobj/replobj"
	"github.com/replobj/replobj/internal/vtime"
)

// The speculation experiment measures what optimistic delivery buys: with
// WithSpeculation, a replica executes a request against a state fork as
// soon as the client's submit arrives and releases the reply the moment
// the total order confirms the fork was valid — so at conflict ratio 0 the
// committed-reply latency drops by roughly the submit→delivery ordering
// gap. As the ratio rises, conflicting dispatches land between fork and
// confirmation, speculations go stale and are discarded, and the latency
// converges back to the non-speculative baseline (the ordered execution
// always runs; speculation only changes when the reply leaves).

// SpecClients is the client count of the speculation sweep — small enough
// that quiescent windows occur between delivery batches, which is when the
// fork image can be refreshed.
const SpecClients = 4

// SpecCompute is the in-lock computation per request.
const SpecCompute = time.Millisecond

// SpecThink is the per-client pause between invocations (outside the
// measured latency); it creates the quiescent windows above.
const SpecThink = 2 * time.Millisecond

// SpecLanes sizes the CC lane pool of the speculation object.
const SpecLanes = 32

// DefaultSpecRatios is the conflict-ratio grid of the sweep.
var DefaultSpecRatios = []float64{0, 0.25, 0.5, 1}

// SpecCell is one (conflict ratio, mode) measurement of the speculation
// experiment.
type SpecCell struct {
	Ratio    float64
	Mode     string // "spec" or "base"
	Requests int
	P50ms    float64
	P99ms    float64
	// Speculation counters summed over the replicas (zero in base mode).
	Attempts uint64
	Hits     uint64
	Aborts   uint64
	// HitRate is Hits/Attempts (0 when no speculation was attempted).
	HitRate float64
}

// specState is the experiment object: a keyed counter whose conflict class
// is the key byte. Each client owns one key; a request is global
// (classless, conflicts with everything) with probability ratio. The
// exported field keeps the state serializable for fork images and
// checkpoints.
type specState struct{ Slots map[byte]uint64 }

// ConflictClasses implements replobj.ConflictClasser: args[0] is the key,
// args[1] != 0 marks the request global.
func (specState) ConflictClasses(method string, args []byte) []string {
	if method != "op" || len(args) < 2 || args[1] != 0 {
		return nil
	}
	return []string{fmt.Sprintf("key%d", args[0])}
}

// specArgs builds one invocation (deterministic in client, seq).
func specArgs(client, seq int, ratio float64) []byte {
	key := byte(client % SpecClients)
	global := byte(0)
	if mix(uint64(client), uint64(seq), 13)%1_000_000 < uint64(ratio*1_000_000) {
		global = 1
	}
	return []byte{key, global}
}

// runSpecCell measures one cell and, in spec mode, reads the speculation
// counters off a per-run registry.
func runSpecCell(cfg Config, ratio float64, speculative bool) (SpecCell, error) {
	mode := "base"
	if speculative {
		mode = "spec"
	}
	cell := SpecCell{Ratio: ratio, Mode: mode}
	rt := vtime.Virtual()
	defer rt.Stop()
	reg := replobj.NewMetricsRegistry()
	c := replobj.NewCluster(rt,
		replobj.WithLatency(cfg.Latency),
		replobj.WithMetrics(reg))
	var durs []time.Duration
	var firstErr error
	vtime.Run(rt, "spec-main", func() {
		defer c.Close()
		opts := append(groupOpts(replobj.CC, SpecClients),
			replobj.WithCCLanes(SpecLanes),
			replobj.WithState(func() any { return &specState{Slots: make(map[byte]uint64)} }),
			replobj.WithSchedTrace(0))
		if speculative {
			opts = append(opts, replobj.WithSpeculation())
		}
		g, err := c.NewGroup("spec", cfg.Replicas, opts...)
		if err != nil {
			firstErr = err
			return
		}
		g.Register("op", func(inv *replobj.Invocation) ([]byte, error) {
			m := replobj.MutexID(fmt.Sprintf("key%d", inv.Args()[0]))
			if err := inv.Lock(m); err != nil {
				return nil, err
			}
			inv.Compute(SpecCompute)
			st := inv.State().(*specState)
			if st.Slots == nil {
				st.Slots = make(map[byte]uint64)
			}
			st.Slots[inv.Args()[0]]++
			if err := inv.Unlock(m); err != nil {
				return nil, err
			}
			return nil, nil
		})
		g.Start()
		results := vtime.NewMailbox[clientResult](rt, "spec-results")
		for i := 0; i < SpecClients; i++ {
			i := i
			rt.Go(fmt.Sprintf("spec-client-%d", i), func() {
				cl := c.NewClient(fmt.Sprintf("c%d", i),
					replobj.WithReplyPolicy(cfg.Policy),
					replobj.WithInvocationTimeout(5*time.Minute))
				invoke := func(seq int) error {
					_, err := cl.Invoke("spec", "op", specArgs(i, seq, ratio))
					return err
				}
				for w := 0; w < cfg.Warmup; w++ {
					if err := invoke(w); err != nil {
						results.Put(clientResult{err: err})
						return
					}
					rt.Sleep(SpecThink)
				}
				ds := make([]time.Duration, 0, cfg.PerClient)
				for s := 0; s < cfg.PerClient; s++ {
					t0 := rt.Now()
					if err := invoke(cfg.Warmup + s); err != nil {
						results.Put(clientResult{durs: ds, err: err})
						return
					}
					ds = append(ds, rt.Now()-t0)
					rt.Sleep(SpecThink) // think time, outside the measurement
				}
				results.Put(clientResult{durs: ds})
			})
		}
		for i := 0; i < SpecClients; i++ {
			res, _ := results.Get()
			if res.err != nil && firstErr == nil {
				firstErr = res.err
			}
			durs = append(durs, res.durs...)
		}
		// Speculation must not perturb the committed run: the schedule-trace
		// digests stay identical across replicas.
		if firstErr == nil {
			ref := g.Trace(0)
			for rank := 1; rank < cfg.Replicas; rank++ {
				if d := replobj.FirstTraceDivergence(ref, g.Trace(rank)); d != nil {
					firstErr = fmt.Errorf("speculation ratio=%g %s: replica %d trace diverged: %v",
						ratio, mode, rank, d)
					return
				}
			}
		}
	})
	if firstErr != nil {
		return cell, firstErr
	}
	if len(durs) == 0 {
		return cell, fmt.Errorf("speculation ratio=%g %s: no samples collected", ratio, mode)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	cell.Requests = len(durs)
	cell.P50ms = quantileMS(durs, 0.50)
	cell.P99ms = quantileMS(durs, 0.99)
	for i := 0; i < cfg.Replicas; i++ {
		node := fmt.Sprintf(`{node="spec/%d"}`, i)
		cell.Attempts += reg.Counter("replobj_replica_spec_attempts_total" + node).Value()
		cell.Hits += reg.Counter("replobj_replica_spec_hits_total" + node).Value()
		cell.Aborts += reg.Counter("replobj_replica_spec_aborts_total" + node).Value()
	}
	if cell.Attempts > 0 {
		cell.HitRate = float64(cell.Hits) / float64(cell.Attempts)
	}
	return cell, nil
}

// Speculation sweeps the conflict ratio and compares committed-reply
// latency with and without speculative execution under ADETS-CC.
func Speculation(cfg Config) (Result, error) {
	ratios := DefaultSpecRatios
	if cfg.ConflictRatio >= 0 {
		ratios = []float64{cfg.ConflictRatio}
	}
	res := Result{
		ID:     "speculation",
		Title:  "Speculative execution on optimistic delivery — committed-reply latency vs conflict ratio (CC, 4 clients)",
		XLabel: "conflict ratio",
		YLabel: "p50 ms",
	}
	spec := Series{Label: "spec"}
	base := Series{Label: "base"}
	for _, ratio := range ratios {
		for _, speculative := range []bool{true, false} {
			cell, err := runSpecCell(cfg, ratio, speculative)
			if err != nil {
				return res, err
			}
			res.SpecCells = append(res.SpecCells, cell)
			if speculative {
				spec.Points = append(spec.Points, Point{X: ratio, Y: cell.P50ms})
			} else {
				base.Points = append(base.Points, Point{X: ratio, Y: cell.P50ms})
			}
		}
	}
	res.Series = []Series{spec, base}
	return res, nil
}
