package bench

import (
	"testing"
)

// These tests assert the paper's qualitative claims — who wins, by roughly
// what factor, where behaviour changes — on reduced sample sizes, so the
// reproduction in EXPERIMENTS.md is continuously verified.

func testCfg() Config {
	cfg := Defaults()
	cfg.PerClient = 8
	cfg.Warmup = 2
	return cfg
}

// series fetches a series or fails the test.
func series(t *testing.T, r Result, label string) Series {
	t.Helper()
	s, ok := r.Get(label)
	if !ok {
		t.Fatalf("%s: series %q missing", r.ID, label)
	}
	return s
}

// y returns the Y value at x or fails.
func y(t *testing.T, s Series, x float64) float64 {
	t.Helper()
	v, ok := s.at(x)
	if !ok {
		t.Fatalf("series %s has no point at x=%v", s.Label, x)
	}
	return v
}

// linearIn asserts the series grows like n·base (serialized execution).
func linearIn(t *testing.T, s Series, base float64) {
	t.Helper()
	for _, p := range s.Points {
		want := p.X * base
		if p.Y < want*0.85 || p.Y > want*1.25 {
			t.Errorf("%s at %v clients: %.1f ms, want ≈ %.1f (linear)", s.Label, p.X, p.Y, want)
		}
	}
}

// flatNear asserts the series stays within lo..hi for all points.
func flatNear(t *testing.T, s Series, lo, hi float64) {
	t.Helper()
	for _, p := range s.Points {
		if p.Y < lo || p.Y > hi {
			t.Errorf("%s at %v clients: %.1f ms, want within [%.1f, %.1f] (flat)", s.Label, p.X, p.Y, lo, hi)
		}
	}
}

func TestFig4aShape(t *testing.T) {
	res, err := Fig4(testCfg(), PatternA)
	if err != nil {
		t.Fatal(err)
	}
	// SAT serializes; MAT, LSA, PDS run the computations concurrently.
	linearIn(t, series(t, res, "SAT"), 100)
	flatNear(t, series(t, res, "MAT"), 100, 115)
	flatNear(t, series(t, res, "LSA"), 100, 115)
	flatNear(t, series(t, res, "PDS"), 100, 115)
}

func TestFig4bShape(t *testing.T) {
	res, err := Fig4(testCfg(), PatternB)
	if err != nil {
		t.Fatal(err)
	}
	linearIn(t, series(t, res, "SAT"), 100)
	flatNear(t, series(t, res, "MAT"), 100, 115)
	// LSA pays the mutex-table broadcast; still flat.
	flatNear(t, series(t, res, "LSA"), 100, 120)
	flatNear(t, series(t, res, "PDS"), 100, 120)
	// MAT is the superior variant (paper Section 5.3).
	if mat, lsa := y(t, series(t, res, "MAT"), 10), y(t, series(t, res, "LSA"), 10); mat > lsa {
		t.Errorf("MAT (%.1f) should not be slower than LSA (%.1f) on pattern b", mat, lsa)
	}
}

func TestFig4cShape(t *testing.T) {
	res, err := Fig4(testCfg(), PatternC)
	if err != nil {
		t.Fatal(err)
	}
	// MAT degenerates to SAT: both serialize fully.
	linearIn(t, series(t, res, "SAT"), 100)
	linearIn(t, series(t, res, "MAT"), 100)
	// LSA and PDS enable concurrency; with many clients LSA is superior
	// (collisions delay PDS rounds for the whole computation).
	lsa10, pds10, sat10 := y(t, series(t, res, "LSA"), 10), y(t, series(t, res, "PDS"), 10), y(t, series(t, res, "SAT"), 10)
	if lsa10 >= sat10/2 || pds10 >= sat10/2 {
		t.Errorf("LSA (%.1f) and PDS (%.1f) must beat serialized SAT (%.1f) clearly", lsa10, pds10, sat10)
	}
	if lsa10 >= pds10 {
		t.Errorf("with many clients LSA (%.1f) must beat PDS (%.1f) on pattern c", lsa10, pds10)
	}
}

func TestFig4dShape(t *testing.T) {
	res, err := Fig4(testCfg(), PatternD)
	if err != nil {
		t.Fatal(err)
	}
	linearIn(t, series(t, res, "SAT"), 100)
	linearIn(t, series(t, res, "MAT"), 100)
	// PDS is the most efficient algorithm for this pattern; LSA slightly
	// slower (paper Section 5.3).
	flatNear(t, series(t, res, "PDS"), 100, 115)
	flatNear(t, series(t, res, "LSA"), 100, 120)
	if pds10, lsa10 := y(t, series(t, res, "PDS"), 10), y(t, series(t, res, "LSA"), 10); pds10 > lsa10 {
		t.Errorf("PDS (%.1f) must not be slower than LSA (%.1f) on pattern d", pds10, lsa10)
	}
}

func TestFig5aShape(t *testing.T) {
	res, err := Fig5a(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// SEQ grows with clients; SAT stays flat at 0ms nested duration.
	seq, sat := series(t, res, "SEQ"), series(t, res, "SAT")
	if g, f := y(t, seq, 10), y(t, seq, 1); g < 2*f {
		t.Errorf("SEQ should grow with clients: %v → %v", f, g)
	}
	flatNear(t, sat, 1, 6)
	// With a 2ms suspension at B, the multithreading benefit is large.
	seq2, sat2 := y(t, series(t, res, "SEQ(2ms)"), 10), y(t, series(t, res, "SAT(2ms)"), 10)
	if sat2 >= seq2 {
		t.Errorf("SAT(2ms)=%.1f must beat SEQ(2ms)=%.1f at 10 clients", sat2, seq2)
	}
}

func TestFig5bShape(t *testing.T) {
	cfg := testCfg()
	cfg.PerClient = 5
	res, err := Fig5b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, sat, mat := series(t, res, "SEQ"), series(t, res, "SAT"), series(t, res, "MAT")
	lsa, pds := series(t, res, "LSA"), series(t, res, "PDS")
	for pi := 1; pi <= 6; pi++ {
		x := float64(pi)
		// SAT always beats SEQ (idle time of nested invocations utilized).
		if y(t, sat, x) >= y(t, seq, x) {
			t.Errorf("pattern %s: SAT (%.0f) must beat SEQ (%.0f)", Perms[pi-1], y(t, sat, x), y(t, seq, x))
		}
		// LSA and PDS are pattern-insensitive and far below SAT.
		if y(t, lsa, x) >= y(t, sat, x)/2 || y(t, pds, x) >= y(t, sat, x)/2 {
			t.Errorf("pattern %s: LSA/PDS must clearly beat SAT", Perms[pi-1])
		}
	}
	// The problematic MAT patterns are exactly NSC (3) and SCN (5): a state
	// update followed by a computation.
	good := (y(t, mat, 1) + y(t, mat, 4)) / 2 // NCS, CSN
	for _, bad := range []float64{3, 5} {
		if y(t, mat, bad) < 2.5*good {
			t.Errorf("MAT on %s: %.0f ms, want ≥ 2.5× its good patterns (%.0f)", Perms[int(bad)-1], y(t, mat, bad), good)
		}
	}
	for _, g := range []float64{1, 4} {
		if y(t, mat, g) > 1.6*y(t, lsa, g) {
			t.Errorf("MAT on %s should be near LSA: %.0f vs %.0f", Perms[int(g)-1], y(t, mat, g), y(t, lsa, g))
		}
	}
}

func TestFig6aShape(t *testing.T) {
	res, err := Fig6a(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	sat, mat, lsa := series(t, res, "SAT"), series(t, res, "MAT"), series(t, res, "LSA")
	// SAT and MAT scale linearly with consumers (one producer feeding all).
	for _, s := range []Series{sat, mat} {
		if g, f := y(t, s, 10), y(t, s, 1); g < 4*f {
			t.Errorf("%s should grow roughly linearly with consumers: %v → %v", s.Label, f, g)
		}
	}
	// LSA has a notable communication overhead over SAT.
	if l, s := y(t, lsa, 10), y(t, sat, 10); l <= s {
		t.Errorf("LSA (%.1f) must exceed SAT (%.1f) at 10 consumers", l, s)
	}
}

func TestFig6bShape(t *testing.T) {
	res, err := Fig6b(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// MAT (true multithreading + cheap notifications) is the best strategy
	// on the bounded buffer, and the SEQ polling fallback is the worst of
	// the SAT/MAT/SEQ trio.
	mat5, sat5, seq5 := y(t, series(t, res, "MAT"), 5), y(t, series(t, res, "SAT"), 5), y(t, series(t, res, "SEQ"), 5)
	if mat5 > sat5 {
		t.Errorf("MAT (%.1f) must not be slower than SAT (%.1f)", mat5, sat5)
	}
	// SEQ's polling is clearly worse than true multithreading (SEQ vs SAT
	// is within noise at small sample sizes, so compare against MAT).
	if seq5 <= 1.5*mat5 {
		t.Errorf("SEQ polling (%.1f) must clearly exceed MAT (%.1f)", seq5, mat5)
	}
}

func TestConflictSweepShape(t *testing.T) {
	cfg := testCfg()
	res, err := ConflictSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, mat, cc := series(t, res, "SEQ"), series(t, res, "MAT"), series(t, res, "CC")
	// Acceptance: at conflict ratio 0 (disjoint shards) CC must be at least
	// 2× faster than the serialized SEQ baseline.
	if s0, c0 := y(t, seq, 0), y(t, cc, 0); 2*c0 > s0 {
		t.Errorf("at ratio 0 CC (%.2f ms) must be ≥2× faster than SEQ (%.2f ms)", c0, s0)
	}
	// The in-lock computation is pattern (c), which MAT serializes — the
	// advantage must come from conflict classes, not multithreading alone.
	if m0, c0 := y(t, mat, 0), y(t, cc, 0); 2*c0 > m0 {
		t.Errorf("at ratio 0 CC (%.2f ms) must be ≥2× faster than MAT (%.2f ms)", c0, m0)
	}
	// At ratio 1 every request is global: CC degenerates to serialized
	// execution and must stay in SEQ's ballpark (no pathological overhead).
	if s1, c1 := y(t, seq, 1), y(t, cc, 1); c1 > 1.5*s1 {
		t.Errorf("at ratio 1 CC (%.2f ms) must not exceed 1.5× SEQ (%.2f ms)", c1, s1)
	}
	// More conflicts must not make CC faster: ratio 1 ≥ ratio 0.
	if c0, c1 := y(t, cc, 0), y(t, cc, 1); c1 < c0 {
		t.Errorf("CC latency must not drop as conflicts rise: ratio0=%.2f ratio1=%.2f", c0, c1)
	}
}

func TestAblationYieldShape(t *testing.T) {
	res, err := AB4MATYield(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The yield remedy must break pattern d's serialization.
	plain, yielded := y(t, series(t, res, "MAT"), 10), y(t, series(t, res, "MAT+yield"), 10)
	if yielded >= plain/2 {
		t.Errorf("yield must at least halve MAT's pattern-d latency: %.0f vs %.0f", yielded, plain)
	}
}

func TestAblationReplyPolicyShape(t *testing.T) {
	res, err := AB3ReplyPolicy(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	s := series(t, res, "LSA")
	first, majority := y(t, s, 1), y(t, s, 2)
	if first >= majority {
		t.Errorf("First (%.2f) must hide LSA's follower lag vs Majority (%.2f)", first, majority)
	}
}

func TestAblationLSAPeriodShape(t *testing.T) {
	res, err := AB2LSAPeriod(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	s := series(t, res, "LSA")
	if short, long := y(t, s, 1), y(t, s, 50); long <= short {
		t.Errorf("a 50ms broadcast period (%.1f) must cost more than 1ms (%.1f)", long, short)
	}
}

func TestAblationPDSNestedShape(t *testing.T) {
	cfg := testCfg()
	cfg.PerClient = 5
	res, err := AB5PDSNested(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Strategy A (the paper's choice) wins on these patterns.
	a, b := series(t, res, "PDS/A"), series(t, res, "PDS/B")
	worseCount := 0
	for pi := 1; pi <= 6; pi++ {
		if y(t, a, float64(pi)) > y(t, b, float64(pi)) {
			worseCount++
		}
	}
	if worseCount > 2 {
		t.Errorf("strategy A lost %d/6 patterns to B; the paper's choice should mostly win", worseCount)
	}
}

func TestAblationsRunClean(t *testing.T) {
	cfg := testCfg()
	cfg.PerClient = 4
	for _, fn := range []func(Config) (Result, error){AB1PDS2, AB6PDSAssignment} {
		if _, err := fn(cfg); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAblationMATPredictShape(t *testing.T) {
	res, err := AB7MATPredict(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	plain, predicted := y(t, series(t, res, "MAT"), 10), y(t, series(t, res, "MAT+predict"), 10)
	if predicted >= plain*0.7 {
		t.Errorf("lock prediction must clearly reduce locker latency: %.1f vs %.1f", predicted, plain)
	}
}
