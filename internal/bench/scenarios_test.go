package bench

import (
	"testing"

	replobj "github.com/replobj/replobj"
)

// These tests pin the production scenario suite's qualitative claims — the
// adaptive scheduler must track the best static kind on every scenario, and
// must actually switch in the burst scenario — so the checked-in
// results/BENCH_pr7.json stays reproducible. Every input is deterministic
// (driver args derive from mix(driver, seq, salt)), so the configuration
// printed on failure is the complete reproduction recipe.

// scenarioTolerance is the regression bound: the adaptive scheduler's p99
// may exceed the best static kind's p99 by at most this factor. The slack
// covers the adaptation transient (requests delivered while the stream still
// runs under the initial or previous kind).
const scenarioTolerance = 1.15

// scenarioTestCfg sizes the regression runs. PerClient must be large enough
// that the one-off switch transient falls out of the p99 (at 150×12 drivers
// the measured window is 1800 samples; the transient is a couple dozen).
func scenarioTestCfg() Config {
	cfg := Defaults()
	cfg.PerClient = 150
	cfg.Warmup = 5
	return cfg
}

// scenarioTestKinds returns the kinds the regression compares: a
// representative static subset in -short mode (including ADETS-CC, the
// suite's strongest static kind), the full matrix otherwise. The adaptive
// kind is always last.
func scenarioTestKinds() []replobj.SchedulerKind {
	if testing.Short() {
		return []replobj.SchedulerKind{replobj.SEQ, replobj.MAT, replobj.CC, replobj.ADAPT}
	}
	return ScenarioKinds()
}

func TestScenarioObjectClasses(t *testing.T) {
	var o scenarioObject
	if got := o.ConflictClasses("op", []byte{7, 0, 10}); len(got) != 1 || got[0] != "s7" {
		t.Errorf("classed request declared %v, want [s7]", got)
	}
	if got := o.ConflictClasses("op", []byte{0, 1, 3}); got != nil {
		t.Errorf("global request declared %v, want nil", got)
	}
	if got := o.ConflictClasses("op", []byte{0}); got != nil {
		t.Errorf("short args declared %v, want nil (conservative global)", got)
	}
}

func TestScenarioSLORegression(t *testing.T) {
	cfg := scenarioTestCfg()
	kinds := scenarioTestKinds()
	for _, spec := range ScenarioSpecs(cfg) {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			var adaptive ScenarioSLO
			bestStatic := -1.0
			bestKind := ""
			for _, kind := range kinds {
				slo, err := RunScenario(cfg, kind, spec)
				if err != nil {
					t.Fatalf("%s/%s (n=%d warmup=%d drivers=%d): %v",
						spec.ID, kind, cfg.PerClient, cfg.Warmup, ScenarioDrivers, err)
				}
				// Every cell must produce full, finite, ordered quantiles.
				if slo.Requests != ScenarioDrivers*cfg.PerClient {
					t.Errorf("%s/%s: %d samples, want %d", spec.ID, kind, slo.Requests, ScenarioDrivers*cfg.PerClient)
				}
				if !(slo.P50ms > 0 && slo.P50ms <= slo.P99ms && slo.P99ms <= slo.P999ms) {
					t.Errorf("%s/%s: quantiles not finite/ordered: p50=%v p99=%v p999=%v",
						spec.ID, kind, slo.P50ms, slo.P99ms, slo.P999ms)
				}
				if kind == replobj.ADAPT {
					adaptive = slo
				} else if bestStatic < 0 || slo.P99ms < bestStatic {
					bestStatic, bestKind = slo.P99ms, string(kind)
				}
			}
			// The adaptive scheduler must land within tolerance of the best
			// static kind on this scenario.
			if adaptive.P99ms > scenarioTolerance*bestStatic {
				t.Errorf("%s: adaptive p99 %.3f ms exceeds %.2f× best static %s (%.3f ms) [n=%d warmup=%d drivers=%d epoch=%d]",
					spec.ID, adaptive.P99ms, scenarioTolerance, bestKind, bestStatic,
					cfg.PerClient, cfg.Warmup, ScenarioDrivers, ScenarioEpoch)
			}
			// The burst scenario exists to force a mid-stream strategy change:
			// a run with no switch would make the adaptive column vacuous.
			// (RunScenario itself verifies cross-replica digest equality.)
			if spec.ID == "auction-burst" && adaptive.Switches == 0 {
				t.Errorf("%s: adaptive performed no switch [n=%d warmup=%d drivers=%d epoch=%d]",
					spec.ID, cfg.PerClient, cfg.Warmup, ScenarioDrivers, ScenarioEpoch)
			}
		})
	}
}
