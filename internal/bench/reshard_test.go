package bench

import "testing"

// TestReshardLivePins pins the headline claims of the live-resharding
// experiment: both transitions (grow 2→4, shrink 4→2) complete under
// driver load with zero lost and zero duplicated effects, the migration
// window overlaps measured traffic (all three latency phases populated),
// and the availability dip stays bounded — the stall can never exceed the
// window itself, and the post-fence p99 must return to the same order as
// the baseline. Per-shard trace-digest equality is checked inside the run.
func TestReshardLivePins(t *testing.T) {
	cfg := Defaults()
	cfg.PerClient = 24
	cfg.Warmup = 3
	if testing.Short() {
		cfg.PerClient = 12
		cfg.Warmup = 2
	}
	res, err := ReshardLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ReshardCells) != 2 {
		t.Fatalf("got %d reshard cells, want 2\n%s", len(res.ReshardCells), res.Format())
	}
	for _, c := range res.ReshardCells {
		if c.LostEffects != 0 || c.DupEffects != 0 {
			t.Errorf("%s: lost=%d dup=%d, want 0/0\n%s",
				c.Transition, c.LostEffects, c.DupEffects, res.Format())
		}
		if c.Requests < ReshardDrivers*cfg.PerClient {
			t.Errorf("%s: measured %d requests, want >= %d",
				c.Transition, c.Requests, ReshardDrivers*cfg.PerClient)
		}
		if c.WindowMs <= 0 {
			t.Errorf("%s: window %.3fms, want > 0", c.Transition, c.WindowMs)
		}
		if c.BaselineP99ms <= 0 || c.WindowP99ms <= 0 || c.AfterP99ms <= 0 {
			t.Errorf("%s: empty latency phase (base=%.3f win=%.3f after=%.3f)",
				c.Transition, c.BaselineP99ms, c.WindowP99ms, c.AfterP99ms)
		}
		if c.StallMs > c.WindowMs {
			t.Errorf("%s: stall %.3fms exceeds window %.3fms",
				c.Transition, c.StallMs, c.WindowMs)
		}
		// The dip is bounded: requests in flight during the move may queue
		// behind handoff traffic, but service resumes well before an
		// operator-visible outage. 50x baseline p99 is a generous ceiling
		// that still catches a wedged or serialized migration.
		if c.WindowP99ms > 50*c.BaselineP99ms {
			t.Errorf("%s: window p99 %.3fms > 50x baseline p99 %.3fms",
				c.Transition, c.WindowP99ms, c.BaselineP99ms)
		}
		// Post-fence latency recovers to the same order as baseline.
		if c.AfterP99ms > 5*c.BaselineP99ms {
			t.Errorf("%s: after-fence p99 %.3fms > 5x baseline p99 %.3fms",
				c.Transition, c.AfterP99ms, c.BaselineP99ms)
		}
	}
	grow := res.ReshardCells[0]
	if grow.Transition != "grow-2to4" || grow.FromShards != 2 || grow.ToShards != 4 {
		t.Errorf("first cell is %q %d→%d, want grow-2to4 2→4",
			grow.Transition, grow.FromShards, grow.ToShards)
	}
}
