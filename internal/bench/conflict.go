package bench

import (
	"fmt"
	"time"

	replobj "github.com/replobj/replobj"
	"github.com/replobj/replobj/internal/vtime"
)

// The conflict-class experiment: a sharded object whose requests declare
// which shard they touch. At conflict ratio 0 every request stays inside
// its own shard, so ADETS-CC dispatches the shards onto parallel lanes; as
// the ratio rises, more requests are global (undeclared) barriers and CC
// degenerates towards the serialized baseline. SEQ and ADETS-MAT run the
// identical workload for comparison — the in-lock computation makes the
// workload pattern (c) of Fig. 3, which MAT serializes, so the win here is
// attributable to conflict classes, not to multithreading alone.

// NumShards is the shard count of the conflict-class object.
const NumShards = 8

// ConflictClients is the client count of the conflict sweep (one client
// per shard).
const ConflictClients = NumShards

// ConflictCompute is the in-lock computation per request.
const ConflictCompute = 2 * time.Millisecond

// ConflictLanes sizes the CC lane pool. Generously above NumShards so the
// FNV class→lane mapping rarely collides (a collision only serializes two
// shards, it never breaks determinism).
const ConflictLanes = 64

// DefaultConflictRatios is the sweep grid.
var DefaultConflictRatios = []float64{0, 0.25, 0.5, 0.75, 1}

// conflictShards is the object state; it declares per-request classes from
// the arguments alone, so every replica computes the same set.
type conflictShards struct{}

// ConflictClasses implements replobj.ConflictClasser: args[0] is the shard
// index, args[1] != 0 marks the request global.
func (conflictShards) ConflictClasses(method string, args []byte) []string {
	if method != "op" || len(args) < 2 || args[1] != 0 {
		return nil // global: conflicts with everything
	}
	return []string{fmt.Sprintf("shard%d", args[0])}
}

// registerConflictObject installs "op": lock the request's shard mutex,
// compute, unlock. The body is identical for shard-local and global
// requests — only the declared class set differs — so any latency gap
// between the ratios is pure scheduling.
func registerConflictObject(g *replobj.Group, compute time.Duration) {
	g.Register("op", func(inv *replobj.Invocation) ([]byte, error) {
		m := replobj.MutexID(fmt.Sprintf("shard%d", inv.Args()[0]))
		if err := inv.Lock(m); err != nil {
			return nil, err
		}
		inv.Compute(compute)
		if err := inv.Unlock(m); err != nil {
			return nil, err
		}
		return nil, nil
	})
}

// conflictArgs builds one invocation: each client owns one shard, and the
// request is global with probability ratio (deterministic in client, seq).
func conflictArgs(client, seq int, ratio float64) []byte {
	shard := byte(client % NumShards)
	global := byte(0)
	if mix(uint64(client), uint64(seq), 11)%1_000_000 < uint64(ratio*1_000_000) {
		global = 1
	}
	return []byte{shard, global}
}

// conflictSetup creates the sharded group under the given strategy.
func conflictSetup(cfg Config, kind replobj.SchedulerKind) func(*replobj.Cluster) error {
	return func(c *replobj.Cluster) error {
		opts := append(groupOpts(kind, ConflictClients),
			replobj.WithState(func() any { return conflictShards{} }))
		if kind == replobj.CC {
			opts = append(opts, replobj.WithCCLanes(ConflictLanes))
		}
		g, err := c.NewGroup("shards", cfg.Replicas, opts...)
		if err != nil {
			return err
		}
		registerConflictObject(g, ConflictCompute)
		g.Start()
		return nil
	}
}

// ConflictKinds are the strategies compared by the conflict sweep.
var ConflictKinds = []struct {
	Label string
	Kind  replobj.SchedulerKind
}{
	{"SEQ", replobj.SEQ},
	{"MAT", replobj.MAT},
	{"CC", replobj.CC},
}

// ConflictSweep measures mean invocation latency over the conflict-ratio
// grid (or the single cfg.ConflictRatio when set) for SEQ, ADETS-MAT and
// ADETS-CC, with ConflictClients clients each hammering its own shard.
func ConflictSweep(cfg Config) (Result, error) {
	ratios := DefaultConflictRatios
	if cfg.ConflictRatio >= 0 {
		ratios = []float64{cfg.ConflictRatio}
	}
	res := Result{
		ID:     "cc-conflict",
		Title:  "Conflict-class dispatch — sharded object, 8 clients, global-request ratio sweep",
		XLabel: "conflict ratio",
		YLabel: "ms/invocation",
	}
	for _, k := range ConflictKinds {
		s := Series{Label: k.Label}
		for _, ratio := range ratios {
			ratio := ratio
			y, err := runScenario(cfg, ConflictClients,
				conflictSetup(cfg, k.Kind),
				func(rt vtime.Runtime, cl *replobj.Client, idx int) ([]time.Duration, error) {
					return timedLoop(rt, cfg, func(seq int) error {
						_, err := cl.Invoke("shards", "op", conflictArgs(idx, seq, ratio))
						return err
					})
				})
			if err != nil {
				return res, fmt.Errorf("cc-conflict %s ratio=%g: %w", k.Label, ratio, err)
			}
			s.Points = append(s.Points, Point{X: ratio, Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
