package bench

import "testing"

// TestSpeculationBeatsBaselineAtRatioZero pins the acceptance criterion of
// the speculation work: at conflict ratio 0, speculative execution must
// deliver a lower committed-reply p50 than the non-speculative baseline,
// with a real hit rate behind it. Deliberately small so it runs under
// -short — it is the regression pin, not the full sweep.
func TestSpeculationBeatsBaselineAtRatioZero(t *testing.T) {
	cfg := Defaults()
	cfg.PerClient = 20
	cfg.Warmup = 3
	spec, err := runSpecCell(cfg, 0, true)
	if err != nil {
		t.Fatalf("spec cell: %v", err)
	}
	base, err := runSpecCell(cfg, 0, false)
	if err != nil {
		t.Fatalf("base cell: %v", err)
	}
	t.Logf("ratio 0: spec p50=%.3fms (hits=%d/%d) vs base p50=%.3fms",
		spec.P50ms, spec.Hits, spec.Attempts, base.P50ms)
	if spec.Hits == 0 {
		t.Fatal("conflict-free workload produced no speculation hits")
	}
	if spec.P50ms >= base.P50ms {
		t.Errorf("speculation p50 %.3fms is not below baseline %.3fms at conflict ratio 0",
			spec.P50ms, base.P50ms)
	}
	if base.Attempts != 0 {
		t.Errorf("baseline run attempted %d speculations", base.Attempts)
	}
}

// TestSpeculationConvergesUnderConflict checks the other end of the sweep:
// at conflict ratio 1 every request is global, speculations go stale, and
// the discarded forks must cost the committed path essentially nothing —
// spec p50 stays within 10% of the baseline.
func TestSpeculationConvergesUnderConflict(t *testing.T) {
	cfg := Defaults()
	cfg.PerClient = 20
	cfg.Warmup = 3
	spec, err := runSpecCell(cfg, 1, true)
	if err != nil {
		t.Fatalf("spec cell: %v", err)
	}
	base, err := runSpecCell(cfg, 1, false)
	if err != nil {
		t.Fatalf("base cell: %v", err)
	}
	t.Logf("ratio 1: spec p50=%.3fms (aborts=%d/%d) vs base p50=%.3fms",
		spec.P50ms, spec.Aborts, spec.Attempts, base.P50ms)
	if spec.P50ms > base.P50ms*1.10 {
		t.Errorf("speculation p50 %.3fms exceeds baseline %.3fms by more than 10%% at conflict ratio 1",
			spec.P50ms, base.P50ms)
	}
}
