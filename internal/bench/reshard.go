package bench

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	replobj "github.com/replobj/replobj"
	"github.com/replobj/replobj/internal/vtime"
)

// This file implements the live-resharding experiment: a sharded keyed
// counter serves routed put traffic while Sharded.Reshard changes the
// shard count underneath it — grow 2→4 and shrink 4→2. The experiment
// answers the two questions an operator asks of elastic resharding:
//
//   1. Correctness under load: did every put land exactly once? Per-key
//      client-side success counts are compared against the object's final
//      values (LostEffects / DupEffects must be zero), and per-shard trace
//      digests must agree across replicas.
//   2. The cost of the move: latency quantiles split into before / during
//      / after the migration window, plus the availability dip — the
//      longest gap between consecutive successful completions overlapping
//      the window. The dual-home forwarding path is what keeps the dip at
//      request granularity instead of "object unavailable until cutover".

// Reshard experiment sizing.
const (
	// ReshardDrivers is the concurrent routed-put driver count per cell.
	ReshardDrivers = 12
	// ReshardKeys is the distinct key-class count the drivers spread over
	// (keys move between groups when the ring changes).
	ReshardKeys = 48
	// reshardTriggerFrac is the fraction of measured ops completed before
	// the transition is kicked off, placing the window inside the measured
	// phase.
	reshardTriggerFrac = 3
)

// ReshardCell is one measured live transition.
type ReshardCell struct {
	Transition string // e.g. "grow-2to4"
	FromShards int
	ToShards   int
	// Requests is the total measured puts; every one must succeed.
	Requests int
	// WindowMs is the virtual duration of the Reshard call (prepare →
	// handoff → fence → retire).
	WindowMs float64
	// Latency quantiles by phase: puts issued before the transition
	// started, puts issued inside the window, puts issued after the fence.
	BaselineP50ms float64
	BaselineP99ms float64
	WindowP99ms   float64
	AfterP99ms    float64
	// StallMs is the availability dip: the longest gap between consecutive
	// successful completions (cluster-wide) overlapping the window.
	StallMs float64
	// LostEffects / DupEffects count per-key mismatches between the
	// client-observed successful puts and the object's final values.
	// Both must be zero — the experiment's headline correctness claim.
	LostEffects int
	DupEffects  int
}

// reshardCounter is the experiment's object state: a per-key u64 counter
// implementing the keyed snapshotter contract that elastic resharding
// requires (per-key export / install / drop at quiesced positions).
type reshardCounter struct {
	m map[string]uint64
}

func be64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func (s *reshardCounter) Snapshot() ([]byte, error) {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := be64(uint64(len(keys)))
	for _, k := range keys {
		out = append(out, be64(uint64(len(k)))...)
		out = append(out, k...)
		out = append(out, be64(s.m[k])...)
	}
	return out, nil
}

func (s *reshardCounter) Restore(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("reshard bench: truncated snapshot")
	}
	n := binary.BigEndian.Uint64(data[:8])
	data = data[8:]
	m := make(map[string]uint64, n)
	for i := uint64(0); i < n; i++ {
		if len(data) < 8 {
			return fmt.Errorf("reshard bench: truncated key length")
		}
		kl := binary.BigEndian.Uint64(data[:8])
		data = data[8:]
		if uint64(len(data)) < kl+8 {
			return fmt.Errorf("reshard bench: truncated key entry")
		}
		k := string(data[:kl])
		m[k] = binary.BigEndian.Uint64(data[kl : kl+8])
		data = data[kl+8:]
	}
	s.m = m
	return nil
}

func (s *reshardCounter) ExportKeys(selected func(string) bool) (map[string][]byte, error) {
	out := make(map[string][]byte)
	for k, v := range s.m {
		if selected(k) {
			out[k] = be64(v)
		}
	}
	return out, nil
}

func (s *reshardCounter) InstallKeys(state map[string][]byte) error {
	for k, img := range state {
		if len(img) != 8 {
			return fmt.Errorf("reshard bench: key %q image has %d bytes, want 8", k, len(img))
		}
		s.m[k] = binary.BigEndian.Uint64(img)
	}
	return nil
}

func (s *reshardCounter) DropKeys(keys []string) error {
	for _, k := range keys {
		delete(s.m, k)
	}
	return nil
}

// reshardSample is one measured put: when it was issued and how long it
// took (virtual time).
type reshardSample struct {
	issued time.Duration
	dur    time.Duration
}

type reshardDriverOut struct {
	samples []reshardSample
	puts    map[string]uint64
	err     error
}

// runReshardCell measures one live transition from → to under driver load.
func runReshardCell(cfg Config, from, to int, label string) (ReshardCell, error) {
	cell := ReshardCell{Transition: label, FromShards: from, ToShards: to}
	rt := vtime.Virtual()
	defer rt.Stop()
	copts := []replobj.ClusterOption{replobj.WithLatency(cfg.Latency)}
	if cfg.Metrics != nil {
		copts = append(copts, replobj.WithMetrics(cfg.Metrics))
	}
	c := replobj.NewCluster(rt, copts...)

	keys := make([]string, ReshardKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
	}

	var outs []reshardDriverOut
	var windowStart, windowEnd time.Duration
	var firstErr error
	want := make(map[string]uint64)
	got := make(map[string]uint64)
	vtime.Run(rt, "reshard-main", func() {
		defer c.Close()
		s, err := c.NewSharded("elastic", cfg.Replicas,
			replobj.WithShards(from),
			replobj.WithScheduler(replobj.ADSAT),
			replobj.WithState(func() any { return &reshardCounter{m: make(map[string]uint64)} }),
			replobj.WithSchedTrace(0))
		if err != nil {
			firstErr = err
			return
		}
		s.Register("put", func(inv *replobj.Invocation) ([]byte, error) {
			st := inv.State().(*reshardCounter)
			if err := inv.Lock("state"); err != nil {
				return nil, err
			}
			defer func() { _ = inv.Unlock("state") }()
			st.m[inv.ShardKey()]++
			return be64(st.m[inv.ShardKey()]), nil
		})
		s.Register("get", func(inv *replobj.Invocation) ([]byte, error) {
			st := inv.State().(*reshardCounter)
			if err := inv.Lock("state"); err != nil {
				return nil, err
			}
			defer func() { _ = inv.Unlock("state") }()
			return be64(st.m[inv.ShardKey()]), nil
		})
		s.Start()

		// completed counts measured puts cluster-wide (runtime lock), so
		// the resharder can trigger mid-phase; reshardDone releases the
		// drivers into their fixed after-fence tail.
		completed := 0
		reshardDone := false
		totalOps := ReshardDrivers * cfg.PerClient
		const afterTail = 6 // post-fence puts per driver, populating the "after" phase

		ready := vtime.NewMailbox[bool](rt, "reshard-ready")
		start := make([]*vtime.Mailbox[bool], ReshardDrivers)
		for i := range start {
			start[i] = vtime.NewMailbox[bool](rt, fmt.Sprintf("reshard-start-%d", i))
		}
		done := vtime.NewMailbox[reshardDriverOut](rt, "reshard-done")
		for i := 0; i < ReshardDrivers; i++ {
			i := i
			rt.Go(fmt.Sprintf("reshard-driver-%d", i), func() {
				cl := c.NewClient(fmt.Sprintf("rsd%d", i),
					replobj.WithReplyPolicy(cfg.Policy),
					replobj.WithInvocationTimeout(5*time.Minute))
				r := cl.Router("elastic").WithMaxRedirects(32)
				op := func(seq int) (string, error) {
					key := keys[mix(uint64(i), uint64(seq), 71)%ReshardKeys]
					_, err := r.Invoke("put", nil, replobj.WithShardKey(key))
					return key, err
				}
				out := reshardDriverOut{puts: make(map[string]uint64)}
				for seq := 0; seq < cfg.Warmup; seq++ {
					if key, err := op(seq); err != nil {
						out.err = err
						break
					} else {
						out.puts[key]++
					}
				}
				ready.Put(true)
				start[i].Get()
				if out.err == nil {
					// Measured phase: at least PerClient puts, and keep
					// issuing until the fence lands so the window phase has
					// traffic; then a fixed after-fence tail.
					seq := 0
					for {
						rt.Lock()
						fenced := reshardDone
						rt.Unlock()
						if seq >= cfg.PerClient && fenced {
							break
						}
						if seq >= cfg.PerClient*8 {
							out.err = fmt.Errorf("driver %d: reshard still running after %d puts", i, seq)
							break
						}
						t0 := rt.Now()
						key, err := op(cfg.Warmup + seq)
						if err != nil {
							out.err = fmt.Errorf("driver %d put %d: %w", i, seq, err)
							break
						}
						out.samples = append(out.samples, reshardSample{issued: t0, dur: rt.Now() - t0})
						out.puts[key]++
						rt.Lock()
						completed++
						rt.Unlock()
						seq++
					}
					for j := 0; out.err == nil && j < afterTail; j++ {
						t0 := rt.Now()
						key, err := op(cfg.Warmup + seq + j)
						if err != nil {
							out.err = fmt.Errorf("driver %d tail put %d: %w", i, j, err)
							break
						}
						out.samples = append(out.samples, reshardSample{issued: t0, dur: rt.Now() - t0})
						out.puts[key]++
					}
				}
				done.Put(out)
			})
		}
		for i := 0; i < ReshardDrivers; i++ {
			ready.Get()
		}
		for i := range start {
			start[i].Put(true)
		}

		// The resharder waits for a third of the measured traffic, then
		// performs the transition live.
		resharded := vtime.NewMailbox[error](rt, "reshard-admin-done")
		rt.Go("resharder", func() {
			for {
				rt.Lock()
				c := completed
				rt.Unlock()
				if c >= totalOps/reshardTriggerFrac {
					break
				}
				rt.Sleep(2 * time.Millisecond)
			}
			admin := c.NewClient("reshard-admin",
				replobj.WithReplyPolicy(cfg.Policy),
				replobj.WithInvocationTimeout(5*time.Minute))
			windowStart = rt.Now()
			err := s.Reshard(admin, to)
			windowEnd = rt.Now()
			rt.Lock()
			reshardDone = true
			rt.Unlock()
			resharded.Put(err)
		})

		for i := 0; i < ReshardDrivers; i++ {
			out, _ := done.Get()
			if out.err != nil && firstErr == nil {
				firstErr = out.err
			}
			outs = append(outs, out)
		}
		if err, _ := resharded.Get(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("reshard %s: %w", label, err)
		}
		if firstErr != nil {
			return
		}

		// Correctness: client-observed puts vs final object values, and
		// per-shard determinism across replicas.
		for _, out := range outs {
			for k, n := range out.puts {
				want[k] += n
			}
		}
		checker := c.NewClient("reshard-checker",
			replobj.WithReplyPolicy(cfg.Policy),
			replobj.WithInvocationTimeout(5*time.Minute))
		r := checker.Router("elastic").WithMaxRedirects(32)
		for _, key := range keys {
			v, err := r.Invoke("get", nil, replobj.WithShardKey(key))
			if err != nil {
				firstErr = fmt.Errorf("reshard %s: readback %s: %w", label, key, err)
				return
			}
			got[key] = binary.BigEndian.Uint64(v)
		}
		s.EachShard(func(i int, g *replobj.Group) {
			ref := g.Trace(0)
			for rank := 1; rank < cfg.Replicas; rank++ {
				if d := replobj.FirstTraceDivergence(ref, g.Trace(rank)); d != nil && firstErr == nil {
					firstErr = fmt.Errorf("reshard %s: shard %d rank %d diverged from rank 0: %v",
						label, i, rank, d)
				}
			}
		})
	})
	if firstErr != nil {
		return cell, firstErr
	}

	for _, key := range keys {
		switch {
		case got[key] < want[key]:
			cell.LostEffects += int(want[key] - got[key])
		case got[key] > want[key]:
			cell.DupEffects += int(got[key] - want[key])
		}
	}

	// Phase split by issue time; availability dip from completion gaps
	// overlapping the window.
	var baseline, window, after []time.Duration
	var completions []time.Duration
	for _, out := range outs {
		for _, sm := range out.samples {
			switch {
			case sm.issued < windowStart:
				baseline = append(baseline, sm.dur)
			case sm.issued <= windowEnd:
				window = append(window, sm.dur)
			default:
				after = append(after, sm.dur)
			}
			completions = append(completions, sm.issued+sm.dur)
			cell.Requests++
		}
	}
	if len(baseline) == 0 || len(window) == 0 || len(after) == 0 {
		return cell, fmt.Errorf("reshard %s: empty phase (baseline=%d window=%d after=%d) — transition missed the measured traffic",
			label, len(baseline), len(window), len(after))
	}
	sort.Slice(baseline, func(i, j int) bool { return baseline[i] < baseline[j] })
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	sort.Slice(after, func(i, j int) bool { return after[i] < after[j] })
	sort.Slice(completions, func(i, j int) bool { return completions[i] < completions[j] })
	cell.WindowMs = float64(windowEnd-windowStart) / float64(time.Millisecond)
	cell.BaselineP50ms = quantileMS(baseline, 0.50)
	cell.BaselineP99ms = quantileMS(baseline, 0.99)
	cell.WindowP99ms = quantileMS(window, 0.99)
	cell.AfterP99ms = quantileMS(after, 0.99)
	var stall time.Duration
	prev := windowStart
	for _, t := range completions {
		if t <= prev {
			continue
		}
		// Only gaps that overlap the migration window count toward the dip.
		if prev <= windowEnd && t >= windowStart {
			lo, hi := prev, t
			if lo < windowStart {
				lo = windowStart
			}
			if hi > windowEnd {
				hi = windowEnd
			}
			if hi-lo > stall {
				stall = hi - lo
			}
		}
		prev = t
	}
	cell.StallMs = float64(stall) / float64(time.Millisecond)
	return cell, nil
}

// ReshardLive runs both live transitions and reports per-phase p99 plus
// the availability dip. The figure plots p99 by phase (0=before, 1=during,
// 2=after) per transition; the full rows ride Result.ReshardCells.
func ReshardLive(cfg Config) (Result, error) {
	res := Result{
		ID:     "reshard",
		Title:  "Live resharding — p99 before/during/after the migration window (routed puts)",
		XLabel: "phase (0=before 1=during 2=after)",
		YLabel: "p99 ms",
	}
	transitions := []struct {
		label    string
		from, to int
	}{
		{"grow-2to4", 2, 4},
		{"shrink-4to2", 4, 2},
	}
	for _, tr := range transitions {
		cell, err := runReshardCell(cfg, tr.from, tr.to, tr.label)
		if err != nil {
			return res, err
		}
		res.ReshardCells = append(res.ReshardCells, cell)
		res.Series = append(res.Series, Series{
			Label: tr.label,
			Points: []Point{
				{X: 0, Y: cell.BaselineP99ms},
				{X: 1, Y: cell.WindowP99ms},
				{X: 2, Y: cell.AfterP99ms},
			},
		})
	}
	return res, nil
}
