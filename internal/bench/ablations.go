package bench

import (
	"fmt"
	"time"

	replobj "github.com/replobj/replobj"
	"github.com/replobj/replobj/internal/adets/pds"
	"github.com/replobj/replobj/internal/client"
	"github.com/replobj/replobj/internal/vtime"
)

// The ablation experiments isolate the design choices the paper discusses;
// DESIGN.md lists them as AB1–AB6.

// AB1PDS2 compares PDS-1 and PDS-2 on the double-lock pattern (two mutex
// acquisitions per request): PDS-2's second within-round grant should
// reduce latency.
func AB1PDS2(cfg Config) (Result, error) {
	res := Result{
		ID:     "ab-pds2",
		Title:  "AB1 — PDS-1 vs PDS-2 on lock-compute-lock-compute-unlock-unlock",
		XLabel: "clients",
		YLabel: "ms/invocation",
	}
	for _, k := range []struct {
		label string
		kind  replobj.SchedulerKind
	}{
		{"PDS-1", replobj.PDS},
		{"PDS-2", replobj.PDS2},
	} {
		s := Series{Label: k.label}
		for n := 1; n <= 8; n++ {
			y, err := runScenario(cfg, n,
				localSetup(cfg, k.kind, n, ComputeTime),
				localScript(cfg, PatternDouble))
			if err != nil {
				return res, fmt.Errorf("ab-pds2 %s n=%d: %w", k.label, n, err)
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// AB2LSAPeriod sweeps ADETS-LSA's mutex-table broadcast period on pattern
// (c) with 10 clients: shorter periods cut follower lag at the price of
// more messages.
func AB2LSAPeriod(cfg Config) (Result, error) {
	res := Result{
		ID:     "ab-lsaperiod",
		Title:  "AB2 — LSA broadcast period sweep (pattern c, 10 clients)",
		XLabel: "period ms",
		YLabel: "ms/invocation",
	}
	s := Series{Label: "LSA"}
	for _, period := range []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	} {
		period := period
		setup := func(c *replobj.Cluster) error {
			g, err := c.NewGroup("obj", cfg.Replicas,
				replobj.WithScheduler(replobj.LSA),
				replobj.WithLSAPeriod(period))
			if err != nil {
				return err
			}
			registerLocalObject(g, ComputeTime)
			g.Start()
			return nil
		}
		y, err := runScenario(cfg, MaxClients, setup, localScript(cfg, PatternC))
		if err != nil {
			return res, fmt.Errorf("ab-lsaperiod %v: %w", period, err)
		}
		s.Points = append(s.Points, Point{X: float64(period.Milliseconds()), Y: y})
	}
	res.Series = append(res.Series, s)
	return res, nil
}

// AB3ReplyPolicy compares reply-collection policies under ADETS-LSA
// (pattern b, 5 clients): First hides the follower lag entirely, All pays
// the full table-broadcast latency — the knob that controls how much of
// LSA's cost a client observes.
func AB3ReplyPolicy(cfg Config) (Result, error) {
	res := Result{
		ID:     "ab-reply",
		Title:  "AB3 — reply policy (first/majority/all) under LSA, pattern b, 5 clients",
		XLabel: "policy (1=first 2=majority 3=all)",
		YLabel: "ms/invocation",
	}
	s := Series{Label: "LSA"}
	for i, pol := range []replobj.ReplyPolicy{client.First, client.Majority, client.All} {
		c2 := cfg
		c2.Policy = pol
		y, err := runScenario(c2, 5,
			localSetup(c2, replobj.LSA, 5, ComputeTime),
			localScript(c2, PatternB))
		if err != nil {
			return res, fmt.Errorf("ab-reply %v: %w", pol, err)
		}
		s.Points = append(s.Points, Point{X: float64(i + 1), Y: y})
	}
	res.Series = append(res.Series, s)
	return res, nil
}

// AB4MATYield measures the paper's Section 5.3 remedy: pattern (d) with an
// explicit Yield after the unlock restores MAT's concurrency.
func AB4MATYield(cfg Config) (Result, error) {
	res := Result{
		ID:     "ab-yield",
		Title:  "AB4 — ADETS-MAT pattern d with and without Yield after unlock",
		XLabel: "clients",
		YLabel: "ms/invocation",
	}
	for _, v := range []struct {
		label   string
		pattern Pattern
	}{
		{"MAT", PatternD},
		{"MAT+yield", PatternDYield},
	} {
		s := Series{Label: v.label}
		for n := 1; n <= MaxClients; n++ {
			y, err := runScenario(cfg, n,
				localSetup(cfg, replobj.MAT, n, ComputeTime),
				localScript(cfg, v.pattern))
			if err != nil {
				return res, fmt.Errorf("ab-yield %s n=%d: %w", v.label, n, err)
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// AB5PDSNested compares the two nested-invocation strategies of Section
// 4.2 on the Fig. 5(b) patterns: A (block the round — good for short
// invocations) vs B (suspend, resume at a round boundary).
func AB5PDSNested(cfg Config) (Result, error) {
	res := Result{
		ID:     "ab-pdsnested",
		Title:  "AB5 — PDS nested strategy A (block round) vs B (suspend), Fig. 5(b) patterns",
		XLabel: "pattern#",
		YLabel: "ms/invocation",
	}
	for _, v := range []struct {
		label string
		ns    pds.NestedStrategy
	}{
		{"PDS/A", pds.NestedBlockRound},
		{"PDS/B", pds.NestedSuspend},
	} {
		ns := v.ns
		sub, err := fig5b(cfg, map[replobj.SchedulerKind][]replobj.GroupOption{
			replobj.PDS: {replobj.WithPDSConfig(pds.Config{
				PoolSize: Fig5bClients,
				Nested:   ns,
			})},
		})
		if err != nil {
			return res, fmt.Errorf("ab-pdsnested %s: %w", v.label, err)
		}
		pdsSeries, ok := sub.Get("PDS")
		if !ok {
			return res, fmt.Errorf("ab-pdsnested: PDS series missing")
		}
		pdsSeries.Label = v.label
		res.Series = append(res.Series, pdsSeries)
	}
	return res, nil
}

// AB6PDSAssignment compares the synchronized and round-robin request
// assignment strategies on pattern (b) — the workload whose identical
// computation times are round-robin's stated precondition.
func AB6PDSAssignment(cfg Config) (Result, error) {
	res := Result{
		ID:     "ab-pdsassign",
		Title:  "AB6 — PDS request assignment: synchronized vs round-robin (pattern b)",
		XLabel: "clients",
		YLabel: "ms/invocation",
	}
	for _, v := range []struct {
		label  string
		assign pds.Assignment
	}{
		{"synchronized", pds.Synchronized},
		{"round-robin", pds.RoundRobin},
	} {
		assign := v.assign
		s := Series{Label: v.label}
		for n := 1; n <= 8; n++ {
			n := n
			setup := func(c *replobj.Cluster) error {
				g, err := c.NewGroup("obj", cfg.Replicas,
					replobj.WithScheduler(replobj.PDS),
					replobj.WithPDSConfig(pds.Config{PoolSize: n, Assignment: assign}))
				if err != nil {
					return err
				}
				registerLocalObject(g, ComputeTime)
				g.Start()
				return nil
			}
			y, err := runScenario(cfg, n, setup, localScript(cfg, PatternB))
			if err != nil {
				return res, fmt.Errorf("ab-pdsassign %s n=%d: %w", v.label, n, err)
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// AB7MATPredict measures the lock-prediction extension on a mixed
// workload: even-indexed clients issue pure 100 ms computations, odd ones
// short lock-protected updates. Plain ADETS-MAT makes every locker wait
// for the computations ahead of it in the token order; with the
// computations declaring NoMoreLocks they step aside and the lockers
// proceed immediately.
func AB7MATPredict(cfg Config) (Result, error) {
	res := Result{
		ID:     "ab-matpredict",
		Title:  "AB7 — ADETS-MAT lock prediction (mixed compute/lock workload)",
		XLabel: "clients",
		YLabel: "ms/invocation (lockers)",
	}
	for _, v := range []struct {
		label   string
		declare byte
	}{
		{"MAT", 0},
		{"MAT+predict", 1},
	} {
		declare := v.declare
		s := Series{Label: v.label}
		for n := 2; n <= 10; n += 2 {
			n := n
			setup := func(c *replobj.Cluster) error {
				g, err := c.NewGroup("obj", cfg.Replicas, replobj.WithScheduler(replobj.MAT))
				if err != nil {
					return err
				}
				registerMixedObject(g, ComputeTime)
				g.Start()
				return nil
			}
			y, err := runScenario(cfg, n, setup, func(rt vtime.Runtime, cl *replobj.Client, idx int) ([]time.Duration, error) {
				kind := byte(idx % 2) // 0 = computer, 1 = locker
				durs, err := timedLoop(rt, cfg, func(int) error {
					_, err := cl.Invoke("obj", "mixed", []byte{kind, declare})
					return err
				})
				if kind == 0 {
					return nil, err // only the lockers' latency is the metric
				}
				return durs, err
			})
			if err != nil {
				return res, fmt.Errorf("ab-matpredict %s n=%d: %w", v.label, n, err)
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// All runs every figure and ablation with the given configuration.
func All(cfg Config) ([]Result, error) {
	type exp struct {
		name string
		fn   func(Config) (Result, error)
	}
	exps := []exp{
		{"fig4a", func(c Config) (Result, error) { return Fig4(c, PatternA) }},
		{"fig4b", func(c Config) (Result, error) { return Fig4(c, PatternB) }},
		{"fig4c", func(c Config) (Result, error) { return Fig4(c, PatternC) }},
		{"fig4d", func(c Config) (Result, error) { return Fig4(c, PatternD) }},
		{"fig5a", Fig5a},
		{"fig5b", Fig5b},
		{"fig6a", Fig6a},
		{"fig6b", Fig6b},
		{"ab-pds2", AB1PDS2},
		{"ab-lsaperiod", AB2LSAPeriod},
		{"ab-reply", AB3ReplyPolicy},
		{"ab-yield", AB4MATYield},
		{"ab-pdsnested", AB5PDSNested},
		{"ab-pdsassign", AB6PDSAssignment},
		{"ab-matpredict", AB7MATPredict},
		{"cc-conflict", ConflictSweep},
		{"memory", MemoryBounds},
		{"latency-breakdown", LatencyBreakdown},
		{"scenarios", ProductionScenarios},
		{"shards", ShardScaleOut},
		{"reshard", ReshardLive},
		{"speculation", Speculation},
	}
	out := make([]Result, 0, len(exps))
	for _, e := range exps {
		r, err := e.fn(cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Experiments maps experiment ids to their runners (for cmd/replbench).
func Experiments() map[string]func(Config) (Result, error) {
	return map[string]func(Config) (Result, error){
		"fig4a":         func(c Config) (Result, error) { return Fig4(c, PatternA) },
		"fig4b":         func(c Config) (Result, error) { return Fig4(c, PatternB) },
		"fig4c":         func(c Config) (Result, error) { return Fig4(c, PatternC) },
		"fig4d":         func(c Config) (Result, error) { return Fig4(c, PatternD) },
		"fig5a":         Fig5a,
		"fig5b":         Fig5b,
		"fig6a":         Fig6a,
		"fig6b":         Fig6b,
		"ab-pds2":       AB1PDS2,
		"ab-lsaperiod":  AB2LSAPeriod,
		"ab-reply":      AB3ReplyPolicy,
		"ab-yield":      AB4MATYield,
		"ab-pdsnested":  AB5PDSNested,
		"ab-pdsassign":  AB6PDSAssignment,
		"ab-matpredict": AB7MATPredict,
		"cc-conflict":   ConflictSweep,
		"memory":        MemoryBounds,

		"latency-breakdown": LatencyBreakdown,
		"scenarios":         ProductionScenarios,
		"shards":            ShardScaleOut,
		"reshard":           ReshardLive,
		"speculation":       Speculation,
	}
}
