package bench

import (
	"fmt"
	"sort"
	"time"

	replobj "github.com/replobj/replobj"
	"github.com/replobj/replobj/internal/vtime"
)

// This file implements the production scenario suite: four replicated-object
// workloads modeled on common service shapes — a web session store, a
// token-bucket rate limiter, an auction/chat room with a load burst, and a
// read-mostly key-value cache. Unlike the paper's microbenchmarks (one
// pattern, one knob), each scenario has a request mix whose best static
// strategy differs — which is exactly the case ADETS-ADAPT exists for — and
// the report is SLO-style: exact-sample p50/p99/p99.9 latency quantiles per
// scheduler kind, with the adaptive scheduler judged against every static
// kind on the identical workload.
//
// Scale comes from the virtual-time kernel: a handful of driver connections
// multiplex invocations on behalf of a virtual population of ~2 million
// distinct sessions/keys (ids drawn deterministically via mix), so shard
// spread and class cardinality behave like production traffic while a full
// sweep runs in seconds of host time. Every parameter is computed
// client-side from (driver, seq), so all replicas see identical requests by
// construction and adaptive switch decisions are replicated state.

// ScenarioSLO is the SLO summary of one (scenario, scheduler) cell.
type ScenarioSLO struct {
	Scenario  string
	Scheduler string
	Requests  int
	P50ms     float64
	P99ms     float64
	P999ms    float64
	// Switches is the number of strategy switches the adaptive scheduler
	// performed during the run (0 for static kinds).
	Switches uint64 `json:",omitempty"`
}

// Scenario suite sizing.
const (
	// ScenarioDrivers is the number of concurrent driver connections per
	// scenario run; each multiplexes the virtual session population.
	ScenarioDrivers = 12
	// ScenarioSessions is the virtual client/session/key population.
	ScenarioSessions = 1 << 21
	// ScenarioShards is the class/mutex shard count the populations hash
	// onto (sessions and keys use subsets of it).
	ScenarioShards = 64
	// ScenarioLanes sizes the CC lane pool for the classed scenarios.
	ScenarioLanes = 64
	// ScenarioEpoch is the adaptive boundary spacing: short enough that the
	// warmup invocations (ScenarioDrivers * cfg.Warmup stream positions)
	// cross the first boundary, so measurement starts adapted.
	ScenarioEpoch = 24
	// ScenarioRooms is the burst scenario's chat-room count.
	ScenarioRooms = 8
)

// ScenarioSpec describes one production scenario: the object (state factory
// with conflict-class declaration plus handler registration) and the
// deterministic per-invocation argument stream.
type ScenarioSpec struct {
	ID    string
	Title string
	// Method is the invoked method name.
	Method string
	// State builds the per-replica object state (a ConflictClasser).
	State func() any
	// Register installs the handlers.
	Register func(g *replobj.Group)
	// Args builds the argument bytes for one invocation of one driver.
	// Warmup and measured invocations share the seq counter.
	Args func(driver, seq int) []byte
}

// scenarioObject is the shared object state: it declares conflict classes
// from the request arguments alone (args[0] = shard, args[1] != 0 marks the
// request global), so every replica derives the identical class set.
type scenarioObject struct{}

// ConflictClasses implements replobj.ConflictClasser.
func (scenarioObject) ConflictClasses(method string, args []byte) []string {
	if len(args) < 2 || args[1] != 0 {
		return nil // global: conflicts with everything
	}
	return []string{fmt.Sprintf("s%d", args[0])}
}

// registerScenarioObject installs "op": lock the request's shard mutexes,
// compute for the argument-selected duration, unlock. args[2] selects the
// compute bucket in units of 100 µs. Classed requests (args[1] == 0) lock
// the single shard args[0]; global requests lock args[3] shards starting at
// args[0] in ascending order (span 1 when absent), so a request that is
// global at the class level is global at the lock level too — lock-based
// schedulers must serialize against it just like the class-based ones.
func registerScenarioObject(g *replobj.Group) {
	g.Register("op", func(inv *replobj.Invocation) ([]byte, error) {
		args := inv.Args()
		span := 1
		if args[1] != 0 && len(args) > 3 && args[3] > 1 {
			span = int(args[3])
		}
		for i := 0; i < span; i++ {
			if err := inv.Lock(replobj.MutexID(fmt.Sprintf("s%d", int(args[0])+i))); err != nil {
				return nil, err
			}
		}
		inv.Compute(time.Duration(args[2]) * 100 * time.Microsecond)
		for i := span - 1; i >= 0; i-- {
			if err := inv.Unlock(replobj.MutexID(fmt.Sprintf("s%d", int(args[0])+i))); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
}

// Scenarios builds the production scenario suite. cfg sizes the per-driver
// invocation counts; the phase split of the burst scenario derives from it.
func ScenarioSpecs(cfg Config) []ScenarioSpec {
	total := cfg.Warmup + cfg.PerClient
	return []ScenarioSpec{
		{
			ID:    "session-store",
			Title: "Web session store — 2M virtual sessions, per-session ops, fully classed",
			// Every op touches one session; sessions hash onto 64 shards and
			// declare the shard as conflict class: disjoint sessions commute.
			// Expected winner: ADETS-CC (parallel lanes).
			Method:   "op",
			State:    func() any { return scenarioObject{} },
			Register: registerScenarioObject,
			Args: func(driver, seq int) []byte {
				sid := mix(uint64(driver), uint64(seq), 31) % ScenarioSessions
				return []byte{byte(sid % ScenarioShards), 0, 10} // classed, 1 ms
			},
		},
		{
			ID:    "rate-limiter",
			Title: "Token-bucket rate limiter — one global bucket, every request conflicts",
			// Every op debits the single bucket under one mutex and declares
			// no class: total serialization is inherent. Expected winner: SEQ
			// (least scheduling overhead when nothing can overlap).
			Method:   "op",
			State:    func() any { return scenarioObject{} },
			Register: registerScenarioObject,
			Args: func(driver, seq int) []byte {
				return []byte{0, 1, 3} // global, 300 µs
			},
		},
		{
			ID:    "auction-burst",
			Title: "Auction/chat burst — calm per-room traffic, then a burst on one hot room",
			// First half: classed per-room reads spread over 8 rooms (CC
			// territory). Second half: a bidding/posting burst — every driver
			// hammers room 0 with global requests (SEQ territory). No static
			// kind is right for both halves; the adaptive scheduler must
			// switch at least once, deterministically.
			Method:   "op",
			State:    func() any { return scenarioObject{} },
			Register: registerScenarioObject,
			Args: func(driver, seq int) []byte {
				if seq < total/2 {
					room := byte(mix(uint64(driver), uint64(seq), 37) % ScenarioRooms)
					return []byte{room, 0, 10} // calm: classed, 1 ms
				}
				return []byte{0, 1, 3} // burst: global hot room, 300 µs
			},
		},
		{
			ID:    "read-mostly-kv",
			Title: "Read-mostly KV cache — 95% classed shard reads, 5% global writes",
			// Reads declare their key shard (32 shards of the 2M-key space)
			// and commute across shards; the occasional write invalidates the
			// whole cache — it is global at the class level and spans all 32
			// shard locks at the lock level. Expected winner: ADETS-CC,
			// degraded by the write ratio.
			Method:   "op",
			State:    func() any { return scenarioObject{} },
			Register: registerScenarioObject,
			Args: func(driver, seq int) []byte {
				key := mix(uint64(driver), uint64(seq), 41) % ScenarioSessions
				shard := byte(key % 32)
				if mix(uint64(driver), uint64(seq), 43)%100 < 5 {
					return []byte{0, 1, 20, 32} // write: global, 2 ms, all shards
				}
				return []byte{shard, 0, 5} // read: classed, 500 µs
			},
		},
	}
}

// ScenarioKinds lists the scheduler kinds the suite compares: every static
// kind plus the adaptive meta-scheduler.
func ScenarioKinds() []replobj.SchedulerKind { return replobj.Kinds() }

// switchCounter is implemented by the adaptive meta-scheduler.
type switchCounter interface{ Switches() uint64 }

// RunScenario measures one (scenario, scheduler) cell and returns its SLO
// summary. Adaptive runs additionally verify cross-replica trace-digest
// equality (the switch decisions are part of the "sched" stream) and report
// the switch count.
func RunScenario(cfg Config, kind replobj.SchedulerKind, spec ScenarioSpec) (ScenarioSLO, error) {
	slo := ScenarioSLO{Scenario: spec.ID, Scheduler: string(kind)}
	rt := vtime.Virtual()
	defer rt.Stop()
	copts := []replobj.ClusterOption{replobj.WithLatency(cfg.Latency)}
	if cfg.Metrics != nil {
		copts = append(copts, replobj.WithMetrics(cfg.Metrics))
	}
	c := replobj.NewCluster(rt, copts...)
	var durs []time.Duration
	var firstErr error
	vtime.Run(rt, "scenario-main", func() {
		defer c.Close()
		opts := append(groupOpts(kind, ScenarioDrivers),
			replobj.WithState(spec.State))
		switch kind {
		case replobj.CC:
			opts = append(opts, replobj.WithCCLanes(ScenarioLanes))
		case replobj.ADAPT:
			opts = append(opts,
				replobj.WithCCLanes(ScenarioLanes),
				replobj.WithAdaptive(replobj.AdaptiveConfig{Epoch: ScenarioEpoch}),
				replobj.WithSchedTrace(0))
		}
		g, err := c.NewGroup(spec.ID, cfg.Replicas, opts...)
		if err != nil {
			firstErr = err
			return
		}
		spec.Register(g)
		g.Start()
		results := vtime.NewMailbox[clientResult](rt, "scenario-results")
		for i := 0; i < ScenarioDrivers; i++ {
			i := i
			rt.Go(fmt.Sprintf("driver-%d", i), func() {
				cl := c.NewClient(fmt.Sprintf("d%d", i),
					replobj.WithReplyPolicy(cfg.Policy),
					replobj.WithInvocationTimeout(5*time.Minute))
				ds, err := timedLoop(rt, cfg, func(seq int) error {
					_, err := cl.Invoke(replobj.GroupID(spec.ID), spec.Method, spec.Args(i, seq))
					return err
				})
				results.Put(clientResult{durs: ds, err: err})
			})
		}
		for i := 0; i < ScenarioDrivers; i++ {
			res, _ := results.Get()
			if res.err != nil && firstErr == nil {
				firstErr = res.err
			}
			durs = append(durs, res.durs...)
		}
		if kind == replobj.ADAPT && firstErr == nil {
			if sw, ok := g.Replica(0).Scheduler().(switchCounter); ok {
				slo.Switches = sw.Switches()
			}
			ref := g.Trace(0)
			for rank := 1; rank < cfg.Replicas; rank++ {
				if d := replobj.FirstTraceDivergence(ref, g.Trace(rank)); d != nil {
					firstErr = fmt.Errorf("scenario %s: replica %d trace diverged from replica 0 across switches: %v",
						spec.ID, rank, d)
					return
				}
			}
		}
	})
	if firstErr != nil {
		return slo, firstErr
	}
	if len(durs) == 0 {
		return slo, fmt.Errorf("scenario %s/%s: no samples collected", spec.ID, kind)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	slo.Requests = len(durs)
	slo.P50ms = quantileMS(durs, 0.50)
	slo.P99ms = quantileMS(durs, 0.99)
	slo.P999ms = quantileMS(durs, 0.999)
	return slo, nil
}

// ProductionScenarios runs the full suite: every scenario under every
// scheduler kind. The figure plots p99 per scenario index; the full SLO
// rows (p50/p99/p99.9, request counts, adaptive switch counts) ride
// Result.Scenarios.
func ProductionScenarios(cfg Config) (Result, error) {
	res := Result{
		ID:     "scenarios",
		Title:  "Production scenarios — SLO quantiles per scheduler (adaptive vs every static kind)",
		XLabel: "scenario index",
		YLabel: "p99 ms",
	}
	specs := ScenarioSpecs(cfg)
	for _, kind := range ScenarioKinds() {
		s := Series{Label: string(kind)}
		for si, spec := range specs {
			slo, err := RunScenario(cfg, kind, spec)
			if err != nil {
				return res, fmt.Errorf("scenarios %s/%s: %w", spec.ID, kind, err)
			}
			res.Scenarios = append(res.Scenarios, slo)
			s.Points = append(s.Points, Point{X: float64(si), Y: slo.P99ms})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
