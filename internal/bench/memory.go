package bench

import (
	"encoding/binary"
	"fmt"
	"time"

	replobj "github.com/replobj/replobj"
	"github.com/replobj/replobj/internal/vtime"
)

// This file measures the memory-bounding effect of deterministic
// checkpoints: without them a replica retains the full ordered message log
// (for NACK gap repair) and the full reply cache (for at-most-once
// duplicate suppression) forever; with WithCheckpointEvery(n) both are
// truncated at stream-pure points and stay within a small multiple of n.

// ckptRegister is a checkpointable counter state for the memory experiment
// (an explicit Snapshotter — the gob fallback cannot serialize unexported
// fields, and a silently skipped checkpoint would make the experiment
// measure nothing).
type ckptRegister struct{ v uint64 }

func (s *ckptRegister) Snapshot() ([]byte, error) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], s.v)
	return b[:], nil
}

func (s *ckptRegister) Restore(b []byte) error {
	s.v = binary.BigEndian.Uint64(b)
	return nil
}

var _ replobj.Snapshotter = (*ckptRegister)(nil)

// MemoryBounds reports the retained ordered-log length and reply-cache
// size (worst rank) after a duplicate-free workload, as a function of the
// checkpoint interval; interval 0 is checkpointing off, the unbounded
// baseline.
func MemoryBounds(cfg Config) (Result, error) {
	res := Result{
		ID:     "memory",
		Title:  "Retained gcs log and reply cache vs checkpoint interval",
		XLabel: "checkpoint interval (0 = off)",
		YLabel: "entries after run",
	}
	logS := Series{Label: "gcs-log"}
	cacheS := Series{Label: "reply-cache"}
	for _, every := range []int{0, 8, 16, 32} {
		logLen, cacheLen, err := memoryRun(cfg, every)
		if err != nil {
			return res, fmt.Errorf("memory every=%d: %w", every, err)
		}
		logS.Points = append(logS.Points, Point{X: float64(every), Y: float64(logLen)})
		cacheS.Points = append(cacheS.Points, Point{X: float64(every), Y: float64(cacheLen)})
	}
	res.Series = append(res.Series, logS, cacheS)
	return res, nil
}

// memoryRun drives 2 clients × cfg.PerClient unique invocations against a
// checkpointing group and returns the worst retained log length and reply
// cache size across the replicas.
func memoryRun(cfg Config, every int) (logLen, cacheLen int, err error) {
	const clients = 2
	rt := vtime.Virtual()
	defer rt.Stop()
	c := replobj.NewCluster(rt, replobj.WithLatency(cfg.Latency))
	opts := []replobj.GroupOption{
		replobj.WithScheduler(replobj.ADSAT),
		replobj.WithState(func() any { return &ckptRegister{} }),
	}
	if every > 0 {
		opts = append(opts, replobj.WithCheckpointEvery(every))
	}
	g, gerr := c.NewGroup("mem", cfg.Replicas, opts...)
	if gerr != nil {
		return 0, 0, gerr
	}
	g.Register("add", func(inv *replobj.Invocation) ([]byte, error) {
		st := inv.State().(*ckptRegister)
		if err := inv.Lock("state"); err != nil {
			return nil, err
		}
		defer func() { _ = inv.Unlock("state") }()
		st.v++
		return nil, nil
	})
	g.Start()
	var firstErr error
	vtime.Run(rt, "bench-mem", func() {
		defer c.Close()
		done := vtime.NewMailbox[error](rt, "mem-done")
		for i := 0; i < clients; i++ {
			i := i
			rt.Go(fmt.Sprintf("mem-client-%d", i), func() {
				cl := c.NewClient(fmt.Sprintf("mc%d", i),
					replobj.WithReplyPolicy(cfg.Policy),
					replobj.WithInvocationTimeout(5*time.Minute))
				var err error
				for k := 0; k < cfg.PerClient && err == nil; k++ {
					_, err = cl.Invoke("mem", "add", nil)
				}
				done.Put(err)
			})
		}
		for i := 0; i < clients; i++ {
			if err, _ := done.Get(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		rt.Sleep(100 * time.Millisecond)
		for rank := 0; rank < cfg.Replicas; rank++ {
			r := g.Replica(rank)
			if n := r.Member().LogLen(); n > logLen {
				logLen = n
			}
			if n := r.CacheSize(); n > cacheLen {
				cacheLen = n
			}
		}
	})
	return logLen, cacheLen, firstErr
}
