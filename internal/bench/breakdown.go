package bench

import (
	"fmt"
	"sort"
	"time"

	replobj "github.com/replobj/replobj"
	"github.com/replobj/replobj/internal/vtime"
)

// This file implements the latency-breakdown experiment: it reruns a
// contended lock-compute-unlock workload under every scheduling strategy
// with request tracing enabled and decomposes the end-to-end invocation
// latency into its pipeline stages (transport, total ordering, batch
// residency, scheduler wait, mutex-grant wait, execution, reply
// collection). The per-stage p50/p99/p99.9 quantiles are exact sample
// quantiles over the recorded spans, so they are reproducible bit for bit
// under the virtual-time kernel.

// StageQuantile is the latency summary of one pipeline stage under one
// scheduling strategy.
type StageQuantile struct {
	Scheduler string
	Stage     string
	Count     int
	P50ms     float64
	P99ms     float64
	P999ms    float64
}

// stageOrder lists the span names in pipeline order, for stable reporting.
var stageOrder = []string{
	"xport", "order", "seq.batch", "sched.wait", "sched.grant",
	"exec", "reply", "rtt",
}

// BreakdownClients is the client count of the latency-breakdown workload —
// enough to contend the single shared mutex under every strategy.
const BreakdownClients = 4

// LatencyBreakdown traces the contended pattern-C workload (lock m0 —
// compute — unlock m0) under every scheduler and reports per-stage latency
// quantiles. The rtt stage is the client-observed end-to-end latency; the
// other stages decompose it.
func LatencyBreakdown(cfg Config) (Result, error) {
	res := Result{
		ID:     "latency-breakdown",
		Title:  "Per-stage latency decomposition (pattern C, 1 shared mutex)",
		XLabel: "scheduler index",
		YLabel: "p50 ms",
	}
	compute := ComputeTime / 20 // 5 ms: keeps a full 9-strategy sweep quick
	p50 := map[string]Series{}
	for ki, kind := range replobj.Kinds() {
		spans := replobj.NewSpanCollector(0)
		setup := func(c *replobj.Cluster) error {
			g, err := c.NewGroup("obj", cfg.Replicas, groupOpts(kind, BreakdownClients)...)
			if err != nil {
				return err
			}
			registerLocalObject(g, compute)
			g.Start()
			return nil
		}
		script := func(rt vtime.Runtime, cl *replobj.Client, idx int) ([]time.Duration, error) {
			return timedLoop(rt, cfg, func(seq int) error {
				// Every client locks mutex 0: maximal contention, so the
				// sched.grant stage is populated for the blocking strategies.
				_, err := cl.Invoke("obj", "work", []byte{byte(PatternC), 0, 0})
				return err
			})
		}
		if _, err := runScenarioOpts(cfg, BreakdownClients,
			[]replobj.ClusterOption{replobj.WithSpans(spans)}, setup, script); err != nil {
			return res, fmt.Errorf("latency-breakdown %s: %w", kind, err)
		}
		byStage := map[string][]time.Duration{}
		for _, sp := range spans.Snapshot() {
			byStage[sp.Name] = append(byStage[sp.Name], sp.Dur)
		}
		for _, stage := range stageOrder {
			durs := byStage[stage]
			if len(durs) == 0 {
				continue
			}
			sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
			sq := StageQuantile{
				Scheduler: string(kind),
				Stage:     stage,
				Count:     len(durs),
				P50ms:     quantileMS(durs, 0.50),
				P99ms:     quantileMS(durs, 0.99),
				P999ms:    quantileMS(durs, 0.999),
			}
			res.Stages = append(res.Stages, sq)
			s := p50[stage]
			s.Label = stage
			s.Points = append(s.Points, Point{X: float64(ki), Y: sq.P50ms})
			p50[stage] = s
		}
	}
	for _, stage := range stageOrder {
		if s, ok := p50[stage]; ok {
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// quantileMS returns the exact q-quantile of the sorted samples in
// milliseconds (nearest-rank method).
func quantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Microseconds()) / 1000.0
}
