package bench

import "testing"

// TestShardScaleOutSpeedup pins the headline claim of the scale-out
// experiment: the serialization-bound scenario (rate-limiter under SEQ)
// must gain at least 3x aggregate throughput at S=4, and no scenario may
// lose throughput from sharding. Determinism is checked inside every cell
// (per-shard trace-digest equality) — a divergence fails the run itself.
func TestShardScaleOutSpeedup(t *testing.T) {
	cfg := Defaults()
	cfg.PerClient = 20
	cfg.Warmup = 3
	if testing.Short() {
		cfg.PerClient = 10
		cfg.Warmup = 2
	}
	cfg.ShardCounts = []int{1, 4}
	res, err := ShardScaleOut(cfg)
	if err != nil {
		t.Fatal(err)
	}

	agg := func(scenario string, s int) (ShardCell, bool) {
		for _, c := range res.ShardCells {
			if c.Scenario == scenario && c.Shards == s && c.Shard == -1 {
				return c, true
			}
		}
		return ShardCell{}, false
	}
	rl, ok := agg("rate-limiter", 4)
	if !ok {
		t.Fatal("no aggregate rate-limiter S=4 cell")
	}
	if rl.SpeedupVsS1 < 3.0 {
		t.Errorf("rate-limiter speedup at S=4 = %.2fx, want >= 3x\n%s", rl.SpeedupVsS1, res.Format())
	}
	for _, sc := range []string{"rate-limiter", "read-mostly-kv", "session-store"} {
		c, ok := agg(sc, 4)
		if !ok {
			t.Fatalf("no aggregate %s S=4 cell", sc)
		}
		if c.SpeedupVsS1 < 0.95 {
			t.Errorf("%s lost throughput from sharding: %.2fx", sc, c.SpeedupVsS1)
		}
		// Per-shard rows exist and every shard served measured traffic.
		for i := 0; i < 4; i++ {
			found := false
			for _, cell := range res.ShardCells {
				if cell.Scenario == sc && cell.Shards == 4 && cell.Shard == i {
					found = cell.Requests > 0
				}
			}
			if !found {
				t.Errorf("%s S=4: shard %d row missing or empty", sc, i)
			}
		}
	}
}
