package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"

	"github.com/replobj/replobj/internal/client"
)

// Report is the document replbench -json writes: every result table in
// full, plus enough provenance — configuration, git revision, toolchain —
// to reproduce the numbers or compare them across commits.
type Report struct {
	GitRevision string       `json:"git_revision"`
	GoVersion   string       `json:"go_version"`
	Config      ReportConfig `json:"config"`
	Heap        HeapStats    `json:"heap"`
	Results     []Result     `json:"results"`
}

// HeapStats is the bench process's heap profile at report-write time —
// together with the "memory" experiment's retained-log/reply-cache series
// it documents the memory side of a run, not just latency.
type HeapStats struct {
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64 `json:"heap_sys_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`
}

func heapStats() HeapStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return HeapStats{
		HeapAllocBytes:  m.HeapAlloc,
		HeapSysBytes:    m.HeapSys,
		TotalAllocBytes: m.TotalAlloc,
		NumGC:           m.NumGC,
	}
}

// ReportConfig is the JSON shape of Config (the Metrics sink is runtime
// state, not provenance, and is excluded).
type ReportConfig struct {
	PerClient       int    `json:"per_client"`
	Warmup          int    `json:"warmup"`
	Replicas        int    `json:"replicas"`
	OneWayLatencyUS int64  `json:"one_way_latency_us"`
	ReplyPolicy     string `json:"reply_policy"`
}

func policyName(p client.ReplyPolicy) string {
	switch p {
	case client.Majority:
		return "majority"
	case client.First:
		return "first"
	case client.All:
		return "all"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// gitRevision reads the VCS revision stamped into the binary at build time;
// "unknown" when built outside a checkout (e.g. straight `go test`).
func gitRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, modified := "unknown", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if modified {
		rev += "+dirty"
	}
	return rev
}

// WriteJSON writes the full result set to path as an indented JSON Report.
func WriteJSON(path string, cfg Config, results []Result) error {
	rep := Report{
		GitRevision: gitRevision(),
		GoVersion:   runtime.Version(),
		Config: ReportConfig{
			PerClient:       cfg.PerClient,
			Warmup:          cfg.Warmup,
			Replicas:        cfg.Replicas,
			OneWayLatencyUS: cfg.Latency.Microseconds(),
			ReplyPolicy:     policyName(cfg.Policy),
		},
		Heap:    heapStats(),
		Results: results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write report: %w", err)
	}
	return nil
}
