package faultnet

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Profile sets the fault mix. Rates are per-mill (‰) of messages: each
// message draws once, and the draw lands in exactly one band (or none →
// clean delivery), so the rates must sum to ≤ 1000.
//
// Delay magnitudes are deterministic per message (derived from the same
// hash as the band). ReorderDelay should comfortably exceed the underlying
// network's latency so later messages on the link genuinely overtake the
// held one. Partition episodes are measured in messages, not time, to keep
// them seed-deterministic; profiles keep episodes short relative to the
// failure detector's SuspectAfter so PRNG partitions perturb ordering
// without tripping spurious view changes — long outages belong to the
// test script's explicit Crash/Partition calls.
type Profile struct {
	Name string

	DropPerMill      uint32
	DupPerMill       uint32
	DelayPerMill     uint32
	ReorderPerMill   uint32
	CorruptPerMill   uint32
	PartitionPerMill uint32

	DelayMin     time.Duration // extra latency floor for Delay/Duplicate copies
	DelayMax     time.Duration // extra latency ceiling
	ReorderDelay time.Duration // hold time for Reorder

	PartitionMinMsgs uint32 // episode length floor (messages on the link)
	PartitionMaxMsgs uint32 // episode length ceiling
}

func (p *Profile) applyDefaults() {
	if p.DelayMin <= 0 {
		p.DelayMin = 200 * time.Microsecond
	}
	if p.DelayMax < p.DelayMin {
		p.DelayMax = p.DelayMin
	}
	if p.ReorderDelay <= 0 {
		p.ReorderDelay = 2 * time.Millisecond
	}
	if p.PartitionMinMsgs == 0 {
		p.PartitionMinMsgs = 3
	}
	if p.PartitionMaxMsgs < p.PartitionMinMsgs {
		p.PartitionMaxMsgs = p.PartitionMinMsgs
	}
}

// acc returns the cumulative per-mill band boundary after band i, in the
// fixed order drop, dup, delay, reorder, corrupt, partition.
func (p *Profile) acc(i int) uint64 {
	bands := [...]uint32{
		p.DropPerMill, p.DupPerMill, p.DelayPerMill,
		p.ReorderPerMill, p.CorruptPerMill, p.PartitionPerMill,
	}
	var sum uint64
	for j := 0; j <= i && j < len(bands); j++ {
		sum += uint64(bands[j])
	}
	return sum
}

// delayFor maps per-message entropy to a latency in [DelayMin, DelayMax].
func (p *Profile) delayFor(entropy uint64) time.Duration {
	span := uint64(p.DelayMax-p.DelayMin) + 1
	return p.DelayMin + time.Duration(entropy%span)
}

// None injects nothing: every message passes. Useful to run the chaos
// harness plumbing (crash scripts, digest assertions) on a clean network.
func None() Profile { return Profile{Name: "none"} }

// Mild loses or perturbs roughly 7% of messages — enough to exercise the
// NACK and retry paths on every run without starving progress.
func Mild() Profile {
	return Profile{
		Name:             "mild",
		DropPerMill:      15,
		DupPerMill:       10,
		DelayPerMill:     30,
		ReorderPerMill:   10,
		CorruptPerMill:   5,
		PartitionPerMill: 2,
		DelayMin:         200 * time.Microsecond,
		DelayMax:         2 * time.Millisecond,
		ReorderDelay:     2 * time.Millisecond,
		PartitionMinMsgs: 3,
		PartitionMaxMsgs: 12,
	}
}

// Harsh perturbs roughly 19% of messages with longer delays and longer
// partition episodes. Progress slows markedly; semantics must still hold.
func Harsh() Profile {
	return Profile{
		Name:             "harsh",
		DropPerMill:      50,
		DupPerMill:       30,
		DelayPerMill:     60,
		ReorderPerMill:   30,
		CorruptPerMill:   15,
		PartitionPerMill: 8,
		DelayMin:         300 * time.Microsecond,
		DelayMax:         5 * time.Millisecond,
		ReorderDelay:     4 * time.Millisecond,
		PartitionMinMsgs: 5,
		PartitionMaxMsgs: 25,
	}
}

var profiles = map[string]func() Profile{
	"none":  None,
	"mild":  Mild,
	"harsh": Harsh,
}

// ByName resolves a profile by name ("none", "mild", "harsh") for the
// replnode -chaos-profile flag.
func ByName(name string) (Profile, error) {
	f, ok := profiles[strings.ToLower(name)]
	if !ok {
		names := make([]string, 0, len(profiles))
		for n := range profiles {
			names = append(names, n)
		}
		sort.Strings(names)
		return Profile{}, fmt.Errorf("unknown chaos profile %q (have %s)", name, strings.Join(names, ", "))
	}
	return f(), nil
}
