// Package faultnet is a deterministic, seed-driven fault-injection layer
// over any transport.Network — the chaos harness the trace-digest oracle
// (internal/obs) is exercised against.
//
// Every fault decision is a pure function of (seed, src, dst, msgSeq),
// where msgSeq is the per-link message counter: the n-th message sent from
// src to dst always suffers the same fate under the same seed and profile.
// A failing chaos run therefore replays exactly from its seed — the seed is
// printed in every failure message, and the Oracle can be re-run offline
// against a recorded decision log to prove the schedule identical.
//
// Injected faults (Profile selects rates and magnitudes):
//
//	drop        message silently discarded
//	duplicate   delivered twice, the copy after a deterministic delay
//	delay       delivered after extra deterministic latency
//	reorder     held long enough for later messages on the link to overtake
//	corrupt     discarded at the receiver boundary, modelling a checksum
//	            failure; recovery is the receiver's NACK path (gcs)
//	partition   the link drops everything for a deterministic number of
//	            messages, then heals
//
// Crash-stop and crash-restart of whole nodes are test-script driven
// (Crash/Restore), severing all links of the node at the wrapper level —
// the node's goroutines starve exactly as a crashed process's peers would
// observe. Manual per-link cuts (Partition/Heal) build asymmetric network
// scenarios on top.
package faultnet

import (
	"fmt"
	"sync"
	"time"

	"github.com/replobj/replobj/internal/transport"
	"github.com/replobj/replobj/internal/vtime"
	"github.com/replobj/replobj/internal/wire"
)

// Action classifies the fate of one message.
type Action uint8

// Fault actions. PartitionStart both opens a partition episode on the link
// and drops the deciding message (the first casualty); PartitionDrop marks
// the follow-on losses until the episode's message budget is spent.
const (
	Pass Action = iota
	Drop
	Duplicate
	Delay
	Reorder
	Corrupt
	PartitionStart
	PartitionDrop
)

func (a Action) String() string {
	switch a {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Duplicate:
		return "dup"
	case Delay:
		return "delay"
	case Reorder:
		return "reorder"
	case Corrupt:
		return "corrupt"
	case PartitionStart:
		return "partition-start"
	case PartitionDrop:
		return "partition-drop"
	}
	return "?"
}

// Decision is one recorded fault decision.
type Decision struct {
	From, To wire.NodeID
	// Seq is the per-link message counter the decision was derived from.
	Seq uint64
	// Action is the injected fault (Pass for clean delivery).
	Action Action
	// Param carries the action's magnitude: delay in nanoseconds for
	// Delay/Reorder/Duplicate, episode length in messages for
	// PartitionStart, 0 otherwise.
	Param uint64
}

func (d Decision) String() string {
	return fmt.Sprintf("%s->%s #%d %s(%d)", d.From, d.To, d.Seq, d.Action, d.Param)
}

// --- deterministic decision oracle ---

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// finalize is the splitmix64 finalizer: turns the structured FNV hash into
// uniformly distributed bits.
func finalize(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// roll derives the raw entropy for message seq on a link.
func roll(seed int64, from, to wire.NodeID, seq uint64) uint64 {
	h := fnvU64(uint64(fnvOffset64), uint64(seed))
	h = fnvString(h, string(from))
	h ^= 0xfe
	h *= fnvPrime64
	h = fnvString(h, string(to))
	h = fnvU64(h, seq)
	return finalize(h)
}

type linkKey struct{ from, to wire.NodeID }

type linkState struct {
	next           uint64 // per-link message counter
	partitionUntil uint64 // messages below this count are partition-dropped
}

// Oracle derives the deterministic fault schedule. It is the replayable
// core of the network wrapper: feeding the same sequence of (from, to)
// sends under the same seed and profile yields bit-identical decisions and
// digest, which the chaos replay test asserts.
type Oracle struct {
	seed  int64
	prof  Profile
	links map[linkKey]*linkState

	count  uint64
	digest uint64
}

// NewOracle returns a fresh oracle for (seed, profile).
func NewOracle(seed int64, prof Profile) *Oracle {
	prof.applyDefaults()
	return &Oracle{seed: seed, prof: prof, links: make(map[linkKey]*linkState), digest: fnvOffset64}
}

// Decide advances the link's message counter and returns the fault decision
// for this message, folding it into the schedule digest.
func (o *Oracle) Decide(from, to wire.NodeID) Decision {
	k := linkKey{from, to}
	ls := o.links[k]
	if ls == nil {
		ls = &linkState{}
		o.links[k] = ls
	}
	seq := ls.next
	ls.next++

	d := Decision{From: from, To: to, Seq: seq}
	if seq < ls.partitionUntil {
		d.Action = PartitionDrop
	} else {
		h := roll(o.seed, from, to, seq)
		band := h % 1000
		entropy := finalize(h ^ 0x9e3779b97f4a7c15)
		p := &o.prof
		switch {
		case band < p.acc(0):
			d.Action = Drop
		case band < p.acc(1):
			d.Action = Duplicate
			d.Param = uint64(p.delayFor(entropy))
		case band < p.acc(2):
			d.Action = Delay
			d.Param = uint64(p.delayFor(entropy))
		case band < p.acc(3):
			d.Action = Reorder
			d.Param = uint64(p.ReorderDelay)
		case band < p.acc(4):
			d.Action = Corrupt
		case band < p.acc(5):
			d.Action = PartitionStart
			span := uint64(p.PartitionMinMsgs)
			if p.PartitionMaxMsgs > p.PartitionMinMsgs {
				span += entropy % uint64(p.PartitionMaxMsgs-p.PartitionMinMsgs+1)
			}
			d.Param = span
			ls.partitionUntil = seq + span
		default:
			d.Action = Pass
		}
	}

	h := fnvString(o.digest, string(from))
	h = fnvString(h, string(to))
	h = fnvU64(h, seq)
	h ^= uint64(d.Action)
	h *= fnvPrime64
	h = fnvU64(h, d.Param)
	o.digest = h
	o.count++
	return d
}

// Digest returns the number of decisions taken and the rolling digest over
// all of them — equal digests at equal counts certify identical fault
// schedules.
func (o *Oracle) Digest() (count, digest uint64) { return o.count, o.digest }

// --- the network wrapper ---

// maxRecorded bounds the retained decision log (the digest always covers
// the full history).
const maxRecorded = 1 << 16

// Network is a transport.Network that injects the oracle's fault schedule
// into every Send. It is safe for concurrent use.
type Network struct {
	rt      vtime.Runtime
	wrapped *transport.WrappedNetwork

	mu        sync.Mutex
	oracle    *Oracle
	crashed   map[wire.NodeID]bool
	cut       map[linkKey]bool
	quiesced  bool
	counts    Counts
	decisions []Decision
	truncated bool
}

var _ transport.Network = (*Network)(nil)

// Counts aggregates injected faults per kind plus wrapper-level drops.
type Counts struct {
	Messages   uint64 // sends that reached the oracle
	Dropped    uint64
	Duplicated uint64
	Delayed    uint64
	Reordered  uint64
	Corrupted  uint64
	PartDrops  uint64 // messages lost inside partition episodes
	Partitions uint64 // episodes started
	Severed    uint64 // dropped by Crash / Partition switches (not the oracle)
}

// New wraps inner with a fault-injecting layer driven by (seed, profile).
func New(rt vtime.Runtime, inner transport.Network, prof Profile, seed int64) *Network {
	n := &Network{
		rt:      rt,
		oracle:  NewOracle(seed, prof),
		crashed: make(map[wire.NodeID]bool),
		cut:     make(map[linkKey]bool),
	}
	n.wrapped = transport.NewWrappedNetwork(inner, n.intercept)
	return n
}

// Endpoint implements transport.Network.
func (n *Network) Endpoint(id wire.NodeID) transport.Endpoint {
	return n.wrapped.Endpoint(id)
}

// SetStats forwards the metric/span sink to the inner network, so clusters
// built over a chaos transport still report transport metrics and record
// xport spans (for the messages that survive injection).
func (n *Network) SetStats(st *transport.Stats) {
	n.wrapped.SetStats(st)
}

// Seed returns the schedule seed (for failure messages).
func (n *Network) Seed() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.oracle.seed
}

// Crash severs every link of id: all future messages to or from it are
// dropped until Restore. The node's goroutines are not stopped — peers
// observe exactly what a crashed process would produce: silence.
func (n *Network) Crash(id wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restore undoes Crash: the node rejoins the network (crash-restart; its
// process state is whatever survived the isolation).
func (n *Network) Restore(id wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// Partition cuts the a↔b link in both directions until Heal.
func (n *Network) Partition(a, b wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[linkKey{a, b}] = true
	n.cut[linkKey{b, a}] = true
}

// Heal undoes Partition for the a↔b link.
func (n *Network) Heal(a, b wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, linkKey{a, b})
	delete(n.cut, linkKey{b, a})
}

// Quiesce stops the oracle-driven fault injection (Pass for everything).
// Crash and Partition switches stay in force. Chaos tests call this before
// their final convergence-and-assert phase so surviving replicas can settle
// on a clean network.
func (n *Network) Quiesce() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.quiesced = true
}

// Counts returns a snapshot of the fault counters.
func (n *Network) Counts() Counts {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counts
}

// Digest returns the oracle's decision count and rolling schedule digest.
func (n *Network) Digest() (count, digest uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.oracle.Digest()
}

// Decisions returns the retained decision log (oldest first) and whether
// earlier decisions were evicted.
func (n *Network) Decisions() (log []Decision, truncated bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]Decision(nil), n.decisions...), n.truncated
}

// intercept is the transport.WrappedNetwork hook: it decides each message's
// fate. Returning true means the message was consumed here (dropped, or
// forwarded by the fault actions below); false lets the wrapper forward it
// untouched.
func (n *Network) intercept(from, to wire.NodeID, payload any, forward func()) bool {
	n.mu.Lock()
	if n.crashed[from] || n.crashed[to] || n.cut[linkKey{from, to}] {
		n.counts.Severed++
		n.mu.Unlock()
		return true
	}
	if n.quiesced {
		n.mu.Unlock()
		return false
	}
	d := n.oracle.Decide(from, to)
	n.counts.Messages++
	if len(n.decisions) < maxRecorded {
		n.decisions = append(n.decisions, d)
	} else {
		n.truncated = true
	}
	switch d.Action {
	case Drop:
		n.counts.Dropped++
	case Duplicate:
		n.counts.Duplicated++
	case Delay:
		n.counts.Delayed++
	case Reorder:
		n.counts.Reordered++
	case Corrupt:
		n.counts.Corrupted++
	case PartitionStart:
		n.counts.Partitions++
		n.counts.PartDrops++
	case PartitionDrop:
		n.counts.PartDrops++
	}
	n.mu.Unlock()

	switch d.Action {
	case Pass:
		return false
	case Drop, Corrupt, PartitionStart, PartitionDrop:
		return true
	case Duplicate:
		forward()
		n.rt.After(time.Duration(d.Param), "faultnet-dup/"+string(to), forward)
		return true
	case Delay, Reorder:
		n.rt.After(time.Duration(d.Param), "faultnet-delay/"+string(to), forward)
		return true
	}
	return false
}
